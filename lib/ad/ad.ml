type t = {
  id : int;
  v : Tensor.t;
  mutable g : Tensor.t option;
  (* Whether [g] is a buffer this node owns exclusively (safe to mutate
     in place). The first delta is shared, not copied — most nodes only
     ever receive one — and a private buffer is made lazily when a
     second delta arrives. *)
  mutable g_owned : bool;
  parents : (t * (Tensor.t -> Tensor.t)) array;
  (* A rematerialization thunk for checkpoint-barrier nodes: replaying
     it rebuilds the discarded tape segment behind this node (see
     {!checkpoint}). [None] for ordinary nodes; the [parents] of a
     remat node are the segment's boundary nodes (for topological
     ordering only — their vjps are never called, the replayed
     segment's local sweep accumulates into them directly). *)
  remat : (unit -> t) option;
}

(* Counters are atomic: the sharded training driver runs one forward +
   backward per minibatch shard on worker domains concurrently, and
   node ids must stay process-unique (they key the backward visit set
   and provenance side tables). *)
let counter = Atomic.make 0

(* Live-tape accounting. [live_nodes] is created-minus-retired;
   [peak_live] tracks its high-water mark. Nodes retire when a
   checkpoint barrier discards its segment, when a replayed segment's
   local sweep completes, and when [backward] has consumed a tape —
   so with remat barriers the peak stops scaling with the full tape
   length. Both are process-wide; reset them from a quiescent point
   (between steps) to measure one step's peak. *)
let live_nodes = Atomic.make 0
let peak_live = Atomic.make 0
let remat_replay_total = Atomic.make 0

let track_new () =
  let l = Atomic.fetch_and_add live_nodes 1 + 1 in
  let rec bump () =
    let p = Atomic.get peak_live in
    if l > p && not (Atomic.compare_and_set peak_live p l) then bump ()
  in
  bump ()

let retire n = if n > 0 then ignore (Atomic.fetch_and_add live_nodes (-n))

(* Per-domain created/retired tallies, used to count how many records a
   checkpoint construction or replay produced on THIS domain (the
   atomic counter interleaves across domains, so a global delta would
   over-count under sharding). *)
type domain_tally = { mutable created : int; mutable retired : int }

let tally : domain_tally Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { created = 0; retired = 0 })

let live_node_count () = Atomic.get live_nodes
let peak_live_nodes () = Atomic.get peak_live
let remat_replays () = Atomic.get remat_replay_total

let reset_live_stats () =
  Atomic.set live_nodes 0;
  Atomic.set peak_live 0

(* Rematerialization state, all domain-local. [replaying] is consulted
   by the compiled executors in [Gen]: a replay runs during [backward],
   after the epoch has advanced, so an arena-backed plan would reset
   its pool over buffers the main tape still references — replays
   bypass arenas entirely. [remat_depth] keeps nested checkpoints from
   resetting the segment pool while an enclosing segment's tensors are
   still live. *)
let replaying_key : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)
let replaying () = Domain.DLS.get replaying_key

let shard_key : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)
let shard_mode () = Domain.DLS.get shard_key

let with_shard_mode f =
  let saved = Domain.DLS.get shard_key in
  Domain.DLS.set shard_key true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set shard_key saved) f

let remat_depth : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

(* The segment pool: recycles the transient tensor buffers of
   checkpointed segments (both at construction, where the segment is
   built once and immediately discarded, and at replay). Domain-local,
   like every ambient pool. Reset only at depth 0 — everything handed
   out for the previous segment is unreachable once its barrier closed. *)
let segment_pool : Tensor.Pool.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Tensor.Pool.create ())

(* Observability hook: the replay of a tape segment re-executes user
   code whose instrumentation (site timers, estimator statistics) must
   not double-report. [Adev] registers [Obs.suppress] here at load
   time; the default is a plain call. *)
let replay_silencer : ((unit -> unit) -> unit) ref = ref (fun f -> f ())
let set_replay_silencer s = replay_silencer := s

let node v parents =
  let id = Atomic.fetch_and_add counter 1 + 1 in
  track_new ();
  let tl = Domain.DLS.get tally in
  tl.created <- tl.created + 1;
  { id; v; g = None; g_owned = false; parents = Array.of_list parents;
    remat = None }

let const v = node v []
let scalar x = const (Tensor.scalar x)
let value t = t.v
let to_float t = Tensor.to_scalar t.v
let shape t = Tensor.shape t.v
let is_leaf t = Array.length t.parents = 0
let id t = t.id
let node_count () = Atomic.get counter

let accumulate t delta =
  match t.g with
  | None ->
    t.g <- Some delta;
    t.g_owned <- false
  | Some g when t.g_owned && Tensor.same_shape g delta -> Tensor.add_ g delta
  | Some g when Tensor.same_shape g delta ->
    let h = Tensor.copy g in
    Tensor.add_ h delta;
    t.g <- Some h;
    t.g_owned <- true
  | Some g ->
    (* Mismatched shapes (a broadcasting custom vjp): fall back to the
       allocating broadcast add. *)
    t.g <- Some (Tensor.add g delta);
    t.g_owned <- true

(* Monotone count of completed backward passes. The arena-backed
   compiled executors gate their buffer-pool resets on this: a plan's
   pool is only reset once a backward has happened since its last
   arena run, i.e. once the previous surrogate's tape has been
   consumed and its pooled buffers can no longer be read. Atomic: the
   sharded driver runs one backward per shard on worker domains. *)
let backward_passes = Atomic.make 0
let backward_epoch () = Atomic.get backward_passes

(* [local_sweep ~stop root seed] seeds [root] with [seed] and runs the
   reverse sweep over every node reachable from it whose id is > [stop]
   — nodes at or below [stop] are treated as boundary leaves: deltas
   accumulate into them but their own parents are not traversed (the
   enclosing sweep owns them). [stop = 0] is a full backward. Returns
   the number of nodes swept (they are retired by the caller).

   Topological order by DFS with an explicit stack — deep tapes (long
   training unrolls, large AIR step counts) must not overflow the
   OCaml call stack — then reverse sweep. Visits parents in the same
   order as the recursive formulation, so the gradient accumulation
   order (and hence every bit of the result) is unchanged. A remat
   node's sweep replays its segment instead of calling parent vjps:
   the replayed interior delivers its boundary deltas in the same
   relative order the full tape would have (segment interiors are
   private, so the reverse postorder groups them into the same
   contiguous blocks either way). *)
let rec local_sweep ~stop root seed =
  let visited = Hashtbl.create 64 in
  let order = ref [] in
  let swept = ref 0 in
  let stack = ref [] in
  let push n =
    Hashtbl.add visited n.id ();
    stack := (n, ref 0) :: !stack
  in
  push root;
  let continue = ref true in
  while !continue do
    match !stack with
    | [] -> continue := false
    | (n, next_parent) :: rest ->
      if !next_parent < Array.length n.parents then begin
        let p, _ = n.parents.(!next_parent) in
        incr next_parent;
        if p.id > stop && not (Hashtbl.mem visited p.id) then push p
      end
      else begin
        stack := rest;
        order := n :: !order;
        incr swept
      end
  done;
  accumulate root seed;
  List.iter
    (fun n ->
      match n.g with
      | None -> ()
      | Some g -> (
        match n.remat with
        | Some f -> replay f g
        | None ->
          Array.iter
            (fun (p, vjp) ->
              if stop > 0 && p.id <= stop then begin
                (* Boundary delta during a replay-local sweep: it
                   outlives this replay's pool resets, so it must be
                   an owned heap tensor. The vjp may return a pooled
                   tensor unchanged (identity-style vjps pass [g]
                   through), so copy defensively with no ambient
                   pool. *)
                let saved = Tensor.current_pool () in
                Tensor.set_pool None;
                (try accumulate p (Tensor.copy (vjp g))
                 with e ->
                   Tensor.set_pool saved;
                   raise e);
                Tensor.set_pool saved
              end
              else accumulate p (vjp g))
            n.parents))
    !order;
  !swept

(* Rebuild a discarded segment and backpropagate [g] through it. The
   thunk closes over the segment's original boundary nodes, so the
   local sweep accumulates into the real graph directly; everything
   the replay creates above the boundary is transient. The replayed
   forward AND the interior of its local sweep draw their buffers from
   the segment pool (reset on entry at depth 0 — the previous
   segment's replay is fully consumed by then); only deltas crossing
   the boundary go to the heap, because they outlive pool resets. *)
and replay f g =
  Atomic.incr remat_replay_total;
  let depth = Domain.DLS.get remat_depth in
  let saved_replaying = Domain.DLS.get replaying_key in
  Domain.DLS.set replaying_key true;
  incr depth;
  let saved_pool = Tensor.current_pool () in
  let pool = Domain.DLS.get segment_pool in
  if !depth = 1 then Tensor.Pool.reset pool;
  Tensor.set_pool (Some pool);
  let tl = Domain.DLS.get tally in
  let created0 = tl.created and retired0 = tl.retired in
  let finish () =
    Tensor.set_pool saved_pool;
    decr depth;
    Domain.DLS.set replaying_key saved_replaying
  in
  (match
     !replay_silencer (fun () ->
         let stop = Atomic.get counter in
         let r = f () in
         (* The sweep runs with the segment pool still ambient:
            interior gradients are transient (dead once this replay's
            nodes retire), so they recycle through the pool like the
            replayed forward's tensors. Deltas crossing the boundary
            are switched to owned heap tensors inside [local_sweep] —
            they are read after the pool has been reset for the next
            segment. *)
         let swept =
           if r.id > stop then local_sweep ~stop r g
           else begin
             (* Degenerate replay: the thunk returned a pre-existing
                node (possible only if the graph mutated under us —
                checkpoint never builds a remat node in this case). *)
             Tensor.set_pool None;
             accumulate r g;
             0
           end
         in
         ignore swept)
   with
  | () ->
    let produced = tl.created - created0 - (tl.retired - retired0) in
    tl.retired <- tl.retired + produced;
    retire produced;
    finish ()
  | exception e ->
    finish ();
    raise e)

let backward root =
  if not (Tensor.is_scalar root.v || Tensor.size root.v = 1) then
    invalid_arg "Ad.backward: root is not a scalar";
  Atomic.incr backward_passes;
  let swept = local_sweep ~stop:0 root (Tensor.ones (Tensor.shape root.v)) in
  (* The tape is consumed: every swept node retires (leaves included —
     a fresh frame hands out fresh leaves next step). *)
  let tl = Domain.DLS.get tally in
  tl.retired <- tl.retired + swept;
  retire swept

(* [checkpoint f] runs [f] once, discards the tape segment it built,
   and returns a single barrier node carrying the segment's value; the
   segment is rebuilt by replaying [f] if and when a gradient reaches
   the barrier during [backward]. [f] must be replay-deterministic:
   same nodes, same values, bit for bit (true for objective builders
   that close over a parameter frame and explicit PRNG keys; false for
   thunks reading ambient mutable state, e.g. REINFORCE baseline
   cells — see docs/MEMORY.md). With [pool] (default true) the
   segment's transient tensors are drawn from the domain's segment
   pool, so per-step heap allocation stops scaling with the number of
   segments. *)
let checkpoint ?(pool = true) f =
  let start = Atomic.get counter in
  let tl = Domain.DLS.get tally in
  let created0 = tl.created and retired0 = tl.retired in
  let depth = Domain.DLS.get remat_depth in
  incr depth;
  let saved_pool = Tensor.current_pool () in
  let seg = Domain.DLS.get segment_pool in
  if pool then begin
    if !depth = 1 then Tensor.Pool.reset seg;
    Tensor.set_pool (Some seg)
  end;
  let finish () =
    Tensor.set_pool saved_pool;
    decr depth
  in
  let r = try f () with e -> finish (); raise e in
  (* The barrier's value must survive segment-pool resets: copy it out
     with no ambient pool. Boundary values predate the segment, so only
     the root needs rescuing. *)
  let v =
    if pool then begin
      Tensor.set_pool None;
      Tensor.copy r.v
    end
    else r.v
  in
  finish ();
  if r.id <= start then r
  else begin
    (* Boundary discovery replicates the backward DFS (parents in array
       order, first-encounter) so the barrier's parent order gives
       boundary nodes the same relative first-visit order in the main
       sweep that the full tape would have given them. *)
    let visited = Hashtbl.create 64 in
    let boundary = ref [] in
    let stack = ref [ (r, ref 0) ] in
    Hashtbl.add visited r.id ();
    let continue = ref true in
    while !continue do
      match !stack with
      | [] -> continue := false
      | (n, next_parent) :: rest ->
        if !next_parent < Array.length n.parents then begin
          let p, _ = n.parents.(!next_parent) in
          incr next_parent;
          if not (Hashtbl.mem visited p.id) then begin
            Hashtbl.add visited p.id ();
            if p.id <= start then boundary := p :: !boundary
            else stack := (p, ref 0) :: !stack
          end
        end
        else stack := rest
    done;
    let produced = tl.created - created0 - (tl.retired - retired0) in
    tl.retired <- tl.retired + produced;
    retire produced;
    let parents =
      Array.of_list
        (List.rev_map (fun b -> (b, fun (g : Tensor.t) -> g)) !boundary)
    in
    let id = Atomic.fetch_and_add counter 1 + 1 in
    track_new ();
    tl.created <- tl.created + 1;
    { id; v; g = None; g_owned = false; parents; remat = Some f }
  end

let grad t =
  match t.g with
  | Some g -> g
  | None -> Tensor.zeros (Tensor.shape t.v)

let stop_grad t = const t.v
let custom ~value ~parents = node value parents

(* Sum a broadcast gradient back down to [target] shape. *)
let unbroadcast target g =
  if Tensor.shape g = target then g
  else begin
    let gs = Tensor.shape g in
    let rg = Array.length gs and rt = Array.length target in
    (* Sum out leading extra dims. *)
    let g = ref g in
    for _ = 1 to rg - rt do
      g := Tensor.sum_axis 0 !g
    done;
    (* Sum over dims where the target had size 1. *)
    Array.iteri
      (fun d dt ->
        if dt = 1 && (Tensor.shape !g).(d) <> 1 then
          g :=
            Tensor.reshape
              (Array.mapi
                 (fun i s -> if i = d then 1 else s)
                 (Tensor.shape !g))
              (Tensor.sum_axis d !g))
      target;
    Tensor.reshape target !g
  end

let binop f dfa dfb a b =
  let v = f a.v b.v in
  node v
    [ (a, fun g -> unbroadcast (Tensor.shape a.v) (dfa g));
      (b, fun g -> unbroadcast (Tensor.shape b.v) (dfb g)) ]

let add a b = binop Tensor.add (fun g -> g) (fun g -> g) a b
let sub a b = binop Tensor.sub (fun g -> g) (fun g -> Tensor.neg g) a b

let mul a b =
  binop Tensor.mul (fun g -> Tensor.mul g b.v) (fun g -> Tensor.mul g a.v) a b

let div a b =
  binop Tensor.div
    (fun g -> Tensor.div g b.v)
    (fun g -> Tensor.neg (Tensor.div (Tensor.mul g a.v) (Tensor.mul b.v b.v)))
    a b

let unop f df a =
  let v = f a.v in
  node v [ (a, fun g -> Tensor.mul g (df a.v v)) ]

let neg a = node (Tensor.neg a.v) [ (a, Tensor.neg) ]
let scale c a = node (Tensor.scale c a.v) [ (a, Tensor.scale c) ]
let add_scalar c a = node (Tensor.add_scalar c a.v) [ (a, fun g -> g) ]
(* The hot vjps use the specialized one-pass tensor kernels instead of
   closure maps (same float expressions, so every gradient bit is
   unchanged — see [Kernel]). *)
let exp a = unop Tensor.exp (fun _ v -> v) a
let log a = unop Tensor.log (fun x _ -> Tensor.recip x) a

let sqrt a =
  unop Tensor.sqrt (fun _ v -> Tensor.div (Tensor.scalar 0.5) v) a

let sigmoid a = unop Tensor.sigmoid (fun _ v -> Tensor.sigmoid_deriv v) a

let tanh a = unop Tensor.tanh (fun _ v -> Tensor.map (fun s -> 1. -. (s *. s)) v) a

let relu a =
  unop Tensor.relu (fun x _ -> Tensor.map (fun xi -> if xi > 0. then 1. else 0.) x) a

let softplus a = unop Tensor.softplus (fun x _ -> Tensor.sigmoid x) a

let log1p_exp = softplus

let pow_scalar a p =
  unop
    (fun x -> Tensor.pow_scalar x p)
    (fun x _ -> Tensor.map (fun xi -> p *. Float.pow xi (p -. 1.)) x)
    a

let sum a =
  node (Tensor.sum_keep a.v)
    [ (a, fun g -> Tensor.full (Tensor.shape a.v) (Tensor.to_scalar g)) ]

let mean a =
  let n = float_of_int (Stdlib.max 1 (Tensor.size a.v)) in
  node
    (Tensor.scalar (Tensor.mean a.v))
    [ (a, fun g -> Tensor.full (Tensor.shape a.v) (Tensor.to_scalar g /. n)) ]

let dot a b =
  node
    (Tensor.scalar (Tensor.dot a.v b.v))
    [ (a, fun g -> Tensor.scale (Tensor.to_scalar g) b.v);
      (b, fun g -> Tensor.scale (Tensor.to_scalar g) a.v) ]

let matmul a b =
  let v = Tensor.matmul a.v b.v in
  let ra = Array.length (Tensor.shape a.v)
  and rb = Array.length (Tensor.shape b.v) in
  match (ra, rb) with
  | 2, 2 ->
    node v
      [ (a, fun g -> Tensor.matmul_t g b.v);
        (b, fun g -> Tensor.t_matmul a.v g) ]
  | 2, 1 ->
    node v
      [ (a, fun g -> Tensor.outer g b.v);
        (b, fun g -> Tensor.t_matmul a.v g) ]
  | 1, 2 ->
    node v
      [ (a, fun g -> Tensor.matmul b.v g);
        (b, fun g -> Tensor.outer a.v g) ]
  | _ -> raise (Tensor.Shape_error "Ad.matmul: unsupported ranks")

let transpose a =
  node (Tensor.transpose a.v) [ (a, Tensor.transpose) ]

let logsumexp a =
  let lse = Tensor.logsumexp a.v in
  node
    (Tensor.scalar lse)
    [ (a,
       fun g ->
         let gs = Tensor.to_scalar g in
         Tensor.map (fun x -> gs *. Float.exp (x -. lse)) a.v) ]

(* Re-insert a size-1 dimension at [ax] and broadcast back to the input
   shape, turning the gradient of an axis reduction into a full-shape
   cotangent. *)
let expand_reduced ax in_shape t =
  let r = Array.length in_shape in
  let keep = Array.init r (fun i -> if i = ax then 1 else in_shape.(i)) in
  Tensor.broadcast_to (Tensor.reshape keep t) in_shape

let sum_axis ax a =
  let in_shape = Tensor.shape a.v in
  node (Tensor.sum_axis ax a.v) [ (a, fun g -> expand_reduced ax in_shape g) ]

let logsumexp_axis ax a =
  let in_shape = Tensor.shape a.v in
  let lse = Tensor.logsumexp_axis ax a.v in
  node lse
    [ (a,
       fun g ->
         (* d lse / d x = softmax along the axis: exp (x - lse). *)
         Tensor.mul
           (expand_reduced ax in_shape g)
           (Tensor.exp (Tensor.sub a.v (expand_reduced ax in_shape lse)))) ]

let bernoulli_logits_scores ~x logits =
  let v, sigma = Tensor.bernoulli_logits_scores_fwd ~logits:logits.v ~x in
  node v
    [ (logits,
       fun g ->
         unbroadcast (Tensor.shape logits.v)
           (Tensor.bernoulli_logits_scores_vjp ~sigma ~x ~g)) ]

let log_softmax a =
  let lse = Tensor.logsumexp a.v in
  let v = Tensor.map (fun x -> x -. lse) a.v in
  node v
    [ (a,
       fun g ->
         let total = Tensor.sum g in
         Tensor.map2 (fun gi vi -> gi -. (total *. Float.exp vi)) g v) ]

let reshape new_shape a =
  let old_shape = Tensor.shape a.v in
  node (Tensor.reshape new_shape a.v) [ (a, Tensor.reshape old_shape) ]

let concat0 ts =
  let v = Tensor.concat0 (List.map value ts) in
  let parents =
    let off = ref 0 in
    List.map
      (fun t ->
        let n0 = (Tensor.shape t.v).(0) in
        let start = !off in
        off := !off + n0;
        ( t,
          fun g ->
            Tensor.take_rows g (List.init n0 (fun i -> start + i)) ))
      ts
  in
  node v parents

let stack0 ts =
  let v = Tensor.stack0 (List.map value ts) in
  let parents = List.mapi (fun i t -> (t, fun g -> Tensor.slice0 g i)) ts in
  node v parents

let slice0 a i =
  let full_shape = Tensor.shape a.v in
  node (Tensor.slice0 a.v i)
    [ (a,
       fun g ->
         let z = Tensor.zeros full_shape in
         let sub_size = Tensor.size g in
         Tensor.of_array full_shape
           (Array.mapi
              (fun flat zero ->
                let lo = i * sub_size in
                if flat >= lo && flat < lo + sub_size then
                  Tensor.get_flat g (flat - lo)
                else zero)
              (Tensor.to_array z))) ]

let get a ix =
  let full_shape = Tensor.shape a.v in
  node
    (Tensor.scalar (Tensor.get a.v ix))
    [ (a,
       fun g ->
         let out = Tensor.to_array (Tensor.zeros full_shape) in
         (* Recompute the flat index via a one-hot trick. *)
         let probe = Tensor.init full_shape (fun jx -> if jx = ix then 1. else 0.) in
         Array.iteri
           (fun flat p -> if p = 1. then out.(flat) <- Tensor.to_scalar g)
           (Tensor.to_array probe);
         Tensor.of_array full_shape out) ]

let add_list = function
  | [] -> scalar 0.
  | first :: rest -> List.fold_left add first rest

module O = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( ~- ) = neg
end

let finite_diff_grad ?(eps = 1e-5) f x =
  let xs = Tensor.to_array x in
  let shape = Tensor.shape x in
  let g = Array.make (Array.length xs) 0. in
  for i = 0 to Array.length xs - 1 do
    let bump d =
      let xs' = Array.copy xs in
      xs'.(i) <- xs'.(i) +. d;
      f (Tensor.of_array shape xs')
    in
    g.(i) <- (bump eps -. bump (-.eps)) /. (2. *. eps)
  done;
  Tensor.of_array shape g
