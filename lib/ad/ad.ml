type t = {
  id : int;
  v : Tensor.t;
  mutable g : Tensor.t option;
  (* Whether [g] is a buffer this node owns exclusively (safe to mutate
     in place). The first delta is shared, not copied — most nodes only
     ever receive one — and a private buffer is made lazily when a
     second delta arrives. *)
  mutable g_owned : bool;
  parents : (t * (Tensor.t -> Tensor.t)) array;
}

let counter = ref 0

let node v parents =
  incr counter;
  { id = !counter; v; g = None; g_owned = false; parents = Array.of_list parents }

let const v = node v []
let scalar x = const (Tensor.scalar x)
let value t = t.v
let to_float t = Tensor.to_scalar t.v
let shape t = Tensor.shape t.v
let is_leaf t = Array.length t.parents = 0
let id t = t.id
let node_count () = !counter

let accumulate t delta =
  match t.g with
  | None ->
    t.g <- Some delta;
    t.g_owned <- false
  | Some g when t.g_owned && Tensor.same_shape g delta -> Tensor.add_ g delta
  | Some g when Tensor.same_shape g delta ->
    let h = Tensor.copy g in
    Tensor.add_ h delta;
    t.g <- Some h;
    t.g_owned <- true
  | Some g ->
    (* Mismatched shapes (a broadcasting custom vjp): fall back to the
       allocating broadcast add. *)
    t.g <- Some (Tensor.add g delta);
    t.g_owned <- true

(* Monotone count of completed backward passes. The arena-backed
   compiled executors gate their buffer-pool resets on this: a plan's
   pool is only reset once a backward has happened since its last
   arena run, i.e. once the previous surrogate's tape has been
   consumed and its pooled buffers can no longer be read. *)
let backward_passes = ref 0
let backward_epoch () = !backward_passes

let backward root =
  if not (Tensor.is_scalar root.v || Tensor.size root.v = 1) then
    invalid_arg "Ad.backward: root is not a scalar";
  incr backward_passes;
  (* Topological order by DFS with an explicit stack — deep tapes (long
     training unrolls, large AIR step counts) must not overflow the
     OCaml call stack — then reverse sweep. Visits parents in the same
     order as the recursive formulation, so the gradient accumulation
     order (and hence every bit of the result) is unchanged. *)
  let visited = Hashtbl.create 64 in
  let order = ref [] in
  let stack = ref [] in
  let push n =
    Hashtbl.add visited n.id ();
    stack := (n, ref 0) :: !stack
  in
  push root;
  let continue = ref true in
  while !continue do
    match !stack with
    | [] -> continue := false
    | (n, next_parent) :: rest ->
      if !next_parent < Array.length n.parents then begin
        let p, _ = n.parents.(!next_parent) in
        incr next_parent;
        if not (Hashtbl.mem visited p.id) then push p
      end
      else begin
        stack := rest;
        order := n :: !order
      end
  done;
  accumulate root (Tensor.ones (Tensor.shape root.v));
  List.iter
    (fun n ->
      match n.g with
      | None -> ()
      | Some g ->
        Array.iter (fun (p, vjp) -> accumulate p (vjp g)) n.parents)
    !order

let grad t =
  match t.g with
  | Some g -> g
  | None -> Tensor.zeros (Tensor.shape t.v)

let stop_grad t = const t.v
let custom ~value ~parents = node value parents

(* Sum a broadcast gradient back down to [target] shape. *)
let unbroadcast target g =
  if Tensor.shape g = target then g
  else begin
    let gs = Tensor.shape g in
    let rg = Array.length gs and rt = Array.length target in
    (* Sum out leading extra dims. *)
    let g = ref g in
    for _ = 1 to rg - rt do
      g := Tensor.sum_axis 0 !g
    done;
    (* Sum over dims where the target had size 1. *)
    Array.iteri
      (fun d dt ->
        if dt = 1 && (Tensor.shape !g).(d) <> 1 then
          g :=
            Tensor.reshape
              (Array.mapi
                 (fun i s -> if i = d then 1 else s)
                 (Tensor.shape !g))
              (Tensor.sum_axis d !g))
      target;
    Tensor.reshape target !g
  end

let binop f dfa dfb a b =
  let v = f a.v b.v in
  node v
    [ (a, fun g -> unbroadcast (Tensor.shape a.v) (dfa g));
      (b, fun g -> unbroadcast (Tensor.shape b.v) (dfb g)) ]

let add a b = binop Tensor.add (fun g -> g) (fun g -> g) a b
let sub a b = binop Tensor.sub (fun g -> g) (fun g -> Tensor.neg g) a b

let mul a b =
  binop Tensor.mul (fun g -> Tensor.mul g b.v) (fun g -> Tensor.mul g a.v) a b

let div a b =
  binop Tensor.div
    (fun g -> Tensor.div g b.v)
    (fun g -> Tensor.neg (Tensor.div (Tensor.mul g a.v) (Tensor.mul b.v b.v)))
    a b

let unop f df a =
  let v = f a.v in
  node v [ (a, fun g -> Tensor.mul g (df a.v v)) ]

let neg a = node (Tensor.neg a.v) [ (a, Tensor.neg) ]
let scale c a = node (Tensor.scale c a.v) [ (a, Tensor.scale c) ]
let add_scalar c a = node (Tensor.add_scalar c a.v) [ (a, fun g -> g) ]
(* The hot vjps use the specialized one-pass tensor kernels instead of
   closure maps (same float expressions, so every gradient bit is
   unchanged — see [Kernel]). *)
let exp a = unop Tensor.exp (fun _ v -> v) a
let log a = unop Tensor.log (fun x _ -> Tensor.recip x) a

let sqrt a =
  unop Tensor.sqrt (fun _ v -> Tensor.div (Tensor.scalar 0.5) v) a

let sigmoid a = unop Tensor.sigmoid (fun _ v -> Tensor.sigmoid_deriv v) a

let tanh a = unop Tensor.tanh (fun _ v -> Tensor.map (fun s -> 1. -. (s *. s)) v) a

let relu a =
  unop Tensor.relu (fun x _ -> Tensor.map (fun xi -> if xi > 0. then 1. else 0.) x) a

let softplus a = unop Tensor.softplus (fun x _ -> Tensor.sigmoid x) a

let log1p_exp = softplus

let pow_scalar a p =
  unop
    (fun x -> Tensor.pow_scalar x p)
    (fun x _ -> Tensor.map (fun xi -> p *. Float.pow xi (p -. 1.)) x)
    a

let sum a =
  node (Tensor.sum_keep a.v)
    [ (a, fun g -> Tensor.full (Tensor.shape a.v) (Tensor.to_scalar g)) ]

let mean a =
  let n = float_of_int (Stdlib.max 1 (Tensor.size a.v)) in
  node
    (Tensor.scalar (Tensor.mean a.v))
    [ (a, fun g -> Tensor.full (Tensor.shape a.v) (Tensor.to_scalar g /. n)) ]

let dot a b =
  node
    (Tensor.scalar (Tensor.dot a.v b.v))
    [ (a, fun g -> Tensor.scale (Tensor.to_scalar g) b.v);
      (b, fun g -> Tensor.scale (Tensor.to_scalar g) a.v) ]

let matmul a b =
  let v = Tensor.matmul a.v b.v in
  let ra = Array.length (Tensor.shape a.v)
  and rb = Array.length (Tensor.shape b.v) in
  match (ra, rb) with
  | 2, 2 ->
    node v
      [ (a, fun g -> Tensor.matmul_t g b.v);
        (b, fun g -> Tensor.t_matmul a.v g) ]
  | 2, 1 ->
    node v
      [ (a, fun g -> Tensor.outer g b.v);
        (b, fun g -> Tensor.t_matmul a.v g) ]
  | 1, 2 ->
    node v
      [ (a, fun g -> Tensor.matmul b.v g);
        (b, fun g -> Tensor.outer a.v g) ]
  | _ -> raise (Tensor.Shape_error "Ad.matmul: unsupported ranks")

let transpose a =
  node (Tensor.transpose a.v) [ (a, Tensor.transpose) ]

let logsumexp a =
  let lse = Tensor.logsumexp a.v in
  node
    (Tensor.scalar lse)
    [ (a,
       fun g ->
         let gs = Tensor.to_scalar g in
         Tensor.map (fun x -> gs *. Float.exp (x -. lse)) a.v) ]

(* Re-insert a size-1 dimension at [ax] and broadcast back to the input
   shape, turning the gradient of an axis reduction into a full-shape
   cotangent. *)
let expand_reduced ax in_shape t =
  let r = Array.length in_shape in
  let keep = Array.init r (fun i -> if i = ax then 1 else in_shape.(i)) in
  Tensor.broadcast_to (Tensor.reshape keep t) in_shape

let sum_axis ax a =
  let in_shape = Tensor.shape a.v in
  node (Tensor.sum_axis ax a.v) [ (a, fun g -> expand_reduced ax in_shape g) ]

let logsumexp_axis ax a =
  let in_shape = Tensor.shape a.v in
  let lse = Tensor.logsumexp_axis ax a.v in
  node lse
    [ (a,
       fun g ->
         (* d lse / d x = softmax along the axis: exp (x - lse). *)
         Tensor.mul
           (expand_reduced ax in_shape g)
           (Tensor.exp (Tensor.sub a.v (expand_reduced ax in_shape lse)))) ]

let bernoulli_logits_scores ~x logits =
  let v, sigma = Tensor.bernoulli_logits_scores_fwd ~logits:logits.v ~x in
  node v
    [ (logits,
       fun g ->
         unbroadcast (Tensor.shape logits.v)
           (Tensor.bernoulli_logits_scores_vjp ~sigma ~x ~g)) ]

let log_softmax a =
  let lse = Tensor.logsumexp a.v in
  let v = Tensor.map (fun x -> x -. lse) a.v in
  node v
    [ (a,
       fun g ->
         let total = Tensor.sum g in
         Tensor.map2 (fun gi vi -> gi -. (total *. Float.exp vi)) g v) ]

let reshape new_shape a =
  let old_shape = Tensor.shape a.v in
  node (Tensor.reshape new_shape a.v) [ (a, Tensor.reshape old_shape) ]

let concat0 ts =
  let v = Tensor.concat0 (List.map value ts) in
  let parents =
    let off = ref 0 in
    List.map
      (fun t ->
        let n0 = (Tensor.shape t.v).(0) in
        let start = !off in
        off := !off + n0;
        ( t,
          fun g ->
            Tensor.take_rows g (List.init n0 (fun i -> start + i)) ))
      ts
  in
  node v parents

let stack0 ts =
  let v = Tensor.stack0 (List.map value ts) in
  let parents = List.mapi (fun i t -> (t, fun g -> Tensor.slice0 g i)) ts in
  node v parents

let slice0 a i =
  let full_shape = Tensor.shape a.v in
  node (Tensor.slice0 a.v i)
    [ (a,
       fun g ->
         let z = Tensor.zeros full_shape in
         let sub_size = Tensor.size g in
         Tensor.of_array full_shape
           (Array.mapi
              (fun flat zero ->
                let lo = i * sub_size in
                if flat >= lo && flat < lo + sub_size then
                  Tensor.get_flat g (flat - lo)
                else zero)
              (Tensor.to_array z))) ]

let get a ix =
  let full_shape = Tensor.shape a.v in
  node
    (Tensor.scalar (Tensor.get a.v ix))
    [ (a,
       fun g ->
         let out = Tensor.to_array (Tensor.zeros full_shape) in
         (* Recompute the flat index via a one-hot trick. *)
         let probe = Tensor.init full_shape (fun jx -> if jx = ix then 1. else 0.) in
         Array.iteri
           (fun flat p -> if p = 1. then out.(flat) <- Tensor.to_scalar g)
           (Tensor.to_array probe);
         Tensor.of_array full_shape out) ]

let add_list = function
  | [] -> scalar 0.
  | first :: rest -> List.fold_left add first rest

module O = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( ~- ) = neg
end

let finite_diff_grad ?(eps = 1e-5) f x =
  let xs = Tensor.to_array x in
  let shape = Tensor.shape x in
  let g = Array.make (Array.length xs) 0. in
  for i = 0 to Array.length xs - 1 do
    let bump d =
      let xs' = Array.copy xs in
      xs'.(i) <- xs'.(i) +. d;
      f (Tensor.of_array shape xs')
    in
    g.(i) <- (bump eps -. bump (-.eps)) /. (2. *. eps)
  done;
  Tensor.of_array shape g
