(** Reverse-mode automatic differentiation over tensors.

    Values are nodes in a dynamically built computation graph; rank-0
    tensors serve as scalars. Calling {!backward} on a scalar root
    accumulates gradients into every reachable node, which can then be
    read with {!grad}. Graphs are rebuilt on every forward pass, so
    gradients never leak between optimization steps.

    The module also exposes {!stop_grad} and {!custom}, the two hooks the
    ADEV estimators (see [Adev]) use to construct surrogate losses whose
    reverse-mode derivatives are unbiased gradient estimates. *)

type t
(** A differentiable tensor value. *)

(** {1 Leaves and constants} *)

val const : Tensor.t -> t
(** A leaf node. Gradients accumulate into leaves like any other node;
    whether a leaf is a "parameter" is the caller's concern. *)

val scalar : float -> t
(** Rank-0 leaf. *)

val value : t -> Tensor.t
(** The primal value. *)

val to_float : t -> float
(** Primal value of a rank-0 node. @raise Tensor.Shape_error otherwise. *)

val shape : t -> int array

val is_leaf : t -> bool
(** [true] when no gradient can flow out of this node (it was created by
    {!const}, {!scalar}, or {!stop_grad}). Used by [Value.to_float_rigid]
    to enforce the paper's R / R* smoothness discipline at runtime. *)

val id : t -> int
(** A unique, stable identifier for this node (graph-construction
    order). Used to key side tables — e.g. the provenance registry that
    lets smoothness errors name the sample site a value came from. *)

val node_count : unit -> int
(** Total number of AD nodes constructed so far (process-wide,
    monotone). Deltas between two reads measure a region's tape
    growth; the observability layer gauges this per training step. *)

(** {1 Live-tape accounting}

    Created-minus-retired node counts. Nodes retire when a
    {!checkpoint} barrier discards its segment, when a replayed
    segment's local sweep completes, and when {!backward} has consumed
    a tape — so with remat barriers the {e peak} stops scaling with
    the full tape length. All counters are process-wide and atomic. *)

val live_node_count : unit -> int
(** Nodes currently accounted live (created minus retired) since the
    last {!reset_live_stats}. *)

val peak_live_nodes : unit -> int
(** High-water mark of {!live_node_count} since the last
    {!reset_live_stats}. The [ad/peak_live_nodes] gauge in
    [ppvi profile] reports this per run. *)

val remat_replays : unit -> int
(** Process-wide count of checkpoint-segment replays performed by
    {!backward} (monotone). *)

val reset_live_stats : unit -> unit
(** Zero the live/peak counters. Only call from a quiescent point (no
    concurrent graph construction): the training driver resets between
    steps to measure per-step peaks. *)

(** {1 Gradient checkpointing} *)

val checkpoint : ?pool:bool -> (unit -> t) -> t
(** [checkpoint f] runs [f] once, discards the tape segment it built,
    and returns a barrier node carrying the segment's (copied) value;
    {!backward} rebuilds the segment by replaying [f] if and when a
    gradient reaches the barrier, then sweeps the replayed interior
    into the segment's boundary nodes locally. Gradients are bit-for-
    bit identical to the full-tape backward, provided [f] is
    {e replay-deterministic}: rebuilding must produce the same values
    (true for objective builders closing over a parameter frame and
    explicit PRNG keys; false for thunks reading ambient mutable
    state such as REINFORCE baseline cells — see docs/MEMORY.md).
    With [pool] (default true) the segment's transient tensors are
    drawn from a domain-local segment pool that is recycled at every
    barrier, so per-step heap allocation stops scaling with the
    number of segments. Nested checkpoints are supported (inner
    segments share the pool without resetting it). If [f] returns a
    node that predates the call, it is returned unchanged. *)

val replaying : unit -> bool
(** [true] while a checkpoint segment is being rematerialized on this
    domain. The arena-backed compiled executors in [Gen] bypass their
    buffer pools during replay: a replay runs mid-[backward], after
    the epoch has advanced, so an arena reset would recycle buffers
    the main tape still references. *)

val set_replay_silencer : ((unit -> unit) -> unit) -> unit
(** Install the wrapper run around every segment replay. [Adev]
    registers [Obs.suppress] so a replay's re-executed user code does
    not double-report site timings and estimator statistics. *)

(** {1 Sharded execution} *)

val shard_mode : unit -> bool
(** [true] inside a data-parallel shard block (see [Train]). Compiled
    executors bypass plan-owned mutable state — arenas and scratch
    reuse — under shard mode, since several domains may execute the
    same plan concurrently. *)

val with_shard_mode : (unit -> 'a) -> 'a
(** Run a thunk with {!shard_mode} set on the current domain. *)

(** {1 Differentiation} *)

val backward : t -> unit
(** Seed the (scalar) root with gradient 1 and backpropagate. Safe to
    call once per graph. @raise Invalid_argument on a non-scalar root. *)

val backward_epoch : unit -> int
(** Monotone count of completed {!backward} passes. The arena-backed
    compiled executors in [Gen] gate buffer-pool resets on this
    counter: recycling a plan's buffers is only safe once the tape
    built from them has been consumed by a backward pass. *)

val grad : t -> Tensor.t
(** The gradient accumulated into this node by the last {!backward}
    through it; a zero tensor if none reached it. *)

val stop_grad : t -> t
(** A node with the same value through which no gradient flows. *)

val custom : value:Tensor.t -> parents:(t * (Tensor.t -> Tensor.t)) list -> t
(** [custom ~value ~parents] creates a node with an explicit
    vector-Jacobian product per parent: during backprop, each function
    receives the node's output gradient and returns the contribution to
    that parent (which must match the parent's shape). *)

(** {1 Arithmetic (broadcasting like [Tensor])} *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val scale : float -> t -> t
val add_scalar : float -> t -> t

val exp : t -> t
val log : t -> t
val sqrt : t -> t
val sigmoid : t -> t
val tanh : t -> t

val relu : t -> t
(** Subgradient 0 at the kink. As in the paper's discussion of static
    checks, using [relu] inside density computations is at the user's
    own risk. *)

val softplus : t -> t
val pow_scalar : t -> float -> t

val log1p_exp : t -> t
(** Alias of {!softplus}, for log-density code readability. *)

(** {1 Reductions and linear algebra} *)

val sum : t -> t
(** Sum of all elements, as a rank-0 node. *)

val mean : t -> t
val dot : t -> t -> t
val matmul : t -> t -> t
val transpose : t -> t

val logsumexp : t -> t
(** Stable logsumexp over all elements, rank-0. *)

val sum_axis : int -> t -> t
(** [sum_axis ax a] sums out dimension [ax] (removing it); the adjoint
    broadcasts the cotangent back along the reduced axis. *)

val logsumexp_axis : int -> t -> t
(** [logsumexp_axis ax a] is the stable logsumexp along dimension [ax]
    (removing it); the adjoint is the softmax-weighted broadcast of the
    cotangent. This is the one-axis-reduction form that batched
    K-particle objectives (e.g. IWELBO over the particle axis) use in
    place of [K] scalar terms. *)

val bernoulli_logits_scores : x:Tensor.t -> t -> t
(** [bernoulli_logits_scores ~x logits] is the fused per-row
    Bernoulli-with-logits log-pmf [sum_tail (x*l - softplus l)] over
    the broadcast of the operands (leading axis = rows), with the
    custom adjoint [g_i (x - sigmoid l)] into [logits] reusing the
    forward pass's sigmoid. One pass each way, versus the ~8 tensor
    temporaries of the compositional form — the hot likelihood kernel
    of the batched execution engine. [x] is the (0/1-valued) carrier
    of a discrete site and is not differentiated. *)

val log_softmax : t -> t
(** Elementwise [x - logsumexp x]. *)

(** {1 Structural} *)

val reshape : int array -> t -> t
val concat0 : t list -> t
val stack0 : t list -> t
val slice0 : t -> int -> t
val get : t -> int array -> t
(** Extract one element as a rank-0 node (gradient scatters back). *)

(** {1 Convenience} *)

val add_list : t list -> t
(** Sum of a non-empty list of same-shaped nodes ([scalar 0.] when
    empty). *)

module O : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( ~- ) : t -> t
end

(** {1 Testing support} *)

val finite_diff_grad :
  ?eps:float -> (Tensor.t -> float) -> Tensor.t -> Tensor.t
(** Central finite differences of a scalar function, elementwise on its
    tensor input. Used by the test suite to validate every vjp. *)
