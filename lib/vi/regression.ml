let data = Data.regression_data (Prng.key 8675309) 120

let model =
  let open Gen.Syntax in
  let normal_site mu sigma addr =
    Gen.sample (Dist.normal_reparam (Ad.scalar mu) (Ad.scalar sigma)) addr
  in
  let* a = normal_site 0. 10. "a" in
  let* ba = normal_site 0. 1. "bA" in
  let* br = normal_site 0. 1. "bR" in
  let* bar = normal_site 0. 1. "bAR" in
  let* sigma = Gen.sample (Dist.uniform 0.05 10.) "sigma" in
  let rec observe_all i =
    if i >= Array.length data then Gen.return ()
    else begin
      let d = data.(i) in
      let c = if d.Data.in_africa then 1. else 0. in
      let mean =
        Ad.add_list
          [ a; Ad.scale c ba; Ad.scale d.Data.ruggedness br;
            Ad.scale (c *. d.Data.ruggedness) bar ]
      in
      let* () =
        Gen.observe (Dist.normal_reparam mean sigma) (Ad.scalar d.Data.log_gdp)
      in
      observe_all (i + 1)
    end
  in
  observe_all 0

let sites = [ "a"; "bA"; "bR"; "bAR" ]

let register store =
  List.iter
    (fun s ->
      Store.ensure store ("reg." ^ s ^ ".loc") (fun () -> Tensor.scalar 0.);
      Store.ensure store ("reg." ^ s ^ ".rho") (fun () -> Tensor.scalar 0.))
    sites;
  Store.ensure store "reg.sigma.loc" (fun () -> Tensor.scalar 1.)

let pos x = Ad.add_scalar 1e-3 (Ad.softplus x)

let guide frame =
  let open Gen.Syntax in
  let p = Store.Frame.get frame in
  let rec go = function
    | [] ->
      (* The paper's guide: sigma ~ N(sl, 0.05), a narrow learned point
         mass within the uniform prior's support. *)
      let* _ =
        Gen.sample
          (Dist.normal_reparam (pos (p "reg.sigma.loc")) (Ad.scalar 0.05))
          "sigma"
      in
      Gen.return ()
    | s :: rest ->
      let* _ =
        Gen.sample
          (Dist.normal_reparam (p ("reg." ^ s ^ ".loc")) (pos (p ("reg." ^ s ^ ".rho"))))
          s
      in
      go rest
  in
  go sites

let objective frame = Objectives.elbo ~model ~guide:(guide frame)

let train ?(steps = 1200) ?(samples = 1) ?(lr = 0.05) ?guard ?persist ?store
    key =
  let store = match store with Some s -> s | None -> Store.create () in
  register store;
  let optim = Optim.adam ~lr () in
  let t0 = Unix.gettimeofday () in
  let reports =
    Train.fit ~store ~optim ~samples ?guard ?persist ~steps
      ~objective:(fun frame _ -> objective frame)
      key
  in
  (store, reports, Unix.gettimeofday () -. t0)

let final_elbo_per_datum store key =
  Train.eval ~store ~samples:400 ~objective key
  /. float_of_int (Array.length data)

let coefficient_means store =
  let loc s = Tensor.to_scalar (Store.tensor store ("reg." ^ s ^ ".loc")) in
  (loc "a", loc "bA", loc "bR", loc "bAR")

let predict store ~ruggedness ~in_africa key =
  let n = 3200 in
  let frame = Store.Frame.make store in
  let c = if in_africa then 1. else 0. in
  let samples =
    List.init n (fun i ->
        let _, trace, _ = Gen.sample_prior (guide frame) (Prng.fold_in key i) in
        let v s = Trace.get_float s trace in
        v "a" +. (c *. v "bA") +. (ruggedness *. v "bR")
        +. (c *. ruggedness *. v "bAR"))
  in
  let sorted = List.sort compare samples in
  let nth q = List.nth sorted (int_of_float (q *. float_of_int (n - 1))) in
  let mean = List.fold_left ( +. ) 0. samples /. float_of_int n in
  (mean, nth 0.05, nth 0.95)
