(** Variational objectives as lambda_ADEV programs.

    Every objective here is an ordinary [Ad.t Adev.t] value built from
    the compiled [Gen.simulate] / [Gen.log_density] of user model and
    guide programs — the paper's Section 2 workflow. Users are not
    limited to this menu: any composition of [Adev] and [Gen] evaluators
    is a valid objective (the point of programmable VI); these are the
    standard ones used by the experiments.

    Conventions: the {e model} is a generative program whose [observe]
    statements absorb the data, defined over exactly the addresses the
    {e guide} samples. All objectives are to be {e maximized}
    ([Optim.Ascend]) unless noted. *)

val elbo : model:'a Gen.t -> guide:'b Gen.t -> Ad.t Adev.t
(** The evidence lower bound,
    [E_{z ~ guide} (log p(z, y) - log q(z))] (Eqn. 3). With [marginal] /
    [normalize] in either program, densities are unbiased stochastic
    estimates and the objective is the correspondingly looser bound of
    Appendix A.2. *)

val elbo_staged : id:string -> model:'a Gen.t -> guide:'b Gen.t -> Ad.t Adev.t
(** {!elbo} with model and guide staged once through [Compile]
    (plan-cached under ["<id>/model"] / ["<id>/guide"]) and evaluated
    by the straight-line executors — {e bit-identical} to {!elbo},
    with the interpreter's per-call structure discovery amortized
    away. Programs that refuse compilation (PV501) silently use the
    interpreter (counter ["compile/fallback"]). The id names the model
    {e structure}: reuse one id across calls whose programs differ
    only in parameters/data, and [Compile.invalidate] it if the
    structure itself changes. This is what the case studies'
    [?compiled] flags dispatch to. *)

val iwelbo :
  ?batched:bool ->
  particles:int ->
  model:'a Gen.t ->
  guide:'b Gen.t ->
  unit ->
  Ad.t Adev.t
(** The importance-weighted ELBO of Burda et al.:
    [E log (1/N sum_i p(z_i, y) / q(z_i))].

    With [~batched:true] the [N] particles are drawn as ONE vectorized
    pass ([Gen.simulate_batched] / [Gen.log_density_batched]): each
    guide site makes a single rank-lifted draw with the particle axis
    leading, and the bound is one [logsumexp] over that axis — same
    estimator, one tape instead of [N]. Falls back to the sequential
    construction (under the same key) when the pair cannot be
    rank-lifted; the default [false] preserves the historical sequential
    key stream exactly. *)

val elbo_batched : n:int -> model:'a Gen.t -> guide:'b Gen.t -> Ad.t Adev.t
(** [n] independent ELBO terms as one vectorized pass, returned as an
    [[n]]-vector (one per instance). Written for plated-minibatch
    training: model and guide see stacked data, data-indexed parameters
    (leading axis [n]) give each instance its own row. Average it (or
    feed [Train.fit_batched]) to get the minibatch ELBO.
    @raise Dist.Not_batchable when a site cannot be rank-lifted — wrap
    in [Adev.or_else] or keep a per-datum loop as fallback. *)

val hvi :
  keep:string list ->
  reverse:(Trace.t -> Gen.packed) ->
  ?aux_particles:int ->
  model:'a Gen.t ->
  guide_joint:'b Gen.t ->
  unit ->
  Ad.t Adev.t
(** Hierarchical VI: the guide is [guide_joint] (which samples auxiliary
    variables besides [keep]) marginalized onto [keep] with importance
    sampling from the [reverse] kernel; [aux_particles] = 1 gives HVI,
    [> 1] gives IWHVI (Sobolev and Vetrov). Then the ordinary ELBO is
    applied to the marginal guide. *)

val diwhvi :
  particles:int ->
  keep:string list ->
  reverse:(Trace.t -> Gen.packed) ->
  aux_particles:int ->
  model:'a Gen.t ->
  guide_joint:'b Gen.t ->
  Ad.t Adev.t
(** Doubly importance-weighted HVI: IWELBO over the marginalized guide
    (SIR estimates of marginal densities inside the IWELBO objective). *)

val qwake :
  particles:int -> model:'a Gen.t -> proposal:'b Gen.t -> guide:'c Gen.t ->
  Ad.t Adev.t
(** The reweighted-wake-sleep wake-phase guide objective (Appendix B):
    [E_{z ~ SIR(model, proposal)} (- log q(z))], with the SIR proposal
    [proposal] held fixed (pass a detached-parameter guide) and [guide]
    carrying the live parameters. Maximizing it minimizes an inclusive
    (forward) KL surrogate. *)

val pwake :
  particles:int -> model:'a Gen.t -> proposal:'b Gen.t -> Ad.t Adev.t
(** The wake-phase model objective (Appendix B):
    [E_{(z, w) ~ SIR(model, proposal)} (log p(z, y) - log w)]. *)

val forward_kl_sample : model_sample:Trace.t -> guide:'a Gen.t -> Ad.t Adev.t
(** [- log q(z)] at a trace sampled from the true joint — the
    wake-sleep "sleep" term, usable when the model can be forward
    sampled. To be maximized. *)

val symmetric_elbo :
  particles:int -> model:'a Gen.t -> proposal:'b Gen.t -> guide:'c Gen.t ->
  Ad.t Adev.t
(** A symmetric-divergence objective in the style of Domke's diagnostic:
    the average of the ELBO and the SIR-approximated forward-KL term
    ([qwake]); exercises objective composition beyond the standard
    menu. *)
