(** Variational autoencoder on sprite digits (Table 1 / Fig. 10).

    Batched: model and guide are defined over one vector-valued latent
    address holding the whole minibatch (shape [batch x latent_dim]), so
    a gradient step is a handful of tensor ops — the same vectorization
    the paper gets from [vmap]. The hand-coded comparator for Table 1
    lives in [lib/baseline/vae_hand.ml] and shares {!register}'s
    parameters. *)

val latent_dim : int
val hidden_dim : int

val register : Store.t -> Prng.key -> unit
(** Register encoder (trunk + mu/rho heads) and decoder parameters. *)

val encode : Store.Frame.t -> Ad.t -> Ad.t * Ad.t
(** [encode frame images] (images: [n x 144]) = (mu, std), each
    [n x latent_dim]. *)

val decode : Store.Frame.t -> Ad.t -> Ad.t
(** [decode frame z] = pixel logits, [n x 144]. *)

val model : Store.Frame.t -> Tensor.t -> unit Gen.t
(** Generative program for a batch of images: the minibatch prior is a
    plated site ([Dist.iid]: one rank-lifted [batch x latent] draw),
    then decoder and Bernoulli pixel likelihood. *)

val guide : Store.Frame.t -> Tensor.t -> unit Gen.t
(** Amortized Gaussian posterior from the encoder. *)

val model1 : Store.Frame.t -> Tensor.t -> unit Gen.t
(** Single-datum model (image: [[image_dim]] vector, one [latent_dim]
    latent). Rank-polymorphic: under [Gen.simulate_batched] the latent
    site lifts to a particle axis and the observation broadcasts. *)

val guide1 : Store.Frame.t -> Tensor.t -> unit Gen.t
(** Single-datum amortized posterior. *)

val elbo_per_datum :
  ?compiled:bool -> Store.Frame.t -> Tensor.t -> Ad.t Adev.t
(** The batch ELBO divided by the batch size. [?compiled] (default
    false) evaluates model and guide through their staged execution
    plans ([Objectives.elbo_staged], plan id ["vae"]) — bit-identical
    values and gradients, minus the interpreter's per-call discovery
    overhead. *)

val elbo_per_datum_looped : Store.Frame.t -> Tensor.t -> Ad.t Adev.t
(** The same objective computed the unbatched way: one interpreter pass
    per datum, summed. Reference point for the vectorization
    benchmarks; statistically identical to {!elbo_per_datum}. *)

val train :
  ?steps:int -> ?batch:int -> ?lr:float -> ?guard:Guard.t ->
  ?persist:Persist.cfg -> ?store:Store.t -> ?compiled:bool -> Prng.key ->
  Store.t * Train.report list
(** [?guard] configures resilience (see {!Guard}); [?store] continues
    training from an existing (e.g. checkpoint-loaded) store;
    [?compiled] trains through the staged execution plans (warm-staged
    before step 0, bit-identical trajectory). *)

val grad_step_time :
  Store.t -> batch:int -> repeats:int -> Prng.key -> float
(** Mean seconds per gradient estimate (forward + backward) of the
    automated estimator at the given batch size — the Table 1 "Ours"
    column. *)

val grad_step_time_compiled :
  Store.t -> batch:int -> repeats:int -> Prng.key -> float
(** {!grad_step_time} through the staged execution plans
    ([?compiled:true] path); same estimator bit-for-bit. *)

val grad_step_time_looped :
  Store.t -> batch:int -> repeats:int -> Prng.key -> float
(** Mean seconds per gradient estimate of the per-datum looped
    reference ({!elbo_per_datum_looped}) at the given batch size. *)

val iwelbo_step_time :
  Store.t -> particles:int -> batched:bool -> repeats:int -> Prng.key -> float
(** Mean seconds per IWELBO gradient estimate on one datum with the
    given particle count, via the vectorized ([batched:true]) or
    sequential particle path. *)
