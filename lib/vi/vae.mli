(** Variational autoencoder on sprite digits (Table 1 / Fig. 10).

    Batched: model and guide are defined over one vector-valued latent
    address holding the whole minibatch (shape [batch x latent_dim]), so
    a gradient step is a handful of tensor ops — the same vectorization
    the paper gets from [vmap]. The hand-coded comparator for Table 1
    lives in [lib/baseline/vae_hand.ml] and shares {!register}'s
    parameters. *)

val latent_dim : int
val hidden_dim : int

val register : Store.t -> Prng.key -> unit
(** Register encoder (trunk + mu/rho heads) and decoder parameters. *)

val encode : Store.Frame.t -> Ad.t -> Ad.t * Ad.t
(** [encode frame images] (images: [n x 144]) = (mu, std), each
    [n x latent_dim]. *)

val decode : Store.Frame.t -> Ad.t -> Ad.t
(** [decode frame z] = pixel logits, [n x 144]. *)

val model : Store.Frame.t -> Tensor.t -> unit Gen.t
(** Generative program for a batch of images: the minibatch prior is a
    plated site ([Dist.iid]: one rank-lifted [batch x latent] draw),
    then decoder and Bernoulli pixel likelihood. *)

val guide : Store.Frame.t -> Tensor.t -> unit Gen.t
(** Amortized Gaussian posterior from the encoder. *)

val model1 : Store.Frame.t -> Tensor.t -> unit Gen.t
(** Single-datum model (image: [[image_dim]] vector, one [latent_dim]
    latent). Rank-polymorphic: under [Gen.simulate_batched] the latent
    site lifts to a particle axis and the observation broadcasts. *)

val guide1 : Store.Frame.t -> Tensor.t -> unit Gen.t
(** Single-datum amortized posterior. *)

val elbo_per_datum :
  ?compiled:bool -> Store.Frame.t -> Tensor.t -> Ad.t Adev.t
(** The batch ELBO divided by the batch size. [?compiled] (default
    false) evaluates model and guide through their staged execution
    plans ([Objectives.elbo_staged], plan id ["vae"]) — bit-identical
    values and gradients, minus the interpreter's per-call discovery
    overhead. *)

val elbo_per_datum_looped : Store.Frame.t -> Tensor.t -> Ad.t Adev.t
(** The same objective computed the unbatched way: one interpreter pass
    per datum, summed. Reference point for the vectorization
    benchmarks; statistically identical to {!elbo_per_datum}. *)

val elbo_sliced :
  ?segments:int -> ?remat:bool -> Store.Frame.t -> Tensor.t -> Prng.key ->
  Ad.t
(** The per-datum batch ELBO surrogate built as [segments] (default 1)
    contiguous row-slices, each an independent one-sample estimate
    under [fold_in key i]; with [remat] (default false) each slice's
    tape segment sits behind an [Ad.checkpoint] barrier, so peak live
    tape holds one slice's segment instead of the whole batch's —
    gradients bit-identical to the same sliced build without remat. *)

val step_spec :
  shards:int -> remat:bool -> ?compiled:bool -> batch:int -> Prng.key ->
  Train.shard_spec
(** The data-parallel VAE step spec: shard [i] scores rows
    [i*batch/shards, (i+1)*batch/shards) of the step's (deterministic)
    minibatch, scaled by 1/batch. Feed to {!Train.fit_spec} or
    {!Train.shard_step}. *)

val train :
  ?steps:int -> ?batch:int -> ?lr:float -> ?shards:int -> ?remat:bool ->
  ?guard:Guard.t -> ?persist:Persist.cfg -> ?store:Store.t ->
  ?compiled:bool -> Prng.key -> Store.t * Train.report list
(** [?guard] configures resilience (see {!Guard}); [?store] continues
    training from an existing (e.g. checkpoint-loaded) store;
    [?compiled] trains through the staged execution plans (warm-staged
    before step 0, bit-identical trajectory). [?shards] (default 1)
    trains data-parallel via {!step_spec} on the [Parallel] domain
    pool — bit-reproducible across domain counts for a fixed shard
    count, but a different PRNG stream than [shards = 1], which keeps
    the historical trajectory exactly. [?remat] (default false)
    checkpoints each sample's (or shard's) tape segment; gradients stay
    bit-identical to the same path without remat. *)

val grad_step_time :
  Store.t -> batch:int -> repeats:int -> Prng.key -> float
(** Mean seconds per gradient estimate (forward + backward) of the
    automated estimator at the given batch size — the Table 1 "Ours"
    column. *)

val grad_step_time_compiled :
  Store.t -> batch:int -> repeats:int -> Prng.key -> float
(** {!grad_step_time} through the staged execution plans
    ([?compiled:true] path); same estimator bit-for-bit. *)

val grad_step_time_looped :
  Store.t -> batch:int -> repeats:int -> Prng.key -> float
(** Mean seconds per gradient estimate of the per-datum looped
    reference ({!elbo_per_datum_looped}) at the given batch size. *)

val grad_step_peak_live :
  Store.t -> batch:int -> segments:int -> remat:bool -> Prng.key -> int
(** Peak live tape nodes over one {!elbo_sliced} gradient step
    (counters reset from a quiescent point first). The memory bench
    compares [~segments:4 ~remat:true] against
    [~segments:1 ~remat:false] at batch 256. *)

val grad_step_on :
  Store.t -> images:Tensor.t -> segments:int -> remat:bool -> Prng.key ->
  unit
(** One {!elbo_sliced} gradient step (forward + backward + grad read)
    over pre-drawn images, for callers that bracket it with their own
    GC accounting. *)

val grad_step_once :
  Store.t -> batch:int -> segments:int -> remat:bool -> Prng.key -> unit
(** {!grad_step_on} on a freshly synthesized batch. *)

val grad_step_time_remat :
  Store.t -> batch:int -> segments:int -> repeats:int -> Prng.key -> float
(** Mean seconds per checkpointed ({!elbo_sliced} [~remat:true])
    gradient estimate — the cost of rematerialization's second forward
    pass, gated against {!grad_step_time} in CI. *)

val iwelbo_step_time :
  Store.t -> particles:int -> batched:bool -> repeats:int -> Prng.key -> float
(** Mean seconds per IWELBO gradient estimate on one datum with the
    given particle count, via the vectorized ([batched:true]) or
    sequential particle path. *)
