let latent_dim = 10
let hidden_dim = 64
let image_dim = Data.sprite_dim

let register store key =
  Layer.dense_register store ~name:"vae.enc.trunk" ~in_dim:image_dim
    ~out_dim:hidden_dim ~key:(Prng.fold_in key 0);
  Layer.dense_register store ~name:"vae.enc.mu" ~in_dim:hidden_dim
    ~out_dim:latent_dim ~key:(Prng.fold_in key 1);
  Layer.dense_register store ~name:"vae.enc.rho" ~in_dim:hidden_dim
    ~out_dim:latent_dim ~key:(Prng.fold_in key 2);
  Layer.dense_register store ~name:"vae.dec.trunk" ~in_dim:latent_dim
    ~out_dim:hidden_dim ~key:(Prng.fold_in key 3);
  Layer.dense_register store ~name:"vae.dec.out" ~in_dim:hidden_dim
    ~out_dim:image_dim ~key:(Prng.fold_in key 4)

let encode frame images =
  let h = Layer.dense frame ~name:"vae.enc.trunk" ~act:Layer.Softplus images in
  let mu = Layer.dense frame ~name:"vae.enc.mu" h in
  let rho = Layer.dense frame ~name:"vae.enc.rho" h in
  (mu, Ad.add_scalar 1e-3 (Ad.softplus rho))

let decode frame z =
  let h = Layer.dense frame ~name:"vae.dec.trunk" ~act:Layer.Softplus z in
  Layer.dense frame ~name:"vae.dec.out" h

(* The standard-normal prior over one datum's latent code. *)
let prior1 =
  Dist.mv_normal_diag_reparam
    (Ad.const (Tensor.zeros [| latent_dim |]))
    (Ad.const (Tensor.ones [| latent_dim |]))

let model frame images =
  let n = (Tensor.shape images).(0) in
  let open Gen.Syntax in
  (* [iid n prior1]: the minibatch prior as one plated (rank-lifted)
     site — n i.i.d. rows drawn and scored as a single [n x latent]
     batched draw. *)
  let* z = Gen.sample (Dist.iid n prior1) "latent" in
  let logits = decode frame z in
  Gen.observe (Dist.bernoulli_logits_vector logits) (Ad.const images)

let guide frame images =
  let mu, std = encode frame (Ad.const images) in
  let open Gen.Syntax in
  let* _ = Gen.sample (Dist.mv_normal_diag_reparam mu std) "latent" in
  Gen.return ()

(* Single-datum programs (image: [image_dim] vector). These are what the
   vectorized particle evaluators rank-lift: under
   [Gen.simulate_batched ~n:k] the one latent site draws [k x latent]
   in one pass and the observation broadcasts to a [k]-vector of
   likelihoods. *)
let model1 frame image =
  let open Gen.Syntax in
  let* z = Gen.sample prior1 "latent" in
  let logits = decode frame z in
  Gen.observe (Dist.bernoulli_logits_vector logits) (Ad.const image)

let guide1 frame image =
  let mu, std = encode frame (Ad.const image) in
  let open Gen.Syntax in
  let* _ = Gen.sample (Dist.mv_normal_diag_reparam mu std) "latent" in
  Gen.return ()

let elbo_per_datum ?(compiled = false) frame images =
  let n = float_of_int (Tensor.shape images).(0) in
  let objective =
    if compiled then
      Objectives.elbo_staged ~id:"vae" ~model:(model frame images)
        ~guide:(guide frame images)
    else
      Objectives.elbo ~model:(model frame images) ~guide:(guide frame images)
  in
  Adev.map (Ad.scale (1. /. n)) objective

(* The unbatched reference: one interpreter pass and one tape per datum.
   Same objective as {!elbo_per_datum}; what Table 1's vectorization
   column measures against. *)
let elbo_per_datum_looped frame images =
  let n = (Tensor.shape images).(0) in
  let open Adev.Syntax in
  let rec go i acc =
    if i >= n then Adev.return (Ad.scale (1. /. float_of_int n) acc)
    else
      let image = Tensor.slice0 images i in
      let* e =
        Objectives.elbo ~model:(model1 frame image) ~guide:(guide1 frame image)
      in
      go (i + 1) (Ad.add acc e)
  in
  go 0 (Ad.scalar 0.)

(* The batch ELBO built as [segments] contiguous row-slices, each an
   independent one-sample estimate under [fold_in key i]; with [remat]
   each slice's tape segment sits behind an [Ad.checkpoint] barrier, so
   peak live tape holds one slice's segment instead of the whole
   batch's. The slice ELBOs sum to the batch ELBO, scaled per-datum as
   in {!elbo_per_datum} (the segment keys differ from the unsliced
   estimator's stream — compare sliced-to-sliced). *)
let elbo_sliced ?(segments = 1) ?(remat = false) frame images key =
  let n = (Tensor.shape images).(0) in
  let segments = max 1 (min segments n) in
  let term i =
    let lo = i * n / segments and hi = (i + 1) * n / segments in
    let rows = List.init (hi - lo) (fun j -> lo + j) in
    let slice = Tensor.take_rows images rows in
    let objective =
      Objectives.elbo ~model:(model frame slice) ~guide:(guide frame slice)
    in
    let build () = Adev.expectation objective (Prng.fold_in key i) in
    if remat then Ad.checkpoint build else build ()
  in
  Ad.scale
    (1. /. float_of_int n)
    (Ad.add_list (List.init segments term))

(* The data-parallel step spec: shard [i] scores rows
   [i*batch/shards, (i+1)*batch/shards) of the step's minibatch, scaled
   by 1/batch so the shard surrogates sum to the per-datum objective.
   Every shard redraws the (deterministic) minibatch and slices its own
   rows — cheaper than coordinating ownership, and key-exact. *)
let step_spec ~shards ~remat ?(compiled = false) ~batch key =
  { Train.shards;
    remat;
    make =
      (fun frame ~step ~shard ~shards shard_key ->
        let images, _ =
          Data.digit_batch (Prng.fold_in key (10000 + step)) batch
        in
        let lo = shard * batch / shards and hi = (shard + 1) * batch / shards in
        let rows = List.init (hi - lo) (fun j -> lo + j) in
        let slice = Tensor.take_rows images rows in
        let objective =
          if compiled then
            Objectives.elbo_staged ~id:"vae" ~model:(model frame slice)
              ~guide:(guide frame slice)
          else
            Objectives.elbo ~model:(model frame slice)
              ~guide:(guide frame slice)
        in
        Adev.expectation
          (Adev.map (Ad.scale (1. /. float_of_int batch)) objective)
          shard_key) }

let train ?(steps = 400) ?(batch = 64) ?(lr = 1e-3) ?(shards = 1)
    ?(remat = false) ?guard ?persist ?store ?(compiled = false) key =
  let store = match store with Some s -> s | None -> Store.create () in
  register store key;
  let optim = Optim.adam ~lr () in
  (* Warm-stage against a probe batch so the one-time compile lands in
     the visible "train/compile" span; the plan is structure-only, so
     it serves every later batch. *)
  let warm =
    if not compiled then []
    else begin
      let images, _ = Data.digit_batch (Prng.fold_in key 10000) batch in
      let frame = Store.Frame.make store in
      [ ("vae/model", Gen.Packed (model frame images));
        ("vae/guide", Gen.Packed (guide frame images)) ]
    end
  in
  let reports =
    if shards <= 1 then
      (* Historical single-tape path; [remat] places the checkpoint
         barrier inside [expectation_mean], keeping the instruction
         stream (and with remat, the gradients bit-for-bit). *)
      Train.fit ~store ~optim ~remat ?guard ?persist ~compiled:warm ~steps
        ~objective:(fun frame step ->
          let images, _ =
            Data.digit_batch (Prng.fold_in key (10000 + step)) batch
          in
          elbo_per_datum ~compiled frame images)
        key
    else
      Train.fit_spec ~store ~optim ?guard ?persist ~compiled:warm ~steps
        ~spec:(step_spec ~shards ~remat ~compiled ~batch key)
        key
  in
  (store, reports)

(* One warmup round, then time forward + backward per repeat. *)
let time_surrogate store ~repeats make key =
  let run i =
    let frame = Store.Frame.make store in
    let surrogate = Adev.expectation (make frame) (Prng.fold_in key i) in
    Ad.backward surrogate;
    ignore (Store.Frame.grads frame)
  in
  run 0;
  let t0 = Unix.gettimeofday () in
  for i = 1 to repeats do
    run i
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int repeats

let grad_step_time store ~batch ~repeats key =
  let images, _ = Data.digit_batch key batch in
  time_surrogate store ~repeats (fun frame -> elbo_per_datum frame images) key

let grad_step_time_compiled store ~batch ~repeats key =
  let images, _ = Data.digit_batch key batch in
  time_surrogate store ~repeats
    (fun frame -> elbo_per_datum ~compiled:true frame images)
    key

let grad_step_time_looped store ~batch ~repeats key =
  let images, _ = Data.digit_batch key batch in
  time_surrogate store ~repeats
    (fun frame -> elbo_per_datum_looped frame images)
    key

(* One sliced/checkpointed gradient step over pre-drawn images
   (forward + backward + grad read, no data generation), for the
   memory bench's GC word accounting: the caller brackets this with
   [Gc.quick_stat], and excluding the identical-on-both-sides batch
   synthesis keeps the remat-vs-plain comparison about the tape. *)
let grad_step_on store ~images ~segments ~remat key =
  let frame = Store.Frame.make store in
  let surrogate =
    elbo_sliced ~segments ~remat frame images (Prng.fold_in key 1)
  in
  Ad.backward surrogate;
  ignore (Store.Frame.grads frame)

let grad_step_once store ~batch ~segments ~remat key =
  let images, _ = Data.digit_batch key batch in
  grad_step_on store ~images ~segments ~remat key

(* Peak live tape for one gradient step built via {!elbo_sliced}:
   reset the counters from a quiescent point, run forward + backward,
   return the high-water mark. *)
let grad_step_peak_live store ~batch ~segments ~remat key =
  let images, _ = Data.digit_batch key batch in
  Ad.reset_live_stats ();
  grad_step_on store ~images ~segments ~remat key;
  Ad.peak_live_nodes ()

let grad_step_time_remat store ~batch ~segments ~repeats key =
  let images, _ = Data.digit_batch key batch in
  let run i =
    let frame = Store.Frame.make store in
    let surrogate =
      elbo_sliced ~segments ~remat:true frame images (Prng.fold_in key i)
    in
    Ad.backward surrogate;
    ignore (Store.Frame.grads frame)
  in
  run 0;
  let t0 = Unix.gettimeofday () in
  for i = 1 to repeats do
    run i
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int repeats

let iwelbo_step_time store ~particles ~batched ~repeats key =
  let images, _ = Data.digit_batch key 1 in
  let image = Tensor.slice0 images 0 in
  time_surrogate store ~repeats
    (fun frame ->
      Objectives.iwelbo ~batched ~particles ~model:(model1 frame image)
        ~guide:(guide1 frame image) ())
    key
