let latent_dim = 10
let hidden_dim = 64
let image_dim = Data.sprite_dim

let register store key =
  Layer.dense_register store ~name:"vae.enc.trunk" ~in_dim:image_dim
    ~out_dim:hidden_dim ~key:(Prng.fold_in key 0);
  Layer.dense_register store ~name:"vae.enc.mu" ~in_dim:hidden_dim
    ~out_dim:latent_dim ~key:(Prng.fold_in key 1);
  Layer.dense_register store ~name:"vae.enc.rho" ~in_dim:hidden_dim
    ~out_dim:latent_dim ~key:(Prng.fold_in key 2);
  Layer.dense_register store ~name:"vae.dec.trunk" ~in_dim:latent_dim
    ~out_dim:hidden_dim ~key:(Prng.fold_in key 3);
  Layer.dense_register store ~name:"vae.dec.out" ~in_dim:hidden_dim
    ~out_dim:image_dim ~key:(Prng.fold_in key 4)

let encode frame images =
  let h = Layer.dense frame ~name:"vae.enc.trunk" ~act:Layer.Softplus images in
  let mu = Layer.dense frame ~name:"vae.enc.mu" h in
  let rho = Layer.dense frame ~name:"vae.enc.rho" h in
  (mu, Ad.add_scalar 1e-3 (Ad.softplus rho))

let decode frame z =
  let h = Layer.dense frame ~name:"vae.dec.trunk" ~act:Layer.Softplus z in
  Layer.dense frame ~name:"vae.dec.out" h

let model frame images =
  let n = (Tensor.shape images).(0) in
  let zeros = Ad.const (Tensor.zeros [| n; latent_dim |]) in
  let ones = Ad.const (Tensor.ones [| n; latent_dim |]) in
  let open Gen.Syntax in
  let* z = Gen.sample (Dist.mv_normal_diag_reparam zeros ones) "latent" in
  let logits = decode frame z in
  Gen.observe (Dist.bernoulli_logits_vector logits) (Ad.const images)

let guide frame images =
  let mu, std = encode frame (Ad.const images) in
  let open Gen.Syntax in
  let* _ = Gen.sample (Dist.mv_normal_diag_reparam mu std) "latent" in
  Gen.return ()

let elbo_per_datum frame images =
  let n = float_of_int (Tensor.shape images).(0) in
  Adev.map
    (Ad.scale (1. /. n))
    (Objectives.elbo ~model:(model frame images) ~guide:(guide frame images))

let train ?(steps = 400) ?(batch = 64) ?(lr = 1e-3) ?guard ?store key =
  let store = match store with Some s -> s | None -> Store.create () in
  register store key;
  let optim = Optim.adam ~lr () in
  let reports =
    Train.fit ~store ~optim ?guard ~steps
      ~objective:(fun frame step ->
        let images, _ = Data.digit_batch (Prng.fold_in key (10000 + step)) batch in
        elbo_per_datum frame images)
      key
  in
  (store, reports)

let grad_step_time store ~batch ~repeats key =
  let images, _ = Data.digit_batch key batch in
  (* One warmup round, then time forward + backward. *)
  let run i =
    let frame = Store.Frame.make store in
    let surrogate =
      Adev.expectation (elbo_per_datum frame images) (Prng.fold_in key i)
    in
    Ad.backward surrogate;
    ignore (Store.Frame.grads frame)
  in
  run 0;
  let t0 = Unix.gettimeofday () in
  for i = 1 to repeats do
    run i
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int repeats
