(* Training state rides inside the parameter store image under
   reserved "__"-prefixed names, so the durable format stays "a bag of
   named tensors" and every Store guarantee (checksums, atomicity,
   rotation, fallback) covers the whole training state for free. *)

type cfg = {
  dir : string;
  every : int;
  keep : int;
  retries : int;
  backoff_ms : float;
}

let cfg ?(every = 25) ?(keep = 3) ?(retries = 2) ?(backoff_ms = 5.) dir =
  if every < 1 then invalid_arg "Persist.cfg: every < 1";
  { dir; every; keep; retries; backoff_ms }

let step_key = "__ckpt/step"
let retries_key = "__ckpt/guard_retries"
let skips_key = "__ckpt/guard_skips"
let optim_prefix = "__optim/"

let is_reserved name = String.length name >= 2 && name.[0] = '_' && name.[1] = '_'

let save cfg ~step ~store ~optim ~guard =
  let packed = Store.copy store in
  Store.ensure packed step_key (fun () -> Tensor.scalar (float_of_int step));
  Store.ensure packed retries_key (fun () ->
      Tensor.scalar (float_of_int (Guard.retry_count guard)));
  Store.ensure packed skips_key (fun () ->
      Tensor.scalar (float_of_int (Guard.skip_count guard)));
  List.iter
    (fun (name, x) -> Store.ensure packed (optim_prefix ^ name) (fun () -> x))
    (Optim.export_state optim);
  ignore
    (Store.save_rotated ~keep:cfg.keep ~retries:cfg.retries
       ~backoff_ms:cfg.backoff_ms packed ~dir:cfg.dir)

type resumed = { step : int; path : string }

let scalar_int packed name ~default =
  if Store.mem packed name then
    int_of_float (Tensor.to_scalar (Store.tensor packed name))
  else default

let load_into cfg ~store ~optim ~guard =
  match Store.load_latest cfg.dir with
  | None -> None
  | Some (packed, path) ->
    let step = scalar_int packed step_key ~default:0 in
    List.iter
      (fun name ->
        if not (is_reserved name) then begin
          let x = Store.tensor packed name in
          if Store.mem store name then Store.set store name x
          else Store.ensure store name (fun () -> x)
        end)
      (Store.names packed);
    let optim_entries =
      List.filter_map
        (fun name ->
          if String.length name > String.length optim_prefix
             && String.sub name 0 (String.length optim_prefix) = optim_prefix
          then
            Some
              ( String.sub name (String.length optim_prefix)
                  (String.length name - String.length optim_prefix),
                Store.tensor packed name )
          else None)
        (Store.names packed)
    in
    Optim.import_state optim optim_entries;
    Guard.resume guard
      ~retries:(scalar_int packed retries_key ~default:0)
      ~skips:(scalar_int packed skips_key ~default:0);
    Some { step; path }
