(** Semi-supervised VAE (Kingma et al.; paper Appendix D.3).

    Two model/guide pairs over digit sprites: the unsupervised pair
    samples the class label as a latent (guided by a classifier network,
    enumerated with categorical ENUM), the supervised pair observes it.
    Training interleaves unsupervised batches with an occasional
    supervised batch, as in the Pyro tutorial the paper benchmarks. *)

val latent_dim : int
val num_classes : int

val register : Store.t -> Prng.key -> unit

val unsup_model : Store.Frame.t -> Tensor.t -> unit Gen.t
val sup_model : Store.Frame.t -> int -> Tensor.t -> unit Gen.t
val unsup_guide : Store.Frame.t -> Tensor.t -> unit Gen.t
val sup_guide : Store.Frame.t -> int -> Tensor.t -> unit Gen.t

val classify : Store.t -> Tensor.t -> int
(** Most probable label under the guide's classifier head. *)

val classifier_accuracy : Store.t -> Tensor.t -> int array -> float

val train_epoch :
  ?guard:Guard.t ->
  store:Store.t ->
  optim:Optim.t ->
  images:Tensor.t ->
  labels:int array ->
  batch:int ->
  supervised_every:int ->
  Prng.key ->
  float * float
(** One pass over the data; every [supervised_every]-th minibatch uses
    the supervised objective. Returns (mean unsupervised ELBO per datum,
    wall seconds) — the Fig. 15 measurements. *)

val generate : Store.t -> label:int -> Prng.key -> Tensor.t
(** Conditional generation: decode a prior latent for a given class
    (Fig. 16). *)
