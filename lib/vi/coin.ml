let flips =
  [ true; true; true; true; true; true; false; false; false; false ]

let model =
  let open Gen.Syntax in
  let* f =
    Gen.sample (Dist.beta_reinforce (Ad.scalar 10.) (Ad.scalar 10.)) "fairness"
  in
  let rec observe_all = function
    | [] -> Gen.return ()
    | b :: rest ->
      let* () = Gen.observe (Dist.flip_reinforce f) b in
      observe_all rest
  in
  observe_all flips

let register store =
  Store.ensure store "coin.alpha" (fun () -> Tensor.scalar 10.);
  Store.ensure store "coin.beta" (fun () -> Tensor.scalar 10.)

let pos x = Ad.add_scalar 1e-3 (Ad.softplus x)

let guide frame =
  let open Gen.Syntax in
  let alpha = pos (Store.Frame.get frame "coin.alpha") in
  let beta = pos (Store.Frame.get frame "coin.beta") in
  let* _ = Gen.sample (Dist.beta_reinforce alpha beta) "fairness" in
  Gen.return ()

let heads = List.length (List.filter Fun.id flips)

let exact_posterior_mean =
  (10. +. float_of_int heads)
  /. (20. +. float_of_int (List.length flips))

let objective frame = Objectives.elbo ~model ~guide:(guide frame)

let train ?(steps = 1500) ?(samples = 8) ?(lr = 0.02) ?guard ?persist ?store
    key =
  let store = match store with Some s -> s | None -> Store.create () in
  register store;
  let optim = Optim.adam ~lr () in
  let t0 = Unix.gettimeofday () in
  let reports =
    Train.fit ~store ~optim ~samples ?guard ?persist ~steps
      ~objective:(fun frame _ -> objective frame)
      key
  in
  (store, reports, Unix.gettimeofday () -. t0)

let posterior_mean store =
  let soft x = 1e-3 +. Float.log (1. +. Float.exp x) in
  let a = soft (Tensor.to_scalar (Store.tensor store "coin.alpha")) in
  let b = soft (Tensor.to_scalar (Store.tensor store "coin.beta")) in
  a /. (a +. b)

let final_elbo store key = Train.eval ~store ~samples:2000 ~objective key
