let latent_dim = 8
let num_classes = 10
let hidden_dim = 48
let image_dim = Data.sprite_dim

let register store key =
  Layer.mlp_register store ~name:"ssvae.classifier"
    ~dims:[ image_dim; hidden_dim; num_classes ]
    ~key:(Prng.fold_in key 0);
  Layer.mlp_register store ~name:"ssvae.enc.mu"
    ~dims:[ image_dim + num_classes; hidden_dim; latent_dim ]
    ~key:(Prng.fold_in key 1);
  Layer.mlp_register store ~name:"ssvae.enc.rho"
    ~dims:[ image_dim + num_classes; hidden_dim; latent_dim ]
    ~key:(Prng.fold_in key 2);
  Layer.mlp_register store ~name:"ssvae.dec"
    ~dims:[ latent_dim + num_classes; hidden_dim; image_dim ]
    ~key:(Prng.fold_in key 3)

let one_hot label =
  Ad.const
    (Tensor.init [| num_classes |] (fun ix ->
         if ix.(0) = label then 1. else 0.))

let uniform_label_probs =
  lazy (Ad.const (Tensor.full [| num_classes |] (1. /. float_of_int num_classes)))

let decode frame label z =
  Layer.mlp frame ~name:"ssvae.dec" ~layers:2
    (Ad.concat0 [ z; one_hot label ])

let encode frame label image =
  let input = Ad.concat0 [ image; one_hot label ] in
  let mu = Layer.mlp frame ~name:"ssvae.enc.mu" ~layers:2 input in
  let rho = Layer.mlp frame ~name:"ssvae.enc.rho" ~layers:2 input in
  (mu, Ad.add_scalar 1e-3 (Ad.softplus rho))

let latent_prior =
  lazy
    ( Ad.const (Tensor.zeros [| latent_dim |]),
      Ad.const (Tensor.ones [| latent_dim |]) )

let gen_body frame label image =
  let open Gen.Syntax in
  let zeros, ones = Lazy.force latent_prior in
  let* z = Gen.sample (Dist.mv_normal_diag_reparam zeros ones) "latent" in
  let logits = decode frame label z in
  Gen.observe (Dist.bernoulli_logits_vector logits) (Ad.const image)

let unsup_model frame image =
  let open Gen.Syntax in
  let* label =
    Gen.sample
      (Dist.categorical_reinforce (Lazy.force uniform_label_probs))
      "label"
  in
  gen_body frame label image

let sup_model frame label image =
  let open Gen.Syntax in
  let* () =
    Gen.observe (Dist.categorical_reinforce (Lazy.force uniform_label_probs)) label
  in
  gen_body frame label image

let guide_latent frame label image =
  let open Gen.Syntax in
  let mu, std = encode frame label (Ad.const image) in
  let* _ = Gen.sample (Dist.mv_normal_diag_reparam mu std) "latent" in
  Gen.return ()

let classifier_logits frame image =
  Layer.mlp frame ~name:"ssvae.classifier" ~layers:2 image

let unsup_guide frame image =
  let open Gen.Syntax in
  let logits = classifier_logits frame (Ad.const image) in
  let* label = Gen.sample (Dist.categorical_logits_enum logits) "label" in
  guide_latent frame label image

let sup_guide frame label image = guide_latent frame label image

let classify store image =
  let frame = Store.Frame.make store in
  Tensor.argmax (Ad.value (classifier_logits frame (Ad.const image)))

let classifier_accuracy store images labels =
  let n = (Tensor.shape images).(0) in
  let correct = ref 0 in
  for i = 0 to n - 1 do
    if classify store (Tensor.slice0 images i) = labels.(i) then incr correct
  done;
  float_of_int !correct /. float_of_int n

(* The supervised objective includes the classifier cross-entropy term
   (Kingma et al.'s alpha term), so labeled data also trains the
   classifier head. *)
let sup_objective frame label image =
  let open Adev.Syntax in
  let* e =
    Objectives.elbo
      ~model:(sup_model frame label image)
      ~guide:(sup_guide frame label image)
  in
  let class_lp =
    Ad.get (Ad.log_softmax (classifier_logits frame (Ad.const image))) [| label |]
  in
  Adev.return (Ad.add e (Ad.scale 5. class_lp))

let unsup_objective frame image =
  Objectives.elbo ~model:(unsup_model frame image)
    ~guide:(unsup_guide frame image)

let train_epoch ?guard ~store ~optim ~images ~labels ~batch ~supervised_every
    key =
  let n = (Tensor.shape images).(0) in
  let nbatches = n / batch in
  let unsup_total = ref 0. and unsup_batches = ref 0 in
  let t0 = Unix.gettimeofday () in
  let (_ : Train.report list) =
    Train.fit_batch ~store ~optim ?guard ~steps:nbatches
      ~on_step:(fun _ -> ())
      ~objectives:(fun frame step ->
        let supervised = (step + 1) mod supervised_every = 0 in
        List.init batch (fun i ->
            let ix = (step * batch) + i in
            let image = Tensor.slice0 images ix in
            if supervised then sup_objective frame labels.(ix) image
            else unsup_objective frame image))
      key
  in
  (* Reporting pass: estimate the unsupervised ELBO on the first batch. *)
  let frame = Store.Frame.make store in
  for i = 0 to Stdlib.min (batch - 1) (n - 1) do
    unsup_total :=
      !unsup_total
      +. Adev.estimate (unsup_objective frame (Tensor.slice0 images i))
           (Prng.fold_in key (777 + i));
    incr unsup_batches
  done;
  let dt = Unix.gettimeofday () -. t0 in
  (!unsup_total /. float_of_int (Stdlib.max 1 !unsup_batches), dt)

let generate store ~label key =
  let frame = Store.Frame.make store in
  let z = Ad.const (Prng.normal_tensor key [| latent_dim |]) in
  Tensor.sigmoid (Ad.value (decode frame label z))
