(** Stochastic gradient optimizers over a parameter {!Store.t}. *)

type t

val sgd : lr:float -> t

val adam :
  ?beta1:float -> ?beta2:float -> ?eps:float -> lr:float -> unit -> t
(** ADAM with the usual defaults (0.9, 0.999, 1e-8). *)

type direction = Ascend | Descend

val step :
  ?clip_norm:float ->
  ?on_skip:(string -> Tensor.t -> unit) ->
  t ->
  direction ->
  Store.t ->
  (string * Tensor.t) list ->
  unit
(** Apply one update from named gradients. [Ascend] maximizes
    (variational lower bounds), [Descend] minimizes (losses).

    Gradients whose tensors contain non-finite entries are never
    applied (a guard against the occasional divergent REINFORCE
    sample) — but the skip is {e reported}: [on_skip] fires once per
    skipped parameter with its name and raw gradient, and the
    optimizer's {!skipped} counter is incremented, so callers (and the
    [Guard] layer) can see exactly what was dropped.

    [clip_norm], when given, rescales the remaining (finite) gradients
    jointly so their {!Tensor.global_norm} is at most [clip_norm],
    before any moment accumulation. *)

val skipped : t -> int
(** Total number of per-parameter gradient skips since creation (or
    the last {!reset}/{!restore}). *)

val reset : t -> unit
(** Clear moment estimates, step counters, and the skip counter. *)

(** {1 Snapshots}

    Deep snapshots of optimizer state (ADAM moments, step counters,
    skip count), used by the [Guard] checkpoint/rollback machinery so
    a retried step replays with the exact optimizer state it had at
    the snapshot. *)

type snapshot

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
(** Overwrite the optimizer's state with the snapshot's. The snapshot
    may be restored any number of times. *)

(** {1 Durable state}

    Tensor-encoded optimizer state for crash-exact resume (the
    [Persist] layer stores these alongside the parameters in rotated
    checkpoints). The encoding is bit-exact: an export/import
    round-trip reproduces every moment bit and step counter. *)

val export_state : t -> (string * Tensor.t) list
(** ADAM moments and step counters as named tensors (["m.<param>"],
    ["v.<param>"], ["t.<param>"], plus ["skipped"]). Empty moments
    (SGD, or before the first step) export only ["skipped"]. *)

val import_state : t -> (string * Tensor.t) list -> unit
(** Replace the optimizer's state with a previously exported one.
    Entries with unrecognized names are ignored. *)
