(** Conditional VAE (Sohn et al.; paper Appendix D.4): given one
    quadrant of a digit sprite, fill in the other three.

    Two components, as in the paper: a deterministic baseline network
    trained with pixelwise cross-entropy, and a CVAE whose prior network
    conditions the latent on the observed quadrant. *)

val latent_dim : int
val observed_quadrant : int
val input_dim : int
(** Observed-quadrant pixels (36). *)

val output_dim : int
(** Pixels to fill in (108). *)

val register : Store.t -> Prng.key -> unit

val baseline_loss : Store.Frame.t -> Tensor.t -> Tensor.t -> Ad.t
(** Cross-entropy of the deterministic baseline net's fill-in
    (inputs x targets, batched). To be minimized. *)

val model : Store.Frame.t -> Tensor.t -> Tensor.t -> unit Gen.t
(** [model frame input target]: latent from the conditional prior net,
    generation net fills in the quadrants, Bernoulli likelihood on
    [target]. *)

val guide : Store.Frame.t -> Tensor.t -> Tensor.t -> unit Gen.t
(** Recognition network over (input, target). *)

val elbo :
  ?compiled:bool -> Store.Frame.t -> Tensor.t -> Tensor.t -> Ad.t Adev.t
(** Per-datum ELBO; [?compiled] evaluates through the staged execution
    plans (plan id ["cvae"], bit-identical). *)

val model_batch : Store.Frame.t -> Tensor.t -> Tensor.t -> unit Gen.t
(** Stacked-minibatch model (inputs [[b x input_dim]], targets
    [[b x output_dim]]): the latent site carries data-indexed
    [[b x latent]] parameters for the vectorized evaluators. *)

val guide_batch : Store.Frame.t -> Tensor.t -> Tensor.t -> unit Gen.t
(** Stacked-minibatch recognition network. *)

val elbo_batch : Store.Frame.t -> Tensor.t -> Tensor.t -> Ad.t Adev.t
(** The [[b]]-vector of per-datum ELBO terms, computed as one
    vectorized pass ([Objectives.elbo_batched]) with a per-datum
    sequential fallback under the same key. *)

val train_epoch :
  ?guard:Guard.t ->
  store:Store.t ->
  optim:Optim.t ->
  images:Tensor.t ->
  batch:int ->
  Prng.key ->
  float * float
(** One pass (CVAE objective; the baseline net trains jointly on the
    same batches). Returns (mean ELBO per datum, wall seconds) — the
    Fig. 18 measurement. *)

val fill_in : Store.t -> Tensor.t -> Prng.key -> Tensor.t
(** Reconstruct a full sprite from its observed quadrant (Fig. 17):
    returns the 12x12 image with the observed quadrant pasted back. *)
