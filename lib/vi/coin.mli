(** Fairness inference for a noisy coin (Appendix D.1).

    Beta(10, 10) prior on the coin's weight, a sequence of observed
    flips, and a Beta guide with learned concentration parameters. The
    posterior is conjugate, so the learned posterior mean can be checked
    against the exact answer — the Appendix D.1 table. *)

val flips : bool list
(** The observed dataset: 6 heads, 4 tails (mirroring the tutorial). *)

val model : unit Gen.t
val register : Store.t -> unit
val guide : Store.Frame.t -> unit Gen.t

val exact_posterior_mean : float
(** (10 + heads) / (20 + flips). *)

val train :
  ?steps:int -> ?samples:int -> ?lr:float -> ?guard:Guard.t ->
  ?persist:Persist.cfg -> ?store:Store.t -> Prng.key ->
  Store.t * Train.report list * float
(** Returns the trained store, per-step reports, and wall seconds.
    [?guard] configures resilience (see {!Guard}); [?persist] writes
    rotated checkpoints and resumes from them (see {!Persist});
    [?store] continues training from an existing (e.g.
    checkpoint-loaded) store. *)

val posterior_mean : Store.t -> float
(** alpha / (alpha + beta) at the learned parameters. *)

val final_elbo : Store.t -> Prng.key -> float
