type spec =
  | Sgd of { lr : float }
  | Adam of { lr : float; beta1 : float; beta2 : float; eps : float }

type state = { mutable m : Tensor.t; mutable v : Tensor.t; mutable t : int }

type t = {
  spec : spec;
  states : (string, state) Hashtbl.t;
  mutable skipped : int;
}

let sgd ~lr = { spec = Sgd { lr }; states = Hashtbl.create 16; skipped = 0 }

let adam ?(beta1 = 0.9) ?(beta2 = 0.999) ?(eps = 1e-8) ~lr () =
  { spec = Adam { lr; beta1; beta2; eps }; states = Hashtbl.create 16; skipped = 0 }

type direction = Ascend | Descend

let state_for t name shape =
  match Hashtbl.find_opt t.states name with
  | Some s -> s
  | None ->
    let s = { m = Tensor.zeros shape; v = Tensor.zeros shape; t = 0 } in
    Hashtbl.add t.states name s;
    s

let skipped t = t.skipped

let step ?clip_norm ?(on_skip = fun _ _ -> ()) t direction store grads =
  let sign = match direction with Ascend -> 1. | Descend -> -1. in
  (* Fault-injection hook (one branch when no plan is installed): a
     poisoned gradient exercises the exact skip/report machinery a real
     divergent sample would. *)
  let grads =
    if Fault.active () then
      List.map
        (fun (name, g) ->
          match Fault.grad_poison ~name with
          | None -> (name, g)
          | Some v ->
            let a = Tensor.to_array g in
            if Array.length a > 0 then a.(0) <- v;
            (name, Tensor.of_array (Tensor.shape g) a))
        grads
    else grads
  in
  let finite, bad =
    List.partition (fun (_, g) -> Tensor.all_finite g) grads
  in
  List.iter
    (fun (name, g) ->
      t.skipped <- t.skipped + 1;
      Obs.incr "optim/skipped_grads";
      on_skip name g)
    bad;
  let finite =
    match clip_norm with
    | None -> finite
    | Some max_norm ->
      if Obs.live () then begin
        let norm = Tensor.global_norm (List.map snd finite) in
        Obs.hist "optim/grad_norm" norm;
        if norm > max_norm then Obs.incr "optim/clip_events"
      end;
      let clipped =
        Tensor.clip_by_global_norm ~max_norm (List.map snd finite)
      in
      List.map2 (fun (name, _) g -> (name, g)) finite clipped
  in
  List.iter
    (fun (name, g) ->
      let x = Store.tensor store name in
      match t.spec with
      | Sgd { lr } ->
        let slr = sign *. lr in
        Store.set store name (Tensor.map2 (fun xi gi -> xi +. (slr *. gi)) x g)
      | Adam { lr; beta1; beta2; eps } ->
        let s = state_for t name (Tensor.shape g) in
        s.t <- s.t + 1;
        (* Moments are updated in place (the state owns them; snapshots
           deep-copy) and the bias-corrected update is fused into one
           map2 — the per-element expressions match the former
           scale/add/mul chain operation for operation, so every result
           bit is unchanged. *)
        let c1 = 1. -. beta1 and c2 = 1. -. beta2 in
        Tensor.map2_ (fun mi gi -> (beta1 *. mi) +. (c1 *. gi)) s.m g;
        Tensor.map2_ (fun vi gi -> (beta2 *. vi) +. (c2 *. (gi *. gi))) s.v g;
        let cm = 1. /. (1. -. (beta1 ** float_of_int s.t)) in
        let cv = 1. /. (1. -. (beta2 ** float_of_int s.t)) in
        let update =
          Tensor.map2
            (fun mi vi -> (cm *. mi) /. (Float.sqrt (cv *. vi) +. eps))
            s.m s.v
        in
        let slr = sign *. lr in
        Store.set store name
          (Tensor.map2 (fun xi ui -> xi +. (slr *. ui)) x update))
    finite

let reset t =
  Hashtbl.reset t.states;
  t.skipped <- 0

type snapshot = (string * state) list * int

(* Both directions deep-copy the moment tensors: [step] mutates them in
   place, so a shared reference would let later steps corrupt a saved
   snapshot (and a restored state corrupt the snapshot it came from). *)
let snapshot t : snapshot =
  ( Hashtbl.fold
      (fun name s acc ->
        (name, { m = Tensor.copy s.m; v = Tensor.copy s.v; t = s.t }) :: acc)
      t.states [],
    t.skipped )

let restore t ((states, skipped) : snapshot) =
  Hashtbl.reset t.states;
  List.iter
    (fun (name, s) ->
      Hashtbl.add t.states name
        { m = Tensor.copy s.m; v = Tensor.copy s.v; t = s.t })
    states;
  t.skipped <- skipped

(* Tensor-encoded state, for durable checkpoints: per parameter the
   moments as-is and the step counter as a scalar, prefixed "m."/"v."/
   "t." (the parameter name may itself contain dots; only the first
   dot is the tag separator). Scalars round-trip exactly — counters
   are far below the 2^53 integer-precision limit. *)

let export_state t =
  let entries =
    Hashtbl.fold
      (fun name s acc ->
        ("m." ^ name, Tensor.copy s.m)
        :: ("v." ^ name, Tensor.copy s.v)
        :: ("t." ^ name, Tensor.scalar (float_of_int s.t))
        :: acc)
      t.states []
  in
  ("skipped", Tensor.scalar (float_of_int t.skipped))
  :: List.sort (fun (a, _) (b, _) -> String.compare a b) entries

let import_state t entries =
  Hashtbl.reset t.states;
  t.skipped <- 0;
  let ms = Hashtbl.create 16 in
  let vs = Hashtbl.create 16 in
  let ts = Hashtbl.create 16 in
  List.iter
    (fun (key, x) ->
      if key = "skipped" then
        t.skipped <- int_of_float (Tensor.to_scalar x)
      else
        match String.index_opt key '.' with
        | None -> ()
        | Some i ->
          let tag = String.sub key 0 i in
          let name = String.sub key (i + 1) (String.length key - i - 1) in
          (match tag with
          | "m" -> Hashtbl.replace ms name x
          | "v" -> Hashtbl.replace vs name x
          | "t" -> Hashtbl.replace ts name x
          | _ -> ()))
    entries;
  Hashtbl.iter
    (fun name m ->
      match (Hashtbl.find_opt vs name, Hashtbl.find_opt ts name) with
      | Some v, Some steps ->
        Hashtbl.add t.states name
          { m = Tensor.copy m;
            v = Tensor.copy v;
            t = int_of_float (Tensor.to_scalar steps) }
      | _ -> ())
    ms
