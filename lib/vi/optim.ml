type spec =
  | Sgd of { lr : float }
  | Adam of { lr : float; beta1 : float; beta2 : float; eps : float }

type state = { mutable m : Tensor.t; mutable v : Tensor.t; mutable t : int }

type t = {
  spec : spec;
  states : (string, state) Hashtbl.t;
  mutable skipped : int;
}

let sgd ~lr = { spec = Sgd { lr }; states = Hashtbl.create 16; skipped = 0 }

let adam ?(beta1 = 0.9) ?(beta2 = 0.999) ?(eps = 1e-8) ~lr () =
  { spec = Adam { lr; beta1; beta2; eps }; states = Hashtbl.create 16; skipped = 0 }

type direction = Ascend | Descend

let state_for t name shape =
  match Hashtbl.find_opt t.states name with
  | Some s -> s
  | None ->
    let s = { m = Tensor.zeros shape; v = Tensor.zeros shape; t = 0 } in
    Hashtbl.add t.states name s;
    s

let skipped t = t.skipped

let step ?clip_norm ?(on_skip = fun _ _ -> ()) t direction store grads =
  let sign = match direction with Ascend -> 1. | Descend -> -1. in
  let finite, bad =
    List.partition (fun (_, g) -> Tensor.all_finite g) grads
  in
  List.iter
    (fun (name, g) ->
      t.skipped <- t.skipped + 1;
      on_skip name g)
    bad;
  let finite =
    match clip_norm with
    | None -> finite
    | Some max_norm ->
      let clipped =
        Tensor.clip_by_global_norm ~max_norm (List.map snd finite)
      in
      List.map2 (fun (name, _) g -> (name, g)) finite clipped
  in
  List.iter
    (fun (name, g) ->
      let x = Store.tensor store name in
      match t.spec with
      | Sgd { lr } ->
        Store.set store name (Tensor.add x (Tensor.scale (sign *. lr) g))
      | Adam { lr; beta1; beta2; eps } ->
        let s = state_for t name (Tensor.shape g) in
        s.t <- s.t + 1;
        s.m <- Tensor.add (Tensor.scale beta1 s.m) (Tensor.scale (1. -. beta1) g);
        s.v <-
          Tensor.add (Tensor.scale beta2 s.v)
            (Tensor.scale (1. -. beta2) (Tensor.mul g g));
        let mhat = Tensor.scale (1. /. (1. -. (beta1 ** float_of_int s.t))) s.m in
        let vhat = Tensor.scale (1. /. (1. -. (beta2 ** float_of_int s.t))) s.v in
        let update =
          Tensor.map2 (fun mi vi -> mi /. (Float.sqrt vi +. eps)) mhat vhat
        in
        Store.set store name (Tensor.add x (Tensor.scale (sign *. lr) update)))
    finite

let reset t =
  Hashtbl.reset t.states;
  t.skipped <- 0

type snapshot = (string * state) list * int

let snapshot t : snapshot =
  ( Hashtbl.fold
      (fun name s acc -> (name, { m = s.m; v = s.v; t = s.t }) :: acc)
      t.states [],
    t.skipped )

let restore t ((states, skipped) : snapshot) =
  Hashtbl.reset t.states;
  List.iter
    (fun (name, s) -> Hashtbl.add t.states name { m = s.m; v = s.v; t = s.t })
    states;
  t.skipped <- skipped
