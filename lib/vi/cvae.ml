let latent_dim = 5
let observed_quadrant = 2 (* bottom-left, as in the paper's Fig. 17 *)
let hidden_dim = 48
let input_dim = Data.sprite_side / 2 * (Data.sprite_side / 2)
let output_dim = Data.sprite_dim - input_dim

let register store key =
  Layer.mlp_register store ~name:"cvae.baseline"
    ~dims:[ input_dim; hidden_dim; output_dim ]
    ~key:(Prng.fold_in key 0);
  Layer.mlp_register store ~name:"cvae.prior.mu"
    ~dims:[ input_dim; hidden_dim; latent_dim ]
    ~key:(Prng.fold_in key 1);
  Layer.mlp_register store ~name:"cvae.prior.rho"
    ~dims:[ input_dim; hidden_dim; latent_dim ]
    ~key:(Prng.fold_in key 2);
  Layer.mlp_register store ~name:"cvae.gen"
    ~dims:[ latent_dim + input_dim; hidden_dim; output_dim ]
    ~key:(Prng.fold_in key 3);
  Layer.mlp_register store ~name:"cvae.rec.mu"
    ~dims:[ input_dim + output_dim; hidden_dim; latent_dim ]
    ~key:(Prng.fold_in key 4);
  Layer.mlp_register store ~name:"cvae.rec.rho"
    ~dims:[ input_dim + output_dim; hidden_dim; latent_dim ]
    ~key:(Prng.fold_in key 5)

let baseline_loss frame inputs targets =
  let logits = Layer.mlp frame ~name:"cvae.baseline" ~layers:2 (Ad.const inputs) in
  let n = float_of_int (Tensor.shape inputs).(0) in
  Ad.scale (-1. /. n)
    (Dist.log_density_bernoulli_logits ~logits (Ad.const targets))

let heads frame prefix input =
  let mu = Layer.mlp frame ~name:(prefix ^ ".mu") ~layers:2 input in
  let rho = Layer.mlp frame ~name:(prefix ^ ".rho") ~layers:2 input in
  (mu, Ad.add_scalar 1e-3 (Ad.softplus rho))

let model frame input target =
  let open Gen.Syntax in
  let mu, std = heads frame "cvae.prior" (Ad.const input) in
  let* z = Gen.sample (Dist.mv_normal_diag_reparam mu std) "z" in
  let logits =
    Layer.mlp frame ~name:"cvae.gen" ~layers:2
      (Ad.concat0 [ z; Ad.const input ])
  in
  Gen.observe (Dist.bernoulli_logits_vector logits) (Ad.const target)

let guide frame input target =
  let open Gen.Syntax in
  let mu, std =
    heads frame "cvae.rec" (Ad.const (Tensor.concat0 [ input; target ]))
  in
  let* _ = Gen.sample (Dist.mv_normal_diag_reparam mu std) "z" in
  Gen.return ()

let elbo frame input target =
  Objectives.elbo ~model:(model frame input target)
    ~guide:(guide frame input target)

let split_image image =
  let input = Tensor.flatten (Data.quadrant image observed_quadrant) in
  let target = Data.without_quadrant image observed_quadrant in
  (input, target)

let train_epoch ?guard ~store ~optim ~images ~batch key =
  let n = (Tensor.shape images).(0) in
  let nbatches = n / batch in
  let t0 = Unix.gettimeofday () in
  let reports =
    Train.fit_batch ~store ~optim ?guard ~steps:nbatches
      ~objectives:(fun frame step ->
        let datum i =
          let image = Tensor.slice0 images ((step * batch) + i) in
          let input, target = split_image image in
          let open Adev.Syntax in
          let* e = elbo frame input target in
          (* Joint training: the deterministic baseline net learns from
             the same pixels (negated: outer loop ascends). *)
          let bl =
            baseline_loss frame
              (Tensor.stack0 [ input ])
              (Tensor.stack0 [ target ])
          in
          Adev.return (Ad.sub e bl)
        in
        List.init batch datum)
      key
  in
  let dt = Unix.gettimeofday () -. t0 in
  let mean =
    List.fold_left (fun acc r -> acc +. r.Train.objective) 0. reports
    /. float_of_int (Stdlib.max 1 nbatches)
  in
  (mean, dt)

let reassemble input filled =
  let side = Data.sprite_side in
  let half = side / 2 in
  let r0 = observed_quadrant / 2 * half
  and c0 = observed_quadrant mod 2 * half in
  let next = ref 0 in
  Tensor.init [| side; side |] (fun ix ->
      let r = ix.(0) and c = ix.(1) in
      if r >= r0 && r < r0 + half && c >= c0 && c < c0 + half then
        Tensor.get_flat input (((r - r0) * half) + (c - c0))
      else begin
        let v = Tensor.get_flat filled !next in
        incr next;
        v
      end)

let fill_in store image key =
  let frame = Store.Frame.make store in
  let input, _ = split_image image in
  let mu, std = heads frame "cvae.prior" (Ad.const input) in
  let z = Ad.const (Prng.normal_tensor_mean_std key (Ad.value mu) (Ad.value std)) in
  let logits =
    Layer.mlp frame ~name:"cvae.gen" ~layers:2 (Ad.concat0 [ z; Ad.const input ])
  in
  reassemble input (Tensor.sigmoid (Ad.value logits))
