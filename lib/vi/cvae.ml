let latent_dim = 5
let observed_quadrant = 2 (* bottom-left, as in the paper's Fig. 17 *)
let hidden_dim = 48
let input_dim = Data.sprite_side / 2 * (Data.sprite_side / 2)
let output_dim = Data.sprite_dim - input_dim

let register store key =
  Layer.mlp_register store ~name:"cvae.baseline"
    ~dims:[ input_dim; hidden_dim; output_dim ]
    ~key:(Prng.fold_in key 0);
  Layer.mlp_register store ~name:"cvae.prior.mu"
    ~dims:[ input_dim; hidden_dim; latent_dim ]
    ~key:(Prng.fold_in key 1);
  Layer.mlp_register store ~name:"cvae.prior.rho"
    ~dims:[ input_dim; hidden_dim; latent_dim ]
    ~key:(Prng.fold_in key 2);
  Layer.mlp_register store ~name:"cvae.gen"
    ~dims:[ latent_dim + input_dim; hidden_dim; output_dim ]
    ~key:(Prng.fold_in key 3);
  Layer.mlp_register store ~name:"cvae.rec.mu"
    ~dims:[ input_dim + output_dim; hidden_dim; latent_dim ]
    ~key:(Prng.fold_in key 4);
  Layer.mlp_register store ~name:"cvae.rec.rho"
    ~dims:[ input_dim + output_dim; hidden_dim; latent_dim ]
    ~key:(Prng.fold_in key 5)

let baseline_loss frame inputs targets =
  let logits = Layer.mlp frame ~name:"cvae.baseline" ~layers:2 (Ad.const inputs) in
  let n = float_of_int (Tensor.shape inputs).(0) in
  Ad.scale (-1. /. n)
    (Dist.log_density_bernoulli_logits ~logits (Ad.const targets))

let heads frame prefix input =
  let mu = Layer.mlp frame ~name:(prefix ^ ".mu") ~layers:2 input in
  let rho = Layer.mlp frame ~name:(prefix ^ ".rho") ~layers:2 input in
  (mu, Ad.add_scalar 1e-3 (Ad.softplus rho))

let model frame input target =
  let open Gen.Syntax in
  let mu, std = heads frame "cvae.prior" (Ad.const input) in
  let* z = Gen.sample (Dist.mv_normal_diag_reparam mu std) "z" in
  let logits =
    Layer.mlp frame ~name:"cvae.gen" ~layers:2
      (Ad.concat0 [ z; Ad.const input ])
  in
  Gen.observe (Dist.bernoulli_logits_vector logits) (Ad.const target)

let guide frame input target =
  let open Gen.Syntax in
  let mu, std =
    heads frame "cvae.rec" (Ad.const (Tensor.concat0 [ input; target ]))
  in
  let* _ = Gen.sample (Dist.mv_normal_diag_reparam mu std) "z" in
  Gen.return ()

let elbo ?(compiled = false) frame input target =
  if compiled then
    Objectives.elbo_staged ~id:"cvae" ~model:(model frame input target)
      ~guide:(guide frame input target)
  else
    Objectives.elbo ~model:(model frame input target)
      ~guide:(guide frame input target)

(* Row-wise concatenation of [n x a] and [n x b] into [n x (a+b)]. *)
let hcat a b = Ad.transpose (Ad.concat0 [ Ad.transpose a; Ad.transpose b ])

(* Stacked-minibatch programs (inputs: [b x input_dim], targets:
   [b x output_dim]). The prior/recognition heads run once on the whole
   stack, so the "z" site carries data-indexed [b x latent] parameters:
   under [Gen.simulate_batched ~n:b] each instance draws its own row
   and the Bernoulli observation scores per row. *)
let model_batch frame inputs targets =
  let open Gen.Syntax in
  let mu, std = heads frame "cvae.prior" (Ad.const inputs) in
  let* z = Gen.sample (Dist.mv_normal_diag_reparam mu std) "z" in
  let logits =
    Layer.mlp frame ~name:"cvae.gen" ~layers:2 (hcat z (Ad.const inputs))
  in
  Gen.observe (Dist.bernoulli_logits_vector logits) (Ad.const targets)

let guide_batch frame inputs targets =
  let open Gen.Syntax in
  let mu, std =
    heads frame "cvae.rec"
      (Ad.const (Tensor.transpose (Tensor.concat0 [ Tensor.transpose inputs; Tensor.transpose targets ])))
  in
  let* _ = Gen.sample (Dist.mv_normal_diag_reparam mu std) "z" in
  Gen.return ()

(* The [b]-vector of per-datum ELBO terms: vectorized when every site
   rank-lifts (one batched pass), with a per-datum sequential loop as
   the same-key fallback. *)
let elbo_batch frame inputs targets =
  let b = (Tensor.shape inputs).(0) in
  let vectorized =
    Objectives.elbo_batched ~n:b
      ~model:(model_batch frame inputs targets)
      ~guide:(guide_batch frame inputs targets)
  in
  let looped =
    let open Adev.Syntax in
    let rec go i acc =
      if i >= b then Adev.return (Ad.stack0 (List.rev acc))
      else
        let* e =
          elbo frame (Tensor.slice0 inputs i) (Tensor.slice0 targets i)
        in
        go (i + 1) (e :: acc)
    in
    go 0 []
  in
  Adev.or_else vectorized looped

let split_image image =
  let input = Tensor.flatten (Data.quadrant image observed_quadrant) in
  let target = Data.without_quadrant image observed_quadrant in
  (input, target)

let minibatch images ~batch ~step =
  let rows =
    List.init batch (fun i ->
        split_image (Tensor.slice0 images ((step * batch) + i)))
  in
  (Tensor.stack0 (List.map fst rows), Tensor.stack0 (List.map snd rows))

let train_epoch ?guard ~store ~optim ~images ~batch key =
  let n = (Tensor.shape images).(0) in
  let nbatches = n / batch in
  let t0 = Unix.gettimeofday () in
  let reports =
    Train.fit_batched ~store ~optim ?guard ~steps:nbatches
      ~objective:(fun frame step ->
        let inputs, targets = minibatch images ~batch ~step in
        let obj =
          let open Adev.Syntax in
          let* es = elbo_batch frame inputs targets in
          (* Joint training: the deterministic baseline net learns from
             the same pixels (negated: outer loop ascends). One batch
             cross-entropy stands in for the per-datum terms — same
             mean objective. *)
          let bl = baseline_loss frame inputs targets in
          Adev.return (Ad.sub es bl)
        in
        (batch, obj))
      key
  in
  let dt = Unix.gettimeofday () -. t0 in
  let mean =
    List.fold_left (fun acc r -> acc +. r.Train.objective) 0. reports
    /. float_of_int (Stdlib.max 1 nbatches)
  in
  (mean, dt)

let reassemble input filled =
  let side = Data.sprite_side in
  let half = side / 2 in
  let r0 = observed_quadrant / 2 * half
  and c0 = observed_quadrant mod 2 * half in
  let next = ref 0 in
  Tensor.init [| side; side |] (fun ix ->
      let r = ix.(0) and c = ix.(1) in
      if r >= r0 && r < r0 + half && c >= c0 && c < c0 + half then
        Tensor.get_flat input (((r - r0) * half) + (c - c0))
      else begin
        let v = Tensor.get_flat filled !next in
        incr next;
        v
      end)

let fill_in store image key =
  let frame = Store.Frame.make store in
  let input, _ = split_image image in
  let mu, std = heads frame "cvae.prior" (Ad.const input) in
  let z = Ad.const (Prng.normal_tensor_mean_std key (Ad.value mu) (Ad.value std)) in
  let logits =
    Layer.mlp frame ~name:"cvae.gen" ~layers:2 (Ad.concat0 [ z; Ad.const input ])
  in
  reassemble input (Tensor.sigmoid (Ad.value logits))
