(** Stochastic-optimization driver: repeatedly estimate an objective's
    gradient with ADEV and apply an optimizer update.

    Every loop flavor is guarded (see [Guard]): after each backward
    pass the objective and gradients are scanned for NaN/Inf, and the
    guard's policy decides whether to proceed, skip, roll back to the
    last snapshot, or raise [Guard.Diverged]. When no [?guard] is
    passed, a fresh default guard ([Skip_step], no clipping) is used,
    which reproduces the historical behavior exactly — same updates,
    same PRNG stream — while still counting anomalies.

    Every loop flavor is also {e resumable}: with [?persist] the loop
    writes rotated, checksummed checkpoints (see [Persist]) after
    every [cfg.every]-th committed step and, on startup, restores the
    newest readable one — parameters, optimizer moments, and guard
    counters — continuing bit-exactly where the interrupted run left
    off. With fault injection active (see [Fault]) each step first
    runs the fault plan's step hook, and an {e injected}
    [Out_of_memory] is absorbed by skipping that step's update
    (counted as ["train/oom_skipped"]); real allocation failures
    still propagate. *)

type report = {
  step : int;
  objective : float;  (** The (primal) objective estimate at this step. *)
  anomalies : int;
      (** Cumulative anomalies observed by the guard so far (including
          ones absorbed by skips or rollbacks). *)
  retries : int;  (** Cumulative rollbacks performed so far. *)
}

(** {1 Shardable step specifications}

    Every training flavor lowers to one {e step spec}: a builder that,
    given a parameter frame, the step index, a shard index, and that
    shard's PRNG key, returns the shard's surrogate loss. The driver
    runs one independent forward + backward per shard (own frame, own
    tape) on the [Parallel] domain pool and combines the shard
    gradients with a deterministic fixed-shape pairwise tree reduction
    keyed by parameter name — so for any fixed shard count, results
    are bit-identical whether the pool runs 1 domain or many. Shard
    surrogates must be scaled so that their {e sum} over shards is the
    step objective. Shard blocks run with observability suppressed and
    under [Ad.shard_mode]; REINFORCE-baseline sites (shared mutable
    cells) are not sharding-safe — see docs/MEMORY.md. *)

type shard_spec = {
  shards : int;  (** Number of data-parallel shards per step (>= 1). *)
  remat : bool;
      (** Wrap each shard's surrogate in an [Ad.checkpoint] barrier:
          the shard's tape segment is discarded after construction and
          rematerialized during backward, with transient tensors drawn
          from the domain's segment pool. *)
  make :
    Store.Frame.t -> step:int -> shard:int -> shards:int -> Prng.key -> Ad.t;
      (** [make frame ~step ~shard ~shards key] builds shard [shard]'s
          surrogate. With [shards = 1] the key is the historical
          per-step key [fold_in key step]; otherwise shard [i]
          receives [fold_in key_step i]. *)
}

val shard_step :
  store:Store.t ->
  spec:shard_spec ->
  step:int ->
  Prng.key ->
  float * (string * Tensor.t) list
(** One step's forward/backward(s) for [spec] outside the training loop
    — no guard, no optimizer, no observability spans — returning the
    objective value and the tree-reduced gradients. The key discipline
    matches the driver ([fold_in key step], then [fold_in _ shard] when
    sharded), so the memory bench and the determinism tests exercise
    the same reduction shape {!fit_spec} runs. *)

val fit_spec :
  store:Store.t ->
  optim:Optim.t ->
  ?direction:Optim.direction ->
  ?guard:Guard.t ->
  ?persist:Persist.cfg ->
  ?preflight:Check.target list ->
  ?preflight_strict:bool ->
  ?compiled:(string * Gen.packed) list ->
  ?on_step:(report -> unit) ->
  steps:int ->
  spec:shard_spec ->
  Prng.key ->
  report list
(** The generic driver: every other flavor is a [shard_spec] instance.
    Guard scanning, persistence, fault hooks, and reporting all run on
    the coordinating domain against the tree-reduced gradients, so
    chaos drills and crash-exact resume behave identically in sharded
    and sequential runs. *)

val fit :
  store:Store.t ->
  optim:Optim.t ->
  ?direction:Optim.direction ->
  ?samples:int ->
  ?remat:bool ->
  ?guard:Guard.t ->
  ?persist:Persist.cfg ->
  ?preflight:Check.target list ->
  ?preflight_strict:bool ->
  ?compiled:(string * Gen.packed) list ->
  ?on_step:(report -> unit) ->
  steps:int ->
  objective:(Store.Frame.t -> int -> Ad.t Adev.t) ->
  Prng.key ->
  report list
(** [fit ~store ~optim ~steps ~objective key] runs [steps] updates. The
    objective builder receives a fresh parameter frame and the step
    index (for minibatching) and returns the lambda_ADEV objective;
    [samples] (default 1) gradient estimates are averaged per step.
    Direction defaults to [Ascend]. Returns one report per step, in
    order — the {e committed} trajectory: steps undone by a rollback
    are replayed and reported once, though [on_step] may fire more
    than once per index while retrying.

    [preflight] statically analyzes the given targets (see [Check])
    before the first step: diagnostics are printed to stderr, and with
    [preflight_strict] (default false) any error-severity diagnostic
    raises [Check.Preflight_error] instead of starting training.

    [compiled] warm-stages the named programs through [Compile] before
    step 0 (under the ["train/compile"] span), so the one-time staging
    cost is visible in [ppvi profile] rather than inflating the first
    step; a PV501 refusal is reported and the program simply runs on
    the interpreter. Pass the same ids the objective uses (e.g.
    [("vae/model", Packed m); ("vae/guide", Packed g)] when the
    objective is [Objectives.elbo_staged ~id:"vae"]).

    [remat] (default false) places an [Ad.checkpoint] barrier around
    each of the [samples] per-sample surrogates: gradients stay
    bit-identical (replay is keyed), peak live tape drops to one
    sample's segment.
    @raise Guard.Diverged per the guard's policy.
    @raise Check.Preflight_error under [preflight_strict]. *)

val fit_batch :
  store:Store.t ->
  optim:Optim.t ->
  ?direction:Optim.direction ->
  ?shards:int ->
  ?remat:bool ->
  ?guard:Guard.t ->
  ?persist:Persist.cfg ->
  ?preflight:Check.target list ->
  ?preflight_strict:bool ->
  ?compiled:(string * Gen.packed) list ->
  ?on_step:(report -> unit) ->
  steps:int ->
  objectives:(Store.Frame.t -> int -> Ad.t Adev.t list) ->
  Prng.key ->
  report list
(** Like {!fit}, for per-datum objectives that must be estimated with
    {e independent} randomness (so that e.g. an ENUM site in one datum
    does not enumerate jointly with the next datum's sites): each
    objective in the returned list gets its own surrogate and key, and
    the update uses their average.

    [shards] (default 1) splits the objective list into contiguous
    ranges, one per shard, estimated data-parallel on the domain pool
    and tree-reduced; [shards = 1] reproduces the historical stream
    bit-for-bit, and any fixed [shards > 1] is bit-reproducible across
    domain counts. [remat] checkpoints each shard's surrogate. *)

val fit_batched :
  store:Store.t ->
  optim:Optim.t ->
  ?direction:Optim.direction ->
  ?guard:Guard.t ->
  ?persist:Persist.cfg ->
  ?preflight:Check.target list ->
  ?preflight_strict:bool ->
  ?compiled:(string * Gen.packed) list ->
  ?on_step:(report -> unit) ->
  steps:int ->
  objective:(Store.Frame.t -> int -> int * Ad.t Adev.t) ->
  Prng.key ->
  report list
(** Like {!fit_batch}, for vectorized per-instance objectives (e.g.
    {!Objectives.elbo_batched}): the builder returns the instance count
    [m] together with ONE lambda_ADEV computation whose value is the
    [[m]]-vector of per-instance objective terms; the update uses
    [sum / m] as the surrogate. One batched pass replaces [m]
    independent surrogates — the instances share the step's key, which
    is exactly what the batched evaluators' [fold_in] row discipline
    expects. *)

val fit_surrogate :
  store:Store.t ->
  optim:Optim.t ->
  ?direction:Optim.direction ->
  ?guard:Guard.t ->
  ?persist:Persist.cfg ->
  ?preflight:Check.target list ->
  ?preflight_strict:bool ->
  ?compiled:(string * Gen.packed) list ->
  ?on_step:(report -> unit) ->
  steps:int ->
  surrogate:(Store.Frame.t -> int -> Prng.key -> Ad.t) ->
  Prng.key ->
  report list
(** Escape hatch for engines that build their own surrogate losses
    (the monolithic baseline of [lib/baseline]); guarded like the
    others. *)

val eval :
  store:Store.t ->
  ?samples:int ->
  objective:(Store.Frame.t -> Ad.t Adev.t) ->
  Prng.key ->
  float
(** Monte Carlo estimate of an objective at the current parameters,
    without updating them. *)
