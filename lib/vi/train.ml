type report = {
  step : int;
  objective : float;
  anomalies : int;
  retries : int;
}

(* Shared guarded driver. [make_surrogate frame step key] builds the
   differentiable surrogate for one step; everything else — backward
   pass, anomaly scan, policy dispatch, snapshots, the optimizer update
   — is common to all loop flavors. On rollback the step counter jumps
   back to the snapshot step and already-collected reports past it are
   discarded (so the returned series is the committed trajectory). *)
(* Opt-in pre-flight: statically analyze the given targets before any
   optimization step runs. Diagnostics go to stderr; under [strict] an
   error-severity diagnostic aborts the run with
   [Check.Preflight_error] instead of letting training fail later (or
   silently optimize a -inf-density objective). *)
let run_preflight ~strict targets =
  match targets with
  | [] -> ()
  | _ ->
    Obs.span Obs.Preflight "train/preflight" (fun () ->
        let failing =
          List.filter
            (fun target ->
              let report = Check.analyze target in
              List.iter
                (fun d ->
                  (* Routed through the sink, not printed directly: a
                     console sink keeps the historical stderr lines, a
                     file sink turns them into "msg" events so
                     --json/--trace stderr stays machine-clean. *)
                  Obs.message Obs.Preflight
                    (Format.asprintf "[preflight] %a" Check.pp_diagnostic d))
                report.Check.diagnostics;
              Check.has_errors report)
            targets
        in
        if failing <> [] then begin
          Obs.message Obs.Preflight
            (Printf.sprintf
               "[preflight] %d of %d target(s) have error-severity diagnostics"
               (List.length failing) (List.length targets));
          if strict then
            raise
              (Check.Preflight_error
                 (Printf.sprintf
                    "pre-flight check failed on %d of %d target(s)"
                    (List.length failing) (List.length targets)))
        end)

(* Opt-in staging: compile the named programs before step 0, so the
   one-time cost lands in a visible span ("compile/<id>" under
   "train/compile") instead of silently inflating the first step —
   [ppvi profile] then shows the staging amortization directly. *)
let run_warm_compile targets =
  match targets with
  | [] -> ()
  | _ ->
    Obs.span Obs.Preflight "train/compile" (fun () ->
        List.iter
          (fun (id, packed) ->
            match Compile.plan_for ~id packed with
            | Compile.Compiled _ -> ()
            | Compile.Refused { Compile.r_reason; _ } ->
              Obs.message Obs.Preflight
                (Printf.sprintf
                   "[compile] %s refused (PV501), using interpreter: %s" id
                   r_reason))
          targets)

let fit_generic ~store ~optim ~direction ~guard ~persist ~on_step ~steps
    ~make_surrogate key =
  let g = match guard with Some g -> g | None -> Guard.create () in
  let reports = ref [] in
  let step = ref 0 in
  (* Crash-exact resume: when a checkpoint directory is configured and
     holds a readable checkpoint, restore parameters, optimizer moments,
     and guard counters, and continue from the recorded step — the
     per-step [fold_in] key discipline makes the replayed suffix
     bit-identical to the run the crash interrupted. *)
  (match persist with
  | None -> ()
  | Some cfg -> (
    match Persist.load_into cfg ~store ~optim ~guard:g with
    | None -> ()
    | Some { Persist.step = resumed; path } ->
      Obs.message Obs.Fault
        (Printf.sprintf "train: resumed from %s at step %d" path resumed);
      Obs.incr "train/resumes";
      step := resumed));
  (* Save after the [every]-th committed step; !step is then the next
     step to run, which is what the checkpoint records. *)
  let due_checkpoint () =
    match persist with
    | Some cfg when !step > 0 && !step mod cfg.every = 0 -> Some cfg
    | _ -> None
  in
  let checkpoint () =
    match due_checkpoint () with
    | Some cfg -> Persist.save cfg ~step:!step ~store ~optim ~guard:g
    | None -> ()
  in
  while !step < steps do
    if Guard.due_snapshot g ~step:!step then
      Guard.take_snapshot g ~step:!step ~store ~optim;
    let key_run = Guard.active_key g key in
    (* Manual start/stop spans (no closures): a disabled run executes
       the exact instruction stream the unobserved loop did. *)
    let live = Obs.live () in
    let nodes0 = if live then Ad.node_count () else 0 in
    let minor0 = if live then Gc.minor_words () else 0. in
    let computed =
      match
        (* Fault-injection hook (one branch when inactive): may delay
           the step, raise Out_of_memory (absorbed below), or SIGKILL
           the process outright. *)
        if Fault.active () then Fault.on_step ~step:!step;
        let t_fwd = if live then Obs.start () else 0. in
        let frame = Store.Frame.make store in
        let surrogate =
          make_surrogate frame !step (Prng.fold_in key_run !step)
        in
        if live then Obs.stop Obs.Grad "train/forward" t_fwd;
        let t_bwd = if live then Obs.start () else 0. in
        Ad.backward surrogate;
        if live then begin
          Obs.stop Obs.Grad "train/backward" t_bwd;
          Obs.gauge "train/tape_nodes"
            (float_of_int (Ad.node_count () - nodes0));
          Obs.gauge "train/minor_words" (Gc.minor_words () -. minor0);
          Obs.hist "train/objective" (Tensor.to_scalar (Ad.value surrogate))
        end;
        (frame, surrogate)
      with
      | pair -> Some pair
      | exception Out_of_memory when Fault.active () ->
        (* Graceful degradation under injected allocation failure: drop
           this step's update (parameters and PRNG discipline are
           untouched — later steps key off the step index) and keep
           training. Only fault-injected OOM is absorbed; a real one
           still propagates. *)
        Obs.incr "train/oom_skipped";
        None
    in
    match computed with
    | None ->
      incr step;
      checkpoint ()
    | Some (frame, surrogate) -> (
      let objective = Tensor.to_scalar (Ad.value surrogate) in
      let grads = Store.Frame.grads frame in
      let t_guard = if live then Obs.start () else 0. in
      let anomalies = Guard.scan ~step:!step ~objective ~grads in
      let verdict = Guard.observe g ~step:!step ~store ~optim anomalies in
      if live then Obs.stop Obs.Guard "train/guard" t_guard;
      match verdict with
      | Guard.Restart_from resume ->
        reports := List.filter (fun r -> r.step < resume) !reports;
        step := resume;
        (* Make the rollback durable: the retry counter feeds the
           replay's PRNG stream, so a crash mid-replay must resume
           with the post-rollback state, not a pre-rollback image. *)
        (match persist with
        | Some cfg -> Persist.save cfg ~step:resume ~store ~optim ~guard:g
        | None -> ())
      | Guard.Proceed | Guard.Skip ->
        (* Under [Skip] the non-finite gradients are dropped (and counted)
           inside [Optim.step]; the finite remainder still applies, which
           preserves the historical skip-and-continue behavior. *)
        let t_opt = if live then Obs.start () else 0. in
        Optim.step ?clip_norm:(Guard.clip_norm g) optim direction store grads;
        if live then begin
          Obs.stop Obs.Optim "train/optim" t_opt;
          Obs.incr "train/steps"
        end;
        let report =
          { step = !step;
            objective;
            anomalies = Guard.anomaly_count g;
            retries = Guard.retry_count g }
        in
        on_step report;
        reports := report :: !reports;
        incr step;
        checkpoint ())
  done;
  List.rev !reports

let fit ~store ~optim ?(direction = Optim.Ascend) ?(samples = 1) ?guard
    ?persist ?(preflight = []) ?(preflight_strict = false) ?(compiled = [])
    ?(on_step = fun _ -> ()) ~steps ~objective key =
  run_preflight ~strict:preflight_strict preflight;
  run_warm_compile compiled;
  fit_generic ~store ~optim ~direction ~guard ~persist ~on_step ~steps
    ~make_surrogate:(fun frame step key_step ->
      Adev.expectation_mean ~samples (objective frame step) key_step)
    key

let fit_batch ~store ~optim ?(direction = Optim.Ascend) ?guard ?persist
    ?(preflight = []) ?(preflight_strict = false) ?(compiled = [])
    ?(on_step = fun _ -> ()) ~steps ~objectives key =
  run_preflight ~strict:preflight_strict preflight;
  run_warm_compile compiled;
  fit_generic ~store ~optim ~direction ~guard ~persist ~on_step ~steps
    ~make_surrogate:(fun frame step key_step ->
      let objs = objectives frame step in
      let n = Stdlib.max 1 (List.length objs) in
      let surrogates =
        List.mapi
          (fun i obj -> Adev.expectation obj (Prng.fold_in key_step i))
          objs
      in
      Ad.scale (1. /. float_of_int n) (Ad.add_list surrogates))
    key

let fit_batched ~store ~optim ?(direction = Optim.Ascend) ?guard ?persist
    ?(preflight = []) ?(preflight_strict = false) ?(compiled = [])
    ?(on_step = fun _ -> ()) ~steps ~objective key =
  run_preflight ~strict:preflight_strict preflight;
  run_warm_compile compiled;
  fit_generic ~store ~optim ~direction ~guard ~persist ~on_step ~steps
    ~make_surrogate:(fun frame step key_step ->
      let m, obj = objective frame step in
      let vec = Adev.expectation obj key_step in
      Ad.scale (1. /. float_of_int (Stdlib.max 1 m)) (Ad.sum vec))
    key

let fit_surrogate ~store ~optim ?(direction = Optim.Ascend) ?guard ?persist
    ?(preflight = []) ?(preflight_strict = false) ?(compiled = [])
    ?(on_step = fun _ -> ()) ~steps ~surrogate key =
  run_preflight ~strict:preflight_strict preflight;
  run_warm_compile compiled;
  fit_generic ~store ~optim ~direction ~guard ~persist ~on_step ~steps
    ~make_surrogate:(fun frame step key_step -> surrogate frame step key_step)
    key

let eval ~store ?(samples = 100) ~objective key =
  let frame = Store.Frame.make store in
  Adev.estimate ~samples (objective frame) key
