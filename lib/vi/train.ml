type report = {
  step : int;
  objective : float;
  anomalies : int;
  retries : int;
}

(* Shared guarded driver. [make_surrogate frame step key] builds the
   differentiable surrogate for one step; everything else — backward
   pass, anomaly scan, policy dispatch, snapshots, the optimizer update
   — is common to all loop flavors. On rollback the step counter jumps
   back to the snapshot step and already-collected reports past it are
   discarded (so the returned series is the committed trajectory). *)
(* Opt-in pre-flight: statically analyze the given targets before any
   optimization step runs. Diagnostics go to stderr; under [strict] an
   error-severity diagnostic aborts the run with
   [Check.Preflight_error] instead of letting training fail later (or
   silently optimize a -inf-density objective). *)
let run_preflight ~strict targets =
  match targets with
  | [] -> ()
  | _ ->
    Obs.span Obs.Preflight "train/preflight" (fun () ->
        let failing =
          List.filter
            (fun target ->
              let report = Check.analyze target in
              List.iter
                (fun d ->
                  (* Routed through the sink, not printed directly: a
                     console sink keeps the historical stderr lines, a
                     file sink turns them into "msg" events so
                     --json/--trace stderr stays machine-clean. *)
                  Obs.message Obs.Preflight
                    (Format.asprintf "[preflight] %a" Check.pp_diagnostic d))
                report.Check.diagnostics;
              Check.has_errors report)
            targets
        in
        if failing <> [] then begin
          Obs.message Obs.Preflight
            (Printf.sprintf
               "[preflight] %d of %d target(s) have error-severity diagnostics"
               (List.length failing) (List.length targets));
          if strict then
            raise
              (Check.Preflight_error
                 (Printf.sprintf
                    "pre-flight check failed on %d of %d target(s)"
                    (List.length failing) (List.length targets)))
        end)

(* Opt-in staging: compile the named programs before step 0, so the
   one-time cost lands in a visible span ("compile/<id>" under
   "train/compile") instead of silently inflating the first step —
   [ppvi profile] then shows the staging amortization directly. *)
let run_warm_compile targets =
  match targets with
  | [] -> ()
  | _ ->
    Obs.span Obs.Preflight "train/compile" (fun () ->
        List.iter
          (fun (id, packed) ->
            match Compile.plan_for ~id packed with
            | Compile.Compiled _ -> ()
            | Compile.Refused { Compile.r_reason; _ } ->
              Obs.message Obs.Preflight
                (Printf.sprintf
                   "[compile] %s refused (PV501), using interpreter: %s" id
                   r_reason))
          targets)

type shard_spec = {
  shards : int;
  remat : bool;
  make :
    Store.Frame.t -> step:int -> shard:int -> shards:int -> Prng.key -> Ad.t;
}

let single ?(remat = false) make =
  { shards = 1;
    remat;
    make = (fun frame ~step ~shard:_ ~shards:_ key -> make frame step key) }

(* Deterministic fixed-shape pairwise tree fold over [lo, hi): the
   reduction shape depends only on the shard count, never on the
   domain count or completion order, so sharded results are bit-
   identical whether the pool runs with 1 domain or many. *)
let rec tree_fold combine (arr : 'a array) lo hi =
  if hi - lo = 1 then arr.(lo)
  else
    let mid = lo + ((hi - lo + 1) / 2) in
    combine (tree_fold combine arr lo mid) (tree_fold combine arr mid hi)

(* Merge two shards' gradient lists by parameter name: names keep the
   left list's order (then right-only names in right order), matched
   names add tensors. A name present on one side only passes through
   unchanged — materializing a zero for the missing side would both
   allocate and perturb bits (-0.0 + 0.0 is 0.0). *)
let merge_grads left right =
  let pending = Hashtbl.create 16 in
  List.iter (fun (n, g) -> Hashtbl.replace pending n g) right;
  let merged =
    List.map
      (fun (n, g) ->
        match Hashtbl.find_opt pending n with
        | Some g2 ->
          Hashtbl.remove pending n;
          (n, Tensor.add g g2)
        | None -> (n, g))
      left
  in
  merged @ List.filter (fun (n, _) -> Hashtbl.mem pending n) right

let fit_generic ~store ~optim ~direction ~guard ~persist ~on_step ~steps
    ~spec key =
  let g = match guard with Some g -> g | None -> Guard.create () in
  let reports = ref [] in
  let step = ref 0 in
  (* Crash-exact resume: when a checkpoint directory is configured and
     holds a readable checkpoint, restore parameters, optimizer moments,
     and guard counters, and continue from the recorded step — the
     per-step [fold_in] key discipline makes the replayed suffix
     bit-identical to the run the crash interrupted. *)
  (match persist with
  | None -> ()
  | Some cfg -> (
    match Persist.load_into cfg ~store ~optim ~guard:g with
    | None -> ()
    | Some { Persist.step = resumed; path } ->
      Obs.message Obs.Fault
        (Printf.sprintf "train: resumed from %s at step %d" path resumed);
      Obs.incr "train/resumes";
      step := resumed));
  (* Save after the [every]-th committed step; !step is then the next
     step to run, which is what the checkpoint records. *)
  let due_checkpoint () =
    match persist with
    | Some cfg when !step > 0 && !step mod cfg.every = 0 -> Some cfg
    | _ -> None
  in
  let checkpoint () =
    match due_checkpoint () with
    | Some cfg -> Persist.save cfg ~step:!step ~store ~optim ~guard:g
    | None -> ()
  in
  while !step < steps do
    if Guard.due_snapshot g ~step:!step then
      Guard.take_snapshot g ~step:!step ~store ~optim;
    let key_run = Guard.active_key g key in
    (* Manual start/stop spans (no closures): a disabled run executes
       the exact instruction stream the unobserved loop did. *)
    let live = Obs.live () in
    let nodes0 = if live then Ad.node_count () else 0 in
    let minor0 = if live then Gc.minor_words () else 0. in
    (* Per-step live-tape statistics: reset from this quiescent point
       so the peak gauge (and the remat acceptance tests) measure one
       step's high-water mark. *)
    Ad.reset_live_stats ();
    let nshards = Stdlib.max 1 spec.shards in
    let computed =
      match
        (* Fault-injection hook (one branch when inactive): may delay
           the step, raise Out_of_memory (absorbed below), or SIGKILL
           the process outright. Runs on the coordinating domain, once
           per step, in both the sequential and the sharded path. *)
        if Fault.active () then Fault.on_step ~step:!step;
        let key_step = Prng.fold_in key_run !step in
        if nshards = 1 then begin
          let t_fwd = if live then Obs.start () else 0. in
          let frame = Store.Frame.make store in
          let build () =
            spec.make frame ~step:!step ~shard:0 ~shards:1 key_step
          in
          let surrogate = if spec.remat then Ad.checkpoint build else build () in
          if live then Obs.stop Obs.Grad "train/forward" t_fwd;
          let t_bwd = if live then Obs.start () else 0. in
          Ad.backward surrogate;
          if live then begin
            Obs.stop Obs.Grad "train/backward" t_bwd;
            Obs.hist "train/objective" (Tensor.to_scalar (Ad.value surrogate))
          end;
          (Tensor.to_scalar (Ad.value surrogate), Store.Frame.grads frame)
        end
        else begin
          (* Data-parallel sharding: one independent forward + backward
             per shard (own frame, own key, own tape), scheduled on the
             domain pool. Shard blocks run with observability
             suppressed (the recorder is main-domain-only) and under
             shard mode (compiled plans bypass their shared arenas and
             scratch). The per-shard key is [fold_in key_step i] and
             the reduction is a fixed-shape tree, so the result is
             bit-identical for every domain count. *)
          let t_fwd = if live then Obs.start () else 0. in
          let values = Array.make nshards 0. in
          let grads = Array.make nshards [] in
          Parallel.run ~blocks:nshards (fun i ->
              Obs.suppress (fun () ->
                  Ad.with_shard_mode (fun () ->
                      let frame = Store.Frame.make store in
                      let build () =
                        spec.make frame ~step:!step ~shard:i ~shards:nshards
                          (Prng.fold_in key_step i)
                      in
                      let surrogate =
                        if spec.remat then Ad.checkpoint build else build ()
                      in
                      Ad.backward surrogate;
                      values.(i) <- Tensor.to_scalar (Ad.value surrogate);
                      grads.(i) <- Store.Frame.grads frame)));
          let objective = tree_fold ( +. ) values 0 nshards in
          let reduced = tree_fold merge_grads grads 0 nshards in
          if live then begin
            Obs.stop Obs.Grad "train/forward" t_fwd;
            Obs.hist "train/objective" objective
          end;
          (objective, reduced)
        end
      with
      | pair -> Some pair
      | exception Out_of_memory when Fault.active () ->
        (* Graceful degradation under injected allocation failure: drop
           this step's update (parameters and PRNG discipline are
           untouched — later steps key off the step index) and keep
           training. Only fault-injected OOM is absorbed; a real one
           still propagates (in the sharded path [Parallel.run] still
           executes every block and re-raises the first exception). *)
        Obs.incr "train/oom_skipped";
        None
    in
    if live then begin
      Obs.gauge "train/tape_nodes" (float_of_int (Ad.node_count () - nodes0));
      Obs.gauge "train/peak_live_nodes" (float_of_int (Ad.peak_live_nodes ()));
      Obs.gauge "train/minor_words" (Gc.minor_words () -. minor0)
    end;
    match computed with
    | None ->
      incr step;
      checkpoint ()
    | Some (objective, grads) -> (
      let t_guard = if live then Obs.start () else 0. in
      let anomalies = Guard.scan ~step:!step ~objective ~grads in
      let verdict = Guard.observe g ~step:!step ~store ~optim anomalies in
      if live then Obs.stop Obs.Guard "train/guard" t_guard;
      match verdict with
      | Guard.Restart_from resume ->
        reports := List.filter (fun r -> r.step < resume) !reports;
        step := resume;
        (* Make the rollback durable: the retry counter feeds the
           replay's PRNG stream, so a crash mid-replay must resume
           with the post-rollback state, not a pre-rollback image. *)
        (match persist with
        | Some cfg -> Persist.save cfg ~step:resume ~store ~optim ~guard:g
        | None -> ())
      | Guard.Proceed | Guard.Skip ->
        (* Under [Skip] the non-finite gradients are dropped (and counted)
           inside [Optim.step]; the finite remainder still applies, which
           preserves the historical skip-and-continue behavior. *)
        let t_opt = if live then Obs.start () else 0. in
        Optim.step ?clip_norm:(Guard.clip_norm g) optim direction store grads;
        if live then begin
          Obs.stop Obs.Optim "train/optim" t_opt;
          Obs.incr "train/steps"
        end;
        let report =
          { step = !step;
            objective;
            anomalies = Guard.anomaly_count g;
            retries = Guard.retry_count g }
        in
        on_step report;
        reports := report :: !reports;
        incr step;
        checkpoint ())
  done;
  List.rev !reports

let fit_spec ~store ~optim ?(direction = Optim.Ascend) ?guard ?persist
    ?(preflight = []) ?(preflight_strict = false) ?(compiled = [])
    ?(on_step = fun _ -> ()) ~steps ~spec key =
  run_preflight ~strict:preflight_strict preflight;
  run_warm_compile compiled;
  fit_generic ~store ~optim ~direction ~guard ~persist ~on_step ~steps ~spec
    key

let fit ~store ~optim ?(direction = Optim.Ascend) ?(samples = 1)
    ?(remat = false) ?guard ?persist ?(preflight = [])
    ?(preflight_strict = false) ?(compiled = []) ?(on_step = fun _ -> ())
    ~steps ~objective key =
  run_preflight ~strict:preflight_strict preflight;
  run_warm_compile compiled;
  (* [remat] barriers sit per sample inside [expectation_mean] (not
     around the whole step), so the peak live tape holds one sample's
     segment. *)
  fit_generic ~store ~optim ~direction ~guard ~persist ~on_step ~steps
    ~spec:
      (single (fun frame step key_step ->
           Adev.expectation_mean ~remat ~samples (objective frame step)
             key_step))
    key

let fit_batch ~store ~optim ?(direction = Optim.Ascend) ?(shards = 1)
    ?(remat = false) ?guard ?persist ?(preflight = [])
    ?(preflight_strict = false) ?(compiled = []) ?(on_step = fun _ -> ())
    ~steps ~objectives key =
  run_preflight ~strict:preflight_strict preflight;
  run_warm_compile compiled;
  (* Data-parallel across the per-datum objectives: shard [i] takes the
     contiguous range [lo, hi) of the list, builds each datum's
     surrogate under its historical key [fold_in key_step j] (the
     global datum index, so shards = 1 reproduces the unsharded stream
     bit-for-bit), and contributes [sum / n_total]; the shard partials
     tree-reduce in the driver. *)
  let spec =
    if shards <= 1 then
      single ~remat (fun frame step key_step ->
          let objs = objectives frame step in
          let n = Stdlib.max 1 (List.length objs) in
          let surrogates =
            List.mapi
              (fun i obj -> Adev.expectation obj (Prng.fold_in key_step i))
              objs
          in
          Ad.scale (1. /. float_of_int n) (Ad.add_list surrogates))
    else
      { shards;
        remat;
        make =
          (fun frame ~step ~shard ~shards shard_key ->
            (* [shard_key] is the driver's [fold_in key_step shard];
               each datum folds its global index into it. The stream
               is a function of the shard count (shards > 1 is a
               different — equally valid — estimator draw than
               shards = 1), and bit-reproducible across domain counts
               for any fixed shard count. *)
            let objs = objectives frame step in
            let n = Stdlib.max 1 (List.length objs) in
            let lo = shard * n / shards and hi = (shard + 1) * n / shards in
            let surrogates =
              List.filteri (fun i _ -> i >= lo && i < hi) objs
              |> List.mapi (fun j obj ->
                     Adev.expectation obj (Prng.fold_in shard_key (lo + j)))
            in
            match surrogates with
            | [] -> Ad.scalar 0.
            | _ ->
              Ad.scale (1. /. float_of_int n) (Ad.add_list surrogates)) }
  in
  fit_generic ~store ~optim ~direction ~guard ~persist ~on_step ~steps ~spec
    key

let fit_batched ~store ~optim ?(direction = Optim.Ascend) ?guard ?persist
    ?(preflight = []) ?(preflight_strict = false) ?(compiled = [])
    ?(on_step = fun _ -> ()) ~steps ~objective key =
  run_preflight ~strict:preflight_strict preflight;
  run_warm_compile compiled;
  fit_generic ~store ~optim ~direction ~guard ~persist ~on_step ~steps
    ~spec:
      (single (fun frame step key_step ->
           let m, obj = objective frame step in
           let vec = Adev.expectation obj key_step in
           Ad.scale (1. /. float_of_int (Stdlib.max 1 m)) (Ad.sum vec)))
    key

let fit_surrogate ~store ~optim ?(direction = Optim.Ascend) ?guard ?persist
    ?(preflight = []) ?(preflight_strict = false) ?(compiled = [])
    ?(on_step = fun _ -> ()) ~steps ~surrogate key =
  run_preflight ~strict:preflight_strict preflight;
  run_warm_compile compiled;
  fit_generic ~store ~optim ~direction ~guard ~persist ~on_step ~steps
    ~spec:(single (fun frame step key_step -> surrogate frame step key_step))
    key

(* One step's forward/backward(s) for a spec, outside the training
   loop — no guard, no optimizer, no observability. Returns the
   objective value and the tree-reduced gradients under exactly the
   driver's key discipline ([fold_in key step], then [fold_in _ shard]
   when sharded), so the memory bench and the determinism tests
   exercise the same code shape the driver runs. *)
let shard_step ~store ~spec ~step key =
  let key_step = Prng.fold_in key step in
  let nshards = Stdlib.max 1 spec.shards in
  if nshards = 1 then begin
    let frame = Store.Frame.make store in
    let build () = spec.make frame ~step ~shard:0 ~shards:1 key_step in
    let surrogate = if spec.remat then Ad.checkpoint build else build () in
    Ad.backward surrogate;
    (Tensor.to_scalar (Ad.value surrogate), Store.Frame.grads frame)
  end
  else begin
    let values = Array.make nshards 0. in
    let grads = Array.make nshards [] in
    Parallel.run ~blocks:nshards (fun i ->
        Obs.suppress (fun () ->
            Ad.with_shard_mode (fun () ->
                let frame = Store.Frame.make store in
                let build () =
                  spec.make frame ~step ~shard:i ~shards:nshards
                    (Prng.fold_in key_step i)
                in
                let surrogate =
                  if spec.remat then Ad.checkpoint build else build ()
                in
                Ad.backward surrogate;
                values.(i) <- Tensor.to_scalar (Ad.value surrogate);
                grads.(i) <- Store.Frame.grads frame)));
    (tree_fold ( +. ) values 0 nshards, tree_fold merge_grads grads 0 nshards)
  end

let eval ~store ?(samples = 100) ~objective key =
  let frame = Store.Frame.make store in
  Adev.estimate ~samples (objective frame) key
