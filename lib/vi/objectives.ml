open Adev.Syntax

let elbo ~model ~guide =
  let* _, trace, logq = Gen.simulate guide in
  let* logp = Gen.log_density model trace in
  Adev.return (Ad.sub logp logq)

let elbo_staged ~id ~model ~guide =
  (* Stage both programs once (plan-cached by id). The compiled term
     mirrors [elbo]'s bind structure exactly — same ambient key splits,
     same accumulation order — so it is bit-identical to the
     interpreter. A refusal (PV501, reported at compile time) falls
     back to the interpreter silently but counted. *)
  match
    ( Compile.plan_for ~id:(id ^ "/guide") (Gen.Packed guide),
      Compile.plan_for ~id:(id ^ "/model") (Gen.Packed model) )
  with
  | Compile.Compiled gp, Compile.Compiled mp ->
    let* _, trace, logq = Gen.simulate_compiled gp guide in
    let* logp = Gen.log_density_compiled mp model trace in
    Adev.return (Ad.sub logp logq)
  | _ ->
    Obs.incr "compile/fallback";
    elbo ~model ~guide

let iwelbo ?(batched = false) ~particles ~model ~guide () =
  if particles < 1 then invalid_arg "Objectives.iwelbo: particles < 1";
  Obs.hist "objective/particles" (float_of_int particles);
  let sequential =
    let particle =
      let* _, trace, logq = Gen.simulate guide in
      let* logp = Gen.log_density model trace in
      Adev.return (Ad.sub logp logq)
    in
    let* logws = Adev.replicate particles particle in
    Adev.return
      (Ad.sub
         (Ad.logsumexp (Ad.stack0 logws))
         (Ad.scalar (Float.log (float_of_int particles))))
  in
  if not batched then sequential
  else
    (* All particles as ONE vectorized pass: one batched draw per guide
       site, one [particles]-vector of log weights, one logsumexp over
       the particle axis. Falls back to the sequential estimator (same
       key) when something in the pair cannot be rank-lifted. *)
    let vectorized =
      Adev.delay (fun () ->
          let* _, trace, logq = Gen.simulate_batched ~n:particles guide in
          let* logp = Gen.log_density_batched ~n:particles model trace in
          Adev.return
            (Ad.sub
               (Ad.logsumexp_axis 0 (Ad.sub logp logq))
               (Ad.scalar (Float.log (float_of_int particles)))))
    in
    Adev.or_else vectorized sequential

let elbo_batched ~n ~model ~guide =
  if n < 1 then invalid_arg "Objectives.elbo_batched: n < 1";
  (* Delayed so callers can [Adev.or_else] a sequential fallback: the
     vectorized evaluators refuse while constructing the term. *)
  Adev.delay (fun () ->
      let* _, trace, logq = Gen.simulate_batched ~n guide in
      let* logp = Gen.log_density_batched ~n model trace in
      Adev.return (Ad.sub logp logq))

let marginal_guide ~keep ~reverse ~aux_particles guide_joint =
  Gen.marginal ~keep guide_joint
    (Gen.importance ~particles:aux_particles reverse)

let hvi ~keep ~reverse ?(aux_particles = 1) ~model ~guide_joint () =
  elbo ~model ~guide:(marginal_guide ~keep ~reverse ~aux_particles guide_joint)

let diwhvi ~particles ~keep ~reverse ~aux_particles ~model ~guide_joint =
  iwelbo ~particles ~model
    ~guide:(marginal_guide ~keep ~reverse ~aux_particles guide_joint)
    ()

let sir ~particles ~model ~proposal =
  Gen.normalize model (Gen.importance_prior ~particles (Gen.Packed proposal))

let qwake ~particles ~model ~proposal ~guide =
  let* _, trace, _ = Gen.simulate (sir ~particles ~model ~proposal) in
  let* logq = Gen.log_density guide trace in
  Adev.return logq

let pwake ~particles ~model ~proposal =
  let* _, trace, logw = Gen.simulate (sir ~particles ~model ~proposal) in
  let* logp = Gen.log_density model trace in
  Adev.return (Ad.sub logp logw)

let forward_kl_sample ~model_sample ~guide =
  let* logq = Gen.log_density guide model_sample in
  Adev.return logq

let symmetric_elbo ~particles ~model ~proposal ~guide =
  let* e = elbo ~model ~guide in
  let* f = qwake ~particles ~model ~proposal ~guide in
  Adev.return (Ad.scale 0.5 (Ad.add e f))
