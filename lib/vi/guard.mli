(** Training resilience: anomaly detection, gradient hygiene, and
    checkpoint/rollback for every stochastic-optimization loop.

    The composed gradient estimators this system builds (REPARAM,
    REINFORCE, ENUM, MVD, baselines) are provably {e unbiased}, but
    unbiased estimators can be heavy-tailed: an occasional divergent
    sample yields a NaN/Inf objective or gradient that would otherwise
    silently corrupt or stall a run. A [Guard.t] rides along with a
    training loop (see [Train]) and, after each backward pass,
    classifies the objective and every per-parameter gradient as
    finite / NaN / Inf. What happens next is the guard's {!policy}:

    - [Fail_fast]: raise {!Diverged} immediately, carrying the step
      and the offending parameter names;
    - [Skip_step] (the default — matches the historical behavior,
      except the event is now counted and logged): apply whatever part
      of the update is finite and move on;
    - [Rollback_retry]: restore the parameters {e and} optimizer state
      from the last periodic snapshot, re-derive the run's PRNG key
      deterministically ([Prng.fold_in key retry_count]), and replay
      from the snapshot step; after [max_retries] rollbacks the guard
      gives up and raises {!Diverged}.

    Guards also carry the gradient-hygiene knob [clip_norm], applied
    by [Optim.step] via {!Tensor.clip_by_global_norm} before each
    update. *)

type kind = Nan | Inf

val kind_name : kind -> string

type anomaly = {
  step : int;  (** Step at which the anomaly was detected. *)
  name : string;  (** Parameter name, or ["objective"]. *)
  kind : kind;
  grad_norm : float;
      (** Global norm of the offending gradient (NaN/Inf when the
          anomaly contaminates the norm), or the objective value
          itself for objective anomalies. *)
}

val pp_anomaly : Format.formatter -> anomaly -> unit

type policy = Fail_fast | Skip_step | Rollback_retry

val policy_name : policy -> string
val policy_of_string : string -> policy option
(** Accepts ["fail-fast"], ["skip-step"], ["rollback-retry"] (and
    underscore / short spellings). *)

exception
  Diverged of { step : int; anomalies : anomaly list; retries : int }
(** Training diverged beyond what the policy could absorb. A printer
    is registered, so uncaught escapes render readably. *)

type t
(** Mutable per-run guard state: configuration, the anomaly log,
    counters, and the last good checkpoint. One guard should drive at
    most one training loop at a time. *)

val create :
  ?policy:policy ->
  ?clip_norm:float ->
  ?snapshot_every:int ->
  ?max_retries:int ->
  unit ->
  t
(** Defaults: [Skip_step], no clipping, snapshot every 10 steps,
    3 retries. @raise Invalid_argument on a nonpositive
    [snapshot_every] or negative [max_retries]. *)

val policy : t -> policy
val clip_norm : t -> float option

val anomalies : t -> anomaly list
(** Every anomaly observed so far, in chronological order (including
    ones absorbed by rollbacks). *)

val anomaly_count : t -> int

val skip_count : t -> int
(** Steps whose update was partly or fully skipped under
    [Skip_step]. *)

val retry_count : t -> int
(** Rollbacks performed so far under [Rollback_retry]. *)

val resume : t -> retries:int -> skips:int -> unit
(** Restore the counters a durable checkpoint recorded, so a resumed
    run replays the exact PRNG stream ({!active_key} depends on the
    retry counter) and keeps honest cumulative statistics. Used by
    [Persist]. *)

(** {1 Driver API}

    Used by [Train]; exposed so custom loops (e.g. the baseline
    engines, or user-written epochs) can be guarded the same way. *)

val classify_float : float -> kind option
val classify_tensor : Tensor.t -> kind option
(** [None] when every element is finite; NaN dominates Inf. *)

val scan :
  step:int ->
  objective:float ->
  grads:(string * Tensor.t) list ->
  anomaly list
(** Classify one backward pass: the objective first, then each
    gradient, preserving gradient order. Empty when the step is
    clean. *)

val due_snapshot : t -> step:int -> bool
(** Whether the loop should snapshot before executing [step]: true on
    the first call and every [snapshot_every] steps. *)

val take_snapshot : t -> step:int -> store:Store.t -> optim:Optim.t -> unit
(** Record a deep copy of the parameters and optimizer state as the
    rollback target, tagged with the step about to execute. *)

val active_key : t -> Prng.key -> Prng.key
(** The key the loop should currently run under: the caller's key
    before any rollback, [Prng.fold_in key retry_count] after — so
    retries resample while the run remains a deterministic function of
    the initial key. *)

type verdict =
  | Proceed  (** step is clean; apply the update *)
  | Skip  (** apply what is finite, count the rest as skipped *)
  | Restart_from of int  (** rolled back; resume at this step *)

val observe :
  t -> step:int -> store:Store.t -> optim:Optim.t -> anomaly list -> verdict
(** Feed one step's {!scan} result through the policy. On
    [Rollback_retry] this mutates [store] and [optim] back to the last
    snapshot before returning [Restart_from].
    @raise Diverged per the policy (immediately under [Fail_fast]; on
    exhausted retries, or an anomaly before any snapshot exists, under
    [Rollback_retry]). *)
