(** Durable training state: rotated checkpoints that make a training
    run resumable {e bit-exactly} after a crash.

    A training checkpoint is an ordinary {!Store.t} image (format v2:
    checksummed, atomically written, rotated — see [Store]) holding
    the model parameters plus reserved ["__"]-prefixed tensors that
    encode everything else one step depends on: the step index, the
    optimizer moments and counters, and the guard's retry/skip
    counters (the retry counter feeds [Guard.active_key], so it is
    part of the PRNG stream). Resuming from step [s] therefore
    replays steps [s..] with exactly the state — every bit of it —
    the interrupted run had, and a SIGKILLed-and-resumed run ends
    with parameters bit-identical to an uninterrupted one (enforced
    by [test/test_chaos.ml] and the CI chaos-smoke job). *)

type cfg = {
  dir : string;  (** checkpoint directory ([ckpt.N] + [latest]) *)
  every : int;  (** save after every [every]-th committed step *)
  keep : int;  (** rotation depth *)
  retries : int;  (** transient-I/O retry budget per save *)
  backoff_ms : float;  (** deterministic backoff base (doubles per retry) *)
}

val cfg :
  ?every:int -> ?keep:int -> ?retries:int -> ?backoff_ms:float -> string -> cfg
(** Defaults: every 25 steps, keep 3, 2 retries, 5 ms backoff. *)

val save :
  cfg -> step:int -> store:Store.t -> optim:Optim.t -> guard:Guard.t -> unit
(** Write one rotated checkpoint recording that steps [0..step-1] are
    committed ([step] is the next step to run).
    @raise Sys_error when the write fails after the retry budget. *)

type resumed = { step : int;  (** next step to run *) path : string }

val load_into :
  cfg -> store:Store.t -> optim:Optim.t -> guard:Guard.t -> resumed option
(** Load the newest readable checkpoint from [cfg.dir] into the given
    training state: parameters into [store] (registering any the
    store lacks), moments into [optim], counters into [guard].
    [None] when the directory has no checkpoints (fresh start).
    @raise Store.Corrupt_checkpoint when checkpoints exist but none
    loads. *)
