type kind = Nan | Inf

let kind_name = function Nan -> "nan" | Inf -> "inf"

type anomaly = {
  step : int;
  name : string;
  kind : kind;
  grad_norm : float;
}

let pp_anomaly ppf a =
  Format.fprintf ppf "step %d: %s is %s (grad norm %g)" a.step a.name
    (kind_name a.kind) a.grad_norm

type policy = Fail_fast | Skip_step | Rollback_retry

let policy_name = function
  | Fail_fast -> "fail-fast"
  | Skip_step -> "skip-step"
  | Rollback_retry -> "rollback-retry"

let policy_of_string = function
  | "fail-fast" | "fail_fast" | "fail" -> Some Fail_fast
  | "skip-step" | "skip_step" | "skip" -> Some Skip_step
  | "rollback-retry" | "rollback_retry" | "rollback" -> Some Rollback_retry
  | _ -> None

exception
  Diverged of { step : int; anomalies : anomaly list; retries : int }

let () =
  Printexc.register_printer (function
    | Diverged { step; anomalies; retries } ->
      Some
        (Format.asprintf
           "Guard.Diverged at step %d after %d retries: %a" step retries
           (Format.pp_print_list ~pp_sep:(fun ppf () ->
                Format.pp_print_string ppf "; ")
              pp_anomaly)
           anomalies)
    | _ -> None)

type checkpoint = {
  at_step : int;
  params : Store.t;  (* deep copy *)
  optim_state : Optim.snapshot;
}

type t = {
  policy : policy;
  clip_norm : float option;
  snapshot_every : int;
  max_retries : int;
  mutable log : anomaly list;  (* newest first *)
  mutable skips : int;  (* steps whose update was (partly) skipped *)
  mutable retries : int;  (* rollbacks performed so far *)
  mutable last_good : checkpoint option;
}

let create ?(policy = Skip_step) ?clip_norm ?(snapshot_every = 10)
    ?(max_retries = 3) () =
  if snapshot_every <= 0 then invalid_arg "Guard.create: snapshot_every <= 0";
  if max_retries < 0 then invalid_arg "Guard.create: max_retries < 0";
  {
    policy;
    clip_norm;
    snapshot_every;
    max_retries;
    log = [];
    skips = 0;
    retries = 0;
    last_good = None;
  }

let policy t = t.policy
let clip_norm t = t.clip_norm

(* Crash-exact resume support: [active_key] derives the run's key from
   the retry counter, so a resumed process must restore it to replay
   the identical PRNG stream the interrupted run would have seen. *)
let resume t ~retries ~skips =
  if retries < 0 then invalid_arg "Guard.resume: retries < 0";
  if skips < 0 then invalid_arg "Guard.resume: skips < 0";
  t.retries <- retries;
  t.skips <- skips
let anomalies t = List.rev t.log
let anomaly_count t = List.length t.log
let skip_count t = t.skips
let retry_count t = t.retries

(* Classification *)

let classify_float x =
  if Float.is_nan x then Some Nan
  else if Float.is_finite x then None
  else Some Inf

let classify_tensor g =
  let n = Tensor.size g in
  let rec scan i worst =
    if i >= n then worst
    else
      match classify_float (Tensor.get_flat g i) with
      | Some Nan -> Some Nan (* NaN dominates Inf in the report *)
      | Some Inf -> scan (i + 1) (Some Inf)
      | None -> scan (i + 1) worst
  in
  scan 0 None

let scan ~step ~objective ~grads =
  let objective_anomalies =
    match classify_float objective with
    | Some kind -> [ { step; name = "objective"; kind; grad_norm = objective } ]
    | None -> []
  in
  let grad_anomalies =
    List.filter_map
      (fun (name, g) ->
        match classify_tensor g with
        | Some kind ->
          Some { step; name; kind; grad_norm = Tensor.global_norm [ g ] }
        | None -> None)
      grads
  in
  objective_anomalies @ grad_anomalies

(* Checkpoints *)

let take_snapshot t ~step ~store ~optim =
  t.last_good <-
    Some
      { at_step = step; params = Store.copy store; optim_state = Optim.snapshot optim }

let due_snapshot t ~step =
  t.last_good = None || step mod t.snapshot_every = 0

(* The key actually driving the run: pristine until the first rollback,
   then deterministically re-derived per retry so a replayed step sees
   fresh randomness while the whole run stays a pure function of the
   initial key. *)
let active_key t key =
  if t.retries = 0 then key else Prng.fold_in key t.retries

type verdict =
  | Proceed  (** step is clean; apply the update *)
  | Skip  (** apply what is finite, count the rest as skipped *)
  | Restart_from of int  (** rolled back; resume at this step *)

let observe t ~step ~store ~optim anomalies =
  match anomalies with
  | [] -> Proceed
  | _ :: _ -> begin
    t.log <- List.rev_append anomalies t.log;
    if Obs.live () then
      List.iter
        (fun a ->
          Obs.incr
            (match a.kind with
            | Nan -> "guard/nan_anomalies"
            | Inf -> "guard/inf_anomalies"))
        anomalies;
    match t.policy with
    | Fail_fast -> raise (Diverged { step; anomalies; retries = t.retries })
    | Skip_step ->
      t.skips <- t.skips + 1;
      Obs.incr "guard/skips";
      Skip
    | Rollback_retry -> begin
      match t.last_good with
      | None -> raise (Diverged { step; anomalies; retries = t.retries })
      | Some cp ->
        if t.retries >= t.max_retries then
          raise (Diverged { step; anomalies; retries = t.retries });
        t.retries <- t.retries + 1;
        Obs.incr "guard/rollbacks";
        Store.restore store ~from:cp.params;
        Optim.restore optim cp.optim_state;
        Restart_from cp.at_step
    end
  end
