open Gen.Syntax

let two_pi = 2. *. Float.pi

let model =
  let* x = Gen.sample (Dist.normal_reparam (Ad.scalar 0.) (Ad.scalar 3.)) "x" in
  let* y = Gen.sample (Dist.normal_reparam (Ad.scalar 0.) (Ad.scalar 3.)) "y" in
  let r2 = Ad.add (Ad.mul x x) (Ad.mul y y) in
  Gen.observe (Dist.normal_reparam r2 (Ad.scalar 0.5)) (Ad.scalar 5.)

let register store key =
  ignore key;
  let scalar name v = Store.ensure store name (fun () -> Tensor.scalar v) in
  scalar "cone.naive.mx" 0.5;
  scalar "cone.naive.rx" 0.5;
  scalar "cone.naive.my" 0.5;
  scalar "cone.naive.ry" 0.5;
  scalar "cone.joint.radius" 1.0;
  scalar "cone.joint.spread" (-1.0);
  scalar "cone.rev.a" 0.55;
  scalar "cone.rev.b" 0.55

(* softplus(rho) + eps keeps scales positive. *)
let pos rho = Ad.add_scalar 1e-3 (Ad.softplus rho)

let guide_naive frame =
  let p = Store.Frame.get frame in
  let* _ =
    Gen.sample
      (Dist.normal_reparam (p "cone.naive.mx") (pos (p "cone.naive.rx")))
      "x"
  in
  let* _ =
    Gen.sample
      (Dist.normal_reparam (p "cone.naive.my") (pos (p "cone.naive.ry")))
      "y"
  in
  Gen.return ()

let guide_joint frame =
  let p = Store.Frame.get frame in
  let radius = pos (p "cone.joint.radius") in
  let spread = pos (p "cone.joint.spread") in
  let* v = Gen.sample (Dist.uniform 0. two_pi) "v" in
  let vf = Gen.rigid v in
  let* _ =
    Gen.sample
      (Dist.normal_reparam (Ad.scale (Float.cos vf) radius) spread)
      "x"
  in
  let* _ =
    Gen.sample
      (Dist.normal_reparam (Ad.scale (Float.sin vf) radius) spread)
      "y"
  in
  Gen.return ()

(* The auxiliary angle's reverse kernel. A uniform kernel keeps the
   importance weights finite everywhere on the angle's support; the
   conditional structure is recovered by conditional importance
   sampling inside [marginal]. *)
let reverse_kernel _kept =
  Gen.Packed (Gen.sample (Dist.uniform 0. two_pi) "v")

(* Learnable concentrations: softplus keeps them positive; at a = b = 1
   this degenerates to the uniform kernel above. *)
let reverse_kernel_learned frame _kept =
  let p = Store.Frame.get frame in
  Gen.Packed
    (Gen.sample
       (Dist.scaled_beta_reinforce ~lo:0. ~hi:two_pi
          (pos (p "cone.rev.a"))
          (pos (p "cone.rev.b")))
       "v")

let guide_marginal ~aux_particles frame =
  Gen.marginal ~keep:[ "x"; "y" ] (guide_joint frame)
    (Gen.importance ~particles:aux_particles reverse_kernel)

let guide_sir ~particles frame =
  Gen.normalize model
    (Gen.importance_prior ~particles (Gen.Packed (guide_naive frame)))

type objective_kind =
  | Elbo
  | Iwelbo of int
  | Hvi
  | Iwhvi of int
  | Iwhvi_learned of int
  | Diwhvi of int * int

let objective_name = function
  | Elbo -> "ELBO"
  | Iwelbo n -> Printf.sprintf "IWELBO(n=%d)" n
  | Hvi -> "HVI"
  | Iwhvi m -> Printf.sprintf "IWHVI(m=%d)" m
  | Iwhvi_learned m -> Printf.sprintf "IWHVI+learned-rev(m=%d)" m
  | Diwhvi (n, m) -> Printf.sprintf "DIWHVI(n=%d,m=%d)" n m

let objective kind frame =
  match kind with
  | Elbo -> Objectives.elbo ~model ~guide:(guide_naive frame)
  | Iwelbo n ->
    Objectives.iwelbo ~particles:n ~model ~guide:(guide_naive frame) ()
  | Hvi ->
    Objectives.hvi ~keep:[ "x"; "y" ] ~reverse:reverse_kernel ~model
      ~guide_joint:(guide_joint frame) ()
  | Iwhvi m ->
    Objectives.hvi ~keep:[ "x"; "y" ] ~reverse:reverse_kernel ~aux_particles:m
      ~model ~guide_joint:(guide_joint frame) ()
  | Iwhvi_learned m ->
    Objectives.hvi ~keep:[ "x"; "y" ]
      ~reverse:(reverse_kernel_learned frame)
      ~aux_particles:m ~model ~guide_joint:(guide_joint frame) ()
  | Diwhvi (n, m) ->
    Objectives.diwhvi ~particles:n ~keep:[ "x"; "y" ] ~reverse:reverse_kernel
      ~aux_particles:m ~model ~guide_joint:(guide_joint frame)

let train ?(steps = 1500) ?(lr = 0.05) ?guard ?persist ?store kind key =
  let store = match store with Some s -> s | None -> Store.create () in
  register store key;
  let optim = Optim.adam ~lr () in
  let reports =
    Train.fit ~store ~optim ?guard ?persist ~steps
      ~objective:(fun frame _step -> objective kind frame)
      key
  in
  (store, reports)

let final_value ?(samples = 2000) store kind key =
  Train.eval ~store ~samples ~objective:(objective kind) key

let trained_guide store kind frame =
  match kind with
  | Elbo | Iwelbo _ -> Gen.map (fun () -> ()) (guide_naive frame)
  | Hvi -> Gen.map (fun _ -> ()) (guide_marginal ~aux_particles:1 frame)
  | Iwhvi m | Diwhvi (_, m) ->
    ignore store;
    Gen.map (fun _ -> ()) (guide_marginal ~aux_particles:m frame)
  | Iwhvi_learned m ->
    Gen.map
      (fun _ -> ())
      (Gen.marginal ~keep:[ "x"; "y" ] (guide_joint frame)
         (Gen.importance ~particles:m (reverse_kernel_learned frame)))

let guide_samples store kind n key =
  let frame = Store.Frame.make store in
  let guide = trained_guide store kind frame in
  List.init n (fun i ->
      let _, trace, _ = Gen.sample_prior guide (Prng.fold_in key i) in
      (Trace.get_float "x" trace, Trace.get_float "y" trace))
