(** An Attend-Infer-Repeat-style structured generative model (Fig. 7,
    Tables 2-3, Fig. 8), scaled to this repository's CPU substrate.

    Scenes contain a variable number of digit glyphs on a canvas. The
    model follows AIR's recurrent structure: a chain of Bernoulli
    "presence" variables decides how many objects to render; each object
    has a discrete position and a continuous appearance code decoded
    into a patch, composed onto the canvas with probabilistic OR, and
    the canvas is observed under a Bernoulli pixel likelihood. The guide
    is an amortized network predicting presence, position, and code from
    the image.

    The discrete latents (presence and position) are where gradient
    estimation strategies matter; {!discrete_strategy} selects one per
    site group, exploring the Table 3 grid. *)

type discrete_strategy = RE | RE_BL | EN | MV

val strategy_name : discrete_strategy -> string
val code_dim : int

val register : Store.t -> Prng.key -> unit

type baselines
(** Running-mean baseline cells, one per guide address (RE_BL). *)

val make_baselines : unit -> baselines

val model : Store.Frame.t -> Tensor.t -> unit Gen.t
(** [model frame image]: the generative program for one (flattened)
    canvas, with the image observed. *)

val guide :
  ?pres:discrete_strategy ->
  ?pos:discrete_strategy ->
  baselines:baselines ->
  Store.Frame.t ->
  Tensor.t ->
  unit Gen.t
(** Amortized guide; [pres] / [pos] choose the strategies of the
    presence flips and position categoricals (both default [RE]). *)

type objective = Elbo | Iwelbo of int | Rws of int

val objective_name : objective -> string

val batch_objectives :
  ?pres:discrete_strategy ->
  ?pos:discrete_strategy ->
  ?compiled:bool ->
  baselines:baselines ->
  objective ->
  Store.Frame.t ->
  Tensor.t ->
  Ad.t Adev.t list
(** One per-image objective per batch row (for [Train.fit_batch]). [Rws]
    returns the wake-phase objectives (model and guide updates
    combined). *)

val train_epoch :
  ?pres:discrete_strategy ->
  ?pos:discrete_strategy ->
  ?compiled:bool ->
  ?guard:Guard.t ->
  store:Store.t ->
  optim:Optim.t ->
  baselines:baselines ->
  objective:objective ->
  images:Tensor.t ->
  batch:int ->
  Prng.key ->
  float * float
(** Run one pass over [images] in minibatches; returns (mean objective,
    wall-clock seconds) — the Table 2 measurement. *)

val count_accuracy : Store.t -> Tensor.t -> int array -> Prng.key -> float
(** Fraction of images whose guide-inferred object count matches the
    label (the Fig. 8 accuracy metric); inference samples the guide. *)

val infer_count : Store.t -> Tensor.t -> Prng.key -> int
(** Sample the guide's object count for one image. *)
