(** The toy "cone" inference problem of Fig. 2 / Fig. 3 / Table 4.

    The model generates a point (x, y) and observes that
    [x^2 + y^2 = 5] (noisily), so the posterior concentrates on a circle
    of radius sqrt 5. A mean-field Gaussian guide cannot represent the
    circle; the programmable-VI strategies — importance weighting, SIR
    guides via [normalize], and hierarchical guides via [marginal] —
    progressively fix this. *)

val model : unit Gen.t
(** x ~ N(0, 3); y ~ N(0, 3); observe N(x^2 + y^2, 0.5) = 5. *)

val register : Store.t -> Prng.key -> unit
(** Register all guide parameters (idempotent). *)

val guide_naive : Store.Frame.t -> unit Gen.t
(** Mean-field Gaussian guide over "x" and "y" (REPARAM). *)

val guide_joint : Store.Frame.t -> unit Gen.t
(** Hierarchical guide: an angle v ~ U(0, 2 pi) places (x, y) near a
    circle of learned radius and spread (Fig. 3, right). *)

val reverse_kernel : Trace.t -> Gen.packed
(** Reverse kernel proposing the auxiliary angle given (x, y); used to
    marginalize [guide_joint]. *)

val reverse_kernel_learned : Store.Frame.t -> Trace.t -> Gen.packed
(** A {e learnable} reverse kernel (a scaled Beta over the angle with
    trained concentrations) — Appendix A.1's point that density
    estimators may carry parameters controlling their variance, which
    are optimized jointly with the rest of the objective. *)

val guide_marginal : aux_particles:int -> Store.Frame.t -> Trace.t Gen.t
(** [guide_joint] marginalized onto x, y ([marginal]); HVI for 1
    auxiliary particle, IWHVI for more. *)

val guide_sir : particles:int -> Store.Frame.t -> unit Gen.t
(** SIR posterior approximation built with [normalize] from
    [guide_naive] (Fig. 3, left). *)

type objective_kind =
  | Elbo
  | Iwelbo of int  (** particle count n *)
  | Hvi
  | Iwhvi of int  (** auxiliary particle count m *)
  | Iwhvi_learned of int
      (** IWHVI with the learnable reverse kernel trained jointly *)
  | Diwhvi of int * int  (** (n, m) *)

val objective_name : objective_kind -> string

val objective : objective_kind -> Store.Frame.t -> Ad.t Adev.t
(** The Table 4 objective programs. *)

val train :
  ?steps:int -> ?lr:float -> ?guard:Guard.t -> ?persist:Persist.cfg ->
  ?store:Store.t -> objective_kind -> Prng.key ->
  Store.t * Train.report list
(** Optimize one objective from a fresh parameter store with ADAM.
    Defaults: 1500 steps, lr 0.05. [?guard] configures resilience;
    [?persist] writes rotated checkpoints and resumes from them;
    [?store] continues from an existing (e.g. checkpoint-loaded)
    store. *)

val final_value :
  ?samples:int -> Store.t -> objective_kind -> Prng.key -> float
(** Monte Carlo estimate of the objective at the trained parameters
    (the Table 4 statistic). *)

val guide_samples :
  Store.t -> objective_kind -> int -> Prng.key -> (float * float) list
(** Draw (x, y) samples from the guide a given objective trains (for
    the Fig. 2/3 scatter plots). *)
