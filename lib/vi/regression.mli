(** Bayesian linear regression on synthetic terrain-ruggedness data
    (Appendix D.2): log GDP as a function of ruggedness, an
    is-in-Africa indicator, and their interaction, with a mean-field
    Gaussian guide over the four coefficients and the noise scale. *)

val data : Data.regression_datum array
(** A fixed synthetic dataset of 120 countries (seeded). *)

val model : unit Gen.t
val register : Store.t -> unit
val guide : Store.Frame.t -> unit Gen.t

val train :
  ?steps:int -> ?samples:int -> ?lr:float -> ?guard:Guard.t ->
  ?persist:Persist.cfg -> ?store:Store.t -> Prng.key ->
  Store.t * Train.report list * float
(** Returns the trained store, per-step reports, and wall seconds.
    [?guard] configures resilience (see {!Guard}); [?store] continues
    training from an existing (e.g. checkpoint-loaded) store. *)

val final_elbo_per_datum : Store.t -> Prng.key -> float
(** Final ELBO divided by the dataset size (the Fig. 11 statistic). *)

val coefficient_means : Store.t -> float * float * float * float
(** Learned posterior means of (a, bA, bR, bAR), to compare with
    [Data.regression_truth]. *)

val predict :
  Store.t -> ruggedness:float -> in_africa:bool -> Prng.key ->
  float * float * float
(** Posterior-predictive (mean, lo, hi) of the regression mean at one
    input, from 3200 guide samples with a 90 percent credible interval
    (the Fig. 12 series). *)
