type discrete_strategy = RE | RE_BL | EN | MV

let strategy_name = function
  | RE -> "REINFORCE"
  | RE_BL -> "REINFORCE+BL"
  | EN -> "ENUM"
  | MV -> "MVD"

let code_dim = 4
let trunk_dim = 48
let patch_dim = Data.patch_side * Data.patch_side
let image_dim = Data.canvas_dim

let register store key =
  Layer.mlp_register store ~name:"air.dec"
    ~dims:[ code_dim; 16; patch_dim ]
    ~key:(Prng.fold_in key 0);
  Layer.dense_register store ~name:"air.enc.trunk" ~in_dim:image_dim
    ~out_dim:trunk_dim ~key:(Prng.fold_in key 1);
  for i = 0 to Data.max_objects - 1 do
    let head name out_dim j =
      Layer.dense_register store
        ~name:(Printf.sprintf "air.enc.%s.%d" name i)
        ~in_dim:trunk_dim ~out_dim
        ~key:(Prng.fold_in key (10 + (10 * i) + j))
    in
    head "pres" 1 0;
    head "pos" Data.num_positions 1;
    head "mu" code_dim 2;
    head "rho" code_dim 3
  done

type baselines = (string, Baseline.t) Hashtbl.t

let make_baselines () : baselines = Hashtbl.create 8

let baseline_cell (t : baselines) address =
  match Hashtbl.find_opt t address with
  | Some cell -> cell
  | None ->
    let cell = Baseline.create () in
    Hashtbl.add t address cell;
    cell

(* Placement matrices: patch pixel j of grid position p lands at canvas
   pixel [place.(p)] row j. *)
let place_matrices =
  lazy
    (Array.init Data.num_positions (fun p ->
         let r0, c0 = Data.position_offset p in
         Tensor.init [| patch_dim; image_dim |] (fun ix ->
             let pr = ix.(0) / Data.patch_side
             and pc = ix.(0) mod Data.patch_side in
             let canvas_index = ((r0 + pr) * Data.canvas_side) + (c0 + pc) in
             if ix.(1) = canvas_index then 1. else 0.)))

let decode frame code =
  Ad.sigmoid (Layer.mlp frame ~name:"air.dec" ~layers:2 code)

let or_compose a b =
  (* 1 - (1 - a)(1 - b), elementwise. *)
  Ad.O.(a + b - (a * b))

(* Model presence priors match the data's uniform count over
   {0, .., max_objects}: P(n >= 1) = 2/3, P(n = 2 | n >= 1) = 1/2. *)
let model_pres_prob = [| 2. /. 3.; 0.5 |]

let model frame image =
  let open Gen.Syntax in
  let uniform_pos_logits = Ad.const (Tensor.zeros [| Data.num_positions |]) in
  let rec objects i canvas =
    if i >= Data.max_objects then Gen.return canvas
    else
      let* pres =
        Gen.sample
          (Dist.flip_reinforce (Ad.scalar model_pres_prob.(i)))
          (Printf.sprintf "pres_%d" i)
      in
      if not pres then Gen.return canvas
      else
        let* pos =
          Gen.sample
            (Dist.categorical_logits_reinforce uniform_pos_logits)
            (Printf.sprintf "pos_%d" i)
        in
        let* code =
          Gen.sample
            (Dist.mv_normal_diag_reparam
               (Ad.const (Tensor.zeros [| code_dim |]))
               (Ad.const (Tensor.ones [| code_dim |])))
            (Printf.sprintf "code_%d" i)
        in
        let patch = decode frame code in
        let placed = Ad.matmul patch (Ad.const (Lazy.force place_matrices).(pos)) in
        objects (i + 1) (or_compose canvas placed)
  in
  let* canvas = objects 0 (Ad.const (Tensor.zeros [| image_dim |])) in
  let probs = Ad.add_scalar 0.01 (Ad.scale 0.98 canvas) in
  Gen.observe (Dist.bernoulli_vector probs) (Ad.const image)

let flip_with strategy baselines address p =
  match strategy with
  | RE -> Dist.flip_reinforce p
  | RE_BL -> Dist.flip_reinforce_bl (baseline_cell baselines address) p
  | EN -> Dist.flip_enum p
  | MV -> Dist.flip_mvd p

let categorical_with strategy baselines address logits =
  match strategy with
  | RE -> Dist.categorical_logits_reinforce logits
  | RE_BL ->
    Dist.categorical_logits_reinforce_bl (baseline_cell baselines address)
      logits
  | EN -> Dist.categorical_logits_enum logits
  | MV -> Dist.categorical_logits_mvd logits

let guide ?(pres = RE) ?(pos = RE) ~baselines frame image =
  let open Gen.Syntax in
  let h =
    Layer.dense frame ~name:"air.enc.trunk" ~act:Layer.Softplus
      (Ad.const image)
  in
  let head name i = Layer.dense frame ~name:(Printf.sprintf "air.enc.%s.%d" name i) h in
  let rec objects i =
    if i >= Data.max_objects then Gen.return ()
    else begin
      let pres_addr = Printf.sprintf "pres_%d" i in
      let p = Ad.sigmoid (Ad.get (head "pres" i) [| 0 |]) in
      let* present = Gen.sample (flip_with pres baselines pres_addr p) pres_addr in
      if not present then Gen.return ()
      else begin
        let pos_addr = Printf.sprintf "pos_%d" i in
        let* _ =
          Gen.sample (categorical_with pos baselines pos_addr (head "pos" i)) pos_addr
        in
        let mu = head "mu" i in
        let std = Ad.add_scalar 1e-3 (Ad.softplus (head "rho" i)) in
        let* _ =
          Gen.sample (Dist.mv_normal_diag_reparam mu std)
            (Printf.sprintf "code_%d" i)
        in
        objects (i + 1)
      end
    end
  in
  objects 0

type objective = Elbo | Iwelbo of int | Rws of int

let objective_name = function
  | Elbo -> "ELBO"
  | Iwelbo n -> Printf.sprintf "IWELBO(n=%d)" n
  | Rws n -> Printf.sprintf "RWS(n=%d)" n

let rws_objective ~particles ~baselines frame image =
  let open Adev.Syntax in
  (* The SIR proposal uses the current guide with detached parameters
     (the paper's phi'); wake-phase gradients then flow only through the
     model density (theta) and the live-guide density (phi). *)
  let proposal =
    guide ~baselines:(make_baselines ()) (Store.Frame.detach frame) image
  in
  let sir =
    Gen.normalize (model frame image)
      (Gen.importance_prior ~particles (Gen.Packed proposal))
  in
  let* _, trace, logw = Gen.simulate sir in
  let* logp = Gen.log_density (model frame image) trace in
  let* logq = Gen.log_density (guide ~baselines frame image) trace in
  Adev.return Ad.O.(logp - Ad.stop_grad logw + logq)

let batch_objectives ?(pres = RE) ?(pos = RE) ?(compiled = false) ~baselines
    objective frame images =
  let rows = Tensor.rows images in
  List.map
    (fun image ->
      match objective with
      | Elbo when compiled ->
        (* AIR's guide enumerates presence flips, so compilation refuses
           (PV501) and this resolves to the interpreter — exercising the
           graceful-fallback path end to end. *)
        Objectives.elbo_staged ~id:"air" ~model:(model frame image)
          ~guide:(guide ~pres ~pos ~baselines frame image)
      | Elbo ->
        Objectives.elbo ~model:(model frame image)
          ~guide:(guide ~pres ~pos ~baselines frame image)
      | Iwelbo n ->
        Objectives.iwelbo ~particles:n ~model:(model frame image)
          ~guide:(guide ~pres ~pos ~baselines frame image)
          ()
      | Rws n -> rws_objective ~particles:n ~baselines frame image)
    rows

let train_epoch ?(pres = RE) ?(pos = RE) ?(compiled = false) ?guard ~store
    ~optim ~baselines ~objective ~images ~batch key =
  let n = (Tensor.shape images).(0) in
  let nbatches = n / batch in
  let t0 = Unix.gettimeofday () in
  let reports =
    Train.fit_batch ~store ~optim ?guard ~steps:nbatches
      ~objectives:(fun frame step ->
        let rows = List.init batch (fun i -> (step * batch) + i) in
        let minibatch = Tensor.take_rows images rows in
        batch_objectives ~pres ~pos ~compiled ~baselines objective frame
          minibatch)
      key
  in
  let dt = Unix.gettimeofday () -. t0 in
  let mean =
    List.fold_left (fun acc r -> acc +. r.Train.objective) 0. reports
    /. float_of_int (Stdlib.max 1 nbatches)
  in
  (mean, dt)

let infer_count store image key =
  let frame = Store.Frame.make store in
  let g = guide ~baselines:(make_baselines ()) frame image in
  let _, trace, _ = Gen.sample_prior g key in
  List.length
    (List.filter
       (fun addr -> String.length addr >= 4 && String.sub addr 0 4 = "pres"
                    && Trace.get_bool addr trace)
       (Trace.keys trace))

let count_accuracy store images counts key =
  let n = (Tensor.shape images).(0) in
  let correct = ref 0 in
  for i = 0 to n - 1 do
    let c = infer_count store (Tensor.slice0 images i) (Prng.fold_in key i) in
    if c = counts.(i) then incr correct
  done;
  float_of_int !correct /. float_of_int n
