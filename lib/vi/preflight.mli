(** The pre-flight target registry behind [ppvi check].

    Every shipped case study (and a mirror of each example program) is
    listed as a named [Check.target], together with a family of
    deliberately broken demonstration programs whose expected diagnostic
    codes are recorded alongside ([expect]). The CLI and the CI lint job
    run the whole registry: clean targets must produce no error-severity
    diagnostics, demo targets must produce every expected code — so the
    analyzer is exercised against both kinds of ground truth on every
    run. *)

type entry = {
  name : string;  (** e.g. ["cone/elbo"], ["demo/branchy-reparam"]. *)
  expect : string list;
      (** Diagnostic codes this target must produce; empty for targets
          that must analyze clean. *)
  make : unit -> Check.target;
      (** Builds the target (registers parameter stores, synthesizes
          small data batches). *)
}

val entries : entry list

val run : ?fuel:int -> ?max_width:int -> entry -> Check.report
(** Analyze one entry; target-construction failures become a PV390
    warning rather than an exception. *)

val run_all :
  ?fuel:int -> ?max_width:int -> ?filter:string -> unit ->
  (entry * Check.report) list
(** Analyze every entry whose name contains [filter] (all by
    default). *)

val entry_ok : entry -> Check.report -> bool
(** Clean targets: no error-severity diagnostics. Demo targets: every
    expected code present. *)

val all_ok : (entry * Check.report) list -> bool

val results_to_json : (entry * Check.report) list -> string
(** A JSON array of named reports (the CI lint artifact). *)

val print_human : Format.formatter -> (entry * Check.report) list -> unit
