(* The pre-flight target registry: every shipped case study (and a
   mirror of each example program) as a [Check.target], plus a family of
   deliberately broken demonstration programs whose expected diagnostic
   codes are recorded alongside. [ppvi check] and the CI lint job run
   the whole registry: clean targets must produce no error-severity
   diagnostics, demo targets must produce their expected codes. *)

open Gen.Syntax

type entry = {
  name : string;
  expect : string list;
      (* Diagnostic codes this target is expected to produce; empty for
         targets that must analyze clean. *)
  make : unit -> Check.target;
}

let pair model guide = Check.Pair { model; guide }

(* ------------------------------------------------------------------ *)
(* Deliberately broken demonstration programs                          *)

let demo_branchy_reparam () =
  let prog =
    let* x = Gen.sample (Dist.normal_reparam (Ad.scalar 0.) (Ad.scalar 1.)) "x" in
    if Gen.rigid x > 0. then
      let* _ =
        Gen.sample (Dist.normal_reinforce (Ad.scalar 1.) (Ad.scalar 1.)) "pos"
      in
      Gen.return ()
    else Gen.return ()
  in
  Check.Program (Gen.Packed prog)

let demo_enum_on_continuous () =
  let d = Dist.normal_reinforce (Ad.scalar 0.) (Ad.scalar 1.) in
  let d = { d with Dist.strategy = Dist.Enum } in
  Check.Program (Gen.Packed (Gen.sample d "z"))

let demo_mvd_uncoupled () =
  let d = Dist.normal_reinforce (Ad.scalar 0.) (Ad.scalar 1.) in
  let d = { d with Dist.strategy = Dist.Mvd } in
  Check.Program (Gen.Packed (Gen.sample d "z"))

let demo_guide_mismatch () =
  let model =
    let* mu = Gen.sample (Dist.normal_reinforce (Ad.scalar 0.) (Ad.scalar 1.)) "mu" in
    Gen.observe (Dist.normal_reparam mu (Ad.scalar 1.)) (Ad.scalar 0.5)
  in
  let guide =
    let* _ =
      Gen.sample (Dist.normal_reparam (Ad.scalar 0.) (Ad.scalar 1.)) "sigma"
    in
    Gen.return ()
  in
  pair (Gen.Packed model) (Gen.Packed guide)

let demo_duplicate_address () =
  let prog =
    let* _ = Gen.sample (Dist.flip_enum (Ad.scalar 0.4)) "coin" in
    let* _ = Gen.sample (Dist.flip_enum (Ad.scalar 0.6)) "coin" in
    Gen.return ()
  in
  Check.Program (Gen.Packed prog)

let demo_observe_outside_support () =
  let prog =
    let* _ = Gen.sample (Dist.flip_enum (Ad.scalar 0.5)) "b" in
    Gen.observe (Dist.uniform 0. 1.) (Ad.scalar 2.)
  in
  Check.Program (Gen.Packed prog)

(* A plate whose body shape depends on the instance index: the batched
   lowering cannot stack the rows, so every run silently takes the
   sequential path (PV210). *)
let demo_plate_shape () =
  let prog =
    Gen.plate ~n:8 (fun i ->
        let dim = if i = 0 then 2 else 3 in
        Gen.sample
          (Dist.mv_normal_diag_reparam
             (Ad.const (Tensor.zeros [| dim |]))
             (Ad.const (Tensor.ones [| dim |])))
          "z")
  in
  Check.Program (Gen.Packed prog)

(* A plate body reusing an address bound outside the plate: under the
   batched lowering the stacked value would collide with the enclosing
   site (PV211). *)
let demo_plate_escape () =
  let prog =
    let* _ = Gen.sample (Dist.normal_reparam (Ad.scalar 0.) (Ad.scalar 1.)) "z" in
    let* _ =
      Gen.plate ~n:4 (fun _ ->
          Gen.sample (Dist.normal_reparam (Ad.scalar 0.) (Ad.scalar 1.)) "z")
    in
    Gen.return ()
  in
  Check.Program (Gen.Packed prog)

(* Model and guide bind different concrete shapes at the shared latent:
   the model's density of a guide trace reads a 3-vector through a
   2-dimensional primitive (PV601). *)
let demo_shape_mismatch () =
  let mv dim =
    Dist.mv_normal_diag_reparam
      (Ad.const (Tensor.zeros [| dim |]))
      (Ad.const (Tensor.ones [| dim |]))
  in
  let model =
    let* _ = Gen.sample (mv 2) "z" in
    Gen.return ()
  in
  let guide =
    let* _ = Gen.sample (mv 3) "z" in
    Gen.return ()
  in
  pair (Gen.Packed model) (Gen.Packed guide)

(* A two-sided broadcast at an observation: logits [6,1] against a
   value [1,5] scores a 6x5 cross-product instead of elementwise — the
   runtime broadcasts without complaint, so only the static shape pass
   catches it (PV602). *)
let demo_ambiguous_broadcast () =
  let prog =
    Gen.observe
      (Dist.bernoulli_logits_vector (Ad.const (Tensor.zeros [| 6; 1 |])))
      (Ad.const (Tensor.zeros [| 1; 5 |]))
  in
  Check.Program (Gen.Packed prog)

(* A plate whose per-instance shape has leading extent equal to the
   plate count: the stacked [3,3] value's instance axis is
   indistinguishable from the instance's own axis (PV603). *)
let demo_plate_rank () =
  let prog =
    Gen.plate ~n:3 (fun _ ->
        Gen.sample
          (Dist.mv_normal_diag_reparam
             (Ad.const (Tensor.zeros [| 3 |]))
             (Ad.const (Tensor.ones [| 3 |])))
          "w")
  in
  Check.Program (Gen.Packed prog)

(* Model and guide disagree on the iid batch count at the shared
   address: a symbolic-dimension binding conflict (PV604). *)
let demo_plate_count () =
  let mv1 =
    Dist.mv_normal_diag_reparam
      (Ad.const (Tensor.zeros [| 1 |]))
      (Ad.const (Tensor.ones [| 1 |]))
  in
  let model =
    let* _ = Gen.sample (Dist.iid 8 mv1) "z" in
    Gen.return ()
  in
  let guide =
    let* _ = Gen.sample (Dist.iid 4 mv1) "z" in
    Gen.return ()
  in
  pair (Gen.Packed model) (Gen.Packed guide)

(* ------------------------------------------------------------------ *)
(* Example-program mirrors                                             *)

let quickstart_target () =
  let model =
    let* x = Gen.sample (Dist.normal_reparam (Ad.scalar 0.) (Ad.scalar 3.)) "x" in
    let* y = Gen.sample (Dist.normal_reparam (Ad.scalar 0.) (Ad.scalar 3.)) "y" in
    let r2 = Ad.add (Ad.mul x x) (Ad.mul y y) in
    Gen.observe (Dist.normal_reparam r2 (Ad.scalar 0.5)) (Ad.scalar 5.)
  in
  let guide =
    let std rho = Ad.add_scalar 1e-3 (Ad.softplus rho) in
    let* _ =
      Gen.sample (Dist.normal_reparam (Ad.scalar 0.5) (std (Ad.scalar 0.5))) "x"
    in
    let* _ =
      Gen.sample (Dist.normal_reparam (Ad.scalar 0.5) (std (Ad.scalar 0.5))) "y"
    in
    Gen.return ()
  in
  pair (Gen.Packed model) (Gen.Packed guide)

(* The custom-primitive example, with the optional [?meta] static
   metadata a user can attach so the analyzer knows the support. *)
let custom_primitive_target () =
  let exponential_reparam rate =
    Dist.make ~name:"exponential" ~strategy:Dist.Reparam
      ~sample:(fun key ->
        Ad.scalar (Prng.exponential key /. Tensor.to_scalar (Ad.value rate)))
      ~log_density:(fun x -> Ad.O.(Ad.log rate - (rate * x)))
      ~default:(Ad.scalar 1.)
      ~inject:(fun a -> Value.Real a)
      ~project:(function Value.Real a -> Some a | _ -> None)
      ~reparam:(fun key ->
        let e = Prng.exponential key in
        Ad.div (Ad.scalar e) rate)
      ~meta:Dist.nonneg_reals ()
  in
  let model =
    let* x = Gen.sample (exponential_reparam (Ad.scalar 1.)) "x" in
    Gen.observe (Dist.normal_reparam x (Ad.scalar 0.5)) (Ad.scalar 2.)
  in
  let guide = Gen.map (fun _ -> ()) (Gen.sample (exponential_reparam (Ad.scalar 1.2)) "x") in
  pair (Gen.Packed model) (Gen.Packed guide)

(* ------------------------------------------------------------------ *)
(* Case studies                                                        *)

let cone_frame () =
  let store = Store.create () in
  Cone.register store (Prng.key 0);
  Store.Frame.make store

let entries =
  [ { name = "cone/elbo";
      expect = [];
      make =
        (fun () ->
          pair (Gen.Packed Cone.model) (Gen.Packed (Cone.guide_naive (cone_frame ())))) };
    { name = "cone/hvi";
      expect = [];
      make =
        (fun () ->
          pair (Gen.Packed Cone.model)
            (Gen.Packed (Cone.guide_marginal ~aux_particles:2 (cone_frame ())))) };
    { name = "cone/sir";
      expect = [];
      make =
        (fun () ->
          pair (Gen.Packed Cone.model)
            (Gen.Packed (Cone.guide_sir ~particles:2 (cone_frame ())))) };
    { name = "cone/learned-reverse";
      expect = [];
      make =
        (fun () ->
          let frame = cone_frame () in
          let guide =
            Gen.marginal ~keep:[ "x"; "y" ] (Cone.guide_joint frame)
              (Gen.importance ~particles:2 (Cone.reverse_kernel_learned frame))
          in
          pair (Gen.Packed Cone.model) (Gen.Packed guide)) };
    { name = "coin";
      expect = [];
      make =
        (fun () ->
          let store = Store.create () in
          Coin.register store;
          let frame = Store.Frame.make store in
          pair (Gen.Packed Coin.model) (Gen.Packed (Coin.guide frame))) };
    { name = "regression";
      expect = [];
      make =
        (fun () ->
          let store = Store.create () in
          Regression.register store;
          let frame = Store.Frame.make store in
          pair (Gen.Packed Regression.model) (Gen.Packed (Regression.guide frame))) };
    { name = "mcvi";
      expect = [];
      make =
        (fun () ->
          let store = Store.create () in
          Mcvi.register store;
          let frame = Store.Frame.make store in
          pair (Gen.Packed Cone.model)
            (Gen.Packed (Mcvi.guide ~aux_particles:2 frame))) };
    { name = "vae";
      expect = [];
      make =
        (fun () ->
          let store = Store.create () in
          Vae.register store (Prng.key 11);
          let frame = Store.Frame.make store in
          let images, _ = Data.digit_batch (Prng.key 12) 2 in
          pair
            (Gen.Packed (Vae.model frame images))
            (Gen.Packed (Vae.guide frame images))) };
    { name = "ssvae/unsup";
      expect = [];
      make =
        (fun () ->
          let store = Store.create () in
          Ssvae.register store (Prng.key 21);
          let frame = Store.Frame.make store in
          let images, _ = Data.digit_batch (Prng.key 22) 1 in
          let image = Tensor.slice0 images 0 in
          pair
            (Gen.Packed (Ssvae.unsup_model frame image))
            (Gen.Packed (Ssvae.unsup_guide frame image))) };
    { name = "ssvae/sup";
      expect = [];
      make =
        (fun () ->
          let store = Store.create () in
          Ssvae.register store (Prng.key 23);
          let frame = Store.Frame.make store in
          let images, _ = Data.digit_batch (Prng.key 24) 1 in
          let image = Tensor.slice0 images 0 in
          pair
            (Gen.Packed (Ssvae.sup_model frame 3 image))
            (Gen.Packed (Ssvae.sup_guide frame 3 image))) };
    { name = "cvae";
      expect = [];
      make =
        (fun () ->
          let store = Store.create () in
          Cvae.register store (Prng.key 31);
          let frame = Store.Frame.make store in
          let images, _ = Data.digit_batch (Prng.key 32) 1 in
          let image = Tensor.slice0 images 0 in
          let input = Tensor.flatten (Data.quadrant image Cvae.observed_quadrant) in
          let target = Data.without_quadrant image Cvae.observed_quadrant in
          pair
            (Gen.Packed (Cvae.model frame input target))
            (Gen.Packed (Cvae.guide frame input target))) };
    { name = "air";
      expect = [];
      make =
        (fun () ->
          let store = Store.create () in
          Air.register store (Prng.key 41);
          let frame = Store.Frame.make store in
          let baselines = Air.make_baselines () in
          let image, _ = Data.air_scene (Prng.key 42) in
          pair
            (Gen.Packed (Air.model frame image))
            (Gen.Packed (Air.guide ~baselines frame image))) };
    { name = "examples/quickstart"; expect = []; make = quickstart_target };
    { name = "examples/custom-primitive";
      expect = [];
      make = custom_primitive_target };
    { name = "demo/branchy-reparam";
      expect = [ "PV101" ];
      make = demo_branchy_reparam };
    { name = "demo/enum-on-continuous";
      expect = [ "PV102" ];
      make = demo_enum_on_continuous };
    { name = "demo/mvd-uncoupled"; expect = [ "PV103" ]; make = demo_mvd_uncoupled };
    { name = "demo/guide-mismatch";
      expect = [ "PV202"; "PV203" ];
      make = demo_guide_mismatch };
    { name = "demo/duplicate-address";
      expect = [ "PV201" ];
      make = demo_duplicate_address };
    { name = "demo/observe-outside-support";
      expect = [ "PV301" ];
      make = demo_observe_outside_support };
    { name = "demo/plate-shape"; expect = [ "PV210" ]; make = demo_plate_shape };
    { name = "demo/plate-escape";
      expect = [ "PV211" ];
      make = demo_plate_escape };
    { name = "demo/pv601-shape-mismatch";
      expect = [ "PV601" ];
      make = demo_shape_mismatch };
    { name = "demo/pv602-ambiguous-broadcast";
      expect = [ "PV602" ];
      make = demo_ambiguous_broadcast };
    { name = "demo/pv603-plate-rank";
      expect = [ "PV603" ];
      make = demo_plate_rank };
    { name = "demo/pv604-plate-count";
      expect = [ "PV604" ];
      make = demo_plate_count } ]

(* ------------------------------------------------------------------ *)
(* Running the registry                                                *)

(* Compileability findings, folded into the same report: stage each of
   the target's programs through [Compile.compile] (uncached, so
   frame-specific registry programs never pollute the plan cache) and
   report refusals as info-severity PV501 diagnostics. One [ppvi
   check] run thus surfaces strategy, address, shape, and
   compileability findings together. Info severity is deliberate —
   refusing to stage is a supported fallback, not an error. *)
let compile_refusals ?fuel ?max_width name target =
  let programs =
    match target with
    | Check.Program p -> [ (name, p) ]
    | Check.Pair { model; guide } ->
      [ (name ^ "/model", model); (name ^ "/guide", guide) ]
  in
  List.filter_map
    (fun (id, p) ->
      match Compile.compile ?fuel ?max_width ~id p with
      | Compile.Compiled _ -> None
      | Compile.Refused r ->
        Some
          { Check.code = r.Compile.r_code;
            severity = Check.Info;
            address = r.Compile.r_address;
            message =
              Printf.sprintf "%s does not stage: %s" id r.Compile.r_reason }
      | exception exn ->
        Some
          { Check.code = "PV501";
            severity = Check.Info;
            address = None;
            message =
              Printf.sprintf "%s: staging attempt failed: %s" id
                (Printexc.to_string exn) })
    programs

let run ?fuel ?max_width entry =
  match entry.make () with
  | target ->
    let report = Check.analyze ?fuel ?max_width target in
    let refusals = compile_refusals ?fuel ?max_width entry.name target in
    { report with Check.diagnostics = report.Check.diagnostics @ refusals }
  | exception exn ->
    { Check.diagnostics =
        [ { Check.code = "PV390";
            severity = Check.Warning;
            address = None;
            message = "target construction failed: " ^ Printexc.to_string exn } ];
      truncated = false }

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  nn = 0
  ||
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let run_all ?fuel ?max_width ?(filter = "") () =
  let selected = List.filter (fun e -> contains_substring e.name filter) entries in
  List.map (fun e -> (e, run ?fuel ?max_width e)) selected

(* A clean target passes when it has no error-severity diagnostics; a
   demo target passes when every expected code shows up. *)
let entry_ok entry report =
  match entry.expect with
  | [] -> not (Check.has_errors report)
  | expected ->
    List.for_all
      (fun code ->
        List.exists (fun d -> d.Check.code = code) report.Check.diagnostics)
      expected

let all_ok results = List.for_all (fun (e, r) -> entry_ok e r) results

let results_to_json results =
  "["
  ^ String.concat ","
      (List.map (fun (e, r) -> Check.report_to_json ~name:e.name r) results)
  ^ "]"

let print_human ppf results =
  List.iter
    (fun (e, r) ->
      let status =
        if entry_ok e r then "ok"
        else if e.expect = [] then "FAIL"
        else "MISSING-EXPECTED"
      in
      Format.fprintf ppf "%-32s %s@." e.name status;
      List.iter
        (fun d -> Format.fprintf ppf "    %a@." Check.pp_diagnostic d)
        r.Check.diagnostics;
      if r.Check.truncated then
        Format.fprintf ppf "    (exploration truncated)@.")
    results
