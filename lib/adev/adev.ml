type 'a t = Prng.key -> ('a -> Ad.t) -> Ad.t

let return x _key k = k x

let bind m f key k =
  let k1, k2 = Prng.split key in
  m k1 (fun a -> f a k2 k)

let map f m key k = m key (fun a -> k (f a))

(* The DiCE / magic-box surrogate: value y, gradient dy + (y - b) dlogp. *)
let score_function_surrogate ?(baseline = 0.) y lp =
  let open Ad.O in
  y
  + ((Ad.stop_grad y - Ad.scalar baseline) * (lp - Ad.stop_grad lp))

(* MVD couplings evaluate the continuation for its primal value only.
   While doing so, downstream sample sites must not spin up their own
   estimator machinery (ENUM branch products, nested couplings, score
   terms): a plain detached sample preserves the coupling's expectation
   and keeps its cost linear instead of exponential in the number of
   downstream sites. *)
let primal_mode = ref false

let in_primal_mode f =
  let saved = !primal_mode in
  primal_mode := true;
  Fun.protect ~finally:(fun () -> primal_mode := saved) f

let sample (d : 'a Dist.t) : 'a t =
 fun key k ->
  if !primal_mode then k (d.sample key)
  else
  match d.strategy with
  | Dist.Reparam -> begin
    match d.reparam with
    | Some r ->
      let x = r key in
      (* Record where this smooth sample came from, so a later
         non-smooth use can report the offending strategy (and, once
         [Gen.simulate] adds it, the trace address). *)
      Value.register_origin_value (d.inject x)
        ~strategy:(Dist.strategy_name d.strategy) ();
      k x
    | None ->
      invalid_arg
        (Printf.sprintf "Adev.sample: %s has no reparameterized sampler"
           d.name)
  end
  | Dist.Reinforce ->
    let x = d.sample key in
    let y = k x in
    score_function_surrogate y (d.log_density x)
  | Dist.Reinforce_baseline cell ->
    let x = d.sample key in
    let y = k x in
    let b = Baseline.value cell in
    Baseline.update cell (Tensor.to_scalar (Ad.value y));
    score_function_surrogate ~baseline:b y (d.log_density x)
  | Dist.Enum -> begin
    match d.support with
    | Some support ->
      let terms =
        List.map
          (fun v -> Ad.mul (Ad.exp (d.log_density v)) (k v))
          support
      in
      Ad.add_list terms
    | None ->
      invalid_arg
        (Printf.sprintf "Adev.sample: %s has no finite support for ENUM"
           d.name)
  end
  | Dist.Mvd -> begin
    match d.mvd with
    | Some mvd ->
      let x, couplings = mvd key in
      let y = k x in
      let coupling_term (c : 'a Dist.coupling) =
        let primal v = Tensor.to_scalar (Ad.value (in_primal_mode (fun () -> k v))) in
        let y_plus = primal c.plus in
        let y_minus = primal c.minus in
        Ad.scale
          (c.weight *. (y_plus -. y_minus))
          (Ad.sub c.param (Ad.stop_grad c.param))
      in
      Ad.add_list (y :: List.map coupling_term couplings)
    | None ->
      invalid_arg
        (Printf.sprintf "Adev.sample: %s has no MVD couplings" d.name)
  end

let rec replicate n m =
  if n <= 0 then return []
  else bind m (fun x -> bind (replicate (n - 1) m) (fun rest -> return (x :: rest)))

let score w _key k = Ad.mul w (k ())
let score_log lw key k = score (Ad.exp lw) key k

let run m key k = m key k
let expectation m key = m key (fun x -> x)

let expectation_mean ~samples m key =
  if samples < 1 then invalid_arg "Adev.expectation_mean: samples < 1";
  let keys = Prng.split_many key samples in
  let terms = Array.to_list (Array.map (expectation m) keys) in
  Ad.scale (1. /. float_of_int samples) (Ad.add_list terms)

let estimate ?(samples = 1) m key =
  let keys = Prng.split_many key samples in
  let total =
    Array.fold_left
      (fun acc ki -> acc +. Tensor.to_scalar (Ad.value (expectation m ki)))
      0. keys
  in
  total /. float_of_int samples

let grad ~params ?(samples = 1) m key =
  let surrogate = expectation_mean ~samples m key in
  Ad.backward surrogate;
  let v = Tensor.to_scalar (Ad.value surrogate) in
  (v, List.map (fun (name, p) -> (name, Ad.grad p)) params)

module Syntax = struct
  let ( let* ) = bind
  let ( let+ ) m f = map f m
end
