type 'a t = Prng.key -> ('a -> Ad.t) -> Ad.t

let return x _key k = k x

let bind m f key k =
  let k1, k2 = Prng.split key in
  m k1 (fun a -> f a k2 k)

let map f m key k = m key (fun a -> k (f a))

(* The DiCE / magic-box surrogate: value y, gradient dy + (y - b) dlogp. *)
let score_function_surrogate ?(baseline = 0.) y lp =
  let open Ad.O in
  y
  + ((Ad.stop_grad y - Ad.scalar baseline) * (lp - Ad.stop_grad lp))

(* MVD couplings evaluate the continuation for its primal value only.
   While doing so, downstream sample sites must not spin up their own
   estimator machinery (ENUM branch products, nested couplings, score
   terms): a plain detached sample preserves the coupling's expectation
   and keeps its cost linear instead of exponential in the number of
   downstream sites. *)
let primal_mode = ref false

let in_primal_mode f =
  let saved = !primal_mode in
  primal_mode := true;
  Fun.protect ~finally:(fun () -> primal_mode := saved) f

(* Observability plumbing. [addr] is the trace address a [Gen]
   interpreter attached via [sample_at] ("" for anonymous sites, shown
   as "<dist-name>"). The hooks only read primal floats and the wall
   clock — they never consume PRNG keys or touch AD state, so enabling
   them cannot change a seeded run (the bit-identity property in
   test/test_obs.ml). The statistic fed per site is the estimator's
   {e score coefficient}: the stochastic scalar multiplying
   [grad log p] in the surrogate — [primal y - baseline] for the score
   function estimators, each coupling's [weight * (y+ - y-)] for MVD,
   and 0 for the pathwise/exact strategies (REPARAM, ENUM), whose
   gradient carries no score-function noise. *)

let site_address addr (d : 'a Dist.t) =
  if addr = "" then "<" ^ d.Dist.name ^ ">" else addr

let record_site addr (d : 'a Dist.t) coeff =
  Obs.estimator ~address:(site_address addr d)
    ~strategy:(Dist.strategy_name d.Dist.strategy) coeff

let sample_at (addr : string) (d : 'a Dist.t) : 'a t =
 fun key k ->
  if !primal_mode then k (d.sample key)
  else
  match d.strategy with
  | Dist.Reparam -> begin
    match d.reparam with
    | Some r ->
      let x =
        if Obs.live () then begin
          let t0 = Obs.start () in
          let x = r key in
          Obs.stop Obs.Simulate d.name t0;
          record_site addr d 0.;
          x
        end
        else r key
      in
      (* Record where this smooth sample came from, so a later
         non-smooth use can report the offending strategy (and, once
         [Gen.simulate] adds it, the trace address). *)
      Value.register_origin_value (d.inject x)
        ~strategy:(Dist.strategy_name d.strategy) ();
      k x
    | None ->
      invalid_arg
        (Printf.sprintf "Adev.sample: %s has no reparameterized sampler"
           d.name)
  end
  | Dist.Reinforce ->
    let x =
      if Obs.live () then begin
        let t0 = Obs.start () in
        let x = d.sample key in
        Obs.stop Obs.Simulate d.name t0;
        x
      end
      else d.sample key
    in
    let y = k x in
    if Obs.live () then record_site addr d (Tensor.to_scalar (Ad.value y));
    score_function_surrogate y (d.log_density x)
  | Dist.Reinforce_baseline cell ->
    let x =
      if Obs.live () then begin
        let t0 = Obs.start () in
        let x = d.sample key in
        Obs.stop Obs.Simulate d.name t0;
        x
      end
      else d.sample key
    in
    let y = k x in
    let b = Baseline.value cell in
    Baseline.update cell (Tensor.to_scalar (Ad.value y));
    if Obs.live () then
      record_site addr d (Tensor.to_scalar (Ad.value y) -. b);
    score_function_surrogate ~baseline:b y (d.log_density x)
  | Dist.Enum -> begin
    match d.support with
    | Some support ->
      let terms =
        List.map
          (fun v -> Ad.mul (Ad.exp (d.log_density v)) (k v))
          support
      in
      if Obs.live () then record_site addr d 0.;
      Ad.add_list terms
    | None ->
      invalid_arg
        (Printf.sprintf "Adev.sample: %s has no finite support for ENUM"
           d.name)
  end
  | Dist.Mvd -> begin
    match d.mvd with
    | Some mvd ->
      let x, couplings = mvd key in
      let y = k x in
      let coupling_term (c : 'a Dist.coupling) =
        let primal v = Tensor.to_scalar (Ad.value (in_primal_mode (fun () -> k v))) in
        let y_plus = primal c.plus in
        let y_minus = primal c.minus in
        if Obs.live () then
          record_site addr d (c.weight *. (y_plus -. y_minus));
        Ad.scale
          (c.weight *. (y_plus -. y_minus))
          (Ad.sub c.param (Ad.stop_grad c.param))
      in
      Ad.add_list (y :: List.map coupling_term couplings)
    | None ->
      invalid_arg
        (Printf.sprintf "Adev.sample: %s has no MVD couplings" d.name)
  end

let sample d = sample_at "" d

(* Tail-recursive accumulator building the exact nested-bind term the
   historical recursive formulation built — same key-split stream, same
   element order — without O(n) stack frames at construction time. *)
let replicate n m =
  let rec go acc j =
    if j <= 0 then acc
    else go (bind m (fun x -> bind acc (fun rest -> return (x :: rest)))) (j - 1)
  in
  go (return []) n

(* Batched sites: n i.i.d. instances of one primitive as a single
   rank-lifted draw. REPARAM lifts the pathwise sampler; REINFORCE
   becomes one axis-reduced DiCE surrogate instead of n scalar terms.
   When the continuation's result is instance-aligned (same shape as
   the per-instance log-density vector), each instance couples to its
   own log density — elementwise DiCE, the lower-variance estimator;
   otherwise the result couples to the joint log density (unbiased by
   independence: cross terms vanish in expectation). *)
let sample_batched_at addr ~n (d : 'a Dist.t) : 'a t =
 fun key k ->
  let b =
    match d.Dist.batched with
    | Some b -> b
    | None ->
      raise (Dist.Not_batchable (d.Dist.name ^ ": no batched execution payload"))
  in
  if !primal_mode then k (b.Dist.sample_n key n)
  else
    match d.Dist.strategy with
    | Dist.Reparam -> begin
      match b.Dist.reparam_n with
      | Some r ->
        let x =
          if Obs.live () then begin
            let t0 = Obs.start () in
            let x = r key n in
            Obs.stop Obs.Simulate d.Dist.name t0;
            record_site addr d 0.;
            Obs.hist "adev/batched_site_n" (float_of_int n);
            x
          end
          else r key n
        in
        Value.register_origin_value (d.Dist.inject x)
          ~strategy:(Dist.strategy_name d.Dist.strategy) ();
        k x
      | None ->
        raise
          (Dist.Not_batchable
             (d.Dist.name ^ ": no batched reparameterized sampler"))
    end
    | Dist.Reinforce ->
      let x =
        if Obs.live () then begin
          let t0 = Obs.start () in
          let x = b.Dist.sample_n key n in
          Obs.stop Obs.Simulate d.Dist.name t0;
          Obs.hist "adev/batched_site_n" (float_of_int n);
          x
        end
        else b.Dist.sample_n key n
      in
      let y = k x in
      let lp = b.Dist.log_density_n x in
      if Obs.live () then record_site addr d (Tensor.mean (Ad.value y));
      if Ad.shape y = Ad.shape lp then score_function_surrogate y lp
      else score_function_surrogate y (Ad.sum lp)
    | s ->
      (* ENUM/MVD products and stateful baselines cannot be collapsed
         into one rank-lifted site; a failed attempt must not touch
         baseline cells, so refuse before sampling. *)
      raise
        (Dist.Not_batchable
           (Printf.sprintf "%s sites cannot be batched" (Dist.strategy_name s)))

let sample_batched ~n d = sample_batched_at "" ~n d

let replicate_batched n d = sample_batched ~n d

(* Key plumbing for interpreters that need explicit control over the
   stream (the plate lowering aligns batched rows with sequential
   instances via [Prng.fold_in]). *)
let keyed f key k = f key key k
let with_key key m _ambient k = m key k

let batch_fallback_exn = function
  | Dist.Not_batchable _ | Tensor.Shape_error _ | Value.Smoothness_error _ ->
    true
  | _ -> false

let or_else m fallback key k =
  try m key k with e when batch_fallback_exn e -> fallback key k

(* Defer term construction into the run so that interpreters that
   refuse eagerly (e.g. the vectorized evaluators probing batched
   payloads) raise where [or_else] can catch them. *)
let delay f key k = (f ()) key k

let score w _key k = Ad.mul w (k ())
let score_log lw key k = score (Ad.exp lw) key k

(* Entry points restore the ambient tensor pool on the way out (normal
   return or exception): a compiled program under the key may install
   its arena for the duration of the run, and an escaping exception
   (guard trip, injected fault) must not leave a stale pool routing
   unrelated allocations. *)
let protect_pool f =
  let saved = Tensor.current_pool () in
  match f () with
  | r ->
    Tensor.set_pool saved;
    r
  | exception e ->
    Tensor.set_pool saved;
    raise e

let run m key k = protect_pool (fun () -> m key k)
let expectation m key = protect_pool (fun () -> m key (fun x -> x))

(* Register the replay silencer: a checkpoint-segment replay re-runs
   estimator code whose Obs hooks (site timers, Welford accumulators)
   must not double-report. Suppression is bit-transparent by the
   instrumentation contract. *)
let () = Ad.set_replay_silencer (fun f -> Obs.suppress f)

let expectation_mean ?(remat = false) ~samples m key =
  if samples < 1 then invalid_arg "Adev.expectation_mean: samples < 1";
  let keys = Prng.split_many key samples in
  (* With [remat], each sample's surrogate sits behind its own
     checkpoint barrier: the per-sample tape segment is discarded
     after construction and rematerialized during backward (the
     explicit key makes the thunk replay-deterministic), so the peak
     live tape holds one sample's segment instead of all of them. *)
  let term ki =
    if remat then Ad.checkpoint (fun () -> expectation m ki)
    else expectation m ki
  in
  let terms = Array.to_list (Array.map term keys) in
  Ad.scale (1. /. float_of_int samples) (Ad.add_list terms)

let estimate ?(samples = 1) m key =
  let keys = Prng.split_many key samples in
  let total =
    Array.fold_left
      (fun acc ki -> acc +. Tensor.to_scalar (Ad.value (expectation m ki)))
      0. keys
  in
  total /. float_of_int samples

let grad ~params ?(samples = 1) m key =
  let surrogate = expectation_mean ~samples m key in
  Ad.backward surrogate;
  let v = Tensor.to_scalar (Ad.value surrogate) in
  (v, List.map (fun (name, p) -> (name, Ad.grad p)) params)

module Syntax = struct
  let ( let* ) = bind
  let ( let+ ) m f = map f m
end
