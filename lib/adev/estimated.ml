type t = Prng.key -> Ad.t

let run t key = t key

let mean ?(samples = 1000) t key =
  let ks = Prng.split_many key samples in
  let live = Obs.live () in
  Array.fold_left
    (fun acc k ->
      let v = Tensor.to_scalar (Ad.value (t k)) in
      (* Plain Monte Carlo over the estimator's own draws: the sample
         spread here is the end-to-end estimator variance. *)
      if live then Obs.estimator ~address:"<estimated.mean>" ~strategy:"MC" v;
      acc +. v)
    0. ks
  /. float_of_int samples

let of_expectation m key = Adev.expectation m key
let const x _key = Ad.scalar x
let of_fun f = f

let add a b key =
  let k1, k2 = Prng.split key in
  Ad.add (a k1) (b k2)

let sub a b key =
  let k1, k2 = Prng.split key in
  Ad.sub (a k1) (b k2)

let scale c a key = Ad.scale c (a key)
let shift c a key = Ad.add_scalar c (a key)

let mul a b key =
  let k1, k2 = Prng.split key in
  Ad.mul (a k1) (b k2)

(* e^x = E_{N ~ Poisson(rate)} [ e^rate rate^{-N} prod_{i<N} X_i ]:
   each term of the exponential series, importance-sampled by the
   Poisson. *)
let exp ?(rate = 2.0) a key =
  let kn, kx = Prng.split key in
  let n = Prng.poisson kn rate in
  let coeff = Float.exp rate /. (rate ** float_of_int n) in
  let factors = List.init n (fun i -> a (Prng.fold_in kx i)) in
  Ad.scale coeff (List.fold_left Ad.mul (Ad.scalar 1.) factors)

(* 1/x around anchor a: 1/x = (1/a) sum_n (1 - x/a)^n. Russian roulette:
   include term n with probability p^n, weighting by p^{-n}. *)
let reciprocal_mean ?(anchor = 1.0) ?(horizon_p = 0.9) a key =
  let rec terms key acc weight =
    let k1, rest = Prng.split key in
    let k2, k3 = Prng.split rest in
    if not (Prng.bernoulli k1 horizon_p) then acc
    else begin
      (* One fresh estimate per series factor keeps terms unbiased. *)
      let factor =
        Ad.scale (1. /. horizon_p)
          (Ad.sub (Ad.scalar 1.) (Ad.scale (1. /. anchor) (a k2)))
      in
      let weight = Ad.mul weight factor in
      terms k3 (Ad.add acc weight) weight
    end
  in
  let acc = terms key (Ad.scalar 1.) (Ad.scalar 1.) in
  Ad.scale (1. /. anchor) acc
