(** The differentiable probabilistic language (lambda_ADEV) with
    automatic differentiation of expected values.

    A computation of type ['a t] denotes a measure over ['a]-values. The
    implementation is in continuation-passing style: running the
    computation threads a PRNG key and builds a single AD scalar — a
    {e surrogate loss} — whose primal value is an unbiased estimate of
    the program's expectation and whose reverse-mode gradient (via
    [Ad.backward]) is an unbiased estimate of the expectation's gradient
    with respect to every parameter the program closes over.

    This is the reverse-mode ADEV construction of Appendix A.4 of the
    paper: each {!sample} site dispatches on the distribution's gradient
    estimation strategy and wires the appropriate estimator into the
    surrogate —

    - REPARAM: the differentiable sampler's output flows into the
      continuation; the pathwise derivative is ordinary backprop.
    - REINFORCE: the continuation's result [y] is augmented with the
      DiCE / magic-box term [stop(y) * (log p(x) - stop(log p(x)))],
      whose value is 0 and whose gradient is [y * d log p(x)].
    - REINFORCE with baseline: as above with [stop(y) - b].
    - ENUM: the continuation runs once per support element; the result
      is the exactly enumerated expectation (probabilities carry
      gradients).
    - MVD: the continuation runs at the sampled value (pathwise part)
      and, primal-only, at each coupling's positive/negative samples;
      the coupling contributes
      [(param - stop param) * weight * (y+ - y-)], whose value is 0 and
      whose gradient is the measure-valued derivative. Couplings share
      the continuation's randomness (common random numbers).

    The soundness of each construction is checked in
    [test/test_adev.ml] against closed-form gradients and against the
    forward-mode transformation in {!module:Forward}. *)

type 'a t

val return : 'a -> 'a t
val bind : 'a t -> ('a -> 'b t) -> 'b t
val map : ('a -> 'b) -> 'a t -> 'b t

val sample : 'a Dist.t -> 'a t
(** Draw from a primitive, estimating gradients with its strategy.
    @raise Invalid_argument if the strategy's required data is missing
    (e.g. ENUM without a finite support). *)

val sample_at : string -> 'a Dist.t -> 'a t
(** [sample_at addr d] is {!sample} with a trace address attached for
    observability: when [Obs.live ()], each draw is timed and the
    estimator's score coefficient is fed into the per-site Welford
    accumulator under [(addr, strategy)] (an empty [addr] displays as
    ["<dist-name>"]). The hooks never consume PRNG keys or mutate AD
    state, so [sample_at addr d = sample d] as a measure — bit-for-bit
    when observability is disabled. [Gen]'s interpreters call this
    with the site's trace address. *)

val score : Ad.t -> unit t
(** Multiply the measure by a (nonnegative) density factor, as in the
    paper's [score]: [E (do { score w; m })] integrates [m]'s integrand
    against the [w]-reweighted measure. *)

val score_log : Ad.t -> unit t
(** [score_log lw = score (exp lw)]. *)

val replicate : int -> 'a t -> 'a list t
(** Run a computation [n] times with independent randomness, collecting
    the results (the particle-drawing idiom of IWELBO-style
    objectives). Tail-recursive: safe at very large particle counts. *)

(** {1 Batched sites}

    One rank-lifted sample in place of [n] interpreter passes: the
    drawn value's leading axis is the instance axis (see
    {!Dist.batched}). REPARAM sites lift the pathwise sampler;
    REINFORCE sites collapse the [n] DiCE terms into one
    axis-reduction — elementwise against the per-instance log-density
    vector when the continuation's result is instance-aligned (lower
    variance), against the joint log density otherwise (unbiased by
    independence). *)

val sample_batched : n:int -> 'a Dist.t -> 'a t
(** Draw [n] i.i.d. instances of a primitive as one batched site. Row
    [i] is bit-for-bit the scalar draw under [Prng.fold_in key i].
    @raise Dist.Not_batchable when the primitive has no batched
    payload or its strategy (ENUM, MVD, baseline REINFORCE) cannot be
    collapsed; the check happens before any sampling or baseline
    mutation, so callers can safely retry sequentially with the same
    key (see {!or_else}). *)

val sample_batched_at : string -> n:int -> 'a Dist.t -> 'a t
(** {!sample_batched} with a trace address for observability, as in
    {!sample_at} (the REINFORCE coefficient recorded is the mean of
    the continuation's per-instance primal values). *)

val replicate_batched : int -> 'a Dist.t -> 'a t
(** [replicate_batched n d] rewrites the [replicate n (sample d)]
    particle-drawing idiom into one batched site returning the stacked
    value (use {!Dist.batched}'s [unstack] to recover rows). *)

val keyed : (Prng.key -> 'a t) -> 'a t
(** Expose the ambient key to the computation being built (the plate
    lowering uses it to align batched rows with sequential
    instances). *)

val with_key : Prng.key -> 'a t -> 'a t
(** Run a computation under an explicit key, ignoring the ambient
    one. *)

val or_else : 'a t -> 'a t -> 'a t
(** [or_else m fallback] runs [m]; if it raises a batching-related
    error ([Dist.Not_batchable], a shape error from a rank-assuming
    continuation, or a smoothness error), runs [fallback] under the
    {e same} key. Keys are pure and the AD tape is functional, so the
    retry is safe — with the caveat that a stateful baseline updated
    before a {e downstream} failure would be updated again; batched
    sites themselves refuse before touching baselines. *)

val delay : (unit -> 'a t) -> 'a t
(** Defer the construction of a computation into its run. Interpreters
    that inspect programs eagerly (the vectorized evaluators probe
    every site's batched payload while building the term) raise their
    refusals at construction time; [delay] moves that moment inside
    the run so [or_else] can catch it. *)

(** {1 Running} *)

val run : 'a t -> Prng.key -> ('a -> Ad.t) -> Ad.t
(** Low-level runner (used by [Gen] to embed generative programs). *)

val expectation : Ad.t t -> Prng.key -> Ad.t
(** One-sample surrogate for the expected value: its primal is an
    unbiased estimate of [E m], its reverse-mode gradient an unbiased
    estimate of [grad E m]. This is the paper's [E] operator composed
    with the [adev] transformation. *)

val expectation_mean : ?remat:bool -> samples:int -> Ad.t t -> Prng.key -> Ad.t
(** Average of [samples] independent surrogates (a minibatch of
    estimates); still unbiased, with variance reduced by 1/samples.
    With [remat] (default false) each sample's surrogate sits behind
    its own [Ad.checkpoint] barrier: the per-sample tape segment is
    discarded after construction and rematerialized during backward —
    bit-identical gradients (the explicit per-sample key makes replay
    exact), with peak live tape bounded by one sample's segment. Do
    not combine with REINFORCE-baseline sites (their cells mutate
    between construction and replay; see docs/MEMORY.md). *)

val estimate : ?samples:int -> Ad.t t -> Prng.key -> float
(** Primal-only Monte Carlo estimate (default 1 sample). *)

val grad :
  params:(string * Ad.t) list ->
  ?samples:int ->
  Ad.t t ->
  Prng.key ->
  float * (string * Tensor.t) list
(** [grad ~params obj key] runs the surrogate, backpropagates, and
    returns the objective estimate together with the gradient
    accumulated in each named parameter leaf. Parameters must be fresh
    leaf nodes for this call (gradients accumulate per node). *)

(** {1 Syntax} *)

module Syntax : sig
  val ( let* ) : 'a t -> ('a -> 'b t) -> 'b t
  val ( let+ ) : 'a t -> ('a -> 'b) -> 'b t
end
