(** Pre-flight static analysis of generative programs.

    [analyze] abstractly interprets a program's free-monad structure
    (via [Gen.reflect]) without running inference: each sample site is
    expanded into a small set of representative probe values — the full
    support for enumerable primitives, interval-straddling floats for
    continuous ones (so both sides of [rigid]-guarded branches are
    visited), and a single tainted non-leaf AD node for REPARAM sites
    (so non-smooth uses raise the same attributed error the runtime
    would). The result is a list of structured diagnostics:

    - {b PV1xx — strategy validity}: PV101 a REPARAM sample flows into a
      branch/comparison; PV102 ENUM on a continuous primitive or one
      without finite support; PV103 MVD without couplings; PV104 REPARAM
      without a reparameterized sampler.
    - {b PV2xx — address discipline}: PV201 duplicate address reachable
      on some path; PV202 guide misses a model latent; PV203 guide
      samples an address the model cannot consume; PV204 carrier
      mismatch; PV205/PV206 [marginal] kept/proposal coverage; PV207
      [normalize] proposal coverage; PV208 guide support exceeds the
      model's (warning); PV210 plate body not shape-consistent across
      instances, so the batched lowering silently degrades to the
      sequential path (warning); PV211 plate body address collides with
      a site bound in the enclosing scope.
    - {b PV3xx — values and shapes}: PV301 observed value outside the
      primitive's static support; PV302 observed NaN; PV310 tensor shape
      error (e.g. through [Layer] applications); PV390 other exception
      during exploration (warning).
    - {b PV401 — analysis budget}: exploration truncated (info).
    - {b PV6xx — static shapes} (see {!Shape} and [docs/DIAGNOSTICS.md]):
      PV601 concrete shape mismatch (an observation's value cannot
      broadcast against its parameters, or model and guide bind
      different shapes at a shared address); PV602 ambiguous two-sided
      broadcast at an observation (warning); PV603 plate instance
      shape whose leading extent equals the plate count, making the
      stacked axes ambiguous at the plate boundary (warning); PV604
      symbolic-dimension binding conflict between model and guide
      (plate or iid batch counts disagree).

    Exploration is fuel-bounded, so recursive programs terminate; when
    the budget runs out, coverage findings are demoted to warnings and
    the report is marked [truncated]. *)

type severity = Info | Warning | Error

type diagnostic = {
  code : string;  (** Stable identifier, e.g. ["PV101"]. *)
  severity : severity;
  address : string option;
      (** The trace address the finding is about, when site-specific. *)
  message : string;
}

type report = { diagnostics : diagnostic list; truncated : bool }

(** What to analyze: a single program, or a model/guide pair as passed
    to the [Objectives.*] estimators (coverage is checked in both
    directions). *)
type target =
  | Program of Gen.packed
  | Pair of { model : Gen.packed; guide : Gen.packed }

exception Preflight_error of string
(** Raised by strict pre-flight gates (e.g. [Train.fit
    ~preflight_strict:true]) when a target has error-severity
    diagnostics. *)

val analyze : ?fuel:int -> ?max_width:int -> target -> report
(** [fuel] bounds the number of program nodes visited (default 20000);
    [max_width] bounds the probe values per sample site (default 4). *)

val site_shapes :
  ?fuel:int -> ?max_width:int -> target -> (string * Shape.t) list
(** The inferred abstract shape of every reachable sample site, sorted
    by address — the table behind [ppvi check --shapes]. Leading axes
    are lifted to symbolic dimensions where the analyzer knows their
    origin: [N@addr] for batched-plate instance counts, [B@addr] for
    [iid] batch sizes. For a {!Pair}, model addresses are prefixed
    with ["model/"] and guide addresses with ["guide/"]. Sites binding
    no real tensor (bool/int carriers) are omitted. *)

(** {1 Structure trails (shared with the staged compiler)}

    [trail] runs the {e same} abstract-interpretation walk as
    {!analyze} over a single program, additionally recording the
    ordered sequence of sites each exploration path visits. The staged
    compiler ([lib/compile]) consumes these trails as the program's
    discovered structure — one traversal serves both the preflight
    diagnostics and plan construction. Trail steps are purely
    structural data, so trails from different probe paths can be
    compared with [(=)] to detect data-dependent structure. *)

type trail_step =
  | Trail_sample of {
      t_addr : string;
      t_dist : string;
      t_strategy : string;
      t_reentrant : bool;
          (** ENUM / MVD: the site re-runs its continuation at runtime. *)
      t_reparam : bool;
      t_shape : int array option;
    }
  | Trail_observe of {
      t_dist : string;
      t_shape : int array option;
          (** Observed value shape, when the value is a real tensor. *)
      t_param_shape : int array option;
          (** The distribution's parameter (default) shape. *)
    }
  | Trail_plate of {
      t_n : int;
      t_batched : string option;
          (** [Some addr]: the plate lowers to one batched site. *)
      t_body_addrs : string list;
          (** May-bind base addresses of the body (sorted, distinct). *)
      t_body_reentrant : bool;
      t_shape : int array option;
          (** Per-instance value shape when batchable. *)
      t_dist : string option;  (** Head primitive when batchable. *)
      t_strategy : string option;
    }
  | Trail_marginal of { t_keep : string list }
  | Trail_normalize

val trail_reentrant : trail_step list -> bool
(** Does any step re-run its continuation at runtime (ENUM/MVD
    enumeration, sub-inference loops)? Such programs cannot be staged
    into a straight-line plan. *)

type trail_result = {
  trails : trail_step list list;  (** One per completed exploration path. *)
  trail_report : report;
}

val trail : ?fuel:int -> ?max_width:int -> Gen.packed -> trail_result

val errors : report -> diagnostic list
(** The error-severity diagnostics of a report. *)

val has_errors : report -> bool

val severity_name : severity -> string
(** ["info"], ["warning"], or ["error"]. *)

val pp_diagnostic : Format.formatter -> diagnostic -> unit
val pp_report : Format.formatter -> report -> unit

val diagnostic_to_json : diagnostic -> string
val report_to_json : ?name:string -> report -> string
(** Single-line JSON objects (no external dependency); [name] labels
    the report in aggregated output. *)
