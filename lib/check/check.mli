(** Pre-flight static analysis of generative programs.

    [analyze] abstractly interprets a program's free-monad structure
    (via [Gen.reflect]) without running inference: each sample site is
    expanded into a small set of representative probe values — the full
    support for enumerable primitives, interval-straddling floats for
    continuous ones (so both sides of [rigid]-guarded branches are
    visited), and a single tainted non-leaf AD node for REPARAM sites
    (so non-smooth uses raise the same attributed error the runtime
    would). The result is a list of structured diagnostics:

    - {b PV1xx — strategy validity}: PV101 a REPARAM sample flows into a
      branch/comparison; PV102 ENUM on a continuous primitive or one
      without finite support; PV103 MVD without couplings; PV104 REPARAM
      without a reparameterized sampler.
    - {b PV2xx — address discipline}: PV201 duplicate address reachable
      on some path; PV202 guide misses a model latent; PV203 guide
      samples an address the model cannot consume; PV204 carrier
      mismatch; PV205/PV206 [marginal] kept/proposal coverage; PV207
      [normalize] proposal coverage; PV208 guide support exceeds the
      model's (warning); PV210 plate body not shape-consistent across
      instances, so the batched lowering silently degrades to the
      sequential path (warning); PV211 plate body address collides with
      a site bound in the enclosing scope.
    - {b PV3xx — values and shapes}: PV301 observed value outside the
      primitive's static support; PV302 observed NaN; PV310 tensor shape
      error (e.g. through [Layer] applications); PV390 other exception
      during exploration (warning).
    - {b PV401 — analysis budget}: exploration truncated (info).

    Exploration is fuel-bounded, so recursive programs terminate; when
    the budget runs out, coverage findings are demoted to warnings and
    the report is marked [truncated]. *)

type severity = Info | Warning | Error

type diagnostic = {
  code : string;  (** Stable identifier, e.g. ["PV101"]. *)
  severity : severity;
  address : string option;
      (** The trace address the finding is about, when site-specific. *)
  message : string;
}

type report = { diagnostics : diagnostic list; truncated : bool }

(** What to analyze: a single program, or a model/guide pair as passed
    to the [Objectives.*] estimators (coverage is checked in both
    directions). *)
type target =
  | Program of Gen.packed
  | Pair of { model : Gen.packed; guide : Gen.packed }

exception Preflight_error of string
(** Raised by strict pre-flight gates (e.g. [Train.fit
    ~preflight_strict:true]) when a target has error-severity
    diagnostics. *)

val analyze : ?fuel:int -> ?max_width:int -> target -> report
(** [fuel] bounds the number of program nodes visited (default 20000);
    [max_width] bounds the probe values per sample site (default 4). *)

val errors : report -> diagnostic list
(** The error-severity diagnostics of a report. *)

val has_errors : report -> bool

val severity_name : severity -> string
(** ["info"], ["warning"], or ["error"]. *)

val pp_diagnostic : Format.formatter -> diagnostic -> unit
val pp_report : Format.formatter -> report -> unit

val diagnostic_to_json : diagnostic -> string
val report_to_json : ?name:string -> report -> string
(** Single-line JSON objects (no external dependency); [name] labels
    the report in aggregated output. *)
