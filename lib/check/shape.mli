(** Abstract tensor shapes with symbolic dimensions — the static
    domain behind the PV6xx shape diagnostics (see
    [docs/DIAGNOSTICS.md]).

    A shape is a vector of dimensions, each either a concrete extent
    or a {e symbolic} dimension: a plate's instance count ([N@addr])
    or an i.i.d. batch size ([B@addr]), carrying the binding the
    analyzer observed when it observed one. Symbols keep their
    identity through propagation, so a model/guide count conflict is
    reported at the site that introduced the symbol (PV604) instead of
    as an anonymous integer mismatch. *)

type dim =
  | Const of int  (** A concrete extent. *)
  | Sym of { sym : string; binding : int option }
      (** A named symbolic dimension and the extent it was bound to,
          when known. *)

type t = dim array
(** A shape; [[||]] is the scalar shape. *)

val scalar : t
val concrete : int array -> t

val dim_known : dim -> int option
(** The dimension's concrete extent, when known. *)

val to_concrete : t -> int array option
(** All-dims-known resolution of a shape; [None] when any symbolic
    dimension is unbound. *)

val equal : t -> t -> bool
(** Dimensions agree when their known extents agree; unbound symbols
    agree only with the same symbol. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Broadcasting} *)

type broadcast =
  | Broadcast_ok of t
  | Broadcast_mismatch of { axis : int; left : dim; right : dim }
      (** Incompatible known extents at a result axis (PV601). *)
  | Broadcast_two_sided of { result : t; left_axis : int; right_axis : int }
      (** Legal, but {e both} operands stretch an explicit size-1 axis
          — an ambiguous alignment, almost always a density bug where
          elementwise was intended (PV602). Rank extension does not
          count; only an explicit [1] facing an explicit [>1]. *)

val broadcast : t -> t -> broadcast
(** NumPy-style right-aligned broadcast of two abstract shapes.
    Unbound symbolic dimensions are optimistically assumed
    compatible. *)

(** {1 Shapes of compiled-plan sites} *)

val iid_count : string -> int option
(** The batch count of an [iid] rank-lifted primitive, recovered from
    its name ["iid(n,base)"]. *)

val of_step : Gen.Plan.step -> t option
(** The inferred stacked shape of one trace-binding plan step: the
    concrete planned shape for plain sample sites, with the leading
    axis lifted to [B@addr] for [iid] sites and [N@addr] prepended for
    batched plates. [None] for steps that bind no tensor-shaped value
    (observes, sequential-fallback plates, non-real carriers). *)

val of_plan : Gen.Plan.t -> (string * t) list
(** [of_step] over every step of a plan, keyed by site address. *)

(** {1 The Yolo ANF fragment} *)

val of_yolo : Yolo.program -> ((string * t) list, string) result
(** The shape pass over a plan's scalar ANF sketch: scope-check the
    program ([Yolo.validate]) and assign every parameter and defined
    variable the scalar shape; a scope error is the IR-level analogue
    of a shape mismatch. *)
