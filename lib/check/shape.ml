(* Abstract tensor shapes with symbolic dimensions.

   The static shape domain behind the PV6xx diagnostics: a shape is a
   vector of dimensions, each either a concrete extent or a *symbolic*
   dimension — a plate's instance count ([N@addr]) or an i.i.d. batch
   size ([B@addr]) — carrying the binding the analyzer saw, when it saw
   one. Symbolic dims keep their identity through propagation, which is
   what lets the analyzer tell "model and guide agree this axis is the
   minibatch" apart from "they happen to both be 256", and report a
   count conflict (PV604) at the site that introduced the symbol rather
   than as an anonymous integer mismatch.

   Everything here is pure bookkeeping over [Gen.Plan.t] step metadata
   and [Yolo] programs; no tensors are materialized. *)

type dim =
  | Const of int
  | Sym of { sym : string; binding : int option }

type t = dim array

let scalar : t = [||]
let concrete a = Array.map (fun n -> Const n) a

let dim_known = function Const n -> Some n | Sym { binding; _ } -> binding

let to_concrete (s : t) : int array option =
  if Array.for_all (fun d -> dim_known d <> None) s then
    Some (Array.map (fun d -> Option.get (dim_known d)) s)
  else None

let dim_to_string = function
  | Const n -> string_of_int n
  | Sym { sym; binding = Some n } -> Printf.sprintf "%s=%d" sym n
  | Sym { sym; binding = None } -> sym

let to_string (s : t) =
  if Array.length s = 0 then "scalar"
  else
    "[" ^ String.concat "," (Array.to_list (Array.map dim_to_string s)) ^ "]"

let pp ppf s = Format.pp_print_string ppf (to_string s)

(* Two dims agree when their known extents agree; two unbound symbols
   agree only when they are the same symbol. *)
let equal_dim a b =
  match (dim_known a, dim_known b) with
  | Some x, Some y -> x = y
  | _ -> (
    match (a, b) with
    | Sym a', Sym b' -> String.equal a'.sym b'.sym
    | _ -> false)

let equal (a : t) (b : t) =
  Array.length a = Array.length b && Array.for_all2 equal_dim a b

(* ------------------------------------------------------------------ *)
(* Broadcasting                                                        *)

type broadcast =
  | Broadcast_ok of t
  | Broadcast_mismatch of { axis : int; left : dim; right : dim }
      (* Incompatible known extents at a (result-indexed) axis. *)
  | Broadcast_two_sided of { result : t; left_axis : int; right_axis : int }
      (* Legal, but BOTH operands stretch an explicit size-1 axis: the
         alignment is ambiguous — almost always a density bug where the
         intent was elementwise. *)

let broadcast (a : t) (b : t) =
  let ra = Array.length a and rb = Array.length b in
  let r = Stdlib.max ra rb in
  let out = Array.make r (Const 1) in
  let mismatch = ref None in
  (* Result axes where the respective side stretches an explicit
     size-1 dimension against a known larger extent. Rank extension
     (a missing leading axis) is routine broadcasting and does not
     count — only an explicit [1] facing an explicit [>1]. *)
  let a_stretch = ref None and b_stretch = ref None in
  for i = 0 to r - 1 do
    let da = if i < r - ra then None else Some a.(i - (r - ra)) in
    let db = if i < r - rb then None else Some b.(i - (r - rb)) in
    let d =
      match (da, db) with
      | None, Some d | Some d, None -> d
      | None, None -> assert false
      | Some da, Some db -> (
        match (dim_known da, dim_known db) with
        | Some 1, Some 1 -> da
        | Some 1, k ->
          if k <> Some 1 && !a_stretch = None then a_stretch := Some i;
          db
        | k, Some 1 ->
          if k <> Some 1 && !b_stretch = None then b_stretch := Some i;
          da
        | Some x, Some y ->
          if x <> y && !mismatch = None then
            mismatch := Some (i, da, db);
          da
        | _ ->
          (* At least one side symbolic and unbound: assume they
             agree (the optimistic abstract join). *)
          da)
    in
    out.(i) <- d
  done;
  match !mismatch with
  | Some (axis, left, right) -> Broadcast_mismatch { axis; left; right }
  | None -> (
    match (!a_stretch, !b_stretch) with
    | Some la, Some rb' ->
      Broadcast_two_sided { result = out; left_axis = la; right_axis = rb' }
    | _ -> Broadcast_ok out)

(* ------------------------------------------------------------------ *)
(* Shapes of compiled-plan sites                                       *)

(* The batch count of an [iid] rank-lifted primitive, recovered from
   its name ["iid(n,base)"] — the leading axis of such a site is the
   i.i.d. batch symbol, not an anonymous extent. *)
let iid_count name =
  let prefix = "iid(" in
  let lp = String.length prefix in
  if String.length name > lp && String.sub name 0 lp = prefix then
    match String.index_opt name ',' with
    | Some c when c > lp -> int_of_string_opt (String.sub name lp (c - lp))
    | _ -> None
  else None

let of_step (s : Gen.Plan.step) : t option =
  match s.Gen.Plan.st_kind with
  | Gen.Plan.Sample_site -> begin
    match s.Gen.Plan.st_shape with
    | None -> None
    | Some shp -> (
      match iid_count s.Gen.Plan.st_dist with
      | Some n when Array.length shp > 0 && shp.(0) = n ->
        Some
          (Array.append
             [| Sym { sym = "B@" ^ s.Gen.Plan.st_addr; binding = Some n } |]
             (concrete (Array.sub shp 1 (Array.length shp - 1))))
      | _ -> Some (concrete shp))
  end
  | Gen.Plan.Plate_batched ->
    let inst =
      match s.Gen.Plan.st_shape with Some shp -> concrete shp | None -> [||]
    in
    Some
      (Array.append
         [| Sym
              { sym = "N@" ^ s.Gen.Plan.st_addr;
                binding = Some s.Gen.Plan.st_n } |]
         inst)
  | Gen.Plan.Observe_site | Gen.Plan.Plate_seq -> None

let of_plan plan =
  Array.to_list (Gen.Plan.steps plan)
  |> List.filter_map (fun (s : Gen.Plan.step) ->
         Option.map (fun sh -> (s.Gen.Plan.st_addr, sh)) (of_step s))

(* ------------------------------------------------------------------ *)
(* The Yolo ANF fragment                                               *)

(* The Yolo IR is a scalar language: the shape pass over a plan's ANF
   sketch is the degenerate-but-total case — scope-check the program
   and assign every defined variable the scalar shape. A scope error is
   the IR-level analogue of a shape mismatch (an undefined axis). *)
let of_yolo (p : Yolo.program) : ((string * t) list, string) result =
  match Yolo.validate p with
  | Error e -> Error e
  | Ok () ->
    let defined =
      List.map
        (function
          | Yolo.Let (x, _) -> x
          | Yolo.Sample_normal (x, _, _) -> x)
        p.Yolo.body
    in
    Ok (List.map (fun v -> (v, scalar)) (p.Yolo.params @ defined))
