(* Pre-flight static analysis of generative programs.

   The analyzer abstractly interprets the free-monad structure exposed
   by [Gen.reflect]: every [Sample] site is expanded into a small set of
   representative probe values (full support for enumerable primitives,
   interval-straddling floats for continuous ones, a single *tainted*
   non-leaf AD node for REPARAM sites), and the continuation is run once
   per probe. Because the probes for a rigid-guarded branch straddle the
   guard, both sides of data-dependent control flow are visited; because
   the REPARAM probe is a registered non-leaf node, any non-smooth use
   of it raises the same attributed [Value.Smoothness_error] the runtime
   would, which the exploration converts into a diagnostic instead of a
   crash. Exploration is bounded by a fuel counter so recursive programs
   terminate (with [truncated = true] and coverage findings demoted to
   warnings). *)

type severity = Info | Warning | Error

type diagnostic = {
  code : string;
  severity : severity;
  address : string option;
  message : string;
}

type report = { diagnostics : diagnostic list; truncated : bool }

type target =
  | Program of Gen.packed
  | Pair of { model : Gen.packed; guide : Gen.packed }

exception Preflight_error of string

let severity_name = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

(* ------------------------------------------------------------------ *)
(* Exploration state                                                   *)

type carrier = Real_carrier | Bool_carrier | Int_carrier

let carrier_name = function
  | Real_carrier -> "real"
  | Bool_carrier -> "bool"
  | Int_carrier -> "int"

type site = {
  s_dist : string;
  s_strategy : string;
  s_carrier : carrier;
  s_meta : Dist.meta;
  s_value : Value.t;  (* The probe value bound on this path. *)
}

(* The ordered structure trail of one exploration path — the single
   traversal shared by [analyze] (which ignores it) and the staged
   compiler in [lib/compile] (which consumes it as the program's
   discovered site sequence). Purely structural data, so trails from
   different probe paths can be compared with [(=)] to detect
   data-dependent structure. *)
type trail_step =
  | Trail_sample of {
      t_addr : string;
      t_dist : string;
      t_strategy : string;
      t_reentrant : bool;  (* ENUM / MVD: re-runs its continuation *)
      t_reparam : bool;
      t_shape : int array option;
    }
  | Trail_observe of {
      t_dist : string;
      t_shape : int array option;  (* observed value shape, when real *)
      t_param_shape : int array option;  (* dist default (parameter) shape *)
    }
  | Trail_plate of {
      t_n : int;
      t_batched : string option;  (* [Some addr]: lowers to one batched site *)
      t_body_addrs : string list;  (* may-bind base addresses of the body *)
      t_body_reentrant : bool;
      t_shape : int array option;  (* per-instance shape when batchable *)
      t_dist : string option;  (* head primitive when batchable *)
      t_strategy : string option;
    }
  | Trail_marginal of { t_keep : string list }
  | Trail_normalize

(* Does any step re-run its continuation at runtime (ENUM/MVD
   enumeration, sub-inference loops)? Such programs cannot be staged. *)
let trail_reentrant steps =
  List.exists
    (function
      | Trail_sample s -> s.t_reentrant
      | Trail_plate p -> p.t_body_reentrant
      | Trail_marginal _ | Trail_normalize -> true
      | Trail_observe _ -> false)
    steps

type path = { seen : (string * site) list; trail : trail_step list }

type ctx = {
  mutable diags : diagnostic list;
  mutable fuel : int;
  mutable truncated : bool;
  max_width : int;
  decide_plates : bool;
      (* Record plate lowering decisions in the trail (draws probe
         samples, so only the compiler's traversal pays for it). *)
}

exception Out_of_fuel

let burn ctx =
  if ctx.fuel <= 0 then raise Out_of_fuel;
  ctx.fuel <- ctx.fuel - 1

let emit ctx code severity ?address message =
  let d = { code; severity; address; message } in
  if not (List.mem d ctx.diags) then ctx.diags <- d :: ctx.diags

(* Convert exceptions escaping one exploration path into diagnostics;
   sibling paths keep going. *)
let guarded : type b. ctx -> (unit -> b list) -> b list =
 fun ctx thunk ->
  try thunk () with
  | Out_of_fuel ->
    ctx.truncated <- true;
    []
  | Value.Smoothness_error info ->
    emit ctx "PV101" Error ?address:info.Value.address
      (Value.smoothness_message info);
    []
  | Trace.Duplicate_address addr ->
    emit ctx "PV201" Error ~address:addr
      (Printf.sprintf "address %S is bound more than once" addr);
    []
  | Tensor.Shape_error msg ->
    emit ctx "PV310" Error ("tensor shape error: " ^ msg);
    []
  | Value.Type_error msg ->
    emit ctx "PV204" Error ("value used at the wrong carrier type: " ^ msg);
    []
  | Stack_overflow ->
    ctx.truncated <- true;
    emit ctx "PV401" Warning "exploration overflowed the stack";
    []
  | exn ->
    emit ctx "PV390" Warning
      ("exception during exploration: " ^ Printexc.to_string exn);
    []

(* ------------------------------------------------------------------ *)
(* Probe values per sample site                                        *)

let take n xs = List.filteri (fun i _ -> i < n) xs

(* Up to [n] elements spread across [xs] (always includes both ends). *)
let spread n xs =
  let len = List.length xs in
  if len <= n then xs
  else
    List.init n (fun i -> List.nth xs (i * (len - 1) / Stdlib.max 1 (n - 1)))

let interval_probes lo hi =
  let finite = Float.is_finite in
  if finite lo && finite hi then
    [ lo +. (0.25 *. (hi -. lo)); lo +. (0.75 *. (hi -. lo)) ]
  else if finite lo then [ lo +. 0.5; lo +. 2. ]
  else if finite hi then [ hi -. 2.; hi -. 0.5 ]
  else [ -1.; 1. ] (* Straddle the usual [x < k] thresholds around 0. *)

let carrier_of_value = function
  | Value.Real _ -> Real_carrier
  | Value.Bool _ -> Bool_carrier
  | Value.Int _ -> Int_carrier

(* A non-leaf probe for REPARAM sites, registered in the provenance
   table so a [rigid] use raises an error naming this address.
   [default_v] is the site's injected default, computed once by the
   caller and shared across probes. *)
let tainted_probe : type a. a Dist.t -> default_v:Value.t -> address:string -> a option =
 fun d ~default_v ~address ->
  match default_v with
  | Value.Real base ->
    let t = Ad.add_scalar 0. (Ad.const (Ad.value base)) in
    Value.register_smooth_origin t ~address
      ~strategy:(Dist.strategy_name d.Dist.strategy) ();
    d.Dist.project (Value.Real t)
  | _ -> None

let probes : type a. ctx -> address:string -> default_v:Value.t -> a Dist.t -> a list =
 fun ctx ~address ~default_v d ->
  let real_probe v =
    match default_v with
    | Value.Real base ->
      d.Dist.project (Value.Real (Ad.const (Tensor.full (Ad.shape base) v)))
    | _ -> None
  in
  let candidates =
    match d.Dist.strategy with
    | Dist.Reparam when Option.is_some d.Dist.reparam -> begin
      match tainted_probe d ~default_v ~address with
      | Some x -> [ x ]
      | None -> [ d.Dist.default ]
    end
    | _ -> begin
      match d.Dist.support with
      | Some xs -> spread ctx.max_width xs
      | None -> begin
        match d.Dist.meta.Dist.static_support with
        | Dist.Real_interval { lo; hi } ->
          List.filter_map real_probe (interval_probes lo hi)
        | Dist.Unit_hypercube -> List.filter_map real_probe [ 0.; 1. ]
        | Dist.Int_range { lo; hi } ->
          let vs =
            match hi with
            | Some h -> List.sort_uniq compare [ lo; Stdlib.min (lo + 1) h; h ]
            | None -> [ lo; lo + 1; lo + 7 ]
          in
          List.filter_map (fun i -> d.Dist.project (Value.Int i)) vs
        | Dist.Finite_support | Dist.Unknown_support -> []
      end
    end
  in
  match take ctx.max_width candidates with
  | [] -> [ d.Dist.default ]
  | l -> l

(* ------------------------------------------------------------------ *)
(* Per-site static checks                                              *)

let check_site : type a. ctx -> address:string -> a Dist.t -> unit =
 fun ctx ~address d ->
  match d.Dist.strategy with
  | Dist.Enum ->
    if d.Dist.meta.Dist.continuous then
      emit ctx "PV102" Error ~address
        (Printf.sprintf
           "ENUM strategy on continuous primitive %s: enumeration needs a \
            finite support"
           d.Dist.name)
    else if Option.is_none d.Dist.support then
      emit ctx "PV102" Error ~address
        (Printf.sprintf "ENUM strategy on %s, which declares no finite support"
           d.Dist.name)
  | Dist.Mvd ->
    if Option.is_none d.Dist.mvd then
      emit ctx "PV103" Error ~address
        (Printf.sprintf
           "MVD strategy on %s, which provides no weak-derivative couplings"
           d.Dist.name)
  | Dist.Reparam ->
    if Option.is_none d.Dist.reparam then
      emit ctx "PV104" Error ~address
        (Printf.sprintf
           "REPARAM strategy on %s, which provides no reparameterized sampler"
           d.Dist.name)
  | Dist.Reinforce | Dist.Reinforce_baseline _ -> ()

let check_observe : type v. ctx -> v Dist.t -> v -> unit =
 fun ctx d v ->
  let describe x = Printf.sprintf "%g" x in
  (match d.Dist.inject v with
  | Value.Real a ->
    let arr = Tensor.to_array (Ad.value a) in
    if Array.exists Float.is_nan arr then
      emit ctx "PV302" Error
        (Printf.sprintf "observed value for %s contains NaN" d.Dist.name)
    else begin
      match d.Dist.meta.Dist.static_support with
      | Dist.Real_interval { lo; hi } ->
        Array.iter
          (fun x ->
            if x < lo || x > hi then
              emit ctx "PV301" Error
                (Printf.sprintf
                   "observed value %s lies outside the support [%g, %g] of %s"
                   (describe x) lo hi d.Dist.name))
          arr
      | Dist.Unit_hypercube ->
        if Array.exists (fun x -> x < 0. || x > 1.) arr then
          emit ctx "PV301" Error
            (Printf.sprintf
               "observed tensor for %s has components outside [0, 1]"
               d.Dist.name)
      | _ -> ()
    end
  | Value.Int i -> begin
    match d.Dist.meta.Dist.static_support with
    | Dist.Int_range { lo; hi } ->
      let above = match hi with Some h -> i > h | None -> false in
      if i < lo || above then
        emit ctx "PV301" Error
          (Printf.sprintf "observed value %d lies outside the support of %s" i
             d.Dist.name)
    | _ -> ()
  end
  | Value.Bool _ -> ());
  (* Evaluate the likelihood once so shape mismatches between the
     observed tensor and the distribution's parameters surface here
     (caught by [guarded] and reported as PV310). *)
  ignore (d.Dist.log_density v : Ad.t)

(* ------------------------------------------------------------------ *)
(* Address-set summaries over explored paths                           *)

(* Addresses reachable on at least one completed path, first site wins. *)
let may_addrs paths =
  List.fold_left
    (fun acc path ->
      List.fold_left
        (fun acc (name, site) ->
          if List.mem_assoc name acc then acc else (name, site) :: acc)
        acc (List.rev path.seen))
    [] paths

(* Addresses bound on every completed path. *)
let must_addrs paths =
  match paths with
  | [] -> []
  | _ ->
    List.filter
      (fun (name, _) ->
        List.for_all (fun p -> List.mem_assoc name p.seen) paths)
      (may_addrs paths)

(* ------------------------------------------------------------------ *)
(* The exploration engine                                              *)

let rec explore : type a. ctx -> path -> a Gen.t -> (a * path) list =
 fun ctx path prog ->
  burn ctx;
  match Gen.reflect prog with
  | Gen.Node_return x -> [ (x, path) ]
  | Gen.Node_bind (m, f) ->
    let firsts = guarded ctx (fun () -> explore ctx path m) in
    List.concat_map
      (fun (x, path') -> guarded ctx (fun () -> explore ctx path' (f x)))
      firsts
  | Gen.Node_sample (d, name) ->
    check_site ctx ~address:name d;
    if List.mem_assoc name path.seen then
      emit ctx "PV201" Error ~address:name
        (Printf.sprintf "address %S is sampled more than once on a single path"
           name);
    (* Probe-invariant site metadata, computed once per site instead of
       once per probe: the strategy lookup, the injected default (which
       [carrier_of], the tainted probe, and the interval probes all
       need), and the meta record. *)
    let s_dist = d.Dist.name in
    let s_strategy = Dist.strategy_name d.Dist.strategy in
    let default_v = d.Dist.inject d.Dist.default in
    let s_carrier = carrier_of_value default_v in
    let s_meta = d.Dist.meta in
    let tstep =
      Trail_sample
        { t_addr = name;
          t_dist = s_dist;
          t_strategy = s_strategy;
          t_reentrant =
            (match d.Dist.strategy with
            | Dist.Enum | Dist.Mvd -> true
            | Dist.Reparam | Dist.Reinforce | Dist.Reinforce_baseline _ ->
              false);
          t_reparam =
            (match d.Dist.strategy with Dist.Reparam -> true | _ -> false);
          t_shape =
            (match default_v with
            | Value.Real v -> Some (Ad.shape v)
            | Value.Bool _ | Value.Int _ -> None) }
    in
    let mk x =
      let site =
        { s_dist; s_strategy; s_carrier; s_meta; s_value = d.Dist.inject x }
      in
      (x, { seen = (name, site) :: path.seen; trail = tstep :: path.trail })
    in
    List.map mk (probes ctx ~address:name ~default_v d)
  | Gen.Node_observe (d, v) ->
    let real_shape = function
      | Value.Real a -> Some (Ad.shape a)
      | Value.Bool _ | Value.Int _ -> None
    in
    let vshape = real_shape (d.Dist.inject v) in
    let pshape = real_shape (d.Dist.inject d.Dist.default) in
    (* The static broadcast check between the distribution's parameter
       shape (its default's shape) and the observed value's shape:
       incompatible extents are a hard error the density evaluation
       would also hit (PV601); a two-sided broadcast — both operands
       stretching an explicit size-1 axis — is legal but almost always
       a density bug where elementwise scoring was intended (PV602). *)
    (match (pshape, vshape) with
    | Some ps, Some vs -> begin
      match Shape.broadcast (Shape.concrete ps) (Shape.concrete vs) with
      | Shape.Broadcast_ok _ -> ()
      | Shape.Broadcast_mismatch { axis; left; right } ->
        emit ctx "PV601" Error
          (Printf.sprintf
             "observed value shape %s cannot broadcast against the %s \
              parameter shape %s (axis %d: %s vs %s)"
             (Shape.to_string (Shape.concrete vs))
             d.Dist.name
             (Shape.to_string (Shape.concrete ps))
             axis
             (Shape.to_string [| left |])
             (Shape.to_string [| right |]))
      | Shape.Broadcast_two_sided { result; left_axis; right_axis } ->
        emit ctx "PV602" Warning
          (Printf.sprintf
             "ambiguous two-sided broadcast at the %s observation: the \
              parameter shape %s stretches at axis %d and the observed \
              value shape %s stretches at axis %d, scoring a %s \
              cross-product rather than elementwise — reshape one operand \
              if that is not intended"
             d.Dist.name
             (Shape.to_string (Shape.concrete ps))
             left_axis
             (Shape.to_string (Shape.concrete vs))
             right_axis
             (Shape.to_string result))
    end
    | _ -> ());
    check_observe ctx d v;
    [ ( (),
        { path with
          trail =
            Trail_observe
              { t_dist = d.Dist.name; t_shape = vshape; t_param_shape = pshape }
            :: path.trail } ) ]
  | Gen.Node_marginal (keep, inner, alg) ->
    explore_marginal ctx path keep inner alg
  | Gen.Node_normalize (inner, alg) -> explore_normalize ctx path inner alg
  | Gen.Node_plate (n, body) -> explore_plate ctx path n body

(* [plate ~n body]: the instances must be structurally interchangeable
   (that is what lets the runtime lower the plate to one batched site),
   and the body's addresses live in their own indexed scope. Instances
   0 and n-1 are explored as representatives; disagreement between the
   two ends is index-dependence the batched lowering cannot express
   (PV210), and a body address also bound by the enclosing program
   collides with the batched lowering's un-suffixed plate address
   (PV211). *)
and explore_plate :
    type v. ctx -> path -> int -> (int -> v Gen.t) -> (v array * path) list =
 fun ctx path n body ->
  let explore_instance i =
    guarded ctx (fun () -> explore ctx { seen = []; trail = [] } (body i))
  in
  let inst0 = explore_instance 0 in
  let paths0 = List.map snd inst0 in
  let may0 = may_addrs paths0 in
  let pathsN = if n > 1 then List.map snd (explore_instance (n - 1)) else [] in
  let shape_of s =
    match s.s_value with
    | Value.Real v -> Some (Ad.shape v)
    | Value.Bool _ | Value.Int _ -> None
  in
  (if n > 1 then begin
     let mayN = may_addrs pathsN in
     if paths0 <> [] && pathsN <> [] then begin
       List.iter
         (fun (a, s0) ->
           match List.assoc_opt a mayN with
           | None ->
             emit ctx "PV210" Warning ~address:a
               (Printf.sprintf
                  "plate body binds %S at instance 0 but not at instance %d: \
                   index-dependent structure defeats the batched lowering"
                  a (n - 1))
           | Some sn ->
             if s0.s_carrier <> sn.s_carrier then
               emit ctx "PV210" Warning ~address:a
                 (Printf.sprintf
                    "plate body carrier at %S changes across instances (%s at \
                     0, %s at %d)"
                    a (carrier_name s0.s_carrier) (carrier_name sn.s_carrier)
                    (n - 1))
             else if shape_of s0 <> shape_of sn then
               emit ctx "PV210" Warning ~address:a
                 (Printf.sprintf
                    "plate body shape at %S changes across instances: the \
                     plate is not shape-consistent and cannot be batched" a))
         may0;
       List.iter
         (fun (a, _) ->
           if not (List.mem_assoc a may0) then
             emit ctx "PV210" Warning ~address:a
               (Printf.sprintf
                  "plate body binds %S at instance %d but not at instance 0: \
                   index-dependent structure defeats the batched lowering"
                  a (n - 1)))
         mayN
     end
   end);
  (* PV603: a batchable plate stacks its per-instance values along a
     new leading axis of extent [n]. When an instance's own leading
     dimension already equals the plate count, the stacked tensor's
     first two axes are indistinguishable by extent — downstream code
     that indexes "per instance" by the leading axis (the data-indexed
     parameter contract of the batched primitives) silently reads the
     wrong axis. Flag the rank collision at the plate boundary. *)
  if n > 1 then
    List.iter
      (fun (a, s0) ->
        match shape_of s0 with
        | Some shp when Array.length shp > 0 && shp.(0) = n ->
          emit ctx "PV603" Warning ~address:a
            (Printf.sprintf
               "plate instance shape %s at %S has leading extent %d equal to \
                the plate count: the stacked value's instance axis and the \
                instance's own leading axis are ambiguous at the plate \
                boundary"
               (Shape.to_string (Shape.concrete shp))
               a n)
        | _ -> ())
      may0;
  (* The trail records what the runtime's [plate_plan] would decide —
     computed only on the compiler's traversal ([decide_plates]), since
     the decision probe draws samples. *)
  let decision =
    if ctx.decide_plates then
      match Gen.plate_decision ~n body with
      | Gen.Plate_batchable { addr; instance_shape } -> Some (addr, instance_shape)
      | Gen.Plate_sequential -> None
    else None
  in
  let head_dist, head_strategy =
    match (decision, Gen.reflect (body 0)) with
    | Some _, Gen.Node_sample (d, _) ->
      (Some d.Dist.name, Some (Dist.strategy_name d.Dist.strategy))
    | _ -> (None, None)
  in
  let tstep =
    Trail_plate
      { t_n = n;
        t_batched = Option.map fst decision;
        t_body_addrs = List.sort_uniq compare (List.map fst may0);
        t_body_reentrant =
          List.exists (fun p -> trail_reentrant p.trail) (paths0 @ pathsN);
        t_shape = Option.map snd decision |> Option.join;
        t_dist = head_dist;
        t_strategy = head_strategy }
  in
  let path' =
    List.fold_left
      (fun acc (a, s) ->
        if List.mem_assoc a acc.seen then begin
          emit ctx "PV211" Error ~address:a
            (Printf.sprintf
               "plate address %S escapes its plate: the enclosing program \
                also binds it, which collides with the plate's batched \
                lowering" a);
          acc
        end
        else { acc with seen = (a, s) :: acc.seen })
      path (List.rev may0)
  in
  let path' = { path' with trail = tstep :: path'.trail } in
  List.map (fun (x, _) -> (Array.make n x, path')) (take ctx.max_width inst0)

(* [marginal ~keep inner alg] contributes the kept addresses to the
   enclosing trace; its auxiliary addresses must be covered by the
   algorithm's proposal (otherwise every density estimate is -inf). *)
and explore_marginal :
    type b.
    ctx -> path -> string list -> b Gen.t -> Gen.algorithm ->
    (Trace.t * path) list =
 fun ctx path keep inner alg ->
  let inner_results = guarded ctx (fun () -> explore ctx { seen = []; trail = [] } inner) in
  let inner_paths = List.map snd inner_results in
  let may = may_addrs inner_paths in
  let must = must_addrs inner_paths in
  let coverage_sev = if ctx.truncated then Warning else Error in
  if inner_paths <> [] then
    List.iter
      (fun k ->
        if not (List.mem_assoc k may) then
          emit ctx "PV205" coverage_sev ~address:k
            "marginal: kept address is never sampled by the inner program"
        else if not (List.mem_assoc k must) then
          emit ctx "PV205" Warning ~address:k
            "marginal: kept address is only sampled on some paths of the \
             inner program")
      keep;
  match inner_paths with
  | [] -> []
  | _ ->
    (* Check the proposal against one representative kept trace. *)
    let rep =
      try List.find (fun p -> List.for_all (fun k -> List.mem_assoc k p.seen) keep)
            inner_paths
      with Not_found -> List.hd inner_paths
    in
    let kept_bindings =
      List.filter_map
        (fun k ->
          Option.map (fun s -> (k, s.s_value)) (List.assoc_opt k rep.seen))
        keep
    in
    let kept_trace = Trace.of_list kept_bindings in
    let aux = List.filter (fun (n, _) -> not (List.mem n keep)) must in
    (ignore
       (guarded ctx (fun () ->
            let (Gen.Packed proposal) = Gen.algorithm_proposal alg kept_trace in
            let prop_paths = List.map snd (explore ctx { seen = []; trail = [] } proposal) in
            if prop_paths <> [] then begin
              let prop_may = may_addrs prop_paths in
              List.iter
                (fun (n, _) ->
                  if not (List.mem_assoc n prop_may) then
                    emit ctx "PV206" coverage_sev ~address:n
                      "marginal: auxiliary address is never proposed by the \
                       inference algorithm's proposal (density estimates \
                       would be -inf)")
                aux;
              List.iter
                (fun (n, _) ->
                  if List.mem n keep then
                    emit ctx "PV206" coverage_sev ~address:n
                      "marginal: proposal re-proposes a kept address \
                       (duplicate at density evaluation)"
                  else if not (List.mem_assoc n may) then
                    emit ctx "PV206" coverage_sev ~address:n
                      "marginal: proposal proposes an address the inner \
                       program never samples (leftover at density \
                       evaluation)")
                prop_may
            end;
            [])
        : (unit * path) list);
     (* One outer continuation per representative inner path: the kept
        addresses (and their probe values) join the enclosing trace. *)
     let continue_with p =
       let bindings =
         List.filter_map
           (fun k ->
             Option.map (fun s -> (k, s)) (List.assoc_opt k p.seen))
           keep
       in
       let trace =
         Trace.of_list (List.map (fun (k, s) -> (k, s.s_value)) bindings)
       in
       let path' =
         List.fold_left
           (fun acc (k, s) ->
             if List.mem_assoc k acc.seen then begin
               emit ctx "PV201" Error ~address:k
                 (Printf.sprintf
                    "address %S from marginal collides with an enclosing \
                     sample" k);
               acc
             end
             else { acc with seen = (k, s) :: acc.seen })
           path bindings
       in
       let path' =
         { path' with
           trail = Trail_marginal { t_keep = keep } :: path'.trail }
       in
       (trace, path')
     in
     List.map continue_with (take ctx.max_width inner_paths))

(* [normalize inner alg]: the chosen particle's proposal trace joins the
   enclosing trace; the proposal must propose exactly the addresses the
   inner program samples. *)
and explore_normalize :
    type a. ctx -> path -> a Gen.t -> Gen.algorithm -> (a * path) list =
 fun ctx path inner alg ->
  let inner_results = guarded ctx (fun () -> explore ctx { seen = []; trail = [] } inner) in
  let inner_paths = List.map snd inner_results in
  let inner_may = may_addrs inner_paths in
  let inner_must = must_addrs inner_paths in
  let coverage_sev = if ctx.truncated then Warning else Error in
  let prop_paths =
    guarded ctx (fun () ->
        let (Gen.Packed proposal) = Gen.algorithm_proposal alg Trace.empty in
        List.map snd (explore ctx { seen = []; trail = [] } proposal))
  in
  (if inner_paths <> [] && prop_paths <> [] then begin
     let prop_may = may_addrs prop_paths in
     List.iter
       (fun (n, _) ->
         if not (List.mem_assoc n prop_may) then
           emit ctx "PV207" coverage_sev ~address:n
             "normalize: address sampled by the target is never proposed \
              (every particle would have weight zero)")
       inner_must;
     List.iter
       (fun (n, _) ->
         if not (List.mem_assoc n inner_may) then
           emit ctx "PV207" coverage_sev ~address:n
             "normalize: proposal proposes an address the target never \
              samples (leftover mass; every particle would have weight \
              zero)")
       prop_may
   end);
  match (inner_results, prop_paths) with
  | [], _ -> []
  | _, [] ->
    (* No usable proposal paths: continue with the inner return values
       and an unchanged enclosing path. *)
    List.map
      (fun (x, _) -> (x, { path with trail = Trail_normalize :: path.trail }))
      (take ctx.max_width inner_results)
  | _ ->
    let prop_rep = List.hd prop_paths in
    let path' =
      List.fold_left
        (fun acc (k, s) ->
          if List.mem_assoc k acc.seen then begin
            emit ctx "PV201" Error ~address:k
              (Printf.sprintf
                 "address %S from normalize collides with an enclosing sample"
                 k);
            acc
          end
          else { acc with seen = (k, s) :: acc.seen })
        path (List.rev prop_rep.seen)
    in
    let path' = { path' with trail = Trail_normalize :: path'.trail } in
    List.map (fun (x, _) -> (x, path')) (take ctx.max_width inner_results)

let paths_of ctx (Gen.Packed p) : path list =
  guarded ctx (fun () -> List.map snd (explore ctx { seen = []; trail = [] } p))

(* ------------------------------------------------------------------ *)
(* Model/guide pair analysis                                           *)

(* Is [g]'s support contained in [m]'s? [None] = cannot tell. *)
let support_leq g m =
  let open Dist in
  match (g, m) with
  | _, Real_interval { lo; hi }
    when Float.is_finite lo = false && Float.is_finite hi = false ->
    Some true
  | Real_interval a, Real_interval b -> Some (a.lo >= b.lo && a.hi <= b.hi)
  | Real_interval a, Unit_hypercube -> Some (a.lo >= 0. && a.hi <= 1.)
  | Unit_hypercube, Real_interval b -> Some (b.lo <= 0. && b.hi >= 1.)
  | Unit_hypercube, Unit_hypercube -> Some true
  | Int_range a, Int_range b ->
    let below = a.lo >= b.lo in
    let above =
      match (a.hi, b.hi) with
      | _, None -> true
      | None, Some _ -> false
      | Some ah, Some bh -> ah <= bh
    in
    Some (below && above)
  | Finite_support, Finite_support -> Some true
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Abstract site shapes (the PV6xx domain)                             *)

let shape_of_site s =
  match s.s_value with
  | Value.Real v -> Some (Ad.shape v)
  | Value.Bool _ | Value.Int _ -> None

(* addr -> enclosing plate count, recovered from the recorded trails
   (first plate wins; plan addresses are globally unique). *)
let plate_counts paths =
  List.fold_left
    (fun acc p ->
      List.fold_left
        (fun acc ts ->
          match ts with
          | Trail_plate { t_n; t_body_addrs; _ } ->
            List.fold_left
              (fun acc a ->
                if List.mem_assoc a acc then acc else (a, t_n) :: acc)
              acc t_body_addrs
          | _ -> acc)
        acc p.trail)
    [] paths

(* The abstract stacked shape a site's trace value takes: the probe
   value's shape, with the leading axis lifted to the symbolic batch
   dim [B@addr] for [iid] rank-lifted primitives, and the symbolic
   plate dim [N@addr] prepended when the site lives under a plate
   (the batched lowering stacks instances along a new leading axis). *)
let site_shape ~counts addr s =
  match shape_of_site s with
  | None -> None
  | Some shp ->
    let base =
      match Shape.iid_count s.s_dist with
      | Some n when Array.length shp > 0 && shp.(0) = n ->
        Array.append
          [| Shape.Sym { sym = "B@" ^ addr; binding = Some n } |]
          (Shape.concrete (Array.sub shp 1 (Array.length shp - 1)))
      | _ -> Shape.concrete shp
    in
    (match List.assoc_opt addr counts with
    | Some n ->
      Some
        (Array.append
           [| Shape.Sym { sym = "N@" ^ addr; binding = Some n } |]
           base)
    | None -> Some base)

(* Do two same-rank shapes disagree specifically on a symbolic
   dimension's binding (plate/iid count conflict, PV604) rather than
   on a concrete extent (PV601)? *)
let sym_conflict a b =
  Array.length a = Array.length b
  && Array.exists2
       (fun da db ->
         match (da, db) with
         | ( Shape.Sym { binding = Some x; _ },
             Shape.Sym { binding = Some y; _ } ) ->
           x <> y
         | _ -> false)
       a b

let analyze_pair ctx (Gen.Packed model) (Gen.Packed guide) =
  let model_paths = paths_of ctx (Gen.Packed model) in
  let guide_paths = paths_of ctx (Gen.Packed guide) in
  match (model_paths, guide_paths) with
  | [], _ | _, [] ->
    emit ctx "PV401" Info
      "exploration produced no complete paths; model/guide coverage checks \
       skipped"
  | _ ->
    let m_may = may_addrs model_paths and m_must = must_addrs model_paths in
    let g_may = may_addrs guide_paths in
    let m_counts = plate_counts model_paths in
    let g_counts = plate_counts guide_paths in
    let sev = if ctx.truncated then Warning else Error in
    List.iter
      (fun (n, site) ->
        match List.assoc_opt n g_may with
        | None ->
          let always = List.mem_assoc n m_must in
          emit ctx "PV202"
            (if always then sev else Warning)
            ~address:n
            (Printf.sprintf
               "guide never samples latent %S (%s), which the model %s \
                samples — its density against guide traces would be -inf"
               n site.s_dist
               (if always then "always" else "sometimes"))
        | Some gsite ->
          if gsite.s_carrier <> site.s_carrier then
            emit ctx "PV204" Error ~address:n
              (Printf.sprintf
                 "carrier mismatch at %S: model %s samples a %s, guide %s \
                  samples a %s" n site.s_dist
                 (carrier_name site.s_carrier)
                 gsite.s_dist
                 (carrier_name gsite.s_carrier))
          else begin
            (match
               support_leq gsite.s_meta.Dist.static_support
                 site.s_meta.Dist.static_support
             with
            | Some false ->
              emit ctx "PV208" Warning ~address:n
                (Printf.sprintf
                   "guide support at %S (%s) exceeds the model's (%s): \
                    guide samples can fall outside the model's support" n
                   gsite.s_dist site.s_dist)
            | _ -> ());
            (* The shared latent must take the same stacked shape on
               both sides — the model's density of a guide trace reads
               the guide's tensor through the model's primitive. A
               binding conflict on a symbolic dimension (plate or iid
               batch count) is PV604; any other concrete disagreement
               is PV601. *)
            match
              ( site_shape ~counts:m_counts n site,
                site_shape ~counts:g_counts n gsite )
            with
            | Some ms, Some gs when not (Shape.equal ms gs) ->
              if sym_conflict ms gs then
                emit ctx "PV604" Error ~address:n
                  (Printf.sprintf
                     "symbolic batch dimension conflict at %S: the model \
                      binds shape %s but the guide binds shape %s (plate \
                      or iid counts disagree)"
                     n (Shape.to_string ms) (Shape.to_string gs))
              else
                emit ctx "PV601" Error ~address:n
                  (Printf.sprintf
                     "shape mismatch at %S: the model samples %s (%s) but \
                      the guide samples %s (%s) — densities across the \
                      pair would fail or silently broadcast"
                     n (Shape.to_string ms) site.s_dist
                     (Shape.to_string gs) gsite.s_dist)
            | _ -> ()
          end)
      m_may;
    List.iter
      (fun (n, gsite) ->
        if not (List.mem_assoc n m_may) then
          emit ctx "PV203" sev ~address:n
            (Printf.sprintf
               "guide samples address %S (%s), which the model never binds — \
                the model density of guide traces would be -inf" n
               gsite.s_dist))
      g_may

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)

let default_fuel = 20_000

let sorted_diags ctx =
  List.stable_sort
    (fun a b ->
      match compare (severity_rank a.severity) (severity_rank b.severity) with
      | 0 -> compare (a.code, a.address) (b.code, b.address)
      | c -> c)
    (List.rev ctx.diags)

let analyze ?(fuel = default_fuel) ?(max_width = 4) target =
  let ctx =
    { diags = []; fuel; truncated = false; max_width; decide_plates = false }
  in
  (match target with
  | Program p -> ignore (paths_of ctx p : path list)
  | Pair { model; guide } -> analyze_pair ctx model guide);
  if ctx.truncated then
    emit ctx "PV401" Info
      "exploration budget exhausted; analysis may be incomplete";
  { diagnostics = sorted_diags ctx; truncated = ctx.truncated }

(* The compiler's entry point: the same traversal as {!analyze} over a
   single program, additionally returning the per-path structure trails
   (with plate lowering decisions resolved). One walk serves both the
   preflight diagnostics and plan construction. *)
type trail_result = { trails : trail_step list list; trail_report : report }

let trail ?(fuel = default_fuel) ?(max_width = 4) packed =
  let ctx =
    { diags = []; fuel; truncated = false; max_width; decide_plates = true }
  in
  let paths = paths_of ctx packed in
  { trails = List.map (fun p -> List.rev p.trail) paths;
    trail_report = { diagnostics = sorted_diags ctx; truncated = ctx.truncated }
  }

(* The inferred abstract shape of every reachable sample site — the
   table behind [ppvi check --shapes]. Addresses of a pair's guide are
   prefixed with "guide/" (and the model's with "model/") so the two
   scopes stay distinguishable in one flat listing. *)
let site_shapes ?(fuel = default_fuel) ?(max_width = 4) target =
  let ctx =
    { diags = []; fuel; truncated = false; max_width; decide_plates = false }
  in
  let collect prefix packed =
    let paths = paths_of ctx packed in
    let counts = plate_counts paths in
    List.filter_map
      (fun (addr, s) ->
        Option.map (fun sh -> (prefix ^ addr, sh)) (site_shape ~counts addr s))
      (may_addrs paths)
    |> List.sort compare
  in
  match target with
  | Program p -> collect "" p
  | Pair { model; guide } -> collect "model/" model @ collect "guide/" guide

let errors report =
  List.filter (fun d -> d.severity = Error) report.diagnostics

let has_errors report = errors report <> []

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let pp_diagnostic ppf d =
  Format.fprintf ppf "%s %s%s: %s"
    (String.uppercase_ascii (severity_name d.severity))
    d.code
    (match d.address with
    | Some a -> Printf.sprintf " at %S" a
    | None -> "")
    d.message

let pp_report ppf r =
  if r.diagnostics = [] then Format.fprintf ppf "no diagnostics@."
  else
    List.iter (fun d -> Format.fprintf ppf "%a@." pp_diagnostic d) r.diagnostics;
  if r.truncated then
    Format.fprintf ppf "(exploration truncated: analysis may be incomplete)@."

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let diagnostic_to_json d =
  Printf.sprintf
    "{\"code\":\"%s\",\"severity\":\"%s\",\"address\":%s,\"message\":\"%s\"}"
    (json_escape d.code)
    (severity_name d.severity)
    (match d.address with
    | Some a -> Printf.sprintf "\"%s\"" (json_escape a)
    | None -> "null")
    (json_escape d.message)

let report_to_json ?name (r : report) =
  let name_field =
    match name with
    | Some n -> Printf.sprintf "\"name\":\"%s\"," (json_escape n)
    | None -> ""
  in
  Printf.sprintf "{%s\"truncated\":%b,\"diagnostics\":[%s]}" name_field
    r.truncated
    (String.concat "," (List.map diagnostic_to_json r.diagnostics))
