(** Runtime observability: tracing spans, metrics, and per-site
    gradient-estimator statistics.

    The library is dependency-free (only the OCaml distribution's
    [unix] for the clock) and sits below every other ppvi layer, so
    any module — the ADEV estimators, the generative-program
    interpreters, the training loops, the CLI — can feed it without
    creating cycles.

    Three data planes, one global recorder:

    - {b Spans}: named, timed regions tagged with a {!kind}. Every
      span updates an aggregate (count, total wall time, allocated
      bytes); individual span {e events} additionally land in an
      in-memory ring buffer and, when a JSONL sink is configured, in
      the trace file — subject to a per-kind sampling interval.
    - {b Metrics}: monotone counters, last-value gauges, and
      log-scale (power-of-two bucket) histograms.
    - {b Estimator statistics}: a per-(address, strategy) Welford
      accumulator over the {e score coefficient} of each gradient
      estimator — the stochastic scalar that multiplies
      [grad log p] in the surrogate loss. REINFORCE records the
      continuation's primal value (minus the baseline when one is
      used), MVD records each coupling's weighted difference, and the
      pathwise/exact strategies (REPARAM, ENUM) record 0, so ranking
      sites by coefficient variance surfaces exactly the
      score-function sites whose noise dominates the gradient. See
      docs/OBSERVABILITY.md for the interpretation guide.

    {b Determinism.} No function in this interface consumes PRNG
    keys, mutates AD state, or otherwise influences the computation
    being observed: enabling or disabling observability never changes
    a seeded run's outputs (enforced by a property test in
    [test/test_obs.ml]). When disabled, the hooks compiled into hot
    loops reduce to a single flag check with no allocation — guard
    any argument computation behind {!live}. *)

(** {1 Span kinds} *)

type kind =
  | Simulate  (** drawing from a primitive's sampler *)
  | Density  (** evaluating a primitive's log density *)
  | Grad  (** surrogate construction / backward pass *)
  | Optim  (** optimizer updates *)
  | Guard  (** anomaly scanning and policy dispatch *)
  | Preflight  (** static analysis before training *)
  | Step  (** one whole optimization step *)
  | Fault  (** fault injection, checkpoint recovery, retries *)
  | Other

val kind_name : kind -> string
(** Stable lowercase tag used in event lines ("simulate", "density",
    "grad", "optim-step", "guard", "preflight", "step", "fault",
    "other"). *)

val all_kinds : kind list

(** {1 Configuration} *)

val live : unit -> bool
(** Whether recording is enabled on this domain. The one check every
    hook performs; [false] is the initial state, and [false] under
    {!suppress} regardless of {!configure}. *)

val suppress : (unit -> 'a) -> 'a
(** Run a thunk with recording suppressed on the current domain:
    {!live} returns [false] and every emission hook is a no-op inside
    it. Used by the sharded training driver (the recorder's tables are
    owned by the coordinating domain) and around checkpoint-segment
    replays (re-executed instrumentation must not double-report). The
    instrumentation contract — enabling observability never changes a
    seeded run — makes suppression bit-transparent. *)

val configure :
  ?enabled:bool ->
  ?sink:[ `Null | `Console | `File of string ] ->
  ?ring_capacity:int ->
  ?sample_every:(kind * int) list ->
  unit ->
  unit
(** Reconfigure the recorder. [enabled] flips {!live}. [sink] selects
    where events are routed: [`Console] (the default) prints messages
    to stderr and keeps span events in memory only; [`File path]
    opens [path] and writes one JSON object per line (the previous
    file sink, if any, is flushed and closed); [`Null] drops
    everything. [ring_capacity] resizes the in-memory event buffer
    (default 4096, clearing it). [sample_every] sets, per kind, the
    event sampling interval: [n] means only every [n]-th span of that
    kind becomes an event (aggregates always update; default 1).
    @raise Sys_error if the trace file cannot be opened. *)

val reset : unit -> unit
(** Clear all aggregates, metrics, estimator statistics, and buffered
    events, and restart the relative clock. Does not touch the sink
    or the enabled flag. *)

val shutdown : unit -> unit
(** Flush a final metrics snapshot to a file sink, close it, restore
    the [`Console] sink, and disable recording. *)

(** {1 Spans} *)

val span : kind -> string -> (unit -> 'a) -> 'a
(** [span kind name f] times [f ()], tracking nesting depth and
    allocation; the span is recorded even when [f] raises. When
    {!live} is false this is exactly [f ()]. The closure makes this
    form convenient for per-step (cold) paths; per-site hot paths use
    {!start}/{!stop} to stay allocation-free when disabled. *)

val start : unit -> float
(** The current clock value, to be passed to {!stop}. Call only under
    a {!live} check. *)

val stop : ?alloc:float -> kind -> string -> float -> unit
(** [stop kind name t0] records a span that began at [t0] (from
    {!start}) and ends now. [alloc] optionally reports allocated
    bytes. Call only under a {!live} check. *)

val message : kind -> string -> unit
(** Route a human-readable line through the current sink {e even when
    recording is disabled}: a [`Console] sink prints it to stderr
    (the legacy [eprintf] behavior), a [`File] sink writes a ["msg"]
    event (keeping stderr machine-clean under [--trace]), a [`Null]
    sink drops it. *)

(** {1 Metrics} *)

val incr : ?by:int -> string -> unit
(** Bump a counter. No-op unless {!live}. *)

val gauge : string -> float -> unit
(** Set a gauge to its latest value. No-op unless {!live}. *)

val hist : string -> float -> unit
(** Add an observation to a log-scale histogram (power-of-two
    buckets; count/sum/min/max are tracked exactly). No-op unless
    {!live}. *)

val counter_value : string -> int
(** Current value of a counter (0 if never bumped). *)

val gauge_value : string -> float
(** Current value of a gauge (nan if never set). *)

(** {1 Estimator statistics} *)

val estimator : address:string -> strategy:string -> float -> unit
(** Feed one score-coefficient observation into the Welford
    accumulator for [(address, strategy)]. No-op unless {!live}. *)

(** {1 Reports} *)

type span_row = {
  sr_name : string;
  sr_kind : kind;
  sr_count : int;
  sr_total_ms : float;
  sr_mean_ms : float;
  sr_alloc_mb : float;  (** total allocated MB, where measured *)
}

val span_rows : unit -> span_row list
(** Aggregated spans, sorted by total time descending. *)

type est_row = {
  er_address : string;
  er_strategy : string;
  er_count : int;
  er_mean : float;
  er_variance : float;  (** unbiased sample variance of the coefficient *)
  er_snr : float;  (** |mean| / stddev; 0 when both vanish, inf when
                       the mean is nonzero with zero spread *)
}

val estimator_rows : unit -> est_row list
(** Per-site estimator statistics, noisiest (highest coefficient
    variance) first; ties broken by sample count descending. *)

type hist_row = {
  hr_name : string;
  hr_count : int;
  hr_mean : float;
  hr_min : float;
  hr_max : float;
}

val counters : unit -> (string * int) list
val gauges : unit -> (string * float) list
val hist_rows : unit -> hist_row list

val report_human : Format.formatter -> unit
(** Print the span, metric, and estimator tables. *)

val report_json : unit -> string
(** The same data as one JSON object (suitable for [--json]). *)

val flush : unit -> unit
(** Write a snapshot of counters, gauges, histograms, and estimator
    rows to the file sink (one event line each) and flush it. No-op
    for other sinks. *)

(** {1 In-memory event recorder} *)

type event =
  | Span_ev of {
      name : string;
      kind : kind;
      depth : int;
      t : float;  (** seconds since {!reset} (or program start) *)
      dur_ms : float;
      alloc_b : float;
    }
  | Msg_ev of { kind : kind; text : string; t : float }

val recent : unit -> event list
(** Buffered events, oldest first (at most the ring capacity). *)

(** {1 JSON} *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Serialize one JSON value (non-finite numbers become [null]). *)

  val parse : string -> (t, string) result
  (** Parse one complete JSON value (trailing whitespace allowed). *)

  val member : string -> t -> t option
  (** Field lookup in an [Obj]; [None] otherwise. *)
end

val validate_jsonl : string -> (int, string) result
(** Parse every non-empty line of the file at the given path as JSON;
    [Ok n] returns the number of event lines, [Error msg] names the
    first offending line. A partial trailing line in a file that does
    not end with a newline — a recorder killed mid-write — is skipped,
    not an error; a malformed but newline-terminated line still fails
    (that is schema drift). Used by [ppvi trace-lint] and CI. *)
