(* Global recorder. All recording runs on the main domain, so plain
   mutable state is safe: the parallel kernel workers never call into
   Obs, and instrumented code executed on worker domains (sharded
   training blocks) runs under [suppress], which turns every hook into
   a no-op via the domain-local flag below. The one cross-domain
   producer, [Parallel], keeps its own atomic counters and is read
   from the reporting layer. *)

type kind =
  | Simulate
  | Density
  | Grad
  | Optim
  | Guard
  | Preflight
  | Step
  | Fault
  | Other

let kind_name = function
  | Simulate -> "simulate"
  | Density -> "density"
  | Grad -> "grad"
  | Optim -> "optim-step"
  | Guard -> "guard"
  | Preflight -> "preflight"
  | Step -> "step"
  | Fault -> "fault"
  | Other -> "other"

let all_kinds =
  [ Simulate; Density; Grad; Optim; Guard; Preflight; Step; Fault; Other ]

let kind_index = function
  | Simulate -> 0
  | Density -> 1
  | Grad -> 2
  | Optim -> 3
  | Guard -> 4
  | Preflight -> 5
  | Step -> 6
  | Fault -> 7
  | Other -> 8

let n_kinds = 9

(* ------------------------------------------------------------------ *)
(* JSON: a writer (events, reports) and a minimal reader (trace-lint,
   round-trip tests). Numbers are emitted with enough digits to
   round-trip doubles; non-finite values become [null] so every line
   stays standard JSON. *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let num_to_string f =
    if Float.is_finite f then begin
      (* Shortest representation that still round-trips. *)
      let s = Printf.sprintf "%.12g" f in
      if float_of_string s = f then s else Printf.sprintf "%.17g" f
    end
    else "null"

  let rec write b = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Num f -> Buffer.add_string b (num_to_string f)
    | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
    | Arr items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          write b v)
        items;
      Buffer.add_char b ']'
    | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\":";
          write b v)
        fields;
      Buffer.add_char b '}'

  let to_string v =
    let b = Buffer.create 128 in
    write b v;
    Buffer.contents b

  exception Bad of string

  let parse (s : string) : (t, string) result =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
    let skip_ws () =
      while
        !pos < n
        && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        advance ()
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then advance ()
      else fail (Printf.sprintf "expected '%c'" c)
    in
    let literal word v =
      if !pos + String.length word <= n
         && String.sub s !pos (String.length word) = word
      then begin
        pos := !pos + String.length word;
        v
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
            if !pos + 4 >= n then fail "truncated \\u escape";
            let hex = String.sub s (!pos + 1) 4 in
            (match int_of_string_opt ("0x" ^ hex) with
            | Some code when code < 128 -> Buffer.add_char b (Char.chr code)
            | Some _ -> Buffer.add_char b '?' (* non-ASCII: placeholder *)
            | None -> fail "bad \\u escape");
            pos := !pos + 4
          | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
          advance ();
          go ()
        | c ->
          Buffer.add_char b c;
          advance ();
          go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && is_num_char s.[!pos] do
        advance ()
      done;
      let text = String.sub s start (!pos - start) in
      match float_of_string_opt text with
      | Some f -> Num f
      | None -> fail (Printf.sprintf "bad number %S" text)
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              fields ((key, v) :: acc)
            | Some '}' ->
              advance ();
              List.rev ((key, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              items (v :: acc)
            | Some ']' ->
              advance ();
              List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (items [])
        end
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> parse_number ()
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Bad msg -> Error msg
    | exception Stack_overflow ->
      (* Recursive descent: pathological nesting must degrade to a
         parse error, not crash the linter reading a hostile trace. *)
      Error "nesting too deep"

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None
end

(* ------------------------------------------------------------------ *)
(* State *)

type sink = Null_sink | Console_sink | File_sink of out_channel * string

type event =
  | Span_ev of {
      name : string;
      kind : kind;
      depth : int;
      t : float;
      dur_ms : float;
      alloc_b : float;
    }
  | Msg_ev of { kind : kind; text : string; t : float }

type agg = {
  a_kind : kind;
  mutable a_count : int;
  mutable a_total_s : float;
  mutable a_alloc : float;
}

type hist_state = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : int array;  (* power-of-two buckets, exponent + 33; [0] holds v <= 0 *)
}

type est = { mutable e_n : int; mutable e_mean : float; mutable e_m2 : float }

let live_flag = ref false

(* Domain-local suppression: the recorder's tables are plain Hashtbls
   owned by the coordinating domain, so instrumented code running on a
   worker domain (a sharded training block) or re-running during a
   checkpoint replay must see [live () = false] — both to avoid racing
   the tables and to avoid double-reporting replayed work. The
   instrumentation contract (enabling observability never changes a
   seeded run) makes suppression bit-transparent. *)
let suppressed : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let suppress f =
  let saved = Domain.DLS.get suppressed in
  Domain.DLS.set suppressed true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set suppressed saved) f

let live () = !live_flag && not (Domain.DLS.get suppressed)
let sink = ref Console_sink
let epoch = ref (Unix.gettimeofday ())
let depth = ref 0
let sample_every = Array.make n_kinds 1
let ticks = Array.make n_kinds 0
(* Keyed by (name, kind): one primitive's sampler and density leaf
   share a name but must report as separate phases. *)
let aggs : (string * int, agg) Hashtbl.t = Hashtbl.create 64
let counter_tbl : (string, int ref) Hashtbl.t = Hashtbl.create 64
let gauge_tbl : (string, float ref) Hashtbl.t = Hashtbl.create 64
let hist_tbl : (string, hist_state) Hashtbl.t = Hashtbl.create 64
let est_tbl : (string * string, est) Hashtbl.t = Hashtbl.create 64

let ring_capacity = ref 4096
let ring : event option array ref = ref (Array.make !ring_capacity None)
let ring_pos = ref 0
let ring_count = ref 0

let now () = Unix.gettimeofday ()
let start = now

(* ------------------------------------------------------------------ *)
(* Event emission *)

let event_json = function
  | Span_ev { name; kind; depth; t; dur_ms; alloc_b } ->
    Json.Obj
      [ ("ev", Json.Str "span"); ("name", Json.Str name);
        ("kind", Json.Str (kind_name kind)); ("depth", Json.Num (float_of_int depth));
        ("t", Json.Num t); ("dur_ms", Json.Num dur_ms);
        ("alloc_b", Json.Num alloc_b) ]
  | Msg_ev { kind; text; t } ->
    Json.Obj
      [ ("ev", Json.Str "msg"); ("kind", Json.Str (kind_name kind));
        ("t", Json.Num t); ("text", Json.Str text) ]

let write_line oc j =
  output_string oc (Json.to_string j);
  output_char oc '\n'

let ring_push ev =
  let cap = Array.length !ring in
  if cap > 0 then begin
    !ring.(!ring_pos) <- Some ev;
    ring_pos := (!ring_pos + 1) mod cap;
    if !ring_count < cap then incr ring_count
  end

let emit ev =
  ring_push ev;
  match !sink with
  | Null_sink | Console_sink -> ()
  | File_sink (oc, _) -> write_line oc (event_json ev)

(* Sampling admission: every [sample_every.(k)]-th span of a kind
   becomes an event. Aggregates are updated unconditionally. *)
let admit kind =
  let i = kind_index kind in
  let t = ticks.(i) + 1 in
  ticks.(i) <- t;
  t mod sample_every.(i) = 0

(* ------------------------------------------------------------------ *)
(* Spans *)

let agg_for name kind =
  let key = (name, kind_index kind) in
  match Hashtbl.find_opt aggs key with
  | Some a -> a
  | None ->
    let a = { a_kind = kind; a_count = 0; a_total_s = 0.; a_alloc = 0. } in
    Hashtbl.add aggs key a;
    a

let stop ?(alloc = 0.) kind name t0 =
  let t1 = now () in
  let dur = t1 -. t0 in
  let a = agg_for name kind in
  a.a_count <- a.a_count + 1;
  a.a_total_s <- a.a_total_s +. dur;
  a.a_alloc <- a.a_alloc +. alloc;
  if admit kind then
    emit
      (Span_ev
         { name; kind; depth = !depth; t = t0 -. !epoch;
           dur_ms = dur *. 1000.; alloc_b = alloc })

let span kind name f =
  if not (live ()) then f ()
  else begin
    let a0 = Gc.allocated_bytes () in
    let t0 = now () in
    incr depth;
    Fun.protect
      ~finally:(fun () ->
        decr depth;
        stop ~alloc:(Gc.allocated_bytes () -. a0) kind name t0)
      f
  end

let message kind text =
  match !sink with
  | Console_sink -> Printf.eprintf "%s\n%!" text
  | File_sink (oc, _) ->
    write_line oc (event_json (Msg_ev { kind; text; t = now () -. !epoch }));
    if live () then ring_push (Msg_ev { kind; text; t = now () -. !epoch })
  | Null_sink -> ()

(* ------------------------------------------------------------------ *)
(* Metrics *)

let incr ?(by = 1) name =
  if live () then begin
    match Hashtbl.find_opt counter_tbl name with
    | Some r -> r := !r + by
    | None -> Hashtbl.add counter_tbl name (ref by)
  end

let gauge name v =
  if live () then begin
    match Hashtbl.find_opt gauge_tbl name with
    | Some r -> r := v
    | None -> Hashtbl.add gauge_tbl name (ref v)
  end

let bucket_of v =
  if v <= 0. then 0
  else begin
    let _, e = Float.frexp v in
    let i = e + 33 in
    if i < 1 then 1 else if i > 63 then 63 else i
  end

let hist name v =
  if live () then begin
    let h =
      match Hashtbl.find_opt hist_tbl name with
      | Some h -> h
      | None ->
        let h =
          { h_count = 0; h_sum = 0.; h_min = Float.infinity;
            h_max = Float.neg_infinity; h_buckets = Array.make 64 0 }
        in
        Hashtbl.add hist_tbl name h;
        h
    in
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v;
    let b = bucket_of v in
    h.h_buckets.(b) <- h.h_buckets.(b) + 1
  end

let counter_value name =
  match Hashtbl.find_opt counter_tbl name with Some r -> !r | None -> 0

let gauge_value name =
  match Hashtbl.find_opt gauge_tbl name with Some r -> !r | None -> Float.nan

(* ------------------------------------------------------------------ *)
(* Estimator statistics (Welford) *)

let estimator ~address ~strategy x =
  if live () then begin
    let key = (address, strategy) in
    let e =
      match Hashtbl.find_opt est_tbl key with
      | Some e -> e
      | None ->
        let e = { e_n = 0; e_mean = 0.; e_m2 = 0. } in
        Hashtbl.add est_tbl key e;
        e
    in
    e.e_n <- e.e_n + 1;
    let delta = x -. e.e_mean in
    e.e_mean <- e.e_mean +. (delta /. float_of_int e.e_n);
    e.e_m2 <- e.e_m2 +. (delta *. (x -. e.e_mean))
  end

(* ------------------------------------------------------------------ *)
(* Reports *)

type span_row = {
  sr_name : string;
  sr_kind : kind;
  sr_count : int;
  sr_total_ms : float;
  sr_mean_ms : float;
  sr_alloc_mb : float;
}

let span_rows () =
  Hashtbl.fold
    (fun (name, _) a acc ->
      { sr_name = name; sr_kind = a.a_kind; sr_count = a.a_count;
        sr_total_ms = a.a_total_s *. 1000.;
        sr_mean_ms =
          (if a.a_count = 0 then 0.
           else a.a_total_s *. 1000. /. float_of_int a.a_count);
        sr_alloc_mb = a.a_alloc /. 1048576. }
      :: acc)
    aggs []
  |> List.sort (fun a b -> Float.compare b.sr_total_ms a.sr_total_ms)

type est_row = {
  er_address : string;
  er_strategy : string;
  er_count : int;
  er_mean : float;
  er_variance : float;
  er_snr : float;
}

let estimator_rows () =
  Hashtbl.fold
    (fun (address, strategy) e acc ->
      let variance =
        if e.e_n < 2 then 0. else e.e_m2 /. float_of_int (e.e_n - 1)
      in
      let std = Float.sqrt variance in
      let snr =
        if std > 0. then Float.abs e.e_mean /. std
        else if e.e_mean <> 0. then Float.infinity
        else 0.
      in
      { er_address = address; er_strategy = strategy; er_count = e.e_n;
        er_mean = e.e_mean; er_variance = variance; er_snr = snr }
      :: acc)
    est_tbl []
  |> List.sort (fun a b ->
         match Float.compare b.er_variance a.er_variance with
         | 0 -> Stdlib.compare b.er_count a.er_count
         | c -> c)

type hist_row = {
  hr_name : string;
  hr_count : int;
  hr_mean : float;
  hr_min : float;
  hr_max : float;
}

let counters () =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) counter_tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let gauges () =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) gauge_tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let hist_rows () =
  Hashtbl.fold
    (fun name h acc ->
      { hr_name = name; hr_count = h.h_count;
        hr_mean =
          (if h.h_count = 0 then 0. else h.h_sum /. float_of_int h.h_count);
        hr_min = h.h_min; hr_max = h.h_max }
      :: acc)
    hist_tbl []
  |> List.sort (fun a b -> String.compare a.hr_name b.hr_name)

let report_human ppf =
  let spans = span_rows () in
  if spans <> [] then begin
    Format.fprintf ppf "spans (aggregated, by total time)@.";
    Format.fprintf ppf "  %-26s %-10s %8s %12s %10s %10s@." "name" "kind"
      "count" "total_ms" "mean_ms" "alloc_mb";
    List.iter
      (fun r ->
        Format.fprintf ppf "  %-26s %-10s %8d %12.3f %10.4f %10.2f@."
          r.sr_name (kind_name r.sr_kind) r.sr_count r.sr_total_ms r.sr_mean_ms
          r.sr_alloc_mb)
      spans
  end;
  let cs = counters () in
  if cs <> [] then begin
    Format.fprintf ppf "counters@.";
    List.iter (fun (name, v) -> Format.fprintf ppf "  %-36s %10d@." name v) cs
  end;
  let gs = gauges () in
  if gs <> [] then begin
    Format.fprintf ppf "gauges@.";
    List.iter (fun (name, v) -> Format.fprintf ppf "  %-36s %10g@." name v) gs
  end;
  let hs = hist_rows () in
  if hs <> [] then begin
    Format.fprintf ppf "histograms@.";
    Format.fprintf ppf "  %-26s %8s %12s %12s %12s@." "name" "count" "mean"
      "min" "max";
    List.iter
      (fun r ->
        Format.fprintf ppf "  %-26s %8d %12.4g %12.4g %12.4g@." r.hr_name
          r.hr_count r.hr_mean r.hr_min r.hr_max)
      hs
  end;
  let es = estimator_rows () in
  if es <> [] then begin
    Format.fprintf ppf
      "estimator sites (score-coefficient statistics, noisiest first)@.";
    Format.fprintf ppf "  %-22s %-20s %8s %12s %12s %10s@." "address"
      "strategy" "count" "mean" "variance" "snr";
    List.iter
      (fun r ->
        Format.fprintf ppf "  %-22s %-20s %8d %12.4g %12.4g %10.3g@."
          r.er_address r.er_strategy r.er_count r.er_mean r.er_variance
          r.er_snr)
      es
  end

let report_json () =
  let spans =
    Json.Arr
      (List.map
         (fun r ->
           Json.Obj
             [ ("name", Json.Str r.sr_name);
               ("kind", Json.Str (kind_name r.sr_kind));
               ("count", Json.Num (float_of_int r.sr_count));
               ("total_ms", Json.Num r.sr_total_ms);
               ("mean_ms", Json.Num r.sr_mean_ms);
               ("alloc_mb", Json.Num r.sr_alloc_mb) ])
         (span_rows ()))
  in
  let counters_j =
    Json.Obj (List.map (fun (k, v) -> (k, Json.Num (float_of_int v))) (counters ()))
  in
  let gauges_j = Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) (gauges ())) in
  let hists =
    Json.Arr
      (List.map
         (fun r ->
           Json.Obj
             [ ("name", Json.Str r.hr_name);
               ("count", Json.Num (float_of_int r.hr_count));
               ("mean", Json.Num r.hr_mean); ("min", Json.Num r.hr_min);
               ("max", Json.Num r.hr_max) ])
         (hist_rows ()))
  in
  let ests =
    Json.Arr
      (List.map
         (fun r ->
           Json.Obj
             [ ("address", Json.Str r.er_address);
               ("strategy", Json.Str r.er_strategy);
               ("count", Json.Num (float_of_int r.er_count));
               ("mean", Json.Num r.er_mean);
               ("variance", Json.Num r.er_variance);
               ("snr", Json.Num r.er_snr) ])
         (estimator_rows ()))
  in
  Json.to_string
    (Json.Obj
       [ ("schema_version", Json.Num 1.); ("spans", spans);
         ("counters", counters_j); ("gauges", gauges_j);
         ("histograms", hists); ("estimators", ests) ])

let flush () =
  match !sink with
  | Null_sink | Console_sink -> ()
  | File_sink (oc, _) ->
    List.iter
      (fun (name, v) ->
        write_line oc
          (Json.Obj
             [ ("ev", Json.Str "counter"); ("name", Json.Str name);
               ("value", Json.Num (float_of_int v)) ]))
      (counters ());
    List.iter
      (fun (name, v) ->
        write_line oc
          (Json.Obj
             [ ("ev", Json.Str "gauge"); ("name", Json.Str name);
               ("value", Json.Num v) ]))
      (gauges ());
    List.iter
      (fun r ->
        write_line oc
          (Json.Obj
             [ ("ev", Json.Str "hist"); ("name", Json.Str r.hr_name);
               ("count", Json.Num (float_of_int r.hr_count));
               ("mean", Json.Num r.hr_mean); ("min", Json.Num r.hr_min);
               ("max", Json.Num r.hr_max) ]))
      (hist_rows ());
    List.iter
      (fun r ->
        write_line oc
          (Json.Obj
             [ ("ev", Json.Str "estimator"); ("address", Json.Str r.er_address);
               ("strategy", Json.Str r.er_strategy);
               ("count", Json.Num (float_of_int r.er_count));
               ("mean", Json.Num r.er_mean);
               ("variance", Json.Num r.er_variance);
               ("snr", Json.Num r.er_snr) ]))
      (estimator_rows ());
    Stdlib.flush oc

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

let close_file_sink () =
  match !sink with
  | File_sink (oc, _) ->
    (try Stdlib.flush oc with Sys_error _ -> ());
    (try close_out oc with Sys_error _ -> ());
    sink := Console_sink
  | Null_sink | Console_sink -> ()

let reset () =
  Hashtbl.reset aggs;
  Hashtbl.reset counter_tbl;
  Hashtbl.reset gauge_tbl;
  Hashtbl.reset hist_tbl;
  Hashtbl.reset est_tbl;
  Array.fill ticks 0 n_kinds 0;
  ring := Array.make !ring_capacity None;
  ring_pos := 0;
  ring_count := 0;
  depth := 0;
  epoch := now ()

let configure ?enabled ?sink:sink_spec ?ring_capacity:cap ?sample_every:se ()
    =
  (match cap with
  | Some c ->
    let c = if c < 1 then 1 else c in
    ring_capacity := c;
    ring := Array.make c None;
    ring_pos := 0;
    ring_count := 0
  | None -> ());
  (match se with
  | Some entries ->
    List.iter
      (fun (k, every) ->
        sample_every.(kind_index k) <- (if every < 1 then 1 else every))
      entries
  | None -> ());
  (match sink_spec with
  | Some `Null ->
    close_file_sink ();
    sink := Null_sink
  | Some `Console -> close_file_sink ()
  | Some (`File path) ->
    close_file_sink ();
    let oc = open_out path in
    write_line oc
      (Json.Obj
         [ ("ev", Json.Str "meta"); ("schema_version", Json.Num 1.);
           ("t", Json.Num 0.) ]);
    sink := File_sink (oc, path)
  | None -> ());
  match enabled with Some e -> live_flag := e | None -> ()

let shutdown () =
  flush ();
  close_file_sink ();
  live_flag := false

let recent () =
  let cap = Array.length !ring in
  if cap = 0 || !ring_count = 0 then []
  else begin
    let first =
      if !ring_count < cap then 0 else !ring_pos (* oldest surviving slot *)
    in
    List.init !ring_count (fun i ->
        match !ring.((first + i) mod cap) with
        | Some ev -> ev
        | None -> assert false)
  end

(* ------------------------------------------------------------------ *)
(* JSONL validation *)

let validate_jsonl path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let len = in_channel_length ic in
    let content = really_input_string ic len in
    close_in ic;
    (* A file that does not end in a newline was truncated mid-line —
       a recorder killed between [output_string] and its flush leaves
       exactly this shape. The partial trailing line is skipped (it is
       not schema drift), while a malformed line that IS
       newline-terminated still fails the lint. *)
    let ends_nl = len > 0 && content.[len - 1] = '\n' in
    let lines = String.split_on_char '\n' content in
    let lines =
      if ends_nl then
        match List.rev lines with "" :: r -> List.rev r | _ -> lines
      else lines
    in
    let rec go lineno count = function
      | [] -> Ok count
      | [ last ] when not ends_nl ->
        if String.trim last = "" then Ok count
        else (
          match Json.parse last with
          | Ok _ -> Ok (count + 1)
          | Error _ -> Ok count)
      | line :: rest ->
        if String.trim line = "" then go (lineno + 1) count rest
        else (
          match Json.parse line with
          | Ok _ -> go (lineno + 1) (count + 1) rest
          | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
    in
    go 1 0 lines
