(** Mutable parameter stores and per-step parameter frames.

    A {!t} owns the current tensor value of every learned parameter.
    Each optimization step opens a {!Frame.t}, which hands out fresh AD
    leaf nodes for the parameters an objective touches; after
    [Ad.backward], the frame reports each leaf's accumulated gradient
    and the optimizer writes updated tensors back into the store.
    Rebuilding leaves every step keeps gradients from leaking across
    steps (see [Ad]). *)

type t

val create : unit -> t

val ensure : t -> string -> (unit -> Tensor.t) -> unit
(** Register a parameter if absent (the initializer runs at most
    once). *)

val mem : t -> string -> bool
val tensor : t -> string -> Tensor.t
(** @raise Not_found on unregistered names. *)

val set : t -> string -> Tensor.t -> unit
(** @raise Not_found on unregistered names (register with {!ensure}). *)

val names : t -> string list
(** Registration order. *)

val parameter_count : t -> int
(** Total number of scalar parameters. *)

val copy : t -> t
(** Deep copy: the copied tensors share no buffers with the original,
    so mutating either store (or, with an in-place backend, either
    tensor) leaves the other intact. Used for checkpoint snapshots and
    for ablations that fork training. *)

val restore : t -> from:t -> unit
(** [restore t ~from] writes every parameter of [from] back into [t]
    (deep-copied), registering any name [t] lacks. Parameters of [t]
    absent from [from] are left at their current values. *)

(** {1 Persistence}

    Binary checkpoints with a versioned header ("PPVISTOR"). The
    current writer emits format version 2: every tensor record carries
    a CRC-32, and the file ends with a whole-file CRC-32, so
    truncation and bit rot are detected before any tensor is trusted.
    Version-1 files (PR 1's format, no checksums) remain readable.
    Floats are stored as IEEE-754 bit patterns, so a save/load
    round-trip is bit-exact (including NaNs and infinities).

    Saves are {e atomic and durable}: the image is written to a temp
    file in the destination directory, flushed, fsync'd, and renamed
    into place — a crash mid-save leaves the previous checkpoint
    intact, and a full disk raises [Sys_error] instead of silently
    truncating. All persistence entry points consult the [Fault]
    injection hooks (one branch when no plan is installed). *)

exception Corrupt_checkpoint of string
(** Raised by {!load} on bad magic, an unsupported version, a
    checksum mismatch, truncation, or any length field inconsistent
    with the file's actual size. *)

val save : ?retries:int -> ?backoff_ms:float -> t -> string -> unit
(** Write all parameters, in registration order, atomically to a
    file. [retries] (default 0) retries transient [Sys_error]
    failures with a deterministic exponential backoff starting at
    [backoff_ms] (default 10).
    @raise Sys_error when the write still fails after the retries. *)

val save_v1 : t -> string -> unit
(** Write the legacy (version 1, checksum-free) format — kept so the
    backward-compatibility path stays testable. *)

val load : string -> t
(** Read a checkpoint written by {!save} (or a v1 file) into a fresh
    store.
    @raise Corrupt_checkpoint if the file is not a valid checkpoint.
    @raise Sys_error if the file cannot be opened. *)

(** {1 Rotated checkpoints}

    A checkpoint directory holds [ckpt.N] files (monotonically
    increasing [N]) plus a [latest] pointer file naming the newest.
    Both are written atomically, so a crash between the two leaves a
    consistent older state. *)

val save_rotated :
  ?keep:int -> ?retries:int -> ?backoff_ms:float -> t -> dir:string -> string
(** Write the next [ckpt.N] in [dir] (created if missing), update the
    [latest] pointer, and prune all but the newest [keep] (default 3)
    checkpoints. Returns the path written.
    @raise Sys_error when the write fails after the retries. *)

(** Why [load_latest] failed, split so callers can give an accurate
    hint: a missing directory and an empty one mean "nothing trained
    yet, start fresh", while corrupt candidates mean training state
    exists but cannot be read — silently starting over would discard
    it. *)
type latest_error =
  | No_directory of string  (** the directory does not exist *)
  | No_checkpoints of string  (** it exists but holds no [ckpt.N] *)
  | All_corrupt of { dir : string; tried : int }
      (** every candidate failed to load *)

val latest_error_message : latest_error -> string
(** One-line diagnosis plus a hint for the recoverable cases, e.g.
    ["ckpt: checkpoint directory does not exist (hint: a checkpointed
    run creates it; nothing to resume yet)"]. *)

val load_latest_result : string -> (t * string, latest_error) result
(** Load the newest readable checkpoint in a directory, trying the
    [latest] pointer first and then every [ckpt.N] newest-first.
    Corrupt or unreadable candidates are skipped with an explanatory
    [Obs.message] (and a ["store/fallbacks"] counter bump). Never
    raises; the error cases are typed so an empty or missing directory
    can be reported as "nothing to resume" rather than with a message
    that presumes a loadable sibling exists. *)

val load_latest : string -> (t * string) option
(** [load_latest_result] with the historical calling convention:
    [None] when the directory is missing or holds no checkpoints.
    @raise Corrupt_checkpoint when candidates exist but none loads —
    starting fresh silently would discard training the caller may
    still want to salvage by hand. *)

module Frame : sig
  type store := t
  type t

  val make : store -> t

  val make_detached : store -> t
  (** A frame whose lookups all return constant (stop-gradient) views
      and record nothing — for "old parameter" copies in wake-sleep
      objectives. *)

  val detach : t -> t
  (** The detached view of an existing frame's store. *)

  val get : t -> string -> Ad.t
  (** The leaf node for a parameter — one node per name per frame, so
      repeated lookups share gradients. @raise Not_found if
      unregistered. *)

  val get_detached : t -> string -> Ad.t
  (** A constant (stop-gradient) view of the parameter — used for
      "old parameters" in wake-sleep style objectives. *)

  val params : t -> (string * Ad.t) list
  (** Every leaf handed out by {!get} so far (for [Adev.grad]). *)

  val grads : t -> (string * Tensor.t) list
  (** Gradients accumulated in the frame's leaves (call after
      [Ad.backward]). *)
end
