(** Mutable parameter stores and per-step parameter frames.

    A {!t} owns the current tensor value of every learned parameter.
    Each optimization step opens a {!Frame.t}, which hands out fresh AD
    leaf nodes for the parameters an objective touches; after
    [Ad.backward], the frame reports each leaf's accumulated gradient
    and the optimizer writes updated tensors back into the store.
    Rebuilding leaves every step keeps gradients from leaking across
    steps (see [Ad]). *)

type t

val create : unit -> t

val ensure : t -> string -> (unit -> Tensor.t) -> unit
(** Register a parameter if absent (the initializer runs at most
    once). *)

val mem : t -> string -> bool
val tensor : t -> string -> Tensor.t
(** @raise Not_found on unregistered names. *)

val set : t -> string -> Tensor.t -> unit
(** @raise Not_found on unregistered names (register with {!ensure}). *)

val names : t -> string list
(** Registration order. *)

val parameter_count : t -> int
(** Total number of scalar parameters. *)

val copy : t -> t
(** Deep copy: the copied tensors share no buffers with the original,
    so mutating either store (or, with an in-place backend, either
    tensor) leaves the other intact. Used for checkpoint snapshots and
    for ablations that fork training. *)

val restore : t -> from:t -> unit
(** [restore t ~from] writes every parameter of [from] back into [t]
    (deep-copied), registering any name [t] lacks. Parameters of [t]
    absent from [from] are left at their current values. *)

(** {1 Persistence}

    Binary checkpoints with a versioned header ("PPVISTOR", format
    version 1). Floats are stored as IEEE-754 bit patterns, so a
    save/load round-trip is bit-exact. *)

exception Corrupt_checkpoint of string
(** Raised by {!load} on bad magic, version mismatch, or truncation. *)

val save : t -> string -> unit
(** Write all parameters, in registration order, to a file. *)

val load : string -> t
(** Read a checkpoint written by {!save} into a fresh store.
    @raise Corrupt_checkpoint if the file is not a valid checkpoint.
    @raise Sys_error if the file cannot be opened. *)

module Frame : sig
  type store := t
  type t

  val make : store -> t

  val make_detached : store -> t
  (** A frame whose lookups all return constant (stop-gradient) views
      and record nothing — for "old parameter" copies in wake-sleep
      objectives. *)

  val detach : t -> t
  (** The detached view of an existing frame's store. *)

  val get : t -> string -> Ad.t
  (** The leaf node for a parameter — one node per name per frame, so
      repeated lookups share gradients. @raise Not_found if
      unregistered. *)

  val get_detached : t -> string -> Ad.t
  (** A constant (stop-gradient) view of the parameter — used for
      "old parameters" in wake-sleep style objectives. *)

  val params : t -> (string * Ad.t) list
  (** Every leaf handed out by {!get} so far (for [Adev.grad]). *)

  val grads : t -> (string * Tensor.t) list
  (** Gradients accumulated in the frame's leaves (call after
      [Ad.backward]). *)
end
