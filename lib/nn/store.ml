type t = {
  tensors : (string, Tensor.t) Hashtbl.t;
  mutable order : string list;  (* reverse registration order *)
}

let create () = { tensors = Hashtbl.create 16; order = [] }

let ensure t name init =
  if not (Hashtbl.mem t.tensors name) then begin
    Hashtbl.add t.tensors name (init ());
    t.order <- name :: t.order
  end

let mem t name = Hashtbl.mem t.tensors name

let tensor t name =
  match Hashtbl.find_opt t.tensors name with
  | Some x -> x
  | None -> raise Not_found

let set t name x =
  if not (Hashtbl.mem t.tensors name) then raise Not_found;
  Hashtbl.replace t.tensors name x

let names t = List.rev t.order

let parameter_count t =
  Hashtbl.fold (fun _ x acc -> acc + Tensor.size x) t.tensors 0

(* Rebuild each tensor from its raw contents so the copy shares no
   buffers with the original — checkpoint snapshots must stay intact
   even if a backend with in-place tensor mutation is plugged in. *)
let deep_copy_tensor x = Tensor.of_array (Tensor.shape x) (Tensor.to_array x)

let copy t =
  let tensors = Hashtbl.create (Hashtbl.length t.tensors) in
  Hashtbl.iter (fun name x -> Hashtbl.add tensors name (deep_copy_tensor x)) t.tensors;
  { tensors; order = t.order }

let restore t ~from =
  List.iter
    (fun name ->
      let x = deep_copy_tensor (tensor from name) in
      if Hashtbl.mem t.tensors name then Hashtbl.replace t.tensors name x
      else begin
        Hashtbl.add t.tensors name x;
        t.order <- name :: t.order
      end)
    (names from)

(* On-disk format (all integers big-endian):
     magic "PPVISTOR" | version u32 | count u32
     then per tensor, in registration order:
     name_len u32 | name bytes | rank u32 | dims u32* | elems f64*
   Floats are stored as their IEEE-754 bit patterns, so a round-trip is
   bit-exact (including NaNs and infinities). *)

let magic = "PPVISTOR"
let format_version = 1

exception Corrupt_checkpoint of string

let corrupt fmt = Format.kasprintf (fun s -> raise (Corrupt_checkpoint s)) fmt

let write_u32 oc n =
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  output_bytes oc b

let write_f64 oc x =
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 (Int64.bits_of_float x);
  output_bytes oc b

let read_u32 ic =
  let b = Bytes.create 4 in
  really_input ic b 0 4;
  Int32.to_int (Bytes.get_int32_be b 0) land 0xFFFFFFFF

let read_f64 ic =
  let b = Bytes.create 8 in
  really_input ic b 0 8;
  Int64.float_of_bits (Bytes.get_int64_be b 0)

let save t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      write_u32 oc format_version;
      let order = names t in
      write_u32 oc (List.length order);
      List.iter
        (fun name ->
          let x = tensor t name in
          write_u32 oc (String.length name);
          output_string oc name;
          let shape = Tensor.shape x in
          write_u32 oc (Array.length shape);
          Array.iter (write_u32 oc) shape;
          Array.iter (write_f64 oc) (Tensor.to_array x))
        order)

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let m = Bytes.create (String.length magic) in
      (try really_input ic m 0 (String.length magic)
       with End_of_file -> corrupt "%s: truncated header" path);
      if Bytes.to_string m <> magic then
        corrupt "%s: bad magic (not a ppvi checkpoint)" path;
      let v = read_u32 ic in
      if v <> format_version then
        corrupt "%s: unsupported checkpoint version %d (expected %d)" path v
          format_version;
      let t = create () in
      let count = read_u32 ic in
      (try
         for _ = 1 to count do
           let name_len = read_u32 ic in
           let name = really_input_string ic name_len in
           let rank = read_u32 ic in
           let shape = Array.init rank (fun _ -> read_u32 ic) in
           let n = Array.fold_left ( * ) 1 shape in
           let data = Array.init n (fun _ -> read_f64 ic) in
           ensure t name (fun () -> Tensor.of_array shape data)
         done
       with End_of_file -> corrupt "%s: truncated tensor data" path);
      t)

module Frame = struct
  type store = t
  type t = { store : store; leaves : (string, Ad.t) Hashtbl.t; detached : bool }

  let make store = { store; leaves = Hashtbl.create 16; detached = false }
  let make_detached store = { store; leaves = Hashtbl.create 16; detached = true }

  let get f name =
    if f.detached then Ad.const (tensor f.store name)
    else
      match Hashtbl.find_opt f.leaves name with
      | Some leaf -> leaf
      | None ->
        let leaf = Ad.const (tensor f.store name) in
        Hashtbl.add f.leaves name leaf;
        leaf

  let detach f = make_detached f.store
  let get_detached f name = Ad.const (tensor f.store name)

  let params f =
    Hashtbl.fold (fun name leaf acc -> (name, leaf) :: acc) f.leaves []

  let grads f =
    List.map (fun (name, leaf) -> (name, Ad.grad leaf)) (params f)
end
