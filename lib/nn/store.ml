type t = {
  tensors : (string, Tensor.t) Hashtbl.t;
  mutable order : string list;  (* reverse registration order *)
}

let create () = { tensors = Hashtbl.create 16; order = [] }

let ensure t name init =
  if not (Hashtbl.mem t.tensors name) then begin
    Hashtbl.add t.tensors name (init ());
    t.order <- name :: t.order
  end

let mem t name = Hashtbl.mem t.tensors name

let tensor t name =
  match Hashtbl.find_opt t.tensors name with
  | Some x -> x
  | None -> raise Not_found

let set t name x =
  if not (Hashtbl.mem t.tensors name) then raise Not_found;
  Hashtbl.replace t.tensors name x

let names t = List.rev t.order

let parameter_count t =
  Hashtbl.fold (fun _ x acc -> acc + Tensor.size x) t.tensors 0

(* Rebuild each tensor from its raw contents so the copy shares no
   buffers with the original — checkpoint snapshots must stay intact
   even if a backend with in-place tensor mutation is plugged in. *)
let deep_copy_tensor x = Tensor.of_array (Tensor.shape x) (Tensor.to_array x)

let copy t =
  let tensors = Hashtbl.create (Hashtbl.length t.tensors) in
  Hashtbl.iter (fun name x -> Hashtbl.add tensors name (deep_copy_tensor x)) t.tensors;
  { tensors; order = t.order }

let restore t ~from =
  List.iter
    (fun name ->
      let x = deep_copy_tensor (tensor from name) in
      if Hashtbl.mem t.tensors name then Hashtbl.replace t.tensors name x
      else begin
        Hashtbl.add t.tensors name x;
        t.order <- name :: t.order
      end)
    (names from)

(* On-disk format (all integers big-endian):
     magic "PPVISTOR" | version u32 | count u32
     then per tensor, in registration order:
     name_len u32 | name bytes | rank u32 | dims u32* | elems f64*
   Version 2 appends a CRC-32 (IEEE) u32 after each tensor record
   (covering that record's bytes) and a whole-file CRC-32 u32 after the
   last record (covering every preceding byte, header included), so
   both truncation and bit rot are detected before any tensor is
   trusted. Version-1 files (no checksums) remain readable.
   Floats are stored as their IEEE-754 bit patterns, so a round-trip is
   bit-exact (including NaNs and infinities). *)

let magic = "PPVISTOR"
let format_version = 2

exception Corrupt_checkpoint of string

let corrupt fmt = Format.kasprintf (fun s -> raise (Corrupt_checkpoint s)) fmt

module Crc32 = struct
  (* Standard IEEE 802.3 CRC-32, table-driven, over 63-bit ints masked
     to 32 bits — no Int32 boxing on the hot path. *)
  let table =
    lazy
      (Array.init 256 (fun n ->
           let c = ref n in
           for _ = 0 to 7 do
             c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
           done;
           !c))

  let sub s pos len =
    let table = Lazy.force table in
    let c = ref 0xFFFFFFFF in
    for i = pos to pos + len - 1 do
      c := table.((!c lxor Char.code s.[i]) land 0xFF) lxor (!c lsr 8)
    done;
    !c lxor 0xFFFFFFFF
end

(* Serialization into a buffer: checkpoints are at most a few hundred
   MB of parameters, and building the image in memory is what lets the
   save be atomic (single rename) and checksummed. *)

let buf_u32 b n =
  Buffer.add_char b (Char.chr ((n lsr 24) land 0xFF));
  Buffer.add_char b (Char.chr ((n lsr 16) land 0xFF));
  Buffer.add_char b (Char.chr ((n lsr 8) land 0xFF));
  Buffer.add_char b (Char.chr (n land 0xFF))

let buf_f64 b x =
  let bits = Int64.bits_of_float x in
  for i = 7 downto 0 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.shift_right_logical bits (i * 8)) land 0xFF))
  done

let serialize_tensor b crc name x =
  let start = Buffer.length b in
  buf_u32 b (String.length name);
  Buffer.add_string b name;
  let shape = Tensor.shape x in
  buf_u32 b (Array.length shape);
  Array.iter (buf_u32 b) shape;
  Array.iter (buf_f64 b) (Tensor.to_array x);
  if crc then begin
    let record = Buffer.sub b start (Buffer.length b - start) in
    buf_u32 b (Crc32.sub record 0 (String.length record))
  end

let serialize ?(version = format_version) t =
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  buf_u32 b version;
  let order = names t in
  buf_u32 b (List.length order);
  List.iter (fun name -> serialize_tensor b (version >= 2) name (tensor t name)) order;
  if version >= 2 then begin
    let body = Buffer.contents b in
    buf_u32 b (Crc32.sub body 0 (String.length body))
  end;
  Buffer.contents b

(* Atomic durable write: the image lands in a temp file in the target's
   directory, is flushed and fsync'd, and only then renamed over the
   destination — a crash at any point leaves either the old file or the
   new one, never a torn hybrid. Flush/fsync/close failures (ENOSPC,
   EIO) surface as [Sys_error]; they are never swallowed into a
   "successful" truncated checkpoint. *)

let fsync_out oc =
  try Unix.fsync (Unix.descr_of_out_channel oc)
  with Unix.Unix_error (e, _, _) ->
    raise (Sys_error (Printf.sprintf "fsync: %s" (Unix.error_message e)))

let fsync_dir dir =
  (* Best-effort: persists the rename itself. Some filesystems refuse
     directory fsync; that is not worth failing a save over. *)
  match Unix.openfile (if dir = "" then "." else dir) [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error (_, _, _) -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error (_, _, _) -> ());
    (try Unix.close fd with Unix.Unix_error (_, _, _) -> ())

let write_file_atomic ~path data =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let committed = ref false in
  Fun.protect
    ~finally:(fun () ->
      if not !committed then try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin tmp in
      let closed = ref false in
      Fun.protect
        ~finally:(fun () -> if not !closed then close_out_noerr oc)
        (fun () ->
          if Fault.active () then begin
            Fault.on_io ~op:`Write ~path:tmp;
            match Fault.short_write_len ~path:tmp ~full:(String.length data) with
            | Some n ->
              output_substring oc data 0 n;
              flush oc;
              raise (Sys_error (tmp ^ ": injected short write fault"))
            | None -> ()
          end;
          output_string oc data;
          flush oc;
          fsync_out oc;
          closed := true;
          close_out oc);
      Sys.rename tmp path;
      committed := true;
      fsync_dir (Filename.dirname path))

(* Deterministic retry-with-backoff for transient I/O faults: attempt
   [retries] extra times, sleeping [backoff_ms * 2^attempt] between
   tries. The schedule is fixed (no jitter), so a replayed fault plan
   sees the identical sequence of attempts. *)
let with_io_retries ~retries ~backoff_ms ~what f =
  let rec attempt i =
    try f ()
    with Sys_error msg when i < retries ->
      Obs.incr "store/io_retries";
      Obs.message Obs.Fault
        (Printf.sprintf "store: %s failed (%s); retry %d/%d" what msg (i + 1)
           retries);
      if backoff_ms > 0. then
        Unix.sleepf (backoff_ms *. Float.of_int (1 lsl i) /. 1000.);
      attempt (i + 1)
  in
  attempt 0

let save ?(retries = 0) ?(backoff_ms = 10.) t path =
  let data = serialize t in
  with_io_retries ~retries ~backoff_ms ~what:("save to " ^ path) (fun () ->
      write_file_atomic ~path data)

let save_v1 t path =
  write_file_atomic ~path (serialize ~version:1 t)

(* --- Reading --- *)

let get_u32 s pos =
  (Char.code s.[pos] lsl 24)
  lor (Char.code s.[pos + 1] lsl 16)
  lor (Char.code s.[pos + 2] lsl 8)
  lor Char.code s.[pos + 3]

let get_f64 s pos =
  let bits = ref 0L in
  for i = 0 to 7 do
    bits := Int64.logor (Int64.shift_left !bits 8)
        (Int64.of_int (Char.code s.[pos + i]))
  done;
  Int64.float_of_bits !bits

(* Parse the record section shared by both versions from an in-memory
   image. Every length field is validated against the bytes actually
   remaining before any allocation is sized from it, so a corrupt or
   adversarial file raises [Corrupt_checkpoint] — never a multi-GB
   [Array.init] or [Out_of_memory]. *)
let parse_records ~path ~crc s ~pos ~limit ~count =
  let t = create () in
  let pos = ref pos in
  let need n what =
    if n < 0 || n > limit - !pos then
      corrupt "%s: truncated or corrupt %s (need %d bytes, %d remain)" path what
        n (limit - !pos)
  in
  let u32 what =
    need 4 what;
    let v = get_u32 s !pos in
    pos := !pos + 4;
    v
  in
  (* Each tensor record is at least name_len + rank = 8 bytes. *)
  if count < 0 || count > (limit - !pos) / 8 then
    corrupt "%s: absurd tensor count %d for a %d-byte file" path count
      (String.length s);
  for _ = 1 to count do
    let record_start = !pos in
    let name_len = u32 "name length" in
    need name_len "tensor name";
    let name = String.sub s !pos name_len in
    pos := !pos + name_len;
    let rank = u32 "rank" in
    if rank > (limit - !pos) / 4 then
      corrupt "%s: absurd rank %d for tensor %S" path rank name;
    let shape =
      Array.init rank (fun _ ->
          let d = get_u32 s !pos in
          pos := !pos + 4;
          d)
    in
    let n =
      Array.fold_left
        (fun acc d ->
          if d < 0 || (d > 0 && acc > (limit - !pos) / 8 / d) then
            corrupt "%s: absurd dimensions for tensor %S" path name
          else acc * d)
        1 shape
    in
    need (n * 8) "tensor elements";
    let data =
      Array.init n (fun i -> get_f64 s (!pos + (i * 8)))
    in
    pos := !pos + (n * 8);
    if crc then begin
      let stored = u32 "tensor checksum" in
      let actual = Crc32.sub s record_start (!pos - 4 - record_start) in
      if stored <> actual then
        corrupt "%s: checksum mismatch on tensor %S (stored %08x, computed %08x)"
          path name stored actual
    end;
    if mem t name then corrupt "%s: duplicate tensor name %S" path name;
    ensure t name (fun () -> Tensor.of_array shape data)
  done;
  if !pos <> limit then
    corrupt "%s: %d trailing bytes after the last tensor record" path
      (limit - !pos);
  t

let load path =
  if Fault.active () then Fault.on_io ~op:`Read ~path;
  let ic = open_in_bin path in
  let data =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let len = String.length data in
  let header = String.length magic + 8 in
  if len < header then corrupt "%s: truncated header" path;
  if String.sub data 0 (String.length magic) <> magic then
    corrupt "%s: bad magic (not a ppvi checkpoint)" path;
  let version = get_u32 data (String.length magic) in
  let count = get_u32 data (String.length magic + 4) in
  match version with
  | 1 -> parse_records ~path ~crc:false data ~pos:header ~limit:len ~count
  | 2 ->
    if len < header + 4 then corrupt "%s: truncated file checksum" path;
    let stored = get_u32 data (len - 4) in
    let actual = Crc32.sub data 0 (len - 4) in
    if stored <> actual then
      corrupt "%s: file checksum mismatch (stored %08x, computed %08x)" path
        stored actual;
    parse_records ~path ~crc:true data ~pos:header ~limit:(len - 4) ~count
  | v ->
    corrupt "%s: unsupported checkpoint version %d (this build reads 1-%d)" path
      v format_version

(* --- Rotated checkpoints ---

   A checkpoint directory holds [ckpt.N] files (monotonically
   increasing N) plus a [latest] pointer file naming the newest one.
   Both are written atomically, so a crash between the two leaves a
   valid older pointer; [load_latest] trusts the pointer first but
   falls back to a full scan, newest index first, skipping anything
   unreadable. *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let ckpt_prefix = "ckpt."

let ckpt_index name =
  if String.length name > String.length ckpt_prefix
     && String.sub name 0 (String.length ckpt_prefix) = ckpt_prefix
  then
    int_of_string_opt
      (String.sub name (String.length ckpt_prefix)
         (String.length name - String.length ckpt_prefix))
  else None

let list_checkpoints dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
    Array.to_list entries
    |> List.filter_map (fun name ->
           match ckpt_index name with
           | Some i -> Some (i, Filename.concat dir name)
           | None -> None)
    |> List.sort (fun (a, _) (b, _) -> Stdlib.compare b a)

let save_rotated ?(keep = 3) ?(retries = 0) ?(backoff_ms = 10.) t ~dir =
  if keep < 1 then invalid_arg "Store.save_rotated: keep < 1";
  mkdir_p dir;
  let next =
    match list_checkpoints dir with (i, _) :: _ -> i + 1 | [] -> 1
  in
  let name = Printf.sprintf "%s%d" ckpt_prefix next in
  let path = Filename.concat dir name in
  save ~retries ~backoff_ms t path;
  with_io_retries ~retries ~backoff_ms ~what:("update " ^ dir ^ "/latest")
    (fun () ->
      write_file_atomic ~path:(Filename.concat dir "latest") (name ^ "\n"));
  (* Prune beyond the keep-count — newest first, and only after the new
     checkpoint and pointer are durable. *)
  List.iteri
    (fun i (_, p) ->
      if i >= keep then try Sys.remove p with Sys_error _ -> ())
    (list_checkpoints dir);
  path

let latest_pointer dir =
  let pointer = Filename.concat dir "latest" in
  match open_in pointer with
  | exception Sys_error _ -> None
  | ic ->
    let name = try input_line ic with End_of_file -> "" in
    close_in_noerr ic;
    let name = String.trim name in
    if name = "" || Filename.basename name <> name then None
    else
      let path = Filename.concat dir name in
      if Sys.file_exists path then Some path else None

type latest_error =
  | No_directory of string
  | No_checkpoints of string
  | All_corrupt of { dir : string; tried : int }

let latest_error_message = function
  | No_directory dir ->
    Printf.sprintf
      "%s: checkpoint directory does not exist (hint: a checkpointed run \
       creates it; nothing to resume yet)"
      dir
  | No_checkpoints dir ->
    Printf.sprintf
      "%s: directory holds no ckpt.N checkpoints (hint: nothing to resume \
       yet; a checkpointed run writes ckpt.N files plus a latest pointer)"
      dir
  | All_corrupt { dir; tried } ->
    Printf.sprintf "%s: all %d checkpoint candidate(s) are corrupt or unreadable"
      dir tried

let load_latest_result dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    Error (No_directory dir)
  else begin
    let scanned = List.map snd (list_checkpoints dir) in
    let candidates =
      match latest_pointer dir with
      | Some p -> p :: List.filter (fun q -> q <> p) scanned
      | None -> scanned
    in
    let rec try_load = function
      | [] ->
        if candidates = [] then Error (No_checkpoints dir)
        else Error (All_corrupt { dir; tried = List.length candidates })
      | path :: rest -> (
        match load path with
        | t -> Ok (t, path)
        | exception (Corrupt_checkpoint msg | Sys_error msg) ->
          Obs.incr "store/fallbacks";
          Obs.message Obs.Fault
            (Printf.sprintf
               "store: skipping unreadable checkpoint %s (%s); falling back to \
                an older one"
               path msg);
          try_load rest)
    in
    try_load candidates
  end

let load_latest dir =
  match load_latest_result dir with
  | Ok loaded -> Some loaded
  | Error (No_directory _ | No_checkpoints _) -> None
  | Error (All_corrupt _ as e) -> raise (Corrupt_checkpoint (latest_error_message e))

module Frame = struct
  type store = t
  type t = { store : store; leaves : (string, Ad.t) Hashtbl.t; detached : bool }

  let make store = { store; leaves = Hashtbl.create 16; detached = false }
  let make_detached store = { store; leaves = Hashtbl.create 16; detached = true }

  let get f name =
    if f.detached then Ad.const (tensor f.store name)
    else
      match Hashtbl.find_opt f.leaves name with
      | Some leaf -> leaf
      | None ->
        let leaf = Ad.const (tensor f.store name) in
        Hashtbl.add f.leaves name leaf;
        leaf

  let detach f = make_detached f.store
  let get_detached f name = Ad.const (tensor f.store name)

  let params f =
    Hashtbl.fold (fun name leaf acc -> (name, leaf) :: acc) f.leaves []

  let grads f =
    List.map (fun (name, leaf) -> (name, Ad.grad leaf)) (params f)
end
