(* Row-major strides are computed once per tensor and cached in the
   record, so indexed access and broadcast planning never recompute
   them. All construction funnels through [mk]. *)
type t = { shape : int array; data : float array; st : int array }

exception Shape_error of string

let shape_error fmt = Format.kasprintf (fun s -> raise (Shape_error s)) fmt

let shape_size shape = Array.fold_left ( * ) 1 shape

let pp_shape ppf shape =
  Format.fprintf ppf "[%s]"
    (String.concat "; " (Array.to_list (Array.map string_of_int shape)))

(* Row-major strides for a shape. *)
let strides shape =
  let r = Array.length shape in
  let st = Array.make r 1 in
  for i = r - 2 downto 0 do
    st.(i) <- st.(i + 1) * shape.(i + 1)
  done;
  st

let mk shape data = { shape; data; st = strides shape }

(* ------------------------------------------------------------------ *)
(* Buffer pool (the execution arena).

   A pool is a set of size classes keyed by exact buffer length. Each
   class holds its buffers in a growable pointer array with a cursor:
   [alloc] hands out the buffer at the cursor — in steady state this
   touches no allocator at all, only a bounds check and a zero fill —
   and [reset] rewinds every cursor to zero. A compiled training step
   therefore recycles the previous step's buffers instead of
   re-allocating them, and the pool's own bookkeeping contributes
   {e zero} minor words on the hot path (the classic free-list design
   conses a cell per hand-out, which costs more minor allocation than
   it saves for mostly-major-heap tensor buffers).

   Handed-out buffers are zero-filled, so pooled execution is
   bit-identical to fresh allocation. Soundness is the caller's
   contract: [reset] must only run once no tensor built from the
   previous generation's buffers is referenced any longer (the
   compiled executors in [Gen] gate resets on [Ad.backward_epoch] so
   a surrogate's tape is always consumed before its buffers are
   recycled). The ambient pool is domain-local state; worker domains
   spawned by [Parallel] never see the coordinating domain's pool. *)

module Pool = struct
  type slot = {
    mutable bufs : float array array;  (* capacity; first [len] live *)
    mutable len : int;
    mutable cursor : int;  (* next buffer to hand out; <= len *)
  }

  type t = {
    classes : (int, slot) Hashtbl.t;
    mutable slots : slot list;  (* every class, for alloc-free reset *)
    mutable hits : int;
    mutable misses : int;
    mutable floats : int;  (* total floats owned by the pool *)
    mutable resets : int;
  }

  let create () =
    { classes = Hashtbl.create 32;
      slots = [];
      hits = 0;
      misses = 0;
      floats = 0;
      resets = 0 }

  let class_of p n =
    match Hashtbl.find p.classes n with
    | s -> s
    | exception Not_found ->
      let s = { bufs = [||]; len = 0; cursor = 0 } in
      Hashtbl.add p.classes n s;
      p.slots <- s :: p.slots;
      s

  let push s buf =
    if s.len = Array.length s.bufs then begin
      let grown = Array.make (Stdlib.max 4 (2 * s.len)) [||] in
      Array.blit s.bufs 0 grown 0 s.len;
      s.bufs <- grown
    end;
    s.bufs.(s.len) <- buf;
    s.len <- s.len + 1

  let alloc p n =
    let s = class_of p n in
    if s.cursor < s.len then begin
      let buf = s.bufs.(s.cursor) in
      s.cursor <- s.cursor + 1;
      p.hits <- p.hits + 1;
      Array.fill buf 0 n 0.;
      buf
    end
    else begin
      p.misses <- p.misses + 1;
      p.floats <- p.floats + n;
      let buf = Array.make n 0. in
      push s buf;
      s.cursor <- s.len;
      buf
    end

  let reset p =
    List.iter (fun s -> s.cursor <- 0) p.slots;
    p.resets <- p.resets + 1

  (* Seed the size classes from a static layout's predicted extents,
     so the first run already hits. *)
  let warm p sizes =
    List.iter
      (fun n ->
        if n > 0 then begin
          p.floats <- p.floats + n;
          push (class_of p n) (Array.make n 0.)
        end)
      sizes

  let hits p = p.hits
  let misses p = p.misses
  let floats p = p.floats
  let bytes p = 8 * p.floats
  let resets p = p.resets
end

(* The ambient pool. Domain-local so a pool installed on the
   coordinating domain is invisible to [Parallel] workers (which only
   ever write into caller-allocated buffers anyway). *)
let pool_key : Pool.t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)
let current_pool () = Domain.DLS.get pool_key
let set_pool p = Domain.DLS.set pool_key p

(* Every op-output allocation funnels through here (the zero fill is
   what [Array.make n 0.] provided). Copy-semantics constructors
   ([of_array], [copy], [to_array]) deliberately do not: their results
   are the ones callers retain across steps. *)
let alloc n =
  match Domain.DLS.get pool_key with
  | Some p -> Pool.alloc p n
  | None -> Array.make n 0.

(* Construction *)

let of_array shape data =
  let n = shape_size shape in
  if Array.length data <> n then
    shape_error "of_array: %d elements for shape %a" (Array.length data)
      pp_shape shape;
  mk (Array.copy shape) (Array.copy data)

let scalar x = mk [||] [| x |]
let zeros shape = mk (Array.copy shape) (alloc (shape_size shape))

let filled shape x =
  let n = shape_size shape in
  let data = alloc n in
  Array.fill data 0 n x;
  mk (Array.copy shape) data

let ones shape = filled shape 1.
let full shape x = filled shape x

let of_list1 xs = of_array [| List.length xs |] (Array.of_list xs)

let of_list2 rows =
  match rows with
  | [] -> mk [| 0; 0 |] [||]
  | first :: _ ->
    let ncols = List.length first in
    let nrows = List.length rows in
    let data = Array.make (nrows * ncols) 0. in
    List.iteri
      (fun i row ->
        if List.length row <> ncols then
          shape_error "of_list2: ragged row %d" i;
        List.iteri (fun j x -> data.((i * ncols) + j) <- x) row)
      rows;
    mk [| nrows; ncols |] data

let flat_index shape st ix =
  if Array.length ix <> Array.length shape then
    shape_error "index rank %d for shape %a" (Array.length ix) pp_shape shape;
  let off = ref 0 in
  Array.iteri
    (fun d i ->
      if i < 0 || i >= shape.(d) then
        shape_error "index %d out of bounds in dim %d of %a" i d pp_shape shape;
      off := !off + (i * st.(d)))
    ix;
  !off

let init shape f =
  let n = shape_size shape in
  let r = Array.length shape in
  let ix = Array.make r 0 in
  let data = alloc n in
  for flat = 0 to n - 1 do
    data.(flat) <- f ix;
    (* advance the multi-index, rightmost dimension fastest *)
    let d = ref (r - 1) in
    let carry = ref true in
    while !carry && !d >= 0 do
      ix.(!d) <- ix.(!d) + 1;
      if ix.(!d) >= shape.(!d) then begin
        ix.(!d) <- 0;
        decr d
      end
      else carry := false
    done
  done;
  mk (Array.copy shape) data

let eye n = init [| n; n |] (fun ix -> if ix.(0) = ix.(1) then 1. else 0.)

(* Inspection *)

let shape t = Array.copy t.shape
let rank t = Array.length t.shape
let size t = Array.length t.data
let same_shape a b = a.shape = b.shape
let get t ix = t.data.(flat_index t.shape t.st ix)
let get_flat t i = t.data.(i)

let to_scalar t =
  if Array.length t.data <> 1 then
    shape_error "to_scalar: shape %a" pp_shape t.shape;
  t.data.(0)

let to_array t = Array.copy t.data
let is_scalar t = Array.length t.data = 1 && Array.length t.shape = 0

(* In-place operations. These mutate the tensor's buffer directly; the
   caller must own that buffer exclusively. Beware that [reshape] and
   [flatten] share buffers with their argument. *)

let copy t = { t with data = Array.copy t.data }

let fill_ t x = Kernel.fill t.data x
let scale_ c t = Kernel.scale_into c t.data

let require_same_shape name dst src =
  if dst.shape <> src.shape then
    shape_error "%s: %a vs %a" name pp_shape dst.shape pp_shape src.shape

let add_ dst src =
  require_same_shape "add_" dst src;
  Kernel.add_into dst.data src.data

let axpy ~alpha ~x y =
  require_same_shape "axpy" y x;
  Kernel.axpy_into alpha x.data y.data

let map2_ f dst src =
  require_same_shape "map2_" dst src;
  Kernel.map2_into f dst.data src.data dst.data

(* Elementwise *)

let map f t =
  let out = alloc (Array.length t.data) in
  Kernel.map_into f t.data out;
  { t with data = out }

let broadcast_shapes a b =
  let ra = Array.length a and rb = Array.length b in
  let r = Stdlib.max ra rb in
  Array.init r (fun i ->
      let da = if i + ra - r >= 0 then a.(i + ra - r) else 1 in
      let db = if i + rb - r >= 0 then b.(i + rb - r) else 1 in
      if da = db then da
      else if da = 1 then db
      else if db = 1 then da
      else shape_error "broadcast: %a vs %a" pp_shape a pp_shape b)

(* Map a flat index in [out_shape] to the flat index in [shape] obtained
   by broadcasting: broadcast dimensions contribute stride 0. *)
let broadcast_strides_of shape st out_shape =
  let r = Array.length out_shape and rs = Array.length shape in
  Array.init r (fun i ->
      let j = i + rs - r in
      if j < 0 || shape.(j) = 1 then 0 else st.(j))

(* Broadcast plans — the output shape and both operands' broadcast
   strides — are memoized per shape pair, so repeated binary maps over
   the same shapes (each training step replays the same graph) skip the
   planning arithmetic. Guarded by a mutex: plans may be requested while
   worker domains exist, and the table is shared. *)

type bplan = { out_shape : int array; sa : int array; sb : int array }

let plan_table : (int array * int array, bplan) Hashtbl.t = Hashtbl.create 64
let plan_mutex = Mutex.create ()

let broadcast_plan a b =
  Mutex.lock plan_mutex;
  let found = Hashtbl.find_opt plan_table (a.shape, b.shape) in
  Mutex.unlock plan_mutex;
  match found with
  | Some p -> p
  | None ->
    (* Built outside the lock: [broadcast_shapes] raises on incompatible
       shapes, and an exception must not leave the mutex held. *)
    let out_shape = broadcast_shapes a.shape b.shape in
    let p =
      { out_shape;
        sa = broadcast_strides_of a.shape a.st out_shape;
        sb = broadcast_strides_of b.shape b.st out_shape }
    in
    Mutex.lock plan_mutex;
    if Hashtbl.length plan_table > 1024 then Hashtbl.reset plan_table;
    Hashtbl.add plan_table (Array.copy a.shape, Array.copy b.shape) p;
    Mutex.unlock plan_mutex;
    p

(* The last dimensions coincide and every other dimension of [b] is
   missing: [b] tiles along rows of [a]. *)
let row_broadcast a b =
  let ra = Array.length a.shape in
  Array.length b.shape = 1 && ra >= 1
  && a.shape.(ra - 1) = b.shape.(0)
  && Array.length b.data > 0

let map2 f a b =
  if a.shape = b.shape then begin
    let out = alloc (Array.length a.data) in
    Kernel.map2_into f a.data b.data out;
    { a with data = out }
  end
  else if Array.length b.data = 1 && Array.length b.shape <= Array.length a.shape
  then begin
    (* [b] broadcasts as a scalar over [a]. *)
    let c = b.data.(0) in
    let out = alloc (Array.length a.data) in
    Kernel.map_into (fun x -> f x c) a.data out;
    { a with data = out }
  end
  else if Array.length a.data = 1 && Array.length a.shape <= Array.length b.shape
  then begin
    let c = a.data.(0) in
    let out = alloc (Array.length b.data) in
    Kernel.map_into (fun y -> f c y) b.data out;
    { b with data = out }
  end
  else if row_broadcast a b then begin
    (* Common bias-add pattern: [| ...; n |] (+) [| n |]. *)
    let n = b.shape.(0) in
    let out = alloc (Array.length a.data) in
    let rows = Array.length a.data / n in
    for r = 0 to rows - 1 do
      let base = r * n in
      for j = 0 to n - 1 do
        out.(base + j) <- f a.data.(base + j) b.data.(j)
      done
    done;
    { a with data = out }
  end
  else begin
    let { out_shape; sa; sb } = broadcast_plan a b in
    let data = alloc (shape_size out_shape) in
    Kernel.broadcast_map2_into f a.data sa b.data sb out_shape data;
    mk out_shape data
  end

let broadcast_to t out_shape =
  (* Like the historical [map2 (fun x _ -> x) t (zeros out_shape)], but
     without materializing (or walking) a throwaway zero tensor: only
     broadcast strides of [t] are needed. Shapes must be
     broadcast-compatible; dimensions of [t] exceeding [out_shape]
     survive into the result, as with [map2]. *)
  let bshape = broadcast_shapes t.shape out_shape in
  let sst = broadcast_strides_of t.shape t.st bshape in
  let data = alloc (shape_size bshape) in
  Kernel.broadcast_copy_into t.data sst bshape data;
  mk bshape data

(* Arithmetic. The named ops route through the specialized kernels in
   [Kernel] rather than the generic closure-taking [map]/[map2]: without
   flambda a [float -> float] closure call boxes its argument and result,
   which on the training hot path costs more in allocation (and GC) than
   the arithmetic itself. Results are bit-identical — the kernels inline
   the exact float expressions the closures computed. *)

let unary k t =
  let out = alloc (Array.length t.data) in
  k t.data out;
  { t with data = out }

(* Binary op with the same shape/broadcast dispatch as [map2], but with
   one specialized kernel per leg shape. [same]/[aconst]/[consta]/[row]
   cover the dispatch cases; exotic broadcasts fall back to the generic
   strided walk with the op as a closure. *)
let binary ~same ~aconst ~consta ~row ~f a b =
  if a.shape = b.shape then begin
    let out = alloc (Array.length a.data) in
    same a.data b.data out;
    { a with data = out }
  end
  else if Array.length b.data = 1 && Array.length b.shape <= Array.length a.shape
  then begin
    let c = b.data.(0) in
    let out = alloc (Array.length a.data) in
    aconst a.data c out;
    { a with data = out }
  end
  else if Array.length a.data = 1 && Array.length a.shape <= Array.length b.shape
  then begin
    let c = a.data.(0) in
    let out = alloc (Array.length b.data) in
    consta c b.data out;
    { b with data = out }
  end
  else if row_broadcast a b then begin
    let n = b.shape.(0) in
    let out = alloc (Array.length a.data) in
    row a.data b.data n out;
    { a with data = out }
  end
  else begin
    let { out_shape; sa; sb } = broadcast_plan a b in
    let data = alloc (shape_size out_shape) in
    Kernel.broadcast_map2_into f a.data sa b.data sb out_shape data;
    mk out_shape data
  end

let add =
  binary ~same:Kernel.add2_into ~aconst:Kernel.add_const_into
    ~consta:Kernel.const_add_into ~row:Kernel.row_add_into ~f:( +. )

let sub =
  binary ~same:Kernel.sub2_into ~aconst:Kernel.sub_const_into
    ~consta:Kernel.const_sub_into ~row:Kernel.row_sub_into ~f:( -. )

let mul =
  binary ~same:Kernel.mul2_into ~aconst:Kernel.mul_const_into
    ~consta:Kernel.const_mul_into ~row:Kernel.row_mul_into ~f:( *. )

let div =
  binary ~same:Kernel.div2_into ~aconst:Kernel.div_const_into
    ~consta:Kernel.const_div_into ~row:Kernel.row_div_into ~f:( /. )

let neg = unary Kernel.neg_into
let scale c = unary (Kernel.scale_map_into c)
let add_scalar c = unary (Kernel.add_scalar_into c)
let pow_scalar t p = map (fun x -> Float.pow x p) t
let exp = unary Kernel.exp_into
let log = unary Kernel.log_into
let sqrt = unary Kernel.sqrt_into
let sigmoid = unary Kernel.sigmoid_into
let tanh = unary Kernel.tanh_into
let relu = unary Kernel.relu_into
let softplus = unary Kernel.softplus_into
let recip = unary Kernel.recip_into
let sigmoid_deriv = unary Kernel.sigmoid_deriv_into

let clip ~min ~max t =
  map (fun x -> if x < min then min else if x > max then max else x) t

let global_norm ts =
  (* Scale by the largest magnitude so the sum of squares cannot
     overflow for norms near the float range. *)
  let peak =
    List.fold_left
      (fun acc t ->
        Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) acc t.data)
      0. ts
  in
  if peak = 0. then 0.
  else if not (Float.is_finite peak) then peak
  else begin
    let total = ref 0. in
    List.iter
      (fun t ->
        Array.iter
          (fun x ->
            let r = x /. peak in
            total := !total +. (r *. r))
          t.data)
      ts;
    peak *. Float.sqrt !total
  end

let clip_by_global_norm ~max_norm ts =
  if max_norm <= 0. then invalid_arg "Tensor.clip_by_global_norm: max_norm <= 0";
  let norm = global_norm ts in
  if norm <= max_norm || not (Float.is_finite norm) then ts
  else begin
    let s = max_norm /. norm in
    List.map (fun t -> { t with data = Array.map (fun x -> x *. s) t.data }) ts
  end

(* Reductions *)

let sum t = Array.fold_left ( +. ) 0. t.data
let mean t = sum t /. float_of_int (Stdlib.max 1 (Array.length t.data))
let max_elt t = Array.fold_left Float.max Float.neg_infinity t.data
let min_elt t = Array.fold_left Float.min Float.infinity t.data
let sum_keep t = scalar (sum t)

let sum_axis ax t =
  let r = Array.length t.shape in
  if ax < 0 || ax >= r then shape_error "sum_axis %d of %a" ax pp_shape t.shape;
  let out_shape =
    Array.of_list
      (List.filteri (fun i _ -> i <> ax) (Array.to_list t.shape))
  in
  let out = zeros out_shape in
  let n = Array.length t.data in
  let inner = t.st.(ax) in
  let axis_len = t.shape.(ax) in
  let outer_stride = inner * axis_len in
  let nblocks = if outer_stride = 0 then 0 else n / outer_stride in
  (* Nested loops visit flat indices in ascending order, so each output
     element accumulates its terms in the same order as the historical
     div/mod formulation — only the index arithmetic changed. *)
  let src = t.data and dst = out.data in
  for block = 0 to nblocks - 1 do
    let ibase = block * outer_stride and jbase = block * inner in
    for a = 0 to axis_len - 1 do
      let arow = ibase + (a * inner) in
      for w = 0 to inner - 1 do
        Array.unsafe_set dst (jbase + w)
          (Array.unsafe_get dst (jbase + w) +. Array.unsafe_get src (arow + w))
      done
    done
  done;
  out

let mean_axis ax t =
  let len = float_of_int t.shape.(ax) in
  scale (1. /. len) (sum_axis ax t)

let argmax t =
  let best = ref 0 in
  Array.iteri (fun i x -> if x > t.data.(!best) then best := i) t.data;
  !best

let logsumexp t =
  let m = max_elt t in
  if m = Float.neg_infinity then Float.neg_infinity
  else
    m
    +. Float.log
         (Array.fold_left (fun acc x -> acc +. Float.exp (x -. m)) 0. t.data)

let softmax t =
  let lse = logsumexp t in
  map (fun x -> Float.exp (x -. lse)) t

let max_axis ax t =
  let r = Array.length t.shape in
  if ax < 0 || ax >= r then shape_error "max_axis %d of %a" ax pp_shape t.shape;
  let out_shape =
    Array.of_list
      (List.filteri (fun i _ -> i <> ax) (Array.to_list t.shape))
  in
  let out = full out_shape Float.neg_infinity in
  let n = Array.length t.data in
  let inner = t.st.(ax) in
  let axis_len = t.shape.(ax) in
  let outer_stride = inner * axis_len in
  let nblocks = if outer_stride = 0 then 0 else n / outer_stride in
  let src = t.data and dst = out.data in
  for block = 0 to nblocks - 1 do
    let ibase = block * outer_stride and jbase = block * inner in
    for a = 0 to axis_len - 1 do
      let arow = ibase + (a * inner) in
      for w = 0 to inner - 1 do
        Array.unsafe_set dst (jbase + w)
          (Float.max
             (Array.unsafe_get dst (jbase + w))
             (Array.unsafe_get src (arow + w)))
      done
    done
  done;
  out

let logsumexp_axis ax t =
  let r = Array.length t.shape in
  if ax < 0 || ax >= r then
    shape_error "logsumexp_axis %d of %a" ax pp_shape t.shape;
  let m = max_axis ax t in
  let out = zeros (Array.copy m.shape) in
  let n = Array.length t.data in
  let inner = t.st.(ax) in
  let axis_len = t.shape.(ax) in
  let outer_stride = inner * axis_len in
  let nblocks = if outer_stride = 0 then 0 else n / outer_stride in
  let src = t.data and dst = out.data and mx = m.data in
  for block = 0 to nblocks - 1 do
    let ibase = block * outer_stride and jbase = block * inner in
    for a = 0 to axis_len - 1 do
      let arow = ibase + (a * inner) in
      for w = 0 to inner - 1 do
        let mj = Array.unsafe_get mx (jbase + w) in
        (* When every term is -inf the max-shift would produce NaN; the
           accumulator stays 0 and the final log gives -inf below. *)
        if mj > Float.neg_infinity then
          Array.unsafe_set dst (jbase + w)
            (Array.unsafe_get dst (jbase + w)
            +. Float.exp (Array.unsafe_get src (arow + w) -. mj))
      done
    done
  done;
  Array.iteri
    (fun j s ->
      dst.(j) <-
        (if mx.(j) = Float.neg_infinity then Float.neg_infinity
         else mx.(j) +. Float.log s))
    (Array.copy dst);
  out

(* Fused Bernoulli-with-logits row scoring. The compositional form
   [-(x * softplus (-l) + (1 - x) * softplus l)] walks the operands
   eight times and allocates as many temporaries; on the batched
   likelihood path this is the hot scoring kernel, so it gets one fused
   pass over the broadcast of [logits] and [x], summing all trailing
   axes into the per-row score [x*l - softplus l]. *)

(* The plan for one fused scoring pass: broadcast shape [n x tail] plus
   each operand's row stride — [tail] when the operand carries the row
   axis, [0] when it tiles along rows. Operands with exotic broadcast
   patterns are materialized to the full shape. *)
let bernoulli_logits_plan logits x =
  let bshape = broadcast_shapes logits.shape x.shape in
  if Array.length bshape < 1 then
    shape_error "bernoulli_logits_scores: scalar operands";
  let n = bshape.(0) in
  let size = shape_size bshape in
  let tail = if n = 0 then 0 else size / n in
  let leg t =
    let ts = Array.length t.data in
    if ts = size then (t.data, tail)
    else if ts = tail && shape_size (Array.sub bshape 1 (Array.length bshape - 1)) = tail
    then (t.data, 0)
    else ((broadcast_to t bshape).data, tail)
  in
  let ld, lst = leg logits and xd, xst = leg x in
  (bshape, n, tail, ld, lst, xd, xst)

let bernoulli_logits_scores_fwd ~logits ~x =
  let bshape, n, tail, l, lst, xd, xst = bernoulli_logits_plan logits x in
  let out = alloc n in
  let sg = alloc (shape_size bshape) in
  for i = 0 to n - 1 do
    let lbase = i * lst and xbase = i * xst and sbase = i * tail in
    let acc = ref 0. in
    for j = 0 to tail - 1 do
      let lij = Array.unsafe_get l (lbase + j) in
      (* softplus with the same >30 cutoff as [softplus]; the exp is
         shared with the sigmoid cached for the backward pass. *)
      let sp, s =
        if lij > 30. then (lij, 1. /. (1. +. Float.exp (-.lij)))
        else begin
          let e = Float.exp lij in
          (Float.log (1. +. e), e /. (1. +. e))
        end
      in
      Array.unsafe_set sg (sbase + j) s;
      acc := !acc +. ((Array.unsafe_get xd (xbase + j) *. lij) -. sp)
    done;
    out.(i) <- !acc
  done;
  (mk [| n |] out, mk bshape sg)

let bernoulli_logits_scores ~logits ~x =
  fst (bernoulli_logits_scores_fwd ~logits ~x)

(* Cotangent into [logits] at the broadcast shape (callers reduce back
   to the operand shape): [g_i * (x - sigma)], with [g] the per-row
   cotangent and [sigma] the forward pass's cached sigmoid. *)
let bernoulli_logits_scores_vjp ~sigma ~x ~g =
  let n = sigma.shape.(0) in
  let tail = if n = 0 then 0 else Array.length sigma.data / n in
  let xd, xst =
    if Array.length x.data = Array.length sigma.data then (x.data, tail)
    else if Array.length x.data = tail then (x.data, 0)
    else ((broadcast_to x sigma.shape).data, tail)
  in
  let out = alloc (Array.length sigma.data) in
  let sd = sigma.data and gd = g.data in
  for i = 0 to n - 1 do
    let base = i * tail and xbase = i * xst in
    let gi = Array.unsafe_get gd i in
    for j = 0 to tail - 1 do
      Array.unsafe_set out (base + j)
        (gi
        *. (Array.unsafe_get xd (xbase + j) -. Array.unsafe_get sd (base + j)))
    done
  done;
  mk (Array.copy sigma.shape) out

(* Linear algebra *)

let matmul a b =
  match (Array.length a.shape, Array.length b.shape) with
  | 2, 2 ->
    let m = a.shape.(0) and k = a.shape.(1) in
    let k' = b.shape.(0) and n = b.shape.(1) in
    if k <> k' then
      shape_error "matmul: %a x %a" pp_shape a.shape pp_shape b.shape;
    let data = alloc (m * n) in
    Kernel.matmul ~m ~k ~n a.data b.data data;
    mk [| m; n |] data
  | 2, 1 ->
    let m = a.shape.(0) and k = a.shape.(1) in
    if k <> b.shape.(0) then
      shape_error "matmul: %a x %a" pp_shape a.shape pp_shape b.shape;
    let data = alloc m in
    Kernel.matvec ~m ~k a.data b.data data;
    mk [| m |] data
  | 1, 2 ->
    let k = a.shape.(0) in
    let k' = b.shape.(0) and n = b.shape.(1) in
    if k <> k' then
      shape_error "matmul: %a x %a" pp_shape a.shape pp_shape b.shape;
    let data = alloc n in
    Kernel.vecmat ~k ~n a.data b.data data;
    mk [| n |] data
  | ra, rb -> shape_error "matmul: ranks %d and %d" ra rb

let matmul_t a b =
  match (Array.length a.shape, Array.length b.shape) with
  | 2, 2 ->
    let m = a.shape.(0) and k = a.shape.(1) in
    let n = b.shape.(0) and k' = b.shape.(1) in
    if k <> k' then
      shape_error "matmul_t: %a x %a^T" pp_shape a.shape pp_shape b.shape;
    let data = alloc (m * n) in
    Kernel.matmul_t ~m ~k ~n a.data b.data data;
    mk [| m; n |] data
  | ra, rb -> shape_error "matmul_t: ranks %d and %d" ra rb

let t_matmul a b =
  match (Array.length a.shape, Array.length b.shape) with
  | 2, 2 ->
    let m = a.shape.(0) and k = a.shape.(1) in
    let m' = b.shape.(0) and n = b.shape.(1) in
    if m <> m' then
      shape_error "t_matmul: %a^T x %a" pp_shape a.shape pp_shape b.shape;
    let data = alloc (k * n) in
    Kernel.t_matmul ~m ~k ~n a.data b.data data;
    mk [| k; n |] data
  | 2, 1 ->
    let m = a.shape.(0) and k = a.shape.(1) in
    if m <> b.shape.(0) then
      shape_error "t_matmul: %a^T x %a" pp_shape a.shape pp_shape b.shape;
    let data = alloc k in
    Kernel.t_matvec ~m ~k a.data b.data data;
    mk [| k |] data
  | ra, rb -> shape_error "t_matmul: ranks %d and %d" ra rb

let transpose t =
  match Array.length t.shape with
  | 0 | 1 -> t
  | 2 ->
    let m = t.shape.(0) and n = t.shape.(1) in
    let data = alloc (m * n) in
    for i = 0 to m - 1 do
      for j = 0 to n - 1 do
        data.((j * m) + i) <- t.data.((i * n) + j)
      done
    done;
    mk [| n; m |] data
  | r -> shape_error "transpose: rank %d" r

let dot a b =
  if Array.length a.data <> Array.length b.data then
    shape_error "dot: sizes %d and %d" (Array.length a.data)
      (Array.length b.data);
  let acc = ref 0. in
  Array.iteri (fun i x -> acc := !acc +. (x *. b.data.(i))) a.data;
  !acc

let outer a b =
  if Array.length a.shape <> 1 || Array.length b.shape <> 1 then
    shape_error "outer: ranks %d and %d" (Array.length a.shape)
      (Array.length b.shape);
  let m = a.shape.(0) and n = b.shape.(0) in
  init [| m; n |] (fun ix -> a.data.(ix.(0)) *. b.data.(ix.(1)))

(* Structural *)

let reshape new_shape t =
  if shape_size new_shape <> Array.length t.data then
    shape_error "reshape %a to %a" pp_shape t.shape pp_shape new_shape;
  mk (Array.copy new_shape) t.data

let flatten t = reshape [| Array.length t.data |] t

let concat0 ts =
  match ts with
  | [] -> shape_error "concat0: empty list"
  | first :: rest ->
    let tail_shape t = Array.sub t.shape 1 (Array.length t.shape - 1) in
    if rank first = 0 then shape_error "concat0: rank-0 operand";
    List.iter
      (fun t ->
        if tail_shape t <> tail_shape first then
          shape_error "concat0: %a vs %a" pp_shape t.shape pp_shape first.shape)
      rest;
    let total0 = List.fold_left (fun acc t -> acc + t.shape.(0)) 0 ts in
    let out_shape = Array.copy first.shape in
    out_shape.(0) <- total0;
    let data = alloc (shape_size out_shape) in
    let off = ref 0 in
    List.iter
      (fun t ->
        Array.blit t.data 0 data !off (Array.length t.data);
        off := !off + Array.length t.data)
      ts;
    mk out_shape data

let stack0 ts =
  match ts with
  | [] -> shape_error "stack0: empty list"
  | first :: rest ->
    List.iter
      (fun t ->
        if t.shape <> first.shape then
          shape_error "stack0: %a vs %a" pp_shape t.shape pp_shape first.shape)
      rest;
    let out_shape = Array.append [| List.length ts |] first.shape in
    let data = alloc (shape_size out_shape) in
    List.iteri
      (fun i t -> Array.blit t.data 0 data (i * Array.length t.data)
          (Array.length t.data))
      ts;
    mk out_shape data

let slice0 t i =
  if rank t = 0 then shape_error "slice0: rank-0 tensor";
  if i < 0 || i >= t.shape.(0) then
    shape_error "slice0: index %d of %a" i pp_shape t.shape;
  let sub_shape = Array.sub t.shape 1 (Array.length t.shape - 1) in
  let n = shape_size sub_shape in
  let data = alloc n in
  Array.blit t.data (i * n) data 0 n;
  mk sub_shape data

let rows t = List.init t.shape.(0) (slice0 t)
let take_rows t ixs = stack0 (List.map (slice0 t) ixs)

(* Comparison and printing *)

let equal a b = a.shape = b.shape && a.data = b.data

let approx_equal ?(tol = 1e-9) a b =
  a.shape = b.shape
  && Array.length a.data = Array.length b.data
  &&
  let ok = ref true in
  Array.iteri
    (fun i x -> if Float.abs (x -. b.data.(i)) > tol then ok := false)
    a.data;
  !ok

let all_finite t = Array.for_all Float.is_finite t.data

let pp ppf t =
  match Array.length t.shape with
  | 0 -> Format.fprintf ppf "%g" t.data.(0)
  | 1 ->
    Format.fprintf ppf "[%s]"
      (String.concat " "
         (Array.to_list (Array.map (Format.sprintf "%g") t.data)))
  | _ ->
    Format.fprintf ppf "tensor%a{%s%s}" pp_shape t.shape
      (String.concat " "
         (List.filteri
            (fun i _ -> i < 8)
            (Array.to_list (Array.map (Format.sprintf "%g") t.data))))
      (if Array.length t.data > 8 then " ..." else "")

let to_string t = Format.asprintf "%a" pp t
