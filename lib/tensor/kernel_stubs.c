/* C bodies for the matrix-product block kernels.

   Each function computes ONE row block of the corresponding OCaml
   kernel in [kernel.ml], with the exact loop structure, accumulation
   order, and zero-skip semantics of the OCaml reference — so results
   stay bit-for-bit identical (enforced by test/test_kernel.ml).

   Why C at all: the inner saxpy loops update independent output
   elements, so the compiler may vectorize them without reordering any
   single element's accumulation chain. OCaml's native compiler never
   vectorizes; gcc -O3 does, which is worth ~2-4x on the matmul-bound
   training step. Crucially the flags (see dune) include
   -ffp-contract=off: fused multiply-adds round differently from the
   separate multiply and add the OCaml kernels perform, and would
   silently break bit-identity.

   Float arrays are passed unboxed: an OCaml [float array] is a
   contiguous block of doubles, and none of these stubs allocate or
   release the runtime lock, so raw pointers stay valid for the call. */

#include <caml/mlvalues.h>

#define DATA(v) ((double *)(v))

/* c[i, jlo..jhi) += a[i, p] * b[p, jlo..jhi) for i in [lo, hi), with
   the column tile applied by the OCaml caller. Skips a[i,p] == 0 like
   the reference. */
CAMLprim value ppvi_matmul_block(value va, value vb, value vc, value vm,
                                 value vk, value vn, value vlo, value vhi,
                                 value vjlo, value vjhi) {
  (void)vm;
  const double *a = DATA(va), *b = DATA(vb);
  double *c = DATA(vc);
  long k = Long_val(vk), n = Long_val(vn);
  long lo = Long_val(vlo), hi = Long_val(vhi);
  long jlo = Long_val(vjlo), jhi = Long_val(vjhi);
  for (long i = lo; i < hi; i++) {
    const double *arow = a + i * k;
    double *crow = c + i * n;
    for (long p = 0; p < k; p++) {
      double aip = arow[p];
      if (aip != 0.) {
        const double *brow = b + p * n;
        for (long j = jlo; j < jhi; j++) crow[j] += aip * brow[j];
      }
    }
  }
  return Val_unit;
}

CAMLprim value ppvi_matmul_block_bc(value *argv, int argn) {
  (void)argn;
  return ppvi_matmul_block(argv[0], argv[1], argv[2], argv[3], argv[4],
                           argv[5], argv[6], argv[7], argv[8], argv[9]);
}

/* c[i, j] = sum_p a[i, p] * b[j, p] for i in [lo, hi): the A * B^T
   form. Sequential accumulation per output element, no zero-skip —
   matching the OCaml matmul_t. The p-chain is a single dependent
   accumulator, so this one gains only scalar codegen, not SIMD. */
CAMLprim value ppvi_matmul_t_block(value va, value vb, value vc, value vk,
                                   value vn, value vlo, value vhi) {
  const double *a = DATA(va), *b = DATA(vb);
  double *c = DATA(vc);
  long k = Long_val(vk), n = Long_val(vn);
  long lo = Long_val(vlo), hi = Long_val(vhi);
  for (long i = lo; i < hi; i++) {
    const double *arow = a + i * k;
    double *crow = c + i * n;
    for (long j = 0; j < n; j++) {
      const double *brow = b + j * k;
      double acc = 0.;
      for (long p = 0; p < k; p++) acc += arow[p] * brow[p];
      crow[j] = acc;
    }
  }
  return Val_unit;
}

CAMLprim value ppvi_matmul_t_block_bc(value *argv, int argn) {
  (void)argn;
  return ppvi_matmul_t_block(argv[0], argv[1], argv[2], argv[3], argv[4],
                             argv[5], argv[6]);
}

/* c[p, 0..n) += a[i, p] * b[i, 0..n) for p in [plo, phi), i ascending:
   the A^T * B form. Skips a[i,p] == 0 like the reference. */
CAMLprim value ppvi_t_matmul_block(value va, value vb, value vc, value vm,
                                   value vk, value vn, value vplo,
                                   value vphi) {
  const double *a = DATA(va), *b = DATA(vb);
  double *c = DATA(vc);
  long m = Long_val(vm), k = Long_val(vk), n = Long_val(vn);
  long plo = Long_val(vplo), phi = Long_val(vphi);
  for (long i = 0; i < m; i++) {
    const double *arow = a + i * k;
    const double *brow = b + i * n;
    for (long p = plo; p < phi; p++) {
      double aip = arow[p];
      if (aip != 0.) {
        double *crow = c + p * n;
        for (long j = 0; j < n; j++) crow[j] += aip * brow[j];
      }
    }
  }
  return Val_unit;
}

CAMLprim value ppvi_t_matmul_block_bc(value *argv, int argn) {
  (void)argn;
  return ppvi_t_matmul_block(argv[0], argv[1], argv[2], argv[3], argv[4],
                             argv[5], argv[6], argv[7]);
}

/* y[i] = sum_p a[i, p] * x[p] for i in [lo, hi). Sequential per-output
   accumulation, no zero-skip — matching the OCaml matvec. */
CAMLprim value ppvi_matvec_block(value va, value vx, value vy, value vk,
                                 value vlo, value vhi) {
  const double *a = DATA(va), *x = DATA(vx);
  double *y = DATA(vy);
  long k = Long_val(vk);
  long lo = Long_val(vlo), hi = Long_val(vhi);
  for (long i = lo; i < hi; i++) {
    const double *arow = a + i * k;
    double acc = 0.;
    for (long p = 0; p < k; p++) acc += arow[p] * x[p];
    y[i] = acc;
  }
  return Val_unit;
}

/* y[plo..phi) += x[i] * a[i, plo..phi), i ascending — A^T x. Skips
   x[i] == 0 like the reference ([t_matvec] via [saxpy_row]). */
CAMLprim value ppvi_t_matvec_block(value va, value vx, value vy, value vm,
                                   value vk, value vplo, value vphi) {
  const double *a = DATA(va), *x = DATA(vx);
  double *y = DATA(vy);
  long m = Long_val(vm), k = Long_val(vk);
  long plo = Long_val(vplo), phi = Long_val(vphi);
  for (long i = 0; i < m; i++) {
    double xi = x[i];
    if (xi != 0.) {
      const double *arow = a + i * k;
      for (long p = plo; p < phi; p++) y[p] += xi * arow[p];
    }
  }
  return Val_unit;
}

/* y[jlo..jhi) += x[p] * b[p, jlo..jhi), p ascending — x B. Skips
   x[p] == 0 like the reference. */
CAMLprim value ppvi_vecmat_block(value vx, value vb, value vy, value vk,
                                 value vn, value vjlo, value vjhi) {
  const double *x = DATA(vx), *b = DATA(vb);
  double *y = DATA(vy);
  long k = Long_val(vk), n = Long_val(vn);
  long jlo = Long_val(vjlo), jhi = Long_val(vjhi);
  for (long p = 0; p < k; p++) {
    double xp = x[p];
    if (xp != 0.) {
      const double *brow = b + p * n;
      for (long j = jlo; j < jhi; j++) y[j] += xp * brow[j];
    }
  }
  return Val_unit;
}

CAMLprim value ppvi_vecmat_block_bc(value *argv, int argn) {
  (void)argn;
  return ppvi_vecmat_block(argv[0], argv[1], argv[2], argv[3], argv[4],
                           argv[5], argv[6]);
}

CAMLprim value ppvi_t_matvec_block_bc(value *argv, int argn) {
  (void)argn;
  return ppvi_t_matvec_block(argv[0], argv[1], argv[2], argv[3], argv[4],
                             argv[5], argv[6]);
}

CAMLprim value ppvi_matvec_block_bc(value *argv, int argn) {
  (void)argn;
  return ppvi_matvec_block(argv[0], argv[1], argv[2], argv[3], argv[4],
                           argv[5]);
}

/* bt[p, j] = b[j, p]: materialize B^T so matmul_t can run in saxpy
   form. Pure data movement — no arithmetic, so no rounding at all. */
CAMLprim value ppvi_transpose_into(value vb, value vbt, value vn, value vk) {
  const double *b = DATA(vb);
  double *bt = DATA(vbt);
  long n = Long_val(vn), k = Long_val(vk);
  for (long j = 0; j < n; j++) {
    const double *brow = b + j * k;
    for (long p = 0; p < k; p++) bt[p * n + j] = brow[p];
  }
  return Val_unit;
}

/* c[i, jlo..jhi) += a[i, p] * bt[p, jlo..jhi) for i in [lo, hi), p
   ascending, NO zero-skip. With bt = B^T this accumulates exactly the
   matmul_t reference terms (a[i,p] * b[j,p], p ascending) per output
   element, in saxpy form so the j lanes vectorize. */
CAMLprim value ppvi_matmul_nt_block(value va, value vbt, value vc, value vk,
                                    value vn, value vlo, value vhi,
                                    value vjlo, value vjhi) {
  const double *a = DATA(va), *bt = DATA(vbt);
  double *c = DATA(vc);
  long k = Long_val(vk), n = Long_val(vn);
  long lo = Long_val(vlo), hi = Long_val(vhi);
  long jlo = Long_val(vjlo), jhi = Long_val(vjhi);
  for (long i = lo; i < hi; i++) {
    const double *arow = a + i * k;
    double *crow = c + i * n;
    for (long p = 0; p < k; p++) {
      double aip = arow[p];
      const double *btrow = bt + p * n;
      for (long j = jlo; j < jhi; j++) crow[j] += aip * btrow[j];
    }
  }
  return Val_unit;
}

CAMLprim value ppvi_matmul_nt_block_bc(value *argv, int argn) {
  (void)argn;
  return ppvi_matmul_nt_block(argv[0], argv[1], argv[2], argv[3], argv[4],
                              argv[5], argv[6], argv[7], argv[8]);
}
