(* Raw row-major kernels. Two invariants keep every kernel bit-identical
   to its naive reference loop, for any domain count:

   - partitioning is by fixed-size blocks (constants below), never by
     the number of domains, and each block writes a disjoint slice of
     the output;
   - within one output element, terms accumulate in the same order as
     the reference loop (ascending inner index), and zero left-operand
     elements are skipped exactly where the reference skipped them.

   Blocks only pay off above a size threshold; below it everything runs
   as a plain inline loop. *)

(* Elements per parallel block for elementwise kernels. *)
let elt_block = 16_384

(* Minimum elements before an elementwise kernel fans out. *)
let elt_min = 32_768

(* Output rows per matrix-kernel block. *)
let row_block = 16

(* Column tile for cache blocking of [matmul]: one [k x col_tile] panel
   of B stays resident while a row block of A streams past. *)
let col_tile = 128

(* Minimum multiply-adds before a matrix kernel fans out. *)
let work_min = 1 lsl 15

let elt_blocks n = if n < elt_min then 1 else (n + elt_block - 1) / elt_block

let elt_range n nb bi =
  if nb = 1 then (0, n)
  else
    let lo = bi * elt_block in
    (lo, Stdlib.min n (lo + elt_block))

let row_blocks m work =
  if work < work_min || m <= row_block then 1 else (m + row_block - 1) / row_block

let row_range m nb bi =
  if nb = 1 then (0, m)
  else
    let lo = bi * row_block in
    (lo, Stdlib.min m (lo + row_block))

(* Elementwise *)

let map_into f src dst =
  let n = Array.length src in
  let nb = elt_blocks n in
  Parallel.run ~blocks:nb (fun bi ->
      let lo, hi = elt_range n nb bi in
      for i = lo to hi - 1 do
        Array.unsafe_set dst i (f (Array.unsafe_get src i))
      done)

let map2_into f a b dst =
  let n = Array.length dst in
  let nb = elt_blocks n in
  Parallel.run ~blocks:nb (fun bi ->
      let lo, hi = elt_range n nb bi in
      for i = lo to hi - 1 do
        Array.unsafe_set dst i (f (Array.unsafe_get a i) (Array.unsafe_get b i))
      done)

let fill dst x =
  let n = Array.length dst in
  let nb = elt_blocks n in
  Parallel.run ~blocks:nb (fun bi ->
      let lo, hi = elt_range n nb bi in
      Array.fill dst lo (hi - lo) x)

let scale_into c dst =
  let n = Array.length dst in
  let nb = elt_blocks n in
  Parallel.run ~blocks:nb (fun bi ->
      let lo, hi = elt_range n nb bi in
      for i = lo to hi - 1 do
        Array.unsafe_set dst i (c *. Array.unsafe_get dst i)
      done)

let add_into dst src =
  let n = Array.length dst in
  let nb = elt_blocks n in
  Parallel.run ~blocks:nb (fun bi ->
      let lo, hi = elt_range n nb bi in
      for i = lo to hi - 1 do
        Array.unsafe_set dst i (Array.unsafe_get dst i +. Array.unsafe_get src i)
      done)

let axpy_into alpha x y =
  let n = Array.length y in
  let nb = elt_blocks n in
  Parallel.run ~blocks:nb (fun bi ->
      let lo, hi = elt_range n nb bi in
      for i = lo to hi - 1 do
        Array.unsafe_set y i (Array.unsafe_get y i +. (alpha *. Array.unsafe_get x i))
      done)

(* Broadcast map. Each block re-derives its starting operand offsets
   from its flat output index, then walks forward with the same
   rightmost-fastest carry loop as the sequential reference. *)

let walk_range f a sa b sb out_shape dst lo hi =
  if hi <= lo then ()  (* empty range; shapes may contain 0 dims *)
  else begin
  let r = Array.length out_shape in
  let ix = Array.make r 0 in
  let ia = ref 0 and ib = ref 0 in
  let rem = ref lo in
  for d = r - 1 downto 0 do
    let i = !rem mod out_shape.(d) in
    rem := !rem / out_shape.(d);
    ix.(d) <- i;
    ia := !ia + (i * sa.(d));
    ib := !ib + (i * sb.(d))
  done;
  for flat = lo to hi - 1 do
    Array.unsafe_set dst flat
      (f (Array.unsafe_get a !ia) (Array.unsafe_get b !ib));
    let d = ref (r - 1) in
    let carry = ref true in
    while !carry && !d >= 0 do
      ix.(!d) <- ix.(!d) + 1;
      ia := !ia + sa.(!d);
      ib := !ib + sb.(!d);
      if ix.(!d) >= out_shape.(!d) then begin
        ix.(!d) <- 0;
        ia := !ia - (out_shape.(!d) * sa.(!d));
        ib := !ib - (out_shape.(!d) * sb.(!d));
        decr d
      end
      else carry := false
    done
  done
  end

let broadcast_map2_into f a sa b sb out_shape dst =
  let n = Array.length dst in
  let nb = elt_blocks n in
  Parallel.run ~blocks:nb (fun bi ->
      let lo, hi = elt_range n nb bi in
      walk_range f a sa b sb out_shape dst lo hi)

let broadcast_copy_into src sst out_shape dst =
  let n = Array.length dst in
  let nb = elt_blocks n in
  Parallel.run ~blocks:nb (fun bi ->
      let lo, hi = elt_range n nb bi in
      (* Reuse the pair walker with the source on both legs. *)
      walk_range (fun x _ -> x) src sst src sst out_shape dst lo hi)

(* Matrix products.

   Inner loops are unrolled 4x by hand (the non-flambda compiler does
   not unroll). Unrolling is bit-transparent: every output element
   still receives exactly the same operations in the same order, the
   loop merely does four of them per iteration. *)

(* [y.(ybase+jlo..jhi-1) += s * v.(vbase+jlo..jhi-1)], 4x unrolled.
   Distinct output elements, so the unroll does not reorder anything. *)
let saxpy_row s v vbase y ybase jlo jhi =
  let j = ref jlo in
  let j4 = jhi - 3 in
  while !j < j4 do
    let j0 = !j in
    let yj = ybase + j0 and vj = vbase + j0 in
    Array.unsafe_set y yj (Array.unsafe_get y yj +. (s *. Array.unsafe_get v vj));
    Array.unsafe_set y (yj + 1)
      (Array.unsafe_get y (yj + 1) +. (s *. Array.unsafe_get v (vj + 1)));
    Array.unsafe_set y (yj + 2)
      (Array.unsafe_get y (yj + 2) +. (s *. Array.unsafe_get v (vj + 2)));
    Array.unsafe_set y (yj + 3)
      (Array.unsafe_get y (yj + 3) +. (s *. Array.unsafe_get v (vj + 3)));
    j := j0 + 4
  done;
  while !j < jhi do
    let yj = ybase + !j and vj = vbase + !j in
    Array.unsafe_set y yj (Array.unsafe_get y yj +. (s *. Array.unsafe_get v vj));
    incr j
  done

let matmul ~m ~k ~n a b c =
  let nb = row_blocks m (m * k * n) in
  Parallel.run ~blocks:nb (fun bi ->
      let lo, hi = row_range m nb bi in
      let jt = ref 0 in
      while !jt < n do
        let jlo = !jt in
        let jhi = Stdlib.min n (jlo + col_tile) in
        for i = lo to hi - 1 do
          let arow = i * k and crow = i * n in
          for p = 0 to k - 1 do
            let aip = Array.unsafe_get a (arow + p) in
            if aip <> 0. then saxpy_row aip b (p * n) c crow jlo jhi
          done
        done;
        jt := jhi
      done)

let matmul_t ~m ~k ~n a b c =
  let nb = row_blocks m (m * k * n) in
  Parallel.run ~blocks:nb (fun bi ->
      let lo, hi = row_range m nb bi in
      for i = lo to hi - 1 do
        let arow = i * k and crow = i * n in
        for j = 0 to n - 1 do
          let brow = j * k in
          let acc = ref 0. in
          let p = ref 0 in
          let k4 = k - 3 in
          (* Sequential accumulation into one register: the unrolled
             terms are added in the same order as the rolled loop.
             Unlike the saxpy-style kernels, no zero-skip test here —
             it would cost a branch per multiply-add rather than per
             row, and adding an exact [0.] leaves the accumulator
             bit-identical anyway. *)
          while !p < k4 do
            let p0 = !p in
            acc :=
              !acc
              +. (Array.unsafe_get a (arow + p0) *. Array.unsafe_get b (brow + p0));
            acc :=
              !acc
              +. (Array.unsafe_get a (arow + p0 + 1)
                 *. Array.unsafe_get b (brow + p0 + 1));
            acc :=
              !acc
              +. (Array.unsafe_get a (arow + p0 + 2)
                 *. Array.unsafe_get b (brow + p0 + 2));
            acc :=
              !acc
              +. (Array.unsafe_get a (arow + p0 + 3)
                 *. Array.unsafe_get b (brow + p0 + 3));
            p := p0 + 4
          done;
          while !p < k do
            acc :=
              !acc
              +. (Array.unsafe_get a (arow + !p) *. Array.unsafe_get b (brow + !p));
            incr p
          done;
          Array.unsafe_set c (crow + j) !acc
        done
      done)

let t_matmul ~m ~k ~n a b c =
  (* Output is k x n: block over the k output rows. For each input row
     [i], the A segment [a.(i*k + plo .. phi-1)] is contiguous and the B
     row is reused across the whole block. *)
  let nb = row_blocks k (m * k * n) in
  Parallel.run ~blocks:nb (fun bi ->
      let plo, phi = row_range k nb bi in
      for i = 0 to m - 1 do
        let arow = i * k and brow = i * n in
        for p = plo to phi - 1 do
          let aip = Array.unsafe_get a (arow + p) in
          if aip <> 0. then saxpy_row aip b brow c (p * n) 0 n
        done
      done)

let matvec ~m ~k a x y =
  let nb = row_blocks m (m * k) in
  Parallel.run ~blocks:nb (fun bi ->
      let lo, hi = row_range m nb bi in
      for i = lo to hi - 1 do
        let arow = i * k in
        let acc = ref 0. in
        let p = ref 0 in
        let k4 = k - 3 in
        while !p < k4 do
          let p0 = !p in
          acc := !acc +. (Array.unsafe_get a (arow + p0) *. Array.unsafe_get x p0);
          acc :=
            !acc +. (Array.unsafe_get a (arow + p0 + 1) *. Array.unsafe_get x (p0 + 1));
          acc :=
            !acc +. (Array.unsafe_get a (arow + p0 + 2) *. Array.unsafe_get x (p0 + 2));
          acc :=
            !acc +. (Array.unsafe_get a (arow + p0 + 3) *. Array.unsafe_get x (p0 + 3));
          p := p0 + 4
        done;
        while !p < k do
          acc := !acc +. (Array.unsafe_get a (arow + !p) *. Array.unsafe_get x !p);
          incr p
        done;
        Array.unsafe_set y i !acc
      done)

let t_matvec ~m ~k a x y =
  let nb = row_blocks k (m * k) in
  Parallel.run ~blocks:nb (fun bi ->
      let plo, phi = row_range k nb bi in
      for i = 0 to m - 1 do
        let xi = Array.unsafe_get x i in
        saxpy_row xi a (i * k) y 0 plo phi
      done)

let vecmat ~k ~n x b y =
  let nb = row_blocks n (k * n) in
  Parallel.run ~blocks:nb (fun bi ->
      let jlo, jhi = row_range n nb bi in
      for p = 0 to k - 1 do
        let xp = Array.unsafe_get x p in
        if xp <> 0. then saxpy_row xp b (p * n) y 0 jlo jhi
      done)
