(* Raw row-major kernels. Two invariants keep every kernel bit-identical
   to its naive reference loop, for any domain count:

   - partitioning is by fixed-size blocks (constants below), never by
     the number of domains, and each block writes a disjoint slice of
     the output;
   - within one output element, terms accumulate in the same order as
     the reference loop (ascending inner index), and zero left-operand
     elements are skipped exactly where the reference skipped them.

   Blocks only pay off above a size threshold; below it everything runs
   as a plain inline loop. *)

(* Elements per parallel block for elementwise kernels. *)
let elt_block = 16_384

(* Minimum elements before an elementwise kernel fans out. *)
let elt_min = 32_768

(* Output rows per matrix-kernel block. *)
let row_block = 16

(* Column tile for cache blocking of [matmul]: one [k x col_tile] panel
   of B stays resident while a row block of A streams past. *)
let col_tile = 128

(* Minimum multiply-adds before a matrix kernel fans out. *)
let work_min = 1 lsl 15

let elt_blocks n = if n < elt_min then 1 else (n + elt_block - 1) / elt_block

let elt_range n nb bi =
  if nb = 1 then (0, n)
  else
    let lo = bi * elt_block in
    (lo, Stdlib.min n (lo + elt_block))

let row_blocks m work =
  if work < work_min || m <= row_block then 1 else (m + row_block - 1) / row_block

let row_range m nb bi =
  if nb = 1 then (0, m)
  else
    let lo = bi * row_block in
    (lo, Stdlib.min m (lo + row_block))

(* Elementwise *)

let map_into f src dst =
  let n = Array.length src in
  let nb = elt_blocks n in
  Parallel.run ~blocks:nb (fun bi ->
      let lo, hi = elt_range n nb bi in
      for i = lo to hi - 1 do
        Array.unsafe_set dst i (f (Array.unsafe_get src i))
      done)

(* Specialized elementwise kernels. Without flambda, [map_into f ...]
   boxes two floats per element to cross the unknown closure [f] — on a
   [256 x 144] operand that is ~1.8 MB of garbage for a 0.3 MB result.
   The named kernels below inline the exact float expression the
   generic path computed (same operations, same order, bit-identical
   results) into the block loop, so the hot elementwise ops allocate
   nothing beyond their output. *)

(* A builder taking the float op as an argument would reintroduce the
   closure; each kernel is written out so the float op is a known call. *)

let exp_into src dst =
  let n = Array.length src in
  let nb = elt_blocks n in
  Parallel.run ~blocks:nb (fun bi ->
      let lo, hi = elt_range n nb bi in
      for i = lo to hi - 1 do
        Array.unsafe_set dst i (Float.exp (Array.unsafe_get src i))
      done)

let log_into src dst =
  let n = Array.length src in
  let nb = elt_blocks n in
  Parallel.run ~blocks:nb (fun bi ->
      let lo, hi = elt_range n nb bi in
      for i = lo to hi - 1 do
        Array.unsafe_set dst i (Float.log (Array.unsafe_get src i))
      done)

let sqrt_into src dst =
  let n = Array.length src in
  let nb = elt_blocks n in
  Parallel.run ~blocks:nb (fun bi ->
      let lo, hi = elt_range n nb bi in
      for i = lo to hi - 1 do
        Array.unsafe_set dst i (Float.sqrt (Array.unsafe_get src i))
      done)

let neg_into src dst =
  let n = Array.length src in
  let nb = elt_blocks n in
  Parallel.run ~blocks:nb (fun bi ->
      let lo, hi = elt_range n nb bi in
      for i = lo to hi - 1 do
        Array.unsafe_set dst i (-.(Array.unsafe_get src i))
      done)

let scale_map_into c src dst =
  let n = Array.length src in
  let nb = elt_blocks n in
  Parallel.run ~blocks:nb (fun bi ->
      let lo, hi = elt_range n nb bi in
      for i = lo to hi - 1 do
        Array.unsafe_set dst i (c *. Array.unsafe_get src i)
      done)

let add_scalar_into c src dst =
  let n = Array.length src in
  let nb = elt_blocks n in
  Parallel.run ~blocks:nb (fun bi ->
      let lo, hi = elt_range n nb bi in
      for i = lo to hi - 1 do
        Array.unsafe_set dst i (c +. Array.unsafe_get src i)
      done)

let sigmoid_into src dst =
  let n = Array.length src in
  let nb = elt_blocks n in
  Parallel.run ~blocks:nb (fun bi ->
      let lo, hi = elt_range n nb bi in
      for i = lo to hi - 1 do
        Array.unsafe_set dst i
          (1. /. (1. +. Float.exp (-.(Array.unsafe_get src i))))
      done)

let tanh_into src dst =
  let n = Array.length src in
  let nb = elt_blocks n in
  Parallel.run ~blocks:nb (fun bi ->
      let lo, hi = elt_range n nb bi in
      for i = lo to hi - 1 do
        Array.unsafe_set dst i (Float.tanh (Array.unsafe_get src i))
      done)

let relu_into src dst =
  let n = Array.length src in
  let nb = elt_blocks n in
  Parallel.run ~blocks:nb (fun bi ->
      let lo, hi = elt_range n nb bi in
      for i = lo to hi - 1 do
        let x = Array.unsafe_get src i in
        Array.unsafe_set dst i (if x > 0. then x else 0.)
      done)

(* Same >30 cutoff as the historical [Tensor.softplus] closure. *)
let softplus_into src dst =
  let n = Array.length src in
  let nb = elt_blocks n in
  Parallel.run ~blocks:nb (fun bi ->
      let lo, hi = elt_range n nb bi in
      for i = lo to hi - 1 do
        let x = Array.unsafe_get src i in
        Array.unsafe_set dst i
          (if x > 30. then x else Float.log (1. +. Float.exp x))
      done)

let recip_into src dst =
  let n = Array.length src in
  let nb = elt_blocks n in
  Parallel.run ~blocks:nb (fun bi ->
      let lo, hi = elt_range n nb bi in
      for i = lo to hi - 1 do
        Array.unsafe_set dst i (1. /. Array.unsafe_get src i)
      done)

let sigmoid_deriv_into src dst =
  let n = Array.length src in
  let nb = elt_blocks n in
  Parallel.run ~blocks:nb (fun bi ->
      let lo, hi = elt_range n nb bi in
      for i = lo to hi - 1 do
        let s = Array.unsafe_get src i in
        Array.unsafe_set dst i (s *. (1. -. s))
      done)

let add2_into a b dst =
  let n = Array.length dst in
  let nb = elt_blocks n in
  Parallel.run ~blocks:nb (fun bi ->
      let lo, hi = elt_range n nb bi in
      for i = lo to hi - 1 do
        Array.unsafe_set dst i (Array.unsafe_get a i +. Array.unsafe_get b i)
      done)

let sub2_into a b dst =
  let n = Array.length dst in
  let nb = elt_blocks n in
  Parallel.run ~blocks:nb (fun bi ->
      let lo, hi = elt_range n nb bi in
      for i = lo to hi - 1 do
        Array.unsafe_set dst i (Array.unsafe_get a i -. Array.unsafe_get b i)
      done)

let mul2_into a b dst =
  let n = Array.length dst in
  let nb = elt_blocks n in
  Parallel.run ~blocks:nb (fun bi ->
      let lo, hi = elt_range n nb bi in
      for i = lo to hi - 1 do
        Array.unsafe_set dst i (Array.unsafe_get a i *. Array.unsafe_get b i)
      done)

let div2_into a b dst =
  let n = Array.length dst in
  let nb = elt_blocks n in
  Parallel.run ~blocks:nb (fun bi ->
      let lo, hi = elt_range n nb bi in
      for i = lo to hi - 1 do
        Array.unsafe_set dst i (Array.unsafe_get a i /. Array.unsafe_get b i)
      done)

(* Scalar legs of a broadcast binary op: [a OP c] and [c OP b]. *)

let add_const_into a c dst =
  let n = Array.length dst in
  let nb = elt_blocks n in
  Parallel.run ~blocks:nb (fun bi ->
      let lo, hi = elt_range n nb bi in
      for i = lo to hi - 1 do
        Array.unsafe_set dst i (Array.unsafe_get a i +. c)
      done)

let const_add_into c b dst =
  let n = Array.length dst in
  let nb = elt_blocks n in
  Parallel.run ~blocks:nb (fun bi ->
      let lo, hi = elt_range n nb bi in
      for i = lo to hi - 1 do
        Array.unsafe_set dst i (c +. Array.unsafe_get b i)
      done)

let sub_const_into a c dst =
  let n = Array.length dst in
  let nb = elt_blocks n in
  Parallel.run ~blocks:nb (fun bi ->
      let lo, hi = elt_range n nb bi in
      for i = lo to hi - 1 do
        Array.unsafe_set dst i (Array.unsafe_get a i -. c)
      done)

let const_sub_into c b dst =
  let n = Array.length dst in
  let nb = elt_blocks n in
  Parallel.run ~blocks:nb (fun bi ->
      let lo, hi = elt_range n nb bi in
      for i = lo to hi - 1 do
        Array.unsafe_set dst i (c -. Array.unsafe_get b i)
      done)

let mul_const_into a c dst =
  let n = Array.length dst in
  let nb = elt_blocks n in
  Parallel.run ~blocks:nb (fun bi ->
      let lo, hi = elt_range n nb bi in
      for i = lo to hi - 1 do
        Array.unsafe_set dst i (Array.unsafe_get a i *. c)
      done)

let const_mul_into c b dst =
  let n = Array.length dst in
  let nb = elt_blocks n in
  Parallel.run ~blocks:nb (fun bi ->
      let lo, hi = elt_range n nb bi in
      for i = lo to hi - 1 do
        Array.unsafe_set dst i (c *. Array.unsafe_get b i)
      done)

let div_const_into a c dst =
  let n = Array.length dst in
  let nb = elt_blocks n in
  Parallel.run ~blocks:nb (fun bi ->
      let lo, hi = elt_range n nb bi in
      for i = lo to hi - 1 do
        Array.unsafe_set dst i (Array.unsafe_get a i /. c)
      done)

let const_div_into c b dst =
  let n = Array.length dst in
  let nb = elt_blocks n in
  Parallel.run ~blocks:nb (fun bi ->
      let lo, hi = elt_range n nb bi in
      for i = lo to hi - 1 do
        Array.unsafe_set dst i (c /. Array.unsafe_get b i)
      done)

(* Row-broadcast legs: [a : rows x n] OP [b : n], and the flipped
   orientation. Same loop structure as the [row_broadcast] case of
   [Tensor.map2]. *)

let row_add_into a b n dst =
  let rows = Array.length a / n in
  for r = 0 to rows - 1 do
    let base = r * n in
    for j = 0 to n - 1 do
      Array.unsafe_set dst (base + j)
        (Array.unsafe_get a (base + j) +. Array.unsafe_get b j)
    done
  done

let row_sub_into a b n dst =
  let rows = Array.length a / n in
  for r = 0 to rows - 1 do
    let base = r * n in
    for j = 0 to n - 1 do
      Array.unsafe_set dst (base + j)
        (Array.unsafe_get a (base + j) -. Array.unsafe_get b j)
    done
  done

let row_mul_into a b n dst =
  let rows = Array.length a / n in
  for r = 0 to rows - 1 do
    let base = r * n in
    for j = 0 to n - 1 do
      Array.unsafe_set dst (base + j)
        (Array.unsafe_get a (base + j) *. Array.unsafe_get b j)
    done
  done

let row_div_into a b n dst =
  let rows = Array.length a / n in
  for r = 0 to rows - 1 do
    let base = r * n in
    for j = 0 to n - 1 do
      Array.unsafe_set dst (base + j)
        (Array.unsafe_get a (base + j) /. Array.unsafe_get b j)
    done
  done

let map2_into f a b dst =
  let n = Array.length dst in
  let nb = elt_blocks n in
  Parallel.run ~blocks:nb (fun bi ->
      let lo, hi = elt_range n nb bi in
      for i = lo to hi - 1 do
        Array.unsafe_set dst i (f (Array.unsafe_get a i) (Array.unsafe_get b i))
      done)

let fill dst x =
  let n = Array.length dst in
  let nb = elt_blocks n in
  Parallel.run ~blocks:nb (fun bi ->
      let lo, hi = elt_range n nb bi in
      Array.fill dst lo (hi - lo) x)

let scale_into c dst =
  let n = Array.length dst in
  let nb = elt_blocks n in
  Parallel.run ~blocks:nb (fun bi ->
      let lo, hi = elt_range n nb bi in
      for i = lo to hi - 1 do
        Array.unsafe_set dst i (c *. Array.unsafe_get dst i)
      done)

let add_into dst src =
  let n = Array.length dst in
  let nb = elt_blocks n in
  Parallel.run ~blocks:nb (fun bi ->
      let lo, hi = elt_range n nb bi in
      for i = lo to hi - 1 do
        Array.unsafe_set dst i (Array.unsafe_get dst i +. Array.unsafe_get src i)
      done)

let axpy_into alpha x y =
  let n = Array.length y in
  let nb = elt_blocks n in
  Parallel.run ~blocks:nb (fun bi ->
      let lo, hi = elt_range n nb bi in
      for i = lo to hi - 1 do
        Array.unsafe_set y i (Array.unsafe_get y i +. (alpha *. Array.unsafe_get x i))
      done)

(* Broadcast map. Each block re-derives its starting operand offsets
   from its flat output index, then walks forward with the same
   rightmost-fastest carry loop as the sequential reference. *)

let walk_range f a sa b sb out_shape dst lo hi =
  if hi <= lo then ()  (* empty range; shapes may contain 0 dims *)
  else begin
  let r = Array.length out_shape in
  let ix = Array.make r 0 in
  let ia = ref 0 and ib = ref 0 in
  let rem = ref lo in
  for d = r - 1 downto 0 do
    let i = !rem mod out_shape.(d) in
    rem := !rem / out_shape.(d);
    ix.(d) <- i;
    ia := !ia + (i * sa.(d));
    ib := !ib + (i * sb.(d))
  done;
  for flat = lo to hi - 1 do
    Array.unsafe_set dst flat
      (f (Array.unsafe_get a !ia) (Array.unsafe_get b !ib));
    let d = ref (r - 1) in
    let carry = ref true in
    while !carry && !d >= 0 do
      ix.(!d) <- ix.(!d) + 1;
      ia := !ia + sa.(!d);
      ib := !ib + sb.(!d);
      if ix.(!d) >= out_shape.(!d) then begin
        ix.(!d) <- 0;
        ia := !ia - (out_shape.(!d) * sa.(!d));
        ib := !ib - (out_shape.(!d) * sb.(!d));
        decr d
      end
      else carry := false
    done
  done
  end

let broadcast_map2_into f a sa b sb out_shape dst =
  let n = Array.length dst in
  let nb = elt_blocks n in
  Parallel.run ~blocks:nb (fun bi ->
      let lo, hi = elt_range n nb bi in
      walk_range f a sa b sb out_shape dst lo hi)

let broadcast_copy_into src sst out_shape dst =
  let n = Array.length dst in
  let nb = elt_blocks n in
  Parallel.run ~blocks:nb (fun bi ->
      let lo, hi = elt_range n nb bi in
      (* Reuse the pair walker with the source on both legs. *)
      walk_range (fun x _ -> x) src sst src sst out_shape dst lo hi)

(* Matrix products.

   The per-block loop bodies live in C (kernel_stubs.c): the inner
   saxpy loops update independent output elements, so gcc may vectorize
   them without reordering any single element's accumulation chain —
   OCaml's native compiler never vectorizes. The C bodies replicate the
   historical OCaml loops' accumulation order and zero-skip semantics
   exactly, and are compiled with -ffp-contract=off (a fused
   multiply-add rounds differently), so results remain bit-for-bit
   identical to the naive references in test/test_kernel.ml. Block
   partitioning stays on the OCaml side, through the same [Parallel]
   pool as before. *)

external matmul_block :
  float array -> float array -> float array ->
  int -> int -> int -> int -> int -> int -> int -> unit
  = "ppvi_matmul_block_bc" "ppvi_matmul_block"
[@@noalloc]

external matmul_t_block :
  float array -> float array -> float array ->
  int -> int -> int -> int -> unit
  = "ppvi_matmul_t_block_bc" "ppvi_matmul_t_block"
[@@noalloc]

external transpose_into :
  float array -> float array -> int -> int -> unit
  = "ppvi_transpose_into"
[@@noalloc]

external matmul_nt_block :
  float array -> float array -> float array ->
  int -> int -> int -> int -> int -> int -> unit
  = "ppvi_matmul_nt_block_bc" "ppvi_matmul_nt_block"
[@@noalloc]

external t_matmul_block :
  float array -> float array -> float array ->
  int -> int -> int -> int -> int -> unit
  = "ppvi_t_matmul_block_bc" "ppvi_t_matmul_block"
[@@noalloc]

external matvec_block :
  float array -> float array -> float array -> int -> int -> int -> unit
  = "ppvi_matvec_block_bc" "ppvi_matvec_block"
[@@noalloc]

external t_matvec_block :
  float array -> float array -> float array ->
  int -> int -> int -> int -> unit
  = "ppvi_t_matvec_block_bc" "ppvi_t_matvec_block"
[@@noalloc]

external vecmat_block :
  float array -> float array -> float array ->
  int -> int -> int -> int -> unit
  = "ppvi_vecmat_block_bc" "ppvi_vecmat_block"
[@@noalloc]

let matmul ~m ~k ~n a b c =
  let nb = row_blocks m (m * k * n) in
  Parallel.run ~blocks:nb (fun bi ->
      let lo, hi = row_range m nb bi in
      let jt = ref 0 in
      while !jt < n do
        let jlo = !jt in
        let jhi = Stdlib.min n (jlo + col_tile) in
        matmul_block a b c m k n lo hi jlo jhi;
        jt := jhi
      done)

(* Above this threshold, [matmul_t] pays one B^T materialization to run
   in vectorizable saxpy form; the per-element term order (p ascending,
   no zero-skip) is unchanged, so both paths are bit-identical to the
   dot-form reference. Below it, the transpose overhead is not worth
   amortizing over too few output elements. *)
let nt_min = 1 lsl 14

let matmul_t ~m ~k ~n a b c =
  if m * k * n < nt_min then
    matmul_t_block a b c k n 0 m
  else begin
    let bt = Array.make (k * n) 0. in
    transpose_into b bt n k;
    let nb = row_blocks m (m * k * n) in
    Parallel.run ~blocks:nb (fun bi ->
        let lo, hi = row_range m nb bi in
        let jt = ref 0 in
        while !jt < n do
          let jlo = !jt in
          let jhi = Stdlib.min n (jlo + col_tile) in
          matmul_nt_block a bt c k n lo hi jlo jhi;
          jt := jhi
        done)
  end

let t_matmul ~m ~k ~n a b c =
  (* Output is k x n: block over the k output rows. *)
  let nb = row_blocks k (m * k * n) in
  Parallel.run ~blocks:nb (fun bi ->
      let plo, phi = row_range k nb bi in
      t_matmul_block a b c m k n plo phi)

let matvec ~m ~k a x y =
  let nb = row_blocks m (m * k) in
  Parallel.run ~blocks:nb (fun bi ->
      let lo, hi = row_range m nb bi in
      matvec_block a x y k lo hi)

let t_matvec ~m ~k a x y =
  let nb = row_blocks k (m * k) in
  Parallel.run ~blocks:nb (fun bi ->
      let plo, phi = row_range k nb bi in
      t_matvec_block a x y m k plo phi)

let vecmat ~k ~n x b y =
  let nb = row_blocks n (k * n) in
  Parallel.run ~blocks:nb (fun bi ->
      let jlo, jhi = row_range n nb bi in
      vecmat_block x b y k n jlo jhi)
