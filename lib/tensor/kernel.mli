(** Dense float-array kernels behind [Tensor]'s public API.

    All kernels operate on row-major [float array] buffers and are
    deterministic by construction: work is split into fixed-size blocks
    (independent of the domain count), every block writes a disjoint
    output region, and per-element accumulation order never crosses a
    block boundary. Results are therefore bit-for-bit identical to the
    naive sequential loops, with any number of domains.

    Matrix kernels keep the reference semantics of the original naive
    implementations, including the skip of zero left-operand elements
    (which affects [nan]/[infinity] propagation), so the rewrite is
    observationally identical on every input. *)

(** {1 Elementwise} *)

val map_into : (float -> float) -> float array -> float array -> unit
(** [map_into f src dst] sets [dst.(i) <- f src.(i)] for every index.
    [src] and [dst] must have equal length; [src == dst] is allowed. *)

val map2_into :
  (float -> float -> float) -> float array -> float array -> float array -> unit
(** [map2_into f a b dst] sets [dst.(i) <- f a.(i) b.(i)]. All three
    arrays must have equal length; [dst] may alias [a] or [b]. *)

val fill : float array -> float -> unit
val scale_into : float -> float array -> unit
val add_into : float array -> float array -> unit
(** [add_into dst src]: [dst.(i) <- dst.(i) +. src.(i)]. *)

val axpy_into : float -> float array -> float array -> unit
(** [axpy_into alpha x y]: [y.(i) <- y.(i) +. alpha *. x.(i)]. *)

(** {1 Specialized elementwise kernels}

    Monomorphic versions of the hot [map_into]/[map2_into] instances.
    Without flambda, calling an unknown [float -> float] closure boxes
    two floats per element; these kernels inline the exact float
    expression of the corresponding closure (bit-identical results, no
    allocation beyond the output). All follow the same block
    partitioning as [map_into]. Unary kernels take [src dst]; binary
    [a b dst] (equal lengths); [*_const] take the scalar leg as a
    float; [row_*] take [a] ([rows*n]), [b] ([n]) and the row width. *)

val exp_into : float array -> float array -> unit
val log_into : float array -> float array -> unit
val sqrt_into : float array -> float array -> unit
val neg_into : float array -> float array -> unit
val scale_map_into : float -> float array -> float array -> unit
val add_scalar_into : float -> float array -> float array -> unit
val sigmoid_into : float array -> float array -> unit
val tanh_into : float array -> float array -> unit
val relu_into : float array -> float array -> unit
val softplus_into : float array -> float array -> unit
val recip_into : float array -> float array -> unit
(** [1. /. x], the [log] vjp. *)

val sigmoid_deriv_into : float array -> float array -> unit
(** [s *. (1. -. s)] over sigmoid outputs, the [sigmoid] vjp. *)

val add2_into : float array -> float array -> float array -> unit
val sub2_into : float array -> float array -> float array -> unit
val mul2_into : float array -> float array -> float array -> unit
val div2_into : float array -> float array -> float array -> unit
val add_const_into : float array -> float -> float array -> unit
val const_add_into : float -> float array -> float array -> unit
val sub_const_into : float array -> float -> float array -> unit
val const_sub_into : float -> float array -> float array -> unit
val mul_const_into : float array -> float -> float array -> unit
val const_mul_into : float -> float array -> float array -> unit
val div_const_into : float array -> float -> float array -> unit
val const_div_into : float -> float array -> float array -> unit
val row_add_into : float array -> float array -> int -> float array -> unit
val row_sub_into : float array -> float array -> int -> float array -> unit
val row_mul_into : float array -> float array -> int -> float array -> unit
val row_div_into : float array -> float array -> int -> float array -> unit

(** {1 Broadcast map} *)

val broadcast_map2_into :
  (float -> float -> float) ->
  float array -> int array ->
  float array -> int array ->
  int array -> float array -> unit
(** [broadcast_map2_into f a sa b sb out_shape dst] computes the
    NumPy-style broadcast binary map: [sa]/[sb] are broadcast strides of
    [a]/[b] aligned to [out_shape] (0 on broadcast dimensions), [dst]
    has [out_shape]'s size. *)

val broadcast_copy_into :
  float array -> int array -> int array -> float array -> unit
(** [broadcast_copy_into src sst out_shape dst] materializes [src]
    broadcast to [out_shape] into [dst] without touching a second
    operand. *)

(** {1 Matrix products} *)

val matmul :
  m:int -> k:int -> n:int -> float array -> float array -> float array -> unit
(** [matmul ~m ~k ~n a b c]: [c] ([m*n], zeroed by the caller) gets
    [A (m x k) * B (k x n)], cache-blocked over column tiles and
    parallelized over row blocks. *)

val matmul_t :
  m:int -> k:int -> n:int -> float array -> float array -> float array -> unit
(** [matmul_t ~m ~k ~n a b c]: [c] ([m*n]) gets [A (m x k) * B^T] where
    [B] is [n x k] — no transpose is materialized. *)

val t_matmul :
  m:int -> k:int -> n:int -> float array -> float array -> float array -> unit
(** [t_matmul ~m ~k ~n a b c]: [c] ([k*n], zeroed by the caller) gets
    [A^T * B] where [A] is [m x k] and [B] is [m x n]. *)

val matvec : m:int -> k:int -> float array -> float array -> float array -> unit
(** [matvec ~m ~k a x y]: [y] ([m]) gets [A (m x k) * x (k)]. *)

val t_matvec :
  m:int -> k:int -> float array -> float array -> float array -> unit
(** [t_matvec ~m ~k a x y]: [y] ([k], zeroed by the caller) gets
    [A^T * x] where [A] is [m x k] and [x] is [m]. *)

val vecmat : k:int -> n:int -> float array -> float array -> float array -> unit
(** [vecmat ~k ~n x b y]: [y] ([n], zeroed by the caller) gets
    [x (k) * B (k x n)]. *)
