(** Dense row-major float tensors.

    This is the numeric substrate for the whole system: rank-0 tensors act
    as scalars, rank-1 as vectors, rank-2 as matrices. All operations are
    pure (they allocate a fresh result) and support NumPy-style
    right-aligned broadcasting where documented. *)

type t
(** A dense tensor of [float]s with an immutable shape and cached
    row-major strides. The underlying buffer is not exposed; use {!get},
    {!to_array}, or the iteration helpers. An explicit in-place API
    ({!add_}, {!axpy}, {!scale_}, {!fill_}, {!map2_}) exists for owners
    of a buffer — see the section below for the aliasing rules.

    Large elementwise maps and all matrix products run on the [Parallel]
    domain pool when it is configured with more than one domain
    ([PPVI_DOMAINS] / [--domains]). Kernels partition work into
    fixed-size blocks independent of the domain count and never
    reassociate floating-point accumulation across blocks, so every
    result is bit-for-bit identical to sequential execution. *)

exception Shape_error of string
(** Raised when operand shapes are incompatible. *)

(** {1 Construction} *)

val scalar : float -> t
(** [scalar x] is the rank-0 tensor holding [x]. *)

val of_array : int array -> float array -> t
(** [of_array shape data] wraps [data] (copied) as a tensor of [shape].
    @raise Shape_error if [Array.length data] does not match the shape. *)

val of_list1 : float list -> t
(** Rank-1 tensor from a list. *)

val of_list2 : float list list -> t
(** Rank-2 tensor from rows; all rows must have equal length. *)

val zeros : int array -> t
val ones : int array -> t
val full : int array -> float -> t

val init : int array -> (int array -> float) -> t
(** [init shape f] builds a tensor whose element at multi-index [ix] is
    [f ix]. *)

val eye : int -> t
(** [eye n] is the [n] x [n] identity matrix. *)

(** {1 Inspection} *)

val shape : t -> int array
val rank : t -> int
val size : t -> int

val get : t -> int array -> float
(** [get t ix] reads the element at multi-index [ix]. *)

val get_flat : t -> int -> float
(** [get_flat t i] reads the [i]-th element in row-major order. *)

val to_scalar : t -> float
(** Extract the value of a rank-0 (or single-element) tensor.
    @raise Shape_error on tensors with more than one element. *)

val to_array : t -> float array
(** Row-major copy of the contents. *)

val is_scalar : t -> bool

val same_shape : t -> t -> bool
(** Structural equality of the two shapes, without allocating. *)

(** {1 In-place operations}

    These mutate the tensor's buffer directly and are the backbone of
    the AD engine's gradient accumulation and the optimizer's moment
    updates. The caller must own the buffer exclusively: in particular,
    {!reshape} and {!flatten} return tensors {e sharing} their
    argument's buffer, and [Ad] may hand out tensors that alias graph
    internals — {!copy} first when in doubt. *)

val copy : t -> t
(** A deep copy (fresh buffer, same shape). *)

val fill_ : t -> float -> unit
(** [fill_ t x] overwrites every element of [t] with [x]. *)

val scale_ : float -> t -> unit
(** [scale_ c t] multiplies every element of [t] by [c] in place. *)

val add_ : t -> t -> unit
(** [add_ dst src] adds [src] into [dst] elementwise. Shapes must be
    equal (no broadcasting). @raise Shape_error otherwise. *)

val axpy : alpha:float -> x:t -> t -> unit
(** [axpy ~alpha ~x y] performs [y <- y + alpha * x] elementwise.
    Shapes must be equal. @raise Shape_error otherwise. *)

val map2_ : (float -> float -> float) -> t -> t -> unit
(** [map2_ f dst src] sets [dst_i <- f dst_i src_i]. Shapes must be
    equal. @raise Shape_error otherwise. *)

(** {1 Elementwise maps} *)

val map : (float -> float) -> t -> t

val map2 : (float -> float -> float) -> t -> t -> t
(** Broadcasting binary map: shapes are aligned from the right; a
    dimension of size 1 (or a missing dimension) broadcasts.
    @raise Shape_error when shapes are not broadcast-compatible. *)

val broadcast_shapes : int array -> int array -> int array
(** The result shape of broadcasting two shapes.
    @raise Shape_error when incompatible. *)

val broadcast_to : t -> int array -> t
(** Materialize a tensor broadcast to a larger shape. *)

(** {1 Arithmetic} *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val scale : float -> t -> t
val add_scalar : float -> t -> t
val pow_scalar : t -> float -> t

val exp : t -> t
val log : t -> t
val sqrt : t -> t
val sigmoid : t -> t
val tanh : t -> t
val relu : t -> t

val softplus : t -> t
(** Numerically stable [log (1 + exp x)]. *)

val recip : t -> t
(** Elementwise [1. /. x] — the [log] vjp, in one pass. *)

val sigmoid_deriv : t -> t
(** Elementwise [s *. (1. -. s)] over sigmoid {e outputs} — the
    [sigmoid] vjp, in one pass. *)

val clip : min:float -> max:float -> t -> t

val global_norm : t list -> float
(** The L2 norm of all elements of all tensors, viewed as one flat
    vector. Computed with a scaled sum of squares, so it does not
    overflow for representable norms; non-finite entries propagate
    (the result is [nan] or [infinity]). *)

val clip_by_global_norm : max_norm:float -> t list -> t list
(** Rescale the tensors jointly so their {!global_norm} is at most
    [max_norm]; lists whose joint norm is already within the bound
    (or is non-finite) are returned unchanged. Never increases the
    global norm. @raise Invalid_argument if [max_norm <= 0]. *)

(** {1 Reductions} *)

val sum : t -> float
val mean : t -> float
val max_elt : t -> float
val min_elt : t -> float

val sum_keep : t -> t
(** Full sum as a rank-0 tensor. *)

val sum_axis : int -> t -> t
(** [sum_axis ax t] sums out dimension [ax] (removing it). *)

val mean_axis : int -> t -> t

val argmax : t -> int
(** Row-major index of the maximum element. *)

val logsumexp : t -> float
(** Numerically stable log of the sum of exponentials of all elements. *)

val softmax : t -> t
(** Softmax over all elements (stable). *)

val max_axis : int -> t -> t
(** [max_axis ax t] takes the elementwise maximum along dimension [ax]
    (removing it). Empty reductions yield [neg_infinity]. *)

val logsumexp_axis : int -> t -> t
(** [logsumexp_axis ax t] is a numerically stable
    [log (sum (exp t))] along dimension [ax] (removing it), the
    axis-wise counterpart of {!logsumexp}. Rows whose maximum is
    [neg_infinity] reduce to [neg_infinity] rather than NaN. *)

val bernoulli_logits_scores : logits:t -> x:t -> t
(** Fused Bernoulli-with-logits row scoring: broadcasts [logits] and
    [x] together, then sums the elementwise log-pmf
    [x*l - softplus l] (identically
    [-(x * softplus (-l) + (1 - x) * softplus l)]) over every trailing
    axis, yielding the per-row score vector indexed by the leading
    axis. One pass, no intermediate tensors — the hot scoring kernel
    of the batched likelihood path.
    @raise Shape_error when both operands are scalars. *)

val bernoulli_logits_scores_fwd : logits:t -> x:t -> t * t
(** {!bernoulli_logits_scores} together with the sigmoid of the
    broadcast logits, computed from the same exponentials, so a
    reverse pass can reuse it without re-evaluating [exp]. *)

val bernoulli_logits_scores_vjp : sigma:t -> x:t -> g:t -> t
(** Cotangent of {!bernoulli_logits_scores} with respect to [logits]
    at the broadcast shape: [g_i * (x - sigma)] with [g] the per-row
    cotangent and [sigma] the cached sigmoid from
    {!bernoulli_logits_scores_fwd}. Callers reduce back to the operand
    shape. *)

(** {1 Linear algebra} *)

val matmul : t -> t -> t
(** Rank-2 x rank-2 matrix product, rank-2 x rank-1 matrix-vector
    product, or rank-1 x rank-2 vector-matrix product. Cache-blocked
    and parallelized over row blocks above a size threshold, with
    results bit-identical to the naive sequential triple loop.
    @raise Shape_error on dimension mismatch. *)

val matmul_t : t -> t -> t
(** [matmul_t a b] is [a * transpose b] for [a : m x k] and [b : n x k],
    computed directly from [b]'s rows — no transpose is materialized.
    Used by the dense-layer backward pass. Bit-identical to
    [matmul a (transpose b)]. @raise Shape_error on rank or dimension
    mismatch (rank-2 operands only). *)

val t_matmul : t -> t -> t
(** [t_matmul a b] is [transpose a * b] for [a : m x k] and [b] either
    [m x n] (result [k x n]) or a length-[m] vector (result length [k]),
    again without materializing the transpose. Bit-identical to
    [matmul (transpose a) b]. @raise Shape_error on mismatch. *)

val transpose : t -> t
(** Transpose of a rank-2 tensor (rank-0/1 returned unchanged). *)

val dot : t -> t -> float
(** Inner product of two equal-sized tensors (flattened). *)

val outer : t -> t -> t
(** Outer product of two rank-1 tensors. *)

(** {1 Structural} *)

val reshape : int array -> t -> t
val flatten : t -> t

val concat0 : t list -> t
(** Concatenate along axis 0; all other dimensions must agree. *)

val stack0 : t list -> t
(** Stack equal-shaped tensors along a new leading axis. *)

val slice0 : t -> int -> t
(** [slice0 t i] is the [i]-th sub-tensor along axis 0 (rank drops 1). *)

val rows : t -> t list
(** All axis-0 slices of a tensor of rank >= 1. *)

val take_rows : t -> int list -> t
(** Gather the given axis-0 slices into a new tensor. *)

(** {1 Buffer pool (execution arena)}

    A {!Pool.t} recycles output buffers across repeated executions of
    the same compiled plan. While installed as the ambient allocator
    (see {!set_pool}), every operation's output buffer is drawn from
    the pool's free lists instead of [Array.make]; {!Pool.reset}
    reclaims everything handed out since the previous reset. Handed-out
    buffers are zero-filled, so pooled execution is bit-identical to
    fresh allocation.

    Soundness is the caller's contract: [reset] must only run once no
    tensor built from the previous generation's buffers is referenced
    any longer. The compiled executors in [Gen] gate resets on
    [Ad.backward_epoch], so a surrogate's tape is always consumed
    before its buffers are recycled. The ambient pool is domain-local:
    worker domains spawned by [Parallel] never observe the
    coordinating domain's pool. *)

module Pool : sig
  type t

  val create : unit -> t

  val alloc : t -> int -> float array
  (** [alloc p n] hands out a zero-filled buffer of length [n], reusing
      a free buffer of exactly that length when one is available. *)

  val reset : t -> unit
  (** Return every buffer handed out since the last reset to the free
      lists. See the soundness contract above. *)

  val warm : t -> int list -> unit
  (** [warm p sizes] pre-seeds the free lists with one buffer per
      listed extent (a static arena layout's prediction), so the first
      execution already hits. *)

  val hits : t -> int
  val misses : t -> int

  val floats : t -> int
  (** Total floats owned by the pool (allocated or warmed). *)

  val bytes : t -> int
  val resets : t -> int
end

val current_pool : unit -> Pool.t option
(** The ambient pool of the current domain, if any. *)

val set_pool : Pool.t option -> unit
(** Install (or clear) the ambient pool for the current domain. All
    subsequent op-output allocations on this domain are routed through
    it until cleared. *)

(** {1 Comparison and printing} *)

val equal : t -> t -> bool
(** Exact structural equality (shape and elements). *)

val approx_equal : ?tol:float -> t -> t -> bool
(** Same shape and all elements within [tol] (default [1e-9]). *)

val all_finite : t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
