(** Dense row-major float tensors.

    This is the numeric substrate for the whole system: rank-0 tensors act
    as scalars, rank-1 as vectors, rank-2 as matrices. All operations are
    pure (they allocate a fresh result) and support NumPy-style
    right-aligned broadcasting where documented. *)

type t
(** A dense tensor of [float]s with an immutable shape. The underlying
    buffer is not exposed; use {!get}, {!to_array}, or the iteration
    helpers. *)

exception Shape_error of string
(** Raised when operand shapes are incompatible. *)

(** {1 Construction} *)

val scalar : float -> t
(** [scalar x] is the rank-0 tensor holding [x]. *)

val of_array : int array -> float array -> t
(** [of_array shape data] wraps [data] (copied) as a tensor of [shape].
    @raise Shape_error if [Array.length data] does not match the shape. *)

val of_list1 : float list -> t
(** Rank-1 tensor from a list. *)

val of_list2 : float list list -> t
(** Rank-2 tensor from rows; all rows must have equal length. *)

val zeros : int array -> t
val ones : int array -> t
val full : int array -> float -> t

val init : int array -> (int array -> float) -> t
(** [init shape f] builds a tensor whose element at multi-index [ix] is
    [f ix]. *)

val eye : int -> t
(** [eye n] is the [n] x [n] identity matrix. *)

(** {1 Inspection} *)

val shape : t -> int array
val rank : t -> int
val size : t -> int

val get : t -> int array -> float
(** [get t ix] reads the element at multi-index [ix]. *)

val get_flat : t -> int -> float
(** [get_flat t i] reads the [i]-th element in row-major order. *)

val to_scalar : t -> float
(** Extract the value of a rank-0 (or single-element) tensor.
    @raise Shape_error on tensors with more than one element. *)

val to_array : t -> float array
(** Row-major copy of the contents. *)

val is_scalar : t -> bool

(** {1 Elementwise maps} *)

val map : (float -> float) -> t -> t

val map2 : (float -> float -> float) -> t -> t -> t
(** Broadcasting binary map: shapes are aligned from the right; a
    dimension of size 1 (or a missing dimension) broadcasts.
    @raise Shape_error when shapes are not broadcast-compatible. *)

val broadcast_shapes : int array -> int array -> int array
(** The result shape of broadcasting two shapes.
    @raise Shape_error when incompatible. *)

val broadcast_to : t -> int array -> t
(** Materialize a tensor broadcast to a larger shape. *)

(** {1 Arithmetic} *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val scale : float -> t -> t
val add_scalar : float -> t -> t
val pow_scalar : t -> float -> t

val exp : t -> t
val log : t -> t
val sqrt : t -> t
val sigmoid : t -> t
val tanh : t -> t
val relu : t -> t

val softplus : t -> t
(** Numerically stable [log (1 + exp x)]. *)

val clip : min:float -> max:float -> t -> t

val global_norm : t list -> float
(** The L2 norm of all elements of all tensors, viewed as one flat
    vector. Computed with a scaled sum of squares, so it does not
    overflow for representable norms; non-finite entries propagate
    (the result is [nan] or [infinity]). *)

val clip_by_global_norm : max_norm:float -> t list -> t list
(** Rescale the tensors jointly so their {!global_norm} is at most
    [max_norm]; lists whose joint norm is already within the bound
    (or is non-finite) are returned unchanged. Never increases the
    global norm. @raise Invalid_argument if [max_norm <= 0]. *)

(** {1 Reductions} *)

val sum : t -> float
val mean : t -> float
val max_elt : t -> float
val min_elt : t -> float

val sum_keep : t -> t
(** Full sum as a rank-0 tensor. *)

val sum_axis : int -> t -> t
(** [sum_axis ax t] sums out dimension [ax] (removing it). *)

val mean_axis : int -> t -> t

val argmax : t -> int
(** Row-major index of the maximum element. *)

val logsumexp : t -> float
(** Numerically stable log of the sum of exponentials of all elements. *)

val softmax : t -> t
(** Softmax over all elements (stable). *)

(** {1 Linear algebra} *)

val matmul : t -> t -> t
(** Rank-2 x rank-2 matrix product, rank-2 x rank-1 matrix-vector
    product, or rank-1 x rank-2 vector-matrix product.
    @raise Shape_error on dimension mismatch. *)

val transpose : t -> t
(** Transpose of a rank-2 tensor (rank-0/1 returned unchanged). *)

val dot : t -> t -> float
(** Inner product of two equal-sized tensors (flattened). *)

val outer : t -> t -> t
(** Outer product of two rank-1 tensors. *)

(** {1 Structural} *)

val reshape : int array -> t -> t
val flatten : t -> t

val concat0 : t list -> t
(** Concatenate along axis 0; all other dimensions must agree. *)

val stack0 : t list -> t
(** Stack equal-shaped tensors along a new leading axis. *)

val slice0 : t -> int -> t
(** [slice0 t i] is the [i]-th sub-tensor along axis 0 (rank drops 1). *)

val rows : t -> t list
(** All axis-0 slices of a tensor of rank >= 1. *)

val take_rows : t -> int list -> t
(** Gather the given axis-0 slices into a new tensor. *)

(** {1 Comparison and printing} *)

val equal : t -> t -> bool
(** Exact structural equality (shape and elements). *)

val approx_equal : ?tol:float -> t -> t -> bool
(** Same shape and all elements within [tol] (default [1e-9]). *)

val all_finite : t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
