(* SplitMix64 over a pure key. A key is a 64-bit state; [split] and
   [fold_in] derive children by mixing; raw draws mix the state once
   through the output function. *)

type key = int64

let golden = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let key seed = mix64 (Int64.add (Int64.of_int seed) golden)

let split k =
  let a = mix64 (Int64.add k golden) in
  let b = mix64 (Int64.add k (Int64.mul golden 2L)) in
  (a, b)

let split_many k n =
  Array.init n (fun i ->
      mix64 (Int64.add k (Int64.mul golden (Int64.of_int (i + 1)))))

let fold_in k i =
  mix64 (Int64.add (Int64.logxor k (mix64 (Int64.of_int i))) golden)

(* Raw draws *)

let to_unit_float bits =
  (* Use the top 53 bits to build a float in [0, 1). *)
  let mant = Int64.shift_right_logical bits 11 in
  Int64.to_float mant *. (1. /. 9007199254740992.)

let uniform k = to_unit_float (mix64 (Int64.add k 1L))

let uniform_range k lo hi =
  if not (Float.is_finite lo && Float.is_finite hi) then
    invalid_arg
      (Printf.sprintf "Prng.uniform_range: non-finite bounds [%g, %g]" lo hi);
  if lo > hi then
    invalid_arg
      (Printf.sprintf "Prng.uniform_range: empty range [%g, %g]" lo hi);
  lo +. ((hi -. lo) *. uniform k)

let normal k =
  let k1, k2 = split k in
  let u1 = Float.max (uniform k1) 1e-300 in
  let u2 = uniform k2 in
  Float.sqrt (-2. *. Float.log u1) *. Float.cos (2. *. Float.pi *. u2)

let normal_mean_std k mu sigma = mu +. (sigma *. normal k)
let exponential k = -.Float.log (Float.max (uniform k) 1e-300)

let bernoulli k p =
  if Float.is_nan p then invalid_arg "Prng.bernoulli: NaN probability";
  uniform k < p

let categorical k weights =
  if Array.length weights = 0 then
    invalid_arg "Prng.categorical: empty weight vector";
  Array.iteri
    (fun i w ->
      if Float.is_nan w then
        invalid_arg (Printf.sprintf "Prng.categorical: NaN weight at index %d" i);
      if w < 0. then
        invalid_arg
          (Printf.sprintf "Prng.categorical: negative weight %g at index %d" w i))
    weights;
  let total = Array.fold_left ( +. ) 0. weights in
  if total <= 0. then
    invalid_arg "Prng.categorical: nonpositive total weight";
  let u = uniform k *. total in
  let acc = ref 0. in
  let chosen = ref (Array.length weights - 1) in
  (try
     Array.iteri
       (fun i w ->
         acc := !acc +. w;
         if u < !acc then begin
           chosen := i;
           raise Exit
         end)
       weights
   with Exit -> ());
  !chosen

let categorical_logits k logits =
  if Array.length logits = 0 then
    invalid_arg "Prng.categorical_logits: empty logit vector";
  Array.iteri
    (fun i l ->
      if Float.is_nan l then
        invalid_arg
          (Printf.sprintf "Prng.categorical_logits: NaN logit at index %d" i))
    logits;
  if Array.for_all (fun l -> l = Float.neg_infinity) logits then
    invalid_arg "Prng.categorical_logits: all logits are -inf";
  let best = ref 0 and best_v = ref Float.neg_infinity in
  Array.iteri
    (fun i l ->
      let g = -.Float.log (Float.max (uniform (fold_in k i)) 1e-300) in
      let v = l -. Float.log g in
      if v > !best_v then begin
        best := i;
        best_v := v
      end)
    logits;
  !best

(* Marsaglia-Tsang, boosted for shape < 1. *)
let rec gamma k shape =
  if not (shape > 0. && Float.is_finite shape) then
    invalid_arg (Printf.sprintf "Prng.gamma: shape %g not positive finite" shape);
  if shape < 1. then begin
    let k1, k2 = split k in
    let u = Float.max (uniform k1) 1e-300 in
    gamma k2 (shape +. 1.) *. Float.pow u (1. /. shape)
  end
  else begin
    let d = shape -. (1. /. 3.) in
    let c = 1. /. Float.sqrt (9. *. d) in
    let rec try_at k =
      let k1, k2, k3 =
        let a, rest = split k in
        let b, c' = split rest in
        (a, b, c')
      in
      let x = normal k1 in
      let v = 1. +. (c *. x) in
      if v <= 0. then try_at k3
      else begin
        let v3 = v *. v *. v in
        let u = Float.max (uniform k2) 1e-300 in
        let x2 = x *. x in
        if
          u < 1. -. (0.0331 *. x2 *. x2)
          || Float.log u < (0.5 *. x2) +. (d *. (1. -. v3 +. Float.log v3))
        then d *. v3
        else try_at k3
      end
    in
    try_at k
  end

let beta k a b =
  let k1, k2 = split k in
  let x = gamma k1 a and y = gamma k2 b in
  x /. (x +. y)

let poisson k rate =
  if Float.is_nan rate then invalid_arg "Prng.poisson: NaN rate";
  if rate < 0. then
    invalid_arg (Printf.sprintf "Prng.poisson: negative rate %g" rate);
  if rate <= 0. then 0
  else if rate < 30. then begin
    (* Knuth's multiplication method. *)
    let limit = Float.exp (-.rate) in
    let rec loop k n p =
      let k1, k2 = split k in
      let p = p *. uniform k1 in
      if p <= limit then n else loop k2 (n + 1) p
    in
    loop k 0 1.
  end
  else begin
    (* Normal approximation with continuity correction, clamped at 0;
       adequate for the large-rate draws used in tests. *)
    let x = normal k in
    Stdlib.max 0 (int_of_float (Float.round (rate +. (Float.sqrt rate *. x))))
  end

let weibull k ~shape ~scale =
  if not (shape > 0. && Float.is_finite shape) then
    invalid_arg
      (Printf.sprintf "Prng.weibull: shape %g not positive finite" shape);
  if not (scale > 0. && Float.is_finite scale) then
    invalid_arg
      (Printf.sprintf "Prng.weibull: scale %g not positive finite" scale);
  let u = Float.max (uniform k) 1e-300 in
  scale *. Float.pow (-.Float.log u) (1. /. shape)

(* If W ~ Weibull(shape=2, scale=sqrt 2) and S = +/-1 uniformly, then
   |X| with X ~ Maxwell has density x^2 e^{-x^2/2} * sqrt(2/pi). Sample
   via the Gamma(3/2, 2) representation: X = sqrt(2 G), G ~ Gamma(3/2). *)
let maxwell k = Float.sqrt (2. *. gamma k 1.5)

let permutation k n =
  let a = Array.init n (fun i -> i) in
  let kr = ref k in
  for i = n - 1 downto 1 do
    let k1, k2 = split !kr in
    kr := k2;
    let j = int_of_float (uniform k1 *. float_of_int (i + 1)) in
    let j = Stdlib.min j i in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a

(* Tensor-valued draws *)

let uniform_tensor k shape =
  let n = Tensor.size (Tensor.zeros shape) in
  let ks = split_many k n in
  Tensor.of_array shape (Array.map uniform ks)

let normal_tensor k shape =
  let n = Tensor.size (Tensor.zeros shape) in
  let ks = split_many k n in
  Tensor.of_array shape (Array.map normal ks)

let normal_tensor_mean_std k mean std =
  let eps = normal_tensor k (Tensor.shape mean) in
  Tensor.add mean (Tensor.mul std eps)
