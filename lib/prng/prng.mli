(** Splittable, counter-based pseudo-random number generation.

    Keys are pure values: drawing from a key never mutates it. Instead,
    {!split} deterministically derives independent child keys, in the
    style of JAX's PRNG. All samplers are deterministic functions of the
    key, which makes every experiment in this repository reproducible
    from a single seed. The underlying generator is SplitMix64. *)

type key
(** An immutable PRNG key. *)

val key : int -> key
(** [key seed] builds a root key from an integer seed. *)

val split : key -> key * key
(** Derive two independent child keys. *)

val split_many : key -> int -> key array
(** [split_many k n] derives [n] independent child keys. *)

val fold_in : key -> int -> key
(** [fold_in k i] derives the child key indexed by [i] — handy for
    per-iteration or per-site keys without threading state. *)

(** {1 Raw draws}

    Each draw consumes the whole key; to draw several values, split
    first (or use the vector samplers below, which split internally). *)

val uniform : key -> float
(** Uniform on the half-open interval [\[0, 1)]. *)

val uniform_range : key -> float -> float -> float
(** [uniform_range k lo hi] is uniform on [\[lo, hi)].
    @raise Invalid_argument on non-finite bounds or [lo > hi]. *)

val normal : key -> float
(** Standard normal (Box-Muller). *)

val normal_mean_std : key -> float -> float -> float

val exponential : key -> float
(** Rate-1 exponential. *)

val bernoulli : key -> float -> bool
(** [bernoulli k p] is [true] with probability [p].
    @raise Invalid_argument on a NaN probability. *)

val categorical : key -> float array -> int
(** Sample an index proportionally to the (unnormalized, nonnegative)
    weights. @raise Invalid_argument on an all-zero or empty weight
    vector, and on any NaN or negative weight (anywhere in the vector,
    even if the total happens to be positive). *)

val categorical_logits : key -> float array -> int
(** Sample an index from unnormalized log-weights (Gumbel-max).
    @raise Invalid_argument on an empty vector, any NaN logit, or when
    every logit is [-inf] (no mass anywhere). *)

val gamma : key -> float -> float
(** [gamma k shape] samples a Gamma(shape, 1) variate
    (Marsaglia-Tsang; valid for any [shape > 0]).
    @raise Invalid_argument unless [shape] is positive and finite. *)

val beta : key -> float -> float -> float
(** [beta k a b] samples a Beta(a, b) variate. *)

val poisson : key -> float -> int
(** [poisson k rate] samples a Poisson(rate) count; [rate = 0.] yields 0.
    @raise Invalid_argument on a NaN or negative rate. *)

val weibull : key -> shape:float -> scale:float -> float
(** Weibull variate via inverse transform. The measure-valued derivative
    of the normal's mean uses Weibull(shape=2, scale=sqrt 2).
    @raise Invalid_argument unless [shape] and [scale] are positive and
    finite. *)

val maxwell : key -> float
(** Magnitude of a standard Maxwell variate (density proportional to
    [x^2 exp(-x^2/2)] on [x >= 0]). The double-sided Maxwell used by
    the measure-valued derivative of the normal's scale is obtained by
    attaching a random sign. *)

val permutation : key -> int -> int array
(** A uniformly random permutation of [0 .. n-1]. *)

(** {1 Tensor-valued draws} *)

val uniform_tensor : key -> int array -> Tensor.t
val normal_tensor : key -> int array -> Tensor.t

val normal_tensor_mean_std : key -> Tensor.t -> Tensor.t -> Tensor.t
(** Elementwise [mean + std * eps] with iid standard-normal [eps];
    mean and std must share a shape. *)
