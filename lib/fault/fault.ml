(* Decisions are pure functions of (plan seed, category, occurrence
   index): category [cat]'s [n]-th consultation draws
   [Prng.uniform (fold_in (fold_in base cat) n)] and compares against
   the plan's probability. Step-indexed faults (oom, delay, kill) use
   the step number itself as the index, so they are replayable even
   when a crash-and-resume run consults them a different number of
   times than an uninterrupted run. *)

type spec = {
  io_error : float;
  short_write : float;
  grad_nan : float;
  grad_inf : float;
  oom : float;
  delay_p : float;
  delay_ms : float;
  kill : [ `Never | `At of int | `In of int * int ];
}

let empty_spec =
  {
    io_error = 0.;
    short_write = 0.;
    grad_nan = 0.;
    grad_inf = 0.;
    oom = 0.;
    delay_p = 0.;
    delay_ms = 0.;
    kill = `Never;
  }

type plan = {
  p_seed : int;
  p_text : string;
  p_spec : spec;
  p_base : Prng.key;
  p_kill_step : int option;
  mutable c_io : int;  (* occurrence counters *)
  mutable c_short : int;
  mutable c_grad : int;
  tally : (string, int ref) Hashtbl.t;
}

(* Category indices keying the per-category decision streams. *)
let cat_io = 1
let cat_short = 2
let cat_grad = 3
let cat_oom = 4
let cat_delay = 5
let cat_kill = 6

let draw plan cat n = Prng.uniform (Prng.fold_in (Prng.fold_in plan.p_base cat) n)

let seed p = p.p_seed
let spec_text p = p.p_text
let kill_step p = p.p_kill_step

(* ------------------------------------------------------------------ *)
(* Parsing *)

let parse_prob key s =
  match float_of_string_opt s with
  | Some p when p >= 0. && p <= 1. -> Ok p
  | _ -> Error (Printf.sprintf "%s: expected a probability in [0,1], got %S" key s)

let parse_entry spec entry =
  match String.index_opt entry '=' with
  | None -> Error (Printf.sprintf "expected key=value, got %S" entry)
  | Some i ->
    let key = String.sub entry 0 i in
    let value = String.sub entry (i + 1) (String.length entry - i - 1) in
    let prob f = Result.map f (parse_prob key value) in
    (match key with
    | "io-error" -> prob (fun p -> { spec with io_error = p })
    | "short-write" -> prob (fun p -> { spec with short_write = p })
    | "grad-nan" -> prob (fun p -> { spec with grad_nan = p })
    | "grad-inf" -> prob (fun p -> { spec with grad_inf = p })
    | "oom" -> prob (fun p -> { spec with oom = p })
    | "delay" -> (
      match String.index_opt value ':' with
      | None -> Error "delay: expected delay=P:MS"
      | Some j ->
        let ps = String.sub value 0 j in
        let ms = String.sub value (j + 1) (String.length value - j - 1) in
        Result.bind (parse_prob "delay" ps) (fun p ->
            match float_of_string_opt ms with
            | Some m when m >= 0. && Float.is_finite m ->
              Ok { spec with delay_p = p; delay_ms = m }
            | _ -> Error (Printf.sprintf "delay: bad milliseconds %S" ms)))
    | "kill-at" -> (
      match int_of_string_opt value with
      | Some n when n >= 0 -> Ok { spec with kill = `At n }
      | _ -> Error (Printf.sprintf "kill-at: expected a step index, got %S" value))
    | "kill-in" -> (
      let parts = String.split_on_char '.' value in
      match List.filter (fun s -> s <> "") parts with
      | [ lo; hi ] -> (
        match (int_of_string_opt lo, int_of_string_opt hi) with
        | Some lo, Some hi when 0 <= lo && lo <= hi ->
          Ok { spec with kill = `In (lo, hi) }
        | _ -> Error (Printf.sprintf "kill-in: expected LO..HI, got %S" value))
      | _ -> Error (Printf.sprintf "kill-in: expected LO..HI, got %S" value))
    | _ -> Error (Printf.sprintf "unknown fault kind %S" key))

let plan_of_string ~seed text =
  let entries =
    String.split_on_char ' ' (String.map (function ',' | ';' -> ' ' | c -> c) text)
    |> List.filter (fun s -> s <> "")
  in
  let rec build spec = function
    | [] -> Ok spec
    | e :: rest -> Result.bind (parse_entry spec e) (fun spec -> build spec rest)
  in
  Result.map
    (fun spec ->
      let base = Prng.key seed in
      let kill_step =
        match spec.kill with
        | `Never -> None
        | `At n -> Some n
        | `In (lo, hi) ->
          (* Resolved once, from the plan's own key stream. *)
          let u = Prng.uniform (Prng.fold_in base cat_kill) in
          Some (lo + int_of_float (u *. float_of_int (hi - lo + 1)))
      in
      {
        p_seed = seed;
        p_text = text;
        p_spec = spec;
        p_base = base;
        p_kill_step = kill_step;
        c_io = 0;
        c_short = 0;
        c_grad = 0;
        tally = Hashtbl.create 8;
      })
    (build empty_spec entries)

let plan_to_json p =
  let open Obs.Json in
  let s = p.p_spec in
  to_string
    (Obj
       [ ("seed", Num (float_of_int p.p_seed));
         ("spec", Str p.p_text);
         ("io_error", Num s.io_error);
         ("short_write", Num s.short_write);
         ("grad_nan", Num s.grad_nan);
         ("grad_inf", Num s.grad_inf);
         ("oom", Num s.oom);
         ("delay_p", Num s.delay_p);
         ("delay_ms", Num s.delay_ms);
         ( "kill_step",
           match p.p_kill_step with
           | Some k -> Num (float_of_int k)
           | None -> Null ) ])

(* ------------------------------------------------------------------ *)
(* Installation *)

let installed : plan option ref = ref None
let active () = !installed <> None
let current () = !installed

let install p =
  p.c_io <- 0;
  p.c_short <- 0;
  p.c_grad <- 0;
  Hashtbl.reset p.tally;
  installed := Some p

let clear () = installed := None

let record p what =
  (match Hashtbl.find_opt p.tally what with
  | Some r -> Stdlib.incr r
  | None -> Hashtbl.add p.tally what (ref 1));
  Obs.incr ("fault/" ^ what)

let injected () =
  match !installed with
  | None -> []
  | Some p ->
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) p.tally []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ------------------------------------------------------------------ *)
(* Hooks *)

let on_io ~op ~path =
  match !installed with
  | None -> ()
  | Some p ->
    let n = p.c_io in
    p.c_io <- n + 1;
    if p.p_spec.io_error > 0. && draw p cat_io n < p.p_spec.io_error then begin
      record p "io_error";
      raise
        (Sys_error
           (Printf.sprintf "%s: injected %s fault (plan seed %d, io op %d)" path
              (match op with `Read -> "read" | `Write -> "write")
              p.p_seed n))
    end

let short_write_len ~path:_ ~full =
  match !installed with
  | None -> None
  | Some p ->
    let n = p.c_short in
    p.c_short <- n + 1;
    if full > 0 && p.p_spec.short_write > 0.
       && draw p cat_short n < p.p_spec.short_write
    then begin
      record p "short_write";
      (* An independent draw picks how much of the write survives. *)
      let frac = draw p cat_short (n + 1000003) in
      Some (int_of_float (frac *. float_of_int full))
    end
    else None

let grad_poison ~name:_ =
  match !installed with
  | None -> None
  | Some p ->
    let s = p.p_spec in
    if s.grad_nan = 0. && s.grad_inf = 0. then None
    else begin
      let n = p.c_grad in
      p.c_grad <- n + 1;
      let u = draw p cat_grad n in
      if u < s.grad_nan then begin
        record p "grad_nan";
        Some Float.nan
      end
      else if u < s.grad_nan +. s.grad_inf then begin
        record p "grad_inf";
        Some Float.infinity
      end
      else None
    end

let on_step ~step =
  match !installed with
  | None -> ()
  | Some p ->
    (match p.p_kill_step with
    | Some k when k = step ->
      (* A real SIGKILL: no exception, no cleanup, no atexit — the
         process is gone, exactly like the OOM killer or a node
         failure. Durable checkpoints are the only way back. *)
      Unix.kill (Unix.getpid ()) Sys.sigkill
    | _ -> ());
    let s = p.p_spec in
    if s.delay_p > 0. && draw p cat_delay step < s.delay_p then begin
      record p "delay";
      if s.delay_ms > 0. then Unix.sleepf (s.delay_ms /. 1000.)
    end;
    if s.oom > 0. && draw p cat_oom step < s.oom then begin
      record p "oom";
      raise Out_of_memory
    end
