(** Deterministic fault injection for resilience testing.

    A {!plan} is a seeded, replayable schedule of faults: I/O errors
    and short writes in the checkpoint store, NaN/Inf poisoning of
    gradients, allocation failures and delays in the training loop,
    and a SIGKILL of the whole process at a chosen step. Every
    decision is a pure function of the plan's seed and a per-category
    occurrence index (derived with [Prng.fold_in]), so two runs with
    the same plan see exactly the same faults at exactly the same
    points — which is what makes crash-recovery tests reproducible.

    The hooks follow the [lib/obs] discipline: instrumented code pays
    one branch ({!active}) when no plan is installed, and a run with
    no plan (or a plan whose probabilities are all zero) is bit-
    identical to an uninstrumented run — enforced by a property test
    in [test/test_fault.ml]. Injection never consumes the training
    PRNG stream: plans carry their own key.

    This module only {e decides}; the effectful part of each fault
    (raising [Sys_error], truncating a write, poisoning a tensor) is
    performed by the instrumented layer, except {!on_step}, which
    sleeps, raises [Out_of_memory], or SIGKILLs the process itself. *)

type plan

(** {1 Plan construction}

    Plans are parsed from a compact spec string: whitespace- or
    comma-separated [key=value] entries.

    - [io-error=P] — each store I/O operation fails with [Sys_error]
      with probability [P].
    - [short-write=P] — each checkpoint write is truncated partway
      (then fails) with probability [P].
    - [grad-nan=P] / [grad-inf=P] — each gradient tensor passed to the
      optimizer is poisoned with a NaN / infinity with probability [P].
    - [oom=P] — each training step raises [Out_of_memory] (before the
      forward pass) with probability [P].
    - [delay=P:MS] — each training step sleeps [MS] milliseconds with
      probability [P].
    - [kill-at=N] — the process SIGKILLs itself at the start of
      training step [N].
    - [kill-in=LO..HI] — like [kill-at], at a step drawn uniformly
      from [\[LO, HI\]] by the plan's seed (inspect with
      {!kill_step}).

    Example: ["io-error=0.2 short-write=0.1 kill-in=10..40"]. *)

val plan_of_string : seed:int -> string -> (plan, string) result

val seed : plan -> int
val spec_text : plan -> string

val kill_step : plan -> int option
(** The resolved kill step, when the plan has one. *)

val plan_to_json : plan -> string
(** The resolved plan (seed, spec, probabilities, kill step) as one
    JSON object — saved as a CI artifact so a failing chaos run can be
    replayed exactly. *)

(** {1 Installation} *)

val active : unit -> bool
(** Whether a plan is installed — the one branch every hook pays. *)

val install : plan -> unit
(** Install a plan (replacing any previous one) and reset its
    occurrence counters and injection tallies. *)

val clear : unit -> unit
(** Remove the installed plan; {!active} becomes [false]. *)

val current : unit -> plan option

val injected : unit -> (string * int) list
(** Tally of injections performed since {!install}, by category name
    ("io_error", "short_write", "grad_nan", "grad_inf", "oom",
    "delay"), sorted by name. The same tallies are mirrored into
    [lib/obs] counters ("fault/io_error", ...) when observability is
    live. *)

(** {1 Hooks}

    Call only under an {!active} check. *)

val on_io : op:[ `Read | `Write ] -> path:string -> unit
(** Consult the plan for one store I/O operation.
    @raise Sys_error when an I/O fault is injected. *)

val short_write_len : path:string -> full:int -> int option
(** [short_write_len ~path ~full] is [Some n] ([0 <= n < full]) when
    this checkpoint write should stop after [n] of its [full] bytes
    (the store then raises [Sys_error], leaving a truncated temp
    file). *)

val grad_poison : name:string -> float option
(** Consult the plan for one gradient tensor; [Some v] means poison an
    element with [v] (NaN or infinity). *)

val on_step : step:int -> unit
(** Consult the plan at the start of training step [step]. May sleep
    (delay fault), raise [Out_of_memory] (allocation fault), or
    SIGKILL the process (kill fault — uncatchable by design: recovery
    must come from durable checkpoints, not an exception handler). *)
