(** A dependency-free domain pool for data-parallel kernels.

    The pool runs [blocks] independent closures across a fixed number of
    OCaml 5 domains. Work is partitioned by the {e caller} into blocks
    whose boundaries do not depend on the domain count, and each block
    writes to a disjoint region of the output, so results are bit-for-bit
    identical whether the pool runs with 1 domain or many.

    The domain count defaults to the [PPVI_DOMAINS] environment variable
    (clamped to [1 .. max_domains]) and can be overridden at runtime with
    {!set_domains} — both executables expose it as [--domains].

    Worker domains are spawned lazily on the first parallel {!run} and
    torn down on {!set_domains} or at exit. {!set_domains} must not be
    called concurrently with {!run}. *)

val max_domains : int
(** Upper bound accepted by {!set_domains} (128). *)

val domains : unit -> int
(** The configured domain count (>= 1). A value of 1 means every {!run}
    executes inline on the calling domain. *)

val set_domains : int -> unit
(** [set_domains n] reconfigures the pool to [n] domains (clamped to
    [1 .. max_domains]), joining any existing workers first. Safe to call
    repeatedly; cheap when the count does not change. *)

val jobs_run : unit -> int
(** Process-wide number of {!run} calls with at least one block. *)

val jobs_parallel : unit -> int
(** How many of those were dispatched to the pool (the rest ran
    inline: single block, one domain, or nested inside a worker).
    [jobs_parallel () / jobs_run ()] is the domain-utilization ratio
    the observability layer reports. *)

val blocks_run : unit -> int
(** Process-wide number of blocks executed. *)

val reset_counters : unit -> unit
(** Zero the three utilization counters. [ppvi profile] calls this at
    the start of a run so the reported figures are per-run rather than
    process-lifetime. Do not call concurrently with {!run}. *)

val in_worker_now : unit -> bool
(** [true] when called from inside a pool worker domain (where nested
    {!run} calls execute inline). *)

val run : blocks:int -> (int -> unit) -> unit
(** [run ~blocks f] executes [f 0 .. f (blocks - 1)], possibly in
    parallel on the pool's domains (the calling domain participates).
    Each call [f i] must only write state disjoint from every other
    block. Runs inline, in order, when [blocks <= 1], when the pool has
    one domain, or when called from inside a worker (no nested
    parallelism). If one or more blocks raise, every block is still
    executed and the first recorded exception is re-raised. *)
