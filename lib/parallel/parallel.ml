let max_domains = 128

let clamp n = if n < 1 then 1 else if n > max_domains then max_domains else n

let env_domains () =
  match Sys.getenv_opt "PPVI_DOMAINS" with
  | None -> 1
  | Some s -> ( match int_of_string_opt (String.trim s) with
    | Some n -> clamp n
    | None -> 1)

(* Pool state, all guarded by [mutex]. A job is a closure plus a shared
   block counter: workers (and the submitting domain) claim block indices
   one at a time until none remain. *)

let mutex = Mutex.create ()
let work = Condition.create () (* a job was posted, or quit was set *)
let donec = Condition.create () (* the last block of a job finished *)
let configured = ref (env_domains ())
let quit = ref false
let job : (int -> unit) option ref = ref None
let next = ref 0
let blocks = ref 0
let unfinished = ref 0
let first_exn : exn option ref = ref None
let workers : unit Domain.t list ref = ref []

(* Workers must never re-enter the pool: kernels called from inside a
   block run their loops inline. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let domains () = !configured

(* Utilization counters for the observability layer (atomic: [run] may
   be entered from worker domains running nested kernels inline). *)
let jobs_total = Atomic.make 0
let jobs_parallel_total = Atomic.make 0
let blocks_total = Atomic.make 0
let jobs_run () = Atomic.get jobs_total
let jobs_parallel () = Atomic.get jobs_parallel_total
let blocks_run () = Atomic.get blocks_total

let reset_counters () =
  Atomic.set jobs_total 0;
  Atomic.set jobs_parallel_total 0;
  Atomic.set blocks_total 0

let in_worker_now () = Domain.DLS.get in_worker

let record_exn e =
  Mutex.lock mutex;
  if !first_exn = None then first_exn := Some e;
  Mutex.unlock mutex

(* Claim and execute blocks until none are left. Called with [mutex]
   held; returns with [mutex] held. The in-worker flag is raised for
   the duration of each block on EVERY domain, including the
   submitting one: a nested [run] from inside a block must execute
   inline, or it would overwrite the pool's shared job state
   ([next]/[blocks]/[unfinished]) while the outer job is mid-flight. *)
let drain f =
  while !next < !blocks do
    let i = !next in
    incr next;
    Mutex.unlock mutex;
    let saved = Domain.DLS.get in_worker in
    Domain.DLS.set in_worker true;
    (try f i with e -> record_exn e);
    Domain.DLS.set in_worker saved;
    Mutex.lock mutex;
    decr unfinished;
    if !unfinished = 0 then Condition.broadcast donec
  done

let worker_loop () =
  Domain.DLS.set in_worker true;
  Mutex.lock mutex;
  let rec loop () =
    if !quit then Mutex.unlock mutex
    else begin
      (match !job with Some f when !next < !blocks -> drain f | _ -> Condition.wait work mutex);
      loop ()
    end
  in
  loop ()

let join_workers () =
  Mutex.lock mutex;
  quit := true;
  Condition.broadcast work;
  Mutex.unlock mutex;
  List.iter Domain.join !workers;
  workers := [];
  quit := false

let () = Stdlib.at_exit (fun () -> join_workers ())

let set_domains n =
  let n = clamp n in
  if n <> !configured || List.length !workers > n - 1 then join_workers ();
  configured := n

let ensure_workers () =
  let missing = !configured - 1 - List.length !workers in
  for _ = 1 to missing do
    workers := Domain.spawn worker_loop :: !workers
  done

let run ~blocks:nb f =
  if nb > 0 then begin
    Atomic.incr jobs_total;
    ignore (Atomic.fetch_and_add blocks_total nb);
    if nb = 1 || !configured <= 1 || Domain.DLS.get in_worker then
      for i = 0 to nb - 1 do
        f i
      done
    else begin
      Atomic.incr jobs_parallel_total;
      ensure_workers ();
      Mutex.lock mutex;
      job := Some f;
      next := 0;
      blocks := nb;
      unfinished := nb;
      first_exn := None;
      Condition.broadcast work;
      drain f;
      while !unfinished > 0 do
        Condition.wait donec mutex
      done;
      job := None;
      let e = !first_exn in
      first_exn := None;
      Mutex.unlock mutex;
      match e with Some e -> raise e | None -> ()
    end
  end
