(** Traces: finite dictionaries from string-valued addresses to sampled
    values. A generative program denotes a measure over traces; [sim]
    produces them and [density] consumes them. *)

type t

exception Duplicate_address of string
(** Raised when a program uses the same address twice in one execution
    (the paper's [disj] check; a runtime error with measure-zero
    semantics). *)

val empty : t
val is_empty : t -> bool
val singleton : string -> Value.t -> t

val add : string -> Value.t -> t -> t
(** @raise Duplicate_address if the address is already bound. *)

val find_opt : string -> t -> Value.t option

val get : string -> t -> Value.t
(** @raise Not_found when the address is absent. *)

val remove : string -> t -> t

val union_disjoint : t -> t -> t
(** Concatenation of traces with distinct address sets (the paper's
    [++]). @raise Duplicate_address on overlap. *)

val restrict : string list -> t -> t
(** Keep only the given addresses (missing ones are simply absent). *)

val without : string list -> t -> t
(** Drop the given addresses. *)

val diff : t -> t -> t
(** [diff u v]: the bindings of [u] whose addresses are not in [v]. *)

val mem : string -> t -> bool
val size : t -> int
val keys : t -> string list
val bindings : t -> (string * Value.t) list
val of_list : (string * Value.t) list -> t

val map_keys : (string -> string) -> t -> t
(** Rename every address (used by the sequential plate fallback to
    suffix instance indices). @raise Duplicate_address on collision. *)

val filter_map_keys : (string -> string option) -> t -> t
(** Keep and rename the addresses for which [f] returns [Some];
    @raise Duplicate_address on collision. *)

val subset_keys : t -> t -> bool
(** [subset_keys u v]: every address of [u] is bound in [v]. *)

val equal_primal : t -> t -> bool
(** Same addresses, primal-equal values. *)

(** {1 Typed accessors} *)

val get_float : string -> t -> float
val get_ad : string -> t -> Ad.t
val get_bool : string -> t -> bool
val get_int : string -> t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string
