module Smap = Map.Make (String)

type t = Value.t Smap.t

exception Duplicate_address of string

let empty = Smap.empty
let is_empty = Smap.is_empty
let singleton = Smap.singleton

let add name v t =
  if Smap.mem name t then raise (Duplicate_address name);
  Smap.add name v t

let find_opt = Smap.find_opt
let get = Smap.find
let remove = Smap.remove

let union_disjoint a b =
  Smap.union (fun name _ _ -> raise (Duplicate_address name)) a b

let restrict names t =
  List.fold_left
    (fun acc name ->
      match Smap.find_opt name t with
      | Some v -> Smap.add name v acc
      | None -> acc)
    Smap.empty names

let without names t = List.fold_left (fun acc name -> Smap.remove name acc) t names
let diff a b = Smap.filter (fun name _ -> not (Smap.mem name b)) a
let mem = Smap.mem
let size = Smap.cardinal
let keys t = List.map fst (Smap.bindings t)
let bindings = Smap.bindings
let of_list l = List.fold_left (fun acc (name, v) -> add name v acc) empty l

let map_keys f t =
  Smap.fold (fun name v acc -> add (f name) v acc) t empty

let filter_map_keys f t =
  Smap.fold
    (fun name v acc ->
      match f name with Some name' -> add name' v acc | None -> acc)
    t empty
let subset_keys a b = Smap.for_all (fun name _ -> Smap.mem name b) a

let equal_primal a b =
  Smap.equal Value.equal_primal a b

let get_float name t = Value.to_float (get name t)
let get_ad name t = Value.to_ad (get name t)
let get_bool name t = Value.to_bool (get name t)
let get_int name t = Value.to_int (get name t)

let pp ppf t =
  Format.fprintf ppf "{@[%a@]}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       (fun ppf (name, v) -> Format.fprintf ppf "%s -> %a" name Value.pp v))
    (bindings t)

let to_string t = Format.asprintf "%a" pp t
