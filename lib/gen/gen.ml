type _ t =
  | Return : 'a -> 'a t
  | Bind : 'b t * ('b -> 'a t) -> 'a t
  | Sample : 'a Dist.t * string -> 'a t
  | Observe : 'b Dist.t * 'b -> unit t
  | Marginal : string list * 'b t * algorithm -> Trace.t t
  | Normalize : 'a t * algorithm -> 'a t
  | Plate : int * (int -> 'b t) -> 'b array t

and packed = Packed : 'a t -> packed
and algorithm = { proposal : Trace.t -> packed; particles : int }

let return x = Return x
let bind m f = Bind (m, f)
let map f m = Bind (m, fun x -> Return (f x))
let sample d name = Sample (d, name)
let observe d v = Observe (d, v)

let plate ~n body =
  if n < 1 then invalid_arg "Gen.plate: n < 1";
  Plate (n, body)

let importance ?(particles = 1) proposal =
  if particles < 1 then invalid_arg "Gen.importance: particles < 1";
  { proposal; particles }

let importance_prior ?particles packed =
  importance ?particles (fun _ -> packed)

let marginal ~keep prog alg = Marginal (keep, prog, alg)
let normalize prog alg = Normalize (prog, alg)

let primal a = Tensor.to_scalar (Ad.value a)
let neg_inf = Ad.scalar Float.neg_infinity
let rigid a = Value.to_float_rigid (Value.Real a)

(* Observability: time density-leaf evaluations under the primitive's
   name. Plain calls (no closures), so the disabled path allocates
   nothing beyond what the untimed code did. *)
let timed_density (d : 'v Dist.t) x =
  if Obs.live () then begin
    let t0 = Obs.start () in
    let lw = d.Dist.log_density x in
    Obs.stop Obs.Density d.Dist.name t0;
    lw
  end
  else d.Dist.log_density x

let timed_density_n (b : 'v Dist.batched) name x =
  if Obs.live () then begin
    let t0 = Obs.start () in
    let lw = b.Dist.log_density_n x in
    Obs.stop Obs.Density name t0;
    lw
  end
  else b.Dist.log_density_n x

(* Run an Adev computation [n] times, collecting the results (each run
   gets an independent key via the monad's splitting). *)
let rec collect n f =
  let open Adev.Syntax in
  if n <= 0 then Adev.return []
  else
    let* x = f () in
    let* rest = collect (n - 1) f in
    Adev.return (x :: rest)

(* Average of weights in log space: log ((1/n) sum_i exp lw_i), with a
   uniform-probability fallback when every weight is zero. *)
let log_mean_exp logws =
  let n = List.length logws in
  Ad.O.(Ad.logsumexp (Ad.stack0 logws) - Ad.scalar (Float.log (float_of_int n)))

(* ------------------------------------------------------------------ *)
(* Plate lowering *)

let plate_slot addr i = Printf.sprintf "%s[%d]" addr i

type 'a plate_plan = {
  pl_dist : 'a Dist.t;
  pl_batched : 'a Dist.batched;
  pl_addr : string;
}

let plate_probe_key = Prng.key 0x9e3779b9

(* A plate body is lowered to ONE batched site when every instance is
   the same single sample site: one address, a batchable primitive
   whose strategy can be rank-lifted (REPARAM with a batched
   reparameterized sampler, or plain REINFORCE), and identically
   distributed across instances. The i.i.d. spot-check draws each
   instance's primitive at a fixed probe key and compares both the
   draw and its log density: identical parameters give identical
   deterministic draws, so any index-dependence in the body shows up
   as a mismatch and the plate falls back to the sequential path. *)
let plate_plan : type a. int -> (int -> a t) -> a plate_plan option =
 fun n body ->
  match body 0 with
  | Sample (d0, addr0) -> begin
    match d0.Dist.batched with
    | Some b ->
      let strategy_ok =
        match d0.Dist.strategy with
        | Dist.Reparam -> b.Dist.reparam_n <> None
        | Dist.Reinforce -> true
        | _ -> false
      in
      if not strategy_ok then None
      else begin
        let x0 = d0.Dist.sample plate_probe_key in
        let v0 = d0.Dist.inject x0 in
        let lp0 = primal (d0.Dist.log_density x0) in
        let same_dist (di : a Dist.t) =
          String.equal di.Dist.name d0.Dist.name
          &&
          let xi = di.Dist.sample plate_probe_key in
          Value.equal_primal (di.Dist.inject xi) v0
          && Float.equal (primal (di.Dist.log_density xi)) lp0
        in
        let rec iid i =
          i >= n
          ||
          match body i with
          | Sample (di, addri) ->
            String.equal addri addr0 && same_dist di && iid (i + 1)
          | _ -> false
        in
        if iid 1 then Some { pl_dist = d0; pl_batched = b; pl_addr = addr0 }
        else None
      end
    | None -> None
  end
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Execution plans (staged compilation)

   A [Plan.t] is the residue of partially evaluating a program once:
   the straight-line sequence of its sample/observe/plate sites with
   addresses interned to integer slots, plate lowering decisions
   pre-made, and batch shapes recorded. The compiled executors below
   walk the program against its plan — the program still drives control
   flow (binds may compute on sampled values), but every per-call
   discovery the interpreter repeats (trace-map building, plate
   i.i.d. probing, remainder threading) is replaced by O(1) slot
   operations. Plans are built by [lib/compile]; construction refuses
   any program whose structure could differ between runs, which is what
   lets the executors assume the plan's site order. *)

(* Reusable per-run buffers (the "arena"): one scratch of each kind is
   cached on the plan and reused across calls; a run that finds the
   scratch taken (re-entrant execution, e.g. under an enclosing ENUM
   site) allocates a fresh one, so reuse is purely an optimization. *)
type sim_scratch = {
  mutable xcursor : int;
  xslots : Value.t option array;
  mutable xextra : Trace.t list;  (* sequential-plate fallback traces *)
}

type dens_scratch = {
  mutable dcursor : int;
  dvals : Value.t option array;  (* per-slot trace values, resolved once *)
  mutable dconsumed : int;
}

module Plan = struct
  type kind = Sample_site | Observe_site | Plate_batched | Plate_seq

  type step = {
    st_kind : kind;
    st_addr : string;  (* site address; the primitive name for observes *)
    st_slot : int;  (* trace slot index; -1 when the step binds none *)
    st_dist : string;
    st_strategy : string;
    st_n : int;  (* plate instance count; 1 otherwise *)
    st_shape : int array option;  (* planned value shape, when known *)
    st_fused : bool;  (* density evaluates through a fused kernel *)
  }

  type t = {
    p_id : string;
    p_steps : step array;
    p_slots : string array;  (* slot -> interned trace address *)
    p_seq_fallbacks : int;
    mutable p_sim_scratch : sim_scratch option;
    mutable p_dens_scratch : dens_scratch option;
    mutable p_arena : Tensor.Pool.t option;
        (* buffer pool installed for the duration of compiled runs *)
    mutable p_arena_epoch : int;
        (* [Ad.backward_epoch] at this plan's last arena run; the pool
           is only reset when a backward has happened since, i.e. when
           the previous surrogate's tape has been consumed. -1 = never
           ran. *)
  }

  (* [make ~id steps] interns the trace-binding steps' addresses into
     slots (in step order, overwriting any [st_slot] the caller set) and
     freezes the plan. Addresses must be distinct — the executors'
     consumption counting depends on it. *)
  let make ~id steps =
    let slots = ref [] and nslots = ref 0 and fallbacks = ref 0 in
    let steps =
      List.map
        (fun s ->
          match s.st_kind with
          | Sample_site | Plate_batched ->
            let slot = !nslots in
            incr nslots;
            slots := s.st_addr :: !slots;
            { s with st_slot = slot }
          | Plate_seq ->
            incr fallbacks;
            { s with st_slot = -1 }
          | Observe_site -> { s with st_slot = -1 })
        steps
    in
    let slots = Array.of_list (List.rev !slots) in
    let seen = Hashtbl.create 16 in
    Array.iter
      (fun a ->
        if Hashtbl.mem seen a then
          invalid_arg (Printf.sprintf "Gen.Plan.make: duplicate address %S" a);
        Hashtbl.add seen a ())
      slots;
    { p_id = id;
      p_steps = Array.of_list steps;
      p_slots = slots;
      p_seq_fallbacks = !fallbacks;
      p_sim_scratch = None;
      p_dens_scratch = None;
      p_arena = None;
      p_arena_epoch = -1 }

  let id p = p.p_id
  let steps p = p.p_steps
  let slots p = p.p_slots
  let seq_fallbacks p = p.p_seq_fallbacks

  let set_arena p arena =
    p.p_arena <- arena;
    p.p_arena_epoch <- -1

  let arena p = p.p_arena
end

exception Plan_mismatch of string

let plan_mismatch plan msg =
  raise
    (Plan_mismatch
       (Printf.sprintf
          "compiled plan %S is stale: %s (recompile the model or drop \
           ?compiled)"
          plan.Plan.p_id msg))

(* sim (Fig. 5, bottom): run the program through each primitive's
   strategy, building the trace and its log density. *)
let rec simulate : type a. a t -> (a * Trace.t * Ad.t) Adev.t =
 fun prog ->
  let open Adev.Syntax in
  match prog with
  | Return x -> Adev.return (x, Trace.empty, Ad.scalar 0.)
  | Bind (m, f) ->
    let* x, u1, w1 = simulate m in
    let* y, u2, w2 = simulate (f x) in
    Adev.return (y, Trace.union_disjoint u1 u2, Ad.add w1 w2)
  | Sample (d, name) ->
    let* x = Adev.sample_at name d in
    let v = d.Dist.inject x in
    (* Attach the trace address to the provenance entry [Adev.sample]
       made, so smoothness errors can name the sample site. *)
    Value.register_origin_value v
      ~address:name ~strategy:(Dist.strategy_name d.Dist.strategy) ();
    Adev.return (x, Trace.singleton name v, timed_density d x)
  | Observe (d, v) ->
    let lw = timed_density d v in
    let* () = Adev.score_log lw in
    Adev.return ((), Trace.empty, lw)
  | Marginal (keep, inner, alg) -> simulate_marginal keep inner alg
  | Normalize (inner, alg) -> simulate_normalize inner alg
  | Plate (n, body) -> simulate_plate n body

(* density's xi helper (Fig. 5, top): consume trace values, accumulate
   log density, return the remainder. *)
and density_in : type a. a t -> Trace.t -> (Ad.t * a * Trace.t) Adev.t =
 fun prog u ->
  let open Adev.Syntax in
  match prog with
  | Return x -> Adev.return (Ad.scalar 0., x, u)
  | Bind (m, f) ->
    let* w1, x, u1 = density_in m u in
    let* w2, y, u2 = density_in (f x) u1 in
    Adev.return (Ad.add w1 w2, y, u2)
  | Sample (d, name) -> begin
    match Trace.find_opt name u with
    | Some v -> begin
      match d.Dist.project v with
      | Some x -> Adev.return (timed_density d x, x, Trace.remove name u)
      | None -> Adev.return (neg_inf, d.Dist.default, Trace.remove name u)
    end
    | None -> Adev.return (neg_inf, d.Dist.default, u)
  end
  | Observe (d, v) -> Adev.return (timed_density d v, (), u)
  | Marginal (keep, inner, alg) -> density_marginal keep inner alg u
  | Normalize (inner, alg) -> density_normalize inner alg u
  | Plate (n, body) -> density_plate n body u

and log_density : type a. a t -> Trace.t -> Ad.t Adev.t =
 fun prog u ->
  let open Adev.Syntax in
  let* w, _, remainder = density_in prog u in
  if Trace.is_empty remainder then Adev.return w else Adev.return neg_inf

and log_density_prefix : type a. a t -> Trace.t -> Ad.t Adev.t =
 fun prog u ->
  let open Adev.Syntax in
  let* w, _, _ = density_in prog u in
  Adev.return w

(* Unbiased importance-sampling estimate of the log marginal density of
   [kept] under [inner]'s trace marginal. When [actual_aux] is given,
   conditional importance sampling: the actual auxiliary trace stands in
   for one particle (Appendix A.3). *)
and marginal_log_density_estimate :
    type b.
    b t -> algorithm -> kept:Trace.t -> actual_aux:Trace.t option ->
    Ad.t Adev.t =
 fun inner alg ~kept ~actual_aux ->
  let open Adev.Syntax in
  let (Packed proposal) = alg.proposal kept in
  let fresh_particle () =
    let* _, aux, logq = simulate proposal in
    let* logp = log_density inner (Trace.union_disjoint kept aux) in
    Adev.return Ad.O.(logp - logq)
  in
  let* particles =
    match actual_aux with
    | None -> collect alg.particles fresh_particle
    | Some aux ->
      let* logq = log_density proposal aux in
      let* logp = log_density inner (Trace.union_disjoint kept aux) in
      let actual = Ad.O.(logp - logq) in
      let* rest = collect (alg.particles - 1) fresh_particle in
      Adev.return (actual :: rest)
  in
  Adev.return (log_mean_exp particles)

and simulate_marginal :
    type b. string list -> b t -> algorithm -> (Trace.t * Trace.t * Ad.t) Adev.t
    =
 fun keep inner alg ->
  let open Adev.Syntax in
  let* _, t, _ = simulate inner in
  List.iter
    (fun name ->
      if not (Trace.mem name t) then
        invalid_arg
          (Printf.sprintf "Gen.marginal: kept address %S was not sampled" name))
    keep;
  let kept = Trace.restrict keep t in
  let aux = Trace.without keep t in
  let* logp = marginal_log_density_estimate inner alg ~kept ~actual_aux:(Some aux) in
  Adev.return (kept, kept, logp)

and density_marginal :
    type b.
    string list -> b t -> algorithm -> Trace.t ->
    (Ad.t * Trace.t * Trace.t) Adev.t =
 fun keep inner alg u ->
  let open Adev.Syntax in
  if List.exists (fun name -> not (Trace.mem name u)) keep then
    Adev.return (neg_inf, Trace.restrict keep u, Trace.without keep u)
  else begin
    let kept = Trace.restrict keep u in
    let remainder = Trace.without keep u in
    let* logp = marginal_log_density_estimate inner alg ~kept ~actual_aux:None in
    Adev.return (logp, kept, remainder)
  end

and simulate_normalize : type a. a t -> algorithm -> (a * Trace.t * Ad.t) Adev.t
    =
 fun inner alg ->
  let open Adev.Syntax in
  let (Packed proposal) = alg.proposal Trace.empty in
  let* particles =
    collect alg.particles (fun () ->
        let* _, t, logq = simulate proposal in
        let* logp, value, remainder = density_in inner t in
        let logp = if Trace.is_empty remainder then logp else neg_inf in
        Adev.return (t, value, logp, Ad.O.(logp - logq)))
  in
  let logws = List.map (fun (_, _, _, lw) -> lw) particles in
  let log_zhat = log_mean_exp logws in
  let logw_vec = Ad.stack0 logws in
  let probs =
    if Float.is_finite (primal log_zhat) then Ad.exp (Ad.log_softmax logw_vec)
    else begin
      (* Every particle has zero weight: resample uniformly. *)
      let n = List.length particles in
      Ad.const (Tensor.full [| n |] (1. /. float_of_int n))
    end
  in
  let* j = Adev.sample (Dist.categorical_enum probs) in
  let t_j, value_j, logp_j, _ = List.nth particles j in
  Adev.return (value_j, t_j, Ad.O.(logp_j - log_zhat))

and density_normalize :
    type a. a t -> algorithm -> Trace.t -> (Ad.t * a * Trace.t) Adev.t =
 fun inner alg u ->
  let open Adev.Syntax in
  let (Packed proposal) = alg.proposal Trace.empty in
  let* logp_u, value, remainder = density_in inner u in
  let consumed = Trace.diff u remainder in
  let* logq_u = log_density proposal consumed in
  let logw_actual = Ad.O.(logp_u - logq_u) in
  let* others =
    collect (alg.particles - 1) (fun () ->
        let* _, t, logq = simulate proposal in
        let* logp = log_density inner t in
        Adev.return Ad.O.(logp - logq))
  in
  let log_zhat = log_mean_exp (logw_actual :: others) in
  Adev.return (Ad.O.(logp_u - log_zhat), value, remainder)

(* Plate: one batched site when the body is batchable (the trace then
   stores the stacked value under the single plate address), otherwise
   a sequential loop whose instance [i] runs under [Prng.fold_in key i]
   with its addresses suffixed ["[i]"]. The key discipline makes the
   two paths draw bit-identical values. *)
and simulate_plate :
    type b. int -> (int -> b t) -> (b array * Trace.t * Ad.t) Adev.t =
 fun n body ->
  Adev.keyed (fun key ->
      match plate_plan n body with
      | Some { pl_dist = d; pl_batched = b; pl_addr = addr } ->
        let open Adev.Syntax in
        Obs.incr "gen/plate_batched";
        let* x = Adev.with_key key (Adev.sample_batched_at addr ~n d) in
        let v = d.Dist.inject x in
        Value.register_origin_value v ~address:addr
          ~strategy:(Dist.strategy_name d.Dist.strategy) ();
        Adev.return
          ( b.Dist.unstack n x,
            Trace.singleton addr v,
            Ad.sum (timed_density_n b d.Dist.name x) )
      | None ->
        Obs.incr "gen/plate_seq";
        simulate_plate_seq n body key)

and simulate_plate_seq :
    type b. int -> (int -> b t) -> Prng.key -> (b array * Trace.t * Ad.t) Adev.t
    =
 fun n body key ->
  let open Adev.Syntax in
  let rec go i vals trace w =
    if i >= n then Adev.return (Array.of_list (List.rev vals), trace, w)
    else
      let ki = Prng.fold_in key i in
      let* x, t_i, w_i =
        match body i with
        | Sample (d, addr) ->
          (* A single-site body is interpreted directly under the row
             key (not via [simulate]'s bind, which would split it), so
             sequential draws match batched rows bit-for-bit. *)
          let* x = Adev.with_key ki (Adev.sample_at addr d) in
          let v = d.Dist.inject x in
          Value.register_origin_value v ~address:(plate_slot addr i)
            ~strategy:(Dist.strategy_name d.Dist.strategy) ();
          Adev.return
            (x, Trace.singleton (plate_slot addr i) v, timed_density d x)
        | prog ->
          let* x, t, w = Adev.with_key ki (simulate prog) in
          Adev.return (x, Trace.map_keys (fun a -> plate_slot a i) t, w)
      in
      go (i + 1) (x :: vals) (Trace.union_disjoint trace t_i) (Ad.add w_i w)
  in
  go 0 [] Trace.empty (Ad.scalar 0.)

and density_plate :
    type b. int -> (int -> b t) -> Trace.t -> (Ad.t * b array * Trace.t) Adev.t
    =
 fun n body u ->
  Adev.keyed (fun key ->
      match plate_plan n body with
      | Some { pl_dist = d; pl_batched = b; pl_addr = addr }
        when Trace.mem addr u -> begin
        Obs.incr "gen/plate_batched";
        match d.Dist.project (Trace.get addr u) with
        | Some x ->
          Adev.return
            ( Ad.sum (timed_density_n b d.Dist.name x),
              b.Dist.unstack n x,
              Trace.remove addr u )
        | None ->
          Adev.return
            ( neg_inf,
              Array.init n (fun _ -> d.Dist.default),
              Trace.remove addr u )
      end
      | _ ->
        Obs.incr "gen/plate_seq";
        density_plate_seq n body u key)

and density_plate_seq :
    type b.
    int -> (int -> b t) -> Trace.t -> Prng.key ->
    (Ad.t * b array * Trace.t) Adev.t =
 fun n body u key ->
  let open Adev.Syntax in
  let rec go i w vals u =
    if i >= n then Adev.return (w, Array.of_list (List.rev vals), u)
    else
      let ki = Prng.fold_in key i in
      let suffix = Printf.sprintf "[%d]" i in
      let slen = String.length suffix in
      let strip name =
        let nlen = String.length name in
        if nlen > slen && String.sub name (nlen - slen) slen = suffix then
          Some (String.sub name 0 (nlen - slen))
        else None
      in
      (* Instance [i] sees only its own suffixed addresses, de-suffixed;
         what it consumes is removed (re-suffixed) from the plate's
         remainder. *)
      let u_i = Trace.filter_map_keys strip u in
      let* w_i, x_i, rem_i = Adev.with_key ki (density_in (body i) u_i) in
      let consumed = Trace.diff u_i rem_i in
      let u =
        List.fold_left
          (fun acc (base, _) -> Trace.remove (base ^ suffix) acc)
          u (Trace.bindings consumed)
      in
      go (i + 1) (Ad.add w_i w) (x_i :: vals) u
  in
  go 0 (Ad.scalar 0.) [] u

(* ------------------------------------------------------------------ *)
(* Compiled execution against a Plan.

   The flagship invariant: compiled execution is bit-identical to the
   interpreter. The executors mirror the interpreter's exact monadic
   shapes — the same [let*] structure per constructor (so [Adev.bind]'s
   key splitting derives the same [Prng] keys at every site), and the
   same [Ad.add] tree over weights (floating-point addition is not
   associative, so the accumulation order is part of the contract).
   [Adev.delay] and [Adev.map] are key-transparent, which is what lets
   the wrappers below reshape results without perturbing the ambient
   key. What the plan removes: per-site [Trace] map construction and
   merging (values land in a preallocated slot array), per-call plate
   i.i.d. probing (the lowering decision is pre-made), and the density
   evaluator's remainder threading (one [Trace.find_opt] per slot up
   front, then consumption counting). *)

(* Arena-backed execution. When a plan carries a pool (attached by
   [Compile.plan_for]'s static layout), a compiled run installs it as
   the ambient tensor allocator for its own duration: every op-output
   buffer of the forward pass comes from the pool's free lists. The
   pool is reset — recycling the previous run's buffers — only when
   [Ad.backward_epoch] has advanced since this plan's last arena run,
   so multi-sample estimators that stack several forward tapes before
   one backward ([Adev.expectation_mean], replicated particles) never
   recycle a buffer a live tape still references. [Adev.run] /
   [Adev.expectation] restore the caller's ambient pool even on
   exceptional exit. *)
type arena_token = No_arena | Installed of Tensor.Pool.t option

(* Plan-owned mutable state (arena pool, scratch frames) must not be
   touched during a checkpoint replay — the replay runs mid-[backward],
   after the epoch has advanced, so the gate below would reset the pool
   over buffers the main tape still references — nor under the sharded
   training driver, where several domains can execute the same plan
   concurrently. Both modes fall back to plain heap allocation and
   fresh scratch, which is bit-identical by the pool contract. *)
let plan_state_bypass () = Ad.replaying () || Ad.shard_mode ()

let arena_enter plan =
  if plan_state_bypass () then No_arena
  else
  match plan.Plan.p_arena with
  | None -> No_arena
  | Some pool ->
    let prev = Tensor.current_pool () in
    let epoch = Ad.backward_epoch () in
    if epoch <> plan.Plan.p_arena_epoch then begin
      Tensor.Pool.reset pool;
      plan.Plan.p_arena_epoch <- epoch
    end;
    if Obs.live () then begin
      Obs.gauge "arena/bytes" (float_of_int (Tensor.Pool.bytes pool));
      Obs.gauge "arena/hits" (float_of_int (Tensor.Pool.hits pool));
      Obs.gauge "arena/misses" (float_of_int (Tensor.Pool.misses pool))
    end;
    Tensor.set_pool (Some pool);
    Installed prev

let arena_exit = function
  | No_arena -> ()
  | Installed prev -> Tensor.set_pool prev

let acquire_sim plan =
  match (if plan_state_bypass () then None else plan.Plan.p_sim_scratch) with
  | Some st ->
    plan.Plan.p_sim_scratch <- None;
    st.xcursor <- 0;
    Array.fill st.xslots 0 (Array.length st.xslots) None;
    st.xextra <- [];
    st
  | None ->
    { xcursor = 0;
      xslots = Array.make (Array.length plan.Plan.p_slots) None;
      xextra = [] }

let release_sim plan st =
  if not (plan_state_bypass ()) then plan.Plan.p_sim_scratch <- Some st

let acquire_dens plan u =
  let st =
    match (if plan_state_bypass () then None else plan.Plan.p_dens_scratch) with
    | Some st ->
      plan.Plan.p_dens_scratch <- None;
      st.dcursor <- 0;
      st.dconsumed <- 0;
      st
    | None ->
      { dcursor = 0;
        dvals = Array.make (Array.length plan.Plan.p_slots) None;
        dconsumed = 0 }
  in
  let slots = plan.Plan.p_slots in
  for i = 0 to Array.length slots - 1 do
    st.dvals.(i) <- Trace.find_opt slots.(i) u
  done;
  st

let release_dens plan st =
  if not (plan_state_bypass ()) then plan.Plan.p_dens_scratch <- Some st

(* Verify that the runtime site at [cursor] matches the plan and return
   its step. The address check is what makes [Plan_mismatch] a hard
   error rather than silent corruption when a model's structure drifts
   from its cached plan. *)
let advance plan cursor kind addr =
  let steps = plan.Plan.p_steps in
  if cursor >= Array.length steps then
    plan_mismatch plan
      (Printf.sprintf "site %S appears after the last of %d planned sites" addr
         (Array.length steps));
  let step = steps.(cursor) in
  if step.Plan.st_kind <> kind || not (String.equal step.Plan.st_addr addr) then
    plan_mismatch plan
      (Printf.sprintf "runtime site %S does not match planned site %S (step %d)"
         addr step.Plan.st_addr cursor);
  step

let advance_plate plan cursor n =
  let steps = plan.Plan.p_steps in
  if cursor >= Array.length steps then
    plan_mismatch plan "a plate appears after the last planned site";
  let step = steps.(cursor) in
  (match step.Plan.st_kind with
  | Plan.Plate_batched | Plan.Plate_seq ->
    if step.Plan.st_n <> n then
      plan_mismatch plan
        (Printf.sprintf "plate %S has %d instances at runtime but %d in the plan"
           step.Plan.st_addr n step.Plan.st_n)
  | Plan.Sample_site | Plan.Observe_site ->
    plan_mismatch plan
      (Printf.sprintf "runtime plate does not match planned site %S (step %d)"
         step.Plan.st_addr cursor));
  step

let rec exec_simulate : type a. Plan.t -> sim_scratch -> a t -> (a * Ad.t) Adev.t
    =
 fun plan st prog ->
  let open Adev.Syntax in
  match prog with
  | Return x -> Adev.return (x, Ad.scalar 0.)
  | Bind (m, f) ->
    let* x, w1 = exec_simulate plan st m in
    let* y, w2 = exec_simulate plan st (f x) in
    Adev.return (y, Ad.add w1 w2)
  | Sample (d, name) ->
    let step = advance plan st.xcursor Plan.Sample_site name in
    st.xcursor <- st.xcursor + 1;
    let* x = Adev.sample_at name d in
    let v = d.Dist.inject x in
    Value.register_origin_value v ~address:name
      ~strategy:(Dist.strategy_name d.Dist.strategy) ();
    st.xslots.(step.Plan.st_slot) <- Some v;
    Adev.return (x, timed_density d x)
  | Observe (d, v) ->
    ignore (advance plan st.xcursor Plan.Observe_site d.Dist.name : Plan.step);
    st.xcursor <- st.xcursor + 1;
    let lw = timed_density d v in
    let* () = Adev.score_log lw in
    Adev.return ((), lw)
  | Plate (n, body) -> exec_simulate_plate plan st n body
  | Marginal (_, _, _) ->
    plan_mismatch plan "a marginal construct was reached under a compiled plan"
  | Normalize (_, _) ->
    plan_mismatch plan "a normalize construct was reached under a compiled plan"

and exec_simulate_plate :
    type b.
    Plan.t -> sim_scratch -> int -> (int -> b t) -> (b array * Ad.t) Adev.t =
 fun plan st n body ->
  let step = advance_plate plan st.xcursor n in
  st.xcursor <- st.xcursor + 1;
  match step.Plan.st_kind with
  | Plan.Plate_batched -> begin
    (* The pre-made lowering decision replaces [plate_plan]'s O(n)
       probe draws; only the body's head site is re-extracted. *)
    match body 0 with
    | Sample (d, addr)
      when String.equal addr step.Plan.st_addr && d.Dist.batched <> None ->
      let b = Option.get d.Dist.batched in
      Adev.keyed (fun key ->
          let open Adev.Syntax in
          Obs.incr "gen/plate_batched";
          let* x = Adev.with_key key (Adev.sample_batched_at addr ~n d) in
          let v = d.Dist.inject x in
          Value.register_origin_value v ~address:addr
            ~strategy:(Dist.strategy_name d.Dist.strategy) ();
          st.xslots.(step.Plan.st_slot) <- Some v;
          Adev.return
            (b.Dist.unstack n x, Ad.sum (timed_density_n b d.Dist.name x)))
    | _ ->
      plan_mismatch plan
        (Printf.sprintf "plate body at %S no longer lowers to a batched site"
           step.Plan.st_addr)
  end
  | Plan.Plate_seq ->
    (* Faithful fallback: the interpreter's sequential path, whose
       internal samples are all keyed by [Prng.fold_in key i] under
       [with_key], so the wrapping bind's ambient split is never
       observed. *)
    Adev.keyed (fun key ->
        let open Adev.Syntax in
        Obs.incr "gen/plate_seq";
        let* xs, t, w = simulate_plate_seq n body key in
        st.xextra <- t :: st.xextra;
        Adev.return (xs, w))
  | Plan.Sample_site | Plan.Observe_site -> assert false (* advance_plate *)

let compiled_trace plan st =
  let nslots = Array.length plan.Plan.p_slots in
  let bindings = ref [] in
  for i = nslots - 1 downto 0 do
    match st.xslots.(i) with
    | Some v -> bindings := (plan.Plan.p_slots.(i), v) :: !bindings
    | None ->
      plan_mismatch plan
        (Printf.sprintf "planned site %S never executed" plan.Plan.p_slots.(i))
  done;
  List.fold_left
    (fun acc t -> Trace.union_disjoint acc t)
    (Trace.of_list !bindings) (List.rev st.xextra)

let simulate_compiled : type a. Plan.t -> a t -> (a * Trace.t * Ad.t) Adev.t =
 fun plan prog ->
  Adev.delay (fun () ->
      let tok = arena_enter plan in
      let st = acquire_sim plan in
      Adev.map
        (fun (x, w) ->
          arena_exit tok;
          if st.xcursor <> Array.length plan.Plan.p_steps then
            plan_mismatch plan
              (Printf.sprintf "the program finished after %d of %d planned sites"
                 st.xcursor
                 (Array.length plan.Plan.p_steps));
          let trace = compiled_trace plan st in
          release_sim plan st;
          (x, trace, w))
        (exec_simulate plan st prog))

let rec exec_density :
    type a. Plan.t -> dens_scratch -> a t -> Trace.t -> (Ad.t * a) Adev.t =
 fun plan st prog u ->
  let open Adev.Syntax in
  match prog with
  | Return x -> Adev.return (Ad.scalar 0., x)
  | Bind (m, f) ->
    let* w1, x = exec_density plan st m u in
    let* w2, y = exec_density plan st (f x) u in
    Adev.return (Ad.add w1 w2, y)
  | Sample (d, name) -> begin
    let step = advance plan st.dcursor Plan.Sample_site name in
    st.dcursor <- st.dcursor + 1;
    match st.dvals.(step.Plan.st_slot) with
    | Some v -> begin
      st.dconsumed <- st.dconsumed + 1;
      match d.Dist.project v with
      | Some x -> Adev.return (timed_density d x, x)
      | None -> Adev.return (neg_inf, d.Dist.default)
    end
    | None -> Adev.return (neg_inf, d.Dist.default)
  end
  | Observe (d, v) ->
    ignore (advance plan st.dcursor Plan.Observe_site d.Dist.name : Plan.step);
    st.dcursor <- st.dcursor + 1;
    Adev.return (timed_density d v, ())
  | Plate (n, body) -> exec_density_plate plan st n body u
  | Marginal (_, _, _) ->
    plan_mismatch plan "a marginal construct was reached under a compiled plan"
  | Normalize (_, _) ->
    plan_mismatch plan "a normalize construct was reached under a compiled plan"

and exec_density_plate :
    type b.
    Plan.t -> dens_scratch -> int -> (int -> b t) -> Trace.t ->
    (Ad.t * b array) Adev.t =
 fun plan st n body u ->
  let step = advance_plate plan st.dcursor n in
  st.dcursor <- st.dcursor + 1;
  let seq () =
    Adev.keyed (fun key ->
        let open Adev.Syntax in
        Obs.incr "gen/plate_seq";
        let* w, xs, u' = density_plate_seq n body u key in
        (* The sequential fallback consumes only this plate's suffixed
           addresses (plan addresses are globally distinct), so the size
           delta is exactly its consumption. *)
        st.dconsumed <- st.dconsumed + (Trace.size u - Trace.size u');
        Adev.return (w, xs))
  in
  match step.Plan.st_kind with
  | Plan.Plate_batched -> begin
    match body 0 with
    | Sample (d, addr)
      when String.equal addr step.Plan.st_addr && d.Dist.batched <> None -> begin
      let b = Option.get d.Dist.batched in
      match st.dvals.(step.Plan.st_slot) with
      | Some v -> begin
        Obs.incr "gen/plate_batched";
        st.dconsumed <- st.dconsumed + 1;
        match d.Dist.project v with
        | Some x ->
          Adev.return
            (Ad.sum (timed_density_n b d.Dist.name x), b.Dist.unstack n x)
        | None -> Adev.return (neg_inf, Array.init n (fun _ -> d.Dist.default))
      end
      | None ->
        (* The interpreter also takes the sequential path when the
           stacked address is absent from the trace. *)
        seq ()
    end
    | _ ->
      plan_mismatch plan
        (Printf.sprintf "plate body at %S no longer lowers to a batched site"
           step.Plan.st_addr)
  end
  | Plan.Plate_seq -> seq ()
  | Plan.Sample_site | Plan.Observe_site -> assert false (* advance_plate *)

let log_density_compiled : type a. Plan.t -> a t -> Trace.t -> Ad.t Adev.t =
 fun plan prog u ->
  let open Adev.Syntax in
  let finished = ref None in
  let* w, _ =
    Adev.delay (fun () ->
        let tok = arena_enter plan in
        let st = acquire_dens plan u in
        finished := Some (st, tok);
        exec_density plan st prog u)
  in
  match !finished with
  | None -> assert false
  | Some (st, tok) ->
    finished := None;
    arena_exit tok;
    if st.dcursor <> Array.length plan.Plan.p_steps then
      plan_mismatch plan
        (Printf.sprintf "the program finished after %d of %d planned sites"
           st.dcursor
           (Array.length plan.Plan.p_steps));
    let complete = st.dconsumed = Trace.size u in
    release_dens plan st;
    if complete then Adev.return w else Adev.return neg_inf

(* The plate-lowering decision, exposed for the compiler so plans can
   pre-record what [simulate] would decide per call. *)
type plate_decision =
  | Plate_batchable of { addr : string; instance_shape : int array option }
  | Plate_sequential

let plate_decision : type b. n:int -> (int -> b t) -> plate_decision =
 fun ~n body ->
  match plate_plan n body with
  | Some { pl_dist = d; pl_addr = addr; _ } ->
    let instance_shape =
      match d.Dist.inject (d.Dist.sample plate_probe_key) with
      | Value.Real v -> Some (Ad.shape v)
      | Value.Bool _ | Value.Int _ -> None
    in
    Plate_batchable { addr; instance_shape }
  | None -> Plate_sequential

(* ------------------------------------------------------------------ *)
(* Whole-program vectorized interpreters: run [n] i.i.d. executions of
   the program as ONE pass in which every sample site is a batched site
   (leading axis = instance axis) and the accumulated weight is a
   per-instance [n]-vector. Binds receive batched values, so the
   program must be rank-polymorphic in its deterministic parts (tensor
   ops broadcasting over the leading axis). Anything that cannot be
   rank-lifted raises [Dist.Not_batchable]; wrap calls in
   [Adev.or_else] to fall back to the sequential interpreters under
   the same key. *)

let vec_neg_inf n = Ad.const (Tensor.full [| n |] Float.neg_infinity)

(* Broadcast a scalar weight (a batch-invariant contribution) up to the
   per-instance vector. *)
let ensure_vec n w =
  if Ad.shape w = [| n |] then w else Ad.add w (Ad.const (Tensor.zeros [| n |]))

let batched_payload (d : 'v Dist.t) =
  match d.Dist.batched with
  | Some b -> b
  | None ->
    raise (Dist.Not_batchable (d.Dist.name ^ ": no batched execution payload"))

(* Per-instance observation weight. A stacked observation (or batched
   parameters broadcasting against a shared one) yields the [n]-vector
   of per-instance log densities; otherwise every instance shares the
   scalar log density. *)
let observe_weight_batched : type v. int -> v Dist.t -> v -> Ad.t =
 fun n d v ->
  let scalar () = timed_density d v in
  match d.Dist.batched with
  | None -> scalar ()
  | Some b -> begin
    match timed_density_n b d.Dist.name v with
    | lw when Ad.shape lw = [| n |] -> lw
    | _ -> scalar ()
    | exception (Dist.Not_batchable _ | Tensor.Shape_error _) -> scalar ()
  end

let rec simulate_batched : type a. n:int -> a t -> (a * Trace.t * Ad.t) Adev.t =
 fun ~n prog ->
  let open Adev.Syntax in
  match prog with
  | Return x -> Adev.return (x, Trace.empty, Ad.scalar 0.)
  | Bind (m, f) ->
    let* x, u1, w1 = simulate_batched ~n m in
    let* y, u2, w2 = simulate_batched ~n (f x) in
    Adev.return (y, Trace.union_disjoint u1 u2, Ad.add w1 w2)
  | Sample (d, name) ->
    let b = batched_payload d in
    let* x = Adev.sample_batched_at name ~n d in
    let v = d.Dist.inject x in
    Value.register_origin_value v ~address:name
      ~strategy:(Dist.strategy_name d.Dist.strategy) ();
    Adev.return (x, Trace.singleton name v, timed_density_n b d.Dist.name x)
  | Observe (d, v) ->
    let lw = observe_weight_batched n d v in
    (* The joint score over the n instances: sum of per-instance terms,
       or n copies of a shared scalar term. *)
    let joint =
      if Ad.shape lw = [| n |] then Ad.sum lw
      else Ad.scale (float_of_int n) lw
    in
    let* () = Adev.score_log joint in
    Adev.return ((), Trace.empty, lw)
  | Marginal (_, _, _) ->
    raise (Dist.Not_batchable "Gen.simulate_batched: marginal")
  | Normalize (_, _) ->
    raise (Dist.Not_batchable "Gen.simulate_batched: normalize")
  | Plate (_, _) ->
    raise (Dist.Not_batchable "Gen.simulate_batched: nested plate")

and density_in_batched :
    type a. n:int -> a t -> Trace.t -> (Ad.t * a * Trace.t) Adev.t =
 fun ~n prog u ->
  let open Adev.Syntax in
  match prog with
  | Return x -> Adev.return (Ad.scalar 0., x, u)
  | Bind (m, f) ->
    let* w1, x, u1 = density_in_batched ~n m u in
    let* w2, y, u2 = density_in_batched ~n (f x) u1 in
    Adev.return (Ad.add w1 w2, y, u2)
  | Sample (d, name) -> begin
    let b = batched_payload d in
    match Trace.find_opt name u with
    | Some v -> begin
      match d.Dist.project v with
      | Some x ->
        Adev.return (timed_density_n b d.Dist.name x, x, Trace.remove name u)
      | None ->
        Adev.return
          ( vec_neg_inf n,
            b.Dist.stack (Array.make n d.Dist.default),
            Trace.remove name u )
    end
    | None ->
      Adev.return (vec_neg_inf n, b.Dist.stack (Array.make n d.Dist.default), u)
  end
  | Observe (d, v) -> Adev.return (observe_weight_batched n d v, (), u)
  | Marginal (_, _, _) ->
    raise (Dist.Not_batchable "Gen.density_in_batched: marginal")
  | Normalize (_, _) ->
    raise (Dist.Not_batchable "Gen.density_in_batched: normalize")
  | Plate (_, _) ->
    raise (Dist.Not_batchable "Gen.density_in_batched: nested plate")

let log_density_batched ~n prog u =
  let open Adev.Syntax in
  let* w, _, remainder = density_in_batched ~n prog u in
  if Trace.is_empty remainder then Adev.return (ensure_vec n w)
  else Adev.return (vec_neg_inf n)

(* Detached execution: every site just samples, every density is primal.
   Mirrors [simulate] / [density_in] without the gradient machinery. *)
let rec sample_prior : type a. a t -> Prng.key -> a * Trace.t * float =
 fun prog key ->
  match prog with
  | Return x -> (x, Trace.empty, 0.)
  | Bind (m, f) ->
    let k1, k2 = Prng.split key in
    let x, u1, w1 = sample_prior m k1 in
    let y, u2, w2 = sample_prior (f x) k2 in
    (y, Trace.union_disjoint u1 u2, w1 +. w2)
  | Sample (d, name) ->
    let x = d.Dist.sample key in
    (x, Trace.singleton name (d.Dist.inject x), primal (d.Dist.log_density x))
  | Observe (d, v) -> ((), Trace.empty, primal (d.Dist.log_density v))
  | Marginal (keep, inner, alg) ->
    let k1, k2 = Prng.split key in
    let _, t, _ = sample_prior inner k1 in
    List.iter
      (fun name ->
        if not (Trace.mem name t) then
          invalid_arg
            (Printf.sprintf "Gen.marginal: kept address %S was not sampled"
               name))
      keep;
    let kept = Trace.restrict keep t in
    let aux = Trace.without keep t in
    let logp =
      prior_marginal_estimate inner alg ~kept ~actual_aux:(Some aux) k2
    in
    (kept, kept, logp)
  | Normalize (inner, alg) ->
    let (Packed proposal) = alg.proposal Trace.empty in
    let keys = Prng.split_many key (alg.particles + 1) in
    let particles =
      List.init alg.particles (fun i ->
          let _, t, logq = sample_prior proposal keys.(i) in
          let logp, value, remainder = prior_density inner t (Prng.fold_in keys.(i) 1) in
          let logp = if Trace.is_empty remainder then logp else Float.neg_infinity in
          (t, value, logp, logp -. logq))
    in
    let logws = List.map (fun (_, _, _, lw) -> lw) particles in
    let log_zhat = prior_log_mean_exp logws in
    let weights =
      if Float.is_finite log_zhat then
        List.map (fun lw -> Float.exp (lw -. log_zhat)) logws
      else List.map (fun _ -> 1.) logws
    in
    let j = Prng.categorical keys.(alg.particles) (Array.of_list weights) in
    let t_j, value_j, logp_j, _ = List.nth particles j in
    (value_j, t_j, logp_j -. log_zhat)
  | Plate (n, body) -> begin
    match plate_plan n body with
    | Some { pl_dist = d; pl_batched = b; pl_addr = addr } ->
      let x = b.Dist.sample_n key n in
      ( b.Dist.unstack n x,
        Trace.singleton addr (d.Dist.inject x),
        primal (Ad.sum (b.Dist.log_density_n x)) )
    | None ->
      let rec go i vals trace w =
        if i >= n then (Array.of_list (List.rev vals), trace, w)
        else
          let ki = Prng.fold_in key i in
          let x, t_i, w_i =
            match body i with
            | Sample (d, addr) ->
              (* Direct single-site interpretation under the row key so
                 the sequential path draws exactly the batched rows. *)
              let x = d.Dist.sample ki in
              ( x,
                Trace.singleton (plate_slot addr i) (d.Dist.inject x),
                primal (d.Dist.log_density x) )
            | prog ->
              let x, t, w = sample_prior prog ki in
              (x, Trace.map_keys (fun a -> plate_slot a i) t, w)
          in
          go (i + 1) (x :: vals) (Trace.union_disjoint trace t_i) (w +. w_i)
      in
      go 0 [] Trace.empty 0.
  end

and prior_density : type a. a t -> Trace.t -> Prng.key -> float * a * Trace.t =
 fun prog u key ->
  match prog with
  | Return x -> (0., x, u)
  | Bind (m, f) ->
    let k1, k2 = Prng.split key in
    let w1, x, u1 = prior_density m u k1 in
    let w2, y, u2 = prior_density (f x) u1 k2 in
    (w1 +. w2, y, u2)
  | Sample (d, name) -> begin
    match Trace.find_opt name u with
    | Some v -> begin
      match d.Dist.project v with
      | Some x -> (primal (d.Dist.log_density x), x, Trace.remove name u)
      | None -> (Float.neg_infinity, d.Dist.default, Trace.remove name u)
    end
    | None -> (Float.neg_infinity, d.Dist.default, u)
  end
  | Observe (d, v) -> (primal (d.Dist.log_density v), (), u)
  | Marginal (keep, inner, alg) ->
    if List.exists (fun name -> not (Trace.mem name u)) keep then
      (Float.neg_infinity, Trace.restrict keep u, Trace.without keep u)
    else begin
      let kept = Trace.restrict keep u in
      let logp = prior_marginal_estimate inner alg ~kept ~actual_aux:None key in
      (logp, kept, Trace.without keep u)
    end
  | Normalize (inner, alg) ->
    let (Packed proposal) = alg.proposal Trace.empty in
    let k1, k2 = Prng.split key in
    let logp_u, value, remainder = prior_density inner u k1 in
    let consumed = Trace.diff u remainder in
    let logq_u, _, rem_q = prior_density proposal consumed (Prng.fold_in k1 7) in
    let logq_u = if Trace.is_empty rem_q then logq_u else Float.neg_infinity in
    let others =
      List.init (alg.particles - 1) (fun i ->
          let ki = Prng.fold_in k2 i in
          let _, t, logq = sample_prior proposal ki in
          let lp, _, rem = prior_density inner t (Prng.fold_in ki 1) in
          let lp = if Trace.is_empty rem then lp else Float.neg_infinity in
          lp -. logq)
    in
    let log_zhat = prior_log_mean_exp ((logp_u -. logq_u) :: others) in
    (logp_u -. log_zhat, value, remainder)
  | Plate (n, body) -> begin
    match plate_plan n body with
    | Some { pl_dist = d; pl_batched = b; pl_addr = addr }
      when Trace.mem addr u -> begin
      match d.Dist.project (Trace.get addr u) with
      | Some x ->
        ( primal (Ad.sum (b.Dist.log_density_n x)),
          b.Dist.unstack n x,
          Trace.remove addr u )
      | None ->
        ( Float.neg_infinity,
          Array.init n (fun _ -> d.Dist.default),
          Trace.remove addr u )
    end
    | _ ->
      let rec go i w vals u =
        if i >= n then (w, Array.of_list (List.rev vals), u)
        else
          let ki = Prng.fold_in key i in
          let suffix = Printf.sprintf "[%d]" i in
          let slen = String.length suffix in
          let strip name =
            let nlen = String.length name in
            if nlen > slen && String.sub name (nlen - slen) slen = suffix then
              Some (String.sub name 0 (nlen - slen))
            else None
          in
          let u_i = Trace.filter_map_keys strip u in
          let w_i, x_i, rem_i = prior_density (body i) u_i ki in
          let consumed = Trace.diff u_i rem_i in
          let u =
            List.fold_left
              (fun acc (base, _) -> Trace.remove (base ^ suffix) acc)
              u (Trace.bindings consumed)
          in
          go (i + 1) (w +. w_i) (x_i :: vals) u
      in
      go 0 0. [] u
  end

and prior_marginal_estimate :
    type b.
    b t -> algorithm -> kept:Trace.t -> actual_aux:Trace.t option ->
    Prng.key -> float =
 fun inner alg ~kept ~actual_aux key ->
  let (Packed proposal) = alg.proposal kept in
  let fresh i =
    let ki = Prng.fold_in key i in
    let _, aux, logq = sample_prior proposal ki in
    let logp, _, rem =
      prior_density inner (Trace.union_disjoint kept aux) (Prng.fold_in ki 1)
    in
    let logp = if Trace.is_empty rem then logp else Float.neg_infinity in
    logp -. logq
  in
  let particles =
    match actual_aux with
    | None -> List.init alg.particles fresh
    | Some aux ->
      let k1, _ = Prng.split key in
      let logq, _, rem_q = prior_density proposal aux k1 in
      let logq = if Trace.is_empty rem_q then logq else Float.neg_infinity in
      let logp, _, rem =
        prior_density inner (Trace.union_disjoint kept aux) (Prng.fold_in k1 1)
      in
      let logp = if Trace.is_empty rem then logp else Float.neg_infinity in
      (logp -. logq) :: List.init (alg.particles - 1) fresh
  in
  prior_log_mean_exp particles

and prior_log_mean_exp logws =
  let n = float_of_int (List.length logws) in
  let m = List.fold_left Float.max Float.neg_infinity logws in
  if m = Float.neg_infinity then Float.neg_infinity
  else
    m
    +. Float.log
         (List.fold_left (fun acc lw -> acc +. Float.exp (lw -. m)) 0. logws)
    -. Float.log n

let rec enumerate : type a. a t -> (a * Trace.t * float) list = function
  | Return x -> [ (x, Trace.empty, 0.) ]
  | Bind (m, f) ->
    List.concat_map
      (fun (x, u1, w1) ->
        List.map
          (fun (y, u2, w2) -> (y, Trace.union_disjoint u1 u2, w1 +. w2))
          (enumerate (f x)))
      (enumerate m)
  | Sample (d, name) -> begin
    match d.Dist.support with
    | Some support ->
      List.map
        (fun v ->
          ( v,
            Trace.singleton name (d.Dist.inject v),
            primal (d.Dist.log_density v) ))
        support
    | None ->
      invalid_arg
        (Printf.sprintf "Gen.enumerate: site %S (%s) has no finite support"
           name d.Dist.name)
  end
  | Observe (d, v) -> [ ((), Trace.empty, primal (d.Dist.log_density v)) ]
  | Marginal (_, _, _) -> invalid_arg "Gen.enumerate: marginal"
  | Normalize (_, _) -> invalid_arg "Gen.enumerate: normalize"
  | Plate (_, _) -> invalid_arg "Gen.enumerate: plate"

let exact_log_marginal prog =
  let ws = List.map (fun (_, _, w) -> w) (enumerate prog) in
  prior_log_mean_exp ws +. Float.log (float_of_int (List.length ws))

type _ view =
  | View_return : 'a -> 'a view
  | View_bind : 'b t * ('b -> 'a t) -> 'a view
  | View_sample : 'v Dist.t * string -> 'v view
  | View_observe : 'v Dist.t * 'v -> unit view
  | View_unsupported : string -> 'a view

let view : type a. a t -> a view = function
  | Return x -> View_return x
  | Bind (m, f) -> View_bind (m, f)
  | Sample (d, name) -> View_sample (d, name)
  | Observe (d, v) -> View_observe (d, v)
  | Marginal (_, _, _) -> View_unsupported "marginal"
  | Normalize (_, _) -> View_unsupported "normalize"
  | Plate (_, _) -> View_unsupported "plate"

type _ node =
  | Node_return : 'a -> 'a node
  | Node_bind : 'b t * ('b -> 'a t) -> 'a node
  | Node_sample : 'v Dist.t * string -> 'v node
  | Node_observe : 'v Dist.t * 'v -> unit node
  | Node_marginal : string list * 'b t * algorithm -> Trace.t node
  | Node_normalize : 'a t * algorithm -> 'a node
  | Node_plate : int * (int -> 'v t) -> 'v array node

let reflect : type a. a t -> a node = function
  | Return x -> Node_return x
  | Bind (m, f) -> Node_bind (m, f)
  | Sample (d, name) -> Node_sample (d, name)
  | Observe (d, v) -> Node_observe (d, v)
  | Marginal (keep, inner, alg) -> Node_marginal (keep, inner, alg)
  | Normalize (inner, alg) -> Node_normalize (inner, alg)
  | Plate (n, body) -> Node_plate (n, body)

let algorithm_proposal alg = alg.proposal
let algorithm_particles alg = alg.particles

module Syntax = struct
  let ( let* ) = bind
  let ( let+ ) m f = map f m
end
