(** The generative probabilistic language (lambda_Gen) and its compiled
    simulators and density evaluators.

    A program of type ['a Gen.t] interleaves functional code with
    [sample] and [observe] statements and denotes (i) an unnormalized
    measure over {!Trace.t} and (ii) a return-value function — the
    semantics of Section 3.2. The full-system constructs {!marginal} and
    {!normalize} (Section 7 / Appendix A) are included; their densities
    are estimated stochastically, which is why the compiled evaluators
    live in the [Adev] monad.

    {!simulate} is the paper's [sim] transformation (Theorem 4.4):
    running it yields the program's trace together with (the log of) its
    density, with every primitive sampled {e through its gradient
    estimation strategy} so that the result participates correctly in
    ADEV gradient estimation. {!log_density} is the paper's [density]
    transformation (Theorem 4.2): it pops values off a trace,
    accumulates log density, and yields negative infinity when the trace
    has leftover or missing addresses. *)

type 'a t

(** {1 Program constructors} *)

val return : 'a -> 'a t
val bind : 'a t -> ('a -> 'b t) -> 'b t
val map : ('a -> 'b) -> 'a t -> 'b t

val sample : 'a Dist.t -> string -> 'a t
(** [sample d addr] draws from [d], recording the value at address
    [addr]. *)

val observe : 'a Dist.t -> 'a -> unit t
(** [observe d v] conditions on the likelihood of [v] under [d]: it
    contributes a density factor and makes no random choices. *)

val plate : n:int -> (int -> 'a t) -> 'a array t
(** [plate ~n body]: [n] independent instances of [body 0 .. body
    (n-1)], as one program returning the array of their results.

    When every instance is the {e same single sample site} — one
    address, one batchable primitive (see {!Dist.batched}), identically
    distributed across indices — the plate is lowered to ONE rank-lifted
    batched site: a single tensor draw whose leading axis is the
    instance axis, a single vectorized log-density, and (for REINFORCE)
    a single axis-reduced surrogate. The trace then stores the stacked
    value under the plate's single address.

    Otherwise the plate runs sequentially: instance [i] executes under
    [Prng.fold_in key i] with every address suffixed ["[i]"]. The key
    discipline makes the two paths draw bit-identical values, so
    batchability is a pure performance property, never a semantic one.
    @raise Invalid_argument if [n < 1]. *)

(** {1 Inference-algorithm specifications (Appendix A.3)} *)

type packed = Packed : 'a t -> packed

type algorithm
(** Currently: self-normalized importance sampling with a programmable
    proposal and particle count. *)

val importance : ?particles:int -> (Trace.t -> packed) -> algorithm
(** [importance ~particles proposal]: the proposal receives the
    conditioning trace (the kept values for [marginal]; empty for
    unconditional use) and must be a generative program over the
    remaining addresses. Default 1 particle. *)

val importance_prior : ?particles:int -> packed -> algorithm
(** Importance sampling whose proposal ignores the conditioning trace. *)

val marginal : keep:string list -> 'b t -> algorithm -> Trace.t t
(** [marginal ~keep prog alg]: the distribution of [prog]'s trace
    projected onto the addresses [keep]; the auxiliary variables are
    marginalized by importance sampling with [alg]. Its return value is
    the projected trace. Densities are unbiased stochastic estimates;
    simulation uses conditional importance sampling for the reported
    weight (Appendix A.3). *)

val normalize : 'a t -> algorithm -> 'a t
(** [normalize prog alg]: the output distribution of sampling /
    importance resampling (SIR) targeting the normalized version of
    [prog], using [alg]'s proposal and particle count. The resampling
    choice uses [categorical_ENUM] so gradients flow through the
    particle weights. *)

(** {1 Compiled evaluators (the sim and density transformations)} *)

val simulate : 'a t -> ('a * Trace.t * Ad.t) Adev.t
(** Run the program, building its trace; the third component is the log
    density of the produced trace (a stochastic estimate when
    [marginal] / [normalize] are involved). [observe] statements
    additionally [score] the ambient measure, per the chi translation.
    @raise Trace.Duplicate_address if an address repeats. *)

val density_in : 'a t -> Trace.t -> (Ad.t * 'a * Trace.t) Adev.t
(** The xi helper: consume part of the trace, returning the accumulated
    log density, the return value, and the unconsumed remainder. *)

val log_density : 'a t -> Trace.t -> Ad.t Adev.t
(** Log density of exactly this trace: negative infinity when the
    program leaves a nonempty remainder. *)

val log_density_prefix : 'a t -> Trace.t -> Ad.t Adev.t
(** Like {!log_density} but ignores unconsumed addresses — convenient
    when scoring a sub-trace produced by a larger program. *)

(** {1 Staged execution plans}

    A plan is the residue of partially evaluating a program once (see
    [Compile] in [lib/compile]): the straight-line sequence of its
    sample/observe/plate sites with addresses interned to integer
    slots, plate lowering decisions pre-made, and per-run buffers
    preallocated and reused across calls. The compiled executors
    replace the interpreter's per-call discovery work (trace-map
    building and merging, plate i.i.d. probing, density remainder
    threading) with O(1) slot operations, while preserving the
    flagship invariant: {e compiled execution is bit-identical to the
    interpreter} — the same [Prng.fold_in] key discipline and the same
    floating-point accumulation order at every site.

    Plans assume the program's site structure is static; [Compile]
    refuses programs where it is not. If a model drifts from its cached
    plan anyway, the executors raise {!Plan_mismatch} (a hard error —
    never a silent wrong answer, and never an automatic retry, which
    could double-update stateful REINFORCE baselines). *)

module Plan : sig
  type kind = Sample_site | Observe_site | Plate_batched | Plate_seq

  type step = {
    st_kind : kind;
    st_addr : string;  (** Site address; the primitive name for observes. *)
    st_slot : int;  (** Trace slot index; [-1] when the step binds none. *)
    st_dist : string;  (** Primitive name at compile time. *)
    st_strategy : string;  (** Gradient strategy name at compile time. *)
    st_n : int;  (** Plate instance count; [1] otherwise. *)
    st_shape : int array option;  (** Planned value shape, when known. *)
    st_fused : bool;  (** Density evaluates through a fused kernel. *)
  }

  type t

  val make : id:string -> step list -> t
  (** Intern the trace-binding steps' addresses into slots (in step
      order; any caller-set [st_slot] is overwritten) and freeze the
      plan. @raise Invalid_argument on duplicate addresses — the
      executors' trace-consumption counting requires global
      uniqueness. *)

  val id : t -> string
  val steps : t -> step array
  val slots : t -> string array
  (** The slot table: index [i] holds the trace address interned to
      slot [i]. *)

  val seq_fallbacks : t -> int
  (** Number of plate sites executed via the sequential interpreter
      fallback rather than a fused batched kernel. *)

  val set_arena : t -> Tensor.Pool.t option -> unit
  (** Attach (or detach) a buffer pool. While attached, every compiled
      execution of this plan installs the pool as the ambient tensor
      allocator for its own duration, so forward-pass op outputs are
      recycled across runs instead of freshly allocated. The pool is
      reset only when [Ad.backward_epoch] has advanced since the
      plan's last arena run — tapes stacked across several forward
      runs (multi-sample estimators) are never invalidated. Contract:
      surrogates produced by this plan's earlier arena runs must be
      consumed (backward or discarded) before the first arena run
      following a backward pass. *)

  val arena : t -> Tensor.Pool.t option
  (** The attached pool, if any. *)
end

exception Plan_mismatch of string
(** The program executed a site the plan did not predict (or finished
    early): the plan is stale. Recompile or drop [?compiled]. *)

val simulate_compiled : Plan.t -> 'a t -> ('a * Trace.t * Ad.t) Adev.t
(** {!simulate} against a pre-compiled plan: bit-identical results
    (same keys, same weights, same trace), with the interpreter's
    per-call structure discovery skipped. *)

val log_density_compiled : Plan.t -> 'a t -> Trace.t -> Ad.t Adev.t
(** {!log_density} against a pre-compiled plan: one slot-table lookup
    pass over the trace, then consumption counting instead of
    remainder threading. Bit-identical to the interpreter. *)

(** The plate-lowering decision {!simulate} would make per call,
    exposed so the compiler can pre-record it in a plan. *)
type plate_decision =
  | Plate_batchable of { addr : string; instance_shape : int array option }
  | Plate_sequential

val plate_decision : n:int -> (int -> 'a t) -> plate_decision

(** {1 Vectorized evaluators (batched particles)}

    Run [n] i.i.d. executions of a program as ONE pass: every sample
    site becomes a batched site whose drawn value carries the instance
    axis as its leading axis, and the accumulated log density is a
    per-instance [n]-vector. Binds receive batched values, so the
    program's deterministic parts must be rank-polymorphic (tensor ops
    broadcasting over the leading axis) — which the [Nn] layers and
    [Ad] primitives are. Row [i] of every draw is bit-for-bit the
    scalar draw instance [i] would make under [Prng.fold_in key i].

    Programs containing [marginal], [normalize], [plate], or primitives
    without batched payloads raise {!Dist.Not_batchable} (before any
    stateful baseline is touched); wrap calls in {!Adev.or_else} to
    fall back to a sequential interpretation under the same key. *)

val simulate_batched : n:int -> 'a t -> ('a * Trace.t * Ad.t) Adev.t
(** Vectorized {!simulate}: the trace stores stacked values under the
    program's (un-suffixed) addresses; the third component is the
    per-instance log-density vector of shape [[n]] (a scalar when the
    program is deterministic). [observe] scores the joint — the sum of
    the per-instance factors. *)

val density_in_batched : n:int -> 'a t -> Trace.t -> (Ad.t * 'a * Trace.t) Adev.t
(** Vectorized {!density_in}: consumes stacked values, returns the
    per-instance log-density vector, the batched return value, and the
    remainder. *)

val log_density_batched : n:int -> 'a t -> Trace.t -> Ad.t Adev.t
(** Vectorized {!log_density}: the [n]-vector of per-instance log
    densities, or a vector of negative infinities when the trace has a
    nonempty remainder. *)

(** {1 Detached execution (no gradient machinery)} *)

val sample_prior : 'a t -> Prng.key -> 'a * Trace.t * float
(** Forward-sample the program with all strategies ignored (every site
    just samples); returns value, trace, and primal log density.
    [observe] contributes to the log density but does not reweight.
    Used for data generation, plotting, and tests. *)

(** {1 Exact inference on finite programs} *)

val enumerate : 'a t -> ('a * Trace.t * float) list
(** All traces of a program whose sample sites all have finite supports,
    with their log weights (observe factors included). Used as an exact
    oracle in tests and for small-model exact inference.
    @raise Invalid_argument on continuous sites or full-system
    constructs. *)

val exact_log_marginal : 'a t -> float
(** Log of the total measure (the normalizing constant) of a finitely
    supported program, by exhaustive enumeration. *)

(** {1 Typing guards (the R / R star discipline at runtime)} *)

val rigid : Ad.t -> float
(** Extract a sample's primal value for non-smooth use (comparisons,
    branching). @raise Value.Smoothness_error when the value carries a
    gradient path — i.e. it came from a REPARAM-annotated primitive, the
    analogue of the paper's static rejection of [x < k] on smooth [x]. *)

(** {1 Program views}

    A first-order view of programs, used by the monolithic baseline
    engine in [lib/baseline] to implement its own trace-and-accumulate
    interpreters (the way Pyro's poutines walk a model). The full-system
    constructs are deliberately not exposed: monolithic engines do not
    support them, which is part of what Table 3 measures. *)

type _ view =
  | View_return : 'a -> 'a view
  | View_bind : 'b t * ('b -> 'a t) -> 'a view
  | View_sample : 'v Dist.t * string -> 'v view
  | View_observe : 'v Dist.t * 'v -> unit view
  | View_unsupported : string -> 'a view
      (** [marginal] / [normalize]: beyond first-order engines. *)

val view : 'a t -> 'a view

(** {1 Reflection}

    A complete first-order view of the program syntax, including the
    full-system constructs — what the static analyzer ([Check]) walks.
    Unlike {!view}, nothing is hidden: [marginal] / [normalize] expose
    their inner program, kept addresses, and inference algorithm so the
    analyzer can check address coverage across sub-inference
    boundaries. *)

type _ node =
  | Node_return : 'a -> 'a node
  | Node_bind : 'b t * ('b -> 'a t) -> 'a node
  | Node_sample : 'v Dist.t * string -> 'v node
  | Node_observe : 'v Dist.t * 'v -> unit node
  | Node_marginal : string list * 'b t * algorithm -> Trace.t node
  | Node_normalize : 'a t * algorithm -> 'a node
  | Node_plate : int * (int -> 'v t) -> 'v array node

val reflect : 'a t -> 'a node

val algorithm_proposal : algorithm -> Trace.t -> packed
(** The proposal program of an inference algorithm (receives the
    conditioning trace). *)

val algorithm_particles : algorithm -> int

(** {1 Syntax} *)

module Syntax : sig
  val ( let* ) : 'a t -> ('a -> 'b t) -> 'b t
  val ( let+ ) : 'a t -> ('a -> 'b) -> 'b t
end
