type t = Real of Ad.t | Bool of bool | Int of int

type smoothness_info = {
  reason : string;
  address : string option;
  strategy : string option;
}

exception Type_error of string
exception Smoothness_error of smoothness_info

let smoothness_message { reason; address; strategy } =
  let at =
    match (address, strategy) with
    | Some a, Some s -> Printf.sprintf " (sampled at address %S with %s)" a s
    | Some a, None -> Printf.sprintf " (sampled at address %S)" a
    | None, Some s -> Printf.sprintf " (sampled with %s)" s
    | None, None -> ""
  in
  reason ^ at

let () =
  Printexc.register_printer (function
    | Smoothness_error info ->
      Some (Printf.sprintf "Value.Smoothness_error: %s" (smoothness_message info))
    | _ -> None)

(* Provenance registry: maps AD node ids of smooth (REPARAM-style)
   samples to the site that produced them, so a later smoothness error
   can name the same address the static analyzer would flag. The table
   is bounded: when it grows past [max_origins] it is cleared (lookups
   then miss and the error is simply un-attributed), so long training
   runs cannot leak memory through it. *)

let max_origins = 65536
let origins : (int, string option * string) Hashtbl.t = Hashtbl.create 256

(* Registrations arrive from worker domains under the sharded training
   driver; a mutex keeps the table coherent (lookups only happen on
   error paths, where the lock cost is irrelevant). *)
let origins_mutex = Mutex.create ()

let register_smooth_origin node ?address ~strategy () =
  Mutex.lock origins_mutex;
  if Hashtbl.length origins >= max_origins then Hashtbl.reset origins;
  Hashtbl.replace origins (Ad.id node) (address, strategy);
  Mutex.unlock origins_mutex

let register_origin_value v ?address ~strategy () =
  match v with
  | Real a when not (Ad.is_leaf a) ->
    register_smooth_origin a ?address ~strategy ()
  | Real _ | Bool _ | Int _ -> ()

let smooth_origin node =
  Mutex.lock origins_mutex;
  let r = Hashtbl.find_opt origins (Ad.id node) in
  Mutex.unlock origins_mutex;
  r

let real x = Real (Ad.scalar x)
let tensor x = Real (Ad.const x)

let to_ad = function
  | Real a -> a
  | Bool _ -> raise (Type_error "expected a real value, got a boolean")
  | Int _ -> raise (Type_error "expected a real value, got an integer")

let to_float v = Tensor.to_scalar (Ad.value (to_ad v))

let to_bool = function
  | Bool b -> b
  | Real _ -> raise (Type_error "expected a boolean, got a real value")
  | Int _ -> raise (Type_error "expected a boolean, got an integer")

let to_int = function
  | Int i -> i
  | Real _ -> raise (Type_error "expected an integer, got a real value")
  | Bool _ -> raise (Type_error "expected an integer, got a boolean")

let to_float_rigid = function
  | Real a when Ad.is_leaf a -> Tensor.to_scalar (Ad.value a)
  | Real a ->
    let address, strategy =
      match smooth_origin a with
      | Some (addr, strat) -> (addr, Some strat)
      | None -> (None, None)
    in
    raise
      (Smoothness_error
         { reason =
             "a smooth (R-typed) sample was used non-smoothly; use a \
              REINFORCE/MVD-annotated primitive or stop_grad";
           address;
           strategy })
  | v -> to_float v

let equal_primal a b =
  match (a, b) with
  | Real x, Real y -> Tensor.equal (Ad.value x) (Ad.value y)
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | _ -> false

let pp ppf = function
  | Real a -> Tensor.pp ppf (Ad.value a)
  | Bool b -> Format.pp_print_bool ppf b
  | Int i -> Format.pp_print_int ppf i

let to_string v = Format.asprintf "%a" pp v
