(** Heterogeneous values stored at trace addresses.

    The paper's type system distinguishes smooth reals (R) from reals
    that may be used non-smoothly (R star). In this embedding, a [Real]
    carries an AD node: samples from REPARAM-annotated primitives arrive
    as non-leaf nodes (gradients flow through them, so they must be used
    smoothly), while samples from REINFORCE/MVD primitives arrive as
    detached leaves (the R* discipline). {!to_float_rigid} is the runtime
    analogue of the [<: R* x R* -> B] typing rule: it refuses values that
    carry a gradient path. *)

type t =
  | Real of Ad.t  (** A (possibly tensor-valued) differentiable value. *)
  | Bool of bool
  | Int of int

type smoothness_info = {
  reason : string;  (** What went wrong. *)
  address : string option;
      (** The trace address the offending value was sampled at, when the
          provenance registry knows it. *)
  strategy : string option;
      (** The gradient estimation strategy of the originating primitive
          (e.g. "REPARAM"), when known. *)
}
(** Structured payload of {!Smoothness_error}: runtime smoothness
    failures name the same site the static analyzer ([Check]) would
    flag. *)

exception Type_error of string
(** Raised when a value is used at the wrong type. *)

exception Smoothness_error of smoothness_info
(** Raised when a smooth ([R]-typed) value is used non-smoothly. *)

val smoothness_message : smoothness_info -> string
(** Human-readable rendering, including the originating address and
    strategy when known. *)

(** {1 Provenance registry}

    A bounded side table from AD node ids to originating sample sites.
    [Adev.sample] registers every smooth (REPARAM) draw with its
    strategy; [Gen.simulate] re-registers it with the trace address. The
    table is cleared when it exceeds a fixed size, so lookups may miss
    (errors are then un-attributed) but memory use is bounded. *)

val register_smooth_origin :
  Ad.t -> ?address:string -> strategy:string -> unit -> unit

val register_origin_value :
  t -> ?address:string -> strategy:string -> unit -> unit
(** Register a trace value: only [Real] non-leaf nodes (actual smooth
    samples) are recorded; everything else is a no-op. *)

val smooth_origin : Ad.t -> (string option * string) option
(** [(address, strategy)] of a registered smooth sample, if known. *)

val real : float -> t
val tensor : Tensor.t -> t

val to_ad : t -> Ad.t
(** @raise Type_error on [Bool] or [Int]. *)

val to_float : t -> float
(** Primal scalar, regardless of smoothness. *)

val to_bool : t -> bool
val to_int : t -> int

val to_float_rigid : t -> float
(** The primal value of a [Real], but only if it carries no gradient
    path (it is a leaf of the AD graph) — the runtime analogue of
    requiring type R*.
    @raise Smoothness_error on a non-leaf (smooth) value, with the
    originating address/strategy when the provenance registry knows
    them. *)

val equal_primal : t -> t -> bool
(** Structural equality on primal content (no gradient comparison). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
