type strategy =
  | Reparam
  | Reinforce
  | Reinforce_baseline of Baseline.t
  | Enum
  | Mvd

let strategy_name = function
  | Reparam -> "REPARAM"
  | Reinforce -> "REINFORCE"
  | Reinforce_baseline _ -> "REINFORCE+baseline"
  | Enum -> "ENUM"
  | Mvd -> "MVD"

type 'a coupling = { param : Ad.t; weight : float; plus : 'a; minus : 'a }

type static_support =
  | Real_interval of { lo : float; hi : float }
  | Finite_support
  | Int_range of { lo : int; hi : int option }
  | Unit_hypercube
  | Unknown_support

type meta = { continuous : bool; static_support : static_support }

let unknown_meta = { continuous = false; static_support = Unknown_support }

let real_line =
  { continuous = true;
    static_support =
      Real_interval { lo = Float.neg_infinity; hi = Float.infinity } }

let real_interval lo hi =
  { continuous = true; static_support = Real_interval { lo; hi } }

let nonneg_reals = real_interval 0. Float.infinity
let finite_meta = { continuous = false; static_support = Finite_support }

let nonneg_ints =
  { continuous = false; static_support = Int_range { lo = 0; hi = None } }

let int_range lo hi =
  { continuous = false; static_support = Int_range { lo; hi = Some hi } }

type 'a batched = {
  sample_n : Prng.key -> int -> 'a;
  log_density_n : 'a -> Ad.t;
  reparam_n : (Prng.key -> int -> 'a) option;
  stack : 'a array -> 'a;
  unstack : int -> 'a -> 'a array;
}

exception Not_batchable of string

type 'a t = {
  name : string;
  strategy : strategy;
  sample : Prng.key -> 'a;
  log_density : 'a -> Ad.t;
  default : 'a;
  inject : 'a -> Value.t;
  project : Value.t -> 'a option;
  support : 'a list option;
  reparam : (Prng.key -> 'a) option;
  mvd : (Prng.key -> 'a * 'a coupling list) option;
  meta : meta;
  batched : 'a batched option;
}

let make ~name ~strategy ~sample ~log_density ~default ~inject ~project
    ?support ?reparam ?mvd ?(meta = unknown_meta) ?batched () =
  { name; strategy; sample; log_density; default; inject; project; support;
    reparam; mvd; meta; batched }

(* Injection helpers per carrier type. *)

let inject_real a = Value.Real a
let project_real = function Value.Real a -> Some a | _ -> None
let inject_bool b = Value.Bool b
let project_bool = function Value.Bool b -> Some b | _ -> None
let inject_int i = Value.Int i
let project_int = function Value.Int i -> Some i | _ -> None

let primal a = Tensor.to_scalar (Ad.value a)
let log_2pi = Float.log (2. *. Float.pi)

(* Clamp a probability-valued AD node away from 0/1 before taking logs.
   The clamp is a detached additive correction, so gradients are those of
   the unclamped value. *)
let log_stable a =
  let eps = 1e-12 in
  let v = Ad.value a in
  let safe = Tensor.clip ~min:eps ~max:Float.infinity v in
  Ad.log (Ad.add a (Ad.const (Tensor.sub safe v)))

(* ------------------------------------------------------------------ *)
(* Batched execution scaffolding.

   A batched payload runs [n] i.i.d. instances of a primitive as ONE
   rank-lifted value whose leading axis is the instance axis. Row [i]
   always reuses the scalar code path under key [Prng.fold_in key i],
   so a batched draw is bit-for-bit the stack of the sequential draws
   and seeded scalar behavior is untouched. [log_density_n] reduces
   every axis except the instance axis, yielding the per-instance
   log-density vector. *)

(* Sum out all trailing axes, leaving the instance axis: [n; ...] -> [n]. *)
let reduce_tail v =
  let rec go v =
    if Array.length (Ad.shape v) <= 1 then v else go (Ad.sum_axis 1 v)
  in
  go v

let scalar_rows key n draw =
  Ad.const
    (Tensor.of_array [| n |]
       (Array.init n (fun i -> draw (Prng.fold_in key i))))

let stack_real rows = Ad.stack0 (Array.to_list rows)
let unstack_real n x = Array.init n (fun i -> Ad.slice0 x i)

(* Batched payload for scalar-real primitives: [sample_n] literally
   stacks [n] calls of the scalar sampler. *)
let batched_scalar ?reparam_n ~sample ~log_density_n () =
  { sample_n = (fun key n -> scalar_rows key n (fun k -> primal (sample k)));
    log_density_n;
    reparam_n;
    stack = stack_real;
    unstack = unstack_real }

(* Instance-axis dispatch for tensor-carrier primitives: a parameter is
   data-indexed (one row per instance) when its leading dimension equals
   the instance count and it has rank >= 2; otherwise the whole
   parameter is shared by every instance (a plate lift). *)
let param_row v n i =
  let s = Tensor.shape v in
  if Array.length s >= 2 && s.(0) = n then Tensor.slice0 v i else v

(* Normal *)

let log_density_normal ~mu ~sigma x =
  let open Ad.O in
  let z = (x - mu) / sigma in
  Ad.scale (-0.5) (z * z) - Ad.log sigma - Ad.scalar (0.5 *. log_2pi)

let normal_base ~strategy ?support ?reparam ?mvd mu sigma =
  let sample key =
    Ad.scalar (Prng.normal_mean_std key (primal mu) (primal sigma))
  in
  make ~name:"normal" ~strategy ~sample
    ~log_density:(log_density_normal ~mu ~sigma)
    ~default:(Ad.scalar 0.) ~inject:inject_real ~project:project_real
    ?support ?reparam ?mvd ~meta:real_line
    ~batched:
      (batched_scalar ~sample
         ~log_density_n:(log_density_normal ~mu ~sigma)
         ~reparam_n:(fun key n ->
           let eps = scalar_rows key n Prng.normal in
           Ad.O.(mu + (sigma * eps)))
         ())
    ()

let normal_reparam mu sigma =
  normal_base ~strategy:Reparam
    ~reparam:(fun key ->
      let eps = Ad.scalar (Prng.normal key) in
      Ad.O.(mu + (sigma * eps)))
    mu sigma

let normal_reinforce mu sigma = normal_base ~strategy:Reinforce mu sigma

let normal_mvd mu sigma =
  normal_base ~strategy:Mvd
    ~mvd:(fun key ->
      let k1, rest = Prng.split key in
      let k2, rest = Prng.split rest in
      let k3, rest = Prng.split rest in
      let k4, k5 = Prng.split rest in
      let mu_p = primal mu and sigma_p = primal sigma in
      let x = Ad.scalar (Prng.normal_mean_std k1 mu_p sigma_p) in
      (* d/dmu: Weibull(scale sqrt 2, shape 2) coupling, constant
         1 / (sigma sqrt (2 pi)). *)
      let w = Prng.weibull k2 ~shape:2. ~scale:(Float.sqrt 2.) in
      let mu_coupling =
        { param = mu;
          weight = 1. /. (sigma_p *. Float.sqrt (2. *. Float.pi));
          plus = Ad.scalar (mu_p +. (sigma_p *. w));
          minus = Ad.scalar (mu_p -. (sigma_p *. w)) }
      in
      (* d/dsigma: double-sided Maxwell minus normal, constant 1/sigma. *)
      let m = Prng.maxwell k3 in
      let s = if Prng.bernoulli k4 0.5 then 1. else -1. in
      let eps = Prng.normal k5 in
      let sigma_coupling =
        { param = sigma;
          weight = 1. /. sigma_p;
          plus = Ad.scalar (mu_p +. (sigma_p *. m *. s));
          minus = Ad.scalar (mu_p +. (sigma_p *. eps)) }
      in
      (x, [ mu_coupling; sigma_coupling ]))
    mu sigma

(* Uniform: rigid bounds, rigid value. *)

let uniform lo hi =
  if hi <= lo then invalid_arg "Dist.uniform: hi <= lo";
  let logd = -.Float.log (hi -. lo) in
  let sample key = Ad.scalar (Prng.uniform_range key lo hi) in
  make ~name:"uniform" ~strategy:Reinforce ~sample
    ~log_density:(fun x ->
      let v = primal x in
      if v >= lo && v <= hi then Ad.scalar logd
      else Ad.scalar Float.neg_infinity)
    ~default:(Ad.scalar lo) ~inject:inject_real ~project:project_real
    ~meta:(real_interval lo hi)
    ~batched:
      (batched_scalar ~sample
         ~log_density_n:(fun x ->
           Ad.const
             (Tensor.map
                (fun v ->
                  if v >= lo && v <= hi then logd else Float.neg_infinity)
                (Ad.value x)))
         ())
    ()

(* Beta / Gamma *)

let beta_reinforce a b =
  let sample key = Ad.scalar (Prng.beta key (primal a) (primal b)) in
  let log_density_n x =
    let open Ad.O in
    let xc =
      Ad.const
        (Tensor.map
           (fun v -> Float.min (Float.max v 1e-12) (1. -. 1e-12))
           (Ad.value x))
    in
    ((a - Ad.scalar 1.) * Ad.log xc)
    + ((b - Ad.scalar 1.) * Ad.log (Ad.scalar 1. - xc))
    - Special.log_beta a b
  in
  make ~name:"beta" ~strategy:Reinforce ~sample
    ~log_density:(fun x ->
      let open Ad.O in
      let xv = Float.min (Float.max (primal x) 1e-12) (1. -. 1e-12) in
      let x = Ad.scalar xv in
      ((a - Ad.scalar 1.) * Ad.log x)
      + ((b - Ad.scalar 1.) * Ad.log (Ad.scalar 1. - x))
      - Special.log_beta a b)
    ~default:(Ad.scalar 0.5) ~inject:inject_real ~project:project_real
    ~meta:(real_interval 0. 1.)
    ~batched:(batched_scalar ~sample ~log_density_n ())
    ()

let gamma_reinforce shape =
  let sample key = Ad.scalar (Prng.gamma key (primal shape)) in
  let log_density_n x =
    let open Ad.O in
    let xc = Ad.const (Tensor.map (fun v -> Float.max v 1e-12) (Ad.value x)) in
    ((shape - Ad.scalar 1.) * Ad.log xc) - xc - Special.lgamma_ad shape
  in
  make ~name:"gamma" ~strategy:Reinforce ~sample
    ~log_density:(fun x ->
      let open Ad.O in
      let xv = Float.max (primal x) 1e-12 in
      let x = Ad.scalar xv in
      ((shape - Ad.scalar 1.) * Ad.log x) - x - Special.lgamma_ad shape)
    ~default:(Ad.scalar 1.) ~inject:inject_real ~project:project_real
    ~meta:nonneg_reals
    ~batched:(batched_scalar ~sample ~log_density_n ())
    ()

(* Location-scale families with inverse-CDF reparameterizations. *)

let laplace_reparam loc scale =
  let sample key =
    let u = Prng.uniform key -. 0.5 in
    let m = if u < 0. then Float.log (1. +. (2. *. u)) else -.Float.log (1. -. (2. *. u)) in
    Ad.scalar (primal loc +. (primal scale *. m))
  in
  let log_density x =
    let open Ad.O in
    let z = (x - loc) / scale in
    (* |z| = z * sign(z) with the sign detached: correct value and
       subgradient away from the kink at the location (the usual
       Laplace caveat). This works elementwise, so it doubles as the
       per-instance batched density (after tail reduction there is no
       tail: scalar instances are already the instance axis). *)
    let sign = Ad.const (Tensor.map (fun v -> if v >= 0. then 1. else -1.) (Ad.value z)) in
    let abs_z = Ad.mul z sign in
    Ad.neg abs_z - Ad.log (Ad.scale 2. scale)
  in
  let laplace_m u =
    if u < 0. then Float.log (1. +. (2. *. u)) else -.Float.log (1. -. (2. *. u))
  in
  make ~name:"laplace" ~strategy:Reparam ~sample ~log_density
    ~default:(Ad.scalar 0.) ~inject:inject_real ~project:project_real
    ~reparam:(fun key ->
      let u = Prng.uniform key -. 0.5 in
      Ad.O.(loc + (scale * Ad.scalar (laplace_m u))))
    ~meta:real_line
    ~batched:
      (batched_scalar ~sample ~log_density_n:log_density
         ~reparam_n:(fun key n ->
           let m = scalar_rows key n (fun k -> laplace_m (Prng.uniform k -. 0.5)) in
           Ad.O.(loc + (scale * m)))
         ())
    ()

let logistic_reparam loc scale =
  let logit u = Float.log (u /. (1. -. u)) in
  let draw_logit k =
    logit (Float.min (Float.max (Prng.uniform k) 1e-12) (1. -. 1e-12))
  in
  let sample key = Ad.scalar (primal loc +. (primal scale *. draw_logit key)) in
  let log_density x =
    let open Ad.O in
    let z = (x - loc) / scale in
    Ad.neg z - Ad.log scale - Ad.scale 2. (Ad.softplus (Ad.neg z))
  in
  make ~name:"logistic" ~strategy:Reparam ~sample ~log_density
    ~default:(Ad.scalar 0.) ~inject:inject_real ~project:project_real
    ~reparam:(fun key -> Ad.O.(loc + (scale * Ad.scalar (draw_logit key))))
    ~meta:real_line
    ~batched:
      (batched_scalar ~sample ~log_density_n:log_density
         ~reparam_n:(fun key n ->
           Ad.O.(loc + (scale * scalar_rows key n draw_logit)))
         ())
    ()

let lognormal_reparam mu sigma =
  let sample key =
    Ad.scalar (Float.exp (Prng.normal_mean_std key (primal mu) (primal sigma)))
  in
  let log_density_n x =
    let logx =
      Ad.const
        (Tensor.map (fun v -> Float.log (Float.max v 1e-300)) (Ad.value x))
    in
    Ad.O.(log_density_normal ~mu ~sigma logx - logx)
  in
  make ~name:"lognormal" ~strategy:Reparam ~sample
    ~log_density:(fun x ->
      let xv = Float.max (primal x) 1e-300 in
      let logx = Ad.scalar (Float.log xv) in
      Ad.O.(log_density_normal ~mu ~sigma logx - Ad.scalar (Float.log xv)))
    ~default:(Ad.scalar 1.) ~inject:inject_real ~project:project_real
    ~reparam:(fun key ->
      let eps = Ad.scalar (Prng.normal key) in
      Ad.exp Ad.O.(mu + (sigma * eps)))
    ~meta:nonneg_reals
    ~batched:
      (batched_scalar ~sample ~log_density_n
         ~reparam_n:(fun key n ->
           let eps = scalar_rows key n Prng.normal in
           Ad.exp Ad.O.(mu + (sigma * eps)))
         ())
    ()

let exponential_reparam rate =
  let sample key = Ad.scalar (Prng.exponential key /. primal rate) in
  let log_density x = Ad.O.(Ad.log rate - (rate * x)) in
  make ~name:"exponential" ~strategy:Reparam ~sample ~log_density
    ~default:(Ad.scalar 1.) ~inject:inject_real ~project:project_real
    ~reparam:(fun key -> Ad.div (Ad.scalar (Prng.exponential key)) rate)
    ~meta:nonneg_reals
    ~batched:
      (batched_scalar ~sample ~log_density_n:log_density
         ~reparam_n:(fun key n ->
           Ad.div (scalar_rows key n Prng.exponential) rate)
         ())
    ()

let student_t_reinforce df =
  let sample key =
    (* t = Z / sqrt(V / df) with V ~ chi^2(df) = Gamma(df/2, 2). *)
    let k1, k2 = Prng.split key in
    let z = Prng.normal k1 in
    let v = 2. *. Prng.gamma k2 (primal df /. 2.) in
    Ad.scalar (z /. Float.sqrt (v /. primal df))
  in
  let log_density_n x =
    let open Ad.O in
    let x2 = Ad.const (Tensor.map (fun v -> v *. v) (Ad.value x)) in
    let half = Ad.scale 0.5 df in
    let half1 = Ad.add_scalar 0.5 half in
    Special.lgamma_ad half1 - Special.lgamma_ad half
    - Ad.scale 0.5 (Ad.log (Ad.scale Float.pi df))
    - (half1 * Ad.log (Ad.add_scalar 1. (x2 * Ad.pow_scalar df (-1.))))
  in
  make ~name:"student_t" ~strategy:Reinforce ~sample
    ~log_density:(fun x ->
      let open Ad.O in
      let xv = primal x in
      let half = Ad.scale 0.5 df in
      let half1 = Ad.add_scalar 0.5 half in
      Special.lgamma_ad half1 - Special.lgamma_ad half
      - Ad.scale 0.5 (Ad.log (Ad.scale Float.pi df))
      - (half1
        * Ad.log (Ad.add_scalar 1. (Ad.scale (xv *. xv) (Ad.pow_scalar df (-1.)))))
      )
    ~default:(Ad.scalar 0.) ~inject:inject_real ~project:project_real
    ~meta:real_line
    ~batched:(batched_scalar ~sample ~log_density_n ())
    ()

let scaled_beta_reinforce ~lo ~hi a b =
  if hi <= lo then invalid_arg "Dist.scaled_beta_reinforce: hi <= lo";
  let width = hi -. lo in
  let unscale x = (primal x -. lo) /. width in
  let sample key =
    Ad.scalar (lo +. (width *. Prng.beta key (primal a) (primal b)))
  in
  let log_density_n x =
    let open Ad.O in
    let u =
      Ad.const
        (Tensor.map
           (fun v ->
             Float.min (Float.max ((v -. lo) /. width) 1e-12) (1. -. 1e-12))
           (Ad.value x))
    in
    ((a - Ad.scalar 1.) * Ad.log u)
    + ((b - Ad.scalar 1.) * Ad.log (Ad.scalar 1. - u))
    - Special.log_beta a b
    - Ad.scalar (Float.log width)
  in
  make ~name:"scaled_beta" ~strategy:Reinforce ~sample
    ~log_density:(fun x ->
      let open Ad.O in
      let u = Float.min (Float.max (unscale x) 1e-12) (1. -. 1e-12) in
      let u = Ad.scalar u in
      ((a - Ad.scalar 1.) * Ad.log u)
      + ((b - Ad.scalar 1.) * Ad.log (Ad.scalar 1. - u))
      - Special.log_beta a b
      - Ad.scalar (Float.log width))
    ~default:(Ad.scalar ((lo +. hi) /. 2.)) ~inject:inject_real
    ~project:project_real ~meta:(real_interval lo hi)
    ~batched:(batched_scalar ~sample ~log_density_n ())
    ()

(* Flip *)

let log_density_flip p b =
  if b then log_stable p else log_stable Ad.O.(Ad.scalar 1. - p)

let flip_base ~strategy ?mvd p =
  make ~name:"flip" ~strategy
    ~sample:(fun key -> Prng.bernoulli key (primal p))
    ~log_density:(log_density_flip p) ~default:false ~inject:inject_bool
    ~project:project_bool ~support:[ true; false ] ?mvd ~meta:finite_meta ()

let flip_enum p = flip_base ~strategy:Enum p
let flip_reinforce p = flip_base ~strategy:Reinforce p
let flip_reinforce_bl cell p = flip_base ~strategy:(Reinforce_baseline cell) p

let flip_mvd p =
  flip_base ~strategy:Mvd
    ~mvd:(fun key ->
      let b = Prng.bernoulli key (primal p) in
      (b, [ { param = p; weight = 1.; plus = true; minus = false } ]))
    p

(* Categorical *)

let categorical_base ~name ~strategy ~probs_of ~log_density_of param =
  let n = Tensor.size (Ad.value param) in
  make ~name ~strategy
    ~sample:(fun key -> Prng.categorical key (Tensor.to_array (probs_of param)))
    ~log_density:(fun i ->
      if i < 0 || i >= n then Ad.scalar Float.neg_infinity
      else log_density_of param i)
    ~default:0 ~inject:inject_int ~project:project_int
    ~support:(List.init n (fun i -> i))
    ~meta:finite_meta ()

let categorical_with ~strategy probs =
  categorical_base ~name:"categorical" ~strategy
    ~probs_of:(fun p -> Ad.value p)
    ~log_density_of:(fun p i -> log_stable (Ad.get p [| i |]))
    probs

let categorical_enum probs = categorical_with ~strategy:Enum probs
let categorical_reinforce probs = categorical_with ~strategy:Reinforce probs

let categorical_reinforce_bl cell probs =
  categorical_with ~strategy:(Reinforce_baseline cell) probs

let categorical_logits_with ~strategy logits =
  categorical_base ~name:"categorical_logits" ~strategy
    ~probs_of:(fun l -> Tensor.softmax (Ad.value l))
    ~log_density_of:(fun l i -> Ad.get (Ad.log_softmax l) [| i |])
    logits

let categorical_logits_enum l = categorical_logits_with ~strategy:Enum l

let categorical_logits_reinforce l =
  categorical_logits_with ~strategy:Reinforce l

let categorical_logits_reinforce_bl cell l =
  categorical_logits_with ~strategy:(Reinforce_baseline cell) l

let categorical_logits_mvd logits =
  let n = Tensor.size (Ad.value logits) in
  let base = categorical_logits_with ~strategy:Mvd logits in
  let mvd key =
    let k1, k2 = Prng.split key in
    let probs = Tensor.softmax (Ad.value logits) in
    let weights = Tensor.to_array probs in
    let x = Prng.categorical k1 weights in
    let j = Prng.categorical k2 weights in
    let couplings =
      List.init n (fun i ->
          { param = Ad.get logits [| i |]; weight = weights.(i); plus = i;
            minus = j })
    in
    (x, couplings)
  in
  { base with mvd = Some mvd }

(* Poisson *)

let poisson_reinforce rate =
  make ~name:"poisson" ~strategy:Reinforce
    ~sample:(fun key -> Prng.poisson key (primal rate))
    ~log_density:(fun k ->
      if k < 0 then Ad.scalar Float.neg_infinity
      else
        let open Ad.O in
        (Ad.scale (float_of_int k) (Ad.log rate))
        - rate
        - Ad.scalar (Special.lgamma (float_of_int k +. 1.)))
    ~default:0 ~inject:inject_int ~project:project_int ~meta:nonneg_ints ()

let poisson_mvd rate =
  let base = poisson_reinforce rate in
  { base with
    strategy = Mvd;
    mvd =
      Some
        (fun key ->
          let n = Prng.poisson key (primal rate) in
          (n, [ { param = rate; weight = 1.; plus = n + 1; minus = n } ])) }

let geometric_reinforce p =
  make ~name:"geometric" ~strategy:Reinforce
    ~sample:(fun key ->
      let pv = primal p in
      let u = Float.max (Prng.uniform key) 1e-300 in
      int_of_float (Float.floor (Float.log u /. Float.log (1. -. pv))))
    ~log_density:(fun k ->
      if k < 0 then Ad.scalar Float.neg_infinity
      else
        Ad.O.(
          Ad.scale (float_of_int k) (log_stable (Ad.scalar 1. - p))
          + log_stable p))
    ~default:0 ~inject:inject_int ~project:project_int ~meta:nonneg_ints ()

let binomial_log_density n p k =
  if k < 0 || k > n then Ad.scalar Float.neg_infinity
  else
    let choose =
      Special.lgamma (float_of_int (n + 1))
      -. Special.lgamma (float_of_int (k + 1))
      -. Special.lgamma (float_of_int (n - k + 1))
    in
    let failures = float_of_int (n - k) in
    Ad.O.(
      Ad.scalar choose
      + Ad.scale (float_of_int k) (log_stable p)
      + Ad.scale failures (log_stable (Ad.scalar 1. - p)))

let binomial_base ~strategy ?support n p =
  make ~name:"binomial" ~strategy
    ~sample:(fun key ->
      let pv = primal p in
      let count = ref 0 in
      Array.iter
        (fun k -> if Prng.bernoulli k pv then incr count)
        (Prng.split_many key n);
      !count)
    ~log_density:(binomial_log_density n p)
    ~default:0 ~inject:inject_int ~project:project_int ?support
    ~meta:(int_range 0 n) ()

let binomial_reinforce n p = binomial_base ~strategy:Reinforce n p

let binomial_enum n p =
  binomial_base ~strategy:Enum ~support:(List.init (n + 1) Fun.id) n p

let discrete_uniform_enum n =
  if n < 1 then invalid_arg "Dist.discrete_uniform_enum: n < 1";
  let logp = -.Float.log (float_of_int n) in
  make ~name:"discrete_uniform" ~strategy:Enum
    ~sample:(fun key -> Prng.categorical key (Array.make n 1.))
    ~log_density:(fun i ->
      if i >= 0 && i < n then Ad.scalar logp else Ad.scalar Float.neg_infinity)
    ~default:0 ~inject:inject_int ~project:project_int
    ~support:(List.init n Fun.id) ~meta:finite_meta ()

(* Diagonal multivariate normal *)

let log_density_mv_normal_diag ~mean ~std x =
  let open Ad.O in
  let z = (x - mean) / std in
  let d = float_of_int (Tensor.size (Ad.value mean)) in
  Ad.scale (-0.5) (Ad.sum (z * z))
  - Ad.sum (Ad.log std)
  - Ad.scalar (0.5 *. d *. log_2pi)

(* Per-instance log-density of [n] diagonal normals: [x] carries the
   instance axis; parameters are either shared (plate lift) or
   data-indexed (leading dimension = n, see [param_row]). *)
let log_density_n_mv_normal_diag ~mean ~std x =
  let xs = Ad.shape x in
  let n = xs.(0) in
  let per_dim =
    float_of_int
      (Array.fold_left (fun a b -> a * b) 1
         (Array.sub xs 1 (Array.length xs - 1)))
  in
  let open Ad.O in
  let z = (x - mean) / std in
  let log_std =
    let s = Tensor.shape (Ad.value std) in
    if Array.length s >= 2 && s.(0) = n then reduce_tail (Ad.log std)
    else Ad.sum (Ad.log std)
  in
  Ad.scale (-0.5) (reduce_tail (z * z))
  - log_std
  - Ad.scalar (0.5 *. per_dim *. log_2pi)

let batched_mv_normal_diag mean std =
  let mean_v = Ad.value mean and std_v = Ad.value std in
  { sample_n =
      (fun key n ->
        Ad.const
          (Tensor.stack0
             (List.init n (fun i ->
                  Prng.normal_tensor_mean_std (Prng.fold_in key i)
                    (param_row mean_v n i) (param_row std_v n i)))));
    log_density_n = log_density_n_mv_normal_diag ~mean ~std;
    reparam_n =
      Some
        (fun key n ->
          let eps =
            Tensor.stack0
              (List.init n (fun i ->
                   Prng.normal_tensor (Prng.fold_in key i)
                     (Tensor.shape (param_row mean_v n i))))
          in
          Ad.O.(mean + (std * Ad.const eps)));
    stack = stack_real;
    unstack = unstack_real }

let mv_normal_diag_base ~strategy ?reparam mean std =
  make ~name:"mv_normal_diag" ~strategy
    ~sample:(fun key ->
      Ad.const (Prng.normal_tensor_mean_std key (Ad.value mean) (Ad.value std)))
    ~log_density:(log_density_mv_normal_diag ~mean ~std)
    ~default:(Ad.const (Tensor.zeros (Ad.shape mean)))
    ~inject:inject_real ~project:project_real ?reparam ~meta:real_line
    ~batched:(batched_mv_normal_diag mean std) ()

let mv_normal_diag_reparam mean std =
  mv_normal_diag_base ~strategy:Reparam
    ~reparam:(fun key ->
      let eps = Ad.const (Prng.normal_tensor key (Ad.shape mean)) in
      Ad.O.(mean + (std * eps)))
    mean std

let mv_normal_diag_reinforce mean std =
  mv_normal_diag_base ~strategy:Reinforce mean std

(* Vectors of independent Bernoullis (image likelihoods) *)

(* Batched payload shared by both Bernoulli-vector primitives:
   [elementwise x] must carry the instance axis on its leading
   dimension (from the value, the parameters, or both via
   broadcasting); the tail reduction yields the per-instance vector. *)
let batched_bernoulli ~probs_of ~elementwise params =
  { sample_n =
      (fun key n ->
        let params_v = Ad.value params in
        Ad.const
          (Tensor.stack0
             (List.init n (fun i ->
                  let p = probs_of (param_row params_v n i) in
                  let u =
                    Prng.uniform_tensor (Prng.fold_in key i) (Tensor.shape p)
                  in
                  Tensor.map2 (fun ui pi -> if ui < pi then 1. else 0.) u p))));
    log_density_n = (fun x -> reduce_tail (elementwise x));
    reparam_n = None;
    stack = stack_real;
    unstack = unstack_real }

let bernoulli_vector probs =
  let elementwise x =
    let open Ad.O in
    (x * log_stable probs)
    + ((Ad.scalar 1. - x) * log_stable (Ad.scalar 1. - probs))
  in
  make ~name:"bernoulli_vector" ~strategy:Reinforce
    ~sample:(fun key ->
      let u = Prng.uniform_tensor key (Ad.shape probs) in
      Ad.const
        (Tensor.map2 (fun ui pi -> if ui < pi then 1. else 0.) u
           (Ad.value probs)))
    ~log_density:(fun x -> Ad.sum (elementwise x))
    ~default:(Ad.const (Tensor.zeros (Ad.shape probs)))
    ~inject:inject_real ~project:project_real
    ~meta:{ continuous = false; static_support = Unit_hypercube }
    ~batched:(batched_bernoulli ~probs_of:Fun.id ~elementwise probs) ()

let log_density_bernoulli_logits ~logits x =
  let open Ad.O in
  Ad.neg
    (Ad.sum
       ((x * Ad.softplus (Ad.neg logits))
       + ((Ad.scalar 1. - x) * Ad.softplus logits)))

let bernoulli_logits_vector logits =
  let elementwise x =
    let open Ad.O in
    Ad.neg
      ((x * Ad.softplus (Ad.neg logits))
      + ((Ad.scalar 1. - x) * Ad.softplus logits))
  in
  make ~name:"bernoulli_logits_vector" ~strategy:Reinforce
    ~sample:(fun key ->
      let probs = Tensor.sigmoid (Ad.value logits) in
      let u = Prng.uniform_tensor key (Ad.shape logits) in
      Ad.const (Tensor.map2 (fun ui pi -> if ui < pi then 1. else 0.) u probs))
    ~log_density:(fun x ->
      (* Observed data is a leaf (no gradient flows into [x]), which is
         exactly when the fused scoring kernel's custom adjoint
         [g * (x - sigmoid l)] is the whole gradient — one pass over the
         likelihood instead of the composed softplus/mul/add chain.
         Shared by the interpreter and the staged executors, so the
         bit-identity invariant between them is untouched. *)
      if Ad.is_leaf x then
        Ad.sum (Ad.bernoulli_logits_scores ~x:(Ad.value x) logits)
      else log_density_bernoulli_logits ~logits x)
    ~default:(Ad.const (Tensor.zeros (Ad.shape logits)))
    ~inject:inject_real ~project:project_real
    ~meta:{ continuous = false; static_support = Unit_hypercube }
      (* The generic payload's [reduce_tail (elementwise x)] walks the
         [n x dim] likelihood ~8 times; the fused kernel makes the
         batched scoring one pass with a one-pass custom adjoint. *)
    ~batched:
      { (batched_bernoulli ~probs_of:Tensor.sigmoid ~elementwise logits) with
        log_density_n =
          (fun x -> Ad.bernoulli_logits_scores ~x:(Ad.value x) logits) }
    ()

(* ------------------------------------------------------------------ *)
(* Batched API *)

let batchable d = Option.is_some d.batched

let batched_exn d =
  match d.batched with
  | Some b -> b
  | None -> raise (Not_batchable (d.name ^ ": no batched execution payload"))

let sample_n d key n = (batched_exn d).sample_n key n
let log_density_batched d x = (batched_exn d).log_density_n x

let iid n d =
  if n < 1 then invalid_arg "Dist.iid: n < 1";
  (match d.strategy with
  | Reparam | Reinforce -> ()
  | s ->
    raise
      (Not_batchable
         (Printf.sprintf "Dist.iid: %s sites cannot be batched"
            (strategy_name s))));
  let b = batched_exn d in
  make
    ~name:(Printf.sprintf "iid(%d,%s)" n d.name)
    ~strategy:d.strategy
    ~sample:(fun key -> b.sample_n key n)
    ~log_density:(fun x -> Ad.sum (b.log_density_n x))
    ~default:(b.stack (Array.make n d.default))
    ~inject:d.inject ~project:d.project
    ?reparam:(Option.map (fun r key -> r key n) b.reparam_n)
    ~meta:d.meta ()
