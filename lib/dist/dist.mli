(** Primitive probability distributions, each paired with a gradient
    estimation strategy.

    Following the paper's shared core, every primitive comes in several
    versions (e.g. [normal_reparam], [normal_reinforce], [normal_mvd])
    that denote the {e same} distribution but propagate derivative
    information differently. The strategy determines how the ADEV
    transformation (module [Adev]) estimates
    [d/dtheta E_{x ~ mu_theta} f(theta, x)] at each sample site:

    - {b REPARAM}: sample [x = g(theta, eps)] differentiably and push
      gradients through the path (requires a smooth continuation; the
      sampled value is a non-leaf AD node, the analogue of type R).
    - {b REINFORCE}: sample detached and add the score-function term
      [y * dlog p_theta(x)] (value usable non-smoothly: type R star).
    - {b REINFORCE + baseline}: same, with a running-mean control
      variate.
    - {b ENUM}: exact enumeration of a finite support.
    - {b MVD}: measure-valued derivatives via weak-derivative coupled
      triples (constant, positive part, negative part).

    The record type is exposed so that new primitives with custom
    gradient estimators can be added in a few lines (Appendix F of the
    paper); {!make} fills in sensible defaults. Each constructor's proof
    obligations — that [sample] draws from the distribution whose log
    density is [log_density], and that the strategy's data (reparam
    sampler, support, couplings) agree with it — are discharged by the
    statistical tests in [test/test_dist.ml]. *)

type strategy =
  | Reparam
  | Reinforce
  | Reinforce_baseline of Baseline.t
  | Enum
  | Mvd

val strategy_name : strategy -> string
(** Short human-readable name ("REPARAM", "ENUM", ...), shared by
    runtime error messages and the static analyzer's diagnostics. *)

(** One weak-derivative coupling for MVD: contributes
    [weight * (f plus - f minus)] to the derivative with respect to
    [param]. *)
type 'a coupling = { param : Ad.t; weight : float; plus : 'a; minus : 'a }

(** {1 Static metadata}

    Machine-checkable facts about a primitive that hold for {e every}
    parameter value — what the static analyzer ([Check]) consumes. The
    support description is deliberately coarse: it over-approximates the
    true support, so "observed value outside [static_support]" is always
    a genuine error. *)

type static_support =
  | Real_interval of { lo : float; hi : float }
      (** Real values in [\[lo, hi\]] (possibly infinite endpoints). *)
  | Finite_support  (** Enumerable via the [support] field. *)
  | Int_range of { lo : int; hi : int option }
      (** Integers in [\[lo, hi\]]; [hi = None] means unbounded above. *)
  | Unit_hypercube
      (** Tensor with every component in [\[0, 1\]] (e.g. independent
          Bernoullis encoded as a 0/1-valued tensor). *)
  | Unknown_support  (** No static information (custom primitives). *)

type meta = {
  continuous : bool;
      (** Whether the distribution is continuous (so ENUM cannot apply
          and samples may carry pathwise gradients). *)
  static_support : static_support;
}

val unknown_meta : meta
(** [{ continuous = false; static_support = Unknown_support }] — the
    default for custom primitives built without [?meta]. *)

val real_line : meta
val real_interval : float -> float -> meta
val nonneg_reals : meta
val finite_meta : meta
val nonneg_ints : meta
val int_range : int -> int -> meta

(** {1 Batched execution}

    A batched payload runs [n] i.i.d. instances of a primitive as ONE
    rank-lifted value whose {e leading axis is the instance axis},
    instead of [n] separate draws. The contract that makes batched and
    sequential execution interchangeable:

    - Row [i] of [sample_n key n] (and of [reparam_n key n]) is
      bit-for-bit the scalar draw under key [Prng.fold_in key i], so a
      batched site and a loop of per-instance sites see the same
      randomness.
    - [log_density_n x] reduces every axis {e except} the instance
      axis, yielding the per-instance log-density vector [\[n\]].
      Parameters are either shared by every instance (a plate lift) or
      {e data-indexed}: a tensor parameter whose leading dimension
      equals [n] (and whose rank is at least 2) provides one row per
      instance.

    Every real-carrier primitive ships a payload; [bool]/[int]
    carriers (flip, categorical, poisson, ...) do not — their values
    cannot be stacked into one tensor, so plates over them always take
    the sequential path. *)

type 'a batched = {
  sample_n : Prng.key -> int -> 'a;
      (** Detached batched sampler; leading axis = instance axis. *)
  log_density_n : 'a -> Ad.t;
      (** Per-instance log-density vector [\[n\]]. *)
  reparam_n : (Prng.key -> int -> 'a) option;
      (** Differentiable batched sampler (REPARAM sites only). *)
  stack : 'a array -> 'a;  (** Stack per-instance values along axis 0. *)
  unstack : int -> 'a -> 'a array;
      (** [unstack n x] recovers the [n] per-instance values. *)
}

exception Not_batchable of string
(** Raised when a batched execution path is requested of a primitive
    (or site strategy) that cannot provide one; callers fall back to
    the sequential path. *)

type 'a t = {
  name : string;
  strategy : strategy;
  sample : Prng.key -> 'a;  (** Detached (primal) sampler. *)
  log_density : 'a -> Ad.t;
      (** Rank-0 log density, differentiable in the parameters the
          distribution closes over (and in the value, when the value is
          a smooth AD node). *)
  default : 'a;  (** Placeholder returned when a trace lacks the site. *)
  inject : 'a -> Value.t;
  project : Value.t -> 'a option;
  support : 'a list option;  (** Finite support, required by ENUM. *)
  reparam : (Prng.key -> 'a) option;
      (** Differentiable sampler, required by REPARAM. *)
  mvd : (Prng.key -> 'a * 'a coupling list) option;
      (** Primal sample plus couplings, required by MVD. *)
  meta : meta;  (** Static metadata for pre-flight checks. *)
  batched : 'a batched option;
      (** Batched execution payload, when the carrier supports it. *)
}

val make :
  name:string ->
  strategy:strategy ->
  sample:(Prng.key -> 'a) ->
  log_density:('a -> Ad.t) ->
  default:'a ->
  inject:('a -> Value.t) ->
  project:(Value.t -> 'a option) ->
  ?support:'a list ->
  ?reparam:(Prng.key -> 'a) ->
  ?mvd:(Prng.key -> 'a * 'a coupling list) ->
  ?meta:meta ->
  ?batched:'a batched ->
  unit ->
  'a t

val batchable : 'a t -> bool
(** Whether the primitive carries a batched execution payload. *)

val sample_n : 'a t -> Prng.key -> int -> 'a
(** [sample_n d key n] stacks [n] i.i.d. detached draws (row [i] uses
    key [Prng.fold_in key i]).
    @raise Not_batchable when [d] has no batched payload. *)

val log_density_batched : 'a t -> 'a -> Ad.t
(** Per-instance log-density vector of a stacked value.
    @raise Not_batchable when [d] has no batched payload. *)

val iid : int -> 'a t -> 'a t
(** [iid n d] is the product of [n] independent copies of [d] as a
    single primitive: one stacked sample (leading axis = instance
    axis), joint log density. This is the plated-site form case
    studies use to turn a per-datum prior loop into one rank-lifted
    site. Only REPARAM and REINFORCE primitives can be lifted.
    @raise Not_batchable otherwise. *)

(** {1 Scalar continuous primitives}

    Parameters are rank-0 AD nodes; sampled values are rank-0 AD nodes
    (non-leaf under REPARAM, leaves otherwise). *)

val normal_reparam : Ad.t -> Ad.t -> Ad.t t
(** [normal_reparam mu sigma]: pathwise derivative via
    [x = mu + sigma * eps]. *)

val normal_reinforce : Ad.t -> Ad.t -> Ad.t t
val normal_mvd : Ad.t -> Ad.t -> Ad.t t
(** Measure-valued derivative: Weibull coupling for the mean,
    double-sided-Maxwell/normal coupling for the scale. *)

val uniform : float -> float -> Ad.t t
(** [uniform lo hi]. The bounds are plain floats — the paper's typing
    makes them R*, so they may not carry learned-parameter gradients
    (the density would be discontinuous in them). The sampled value is a
    leaf, freely usable non-smoothly. *)

val beta_reinforce : Ad.t -> Ad.t -> Ad.t t
val gamma_reinforce : Ad.t -> Ad.t t
(** Shape-parameter gamma with rate 1. *)

val laplace_reparam : Ad.t -> Ad.t -> Ad.t t
(** [laplace_reparam loc scale], reparameterized by the inverse CDF. *)

val logistic_reparam : Ad.t -> Ad.t -> Ad.t t
(** [logistic_reparam loc scale], reparameterized by the logit of a
    uniform. *)

val lognormal_reparam : Ad.t -> Ad.t -> Ad.t t
(** [lognormal_reparam mu sigma]: [exp] of a reparameterized normal. *)

val exponential_reparam : Ad.t -> Ad.t t
(** [exponential_reparam rate], reparameterized by the inverse CDF. *)

val student_t_reinforce : Ad.t -> Ad.t t
(** Student's t with differentiable degrees of freedom (REINFORCE). *)

val scaled_beta_reinforce : lo:float -> hi:float -> Ad.t -> Ad.t -> Ad.t t
(** A Beta distribution affinely mapped onto [lo, hi] — a learnable
    distribution over a bounded interval (used e.g. as a learnable
    reverse kernel over the cone guide's angle). *)

(** {1 Scalar discrete primitives} *)

val flip_enum : Ad.t -> bool t
val flip_reinforce : Ad.t -> bool t
val flip_reinforce_bl : Baseline.t -> Ad.t -> bool t
val flip_mvd : Ad.t -> bool t

val categorical_enum : Ad.t -> int t
(** [categorical_enum probs] over indices [0 .. n-1]; [probs] is a
    rank-1 node of (normalized) probabilities. *)

val categorical_reinforce : Ad.t -> int t
val categorical_reinforce_bl : Baseline.t -> Ad.t -> int t

val categorical_logits_enum : Ad.t -> int t
(** Same distribution parameterized by unnormalized log-weights. *)

val categorical_logits_reinforce : Ad.t -> int t
val categorical_logits_reinforce_bl : Baseline.t -> Ad.t -> int t

val categorical_logits_mvd : Ad.t -> int t
(** Measure-valued derivative for the softmax categorical: with respect
    to logit [i], the weak derivative of [E f] is
    [p_i (f i - E_p f)]; each coupling pairs the point mass at [i]
    (positive part) against a fresh sample from [p] (negative part,
    shared across couplings), with constant [p_i]. *)

val poisson_reinforce : Ad.t -> int t

val poisson_mvd : Ad.t -> int t
(** Measure-valued derivative of the Poisson:
    [d/drate E f(N) = E (f (N+1) - f N)] — a single coupling with unit
    weight (the paper's Appendix F example family). *)

val geometric_reinforce : Ad.t -> int t
(** Number of failures before the first success, success probability
    [p]. *)

val binomial_reinforce : int -> Ad.t -> int t
(** [binomial_reinforce n p]. *)

val binomial_enum : int -> Ad.t -> int t
(** Same distribution with exhaustive enumeration of [0 .. n]. *)

val discrete_uniform_enum : int -> int t
(** Uniform over [0 .. n-1], enumerable; constant density (no learned
    parameters). *)

(** {1 Vector primitives} *)

val mv_normal_diag_reparam : Ad.t -> Ad.t -> Ad.t t
(** [mv_normal_diag_reparam mean std]: independent normals with rank-1
    mean and std; the sample is a rank-1 node. *)

val mv_normal_diag_reinforce : Ad.t -> Ad.t -> Ad.t t

val bernoulli_vector : Ad.t -> Ad.t t
(** Independent Bernoullis over a tensor of probabilities — the image
    likelihood used by the VAE/AIR experiments. Typically observed;
    sampling uses REINFORCE. *)

val bernoulli_logits_vector : Ad.t -> Ad.t t
(** Same, parameterized by logits (numerically stable likelihood). *)

(** {1 Log-density helpers (shared with hand-coded baselines)} *)

val log_density_normal : mu:Ad.t -> sigma:Ad.t -> Ad.t -> Ad.t
val log_density_mv_normal_diag : mean:Ad.t -> std:Ad.t -> Ad.t -> Ad.t
val log_density_bernoulli_logits : logits:Ad.t -> Ad.t -> Ad.t
