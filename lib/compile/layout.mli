(** Static liveness + arena layout over a compiled plan.

    Models the density-mode execution of the straight-line plan: every
    trace-slot tensor is resolved up front and read once at its own
    site's step (live on [[0, site_step]]), while an observation's
    score scratch is produced and consumed within its own step
    ([[step, step]]). A first-fit pass assigns each interval the
    lowest arena-slab offset at which it overlaps no simultaneously
    live interval, so disjoint live ranges share memory.

    The layout covers the plan's {e site} tensors; interior op
    intermediates are recycled by the same buffer pool but sized
    dynamically (one miss on the first run, hits thereafter). *)

type interval = {
  iv_label : string;
      (** Site address; the primitive name for observations. *)
  iv_kind : Gen.Plan.kind;
  iv_start : int;  (** First step the buffer is live (inclusive). *)
  iv_stop : int;  (** Last step the buffer is live (inclusive). *)
  iv_extent : int;  (** Buffer size in floats. *)
  iv_offset : int;  (** Assigned slab offset, in floats. *)
}

type t = {
  intervals : interval list;  (** In plan-step order. *)
  arena_floats : int;  (** Slab extent with disjoint-range reuse. *)
  naive_floats : int;  (** Sum of extents (no reuse). *)
  unknown : int;
      (** Steps whose static shape the discovery walk could not pin
          down (sequential-fallback plates, non-real carriers). *)
}

val of_plan : Gen.Plan.t -> t

val arena_bytes : t -> int

val warm_extents : t -> int list
(** One buffer extent per distinct slab region — intervals sharing a
    region reuse one buffer at runtime. *)

val pool_of : t -> Tensor.Pool.t
(** A fresh buffer pool pre-seeded ([Tensor.Pool.warm]) with the
    layout's region extents, ready to attach via [Gen.Plan.set_arena]. *)
