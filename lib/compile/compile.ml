(* Staged compilation of generative programs (see compile.mli).

   The structure-discovery walk is Check.trail — the same abstract
   interpretation the preflight analyzer runs, so one traversal serves
   both diagnostics and plan construction. Compilation itself is pure
   bookkeeping over the recorded trail: intern addresses, pre-make the
   plate lowering decisions, and refuse anything whose runtime shape the
   walk could not pin down. *)

type refusal = {
  r_code : string;
  r_address : string option;
  r_reason : string;
}

type result = Compiled of Gen.Plan.t | Refused of refusal

exception Refuse of string option * string

let refuse ?address fmt =
  Printf.ksprintf (fun msg -> raise (Refuse (address, msg))) fmt

(* Primitives whose log-density evaluates through a fused kernel (one
   pass over the data instead of a composed softplus/mul/add chain).
   Purely descriptive: the fusion lives in lib/dist and fires for the
   interpreter too, which is what keeps compiled and interpreted
   execution bit-identical. *)
let fused_density = function
  | "bernoulli_logits_vector" -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Trail -> plan steps                                                 *)

let step_of_trail (ts : Check.trail_step) : Gen.Plan.step =
  match ts with
  | Check.Trail_sample { t_addr; t_dist; t_strategy; t_reentrant; t_shape; _ }
    ->
    if t_reentrant then
      refuse ~address:t_addr
        "sample site %S uses strategy %s, which re-runs its continuation at \
         runtime; the program is not straight-line"
        t_addr t_strategy;
    { Gen.Plan.st_kind = Gen.Plan.Sample_site;
      st_addr = t_addr;
      st_slot = 0;
      st_dist = t_dist;
      st_strategy = t_strategy;
      st_n = 1;
      st_shape = t_shape;
      st_fused = false }
  | Check.Trail_observe { t_dist; t_shape; t_param_shape = _ } ->
    { st_kind = Gen.Plan.Observe_site;
      st_addr = t_dist;
      st_slot = -1;
      st_dist = t_dist;
      st_strategy = "-";
      st_n = 1;
      st_shape = t_shape;
      st_fused = fused_density t_dist }
  | Check.Trail_plate
      { t_n; t_batched; t_body_addrs; t_body_reentrant; t_shape; t_dist;
        t_strategy } -> begin
    match t_batched with
    | Some addr ->
      { st_kind = Gen.Plan.Plate_batched;
        st_addr = addr;
        st_slot = 0;
        st_dist = Option.value t_dist ~default:"?";
        st_strategy = Option.value t_strategy ~default:"?";
        st_n = t_n;
        st_shape = t_shape;
        st_fused = fused_density (Option.value t_dist ~default:"") }
    | None ->
      (* Sequential fallback: the interpreter loop runs the body per
         instance. A re-entrant body (ENUM/MVD inside the plate) would
         re-run the fallback's continuation against the shared plan
         cursor, so it cannot be staged even behind the fallback. *)
      if t_body_reentrant then
        refuse
          "a sequential-fallback plate body contains a site that re-runs its \
           continuation (ENUM/MVD or sub-inference); the program is not \
           straight-line";
      let label =
        match t_body_addrs with a :: _ -> a | [] -> "<plate>"
      in
      { st_kind = Gen.Plan.Plate_seq;
        st_addr = label;
        st_slot = -1;
        st_dist = Option.value t_dist ~default:"-";
        st_strategy = Option.value t_strategy ~default:"-";
        st_n = t_n;
        st_shape = t_shape;
        st_fused = false }
  end
  | Check.Trail_marginal { t_keep = _ } ->
    refuse
      "the program contains [marginal], whose density runs a nested \
       importance-sampling loop; it cannot be staged"
  | Check.Trail_normalize ->
    refuse
      "the program contains [normalize], which runs nested inference; it \
       cannot be staged"

(* ------------------------------------------------------------------ *)
(* Address-uniqueness analysis                                         *)

(* The compiled density executor counts consumed trace entries instead
   of threading a shrinking remainder map, which is only equivalent when
   every plan address is globally unique — including the suffixed
   [addr[i]] families a sequential-fallback plate binds at runtime. *)

let suffixed addr i = Printf.sprintf "%s[%d]" addr i

(* [base [k]] split of an address, when it ends in an integer suffix. *)
let bracket_suffix addr =
  let n = String.length addr in
  if n < 3 || addr.[n - 1] <> ']' then None
  else
    match String.rindex_opt addr '[' with
    | None -> None
    | Some l ->
      if l = 0 || l + 1 >= n - 1 then None
      else
        let digits = String.sub addr (l + 1) (n - l - 2) in
        (match int_of_string_opt digits with
        | Some k when k >= 0 -> Some (String.sub addr 0 l, k)
        | _ -> None)

let check_addresses (steps : Gen.Plan.step list)
    (seq_plates : (int * string list) list) =
  let seen = Hashtbl.create 32 in
  let add addr =
    if Hashtbl.mem seen addr then
      refuse ~address:addr
        "address %S is bound by more than one site (directly or through a \
         sequential plate's [i] suffixes); the plan's slot table requires \
         globally unique addresses"
        addr;
    Hashtbl.add seen addr ()
  in
  List.iter
    (fun (s : Gen.Plan.step) ->
      match s.Gen.Plan.st_kind with
      | Gen.Plan.Sample_site | Gen.Plan.Plate_batched -> add s.Gen.Plan.st_addr
      | Gen.Plan.Plate_seq | Gen.Plan.Observe_site -> ())
    steps;
  List.iter
    (fun (n, body_addrs) ->
      List.iter (fun a -> for i = 0 to n - 1 do add (suffixed a i) done)
        body_addrs)
    seq_plates;
  (* Conservative aliasing guard: the walk records a plate body's
     may-bind addresses, but a body could in principle bind a different
     address at runtime. If any planned address outside a fallback
     plate's own suffixed family already ends in a plausible [k] suffix,
     a runtime drift could silently alias it, so refuse outright. *)
  let max_n =
    List.fold_left (fun acc (n, _) -> max acc n) 0 seq_plates
  in
  if max_n > 0 then
    List.iter
      (fun (s : Gen.Plan.step) ->
        match s.Gen.Plan.st_kind with
        | Gen.Plan.Sample_site | Gen.Plan.Plate_batched -> begin
          match bracket_suffix s.Gen.Plan.st_addr with
          | Some (_, k) when k < max_n ->
            refuse ~address:s.Gen.Plan.st_addr
              "address %S ends in an index suffix that a sequential-fallback \
               plate in the same program could alias; rename the site or the \
               plate body"
              s.Gen.Plan.st_addr
          | _ -> ()
        end
        | Gen.Plan.Plate_seq | Gen.Plan.Observe_site -> ())
      steps

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)

let trails_equal (a : Check.trail_step list) (b : Check.trail_step list) =
  a = b

let compile ?fuel ?max_width ~id packed =
  try
    let tr = Check.trail ?fuel ?max_width packed in
    let report = tr.Check.trail_report in
    (match Check.errors report with
    | [] -> ()
    | d :: _ ->
      refuse ?address:d.Check.address
        "preflight reports %s: %s; fix the diagnostic before staging"
        d.Check.code d.Check.message);
    if report.Check.truncated then
      refuse
        "preflight exploration was truncated (PV401); the discovered \
         structure may be incomplete, so the program cannot be staged";
    let canonical =
      match tr.Check.trails with
      | [] -> refuse "preflight discovered no complete execution path"
      | t :: rest ->
        if not (List.for_all (trails_equal t) rest) then
          refuse
            "the program's site structure differs across execution paths \
             (data-dependent control flow); only programs with static \
             structure can be staged";
        t
    in
    let steps = List.map step_of_trail canonical in
    let seq_plates =
      List.filter_map
        (function
          | Check.Trail_plate { t_batched = None; t_n; t_body_addrs; _ } ->
            Some (t_n, t_body_addrs)
          | _ -> None)
        canonical
    in
    check_addresses steps seq_plates;
    match Gen.Plan.make ~id steps with
    | plan -> Compiled plan
    | exception Invalid_argument msg -> refuse "%s" msg
  with Refuse (address, reason) ->
    Refused { r_code = "PV501"; r_address = address; r_reason = reason }

(* ------------------------------------------------------------------ *)
(* Plan cache                                                          *)

let cache : (string, result) Hashtbl.t = Hashtbl.create 16

(* The cache is consulted from sharded training blocks running on
   worker domains; a mutex keeps concurrent first-compilations of the
   same step from corrupting the table. Staging inside the lock is
   fine — it happens once per program id. *)
let cache_mutex = Mutex.create ()

let with_cache_lock f =
  Mutex.lock cache_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock cache_mutex) f

(* Arena execution: cached plans carry a warmed buffer pool computed
   from the static liveness layout, so every compiled run recycles its
   op-output buffers instead of minor-allocating them. On by default;
   [set_arena_execution false] detaches for A/B measurement (the
   uncached [compile] never attaches, so tests can compare the same
   plan with and without an arena). *)
let arena_execution = ref true

let attach_arena plan =
  let layout = Layout.of_plan plan in
  let pool = Layout.pool_of layout in
  if Obs.live () then
    Obs.gauge "arena/static_bytes" (float_of_int (Layout.arena_bytes layout));
  Gen.Plan.set_arena plan (Some pool)

let set_arena_execution enabled =
  arena_execution := enabled;
  Hashtbl.iter
    (fun _ r ->
      match r with
      | Compiled plan ->
        if enabled then attach_arena plan else Gen.Plan.set_arena plan None
      | Refused _ -> ())
    cache

let arena_execution_enabled () = !arena_execution

let plan_for ?fuel ?max_width ~id packed =
  with_cache_lock (fun () ->
      match Hashtbl.find_opt cache id with
      | Some r ->
        Obs.incr "compile/plan_hit";
        r
      | None ->
        Obs.incr "compile/plan_miss";
        let r =
          Obs.span Obs.Preflight ("compile/" ^ id) (fun () ->
              compile ?fuel ?max_width ~id packed)
        in
        (match r with
        | Refused { r_reason; _ } ->
          Obs.incr "compile/refused";
          Obs.message Obs.Preflight
            (Printf.sprintf "compile/%s refused (PV501): %s" id r_reason)
        | Compiled plan -> if !arena_execution then attach_arena plan);
        Hashtbl.replace cache id r;
        r)

let invalidate id = with_cache_lock (fun () -> Hashtbl.remove cache id)
let reset_cache () = with_cache_lock (fun () -> Hashtbl.reset cache)

let cached_ids () =
  with_cache_lock (fun () ->
      Hashtbl.fold (fun k _ acc -> k :: acc) cache [] |> List.sort compare)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let sanitize_var addr =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    addr

(* The plan's straight-line fragment in the Yolo ANF IR, where
   expressible: scalar REPARAM normal sites are exactly the IR's
   [Sample_normal]. Sites outside the IR's little language stay in the
   plan's own step encoding (the "interpreter fallback per site"). *)
let yolo_sketch plan =
  let sites =
    Array.to_list (Gen.Plan.steps plan)
    |> List.filter_map (fun (s : Gen.Plan.step) ->
           match s.Gen.Plan.st_kind with
           | Gen.Plan.Sample_site
             when String.equal s.Gen.Plan.st_dist "normal"
                  && String.equal s.Gen.Plan.st_strategy "REPARAM"
                  && (match s.Gen.Plan.st_shape with
                     | Some [||] | None -> true
                     | Some _ -> false) ->
             Some (sanitize_var s.Gen.Plan.st_addr)
           | _ -> None)
  in
  match sites with
  | [] -> None
  | _ ->
    let params =
      List.concat_map (fun v -> [ "mu_" ^ v; "sigma_" ^ v ]) sites
    in
    let body =
      List.map
        (fun v ->
          Yolo.Sample_normal (v, Yolo.Var ("mu_" ^ v), Yolo.Var ("sigma_" ^ v)))
        sites
    in
    let loss =
      match sites with
      | [ v ] -> Yolo.Var v
      | v :: rest ->
        List.fold_left (fun e v' -> Yolo.Add (e, Yolo.Var v')) (Yolo.Var v)
          rest
      | [] -> assert false
    in
    Some
      { Yolo.params;
        body = body @ [ Yolo.Let ("loss", loss) ];
        result = "loss" }

let shape_str = function
  | None -> "?"
  | Some [||] -> "scalar"
  | Some dims ->
    "["
    ^ String.concat "," (Array.to_list (Array.map string_of_int dims))
    ^ "]"

let kind_str = function
  | Gen.Plan.Sample_site -> "sample"
  | Gen.Plan.Observe_site -> "observe"
  | Gen.Plan.Plate_batched -> "plate/batched"
  | Gen.Plan.Plate_seq -> "plate/seq-fallback"

let describe ~id result =
  let buf = Buffer.create 256 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (match result with
  | Refused { r_code; r_address; r_reason } ->
    pr "%s: refused (%s)%s\n  %s\n" id r_code
      (match r_address with Some a -> Printf.sprintf " at %S" a | None -> "")
      r_reason
  | Compiled plan ->
    let steps = Gen.Plan.steps plan in
    let slots = Gen.Plan.slots plan in
    pr "%s: compiled plan %S — %d steps, %d slots, %d sequential fallback%s\n"
      id (Gen.Plan.id plan) (Array.length steps) (Array.length slots)
      (Gen.Plan.seq_fallbacks plan)
      (if Gen.Plan.seq_fallbacks plan = 1 then "" else "s");
    pr "  slot table:\n";
    Array.iteri (fun i a -> pr "    [%d] %s\n" i a) slots;
    pr "  steps:\n";
    Array.iteri
      (fun i (s : Gen.Plan.step) ->
        pr "    %2d %-18s %-16s %s %s shape=%s%s%s\n" i (kind_str s.st_kind)
          s.st_addr s.st_dist s.st_strategy (shape_str s.st_shape)
          (if s.st_n <> 1 then Printf.sprintf " n=%d" s.st_n else "")
          (if s.st_fused then " [fused kernel]" else ""))
      steps;
    let layout = Layout.of_plan plan in
    pr "  arena layout (static liveness, floats):\n";
    List.iter
      (fun (iv : Layout.interval) ->
        pr "    %-16s %-14s live=[%d,%d] offset=%d extent=%d\n"
          iv.Layout.iv_label (kind_str iv.Layout.iv_kind) iv.Layout.iv_start
          iv.Layout.iv_stop iv.Layout.iv_offset iv.Layout.iv_extent)
      layout.Layout.intervals;
    pr "    total %d floats (%d bytes); naive (no reuse) %d floats%s\n"
      layout.Layout.arena_floats
      (Layout.arena_bytes layout)
      layout.Layout.naive_floats
      (if layout.Layout.unknown > 0 then
         Printf.sprintf "; %d step(s) not statically sized"
           layout.Layout.unknown
       else "");
    (match yolo_sketch plan with
    | None -> ()
    | Some prog ->
      pr "  yolo fragment (scalar REPARAM normal sites):\n";
      let body = Format.asprintf "%a" Yolo.pp_program prog in
      String.split_on_char '\n' body
      |> List.iter (fun line ->
             if String.length line > 0 then pr "    %s\n" line)));
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json ~id result =
  let buf = Buffer.create 256 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "{\"id\":\"%s\"" (json_escape id);
  (match result with
  | Refused { r_code; r_address; r_reason } ->
    pr ",\"compiled\":false,\"code\":\"%s\"" (json_escape r_code);
    (match r_address with
    | Some a -> pr ",\"address\":\"%s\"" (json_escape a)
    | None -> ());
    pr ",\"reason\":\"%s\"" (json_escape r_reason)
  | Compiled plan ->
    pr ",\"compiled\":true,\"seq_fallbacks\":%d" (Gen.Plan.seq_fallbacks plan);
    pr ",\"slots\":[%s]"
      (String.concat ","
         (Array.to_list
            (Array.map
               (fun a -> Printf.sprintf "\"%s\"" (json_escape a))
               (Gen.Plan.slots plan))));
    pr ",\"steps\":[";
    Array.iteri
      (fun i (s : Gen.Plan.step) ->
        if i > 0 then pr ",";
        pr
          "{\"kind\":\"%s\",\"addr\":\"%s\",\"slot\":%d,\"dist\":\"%s\",\
           \"strategy\":\"%s\",\"n\":%d,\"fused\":%b"
          (json_escape (kind_str s.st_kind))
          (json_escape s.st_addr) s.st_slot (json_escape s.st_dist)
          (json_escape s.st_strategy)
          s.st_n s.st_fused;
        (match s.st_shape with
        | None -> ()
        | Some dims ->
          pr ",\"shape\":[%s]"
            (String.concat ","
               (Array.to_list (Array.map string_of_int dims))));
        pr "}")
      (Gen.Plan.steps plan);
    pr "]";
    let layout = Layout.of_plan plan in
    pr ",\"arena\":{\"floats\":%d,\"bytes\":%d,\"naive_floats\":%d,\
        \"unknown\":%d,\"intervals\":["
      layout.Layout.arena_floats
      (Layout.arena_bytes layout)
      layout.Layout.naive_floats layout.Layout.unknown;
    List.iteri
      (fun i (iv : Layout.interval) ->
        if i > 0 then pr ",";
        pr
          "{\"label\":\"%s\",\"kind\":\"%s\",\"start\":%d,\"stop\":%d,\
           \"offset\":%d,\"extent\":%d}"
          (json_escape iv.Layout.iv_label)
          (json_escape (kind_str iv.Layout.iv_kind))
          iv.Layout.iv_start iv.Layout.iv_stop iv.Layout.iv_offset
          iv.Layout.iv_extent)
      layout.Layout.intervals;
    pr "]}";
    match yolo_sketch plan with
    | None -> ()
    | Some prog ->
      pr ",\"yolo\":\"%s\""
        (json_escape (Format.asprintf "%a" Yolo.pp_program prog)));
  pr "}";
  Buffer.contents buf
