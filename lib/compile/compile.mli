(** Staged compilation: partially evaluate a generative program once
    into a straight-line execution plan.

    [compile] reuses the preflight abstract-interpretation walk
    ({!Check.trail}) to discover a program's site structure, then
    freezes it into a {!Gen.Plan.t}: addresses interned to integer
    slots, plate lowering decisions pre-made, fused density kernels
    identified, and per-run buffers preallocated. The compiled
    executors ([Gen.simulate_compiled] / [Gen.log_density_compiled])
    then skip the interpreter's per-call discovery work while staying
    {e bit-identical} to it — same [Prng.fold_in] key discipline, same
    floating-point accumulation order.

    Programs whose structure is not static refuse compilation with
    diagnostic {b PV501} (see [docs/DIAGNOSTICS.md]): data-dependent
    control flow (differing trails across probe paths), sites that
    re-run their continuation (ENUM/MVD enumeration, [marginal] /
    [normalize] sub-inference), truncated analysis, or address
    collisions that would break the plan's slot-table uniqueness.
    Refusal is a normal value, not an error: callers fall back to the
    interpreter. *)

type refusal = {
  r_code : string;  (** Stable diagnostic code; currently ["PV501"]. *)
  r_address : string option;  (** Offending site, when site-specific. *)
  r_reason : string;  (** Human-readable explanation. *)
}

type result = Compiled of Gen.Plan.t | Refused of refusal

val compile : ?fuel:int -> ?max_width:int -> id:string -> Gen.packed -> result
(** One uncached staging pass: run the structure-discovery walk and
    either freeze a plan or refuse with a PV501 diagnostic. *)

val plan_for : ?fuel:int -> ?max_width:int -> id:string -> Gen.packed -> result
(** Cached {!compile}, keyed by [id] (model identity). Hits and misses
    are counted in the ["compile/plan_hit"] / ["compile/plan_miss"]
    observability counters; each miss runs under a
    ["compile/<id>"] preflight span so [ppvi profile] shows staging
    amortization. Refusals are cached too (counter
    ["compile/refused"]), so the interpreter fallback pays the walk
    only once.

    When arena execution is enabled (the default), freshly compiled
    plans are attached a buffer pool pre-seeded from their static
    liveness layout ({!Layout.of_plan}), so compiled runs recycle
    op-output buffers instead of minor-allocating them. The uncached
    {!compile} never attaches a pool — tests and benchmarks use it to
    A/B the same plan with and without an arena. *)

val set_arena_execution : bool -> unit
(** Toggle arena-backed execution for {!plan_for} plans. Applies to
    plans already in the cache (attaching or detaching their pools)
    and to future compilations. Default: enabled. *)

val arena_execution_enabled : unit -> bool

val invalidate : string -> unit
(** Drop the cached result for one plan id; the next {!plan_for} call
    re-stages. Use after mutating a model's structure. *)

val reset_cache : unit -> unit
(** Drop every cached result (tests, benchmarks). *)

val cached_ids : unit -> string list
(** Ids currently in the plan cache, sorted. *)

val yolo_sketch : Gen.Plan.t -> Yolo.program option
(** The plan's straight-line fragment rendered in the [Yolo] ANF IR,
    where expressible: one [Sample_normal] statement per scalar
    REPARAM normal site. [None] when no site fits the IR's
    language. *)

val describe : id:string -> result -> string
(** Human-readable rendering: the slot table, per-step kernel listing
    (fused kernels and sequential fallbacks marked), and the Yolo
    sketch — or the refusal diagnostic. *)

val to_json : id:string -> result -> string
(** Single-line JSON object (no external dependency) with the same
    content as {!describe}, for [ppvi compile --json] and the CI
    compile-smoke artifact. *)
