(* Static liveness + arena layout over a compiled plan.

   The model is the density-mode execution of the straight-line plan:
   every trace-slot tensor is resolved up front ([Gen.acquire_dens])
   and read once, at its own site's step — so a slot's buffer is live
   on the step interval [0, site_step] — while an observation's score
   scratch is produced and consumed within its own step ([step,
   step]). Intervals whose step ranges are disjoint may share a region
   of the arena slab; a first-fit pass assigns each interval the
   lowest feasible offset. The resulting layout is the plan's static
   memory story: total arena floats (with reuse) versus the naive
   sum-of-extents, per-interval offsets for the report, and the list
   of region extents used to pre-seed ([Tensor.Pool.warm]) the plan's
   buffer pool so the first arena run already hits its free lists.

   The layout models the plan's *site* tensors (slot values, observe
   scratch). Interior op intermediates (layer matmuls, elementwise
   chains) are recycled by the same pool but sized dynamically: they
   miss once on the first run and hit thereafter. *)

type interval = {
  iv_label : string;  (* site address; the primitive name for observes *)
  iv_kind : Gen.Plan.kind;
  iv_start : int;  (* first step the buffer is live (inclusive) *)
  iv_stop : int;  (* last step the buffer is live (inclusive) *)
  iv_extent : int;  (* floats *)
  iv_offset : int;  (* assigned slab offset, in floats *)
}

type t = {
  intervals : interval list;  (* in plan-step order *)
  arena_floats : int;  (* slab extent with disjoint-range reuse *)
  naive_floats : int;  (* sum of extents (no reuse) *)
  unknown : int;  (* steps whose static shape the walk could not pin *)
}

let shape_floats shape = Array.fold_left ( * ) 1 shape

(* First-fit placement: each interval gets the lowest offset at which
   it overlaps no already-placed interval that is simultaneously live.
   Candidate offsets are 0 and the ends of placed intervals, which is
   sufficient for a lowest-feasible-offset search. *)
let place intervals =
  let placed = ref [] in
  List.map
    (fun iv ->
      let conflicts o p =
        (* live ranges intersect AND slab regions intersect *)
        not (iv.iv_stop < p.iv_start || p.iv_stop < iv.iv_start)
        && not (o + iv.iv_extent <= p.iv_offset
                || p.iv_offset + p.iv_extent <= o)
      in
      let feasible o = List.for_all (fun p -> not (conflicts o p)) !placed in
      let candidates =
        0 :: List.map (fun p -> p.iv_offset + p.iv_extent) !placed
      in
      let offset =
        List.fold_left
          (fun best o -> if o < best && feasible o then o else best)
          max_int
          (List.filter feasible candidates)
      in
      let iv = { iv with iv_offset = offset } in
      placed := iv :: !placed;
      iv)
    intervals

let of_plan plan =
  let steps = Gen.Plan.steps plan in
  let nsteps = Array.length steps in
  let unknown = ref 0 in
  let raw = ref [] in
  Array.iteri
    (fun i (s : Gen.Plan.step) ->
      let extent =
        match s.Gen.Plan.st_shape with
        | Some shp -> Some (shape_floats shp)
        | None -> None
      in
      match (s.Gen.Plan.st_kind, extent) with
      | Gen.Plan.Sample_site, Some e ->
        raw :=
          { iv_label = s.Gen.Plan.st_addr;
            iv_kind = s.Gen.Plan.st_kind;
            iv_start = 0;
            iv_stop = i;
            iv_extent = e;
            iv_offset = 0 }
          :: !raw
      | Gen.Plan.Plate_batched, Some e ->
        (* The stacked value: n instances of the per-instance shape. *)
        raw :=
          { iv_label = s.Gen.Plan.st_addr;
            iv_kind = s.Gen.Plan.st_kind;
            iv_start = 0;
            iv_stop = i;
            iv_extent = s.Gen.Plan.st_n * e;
            iv_offset = 0 }
          :: !raw
      | Gen.Plan.Observe_site, Some e ->
        raw :=
          { iv_label = s.Gen.Plan.st_addr;
            iv_kind = s.Gen.Plan.st_kind;
            iv_start = i;
            iv_stop = i;
            iv_extent = e;
            iv_offset = 0 }
          :: !raw
      | (Gen.Plan.Plate_seq | _), None -> incr unknown
      | Gen.Plan.Plate_seq, Some _ ->
        (* Sequential fallbacks run through the interpreter; their
           buffers are not part of the static story. *)
        incr unknown)
    steps;
  ignore nsteps;
  let intervals = place (List.rev !raw) in
  let arena_floats =
    List.fold_left
      (fun acc iv -> Stdlib.max acc (iv.iv_offset + iv.iv_extent))
      0 intervals
  in
  let naive_floats =
    List.fold_left (fun acc iv -> acc + iv.iv_extent) 0 intervals
  in
  { intervals; arena_floats; naive_floats; unknown = !unknown }

let arena_bytes t = 8 * t.arena_floats

(* One pooled buffer per distinct slab region: intervals that share an
   (offset, extent) region reuse the same buffer at runtime, so the
   warm list carries one entry per region. *)
let warm_extents t =
  List.sort_uniq compare
    (List.map (fun iv -> (iv.iv_offset, iv.iv_extent)) t.intervals)
  |> List.map snd

let pool_of t =
  let pool = Tensor.Pool.create () in
  Tensor.Pool.warm pool (warm_extents t);
  pool
