let key0 = Prng.key 0
(* Density evaluation is deterministic; the ambient ADEV key is unused. *)

type cfg = { max_batch : int; max_wait_us : float; queue_bound : int }

let default_cfg = { max_batch = 64; max_wait_us = 200.; queue_bound = 256 }

type model_entry = {
  m_name : string;
  m_model : unit Gen.t;
  m_guide : Store.Frame.t -> unit Gen.t;
  mutable m_store : Store.t;
  m_dir : string option;
  mutable m_stamp : string;  (* path of the loaded checkpoint, "" if none *)
  mutable m_last_poll : float;
  m_sig : string list;  (* sorted latent addresses *)
  m_plan : Gen.Plan.t option;
  m_plan_status : string;
}

type outcome =
  | O_value of float
  | O_sample of (string * Proto.wire_value) list * float
  | O_grad of float * (string * float) list
  | O_error of string * string

type kind =
  | K_score of Trace.t
  | K_elbo of { seed : int; particles : int }
  | K_sample of int
  | K_grad of int

type job = {
  j_entry : model_entry;
  j_kind : kind;
  j_enq : float;
  j_deadline_ms : float option;
  j_cell : cell;
}

and cell = {
  c_m : Mutex.t;
  c_c : Condition.t;
  mutable c_out : outcome option;
}

type t = {
  cfg : cfg;
  lock : Mutex.t;
  nonempty : Condition.t;
  queue : job Queue.t;
  mutable is_draining : bool;
  mutable paused : bool;
  mutable exec : Thread.t option;
  models : (string, model_entry) Hashtbl.t;
  t0 : float;
  (* stats, guarded by [lock] *)
  mutable n_requests : int;
  mutable n_replies : int;
  mutable n_overloaded : int;
  mutable n_deadline : int;
  mutable n_rejected_draining : int;
  mutable n_batches : int;
  mutable n_rows : int;
  mutable n_coalesced : int;
  mutable n_vectorized_rows : int;
  mutable n_scalar_rows : int;
  mutable n_fallbacks : int;
  mutable max_batch_seen : int;
  mutable max_queue_seen : int;
  mutable n_reloads : int;
}

let create cfg =
  {
    cfg;
    lock = Mutex.create ();
    nonempty = Condition.create ();
    queue = Queue.create ();
    is_draining = false;
    paused = false;
    exec = None;
    models = Hashtbl.create 8;
    t0 = Unix.gettimeofday ();
    n_requests = 0;
    n_replies = 0;
    n_overloaded = 0;
    n_deadline = 0;
    n_rejected_draining = 0;
    n_batches = 0;
    n_rows = 0;
    n_coalesced = 0;
    n_vectorized_rows = 0;
    n_scalar_rows = 0;
    n_fallbacks = 0;
    max_batch_seen = 0;
    max_queue_seen = 0;
    n_reloads = 0;
  }

(* ------------------------------------------------------------------ *)
(* Registry *)

let detached_guide entry =
  entry.m_guide (Store.Frame.make_detached entry.m_store)

let register t ~name ~model ~guide ~store ?params_dir () =
  let store, stamp =
    match params_dir with
    | None -> (store, "")
    | Some dir -> (
      match Store.load_latest_result dir with
      | Ok (s, path) ->
        Obs.message Obs.Other
          (Printf.sprintf "serve: %s warm-started from %s" name path);
        (s, path)
      | Error e ->
        Obs.message Obs.Other
          (Printf.sprintf "serve: %s starting fresh (%s)" name
             (Store.latest_error_message e));
        (store, ""))
  in
  let entry_sig =
    (* The servable contract requires a static latent structure, so one
       prior draw of the guide reveals the full address set. *)
    let probe = guide (Store.Frame.make_detached store) in
    let _, tr, _ = Gen.sample_prior probe key0 in
    List.sort compare (Trace.keys tr)
  in
  let plan, plan_status =
    match Compile.plan_for ~id:("serve/" ^ name) (Gen.Packed model) with
    | Compile.Compiled p -> (Some p, "compiled")
    | Compile.Refused r ->
      (None, Printf.sprintf "interpreted (%s %s)" r.Compile.r_code r.Compile.r_reason)
  in
  Hashtbl.replace t.models name
    {
      m_name = name;
      m_model = model;
      m_guide = guide;
      m_store = store;
      m_dir = params_dir;
      m_stamp = stamp;
      m_last_poll = Unix.gettimeofday ();
      m_sig = entry_sig;
      m_plan = plan;
      m_plan_status = plan_status;
    }

(* The synthetic load-test model: 8 scalar latents, each driving a
   24-deep chain of elementwise tanh updates that feed one scalar
   observe. Per request the interpreter builds ~600 AD nodes over
   scalars; coalesced, the same nodes carry [n]-vectors, which is
   exactly the amortization the daemon exists to exploit. Scalar sites
   only: every lane of the batched density is then bit-identical to
   the scalar evaluation (the lib/gen batched-engine invariant). *)
let chain_latents = 8
let chain_depth = 96

let chain_model : unit Gen.t =
  let open Gen.Syntax in
  let site i = Printf.sprintf "z%d" i in
  let rec draw i acc =
    if i >= chain_latents then Gen.return (List.rev acc)
    else
      let* z =
        Gen.sample (Dist.normal_reparam (Ad.scalar 0.) (Ad.scalar 1.)) (site i)
      in
      draw (i + 1) (z :: acc)
  in
  let* zs = draw 0 [] in
  let head z =
    let rec go h d =
      if d = 0 then h
      else go (Ad.tanh (Ad.add (Ad.scale 0.9 h) (Ad.add_scalar 0.1 (Ad.scale 0.3 z)))) (d - 1)
    in
    go z chain_depth
  in
  let s = List.fold_left (fun acc z -> Ad.add acc (head z)) (Ad.scalar 0.) zs in
  Gen.observe (Dist.normal_reparam s (Ad.scalar 1.)) (Ad.scalar 0.5)

let chain_register store =
  for i = 0 to chain_latents - 1 do
    Store.ensure store (Printf.sprintf "chain.mu%d" i) (fun () ->
        Tensor.scalar 0.);
    Store.ensure store (Printf.sprintf "chain.rho%d" i) (fun () ->
        Tensor.scalar 0.)
  done

let chain_guide frame =
  let open Gen.Syntax in
  let p = Store.Frame.get frame in
  let pos rho = Ad.add_scalar 1e-3 (Ad.softplus rho) in
  let rec go i =
    if i >= chain_latents then Gen.return ()
    else
      let* _ =
        Gen.sample
          (Dist.normal_reparam
             (p (Printf.sprintf "chain.mu%d" i))
             (pos (p (Printf.sprintf "chain.rho%d" i))))
          (Printf.sprintf "z%d" i)
      in
      go (i + 1)
  in
  go 0

let register_builtins ?params_root t =
  let dir name =
    Option.map (fun root -> Filename.concat root name) params_root
  in
  let coin_store = Store.create () in
  Coin.register coin_store;
  register t ~name:"coin" ~model:Coin.model ~guide:Coin.guide ~store:coin_store
    ?params_dir:(dir "coin") ();
  let cone_store = Store.create () in
  Cone.register cone_store key0;
  register t ~name:"cone" ~model:Cone.model ~guide:Cone.guide_naive
    ~store:cone_store ?params_dir:(dir "cone") ();
  let chain_store = Store.create () in
  chain_register chain_store;
  register t ~name:"chain" ~model:chain_model ~guide:chain_guide
    ~store:chain_store ?params_dir:(dir "chain") ()

let models t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.models [] |> List.sort compare

let model_sig t name =
  Option.map (fun e -> e.m_sig) (Hashtbl.find_opt t.models name)

let plan_status t name =
  Option.map (fun e -> e.m_plan_status) (Hashtbl.find_opt t.models name)

(* ------------------------------------------------------------------ *)
(* Checkpoint hot reload *)

let poll_reload t entry =
  match entry.m_dir with
  | None -> ()
  | Some dir ->
    let now = Unix.gettimeofday () in
    if now -. entry.m_last_poll >= 0.25 then begin
      entry.m_last_poll <- now;
      match
        (try
           if Fault.active () then Fault.on_io ~op:`Read ~path:dir;
           Store.load_latest_result dir
         with Sys_error msg -> Error (Store.All_corrupt { dir = msg; tried = 0 }))
      with
      | Ok (s, path) when path <> entry.m_stamp ->
        entry.m_store <- s;
        entry.m_stamp <- path;
        Mutex.lock t.lock;
        t.n_reloads <- t.n_reloads + 1;
        Mutex.unlock t.lock;
        Obs.incr "serve/reloads";
        Obs.message Obs.Other
          (Printf.sprintf "serve: %s hot-reloaded params from %s" entry.m_name
             path)
      | Ok _ | Error _ -> ()
    end

(* ------------------------------------------------------------------ *)
(* Execution *)

let wire_of_trace tr =
  List.map
    (fun (a, v) ->
      ( a,
        match v with
        | Value.Real ad ->
          let tv = Ad.value ad in
          if Tensor.shape tv = [||] then Proto.Scalar (Tensor.to_scalar tv)
          else Proto.Vector (Tensor.to_array tv)
        | Value.Bool b -> Proto.Scalar (if b then 1. else 0.)
        | Value.Int i -> Proto.Scalar (float_of_int i) ))
    (Trace.bindings tr)

let trace_of_wire pairs =
  Trace.of_list
    (List.map
       (fun (a, wv) ->
         ( a,
           Value.Real
             (match wv with
             | Proto.Scalar f -> Ad.scalar f
             | Proto.Vector arr ->
               Ad.const (Tensor.of_array [| Array.length arr |] arr)) ))
       pairs)

(* Scalar joint density of one trace, through the staged plan when the
   model compiled (bit-identical to the interpreter by the lib/compile
   contract), interpreter otherwise. *)
let density_scalar entry tr =
  let interp () =
    Ad.to_float (Adev.run (Gen.log_density entry.m_model tr) key0 (fun w -> w))
  in
  match entry.m_plan with
  | None -> interp ()
  | Some plan -> (
    try
      Ad.to_float
        (Adev.run (Gen.log_density_compiled plan entry.m_model tr) key0
           (fun w -> w))
    with Gen.Plan_mismatch _ -> interp ())

(* One stacked density evaluation over [n >= 2] traces that all carry
   exactly the model's latent signature. Returns the per-row joint
   log-densities. Raises if the model or a payload refuses batching —
   the caller falls back to scalar rows. *)
let density_vectorized entry rows =
  let n = Array.length rows in
  let stacked =
    Trace.of_list
      (List.map
         (fun addr ->
           ( addr,
             Value.Real
               (Ad.stack0
                  (Array.to_list
                     (Array.map (fun tr -> Trace.get_ad addr tr) rows))) ))
         entry.m_sig)
  in
  let lw =
    Adev.run (Gen.log_density_batched ~n entry.m_model stacked) key0 (fun w -> w)
  in
  let v = Ad.value lw in
  if Tensor.shape v <> [| n |] then
    raise (Dist.Not_batchable "serve: batched density did not return [n] rows");
  Array.init n (Tensor.get_flat v)

(* A density row awaiting its share of a stacked evaluation. *)
type row = { r_trace : Trace.t; r_logq : float (* 0. for score rows *) }

let rows_of_job entry job =
  match job.j_kind with
  | K_score tr -> [ { r_trace = tr; r_logq = 0. } ]
  | K_elbo { seed; particles } ->
    let guide = detached_guide entry in
    List.init particles (fun p ->
        let _, qtrace, logq =
          Gen.sample_prior guide (Prng.fold_in (Prng.key seed) p)
        in
        { r_trace = qtrace; r_logq = logq })
  | K_sample _ | K_grad _ -> []

let deliver job out =
  Mutex.lock job.j_cell.c_m;
  job.j_cell.c_out <- Some out;
  Condition.signal job.j_cell.c_c;
  Mutex.unlock job.j_cell.c_m

let run_sample entry seed =
  let guide = detached_guide entry in
  let _, qtrace, logq = Gen.sample_prior guide (Prng.key seed) in
  O_sample (wire_of_trace qtrace, logq)

let run_grad entry seed =
  let frame = Store.Frame.make entry.m_store in
  let obj = Objectives.elbo ~model:entry.m_model ~guide:(entry.m_guide frame) in
  let surrogate = Adev.expectation obj (Prng.key seed) in
  Ad.backward surrogate;
  let grads =
    List.map
      (fun (name, g) -> (name, Tensor.global_norm [ g ]))
      (Store.Frame.grads frame)
  in
  O_grad (Ad.to_float surrogate, grads)

let trace_matches_sig entry tr = List.sort compare (Trace.keys tr) = entry.m_sig

(* Execute one same-model batch. Density rows (score + elbo particles)
   from every job are stacked into one [Gen.log_density_batched] run;
   sample/grad jobs run scalar inside the loop under their own keys. *)
let execute_batch t batch_no jobs =
  let entry = (List.hd jobs).j_entry in
  poll_reload t entry;
  if Fault.active () then Fault.on_step ~step:batch_no;
  (* Build density rows per job, then evaluate them all at once. *)
  let tagged =
    List.map
      (fun job ->
        let rows =
          try Ok (rows_of_job entry job)
          with e -> Error (Printexc.to_string e)
        in
        (job, rows))
      jobs
  in
  let all_rows =
    List.concat_map
      (function _, Ok rows -> rows | _, Error _ -> [])
      tagged
  in
  let vec_rows =
    List.filter (fun r -> trace_matches_sig entry r.r_trace) all_rows
  in
  let lookup : (Trace.t * float) list ref = ref [] in
  let n_vec = List.length vec_rows in
  (if n_vec >= 2 then
     match density_vectorized entry (Array.of_list (List.map (fun r -> r.r_trace) vec_rows)) with
     | lws ->
       Mutex.lock t.lock;
       t.n_vectorized_rows <- t.n_vectorized_rows + n_vec;
       Mutex.unlock t.lock;
       Obs.incr ~by:n_vec "serve/vectorized_rows";
       lookup := List.mapi (fun i r -> (r.r_trace, lws.(i))) vec_rows
     | exception (Dist.Not_batchable _ | Tensor.Shape_error _) ->
       Mutex.lock t.lock;
       t.n_fallbacks <- t.n_fallbacks + 1;
       Mutex.unlock t.lock;
       Obs.incr "serve/scalar_fallbacks");
  let density_of r =
    match List.assq_opt r.r_trace !lookup with
    | Some lw -> lw
    | None ->
      Mutex.lock t.lock;
      t.n_scalar_rows <- t.n_scalar_rows + 1;
      Mutex.unlock t.lock;
      density_scalar entry r.r_trace
  in
  List.iter
    (fun (job, rows) ->
      let out =
        match rows with
        | Error msg -> O_error ("internal", msg)
        | Ok rows -> (
          try
            match job.j_kind with
            | K_score _ -> O_value (density_of (List.hd rows))
            | K_elbo { particles; _ } ->
              let total =
                List.fold_left
                  (fun acc r -> acc +. (density_of r -. r.r_logq))
                  0. rows
              in
              O_value (total /. float_of_int particles)
            | K_sample seed -> run_sample entry seed
            | K_grad seed -> run_grad entry seed
          with
          | Out_of_memory -> O_error ("fault", "injected allocation failure")
          | e -> O_error ("internal", Printexc.to_string e))
      in
      Mutex.lock t.lock;
      t.n_replies <- t.n_replies + 1;
      Mutex.unlock t.lock;
      deliver job out)
    tagged

(* ------------------------------------------------------------------ *)
(* Executor thread *)

(* Pops the head job plus every same-model job behind it, up to
   [max_batch]; the rest keep their order. Called with [t.lock] held. *)
let take_batch t =
  let head = Queue.pop t.queue in
  let name = head.j_entry.m_name in
  let batch = ref [ head ] in
  let count = ref 1 in
  let rest = Queue.create () in
  while not (Queue.is_empty t.queue) do
    let j = Queue.pop t.queue in
    if !count < t.cfg.max_batch && j.j_entry.m_name = name then begin
      batch := j :: !batch;
      incr count
    end
    else Queue.push j rest
  done;
  Queue.transfer rest t.queue;
  List.rev !batch

let job_expired now job =
  match job.j_deadline_ms with
  | None -> false
  | Some d -> (now -. job.j_enq) *. 1000. > d

let exec_loop t =
  let batch_no = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.lock;
    while
      (t.paused || Queue.is_empty t.queue)
      && not (t.is_draining && Queue.is_empty t.queue)
    do
      Condition.wait t.nonempty t.lock
    done;
    if Queue.is_empty t.queue && t.is_draining then begin
      Mutex.unlock t.lock;
      running := false
    end
    else begin
      (* Linger for company: new arrivals within the window join this
         batch. OCaml's Condition has no timed wait, so poll on a
         short sleep; the window is a few hundred microseconds. *)
      (if t.cfg.max_wait_us > 0. then begin
         let deadline =
           Unix.gettimeofday () +. (t.cfg.max_wait_us *. 1e-6)
         in
         let rec linger () =
           if
             Queue.length t.queue < t.cfg.max_batch
             && (not t.is_draining)
             && Unix.gettimeofday () < deadline
           then begin
             Mutex.unlock t.lock;
             Thread.delay 2e-5;
             Mutex.lock t.lock;
             linger ()
           end
         in
         linger ()
       end);
      let batch = take_batch t in
      let size = List.length batch in
      t.n_batches <- t.n_batches + 1;
      t.n_rows <- t.n_rows + size;
      if size > 1 then t.n_coalesced <- t.n_coalesced + (size - 1);
      if size > t.max_batch_seen then t.max_batch_seen <- size;
      Mutex.unlock t.lock;
      Obs.hist "serve/batch_size" (float_of_int size);
      Obs.hist "serve/queue_depth"
        (float_of_int (Queue.length t.queue + size));
      incr batch_no;
      (* Expired jobs answer [deadline] instead of being executed. *)
      let now = Unix.gettimeofday () in
      let expired, live = List.partition (job_expired now) batch in
      List.iter
        (fun job ->
          Mutex.lock t.lock;
          t.n_deadline <- t.n_deadline + 1;
          t.n_replies <- t.n_replies + 1;
          Mutex.unlock t.lock;
          Obs.incr "serve/deadline_rejects";
          deliver job
            (O_error ("deadline", "request exceeded its queueing deadline")))
        expired;
      (match live with
      | [] -> ()
      | jobs ->
        Obs.span Obs.Other "serve/exec" (fun () ->
            execute_batch t !batch_no jobs))
    end
  done

let start t =
  Mutex.lock t.lock;
  (match t.exec with
  | Some _ -> Mutex.unlock t.lock
  | None ->
    let th = Thread.create exec_loop t in
    t.exec <- Some th;
    Mutex.unlock t.lock)

let drain t =
  Mutex.lock t.lock;
  t.is_draining <- true;
  t.paused <- false;
  Condition.broadcast t.nonempty;
  let th = t.exec in
  Mutex.unlock t.lock;
  Option.iter Thread.join th;
  Mutex.lock t.lock;
  t.exec <- None;
  Mutex.unlock t.lock

let draining t =
  Mutex.lock t.lock;
  let d = t.is_draining in
  Mutex.unlock t.lock;
  d

let pause t =
  Mutex.lock t.lock;
  t.paused <- true;
  Mutex.unlock t.lock

let resume t =
  Mutex.lock t.lock;
  t.paused <- false;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock

(* ------------------------------------------------------------------ *)
(* Submission *)

let await cell =
  Mutex.lock cell.c_m;
  while cell.c_out = None do
    Condition.wait cell.c_c cell.c_m
  done;
  let out = Option.get cell.c_out in
  Mutex.unlock cell.c_m;
  out

let submit t ?deadline_ms req =
  let t_req = Obs.start () in
  let finish op out =
    Obs.stop Obs.Other ("serve/request/" ^ op) t_req;
    out
  in
  let op = Proto.request_op req in
  let enqueue entry kind =
    (* The fault plan's io hooks cover the admission path, so chaos
       drills can exercise overload/error replies deterministically. *)
    match
      if Fault.active () then
        Fault.on_io ~op:`Read ~path:("serve/" ^ entry.m_name)
    with
    | exception Sys_error msg -> finish op (O_error ("fault", msg))
    | () ->
      Mutex.lock t.lock;
      if t.is_draining then begin
        t.n_rejected_draining <- t.n_rejected_draining + 1;
        Mutex.unlock t.lock;
        Obs.incr "serve/draining_rejects";
        finish op (O_error ("draining", "server is draining; not accepting work"))
      end
      else if Queue.length t.queue >= t.cfg.queue_bound then begin
        t.n_overloaded <- t.n_overloaded + 1;
        Mutex.unlock t.lock;
        Obs.incr "serve/overloaded";
        finish op
          (O_error
             ( "overloaded",
               Printf.sprintf "queue depth is at the bound (%d); retry later"
                 t.cfg.queue_bound ))
      end
      else begin
        let cell =
          { c_m = Mutex.create (); c_c = Condition.create (); c_out = None }
        in
        let job =
          {
            j_entry = entry;
            j_kind = kind;
            j_enq = Unix.gettimeofday ();
            j_deadline_ms = deadline_ms;
            j_cell = cell;
          }
        in
        Queue.push job t.queue;
        t.n_requests <- t.n_requests + 1;
        let depth = Queue.length t.queue in
        if depth > t.max_queue_seen then t.max_queue_seen <- depth;
        Condition.signal t.nonempty;
        Mutex.unlock t.lock;
        Obs.incr "serve/requests";
        finish op (await cell)
      end
  in
  let with_model name k =
    match Hashtbl.find_opt t.models name with
    | Some entry -> k entry
    | None ->
      finish op
        (O_error ("unknown-model", Printf.sprintf "no servable model %S" name))
  in
  match req with
  | Proto.Score { model; trace } ->
    with_model model (fun entry -> enqueue entry (K_score (trace_of_wire trace)))
  | Proto.Elbo { model; seed; particles } ->
    with_model model (fun entry -> enqueue entry (K_elbo { seed; particles }))
  | Proto.Sample { model; seed } ->
    with_model model (fun entry -> enqueue entry (K_sample seed))
  | Proto.Grad { model; seed } ->
    with_model model (fun entry -> enqueue entry (K_grad seed))
  | Proto.Hello _ | Proto.Health | Proto.Stats ->
    finish op (O_error ("bad-request", "not a queueable request"))

(* ------------------------------------------------------------------ *)
(* Stats *)

type stats = {
  s_uptime_s : float;
  s_queue_depth : int;
  s_requests : int;
  s_replies : int;
  s_overloaded : int;
  s_deadline : int;
  s_rejected_draining : int;
  s_batches : int;
  s_rows : int;
  s_coalesced : int;
  s_vectorized_rows : int;
  s_scalar_rows : int;
  s_fallbacks : int;
  s_max_batch : int;
  s_max_queue : int;
  s_reloads : int;
  s_draining : bool;
}

let stats t =
  Mutex.lock t.lock;
  let s =
    {
      s_uptime_s = Unix.gettimeofday () -. t.t0;
      s_queue_depth = Queue.length t.queue;
      s_requests = t.n_requests;
      s_replies = t.n_replies;
      s_overloaded = t.n_overloaded;
      s_deadline = t.n_deadline;
      s_rejected_draining = t.n_rejected_draining;
      s_batches = t.n_batches;
      s_rows = t.n_rows;
      s_coalesced = t.n_coalesced;
      s_vectorized_rows = t.n_vectorized_rows;
      s_scalar_rows = t.n_scalar_rows;
      s_fallbacks = t.n_fallbacks;
      s_max_batch = t.max_batch_seen;
      s_max_queue = t.max_queue_seen;
      s_reloads = t.n_reloads;
      s_draining = t.is_draining;
    }
  in
  Mutex.unlock t.lock;
  s

let coalesce_ratio s =
  if s.s_batches = 0 then 1.
  else float_of_int s.s_rows /. float_of_int s.s_batches

let queue_depth t =
  Mutex.lock t.lock;
  let d = Queue.length t.queue in
  Mutex.unlock t.lock;
  d

let stats_json t =
  let s = stats t in
  let module J = Obs.Json in
  let num f = J.Num f in
  let int i = num (float_of_int i) in
  let model_rows =
    List.map
      (fun name ->
        ( name,
          J.Obj
            [ ("plan", J.Str (Option.value ~default:"?" (plan_status t name)));
              ( "latents",
                J.Arr
                  (List.map
                     (fun a -> J.Str a)
                     (Option.value ~default:[] (model_sig t name))) )
            ] ))
      (models t)
  in
  J.Obj
    [ ("uptime_s", num s.s_uptime_s);
      ("queue_depth", int s.s_queue_depth);
      ("requests", int s.s_requests);
      ("replies", int s.s_replies);
      ("overloaded", int s.s_overloaded);
      ("deadline_rejects", int s.s_deadline);
      ("draining_rejects", int s.s_rejected_draining);
      ("batches", int s.s_batches);
      ("rows", int s.s_rows);
      ("coalesced", int s.s_coalesced);
      ("coalesce_ratio", num (coalesce_ratio s));
      ("vectorized_rows", int s.s_vectorized_rows);
      ("scalar_rows", int s.s_scalar_rows);
      ("scalar_fallbacks", int s.s_fallbacks);
      ("max_batch", int s.s_max_batch);
      ("max_queue", int s.s_max_queue);
      ("reloads", int s.s_reloads);
      ("draining", J.Bool s.s_draining);
      ("models", J.Obj model_rows)
    ]
