let build_version = "1.0.0"
let schema_version = 1

let version_string =
  Printf.sprintf "ppvi %s (serve protocol schema %d)" build_version
    schema_version

module J = Obs.Json

type wire_value =
  | Scalar of float
  | Vector of float array

let bits = Int64.bits_of_float
let float_eq a b = Int64.equal (bits a) (bits b)

let wire_value_equal a b =
  match (a, b) with
  | Scalar x, Scalar y -> float_eq x y
  | Vector x, Vector y ->
    Array.length x = Array.length y
    && (let ok = ref true in
        Array.iteri (fun i v -> if not (float_eq v y.(i)) then ok := false) x;
        !ok)
  | _ -> false

type request =
  | Hello of { version : string; schema : int }
  | Score of { model : string; trace : (string * wire_value) list }
  | Sample of { model : string; seed : int }
  | Elbo of { model : string; seed : int; particles : int }
  | Grad of { model : string; seed : int }
  | Health
  | Stats

type envelope = { id : int; deadline_ms : float option; req : request }

type reply =
  | R_hello of { version : string; schema : int; models : string list }
  | R_value of float
  | R_sample of { trace : (string * wire_value) list; logq : float }
  | R_grad of { value : float; grads : (string * float) list }
  | R_health of {
      status : string;
      version : string;
      schema : int;
      uptime_s : float;
      models : string list;
    }
  | R_stats of Obs.Json.t
  | R_error of { code : string; msg : string }

type reply_envelope = { rid : int; reply : reply }

let request_op = function
  | Hello _ -> "hello"
  | Score _ -> "score"
  | Sample _ -> "sample"
  | Elbo _ -> "elbo"
  | Grad _ -> "grad"
  | Health -> "health"
  | Stats -> "stats"

(* ------------------------------------------------------------------ *)
(* JSON helpers *)

(* JSON has no syntax for non-finite floats (the writer would emit
   null); carry them as marker strings so a score of -inf round-trips. *)
let json_of_float f =
  if Float.is_finite f then J.Num f
  else
    J.Str
      (if Float.is_nan f then "nan"
       else if f > 0. then "inf"
       else "-inf")

let float_of_json = function
  | J.Num f -> Ok f
  | J.Str "nan" -> Ok Float.nan
  | J.Str "inf" -> Ok Float.infinity
  | J.Str "-inf" -> Ok Float.neg_infinity
  | _ -> Error "expected a number"

let json_of_wire = function
  | Scalar f -> json_of_float f
  | Vector a -> J.Arr (Array.to_list (Array.map json_of_float a))

let wire_of_json j =
  match j with
  | J.Arr items ->
    let rec go acc = function
      | [] -> Ok (Vector (Array.of_list (List.rev acc)))
      | x :: rest -> (
        match float_of_json x with
        | Ok f -> go (f :: acc) rest
        | Error _ as e -> e)
    in
    go [] items
  | _ -> (
    match float_of_json j with
    | Ok f -> Ok (Scalar f)
    | Error _ as e -> e)

let str_field name fields = List.assoc_opt name fields
let ( let* ) = Result.bind

let get_str name fields =
  match str_field name fields with
  | Some (J.Str s) -> Ok s
  | _ -> Error (Printf.sprintf "missing string field %S" name)

let get_int name fields =
  match str_field name fields with
  | Some (J.Num f) when Float.is_integer f -> Ok (int_of_float f)
  | _ -> Error (Printf.sprintf "missing integer field %S" name)

let get_int_default name ~default fields =
  match str_field name fields with
  | None -> Ok default
  | Some (J.Num f) when Float.is_integer f -> Ok (int_of_float f)
  | Some _ -> Error (Printf.sprintf "field %S is not an integer" name)

let get_float name fields =
  match str_field name fields with
  | Some j -> (
    match float_of_json j with
    | Ok f -> Ok f
    | Error _ -> Error (Printf.sprintf "field %S is not a number" name))
  | None -> Error (Printf.sprintf "missing number field %S" name)

(* ------------------------------------------------------------------ *)
(* Request codec *)

let encode_request { id; deadline_ms; req } =
  let base = [ ("id", J.Num (float_of_int id)); ("op", J.Str (request_op req)) ] in
  let deadline =
    match deadline_ms with
    | None -> []
    | Some d -> [ ("deadline_ms", J.Num d) ]
  in
  let rest =
    match req with
    | Hello { version; schema } ->
      [ ("version", J.Str version); ("schema", J.Num (float_of_int schema)) ]
    | Score { model; trace } ->
      [ ("model", J.Str model);
        ("trace", J.Obj (List.map (fun (a, v) -> (a, json_of_wire v)) trace))
      ]
    | Sample { model; seed } ->
      [ ("model", J.Str model); ("seed", J.Num (float_of_int seed)) ]
    | Elbo { model; seed; particles } ->
      [ ("model", J.Str model);
        ("seed", J.Num (float_of_int seed));
        ("particles", J.Num (float_of_int particles))
      ]
    | Grad { model; seed } ->
      [ ("model", J.Str model); ("seed", J.Num (float_of_int seed)) ]
    | Health | Stats -> []
  in
  J.Obj (base @ deadline @ rest)

let decode_trace fields =
  match str_field "trace" fields with
  | Some (J.Obj pairs) ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | (a, j) :: rest -> (
        match wire_of_json j with
        | Ok v -> go ((a, v) :: acc) rest
        | Error e -> Error (Printf.sprintf "trace address %S: %s" a e))
    in
    go [] pairs
  | _ -> Error "missing object field \"trace\""

let decode_request j =
  match j with
  | J.Obj fields ->
    let* id = get_int "id" fields in
    let deadline_ms =
      match get_float "deadline_ms" fields with Ok d -> Some d | Error _ -> None
    in
    let* op = get_str "op" fields in
    let* req =
      match op with
      | "hello" ->
        let* version = get_str "version" fields in
        let* schema = get_int "schema" fields in
        Ok (Hello { version; schema })
      | "score" ->
        let* model = get_str "model" fields in
        let* trace = decode_trace fields in
        Ok (Score { model; trace })
      | "sample" ->
        let* model = get_str "model" fields in
        let* seed = get_int "seed" fields in
        Ok (Sample { model; seed })
      | "elbo" ->
        let* model = get_str "model" fields in
        let* seed = get_int "seed" fields in
        let* particles = get_int_default "particles" ~default:1 fields in
        if particles < 1 then Error "particles must be >= 1"
        else Ok (Elbo { model; seed; particles })
      | "grad" ->
        let* model = get_str "model" fields in
        let* seed = get_int "seed" fields in
        Ok (Grad { model; seed })
      | "health" -> Ok Health
      | "stats" -> Ok Stats
      | other -> Error (Printf.sprintf "unknown op %S" other)
    in
    Ok { id; deadline_ms; req }
  | _ -> Error "request frame is not a JSON object"

(* ------------------------------------------------------------------ *)
(* Reply codec *)

let encode_reply { rid; reply } =
  let base ok = [ ("id", J.Num (float_of_int rid)); ("ok", J.Bool ok) ] in
  match reply with
  | R_hello { version; schema; models } ->
    J.Obj
      (base true
      @ [ ("version", J.Str version);
          ("schema", J.Num (float_of_int schema));
          ("models", J.Arr (List.map (fun m -> J.Str m) models))
        ])
  | R_value v -> J.Obj (base true @ [ ("value", json_of_float v) ])
  | R_sample { trace; logq } ->
    J.Obj
      (base true
      @ [ ("trace", J.Obj (List.map (fun (a, v) -> (a, json_of_wire v)) trace));
          ("logq", json_of_float logq)
        ])
  | R_grad { value; grads } ->
    J.Obj
      (base true
      @ [ ("value", json_of_float value);
          ("grads", J.Obj (List.map (fun (n, g) -> (n, json_of_float g)) grads))
        ])
  | R_health { status; version; schema; uptime_s; models } ->
    J.Obj
      (base true
      @ [ ("status", J.Str status);
          ("version", J.Str version);
          ("schema", J.Num (float_of_int schema));
          ("uptime_s", J.Num uptime_s);
          ("models", J.Arr (List.map (fun m -> J.Str m) models))
        ])
  | R_stats s -> J.Obj (base true @ [ ("stats", s) ])
  | R_error { code; msg } ->
    J.Obj (base false @ [ ("code", J.Str code); ("msg", J.Str msg) ])

let decode_reply j =
  match j with
  | J.Obj fields ->
    let* rid = get_int "id" fields in
    let ok = match str_field "ok" fields with Some (J.Bool b) -> b | _ -> false in
    if not ok then
      let* code = get_str "code" fields in
      let* msg = get_str "msg" fields in
      Ok { rid; reply = R_error { code; msg } }
    else if str_field "status" fields <> None then
      let* status = get_str "status" fields in
      let* version = get_str "version" fields in
      let* schema = get_int "schema" fields in
      let* uptime_s = get_float "uptime_s" fields in
      let models =
        match str_field "models" fields with
        | Some (J.Arr ms) ->
          List.filter_map (function J.Str s -> Some s | _ -> None) ms
        | _ -> []
      in
      Ok { rid; reply = R_health { status; version; schema; uptime_s; models } }
    else if str_field "stats" fields <> None then
      match str_field "stats" fields with
      | Some s -> Ok { rid; reply = R_stats s }
      | None -> Error "missing stats"
    else if str_field "models" fields <> None then
      let* version = get_str "version" fields in
      let* schema = get_int "schema" fields in
      let models =
        match str_field "models" fields with
        | Some (J.Arr ms) ->
          List.filter_map (function J.Str s -> Some s | _ -> None) ms
        | _ -> []
      in
      Ok { rid; reply = R_hello { version; schema; models } }
    else if str_field "grads" fields <> None then
      let* value = get_float "value" fields in
      let* grads =
        match str_field "grads" fields with
        | Some (J.Obj pairs) ->
          let rec go acc = function
            | [] -> Ok (List.rev acc)
            | (n, j) :: rest -> (
              match float_of_json j with
              | Ok g -> go ((n, g) :: acc) rest
              | Error e -> Error e)
          in
          go [] pairs
        | _ -> Error "grads is not an object"
      in
      Ok { rid; reply = R_grad { value; grads } }
    else if str_field "trace" fields <> None then
      let* logq = get_float "logq" fields in
      let* trace = decode_trace fields in
      Ok { rid; reply = R_sample { trace; logq } }
    else
      let* value = get_float "value" fields in
      Ok { rid; reply = R_value value }
  | _ -> Error "reply frame is not a JSON object"

(* ------------------------------------------------------------------ *)
(* Framing *)

type frame_error =
  | Eof
  | Truncated
  | Oversized of int
  | Malformed of string

let frame_error_to_string = function
  | Eof -> "connection closed"
  | Truncated -> "connection closed mid-frame"
  | Oversized n -> Printf.sprintf "frame of %d bytes exceeds the limit" n
  | Malformed msg -> Printf.sprintf "malformed frame: %s" msg

let rec write_exact fd buf off len =
  if len > 0 then begin
    let w =
      try Unix.write fd buf off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_exact fd buf (off + w) (len - w)
  end

let write_frame fd json =
  let s = J.to_string json in
  let n = String.length s in
  let buf = Bytes.create (4 + n) in
  Bytes.set_int32_be buf 0 (Int32.of_int n);
  Bytes.blit_string s 0 buf 4 n;
  write_exact fd buf 0 (4 + n)

(* Returns [`Ok] or [`Short k] with [k] bytes read before EOF/reset. *)
let read_exact fd buf len =
  let rec go off =
    if off >= len then `Ok
    else
      match Unix.read fd buf off (len - off) with
      | 0 -> `Short off
      | r -> go (off + r)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        `Short off
  in
  go 0

let read_frame ?(max_len = 16 * 1024 * 1024) fd =
  let hdr = Bytes.create 4 in
  match read_exact fd hdr 4 with
  | `Short 0 -> Error Eof
  | `Short _ -> Error Truncated
  | `Ok ->
    let n = Int32.to_int (Bytes.get_int32_be hdr 0) in
    if n < 0 || n > max_len then Error (Oversized n)
    else begin
      let body = Bytes.create n in
      match read_exact fd body n with
      | `Short _ -> Error Truncated
      | `Ok -> (
        match J.parse (Bytes.unsafe_to_string body) with
        | Ok j -> Ok j
        | Error msg -> Error (Malformed msg))
    end
