type transport = [ `Unix of string | `Tcp of string * int ]

type cfg = {
  transport : transport;
  max_batch : int;
  max_wait_us : float;
  queue_bound : int;
  params_root : string option;
  pid_file : string option;
}

let default_cfg transport =
  {
    transport;
    max_batch = Batcher.default_cfg.Batcher.max_batch;
    max_wait_us = Batcher.default_cfg.Batcher.max_wait_us;
    queue_bound = Batcher.default_cfg.Batcher.queue_bound;
    params_root = None;
    pid_file = None;
  }

type server = {
  cfg : cfg;
  b : Batcher.t;
  lsock : Unix.file_descr;
  t0 : float;
  want_drain : bool Atomic.t;
  lock : Mutex.t;
  done_cond : Condition.t;
  mutable live_conns : int;
  mutable conn_fds : Unix.file_descr list;
  mutable accept_thread : Thread.t option;
  mutable drain_done : bool;
}

let bind_transport = function
  | `Unix path ->
    if Sys.file_exists path then (try Unix.unlink path with Sys_error _ -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 128;
    fd
  | `Tcp (host, port) ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    let addr = Unix.inet_addr_of_string host in
    Unix.bind fd (Unix.ADDR_INET (addr, port));
    Unix.listen fd 128;
    fd

let health_reply s =
  Proto.R_health
    {
      status = (if Atomic.get s.want_drain then "draining" else "serving");
      version = Proto.build_version;
      schema = Proto.schema_version;
      uptime_s = Unix.gettimeofday () -. s.t0;
      models = Batcher.models s.b;
    }

let reply_of_outcome = function
  | Batcher.O_value v -> Proto.R_value v
  | Batcher.O_sample (trace, logq) -> Proto.R_sample { trace; logq }
  | Batcher.O_grad (value, grads) -> Proto.R_grad { value; grads }
  | Batcher.O_error (code, msg) -> Proto.R_error { code; msg }

(* One thread per connection: handshake, then answer frames in order.
   After a drain begins, new work gets an explicit [draining] error —
   a reply, never silence — and the loop keeps serving until the
   client hangs up, so no request the client managed to write is ever
   dropped on the floor. *)
let handle_conn s fd =
  let send reply =
    try
      Proto.write_frame fd (Proto.encode_reply reply);
      true
    with Unix.Unix_error _ | Sys_error _ -> false
  in
  let handshake () =
    match Proto.read_frame fd with
    | Error _ -> false
    | Ok j -> (
      match Proto.decode_request j with
      | Ok { id; req = Proto.Hello { version = _; schema }; _ } ->
        if schema <> Proto.schema_version then (
          ignore
            (send
               {
                 Proto.rid = id;
                 reply =
                   Proto.R_error
                     {
                       code = "schema-mismatch";
                       msg =
                         Printf.sprintf
                           "server speaks serve schema %d, client sent %d; \
                            upgrade the older side (%s)"
                           Proto.schema_version schema Proto.version_string;
                     };
               });
          false)
        else
          send
            {
              Proto.rid = id;
              reply =
                Proto.R_hello
                  {
                    version = Proto.build_version;
                    schema = Proto.schema_version;
                    models = Batcher.models s.b;
                  };
            }
      | Ok { id; _ } ->
        ignore
          (send
             {
               Proto.rid = id;
               reply =
                 Proto.R_error
                   {
                     code = "bad-request";
                     msg = "the first frame on a connection must be hello";
                   };
             });
        false
      | Error msg ->
        ignore
          (send
             {
               Proto.rid = 0;
               reply = Proto.R_error { code = "bad-request"; msg };
             });
        false)
  in
  let rec serve_loop () =
    match Proto.read_frame fd with
    | Error (Proto.Eof | Proto.Truncated) -> ()
    | Error e ->
      ignore
        (send
           {
             Proto.rid = 0;
             reply =
               Proto.R_error
                 { code = "bad-request"; msg = Proto.frame_error_to_string e };
           })
    | Ok j ->
      let reply =
        match Proto.decode_request j with
        | Error msg -> { Proto.rid = 0; reply = Proto.R_error { code = "bad-request"; msg } }
        | Ok { id; deadline_ms; req } ->
          let r =
            match req with
            | Proto.Health -> health_reply s
            | Proto.Stats -> Proto.R_stats (Batcher.stats_json s.b)
            | Proto.Hello _ ->
              Proto.R_error
                { code = "bad-request"; msg = "hello only opens a connection" }
            | _ when Atomic.get s.want_drain ->
              Obs.incr "serve/draining_rejects";
              Proto.R_error
                {
                  code = "draining";
                  msg = "server is draining; not accepting work";
                }
            | req -> reply_of_outcome (Batcher.submit s.b ?deadline_ms req)
          in
          { Proto.rid = id; reply = r }
      in
      if send reply then serve_loop ()
  in
  (if handshake () then serve_loop ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Mutex.lock s.lock;
  s.live_conns <- s.live_conns - 1;
  s.conn_fds <- List.filter (fun f -> f != fd) s.conn_fds;
  Condition.broadcast s.done_cond;
  Mutex.unlock s.lock

let accept_loop s =
  let continue = ref true in
  while !continue && not (Atomic.get s.want_drain) do
    match Unix.select [ s.lsock ] [] [] 0.1 with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
      match Unix.accept s.lsock with
      | fd, _ ->
        Mutex.lock s.lock;
        s.live_conns <- s.live_conns + 1;
        s.conn_fds <- fd :: s.conn_fds;
        Mutex.unlock s.lock;
        Obs.incr "serve/connections";
        ignore (Thread.create (handle_conn s) fd)
      | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (Unix.EBADF, _, _) -> continue := false
  done

let start cfg =
  let b =
    Batcher.create
      {
        Batcher.max_batch = cfg.max_batch;
        max_wait_us = cfg.max_wait_us;
        queue_bound = cfg.queue_bound;
      }
  in
  Batcher.register_builtins ?params_root:cfg.params_root b;
  Batcher.start b;
  let lsock = bind_transport cfg.transport in
  (match cfg.pid_file with
  | Some path ->
    let oc = open_out path in
    output_string oc (string_of_int (Unix.getpid ()));
    output_char oc '\n';
    close_out oc
  | None -> ());
  let s =
    {
      cfg;
      b;
      lsock;
      t0 = Unix.gettimeofday ();
      want_drain = Atomic.make false;
      lock = Mutex.create ();
      done_cond = Condition.create ();
      live_conns = 0;
      conn_fds = [];
      accept_thread = None;
      drain_done = false;
    }
  in
  s.accept_thread <- Some (Thread.create accept_loop s);
  Obs.message Obs.Other
    (Printf.sprintf "serve: listening (%s), models: %s" Proto.version_string
       (String.concat ", " (Batcher.models b)));
  s

let batcher s = s.b
let request_drain s = Atomic.set s.want_drain true

let drained s =
  Mutex.lock s.lock;
  let d = s.drain_done in
  Mutex.unlock s.lock;
  d

let grace_s = 10.

let wait s =
  (* Wait for the drain trigger, then unwind in order: stop accepting,
     flush the queue, let clients hang up (bounded by the grace
     period), release the socket. *)
  while not (Atomic.get s.want_drain) do
    Thread.delay 0.05
  done;
  Option.iter Thread.join s.accept_thread;
  (try Unix.close s.lsock with Unix.Unix_error _ -> ());
  Batcher.drain s.b;
  let deadline = Unix.gettimeofday () +. grace_s in
  Mutex.lock s.lock;
  while s.live_conns > 0 && Unix.gettimeofday () < deadline do
    Mutex.unlock s.lock;
    Thread.delay 0.02;
    Mutex.lock s.lock
  done;
  let stragglers = s.conn_fds in
  Mutex.unlock s.lock;
  List.iter
    (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    stragglers;
  (match s.cfg.transport with
  | `Unix path -> ( try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
  | `Tcp _ -> ());
  (match s.cfg.pid_file with
  | Some path -> ( try Sys.remove path with Sys_error _ -> ())
  | None -> ());
  Mutex.lock s.lock;
  s.drain_done <- true;
  Mutex.unlock s.lock;
  Obs.message Obs.Other "serve: drained cleanly"

let run cfg =
  let s = start cfg in
  let on_signal _ = request_drain s in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  (* SIGPIPE would kill the process on a client reset mid-write. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  wait s

(* ------------------------------------------------------------------ *)
(* Client *)

module Client = struct
  type conn = {
    fd : Unix.file_descr;
    mutable next_id : int;
    info : string * int * string list;
  }

  let connect_fd = function
    | `Unix path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      fd
    | `Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
      fd

  let connect transport =
    let fd = connect_fd transport in
    Proto.write_frame fd
      (Proto.encode_request
         {
           Proto.id = 0;
           deadline_ms = None;
           req =
             Proto.Hello
               { version = Proto.build_version; schema = Proto.schema_version };
         });
    match Proto.read_frame fd with
    | Error e ->
      Unix.close fd;
      failwith ("serve handshake failed: " ^ Proto.frame_error_to_string e)
    | Ok j -> (
      match Proto.decode_reply j with
      | Ok { reply = Proto.R_hello { version; schema; models }; _ } ->
        { fd; next_id = 1; info = (version, schema, models) }
      | Ok { reply = Proto.R_error { code; msg }; _ } ->
        Unix.close fd;
        failwith (Printf.sprintf "serve handshake refused (%s): %s" code msg)
      | Ok _ ->
        Unix.close fd;
        failwith "serve handshake returned an unexpected reply"
      | Error msg ->
        Unix.close fd;
        failwith ("serve handshake reply undecodable: " ^ msg))

  let server_info c = c.info

  let call c ?deadline_ms req =
    let id = c.next_id in
    c.next_id <- id + 1;
    (try
       Proto.write_frame c.fd
         (Proto.encode_request { Proto.id; deadline_ms; req })
     with Unix.Unix_error _ | Sys_error _ ->
       failwith "serve connection closed while sending");
    match Proto.read_frame c.fd with
    | Error e ->
      failwith ("serve connection lost: " ^ Proto.frame_error_to_string e)
    | Ok j -> (
      match Proto.decode_reply j with
      | Ok { reply; _ } -> reply
      | Error msg -> failwith ("undecodable reply: " ^ msg))

  let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()
end

(* ------------------------------------------------------------------ *)
(* Deterministic load generation *)

(* A plausible latent trace for each built-in model, drawn from Prng
   under (seed, index) — pure function of its arguments so sequential
   and concurrent passes generate identical requests. *)
let nth_score ~model ~seed i =
  let k = Prng.fold_in (Prng.key (0x5c07e + seed)) i in
  let trace =
    match model with
    | "coin" ->
      [ ("fairness", Proto.Scalar (0.02 +. (0.96 *. Prng.uniform k))) ]
    | "cone" ->
      let kx, ky = Prng.split k in
      [ ("x", Proto.Scalar (Prng.normal kx)); ("y", Proto.Scalar (Prng.normal ky)) ]
    | "chain" | _ ->
      List.init Batcher.chain_latents (fun j ->
          ( Printf.sprintf "z%d" j,
            Proto.Scalar (Prng.normal (Prng.fold_in k j)) ))
  in
  Proto.Score { model; trace }

let nth_request ~model ~seed i =
  if i mod 2 = 0 then nth_score ~model ~seed i
  else Proto.Elbo { model; seed = (seed * 1_000_003) + i; particles = 1 }

type load_report = {
  lr_sent : int;
  lr_ok : int;
  lr_overloaded : int;
  lr_draining : int;
  lr_deadline : int;
  lr_failed : int;
  lr_lost : int;
  lr_wall_s : float;
  lr_values : (int * Proto.reply) list;
}

let run_load transport ~clients ~requests ~model ~seed ?kill_after () =
  let total = clients * requests in
  let results : (int, Proto.reply) Hashtbl.t = Hashtbl.create total in
  let rlock = Mutex.create () in
  let sent = ref 0 in
  let replies_seen = ref 0 in
  let record i reply =
    Mutex.lock rlock;
    Hashtbl.replace results i reply;
    incr replies_seen;
    let fire =
      match kill_after with
      | Some (n, _) when !replies_seen = n -> true
      | _ -> false
    in
    Mutex.unlock rlock;
    match (fire, kill_after) with
    | true, Some (_, pid) -> ( try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ())
    | _ -> ()
  in
  let worker c_idx () =
    match Client.connect transport with
    | exception _ -> ()
    | conn ->
      let stop = ref false in
      let r = ref 0 in
      while (not !stop) && !r < requests do
        let i = (!r * clients) + c_idx in
        let req = nth_request ~model ~seed i in
        Mutex.lock rlock;
        incr sent;
        Mutex.unlock rlock;
        (match Client.call conn req with
        | reply ->
          record i reply;
          (match reply with
          | Proto.R_error { code = "draining"; _ } -> stop := true
          | _ -> ())
        | exception Failure _ -> stop := true);
        incr r
      done;
      Client.close conn
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init clients (fun c -> Thread.create (worker c) ()) in
  List.iter Thread.join threads;
  let wall_s = Unix.gettimeofday () -. t0 in
  let ok = ref 0
  and overloaded = ref 0
  and draining = ref 0
  and deadline = ref 0
  and failed = ref 0 in
  Hashtbl.iter
    (fun _ reply ->
      match reply with
      | Proto.R_error { code = "overloaded"; _ } -> incr overloaded
      | Proto.R_error { code = "draining"; _ } -> incr draining
      | Proto.R_error { code = "deadline"; _ } -> incr deadline
      | Proto.R_error _ -> incr failed
      | _ -> incr ok)
    results;
  {
    lr_sent = !sent;
    lr_ok = !ok;
    lr_overloaded = !overloaded;
    lr_draining = !draining;
    lr_deadline = !deadline;
    lr_failed = !failed;
    lr_lost = !sent - Hashtbl.length results;
    lr_wall_s = wall_s;
    lr_values =
      Hashtbl.fold (fun i r acc -> (i, r) :: acc) results []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
  }

let reply_identical a b =
  match (a, b) with
  | Proto.R_value x, Proto.R_value y -> Proto.wire_value_equal (Scalar x) (Scalar y)
  | Proto.R_sample { trace = ta; logq = qa }, Proto.R_sample { trace = tb; logq = qb }
    ->
    Proto.wire_value_equal (Scalar qa) (Scalar qb)
    && List.length ta = List.length tb
    && List.for_all2
         (fun (na, va) (nb, vb) -> na = nb && Proto.wire_value_equal va vb)
         ta tb
  | Proto.R_grad { value = va; grads = ga }, Proto.R_grad { value = vb; grads = gb }
    ->
    Proto.wire_value_equal (Scalar va) (Scalar vb)
    && List.length ga = List.length gb
    && List.for_all2
         (fun (na, xa) (nb, xb) ->
           na = nb && Proto.wire_value_equal (Scalar xa) (Scalar xb))
         ga gb
  | Proto.R_error { code = ca; _ }, Proto.R_error { code = cb; _ } -> ca = cb
  | _ -> false

let mismatches ref_report other =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (i, r) -> Hashtbl.replace tbl i r) other.lr_values;
  List.fold_left
    (fun acc (i, r) ->
      match Hashtbl.find_opt tbl i with
      | Some r' when reply_identical r r' -> acc
      | _ -> acc + 1)
    0 ref_report.lr_values
