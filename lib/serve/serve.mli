(** The [ppvi serve] daemon: socket listener, connection handling,
    graceful drain — plus the client side used by [ppvi client], the
    bench suite and CI smoke drills.

    One thread per connection reads frames and answers in order;
    coalescing happens across connections inside {!Batcher}. On drain
    (SIGTERM or {!request_drain}) the listener closes, queued requests
    flush, and every subsequent request on a live connection gets an
    explicit [draining] error reply — never silence — so an accepted
    request is never lost. *)

type transport = [ `Unix of string | `Tcp of string * int ]

type cfg = {
  transport : transport;
  max_batch : int;
  max_wait_us : float;
  queue_bound : int;
  params_root : string option;  (** warm-start/hot-reload root dir *)
  pid_file : string option;
}

val default_cfg : transport -> cfg

type server

val start : cfg -> server
(** Binds, registers the built-in models, spawns the executor and the
    accept loop. Raises [Unix.Unix_error] if the address is taken. *)

val batcher : server -> Batcher.t
val request_drain : server -> unit
(** Idempotent; safe from a signal handler's flag-poll loop. *)

val drained : server -> bool
val wait : server -> unit
(** Blocks until the server has fully drained and every connection
    closed (bounded by a grace period), then releases the socket. *)

val run : cfg -> unit
(** [start] + SIGTERM/SIGINT handlers that trigger a drain + [wait].
    Returns once the drain completes. *)

(** {1 Client} *)

module Client : sig
  type conn

  val connect : transport -> conn
  (** Connects and performs the version handshake; raises [Failure]
      with the server's error message on a schema mismatch. *)

  val server_info : conn -> string * int * string list
  (** (build version, schema, served models) from the handshake. *)

  val call : conn -> ?deadline_ms:float -> Proto.request -> Proto.reply
  (** One request/reply round trip. Raises [Failure] if the connection
      dies mid-call. *)

  val close : conn -> unit
end

(** {1 Load driving}

    Deterministic request generation: global request index [i] under
    [seed] always produces the same request, so a sequential pass and a
    concurrent pass over the same index range are comparable row by
    row — the bit-identity gate in bench/CI. *)

val nth_request : model:string -> seed:int -> int -> Proto.request
(** Request for global index [i]: even indices score a prior-ish trace
    drawn from [Prng] on [(seed, i)], odd indices ask for a 1-particle
    ELBO with seed derived from [(seed, i)]. *)

type load_report = {
  lr_sent : int;
  lr_ok : int;
  lr_overloaded : int;
  lr_draining : int;
  lr_deadline : int;
  lr_failed : int;  (** error replies other than the shed classes *)
  lr_lost : int;  (** sent but no reply of any kind — must be 0 *)
  lr_wall_s : float;
  lr_values : (int * Proto.reply) list;  (** by global request index *)
}

val run_load :
  transport ->
  clients:int ->
  requests:int ->
  model:string ->
  seed:int ->
  ?kill_after:(int * int) ->
  unit ->
  load_report
(** Fires [clients] threads, each with its own connection, splitting
    the global index range [0 .. clients*requests-1] round-robin.
    [kill_after (n, pid)] sends SIGTERM to [pid] after [n] total
    replies have been received — the drain drill. Each thread keeps
    sending until its range is done or the server says [draining]. *)

val mismatches : load_report -> load_report -> int
(** Number of indices whose replies are not bit-identical between two
    reports (missing replies count). *)
