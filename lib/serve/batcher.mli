(** Request-coalescing scheduler for the inference daemon.

    Connection threads {!submit} requests; a single executor thread
    pops up to [max_batch] same-model requests that arrived within a
    [max_wait_us] window and runs their density work as ONE batched
    evaluation ({!Gen.log_density_batched}), de-multiplexing per-row
    results back to the waiting callers.

    {2 Bit-identity contract}

    Only the {e deterministic} part of a request — the joint density —
    is vectorized across requests. Anything that consumes randomness
    ([elbo] particle draws, [sample], [grad]) runs scalar per request
    under that request's own key, so the values a request receives do
    not depend on which other requests happened to share its batch:

    - [score]: the client trace becomes one row of a stacked trace.
    - [elbo] with [k] particles: the [k] guide traces are drawn
      scalar-wise via [Gen.sample_prior] under
      [Prng.fold_in (Prng.key seed) p], then contribute [k] rows to the
      shared density batch; the reply is the mean of
      [logp_row - logq_p] in particle order.
    - [sample] and [grad] execute scalar inside the batch loop.

    Row [i] of [Gen.log_density_batched] is bit-identical to a scalar
    evaluation of that row's trace (the lib/gen batched-engine
    invariant), so a request coalesced into a 64-row batch returns
    exactly the bytes it would have returned alone. The serve test
    suite re-checks this end-to-end for every registered model. *)

type t

type cfg = {
  max_batch : int;  (** rows coalesced into one execution *)
  max_wait_us : float;  (** how long the executor lingers for company *)
  queue_bound : int;  (** admission bound; beyond it -> [overloaded] *)
}

val default_cfg : cfg
(** [{ max_batch = 64; max_wait_us = 200.; queue_bound = 256 }] *)

val create : cfg -> t

(** {1 Model registry} *)

val register :
  t ->
  name:string ->
  model:unit Gen.t ->
  guide:(Store.Frame.t -> unit Gen.t) ->
  store:Store.t ->
  ?params_dir:string ->
  unit ->
  unit
(** Registers a servable model. The model must have a static set of
    real-carrier latent addresses (sampled by the guide). When
    [params_dir] is given, the store is warm-started from
    [Store.load_latest_result params_dir] and hot-reloaded whenever the
    directory's [latest] pointer rotates to a new checkpoint. A
    compiled plan is staged eagerly via [Compile.plan_for] under the id
    ["serve/<name>"] and used for scalar density evaluations. *)

val register_builtins : ?params_root:string -> t -> unit
(** Registers the built-in servable models: [coin], [cone] (naive
    guide) and [chain] (a deep elementwise chain over 8 scalar
    latents, the interpreter-overhead-heavy load-test model). With
    [params_root], model ["m"] warm-starts from [params_root/m]. *)

val chain_latents : int
(** Latent count of the built-in [chain] model (addresses [z0..]). *)

val models : t -> string list
val model_sig : t -> string -> string list option
(** Sorted latent addresses of a registered model. *)

val plan_status : t -> string -> string option
(** ["compiled"] or ["interpreted (PVxxx ...)"] for a registered model. *)

(** {1 Submitting} *)

type outcome =
  | O_value of float
  | O_sample of (string * Proto.wire_value) list * float
  | O_grad of float * (string * float) list
  | O_error of string * string  (** code, message *)

val submit : t -> ?deadline_ms:float -> Proto.request -> outcome
(** Blocks the calling thread until the executor answers. Admission
    control runs first: a draining batcher answers [draining], a full
    queue answers [overloaded], both without blocking. [Health], [Stats]
    and [Hello] are not queueable and answer [bad-request]. *)

(** {1 Lifecycle} *)

val start : t -> unit
(** Spawns the executor thread. Idempotent. *)

val drain : t -> unit
(** Stops admitting, lets the executor flush every queued request, then
    joins it. Every request admitted before the drain gets a real
    reply; requests submitted after it get [draining] errors. *)

val draining : t -> bool

val pause : t -> unit
(** Testing/ops hook: holds the executor before its next batch so the
    queue can be inspected or filled deterministically. *)

val resume : t -> unit

(** {1 Introspection} *)

type stats = {
  s_uptime_s : float;
  s_queue_depth : int;
  s_requests : int;  (** admitted *)
  s_replies : int;
  s_overloaded : int;
  s_deadline : int;
  s_rejected_draining : int;
  s_batches : int;
  s_rows : int;  (** requests executed (every one joins some batch) *)
  s_coalesced : int;  (** requests beyond the first in their batch *)
  s_vectorized_rows : int;  (** density rows evaluated in a stacked run *)
  s_scalar_rows : int;  (** density rows evaluated scalar *)
  s_fallbacks : int;  (** stacked runs that fell back to scalar *)
  s_max_batch : int;
  s_max_queue : int;
  s_reloads : int;  (** checkpoint hot reloads *)
  s_draining : bool;
}

val stats : t -> stats
val coalesce_ratio : stats -> float
(** [rows / batches]; 1.0 means no coalescing happened. *)

val stats_json : t -> Obs.Json.t
val queue_depth : t -> int
