(** Wire protocol for the [ppvi serve] inference daemon.

    Frames are length-prefixed JSON: a 4-byte big-endian payload length
    followed by that many bytes of UTF-8 JSON, written with the same
    [Obs.Json] writer the trace sink uses. The writer emits floats with
    shortest-round-trip formatting, so finite values survive the wire
    bit-exactly; non-finite values are carried as the strings ["inf"],
    ["-inf"] and ["nan"] (raw JSON has no spelling for them).

    Every connection opens with a [Hello] carrying the client's build
    and schema version. The server refuses mismatched schemas with an
    explicit [schema-mismatch] error before doing any work, so drift
    between a client and a server fails loudly instead of decoding
    garbage. *)

val build_version : string
(** The build version string, e.g. ["1.0.0"]. Single source of truth
    for [ppvi --version] and the serve handshake. *)

val schema_version : int
(** Wire-schema generation. Bumped whenever the frame layout or the
    request/reply field sets change incompatibly. *)

val version_string : string
(** Human-readable one-liner combining both, for [ppvi version]. *)

(** {1 Values} *)

(** A latent value on the wire: model latents are scalars or flat
    vectors of reals. Bool/int carriers are coerced to 0/1 floats when
    a sampled trace is returned. *)
type wire_value =
  | Scalar of float
  | Vector of float array

val wire_value_equal : wire_value -> wire_value -> bool
(** Bit-level equality ([Int64.bits_of_float] per component), so that
    NaNs compare equal to themselves and [-0.] differs from [0.]. *)

(** {1 Requests} *)

type request =
  | Hello of { version : string; schema : int }
  | Score of { model : string; trace : (string * wire_value) list }
      (** Joint log-density of the model at the given latent trace. *)
  | Sample of { model : string; seed : int }
      (** Draw one trace from the model's current guide. *)
  | Elbo of { model : string; seed : int; particles : int }
      (** Monte-Carlo ELBO estimate under the current guide. *)
  | Grad of { model : string; seed : int }
      (** One ELBO gradient evaluation; replies with the objective
          value and the per-parameter gradient L2 norms. *)
  | Health
  | Stats

type envelope = {
  id : int;  (** client-chosen correlation id, echoed in the reply *)
  deadline_ms : float option;
      (** optional queueing deadline; requests that wait longer are
          answered with a [deadline] error instead of being executed *)
  req : request;
}

(** {1 Replies} *)

type reply =
  | R_hello of { version : string; schema : int; models : string list }
  | R_value of float  (** [score] / [elbo] *)
  | R_sample of { trace : (string * wire_value) list; logq : float }
  | R_grad of { value : float; grads : (string * float) list }
  | R_health of {
      status : string;  (** ["serving"] or ["draining"] *)
      version : string;
      schema : int;
      uptime_s : float;
      models : string list;
    }
  | R_stats of Obs.Json.t
  | R_error of { code : string; msg : string }
      (** codes: [overloaded], [draining], [deadline], [bad-request],
          [unknown-model], [schema-mismatch], [fault], [internal] *)

type reply_envelope = { rid : int; reply : reply }

(** {1 Codecs} *)

val encode_request : envelope -> Obs.Json.t
val decode_request : Obs.Json.t -> (envelope, string) result
val encode_reply : reply_envelope -> Obs.Json.t
val decode_reply : Obs.Json.t -> (reply_envelope, string) result

val request_op : request -> string
(** Stable lowercase tag ("score", "elbo", ...) used in metrics. *)

(** {1 Framing} *)

type frame_error =
  | Eof  (** clean close: the peer shut down between frames *)
  | Truncated  (** the peer died mid-frame *)
  | Oversized of int
  | Malformed of string

val frame_error_to_string : frame_error -> string

val write_frame : Unix.file_descr -> Obs.Json.t -> unit
(** Writes one frame, looping over partial writes. Raises
    [Unix.Unix_error] (e.g. [EPIPE]) if the peer is gone. *)

val read_frame : ?max_len:int -> Unix.file_descr -> (Obs.Json.t, frame_error) result
(** Reads one frame. [max_len] (default 16 MiB) bounds the payload a
    peer can make us allocate. Connection resets are reported as [Eof]
    when they happen on a frame boundary, [Truncated] otherwise. *)
