(* Staged compilation: plan construction, PV501 refusals, plan-cache
   behavior, and the flagship invariant — compiled execution is
   bit-identical to the interpreter across the entire preflight
   registry. *)

open Gen.Syntax

let bits = Int64.bits_of_float

let float_bits_equal a b = Int64.equal (bits a) (bits b)

let tensor_bits_equal t1 t2 =
  Tensor.shape t1 = Tensor.shape t2
  &&
  let a = Tensor.to_array t1 and b = Tensor.to_array t2 in
  let ok = ref true in
  Array.iteri (fun i x -> if not (float_bits_equal x b.(i)) then ok := false) a;
  !ok

let value_bits_equal v1 v2 =
  match (v1, v2) with
  | Value.Real a, Value.Real b -> tensor_bits_equal (Ad.value a) (Ad.value b)
  | _ -> v1 = v2

let trace_bits_equal t1 t2 =
  let b1 = Trace.bindings t1 and b2 = Trace.bindings t2 in
  List.length b1 = List.length b2
  && List.for_all2
       (fun (a1, v1) (a2, v2) -> String.equal a1 a2 && value_bits_equal v1 v2)
       b1 b2

let scalar_of w = Tensor.to_scalar (Ad.value w)

(* Run an Adev computation for its returned value (constant-zero loss:
   no gradient flows, we only compare forward results bitwise). *)
let run_for m key =
  let out = ref None in
  ignore
    (Adev.run m key (fun x ->
         out := Some x;
         Ad.scalar 0.));
  Option.get !out

(* The invariant under test: against a freshly compiled plan, simulate
   and log-density must reproduce the interpreter bit-for-bit — same
   keys, same traces, same accumulation order. Returns false only on a
   genuine divergence; refusals are vacuously fine (the objective layer
   falls back to the interpreter). *)
let check_bit_identity ~id (Gen.Packed prog) seed =
  match Compile.compile ~id (Gen.Packed prog) with
  | Compile.Refused _ -> true
  | Compile.Compiled plan ->
    let key = Prng.key seed in
    let _, ti, wi = run_for (Gen.simulate prog) key in
    let _, tc, wc = run_for (Gen.simulate_compiled plan prog) key in
    let sim_ok =
      float_bits_equal (scalar_of wi) (scalar_of wc) && trace_bits_equal ti tc
    in
    let di = run_for (Gen.log_density prog ti) key in
    let dc = run_for (Gen.log_density_compiled plan prog ti) key in
    let dens_ok = float_bits_equal (scalar_of di) (scalar_of dc) in
    (* Second run through the same plan: the reused arena buffers must
       not leak state between calls. *)
    let key2 = Prng.key (seed + 7919) in
    let _, ti2, wi2 = run_for (Gen.simulate prog) key2 in
    let _, tc2, wc2 = run_for (Gen.simulate_compiled plan prog) key2 in
    let reuse_ok =
      float_bits_equal (scalar_of wi2) (scalar_of wc2)
      && trace_bits_equal ti2 tc2
    in
    sim_ok && dens_ok && reuse_ok

let registry_programs entry =
  match entry.Preflight.make () with
  | Check.Program p -> [ (entry.Preflight.name, p) ]
  | Check.Pair { model; guide } ->
    [ (entry.Preflight.name ^ "/model", model);
      (entry.Preflight.name ^ "/guide", guide) ]
  | exception _ -> []

(* QCheck property: every program in the preflight registry, across
   seeds, is bit-identical compiled vs interpreted (or refuses). *)
let prop_registry_bit_identity =
  QCheck.Test.make ~name:"registry compiled == interpreter (bitwise)"
    ~count:25
    QCheck.(small_nat)
    (fun seed ->
      List.for_all
        (fun entry ->
          List.for_all
            (fun (id, p) ->
              check_bit_identity ~id:(Printf.sprintf "%s#%d" id seed) p seed)
            (registry_programs entry))
        Preflight.entries)

(* Same property over the VAE pair across batch sizes (plate extents)
   and seeds: the plan is structure-only, so each batch size gets its
   own staging here to also vary the planned shapes. *)
let prop_vae_batch_sizes =
  QCheck.Test.make ~name:"vae compiled == interpreter across batch sizes"
    ~count:12
    QCheck.(pair (int_range 1 9) small_nat)
    (fun (batch, seed) ->
      let store = Store.create () in
      Vae.register store (Prng.key 11);
      let frame = Store.Frame.make store in
      let images, _ = Data.digit_batch (Prng.key (100 + seed)) batch in
      check_bit_identity
        ~id:(Printf.sprintf "test/vae-b%d-s%d/model" batch seed)
        (Gen.Packed (Vae.model frame images))
        seed
      && check_bit_identity
           ~id:(Printf.sprintf "test/vae-b%d-s%d/guide" batch seed)
           (Gen.Packed (Vae.guide frame images))
           seed)

(* And across plate domain counts for an explicit Gen.plate program
   (batched lowering) plus an index-dependent body (sequential
   fallback). *)
let prop_plate_domains =
  QCheck.Test.make ~name:"plates compiled == interpreter across domain counts"
    ~count:20
    QCheck.(pair (int_range 1 12) small_nat)
    (fun (n, seed) ->
      let batched =
        let* xs =
          Gen.plate ~n (fun _ ->
              Gen.sample
                (Dist.normal_reparam (Ad.scalar 0.) (Ad.scalar 1.))
                "row")
        in
        let s = Array.fold_left Ad.add (Ad.scalar 0.) xs in
        Gen.observe (Dist.normal_reparam s (Ad.scalar 1.)) (Ad.scalar 0.5)
      in
      let sequential =
        let* _ =
          Gen.plate ~n (fun i ->
              Gen.sample
                (Dist.normal_reparam
                   (Ad.scalar (float_of_int i))
                   (Ad.scalar 1.))
                "row")
        in
        Gen.return ()
      in
      check_bit_identity
        ~id:(Printf.sprintf "test/plate-b%d-s%d" n seed)
        (Gen.Packed batched) seed
      && check_bit_identity
           ~id:(Printf.sprintf "test/plate-s%d-s%d" n seed)
           (Gen.Packed sequential) seed)

(* ------------------------------------------------------------------ *)
(* Unit tests                                                          *)

let compiled_exn = function
  | Compile.Compiled p -> p
  | Compile.Refused r -> Alcotest.failf "unexpected refusal: %s" r.r_reason

(* An index-dependent plate body must take the sequential fallback and
   still execute bit-identically (checked above); here we pin the plan
   shape itself. *)
let test_seq_fallback_site () =
  let prog =
    let* _ =
      Gen.plate ~n:3 (fun i ->
          Gen.sample
            (Dist.normal_reparam (Ad.scalar (float_of_int i)) (Ad.scalar 1.))
            "w")
    in
    Gen.return ()
  in
  let plan = compiled_exn (Compile.compile ~id:"unit/seqfb" (Gen.Packed prog)) in
  Alcotest.(check int) "one sequential fallback" 1 (Gen.Plan.seq_fallbacks plan);
  Alcotest.(check int) "no slots (suffixed sites live in the overflow trace)" 0
    (Array.length (Gen.Plan.slots plan));
  let step = (Gen.Plan.steps plan).(0) in
  Alcotest.(check bool) "kind is Plate_seq" true
    (step.Gen.Plan.st_kind = Gen.Plan.Plate_seq);
  Alcotest.(check int) "plate extent pinned" 3 step.Gen.Plan.st_n

let test_batched_plate_site () =
  let prog =
    let* _ =
      Gen.plate ~n:4 (fun _ ->
          Gen.sample (Dist.normal_reparam (Ad.scalar 0.) (Ad.scalar 1.)) "z")
    in
    Gen.return ()
  in
  let plan = compiled_exn (Compile.compile ~id:"unit/batched" (Gen.Packed prog)) in
  Alcotest.(check int) "no fallbacks" 0 (Gen.Plan.seq_fallbacks plan);
  Alcotest.(check (array string)) "slot table" [| "z" |] (Gen.Plan.slots plan);
  let step = (Gen.Plan.steps plan).(0) in
  Alcotest.(check bool) "kind is Plate_batched" true
    (step.Gen.Plan.st_kind = Gen.Plan.Plate_batched)

(* The canonical dynamic-structure program: a REINFORCE probe visits
   both branch arms, the arms bind different sites, and the compiler
   must refuse with a clear PV501 rather than bake in one arm. *)
let test_dynamic_structure_refusal () =
  let prog =
    let* x =
      Gen.sample (Dist.normal_reinforce (Ad.scalar 0.) (Ad.scalar 1.)) "x"
    in
    if Gen.rigid x > 0. then
      let* _ =
        Gen.sample (Dist.normal_reinforce (Ad.scalar 1.) (Ad.scalar 1.)) "pos"
      in
      Gen.return ()
    else Gen.return ()
  in
  match Compile.compile ~id:"unit/dynamic" (Gen.Packed prog) with
  | Compile.Compiled _ -> Alcotest.fail "dynamic structure must refuse"
  | Compile.Refused r ->
    Alcotest.(check string) "diagnostic code" "PV501" r.Compile.r_code;
    let mentions needle =
      let hay = r.Compile.r_reason in
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool)
      "reason names data-dependent structure" true
      (mentions "differs across execution paths")

let test_enum_refusal () =
  let prog = Gen.map (fun _ -> ()) (Gen.sample (Dist.flip_enum (Ad.scalar 0.4)) "c") in
  match Compile.compile ~id:"unit/enum" (Gen.Packed prog) with
  | Compile.Compiled _ -> Alcotest.fail "ENUM must refuse"
  | Compile.Refused r ->
    Alcotest.(check string) "code" "PV501" r.Compile.r_code;
    Alcotest.(check (option string)) "address" (Some "c") r.Compile.r_address

let test_plan_cache () =
  Compile.reset_cache ();
  let prog () =
    Gen.map (fun _ -> ())
      (Gen.sample (Dist.normal_reparam (Ad.scalar 0.) (Ad.scalar 1.)) "x")
  in
  Obs.configure ~enabled:true ();
  Obs.reset ();
  let r1 = Compile.plan_for ~id:"unit/cache" (Gen.Packed (prog ())) in
  let r2 = Compile.plan_for ~id:"unit/cache" (Gen.Packed (prog ())) in
  Alcotest.(check bool) "second lookup is the cached result" true (r1 == r2);
  Alcotest.(check int) "one miss" 1 (Obs.counter_value "compile/plan_miss");
  Alcotest.(check int) "one hit" 1 (Obs.counter_value "compile/plan_hit");
  Compile.invalidate "unit/cache";
  let r3 = Compile.plan_for ~id:"unit/cache" (Gen.Packed (prog ())) in
  Alcotest.(check bool) "invalidate forces a re-stage" true (not (r3 == r1));
  Alcotest.(check int) "second miss" 2 (Obs.counter_value "compile/plan_miss");
  Alcotest.(check bool) "re-staged id listed" true
    (List.mem "unit/cache" (Compile.cached_ids ()));
  Obs.reset ();
  Obs.configure ~enabled:false ();
  Compile.reset_cache ()

(* Executing a different program against a stale plan must raise
   Plan_mismatch (hard error, never silent corruption or a retry). *)
let test_plan_mismatch () =
  let prog_a =
    Gen.map (fun _ -> ())
      (Gen.sample (Dist.normal_reparam (Ad.scalar 0.) (Ad.scalar 1.)) "a")
  in
  let prog_b =
    Gen.map (fun _ -> ())
      (Gen.sample (Dist.normal_reparam (Ad.scalar 0.) (Ad.scalar 1.)) "b")
  in
  let plan = compiled_exn (Compile.compile ~id:"unit/stale" (Gen.Packed prog_a)) in
  match run_for (Gen.simulate_compiled plan prog_b) (Prng.key 0) with
  | _ -> Alcotest.fail "stale plan must raise Plan_mismatch"
  | exception Gen.Plan_mismatch msg ->
    Alcotest.(check bool) "message names the plan" true
      (String.length msg > 0)

(* The staged ELBO mirrors the interpreter's bind structure, so whole
   surrogates (values AND gradients) must match bitwise. *)
let test_elbo_staged_bit_identity () =
  Compile.reset_cache ();
  let store = Store.create () in
  Vae.register store (Prng.key 3);
  let images, _ = Data.digit_batch (Prng.key 4) 6 in
  let grad_of compiled =
    let frame = Store.Frame.make store in
    let s =
      Adev.expectation (Vae.elbo_per_datum ~compiled frame images) (Prng.key 5)
    in
    Ad.backward s;
    (scalar_of s, Store.Frame.grads frame)
  in
  let v0, g0 = grad_of false in
  let v1, g1 = grad_of true in
  Alcotest.(check bool) "surrogate bits equal" true (float_bits_equal v0 v1);
  List.iter2
    (fun (n0, t0) (n1, t1) ->
      Alcotest.(check string) "param order" n0 n1;
      Alcotest.(check bool) (n0 ^ " grad bits equal") true
        (tensor_bits_equal t0 t1))
    g0 g1;
  Compile.reset_cache ()

(* The fused Bernoulli-logits scoring path (leaf observations) must
   agree with the composed softplus formula — values and logits
   gradient. *)
let test_fused_bernoulli_density () =
  let key = Prng.key 17 in
  let raw =
    Tensor.map (fun u -> u -. 0.5) (Prng.uniform_tensor key [| 32 |])
  in
  let x =
    Ad.const
      (Tensor.map
         (fun u -> if u > 0.5 then 1. else 0.)
         (Prng.uniform_tensor (Prng.fold_in key 1) [| 32 |]))
  in
  (* Separate leaves over the same values: each formula gets its own
     gradient accumulator. *)
  let l_fused = Ad.const raw and l_composed = Ad.const raw in
  let fused = (Dist.bernoulli_logits_vector l_fused).Dist.log_density x in
  (* Re-derive the composed formula directly (what non-leaf x uses). *)
  let composed =
    let open Ad.O in
    Ad.neg
      (Ad.sum
         ((x * Ad.softplus (Ad.neg l_composed))
         + ((Ad.scalar 1. - x) * Ad.softplus l_composed)))
  in
  Alcotest.(check (float 1e-9)) "values agree" (scalar_of composed)
    (scalar_of fused);
  Ad.backward fused;
  Ad.backward composed;
  let fa = Tensor.to_array (Ad.grad l_fused)
  and ca = Tensor.to_array (Ad.grad l_composed) in
  Array.iteri
    (fun i g -> Alcotest.(check (float 1e-9)) "logits grad agrees" ca.(i) g)
    fa

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_registry_bit_identity; prop_vae_batch_sizes; prop_plate_domains ]

let suites =
  [ ( "compile",
      [ Alcotest.test_case "seq fallback site" `Quick test_seq_fallback_site;
        Alcotest.test_case "batched plate site" `Quick test_batched_plate_site;
        Alcotest.test_case "dynamic structure refuses (PV501)" `Quick
          test_dynamic_structure_refusal;
        Alcotest.test_case "ENUM refuses (PV501)" `Quick test_enum_refusal;
        Alcotest.test_case "plan cache hit/miss/invalidate" `Quick
          test_plan_cache;
        Alcotest.test_case "stale plan raises Plan_mismatch" `Quick
          test_plan_mismatch;
        Alcotest.test_case "staged ELBO bit-identical (VAE)" `Slow
          test_elbo_staged_bit_identity;
        Alcotest.test_case "fused bernoulli-logits density" `Quick
          test_fused_bernoulli_density ]
      @ qcheck_cases ) ]
