(* Tests for the extended distribution families: closed-form densities,
   sampler moments, reparameterization gradients, and the Poisson /
   binomial discrete estimators. *)

let k0 = Prng.key 909

let check_close name ~tol expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %g, got %g (tol %g)" name expected actual tol

let primal a = Tensor.to_scalar (Ad.value a)

let sample_mean n d =
  let total = ref 0. in
  Array.iter
    (fun k -> total := !total +. primal (d.Dist.sample k))
    (Prng.split_many k0 n);
  !total /. float_of_int n

let sample_var n d =
  let xs = Array.map (fun k -> primal (d.Dist.sample k)) (Prng.split_many k0 n) in
  let m = Array.fold_left ( +. ) 0. xs /. float_of_int n in
  Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs /. float_of_int n

(* Numerically integrate a density over a grid; should be close to 1. *)
let integrates_to_one ?(lo = -30.) ?(hi = 30.) ?(steps = 30000) d =
  let h = (hi -. lo) /. float_of_int steps in
  let total = ref 0. in
  for i = 0 to steps - 1 do
    let x = lo +. ((float_of_int i +. 0.5) *. h) in
    total := !total +. (Float.exp (primal (d.Dist.log_density (Ad.scalar x))) *. h)
  done;
  !total

let test_laplace () =
  let d = Dist.laplace_reparam (Ad.scalar 1.) (Ad.scalar 0.5) in
  (* log f(2; 1, 0.5) = -|2-1|/0.5 - log(2*0.5) = -2. *)
  check_close "laplace logpdf" ~tol:1e-9 (-2.)
    (primal (d.Dist.log_density (Ad.scalar 2.)));
  check_close "laplace normalization" ~tol:1e-3 1. (integrates_to_one d);
  check_close "laplace mean" ~tol:0.03 1. (sample_mean 20000 d);
  (* Var = 2 scale^2 = 0.5. *)
  check_close "laplace var" ~tol:0.05 0.5 (sample_var 20000 d)

let test_laplace_reparam_grad () =
  (* d/dloc of a reparameterized sample is exactly 1. *)
  let loc = Ad.scalar 1. in
  let d = Dist.laplace_reparam loc (Ad.scalar 0.5) in
  let x = (Option.get d.Dist.reparam) k0 in
  Ad.backward x;
  check_close "dx/dloc" ~tol:1e-12 1. (Tensor.to_scalar (Ad.grad loc))

let test_laplace_density_grad () =
  (* d/dx log f = -sign(x - loc)/scale away from the kink. *)
  let d = Dist.laplace_reparam (Ad.scalar 0.) (Ad.scalar 0.5) in
  let x = Ad.scalar 2. in
  let lp = d.Dist.log_density x in
  Ad.backward lp;
  check_close "right slope" ~tol:1e-9 (-2.) (Tensor.to_scalar (Ad.grad x));
  let y = Ad.scalar (-2.) in
  let lp2 = d.Dist.log_density y in
  Ad.backward lp2;
  check_close "left slope" ~tol:1e-9 2. (Tensor.to_scalar (Ad.grad y))

let test_logistic () =
  let d = Dist.logistic_reparam (Ad.scalar 0.) (Ad.scalar 1.) in
  (* log f(0; 0, 1) = log(1/4). *)
  check_close "logistic logpdf at 0" ~tol:1e-9 (Float.log 0.25)
    (primal (d.Dist.log_density (Ad.scalar 0.)));
  check_close "logistic normalization" ~tol:1e-3 1. (integrates_to_one d);
  check_close "logistic mean" ~tol:0.05 0. (sample_mean 20000 d);
  (* Var = pi^2/3. *)
  check_close "logistic var" ~tol:0.15
    (Float.pi ** 2. /. 3.)
    (sample_var 20000 d)

let test_lognormal () =
  let mu = 0.2 and sigma = 0.4 in
  let d = Dist.lognormal_reparam (Ad.scalar mu) (Ad.scalar sigma) in
  check_close "lognormal normalization" ~tol:1e-3 1.
    (integrates_to_one ~lo:1e-6 ~hi:40. d);
  check_close "lognormal mean" ~tol:0.03
    (Float.exp (mu +. (sigma ** 2. /. 2.)))
    (sample_mean 40000 d);
  (* Reparam gradient of E[x] wrt mu is E[x] itself. *)
  let n = 8000 in
  let total = ref 0. in
  for i = 0 to n - 1 do
    let mu_l = Ad.scalar mu in
    let d = Dist.lognormal_reparam mu_l (Ad.scalar sigma) in
    let x = (Option.get d.Dist.reparam) (Prng.fold_in k0 i) in
    Ad.backward x;
    total := !total +. Tensor.to_scalar (Ad.grad mu_l)
  done;
  check_close "d E[x] / dmu" ~tol:0.05
    (Float.exp (mu +. (sigma ** 2. /. 2.)))
    (!total /. float_of_int n)

let test_exponential () =
  let rate = 1.3 in
  let d = Dist.exponential_reparam (Ad.scalar rate) in
  check_close "exp logpdf" ~tol:1e-9
    (Float.log rate -. (rate *. 2.))
    (primal (d.Dist.log_density (Ad.scalar 2.)));
  check_close "exp mean" ~tol:0.02 (1. /. rate) (sample_mean 20000 d)

let test_student_t () =
  (* df = 1 is Cauchy. *)
  let d1 = Dist.student_t_reinforce (Ad.scalar 1.) in
  check_close "cauchy logpdf at 0" ~tol:1e-8
    (-.Float.log Float.pi)
    (primal (d1.Dist.log_density (Ad.scalar 0.)));
  check_close "cauchy logpdf at 1" ~tol:1e-8
    (-.Float.log (2. *. Float.pi))
    (primal (d1.Dist.log_density (Ad.scalar 1.)));
  let d5 = Dist.student_t_reinforce (Ad.scalar 5.) in
  check_close "t5 normalization" ~tol:1e-2 1. (integrates_to_one ~lo:(-200.) ~hi:200. ~steps:200000 d5);
  (* Var = df / (df - 2) for df = 5. *)
  check_close "t5 var" ~tol:0.2 (5. /. 3.) (sample_var 40000 d5)

let test_scaled_beta () =
  let d = Dist.scaled_beta_reinforce ~lo:0. ~hi:4. (Ad.scalar 2.) (Ad.scalar 2.) in
  check_close "scaled beta normalization" ~tol:1e-3 1.
    (integrates_to_one ~lo:1e-6 ~hi:4. d);
  (* Mean of Beta(2,2) scaled to [0,4] is 2. *)
  check_close "scaled beta mean" ~tol:0.03 2. (sample_mean 20000 d);
  let xs = Array.map (fun k -> primal (d.Dist.sample k)) (Prng.split_many k0 500) in
  Alcotest.(check bool) "in range" true
    (Array.for_all (fun x -> x >= 0. && x <= 4.) xs)

let test_poisson_mvd_exact_linear () =
  (* f(n) = n: the coupling gives exactly f(n+1) - f(n) = 1 per sample,
     so d/drate E[N] = 1 with zero variance. *)
  let rate = Ad.scalar 2.3 in
  let open Adev.Syntax in
  let obj =
    let* n = Adev.sample (Dist.poisson_mvd rate) in
    Adev.return (Ad.scalar (float_of_int n))
  in
  let _, grads = Adev.grad ~params:[ ("rate", rate) ] obj k0 in
  check_close "poisson mvd linear" ~tol:1e-9 1.
    (Tensor.to_scalar (List.assoc "rate" grads))

let test_poisson_mvd_quadratic () =
  (* E[N^2] = rate^2 + rate; d/drate = 2 rate + 1. *)
  let rate_v = 1.7 in
  let n = 20000 in
  let total = ref 0. in
  for i = 0 to n - 1 do
    let rate = Ad.scalar rate_v in
    let open Adev.Syntax in
    let obj =
      let* m = Adev.sample (Dist.poisson_mvd rate) in
      Adev.return (Ad.scalar (float_of_int (m * m)))
    in
    let _, grads =
      Adev.grad ~params:[ ("rate", rate) ] obj (Prng.fold_in k0 i)
    in
    total := !total +. Tensor.to_scalar (List.assoc "rate" grads)
  done;
  check_close "poisson mvd quadratic" ~tol:0.1
    ((2. *. rate_v) +. 1.)
    (!total /. float_of_int n)

let test_geometric () =
  let p = 0.3 in
  let d = Dist.geometric_reinforce (Ad.scalar p) in
  (* P(2) = (1-p)^2 p. *)
  check_close "geometric logpdf" ~tol:1e-9
    ((2. *. Float.log 0.7) +. Float.log 0.3)
    (primal (d.Dist.log_density 2));
  let total = ref 0. in
  Array.iter
    (fun k -> total := !total +. float_of_int (d.Dist.sample k))
    (Prng.split_many k0 20000);
  check_close "geometric mean" ~tol:0.1 ((1. -. p) /. p) (!total /. 20000.)

let test_binomial () =
  let n = 7 and p = 0.35 in
  let d = Dist.binomial_enum n (Ad.scalar p) in
  let total =
    List.fold_left
      (fun acc k -> acc +. Float.exp (primal (d.Dist.log_density k)))
      0.
      (Option.get d.Dist.support)
  in
  check_close "binomial normalized" ~tol:1e-9 1. total;
  let total_s = ref 0. in
  Array.iter
    (fun k ->
      total_s := !total_s +. float_of_int ((Dist.binomial_reinforce n (Ad.scalar p)).Dist.sample k))
    (Prng.split_many k0 20000);
  check_close "binomial mean" ~tol:0.1
    (float_of_int n *. p)
    (!total_s /. 20000.)

let test_binomial_enum_gradient () =
  (* d/dp E[K] = n, exactly under enumeration. *)
  let n = 5 in
  let p = Ad.scalar 0.35 in
  let open Adev.Syntax in
  let obj =
    let* x = Adev.sample (Dist.binomial_enum n p) in
    Adev.return (Ad.scalar (float_of_int x))
  in
  let v, grads = Adev.grad ~params:[ ("p", p) ] obj k0 in
  check_close "binomial enum mean" ~tol:1e-9 (5. *. 0.35) v;
  check_close "binomial enum grad" ~tol:1e-7 5.
    (Tensor.to_scalar (List.assoc "p" grads))

let test_discrete_uniform () =
  let d = Dist.discrete_uniform_enum 6 in
  check_close "du logpdf" ~tol:1e-12 (-.Float.log 6.)
    (primal (d.Dist.log_density 3));
  Alcotest.(check bool) "out of range" true
    (primal (d.Dist.log_density 6) = Float.neg_infinity);
  Alcotest.(check int) "support" 6 (List.length (Option.get d.Dist.support))

let test_new_dists_in_gen_programs () =
  (* The extended primitives compose with sim/density unchanged. *)
  let open Gen.Syntax in
  let prog =
    let* a = Gen.sample (Dist.laplace_reparam (Ad.scalar 0.) (Ad.scalar 1.)) "a" in
    let* _ = Gen.sample (Dist.poisson_mvd (Ad.scalar 2.)) "n" in
    let* _ = Gen.sample (Dist.discrete_uniform_enum 4) "i" in
    Gen.return a
  in
  let _, trace, logd = Gen.sample_prior prog k0 in
  Alcotest.(check int) "three sites" 3 (Trace.size trace);
  Alcotest.(check bool) "finite density" true (Float.is_finite logd)

(* Property: every primitive's log density is finite at in-support
   samples drawn from the primitive itself — the contract the Guard
   anomaly detector relies on (a clean model/guide pair can only go
   non-finite through estimator variance, not through the primitives'
   own densities). *)

let finite_logpdf_cases (seed, (a, b)) =
  (* a in (0.2, 5), b in (0.2, 5): generic positive shape/scale/rate
     material; derived quantities below keep every parameter in its
     legal range. *)
  let k = Prng.key seed in
  let p = a /. (a +. b) (* in (0, 1) *) in
  let n = 1 + (seed mod 9) in
  let probs =
    Ad.const (Tensor.of_list1 [ a; b; a +. b ]) (* unnormalized, positive *)
  in
  let logits = Ad.const (Tensor.of_list1 [ a; -.b; b -. a ]) in
  let vec_mean = Ad.const (Tensor.of_list1 [ a; -.b ]) in
  let vec_std = Ad.const (Tensor.of_list1 [ b; a ]) in
  let vec_p = Ad.const (Tensor.of_list1 [ p; 1. -. p ]) in
  let scalar x = Ad.scalar x in
  let check : type a. string -> a Dist.t -> unit =
   fun name d ->
    let x = d.Dist.sample k in
    let lp = primal (d.Dist.log_density x) in
    if not (Float.is_finite lp) then
      QCheck.Test.fail_reportf
        "%s: log density %g not finite at its own sample (seed %d, a=%g, b=%g)"
        name lp seed a b
  in
  check "normal_reparam" (Dist.normal_reparam (scalar a) (scalar b));
  check "normal_reinforce" (Dist.normal_reinforce (scalar a) (scalar b));
  check "normal_mvd" (Dist.normal_mvd (scalar a) (scalar b));
  check "uniform" (Dist.uniform (-.a) b);
  check "beta_reinforce" (Dist.beta_reinforce (scalar a) (scalar b));
  check "gamma_reinforce" (Dist.gamma_reinforce (scalar a));
  check "laplace_reparam" (Dist.laplace_reparam (scalar a) (scalar b));
  check "logistic_reparam" (Dist.logistic_reparam (scalar a) (scalar b));
  check "lognormal_reparam" (Dist.lognormal_reparam (scalar (a -. b)) (scalar b));
  check "exponential_reparam" (Dist.exponential_reparam (scalar a));
  check "student_t_reinforce" (Dist.student_t_reinforce (scalar (a +. 0.5)));
  check "scaled_beta_reinforce"
    (Dist.scaled_beta_reinforce ~lo:(-.a) ~hi:b (scalar a) (scalar b));
  check "flip_enum" (Dist.flip_enum (scalar p));
  check "flip_reinforce" (Dist.flip_reinforce (scalar p));
  check "flip_mvd" (Dist.flip_mvd (scalar p));
  check "categorical_enum" (Dist.categorical_enum probs);
  check "categorical_reinforce" (Dist.categorical_reinforce probs);
  check "categorical_logits_enum" (Dist.categorical_logits_enum logits);
  check "categorical_logits_reinforce"
    (Dist.categorical_logits_reinforce logits);
  check "categorical_logits_mvd" (Dist.categorical_logits_mvd logits);
  check "poisson_reinforce" (Dist.poisson_reinforce (scalar a));
  check "poisson_mvd" (Dist.poisson_mvd (scalar a));
  check "geometric_reinforce" (Dist.geometric_reinforce (scalar p));
  check "binomial_reinforce" (Dist.binomial_reinforce n (scalar p));
  check "binomial_enum" (Dist.binomial_enum n (scalar p));
  check "discrete_uniform_enum" (Dist.discrete_uniform_enum n);
  check "mv_normal_diag_reparam" (Dist.mv_normal_diag_reparam vec_mean vec_std);
  check "mv_normal_diag_reinforce"
    (Dist.mv_normal_diag_reinforce vec_mean vec_std);
  check "bernoulli_vector" (Dist.bernoulli_vector vec_p);
  check "bernoulli_logits_vector" (Dist.bernoulli_logits_vector logits);
  true

let prop_finite_logpdf_on_own_samples =
  QCheck.Test.make ~name:"all primitives: finite log density at own samples"
    ~count:150
    QCheck.(pair small_int (pair (float_range 0.2 5.) (float_range 0.2 5.)))
    finite_logpdf_cases

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest [ prop_finite_logpdf_on_own_samples ]

let suites =
  [ ( "dist-extra",
      [ Alcotest.test_case "laplace" `Slow test_laplace;
        Alcotest.test_case "laplace reparam grad" `Quick
          test_laplace_reparam_grad;
        Alcotest.test_case "laplace density grad" `Quick
          test_laplace_density_grad;
        Alcotest.test_case "logistic" `Slow test_logistic;
        Alcotest.test_case "lognormal" `Slow test_lognormal;
        Alcotest.test_case "exponential" `Slow test_exponential;
        Alcotest.test_case "student t" `Slow test_student_t;
        Alcotest.test_case "scaled beta" `Slow test_scaled_beta;
        Alcotest.test_case "poisson mvd linear" `Quick
          test_poisson_mvd_exact_linear;
        Alcotest.test_case "poisson mvd quadratic" `Slow
          test_poisson_mvd_quadratic;
        Alcotest.test_case "geometric" `Slow test_geometric;
        Alcotest.test_case "binomial" `Slow test_binomial;
        Alcotest.test_case "binomial enum gradient" `Quick
          test_binomial_enum_gradient;
        Alcotest.test_case "discrete uniform" `Quick test_discrete_uniform;
        Alcotest.test_case "compose in gen" `Quick
          test_new_dists_in_gen_programs ]
      @ qcheck_cases ) ]
