(* Bit-for-bit equivalence of the blocked/parallel tensor kernels with
   naive sequential references, aliasing discipline of the in-place AD
   accumulation, and the deep-tape backward pass. *)

let exact_eq msg a b = Alcotest.(check bool) msg true (Tensor.equal a b)
let check_float = Alcotest.(check (float 1e-12))

(* ------------------------------------------------------------------ *)
(* Naive references replicating the historical (pre-kernel) semantics,
   including which operand's zeros were skipped in each rank dispatch. *)

let ref_matmul a b =
  let sa = Tensor.shape a and sb = Tensor.shape b in
  let m = sa.(0) and k = sa.(1) and n = sb.(1) in
  let ad = Tensor.to_array a and bd = Tensor.to_array b in
  let c = Array.make (m * n) 0. in
  for i = 0 to m - 1 do
    for p = 0 to k - 1 do
      let aip = ad.((i * k) + p) in
      if aip <> 0. then
        for j = 0 to n - 1 do
          c.((i * n) + j) <- c.((i * n) + j) +. (aip *. bd.((p * n) + j))
        done
    done
  done;
  Tensor.of_array [| m; n |] c

let ref_matvec a x =
  let sa = Tensor.shape a in
  let m = sa.(0) and k = sa.(1) in
  let ad = Tensor.to_array a and xd = Tensor.to_array x in
  Tensor.of_array [| m |]
    (Array.init m (fun i ->
         let acc = ref 0. in
         for p = 0 to k - 1 do
           acc := !acc +. (ad.((i * k) + p) *. xd.(p))
         done;
         !acc))

let ref_vecmat x b =
  let sb = Tensor.shape b in
  let k = sb.(0) and n = sb.(1) in
  let xd = Tensor.to_array x and bd = Tensor.to_array b in
  let y = Array.make n 0. in
  for p = 0 to k - 1 do
    let xp = xd.(p) in
    if xp <> 0. then
      for j = 0 to n - 1 do
        y.(j) <- y.(j) +. (xp *. bd.((p * n) + j))
      done
  done;
  Tensor.of_array [| n |] y

(* Broadcast binary map through multi-index projection — independent of
   the stride walker and all its fast paths. *)
let ref_map2 f a b =
  let out_shape = Tensor.broadcast_shapes (Tensor.shape a) (Tensor.shape b) in
  let ro = Array.length out_shape in
  let proj t ix =
    let s = Tensor.shape t in
    let r = Array.length s in
    Tensor.get t
      (Array.init r (fun d ->
           let i = ix.(d + ro - r) in
           if s.(d) = 1 then 0 else i))
  in
  Tensor.init out_shape (fun ix -> f (proj a ix) (proj b ix))

(* ------------------------------------------------------------------ *)
(* Generators: dimensions include the degenerate 0 and 1, values include
   exact zeros so the skip branches are exercised. *)

let dim_gen = QCheck.Gen.oneofl [ 0; 1; 2; 3; 5; 8; 17 ]

let val_gen =
  QCheck.Gen.(
    frequency [ (1, return 0.); (4, float_range (-10.) 10.) ])

let mat_gen =
  QCheck.Gen.(
    pair dim_gen dim_gen >>= fun (m, n) ->
    array_size (return (m * n)) val_gen >|= fun data ->
    Tensor.of_array [| m; n |] data)

let matmul_pair_gen =
  QCheck.Gen.(
    dim_gen >>= fun m ->
    dim_gen >>= fun k ->
    dim_gen >>= fun n ->
    array_size (return (m * k)) val_gen >>= fun da ->
    array_size (return (k * n)) val_gen >|= fun db ->
    (Tensor.of_array [| m; k |] da, Tensor.of_array [| k; n |] db))

let arb_matmul_pair =
  QCheck.make
    ~print:(fun (a, b) -> Tensor.to_string a ^ " x " ^ Tensor.to_string b)
    matmul_pair_gen

let prop_matmul_matches_ref =
  QCheck.Test.make ~name:"matmul bit-identical to naive reference" ~count:300
    arb_matmul_pair
    (fun (a, b) -> Tensor.equal (Tensor.matmul a b) (ref_matmul a b))

let prop_matvec_matches_ref =
  QCheck.Test.make ~name:"matvec/vecmat bit-identical to references" ~count:300
    arb_matmul_pair
    (fun (a, b) ->
      (* 2x1: A * first column of b as a vector; 1x2: first row of a. *)
      let sa = Tensor.shape a and sb = Tensor.shape b in
      let v_right = Tensor.init [| sa.(1) |] (fun ix -> float_of_int ix.(0) -. 2.) in
      let v_left = Tensor.init [| sb.(0) |] (fun ix -> float_of_int (ix.(0) mod 3)) in
      Tensor.equal (Tensor.matmul a v_right) (ref_matvec a v_right)
      && Tensor.equal (Tensor.matmul v_left b) (ref_vecmat v_left b))

let prop_matmul_t_matches_transpose =
  QCheck.Test.make
    ~name:"matmul_t/t_matmul bit-identical to transpose formulations"
    ~count:300 arb_matmul_pair
    (fun (a, b) ->
      (* a : m x k, b : k x n. matmul_t wants n x k on the right;
         t_matmul pairs a with an m x n right operand. *)
      let bt = Tensor.transpose b in
      let g =
        Tensor.init
          [| (Tensor.shape a).(0); (Tensor.shape b).(1) |]
          (fun ix -> Float.sin (float_of_int ((ix.(0) * 7) + ix.(1))))
      in
      Tensor.equal (Tensor.matmul_t a bt) (Tensor.matmul a b)
      && Tensor.equal (Tensor.t_matmul a g)
           (Tensor.matmul (Tensor.transpose a) g)
      &&
      let gv = Tensor.init [| (Tensor.shape a).(0) |] (fun ix -> 0.5 *. float_of_int ix.(0)) in
      Tensor.equal (Tensor.t_matmul a gv)
        (Tensor.matmul (Tensor.transpose a) gv))

(* Broadcast-compatible pair: derive the second shape from the first by
   dropping leading dims and turning some dims into 1. *)
let map2_pair_gen =
  QCheck.Gen.(
    oneofl [ [||]; [| 3 |]; [| 4; 3 |]; [| 2; 4; 3 |]; [| 0; 3 |]; [| 2; 1; 3 |] ]
    >>= fun shape_a ->
    int_range 0 (Array.length shape_a) >>= fun drop ->
    let rb = Array.length shape_a - drop in
    let shape_b_base = Array.sub shape_a drop rb in
    flatten_l
      (List.map
         (fun d -> map (fun b -> if b then 1 else d) bool)
         (Array.to_list shape_b_base))
    >>= fun dims_b ->
    let shape_b = Array.of_list dims_b in
    let size s = Array.fold_left ( * ) 1 s in
    array_size (return (size shape_a)) val_gen >>= fun da ->
    array_size (return (size shape_b)) val_gen >|= fun db ->
    (Tensor.of_array shape_a da, Tensor.of_array shape_b db))

let prop_map2_matches_ref =
  QCheck.Test.make ~name:"map2 broadcast bit-identical to projection ref"
    ~count:300
    (QCheck.make
       ~print:(fun (a, b) -> Tensor.to_string a ^ " (+) " ^ Tensor.to_string b)
       map2_pair_gen)
    (fun (a, b) ->
      Tensor.equal (Tensor.add a b) (ref_map2 ( +. ) a b)
      && Tensor.equal (Tensor.add b a) (ref_map2 ( +. ) b a)
      && Tensor.equal (Tensor.mul a b) (ref_map2 ( *. ) a b))

(* ------------------------------------------------------------------ *)
(* Determinism across domain counts: the same inputs must produce the
   same bits with 1 domain (inline) and with a real worker pool, for
   sizes on both sides of the fan-out thresholds. *)

let test_parallel_determinism () =
  let det_mat shape seed =
    Tensor.init shape (fun ix ->
        let h = Array.fold_left (fun acc i -> (acc * 31) + i) seed ix in
        Float.sin (float_of_int h))
  in
  let workload () =
    let small_a = det_mat [| 3; 5 |] 1 and small_b = det_mat [| 5; 4 |] 2 in
    (* 256x200x64 = 3.3M mults and 300x300 elementwise both exceed the
       sequential thresholds, so blocks really run on the pool. *)
    let big_a = det_mat [| 256; 200 |] 3 and big_b = det_mat [| 200; 64 |] 4 in
    let big_e = det_mat [| 300; 300 |] 5 in
    let bias = det_mat [| 300 |] 6 in
    [ Tensor.matmul small_a small_b;
      Tensor.matmul big_a big_b;
      Tensor.matmul_t big_a (Tensor.transpose big_b);
      Tensor.t_matmul big_a (det_mat [| 256; 32 |] 7);
      Tensor.matmul big_a (det_mat [| 200 |] 8);
      Tensor.softplus big_e;
      Tensor.add big_e bias;
      Tensor.mul big_e (det_mat [| 1; 300 |] 9);
      Tensor.broadcast_to bias [| 300; 300 |] ]
  in
  let with_domains d =
    Parallel.set_domains d;
    let r = workload () in
    r
  in
  let seq = with_domains 1 in
  List.iter
    (fun d ->
      let par = with_domains d in
      Alcotest.(check int) "domain count" d (Parallel.domains ());
      List.iteri
        (fun i (a, b) ->
          exact_eq (Printf.sprintf "domains=%d result %d" d i) a b)
        (List.combine seq par))
    [ 2; 4 ];
  Parallel.set_domains 1

(* ------------------------------------------------------------------ *)
(* In-place API semantics. *)

let test_inplace_ops () =
  let t = Tensor.of_list1 [ 1.; 2. ] in
  Tensor.fill_ t 5.;
  exact_eq "fill_" (Tensor.of_list1 [ 5.; 5. ]) t;
  Tensor.scale_ 2. t;
  exact_eq "scale_" (Tensor.of_list1 [ 10.; 10. ]) t;
  Tensor.add_ t (Tensor.of_list1 [ 1.; 2. ]);
  exact_eq "add_" (Tensor.of_list1 [ 11.; 12. ]) t;
  Tensor.axpy ~alpha:2. ~x:(Tensor.of_list1 [ 1.; 2. ]) t;
  exact_eq "axpy" (Tensor.of_list1 [ 13.; 16. ]) t;
  Tensor.map2_ ( *. ) t (Tensor.of_list1 [ 2.; 0.5 ]);
  exact_eq "map2_" (Tensor.of_list1 [ 26.; 8. ]) t;
  Alcotest.check_raises "add_ shape mismatch"
    (Tensor.Shape_error "add_: [2] vs [3]") (fun () ->
      Tensor.add_ t (Tensor.of_list1 [ 1.; 2.; 3. ]));
  let orig = Tensor.of_list1 [ 1.; 2. ] in
  let c = Tensor.copy orig in
  Tensor.fill_ c 9.;
  exact_eq "copy is deep" (Tensor.of_list1 [ 1.; 2. ]) orig

let test_broadcast_to () =
  let historical t out_shape =
    Tensor.map2 (fun x _ -> x) t (Tensor.zeros out_shape)
  in
  List.iter
    (fun (t, out_shape) ->
      exact_eq "broadcast_to matches historical map2 formulation"
        (historical t out_shape)
        (Tensor.broadcast_to t out_shape))
    [ (Tensor.of_list1 [ 1.; 2.; 3. ], [| 2; 3 |]);
      (Tensor.of_array [| 2; 1 |] [| 5.; 6. |], [| 2; 4 |]);
      (Tensor.of_array [| 1; 3 |] [| 1.; 2.; 3. |], [| 2; 3 |]);
      (Tensor.scalar 7., [| 2; 2 |]);
      (* dims of [t] exceeding the target survive, as with map2 *)
      (Tensor.of_list2 [ [ 1.; 2.; 3. ]; [ 4.; 5.; 6. ] ], [| 3 |]) ]

(* ------------------------------------------------------------------ *)
(* AD: in-place accumulation must never corrupt shared buffers. The vjp
   of [add] is the identity, so the first delta a node receives is the
   parent's own gradient buffer. *)

let test_ad_alias_safety () =
  let x = Ad.const (Tensor.of_list1 [ 1.; 2.; 3. ]) in
  let z = Ad.add x x in
  let s = Ad.sum z in
  Ad.backward s;
  exact_eq "grad x accumulated twice" (Tensor.of_list1 [ 2.; 2.; 2. ])
    (Ad.grad x);
  (* z's gradient buffer was shared with x's first delta; the second
     accumulation must not have mutated it. *)
  exact_eq "grad z unchanged" (Tensor.of_list1 [ 1.; 1.; 1. ]) (Ad.grad z)

let test_ad_diamond () =
  (* s = sum (y + y) with y = 2x: every edge delivers an aliased delta. *)
  let x = Ad.const (Tensor.of_list1 [ 1.; -1.; 0.5 ]) in
  let y = Ad.scale 2. x in
  let z = Ad.add y y in
  let s = Ad.sum z in
  Ad.backward s;
  exact_eq "diamond grad x" (Tensor.of_list1 [ 4.; 4.; 4. ]) (Ad.grad x);
  exact_eq "diamond grad y" (Tensor.of_list1 [ 2.; 2.; 2. ]) (Ad.grad y)

let test_deep_tape () =
  (* A 300k-node chain overflows the OCaml stack with a recursive DFS;
     the explicit-stack backward must handle it. *)
  let x = Ad.scalar 1. in
  let y = ref x in
  for _ = 1 to 300_000 do
    y := Ad.add_scalar 0. !y
  done;
  Ad.backward !y;
  check_float "deep chain gradient" 1. (Tensor.to_scalar (Ad.grad x))

(* ------------------------------------------------------------------ *)
(* Optimizer snapshots must be isolated from in-place moment updates. *)

let test_optim_snapshot_isolated () =
  let store = Store.create () in
  Store.ensure store "w" (fun () -> Tensor.of_list1 [ 1.; 2. ]);
  let optim = Optim.adam ~lr:0.1 () in
  let g1 = Tensor.of_list1 [ 0.5; -0.25 ] in
  let g2 = Tensor.of_list1 [ -1.; 0.75 ] in
  Optim.step optim Optim.Descend store [ ("w", g1) ];
  let snap = Optim.snapshot optim in
  let w_at_snap = Tensor.copy (Store.tensor store "w") in
  Optim.step optim Optim.Descend store [ ("w", g2) ];
  let w_after = Tensor.copy (Store.tensor store "w") in
  (* Roll back and replay: if the snapshot shared moment buffers with
     the live state, the first replayed step would see corrupted m/v. *)
  Optim.restore optim snap;
  Store.set store "w" w_at_snap;
  Optim.step optim Optim.Descend store [ ("w", g2) ];
  exact_eq "replayed step matches original" w_after (Store.tensor store "w");
  (* Restoring twice from the same snapshot must also be stable. *)
  Optim.restore optim snap;
  Store.set store "w" w_at_snap;
  Optim.step optim Optim.Descend store [ ("w", g2) ];
  exact_eq "second replay matches too" w_after (Store.tensor store "w")

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_matmul_matches_ref; prop_matvec_matches_ref;
      prop_matmul_t_matches_transpose; prop_map2_matches_ref ]

let suites =
  [ ( "kernel",
      [ Alcotest.test_case "parallel determinism" `Quick
          test_parallel_determinism;
        Alcotest.test_case "in-place ops" `Quick test_inplace_ops;
        Alcotest.test_case "broadcast_to" `Quick test_broadcast_to;
        Alcotest.test_case "ad alias safety" `Quick test_ad_alias_safety;
        Alcotest.test_case "ad diamond" `Quick test_ad_diamond;
        Alcotest.test_case "deep tape" `Quick test_deep_tape;
        Alcotest.test_case "optim snapshot isolation" `Quick
          test_optim_snapshot_isolated ]
      @ qcheck_cases ) ]
