(* Tests for the splittable PRNG: determinism, split independence, and
   moment checks for every sampler (law-of-large-numbers tolerances). *)

let k0 = Prng.key 42

let draw_many n f =
  Array.map f (Prng.split_many k0 n)

let mean xs = Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let var xs =
  let m = mean xs in
  mean (Array.map (fun x -> (x -. m) ** 2.) xs)

let check_close name ~tol expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %g, got %g (tol %g)" name expected actual tol

let test_determinism () =
  let a = Prng.uniform (Prng.key 7) in
  let b = Prng.uniform (Prng.key 7) in
  Alcotest.(check (float 0.)) "same seed same draw" a b;
  let c = Prng.uniform (Prng.key 8) in
  Alcotest.(check bool) "different seed different draw" true (a <> c)

let test_split_independence () =
  let k1, k2 = Prng.split k0 in
  Alcotest.(check bool) "children differ" true
    (Prng.uniform k1 <> Prng.uniform k2);
  Alcotest.(check bool) "child differs from parent" true
    (Prng.uniform k1 <> Prng.uniform k0)

let test_split_many_distinct () =
  let ks = Prng.split_many k0 100 in
  let draws = Array.map Prng.uniform ks in
  let sorted = Array.copy draws in
  Array.sort compare sorted;
  let distinct = ref true in
  for i = 1 to 99 do
    if sorted.(i) = sorted.(i - 1) then distinct := false
  done;
  Alcotest.(check bool) "all distinct" true !distinct

let test_fold_in () =
  Alcotest.(check bool) "fold_in varies" true
    (Prng.uniform (Prng.fold_in k0 1) <> Prng.uniform (Prng.fold_in k0 2))

let test_uniform_range_bounds () =
  let xs = draw_many 1000 Prng.uniform in
  Alcotest.(check bool) "in [0,1)" true
    (Array.for_all (fun x -> x >= 0. && x < 1.) xs);
  check_close "uniform mean" ~tol:0.03 0.5 (mean xs);
  check_close "uniform var" ~tol:0.01 (1. /. 12.) (var xs)

let test_normal_moments () =
  let xs = draw_many 20000 Prng.normal in
  check_close "normal mean" ~tol:0.03 0. (mean xs);
  check_close "normal var" ~tol:0.05 1. (var xs)

let test_normal_mean_std () =
  let xs = draw_many 20000 (fun k -> Prng.normal_mean_std k 3. 0.5) in
  check_close "shifted mean" ~tol:0.02 3. (mean xs);
  check_close "shifted var" ~tol:0.02 0.25 (var xs)

let test_exponential_moments () =
  let xs = draw_many 20000 Prng.exponential in
  check_close "exp mean" ~tol:0.05 1. (mean xs);
  check_close "exp var" ~tol:0.15 1. (var xs)

let test_bernoulli () =
  let xs = draw_many 20000 (fun k -> if Prng.bernoulli k 0.3 then 1. else 0.) in
  check_close "bernoulli mean" ~tol:0.02 0.3 (mean xs)

let test_categorical_frequencies () =
  let w = [| 1.; 2.; 7. |] in
  let counts = Array.make 3 0 in
  Array.iter
    (fun k -> counts.(Prng.categorical k w) <- counts.(Prng.categorical k w) + 1)
    (Prng.split_many k0 20000);
  let freq i = float_of_int counts.(i) /. 20000. in
  check_close "cat p0" ~tol:0.02 0.1 (freq 0);
  check_close "cat p1" ~tol:0.02 0.2 (freq 1);
  check_close "cat p2" ~tol:0.02 0.7 (freq 2)

let test_categorical_logits () =
  let logits = [| 0.; Float.log 2.; Float.log 7. |] in
  let counts = Array.make 3 0 in
  Array.iter
    (fun k ->
      let i = Prng.categorical_logits k logits in
      counts.(i) <- counts.(i) + 1)
    (Prng.split_many k0 20000);
  check_close "gumbel p2" ~tol:0.02 0.7 (float_of_int counts.(2) /. 20000.)

let test_categorical_invalid () =
  Alcotest.(check bool) "zero weights raise" true
    (try
       ignore (Prng.categorical k0 [| 0.; 0. |]);
       false
     with Invalid_argument _ -> true)

let test_gamma_moments () =
  let shape = 2.5 in
  let xs = draw_many 20000 (fun k -> Prng.gamma k shape) in
  check_close "gamma mean" ~tol:0.08 shape (mean xs);
  check_close "gamma var" ~tol:0.25 shape (var xs)

let test_gamma_small_shape () =
  let xs = draw_many 20000 (fun k -> Prng.gamma k 0.5) in
  check_close "gamma(0.5) mean" ~tol:0.05 0.5 (mean xs);
  Alcotest.(check bool) "positive" true (Array.for_all (fun x -> x > 0.) xs)

let test_beta_moments () =
  let a = 2. and b = 3. in
  let xs = draw_many 20000 (fun k -> Prng.beta k a b) in
  check_close "beta mean" ~tol:0.02 (a /. (a +. b)) (mean xs);
  let v = a *. b /. (((a +. b) ** 2.) *. (a +. b +. 1.)) in
  check_close "beta var" ~tol:0.01 v (var xs)

let test_poisson_moments () =
  let rate = 4.2 in
  let xs = draw_many 20000 (fun k -> float_of_int (Prng.poisson k rate)) in
  check_close "poisson mean" ~tol:0.1 rate (mean xs);
  check_close "poisson var" ~tol:0.3 rate (var xs)

let test_poisson_large_rate () =
  let rate = 100. in
  let xs = draw_many 5000 (fun k -> float_of_int (Prng.poisson k rate)) in
  check_close "poisson(100) mean" ~tol:1.5 rate (mean xs)

let test_weibull_moments () =
  (* Weibull(shape=2, scale=sqrt 2) has mean scale * Gamma(1.5). *)
  let xs =
    draw_many 20000 (fun k -> Prng.weibull k ~shape:2. ~scale:(Float.sqrt 2.))
  in
  let expected = Float.sqrt 2. *. 0.8862269254527579 in
  check_close "weibull mean" ~tol:0.02 expected (mean xs)

let test_maxwell_moments () =
  (* Maxwell mean is 2 sqrt(2/pi). *)
  let xs = draw_many 20000 Prng.maxwell in
  check_close "maxwell mean" ~tol:0.03
    (2. *. Float.sqrt (2. /. Float.pi))
    (mean xs);
  check_close "maxwell second moment" ~tol:0.1 3. (mean (Array.map (fun x -> x *. x) xs))

let test_uniform_ks () =
  (* Kolmogorov-Smirnov test of uniformity at a generous alpha: the KS
     statistic of n = 5000 draws must be below 1.95 / sqrt n
     (alpha ~ 0.001). *)
  let n = 5000 in
  let xs = Array.map Prng.uniform (Prng.split_many (Prng.key 99) n) in
  Array.sort compare xs;
  let d = ref 0. in
  Array.iteri
    (fun i x ->
      let ecdf_hi = float_of_int (i + 1) /. float_of_int n in
      let ecdf_lo = float_of_int i /. float_of_int n in
      d := Float.max !d (Float.max (Float.abs (ecdf_hi -. x)) (Float.abs (x -. ecdf_lo))))
    xs;
  let bound = 1.95 /. Float.sqrt (float_of_int n) in
  if !d > bound then
    Alcotest.failf "KS statistic %.4f exceeds %.4f" !d bound

let test_normal_ks () =
  (* Same for the normal sampler against Phi, using the logistic-like
     approximation of the error function. *)
  let phi x =
    0.5 *. (1. +. Float.erf (x /. Float.sqrt 2.))
  in
  let n = 5000 in
  let xs = Array.map Prng.normal (Prng.split_many (Prng.key 98) n) in
  Array.sort compare xs;
  let d = ref 0. in
  Array.iteri
    (fun i x ->
      let u = phi x in
      let ecdf_hi = float_of_int (i + 1) /. float_of_int n in
      let ecdf_lo = float_of_int i /. float_of_int n in
      d := Float.max !d (Float.max (Float.abs (ecdf_hi -. u)) (Float.abs (u -. ecdf_lo))))
    xs;
  let bound = 1.95 /. Float.sqrt (float_of_int n) in
  if !d > bound then
    Alcotest.failf "normal KS statistic %.4f exceeds %.4f" !d bound

let test_permutation () =
  let p = Prng.permutation k0 10 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation"
    (Array.init 10 (fun i -> i))
    sorted

let test_tensor_draws () =
  let t = Prng.normal_tensor k0 [| 4; 5 |] in
  Alcotest.(check (array int)) "shape" [| 4; 5 |] (Tensor.shape t);
  let u = Prng.uniform_tensor k0 [| 100 |] in
  Alcotest.(check bool) "uniform bounds" true
    (Tensor.min_elt u >= 0. && Tensor.max_elt u < 1.);
  let mean_t = Tensor.full [| 3 |] 2. in
  let std_t = Tensor.full [| 3 |] 0.001 in
  let x = Prng.normal_tensor_mean_std k0 mean_t std_t in
  Alcotest.(check bool) "mean_std close to mean" true
    (Tensor.max_elt (Tensor.map Float.abs (Tensor.sub x mean_t)) < 0.01)

let prop_uniform_bounds =
  QCheck.Test.make ~name:"uniform always in [0,1)" ~count:500
    QCheck.small_int (fun seed ->
      let u = Prng.uniform (Prng.key seed) in
      u >= 0. && u < 1.)

let prop_split_deterministic =
  QCheck.Test.make ~name:"split is deterministic" ~count:200 QCheck.small_int
    (fun seed ->
      let k = Prng.key seed in
      let a1, b1 = Prng.split k in
      let a2, b2 = Prng.split k in
      Prng.uniform a1 = Prng.uniform a2 && Prng.uniform b1 = Prng.uniform b2)

let prop_beta_in_unit =
  QCheck.Test.make ~name:"beta in (0,1)" ~count:200
    QCheck.(pair small_int (pair (float_range 0.2 5.) (float_range 0.2 5.)))
    (fun (seed, (a, b)) ->
      let x = Prng.beta (Prng.key seed) a b in
      x >= 0. && x <= 1.)

let test_input_validation () =
  let rejects name f =
    Alcotest.(check bool) name true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  rejects "uniform_range inverted" (fun () -> Prng.uniform_range k0 1. 0.);
  rejects "uniform_range nan lo" (fun () ->
      Prng.uniform_range k0 Float.nan 1.);
  rejects "uniform_range inf hi" (fun () ->
      Prng.uniform_range k0 0. Float.infinity);
  rejects "bernoulli nan p" (fun () -> Prng.bernoulli k0 Float.nan);
  rejects "gamma zero shape" (fun () -> Prng.gamma k0 0.);
  rejects "gamma negative shape" (fun () -> Prng.gamma k0 (-1.));
  rejects "gamma nan shape" (fun () -> Prng.gamma k0 Float.nan);
  rejects "weibull zero shape" (fun () -> Prng.weibull k0 ~shape:0. ~scale:1.);
  rejects "weibull negative scale" (fun () ->
      Prng.weibull k0 ~shape:2. ~scale:(-1.));
  rejects "poisson nan rate" (fun () -> Prng.poisson k0 Float.nan);
  rejects "poisson negative rate" (fun () -> Prng.poisson k0 (-2.));
  rejects "categorical_logits empty" (fun () ->
      Prng.categorical_logits k0 [||]);
  rejects "categorical_logits nan" (fun () ->
      Prng.categorical_logits k0 [| 0.; Float.nan |]);
  rejects "categorical_logits all -inf" (fun () ->
      Prng.categorical_logits k0
        [| Float.neg_infinity; Float.neg_infinity |]);
  (* Edge cases that stay valid. *)
  Alcotest.(check int) "poisson rate 0" 0 (Prng.poisson k0 0.);
  Alcotest.(check (float 0.)) "uniform_range point" 1.5
    (Prng.uniform_range k0 1.5 1.5);
  Alcotest.(check int) "categorical_logits skips -inf" 1
    (Prng.categorical_logits k0 [| Float.neg_infinity; 0. |])

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_uniform_bounds; prop_split_deterministic; prop_beta_in_unit ]

let suites =
  [ ( "prng",
      [ Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "split independence" `Quick test_split_independence;
        Alcotest.test_case "split_many distinct" `Quick
          test_split_many_distinct;
        Alcotest.test_case "fold_in" `Quick test_fold_in;
        Alcotest.test_case "uniform bounds/moments" `Quick
          test_uniform_range_bounds;
        Alcotest.test_case "normal moments" `Slow test_normal_moments;
        Alcotest.test_case "normal mean/std" `Slow test_normal_mean_std;
        Alcotest.test_case "exponential moments" `Slow
          test_exponential_moments;
        Alcotest.test_case "bernoulli" `Slow test_bernoulli;
        Alcotest.test_case "categorical frequencies" `Slow
          test_categorical_frequencies;
        Alcotest.test_case "categorical logits" `Slow test_categorical_logits;
        Alcotest.test_case "categorical invalid" `Quick
          test_categorical_invalid;
        Alcotest.test_case "gamma moments" `Slow test_gamma_moments;
        Alcotest.test_case "gamma small shape" `Slow test_gamma_small_shape;
        Alcotest.test_case "beta moments" `Slow test_beta_moments;
        Alcotest.test_case "poisson moments" `Slow test_poisson_moments;
        Alcotest.test_case "poisson large rate" `Slow test_poisson_large_rate;
        Alcotest.test_case "weibull moments" `Slow test_weibull_moments;
        Alcotest.test_case "maxwell moments" `Slow test_maxwell_moments;
        Alcotest.test_case "uniform KS" `Slow test_uniform_ks;
        Alcotest.test_case "normal KS" `Slow test_normal_ks;
        Alcotest.test_case "permutation" `Quick test_permutation;
        Alcotest.test_case "tensor draws" `Quick test_tensor_draws;
        Alcotest.test_case "input validation" `Quick test_input_validation ]
      @ qcheck_cases ) ]
