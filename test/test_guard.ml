(* The training resilience subsystem: anomaly detection, guard
   policies, checkpoint/rollback with deterministic reseeding, store
   persistence, and optimizer gradient hygiene.

   The fault-injection tests drive a real [Train.fit_surrogate] /
   [Train.fit] loop whose objective is forced to NaN at a chosen step
   through a test-only wrapper, and assert the behavior each policy
   promises. *)

let check_close name ~tol expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %g, got %g (tol %g)" name expected actual tol

let scalar_of store name = Tensor.to_scalar (Store.tensor store name)

(* A tiny deterministic workload: maximize -(x - 3)^2 from x = 0. *)
let quadratic_store () =
  let store = Store.create () in
  Store.ensure store "x" (fun () -> Tensor.scalar 0.);
  store

let quadratic_surrogate frame _step _key =
  let x = Store.Frame.get frame "x" in
  Ad.neg Ad.O.((x - Ad.scalar 3.) * (x - Ad.scalar 3.))

(* Wrap a surrogate so its value (and hence its gradients) are NaN when
   [fire] says so. *)
let inject_nan ~fire surrogate frame step key =
  let s = surrogate frame step key in
  if fire step then Ad.O.(Ad.scalar Float.nan * s) else s

(* Guard.scan *)

let test_scan_classifies () =
  let grads =
    [ ("ok", Tensor.of_list1 [ 1.; 2. ]);
      ("bad_nan", Tensor.of_list1 [ 1.; Float.nan ]);
      ("bad_inf", Tensor.of_list1 [ Float.infinity; 2. ]) ]
  in
  let anomalies = Guard.scan ~step:7 ~objective:1.5 ~grads in
  Alcotest.(check int) "two grad anomalies" 2 (List.length anomalies);
  let names = List.map (fun a -> a.Guard.name) anomalies in
  Alcotest.(check (list string)) "names" [ "bad_nan"; "bad_inf" ] names;
  List.iter
    (fun a ->
      match (a.Guard.name, a.Guard.kind) with
      | "bad_nan", Guard.Nan | "bad_inf", Guard.Inf -> ()
      | n, k -> Alcotest.failf "wrong kind %s for %s" (Guard.kind_name k) n)
    anomalies;
  (* A NaN objective is reported first, under the name "objective". *)
  let anomalies = Guard.scan ~step:0 ~objective:Float.nan ~grads:[] in
  match anomalies with
  | [ { Guard.name = "objective"; kind = Guard.Nan; step = 0; _ } ] -> ()
  | _ -> Alcotest.fail "objective anomaly not reported"

(* Fail_fast *)

let test_fail_fast_surfaces_diverged () =
  let store = quadratic_store () in
  let optim = Optim.adam ~lr:0.1 () in
  let guard = Guard.create ~policy:Guard.Fail_fast () in
  let fire step = step = 6 in
  match
    Train.fit_surrogate ~store ~optim ~guard ~steps:12
      ~surrogate:(inject_nan ~fire quadratic_surrogate)
      (Prng.key 0)
  with
  | _ -> Alcotest.fail "expected Guard.Diverged"
  | exception Guard.Diverged { step; anomalies; retries } ->
    Alcotest.(check int) "offending step" 6 step;
    Alcotest.(check int) "no retries under fail-fast" 0 retries;
    let names = List.map (fun a -> a.Guard.name) anomalies in
    Alcotest.(check bool) "objective named" true (List.mem "objective" names);
    Alcotest.(check bool) "parameter named" true (List.mem "x" names)

(* Skip_step *)

let test_skip_step_continues () =
  let store = quadratic_store () in
  let optim = Optim.adam ~lr:0.1 () in
  let guard = Guard.create ~policy:Guard.Skip_step () in
  let fired = ref false in
  let fire step =
    if step = 6 && not !fired then (fired := true; true) else false
  in
  let reports =
    Train.fit_surrogate ~store ~optim ~guard ~steps:40
      ~surrogate:(inject_nan ~fire quadratic_surrogate)
      (Prng.key 0)
  in
  Alcotest.(check int) "all steps reported" 40 (List.length reports);
  Alcotest.(check bool) "anomalies counted" true (Guard.anomaly_count guard >= 2);
  Alcotest.(check int) "one skipped step" 1 (Guard.skip_count guard);
  Alcotest.(check int) "grad skip counted by optimizer" 1 (Optim.skipped optim);
  let last = List.nth reports 39 in
  Alcotest.(check bool) "final objective finite" true
    (Float.is_finite last.Train.objective);
  check_close "still converges" ~tol:0.3 3. (scalar_of store "x")

(* Rollback_retry: the acceptance-criteria fault-injection scenario. *)

let rollback_run key =
  let store = quadratic_store () in
  let optim = Optim.adam ~lr:0.1 () in
  let guard =
    Guard.create ~policy:Guard.Rollback_retry ~snapshot_every:4 ~max_retries:3 ()
  in
  let fired = ref false in
  let fire step =
    if step = 6 && not !fired then (fired := true; true) else false
  in
  let reports =
    Train.fit_surrogate ~store ~optim ~guard ~steps:50
      ~surrogate:(inject_nan ~fire quadratic_surrogate)
      key
  in
  (store, guard, reports)

let test_rollback_retry_recovers () =
  let store, guard, reports = rollback_run (Prng.key 11) in
  Alcotest.(check int) "one rollback" 1 (Guard.retry_count guard);
  Alcotest.(check bool) "anomaly logged" true (Guard.anomaly_count guard >= 1);
  Alcotest.(check int) "all steps committed" 50 (List.length reports);
  List.iteri
    (fun i r ->
      Alcotest.(check int) "committed trajectory in order" i r.Train.step;
      if not (Float.is_finite r.Train.objective) then
        Alcotest.failf "non-finite committed objective at step %d" i)
    reports;
  let last = List.nth reports 49 in
  Alcotest.(check int) "report carries retry counter" 1 last.Train.retries;
  Alcotest.(check bool) "report carries anomaly counter" true
    (last.Train.anomalies >= 1);
  check_close "recovered and converged" ~tol:0.3 3. (scalar_of store "x")

let test_rollback_retry_reproducible () =
  let store1, _, reports1 = rollback_run (Prng.key 11) in
  let store2, _, reports2 = rollback_run (Prng.key 11) in
  Alcotest.(check bool) "same final parameters" true
    (Tensor.equal (Store.tensor store1 "x") (Store.tensor store2 "x"));
  List.iter2
    (fun a b ->
      if a.Train.objective <> b.Train.objective then
        Alcotest.failf "objectives differ at step %d" a.Train.step)
    reports1 reports2

let test_rollback_reseeds_deterministically () =
  (* A stochastic objective (REPARAM noise): after a rollback the
     replayed steps must draw fresh randomness — the objective series at
     the replayed steps differs from the first attempt — while the whole
     run stays a pure function of the initial key. *)
  let run () =
    let store = quadratic_store () in
    let optim = Optim.adam ~lr:0.1 () in
    let guard =
      Guard.create ~policy:Guard.Rollback_retry ~snapshot_every:4
        ~max_retries:3 ()
    in
    let fired = ref false in
    let first_attempt = ref [] in
    let objective frame step =
      let open Adev.Syntax in
      let* z =
        Adev.sample (Dist.normal_reparam (Ad.scalar 0.) (Ad.scalar 0.1))
      in
      let x = Store.Frame.get frame "x" in
      let v = Ad.neg Ad.O.((x + z - Ad.scalar 3.) * (x + z - Ad.scalar 3.)) in
      if step = 6 && not !fired then begin
        fired := true;
        Adev.return Ad.O.(Ad.scalar Float.nan * v)
      end
      else Adev.return v
    in
    let reports =
      Train.fit ~store ~optim ~guard ~steps:12
        ~on_step:(fun r ->
          if r.Train.retries = 0 then first_attempt := r :: !first_attempt)
        ~objective (Prng.key 23)
    in
    (store, guard, reports, List.rev !first_attempt)
  in
  let store1, guard1, reports1, first_attempt = run () in
  Alcotest.(check int) "rolled back once" 1 (Guard.retry_count guard1);
  (* Step 4 (the snapshot point) ran on both attempts; the committed
     value must come from the retry key, not the original. *)
  let original4 = (List.nth first_attempt 4).Train.objective in
  let committed4 = (List.nth reports1 4).Train.objective in
  Alcotest.(check bool) "replayed step resampled" true
    (original4 <> committed4);
  let store2, _, _, _ = run () in
  Alcotest.(check bool) "stochastic run reproducible" true
    (Tensor.equal (Store.tensor store1 "x") (Store.tensor store2 "x"))

let test_rollback_gives_up_after_max_retries () =
  let store = quadratic_store () in
  let optim = Optim.adam ~lr:0.1 () in
  let guard =
    Guard.create ~policy:Guard.Rollback_retry ~snapshot_every:4 ~max_retries:2 ()
  in
  let fire step = step = 6 (* persistent fault: fires on every attempt *) in
  match
    Train.fit_surrogate ~store ~optim ~guard ~steps:12
      ~surrogate:(inject_nan ~fire quadratic_surrogate)
      (Prng.key 0)
  with
  | _ -> Alcotest.fail "expected Guard.Diverged"
  | exception Guard.Diverged { step; retries; _ } ->
    Alcotest.(check int) "at the faulty step" 6 step;
    Alcotest.(check int) "budget exhausted" 2 retries

(* Store deep copy / restore *)

let test_store_copy_is_deep () =
  let store = Store.create () in
  Store.ensure store "w" (fun () -> Tensor.of_list1 [ 1.; 2.; 3. ]);
  let snapshot = Store.copy store in
  Alcotest.(check bool) "no shared tensor structure" true
    (Store.tensor snapshot "w" != Store.tensor store "w");
  (* Mutating the copy leaves the original intact... *)
  Store.set snapshot "w" (Tensor.of_list1 [ 9.; 9.; 9. ]);
  Alcotest.(check bool) "original intact" true
    (Tensor.equal (Store.tensor store "w") (Tensor.of_list1 [ 1.; 2.; 3. ]));
  (* ...and mutating the original leaves the copy intact. *)
  let snapshot2 = Store.copy store in
  Store.set store "w" (Tensor.of_list1 [ 7.; 7.; 7. ]);
  Alcotest.(check bool) "copy intact" true
    (Tensor.equal (Store.tensor snapshot2 "w") (Tensor.of_list1 [ 1.; 2.; 3. ]))

let test_store_restore () =
  let store = Store.create () in
  Store.ensure store "a" (fun () -> Tensor.scalar 1.);
  let snapshot = Store.copy store in
  Store.set store "a" (Tensor.scalar 42.);
  Store.ensure store "b" (fun () -> Tensor.scalar 5.);
  Store.restore store ~from:snapshot;
  check_close "rolled back" ~tol:0. 1. (scalar_of store "a");
  (* Names the snapshot lacks keep their current values. *)
  check_close "later registration preserved" ~tol:0. 5. (scalar_of store "b")

(* Store persistence *)

let test_store_save_load_roundtrip () =
  let store = Store.create () in
  Store.ensure store "weights" (fun () ->
      Tensor.of_array [| 2; 3 |]
        [| 1.5; -2.25; 1e-300; Float.max_float; -0.; 3.7 |]);
  Store.ensure store "bias" (fun () -> Tensor.scalar (-7.125));
  Store.ensure store "odd" (fun () ->
      Tensor.of_list1 [ Float.infinity; Float.neg_infinity; Float.nan ]);
  let path = Filename.temp_file "ppvi_ckpt" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Store.save store path;
      let loaded = Store.load path in
      Alcotest.(check (list string))
        "registration order preserved" (Store.names store) (Store.names loaded);
      List.iter
        (fun name ->
          let a = Store.tensor store name and b = Store.tensor loaded name in
          Alcotest.(check (array int)) "shape" (Tensor.shape a) (Tensor.shape b);
          let xa = Tensor.to_array a and xb = Tensor.to_array b in
          Array.iteri
            (fun i x ->
              if Int64.bits_of_float x <> Int64.bits_of_float xb.(i) then
                Alcotest.failf "%s[%d] not bit-exact: %h vs %h" name i x xb.(i))
            xa)
        (Store.names store))

let test_store_load_rejects_garbage () =
  let path = Filename.temp_file "ppvi_garbage" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "definitely not a checkpoint";
      close_out oc;
      match Store.load path with
      | _ -> Alcotest.fail "expected Corrupt_checkpoint"
      | exception Store.Corrupt_checkpoint _ -> ())

(* Optimizer hygiene *)

let test_optim_reports_skips () =
  let store = Store.create () in
  Store.ensure store "x" (fun () -> Tensor.scalar 1.);
  Store.ensure store "y" (fun () -> Tensor.scalar 1.);
  let opt = Optim.sgd ~lr:0.1 in
  let skipped = ref [] in
  Optim.step
    ~on_skip:(fun name _ -> skipped := name :: !skipped)
    opt Optim.Ascend store
    [ ("x", Tensor.scalar Float.nan); ("y", Tensor.scalar 2.) ];
  Alcotest.(check (list string)) "skip reported" [ "x" ] !skipped;
  Alcotest.(check int) "skip counted" 1 (Optim.skipped opt);
  check_close "x untouched" ~tol:0. 1. (scalar_of store "x");
  check_close "y updated" ~tol:1e-12 1.2 (scalar_of store "y")

let test_optim_clips_by_global_norm () =
  let store = Store.create () in
  Store.ensure store "a" (fun () -> Tensor.scalar 0.);
  Store.ensure store "b" (fun () -> Tensor.scalar 0.);
  let opt = Optim.sgd ~lr:1. in
  (* Joint gradient (3, 4) has global norm 5; clipped to 1 it becomes
     (0.6, 0.8). *)
  Optim.step ~clip_norm:1. opt Optim.Descend store
    [ ("a", Tensor.scalar 3.); ("b", Tensor.scalar 4.) ];
  check_close "a clipped" ~tol:1e-12 (-0.6) (scalar_of store "a");
  check_close "b clipped" ~tol:1e-12 (-0.8) (scalar_of store "b")

let test_optim_snapshot_restore () =
  let grad = Tensor.scalar 1.5 in
  let run_two_steps opt store =
    Optim.step opt Optim.Descend store [ ("x", grad) ];
    Optim.step opt Optim.Descend store [ ("x", grad) ]
  in
  let store = Store.create () in
  Store.ensure store "x" (fun () -> Tensor.scalar 1.);
  let opt = Optim.adam ~lr:0.1 () in
  (* Warm up so the moments are nontrivial. *)
  Optim.step opt Optim.Descend store [ ("x", grad) ];
  let params = Store.copy store in
  let snap = Optim.snapshot opt in
  run_two_steps opt store;
  let first = scalar_of store "x" in
  Store.restore store ~from:params;
  Optim.restore opt snap;
  run_two_steps opt store;
  check_close "bit-identical replay" ~tol:0. first (scalar_of store "x")

(* Guarded loops leave clean runs bit-identical to the unguarded
   history: same updates, same PRNG stream. *)
let test_guard_default_transparent () =
  let run guard =
    let store = quadratic_store () in
    let optim = Optim.adam ~lr:0.1 () in
    let _ =
      Train.fit_surrogate ~store ~optim ?guard ~steps:25
        ~surrogate:quadratic_surrogate (Prng.key 3)
    in
    scalar_of store "x"
  in
  let implicit = run None in
  let explicit = run (Some (Guard.create ~policy:Guard.Rollback_retry ())) in
  Alcotest.(check bool) "clean run unaffected by policy" true
    (implicit = explicit)

let suites =
  [ ( "guard",
      [ Alcotest.test_case "scan classifies" `Quick test_scan_classifies;
        Alcotest.test_case "fail-fast surfaces Diverged" `Quick
          test_fail_fast_surfaces_diverged;
        Alcotest.test_case "skip-step continues" `Quick
          test_skip_step_continues;
        Alcotest.test_case "rollback-retry recovers" `Quick
          test_rollback_retry_recovers;
        Alcotest.test_case "rollback-retry reproducible" `Quick
          test_rollback_retry_reproducible;
        Alcotest.test_case "rollback reseeds deterministically" `Quick
          test_rollback_reseeds_deterministically;
        Alcotest.test_case "rollback gives up" `Quick
          test_rollback_gives_up_after_max_retries;
        Alcotest.test_case "store copy is deep" `Quick test_store_copy_is_deep;
        Alcotest.test_case "store restore" `Quick test_store_restore;
        Alcotest.test_case "save/load round-trip" `Quick
          test_store_save_load_roundtrip;
        Alcotest.test_case "load rejects garbage" `Quick
          test_store_load_rejects_garbage;
        Alcotest.test_case "optim reports skips" `Quick
          test_optim_reports_skips;
        Alcotest.test_case "optim clips global norm" `Quick
          test_optim_clips_by_global_norm;
        Alcotest.test_case "optim snapshot/restore" `Quick
          test_optim_snapshot_restore;
        Alcotest.test_case "guard transparent on clean runs" `Quick
          test_guard_default_transparent ] ) ]
