(* Unit and property tests for the tensor substrate. *)

let check_float = Alcotest.(check (float 1e-9))

let tensor_eq msg a b =
  Alcotest.(check bool) msg true (Tensor.approx_equal ~tol:1e-9 a b)

let test_scalar () =
  check_float "scalar roundtrip" 3.5 (Tensor.to_scalar (Tensor.scalar 3.5));
  Alcotest.(check bool) "is_scalar" true (Tensor.is_scalar (Tensor.scalar 1.))

let test_of_array_shape_mismatch () =
  Alcotest.check_raises "shape mismatch"
    (Tensor.Shape_error "of_array: 3 elements for shape [2; 2]") (fun () ->
      ignore (Tensor.of_array [| 2; 2 |] [| 1.; 2.; 3. |]))

let test_init_and_get () =
  let t = Tensor.init [| 2; 3 |] (fun ix -> float_of_int ((ix.(0) * 10) + ix.(1))) in
  check_float "get [0;0]" 0. (Tensor.get t [| 0; 0 |]);
  check_float "get [1;2]" 12. (Tensor.get t [| 1; 2 |]);
  check_float "get_flat 4" 11. (Tensor.get_flat t 4)

let test_eye () =
  let t = Tensor.eye 3 in
  check_float "diag" 1. (Tensor.get t [| 1; 1 |]);
  check_float "offdiag" 0. (Tensor.get t [| 0; 2 |]);
  check_float "trace-ish sum" 3. (Tensor.sum t)

let test_add_same_shape () =
  let a = Tensor.of_list1 [ 1.; 2.; 3. ] in
  let b = Tensor.of_list1 [ 10.; 20.; 30. ] in
  tensor_eq "add" (Tensor.of_list1 [ 11.; 22.; 33. ]) (Tensor.add a b)

let test_broadcast_scalar () =
  let a = Tensor.of_list2 [ [ 1.; 2. ]; [ 3.; 4. ] ] in
  let r = Tensor.mul a (Tensor.scalar 2.) in
  tensor_eq "scalar broadcast" (Tensor.of_list2 [ [ 2.; 4. ]; [ 6.; 8. ] ]) r

let test_broadcast_row () =
  let a = Tensor.of_list2 [ [ 1.; 2. ]; [ 3.; 4. ] ] in
  let row = Tensor.of_array [| 1; 2 |] [| 10.; 20. |] in
  let r = Tensor.add a row in
  tensor_eq "row broadcast" (Tensor.of_list2 [ [ 11.; 22. ]; [ 13.; 24. ] ]) r

let test_broadcast_col () =
  let a = Tensor.of_list2 [ [ 1.; 2. ]; [ 3.; 4. ] ] in
  let col = Tensor.of_array [| 2; 1 |] [| 10.; 20. |] in
  let r = Tensor.add a col in
  tensor_eq "col broadcast" (Tensor.of_list2 [ [ 11.; 12. ]; [ 23.; 24. ] ]) r

let test_broadcast_vec_vs_matrix () =
  (* A missing leading dim broadcasts: [2] + [3;2]. *)
  let v = Tensor.of_list1 [ 1.; 2. ] in
  let m = Tensor.of_list2 [ [ 0.; 0. ]; [ 1.; 1. ]; [ 2.; 2. ] ] in
  let r = Tensor.add v m in
  tensor_eq "vec vs matrix"
    (Tensor.of_list2 [ [ 1.; 2. ]; [ 2.; 3. ]; [ 3.; 4. ] ])
    r

let test_broadcast_incompatible () =
  let a = Tensor.of_list1 [ 1.; 2.; 3. ] in
  let b = Tensor.of_list1 [ 1.; 2. ] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Tensor.add a b);
       false
     with Tensor.Shape_error _ -> true)

let test_matmul_2x2 () =
  let a = Tensor.of_list2 [ [ 1.; 2. ]; [ 3.; 4. ] ] in
  let b = Tensor.of_list2 [ [ 5.; 6. ]; [ 7.; 8. ] ] in
  tensor_eq "matmul"
    (Tensor.of_list2 [ [ 19.; 22. ]; [ 43.; 50. ] ])
    (Tensor.matmul a b)

let test_matmul_mat_vec () =
  let a = Tensor.of_list2 [ [ 1.; 2. ]; [ 3.; 4. ] ] in
  let v = Tensor.of_list1 [ 1.; 1. ] in
  tensor_eq "mat-vec" (Tensor.of_list1 [ 3.; 7. ]) (Tensor.matmul a v);
  tensor_eq "vec-mat" (Tensor.of_list1 [ 4.; 6. ]) (Tensor.matmul v a)

let test_transpose () =
  let a = Tensor.of_list2 [ [ 1.; 2.; 3. ]; [ 4.; 5.; 6. ] ] in
  let at = Tensor.transpose a in
  Alcotest.(check (array int)) "shape" [| 3; 2 |] (Tensor.shape at);
  check_float "element" 6. (Tensor.get at [| 2; 1 |])

let test_sum_axis () =
  let a = Tensor.of_list2 [ [ 1.; 2.; 3. ]; [ 4.; 5.; 6. ] ] in
  tensor_eq "axis 0" (Tensor.of_list1 [ 5.; 7.; 9. ]) (Tensor.sum_axis 0 a);
  tensor_eq "axis 1" (Tensor.of_list1 [ 6.; 15. ]) (Tensor.sum_axis 1 a);
  tensor_eq "mean axis 0" (Tensor.of_list1 [ 2.5; 3.5; 4.5 ])
    (Tensor.mean_axis 0 a)

let test_logsumexp_stability () =
  let a = Tensor.of_list1 [ 1000.; 1000. ] in
  check_float "lse large" (1000. +. Float.log 2.) (Tensor.logsumexp a);
  let b = Tensor.of_list1 [ Float.neg_infinity; Float.neg_infinity ] in
  Alcotest.(check bool) "lse -inf" true
    (Tensor.logsumexp b = Float.neg_infinity)

let test_softmax () =
  let a = Tensor.of_list1 [ 1.; 2.; 3. ] in
  let s = Tensor.softmax a in
  check_float "sums to one" 1. (Tensor.sum s);
  Alcotest.(check bool) "monotone" true
    (Tensor.get_flat s 0 < Tensor.get_flat s 1
    && Tensor.get_flat s 1 < Tensor.get_flat s 2)

let test_structural () =
  let a = Tensor.of_list2 [ [ 1.; 2. ]; [ 3.; 4. ] ] in
  let b = Tensor.of_list2 [ [ 5.; 6. ] ] in
  let c = Tensor.concat0 [ a; b ] in
  Alcotest.(check (array int)) "concat shape" [| 3; 2 |] (Tensor.shape c);
  tensor_eq "slice" (Tensor.of_list1 [ 5.; 6. ]) (Tensor.slice0 c 2);
  let s = Tensor.stack0 [ Tensor.of_list1 [ 1.; 2. ]; Tensor.of_list1 [ 3.; 4. ] ] in
  Alcotest.(check (array int)) "stack shape" [| 2; 2 |] (Tensor.shape s);
  tensor_eq "take_rows" (Tensor.of_list2 [ [ 5.; 6. ]; [ 1.; 2. ] ])
    (Tensor.take_rows c [ 2; 0 ])

let test_reshape () =
  let a = Tensor.of_list1 [ 1.; 2.; 3.; 4. ] in
  let m = Tensor.reshape [| 2; 2 |] a in
  check_float "reshaped elt" 3. (Tensor.get m [| 1; 0 |]);
  tensor_eq "flatten roundtrip" a (Tensor.flatten m)

let test_clip_and_finite () =
  let a = Tensor.of_list1 [ -5.; 0.5; 5. ] in
  tensor_eq "clip" (Tensor.of_list1 [ 0.; 0.5; 1. ])
    (Tensor.clip ~min:0. ~max:1. a);
  Alcotest.(check bool) "finite" true (Tensor.all_finite a);
  Alcotest.(check bool) "nan detected" false
    (Tensor.all_finite (Tensor.of_list1 [ 1.; Float.nan ]))

let test_dot_outer () =
  let a = Tensor.of_list1 [ 1.; 2.; 3. ] in
  let b = Tensor.of_list1 [ 4.; 5.; 6. ] in
  check_float "dot" 32. (Tensor.dot a b);
  tensor_eq "outer"
    (Tensor.of_list2 [ [ 4.; 5.; 6. ]; [ 8.; 10.; 12. ]; [ 12.; 15.; 18. ] ])
    (Tensor.outer a b)

let test_argmax () =
  Alcotest.(check int) "argmax" 2
    (Tensor.argmax (Tensor.of_list1 [ 1.; 0.; 7.; 3. ]))

(* Property tests *)

let small_shape =
  QCheck.Gen.(oneofl [ [||]; [| 3 |]; [| 2; 3 |]; [| 2; 2; 2 |] ])

let tensor_gen =
  QCheck.Gen.(
    small_shape >>= fun shape ->
    let n = Array.fold_left ( * ) 1 shape in
    array_size (return n) (float_range (-10.) 10.) >|= fun data ->
    Tensor.of_array shape data)

let arb_tensor =
  QCheck.make ~print:Tensor.to_string tensor_gen

let prop_add_commutative =
  QCheck.Test.make ~name:"add commutative" ~count:100
    (QCheck.pair arb_tensor arb_tensor)
    (fun (a, b) ->
      try Tensor.approx_equal (Tensor.add a b) (Tensor.add b a)
      with Tensor.Shape_error _ -> QCheck.assume_fail ())

let prop_sum_axis_total =
  QCheck.Test.make ~name:"sum_axis preserves total" ~count:100 arb_tensor
    (fun t ->
      if Tensor.rank t = 0 then true
      else
        Float.abs (Tensor.sum (Tensor.sum_axis 0 t) -. Tensor.sum t) < 1e-6)

let prop_reshape_roundtrip =
  QCheck.Test.make ~name:"reshape flat roundtrip" ~count:100 arb_tensor
    (fun t -> Tensor.approx_equal (Tensor.reshape (Tensor.shape t) (Tensor.flatten t)) t)

let prop_logsumexp_vs_naive =
  QCheck.Test.make ~name:"logsumexp matches naive" ~count:100 arb_tensor
    (fun t ->
      if Tensor.size t = 0 then true
      else
        let naive = Float.log (Tensor.sum (Tensor.exp t)) in
        Float.abs (Tensor.logsumexp t -. naive) < 1e-6)

let prop_transpose_involution =
  QCheck.Test.make ~name:"transpose involution" ~count:100 arb_tensor
    (fun t ->
      if Tensor.rank t <> 2 then true
      else Tensor.approx_equal (Tensor.transpose (Tensor.transpose t)) t)

let prop_matmul_identity =
  QCheck.Test.make ~name:"matmul by identity" ~count:100 arb_tensor (fun t ->
      if Tensor.rank t <> 2 then true
      else
        let n = (Tensor.shape t).(1) in
        Tensor.approx_equal ~tol:1e-9 (Tensor.matmul t (Tensor.eye n)) t)

let prop_clip_never_increases_norm =
  QCheck.Test.make ~name:"clip_by_global_norm never increases norm" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 5) arb_tensor)
        (float_range 0.01 20.))
    (fun (ts, max_norm) ->
      let before = Tensor.global_norm ts in
      let clipped = Tensor.clip_by_global_norm ~max_norm ts in
      let after = Tensor.global_norm clipped in
      (* Never increases, and lands within max_norm (up to rounding). *)
      after <= before +. 1e-9 && after <= max_norm *. (1. +. 1e-9))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_add_commutative; prop_sum_axis_total; prop_reshape_roundtrip;
      prop_logsumexp_vs_naive; prop_transpose_involution; prop_matmul_identity;
      prop_clip_never_increases_norm ]

let suites =
  [ ( "tensor",
      [ Alcotest.test_case "scalar" `Quick test_scalar;
        Alcotest.test_case "of_array mismatch" `Quick
          test_of_array_shape_mismatch;
        Alcotest.test_case "init/get" `Quick test_init_and_get;
        Alcotest.test_case "eye" `Quick test_eye;
        Alcotest.test_case "add same shape" `Quick test_add_same_shape;
        Alcotest.test_case "broadcast scalar" `Quick test_broadcast_scalar;
        Alcotest.test_case "broadcast row" `Quick test_broadcast_row;
        Alcotest.test_case "broadcast col" `Quick test_broadcast_col;
        Alcotest.test_case "broadcast vec vs matrix" `Quick
          test_broadcast_vec_vs_matrix;
        Alcotest.test_case "broadcast incompatible" `Quick
          test_broadcast_incompatible;
        Alcotest.test_case "matmul 2x2" `Quick test_matmul_2x2;
        Alcotest.test_case "matmul mat-vec" `Quick test_matmul_mat_vec;
        Alcotest.test_case "transpose" `Quick test_transpose;
        Alcotest.test_case "sum_axis" `Quick test_sum_axis;
        Alcotest.test_case "logsumexp stability" `Quick
          test_logsumexp_stability;
        Alcotest.test_case "softmax" `Quick test_softmax;
        Alcotest.test_case "structural" `Quick test_structural;
        Alcotest.test_case "reshape" `Quick test_reshape;
        Alcotest.test_case "clip/finite" `Quick test_clip_and_finite;
        Alcotest.test_case "dot/outer" `Quick test_dot_outer;
        Alcotest.test_case "argmax" `Quick test_argmax ]
      @ qcheck_cases ) ]
