(* The batched execution engine: rank-lifted primitives (Dist.batched),
   batched ADEV sites, the plate lowering, the vectorized whole-program
   evaluators, and the tensor/AD kernels they rest on (logsumexp_axis /
   sum_axis).

   The load-bearing invariant checked throughout: batched row [i] is
   bit-for-bit the scalar draw under [Prng.fold_in key i], so
   batchability is a performance property, never a semantic one. *)

let k0 = Prng.key 4242
let primal a = Tensor.to_scalar (Ad.value a)

(* Extract an ADEV computation's value through the continuation. *)
let run_adev ?(key = k0) m =
  let result = ref None in
  ignore
    (Adev.run m key (fun r ->
         result := Some r;
         Ad.scalar 0.));
  Option.get !result

let check_close name ~tol expected got =
  Alcotest.(check bool)
    (Printf.sprintf "%s: |%.10g - %.10g| <= %g" name expected got tol)
    true
    (Float.abs (expected -. got) <= tol)

(* Strip the batched payload: forces every sequential fallback path. *)
let strip d = { d with Dist.batched = None }

(* ------------------------------------------------------------------ *)
(* Dist layer: batched samplers and densities vs. stacked scalar ones  *)

(* Real-carrier scalar primitives with batched payloads, parameterized
   by two floats in (0.3, 2.5) so every family accepts them. *)
let scalar_families (a, b) =
  let a' = Ad.scalar a and b' = Ad.scalar b in
  [ ("normal", Dist.normal_reparam a' b');
    ("normal_reinforce", Dist.normal_reinforce a' b');
    ("uniform", Dist.uniform (-.a) b);
    ("beta", Dist.beta_reinforce a' b');
    ("gamma", Dist.gamma_reinforce a');
    ("laplace", Dist.laplace_reparam a' b');
    ("logistic", Dist.logistic_reparam a' b');
    ("lognormal", Dist.lognormal_reparam (Ad.scalar (a -. 1.)) b');
    ("exponential", Dist.exponential_reparam a');
    ("student_t", Dist.student_t_reinforce (Ad.scalar (a +. 2.)));
    ("scaled_beta", Dist.scaled_beta_reinforce ~lo:(-1.) ~hi:2. a' b') ]

let prop_sample_n_rows_exact =
  QCheck.Test.make ~name:"sample_n row i = scalar draw under fold_in key i"
    ~count:40
    QCheck.(pair small_int (pair (float_range 0.3 2.5) (float_range 0.3 2.5)))
    (fun (seed, params) ->
      let key = Prng.key (seed + 1) in
      let n = 1 + (seed mod 7) in
      List.for_all
        (fun (_name, d) ->
          let stacked = Dist.sample_n d key n in
          List.for_all
            (fun i ->
              let row = primal (Ad.slice0 stacked i) in
              let scalar = primal (d.Dist.sample (Prng.fold_in key i)) in
              Float.equal row scalar)
            (List.init n Fun.id))
        (scalar_families params))

let prop_batched_density_matches_stacked =
  QCheck.Test.make
    ~name:"log_density_batched = stacked scalar log densities" ~count:40
    QCheck.(pair small_int (pair (float_range 0.3 2.5) (float_range 0.3 2.5)))
    (fun (seed, params) ->
      let key = Prng.key (seed + 101) in
      let n = 1 + (seed mod 7) in
      List.for_all
        (fun (name, d) ->
          let rows = List.init n (fun i -> d.Dist.sample (Prng.fold_in key i)) in
          let stacked = Ad.stack0 rows in
          let lp = Dist.log_density_batched d stacked in
          Ad.shape lp = [| n |]
          && List.for_all
               (fun i ->
                 let want = primal (d.Dist.log_density (List.nth rows i)) in
                 let got = Tensor.get_flat (Ad.value lp) i in
                 Float.abs (want -. got) <= 1e-9 *. (1. +. Float.abs want)
                 || failwith (Printf.sprintf "%s row %d: %g vs %g" name i want got))
               (List.init n Fun.id))
        (scalar_families params))

let test_mv_normal_diag_batched () =
  let dim = 3 and n = 5 in
  let mean = Ad.const (Tensor.of_array [| dim |] [| 0.2; -0.7; 1.1 |]) in
  let std = Ad.const (Tensor.of_array [| dim |] [| 0.5; 1.3; 0.9 |]) in
  let d = Dist.mv_normal_diag_reparam mean std in
  let stacked = Dist.sample_n d k0 n in
  Alcotest.(check (array int)) "stacked shape" [| n; dim |] (Ad.shape stacked);
  let lp = Dist.log_density_batched d stacked in
  Alcotest.(check (array int)) "density shape" [| n |] (Ad.shape lp);
  for i = 0 to n - 1 do
    let row = Ad.slice0 stacked i in
    let want = primal (d.Dist.log_density row) in
    check_close (Printf.sprintf "mv row %d" i) ~tol:1e-9 want
      (Tensor.get_flat (Ad.value lp) i);
    let scalar = d.Dist.sample (Prng.fold_in k0 i) in
    Alcotest.(check (array (float 0.)))
      (Printf.sprintf "mv row %d draw" i)
      (Tensor.to_array (Ad.value scalar))
      (Tensor.to_array (Ad.value row))
  done

let test_mv_normal_diag_data_indexed () =
  (* Rank-2 parameters with leading dim n: row i uses its own rows. *)
  let n = 4 and dim = 2 in
  let mean =
    Ad.const
      (Tensor.init [| n; dim |] (fun ix ->
           float_of_int ((ix.(0) * 2) + ix.(1)) /. 3.))
  in
  let std = Ad.const (Tensor.full [| n; dim |] 0.7) in
  let d = Dist.mv_normal_diag_reparam mean std in
  let stacked = Dist.sample_n d k0 n in
  let lp = Dist.log_density_batched d stacked in
  for i = 0 to n - 1 do
    let row_d =
      Dist.mv_normal_diag_reparam (Ad.slice0 mean i) (Ad.slice0 std i)
    in
    let scalar = row_d.Dist.sample (Prng.fold_in k0 i) in
    Alcotest.(check (array (float 0.)))
      (Printf.sprintf "data-indexed row %d draw" i)
      (Tensor.to_array (Ad.value scalar))
      (Tensor.to_array (Ad.value (Ad.slice0 stacked i)));
    check_close
      (Printf.sprintf "data-indexed row %d density" i)
      ~tol:1e-9
      (primal (row_d.Dist.log_density (Ad.slice0 stacked i)))
      (Tensor.get_flat (Ad.value lp) i)
  done

let test_iid_joint_density () =
  let n = 6 in
  let d1 = Dist.normal_reparam (Ad.scalar 0.4) (Ad.scalar 1.1) in
  let d = Dist.iid n d1 in
  let x = d.Dist.sample k0 in
  Alcotest.(check (array int)) "iid sample shape" [| n |] (Ad.shape x);
  let want =
    List.fold_left ( +. ) 0.
      (List.init n (fun i -> primal (d1.Dist.log_density (Ad.slice0 x i))))
  in
  check_close "iid joint = sum of rows" ~tol:1e-9 want
    (primal (d.Dist.log_density x));
  for i = 0 to n - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "iid row %d" i)
      true
      (Float.equal
         (Tensor.get_flat (Ad.value x) i)
         (primal (d1.Dist.sample (Prng.fold_in k0 i))))
  done

(* ------------------------------------------------------------------ *)
(* Tensor / AD kernels: logsumexp_axis and sum_axis                    *)

let fd_grad f t =
  let eps = 1e-5 in
  let arr = Tensor.to_array t in
  Array.mapi
    (fun i _ ->
      let bump d =
        let a = Array.copy arr in
        a.(i) <- a.(i) +. d;
        f (Tensor.of_array (Tensor.shape t) a)
      in
      (bump eps -. bump (-.eps)) /. (2. *. eps))
    arr

let ad_grad f t =
  let leaf = Ad.const t in
  let out = f leaf in
  Ad.backward out;
  Tensor.to_array (Ad.grad leaf)

let grad_check name f_t f_ad t =
  let fd = fd_grad f_t t in
  let ad = ad_grad f_ad t in
  Array.iteri
    (fun i want ->
      check_close (Printf.sprintf "%s dcell %d" name i) ~tol:1e-4 want ad.(i))
    fd

let test_logsumexp_axis_values () =
  let t = Tensor.of_array [| 2; 3 |] [| 0.1; -1.2; 2.3; 0.7; 0.4; -0.9 |] in
  let l0 = Tensor.logsumexp_axis 0 t in
  Alcotest.(check (array int)) "axis0 shape" [| 3 |] (Tensor.shape l0);
  for j = 0 to 2 do
    let want =
      Float.log
        (Float.exp (Tensor.get_flat t j)
        +. Float.exp (Tensor.get_flat t (3 + j)))
    in
    check_close (Printf.sprintf "lse0 %d" j) ~tol:1e-12 want
      (Tensor.get_flat l0 j)
  done;
  let l1 = Tensor.logsumexp_axis 1 t in
  Alcotest.(check (array int)) "axis1 shape" [| 2 |] (Tensor.shape l1);
  (* Stability: huge magnitudes must not overflow. *)
  let big = Tensor.of_array [| 2 |] [| 1000.; 1000.5 |] in
  let l = Tensor.get_flat (Tensor.logsumexp_axis 0 big) 0 in
  check_close "stable" ~tol:1e-9
    (1000.5 +. Float.log (1. +. Float.exp (-0.5)))
    l;
  (* All -inf stays -inf rather than NaN. *)
  let ninf = Tensor.full [| 3 |] Float.neg_infinity in
  Alcotest.(check bool) "neg_inf preserved" true
    (Tensor.get_flat (Tensor.logsumexp_axis 0 ninf) 0 = Float.neg_infinity)

let test_axis_reductions_grad () =
  let t = Tensor.of_array [| 2; 3 |] [| 0.1; -1.2; 2.3; 0.7; 0.4; -0.9 |] in
  List.iter
    (fun ax ->
      grad_check
        (Printf.sprintf "logsumexp_axis %d" ax)
        (fun t -> Tensor.sum (Tensor.logsumexp_axis ax t))
        (fun a -> Ad.sum (Ad.logsumexp_axis ax a))
        t;
      grad_check
        (Printf.sprintf "sum_axis %d (weighted)" ax)
        (fun t ->
          let s = Tensor.sum_axis ax t in
          let n = Array.fold_left ( * ) 1 (Tensor.shape s) in
          let acc = ref 0. in
          for i = 0 to n - 1 do
            acc := !acc +. (float_of_int (i + 1) *. Tensor.get_flat s i)
          done;
          !acc)
        (fun a ->
          let s = Ad.sum_axis ax a in
          let n = Array.fold_left ( * ) 1 (Ad.shape s) in
          let w =
            Ad.const (Tensor.init [| n |] (fun ix -> float_of_int (ix.(0) + 1)))
          in
          Ad.sum (Ad.mul w s))
        t)
    [ 0; 1 ]

let test_bernoulli_logits_scores_fused () =
  (* The fused kernel must agree with the compositional elementwise
     form under both broadcast patterns: stacked x / stacked logits,
     and shared (tail-only) x against stacked logits. *)
  let compositional l x =
    let open Ad.O in
    Ad.neg
      ((x * Ad.softplus (Ad.neg l)) + ((Ad.scalar 1. - x) * Ad.softplus l))
  in
  let logits =
    Ad.const
      (Tensor.of_array [| 3; 4 |]
         [| -2.3; 0.4; 1.7; -0.2; 35.; -31.; 0.; 5.5; -0.7; 2.2; -4.1; 0.9 |])
  in
  let x_full =
    Tensor.of_array [| 3; 4 |]
      [| 1.; 0.; 1.; 1.; 0.; 1.; 0.; 1.; 1.; 1.; 0.; 0. |]
  in
  let x_row = Tensor.of_array [| 4 |] [| 1.; 0.; 0.; 1. |] in
  List.iter
    (fun (tag, x) ->
      let fused = Tensor.bernoulli_logits_scores ~logits:(Ad.value logits) ~x in
      Alcotest.(check (array int)) (tag ^ " shape") [| 3 |] (Tensor.shape fused);
      let reference =
        Ad.value
          (Ad.sum_axis 1 (compositional logits (Ad.const x)))
      in
      for i = 0 to 2 do
        check_close
          (Printf.sprintf "%s row %d" tag i)
          ~tol:1e-9
          (Tensor.get_flat reference i)
          (Tensor.get_flat fused i)
      done)
    [ ("full x", x_full); ("shared x", x_row) ];
  (* Gradient of the fused op w.r.t. logits against finite differences
     (through a weighted row sum so every row's cotangent differs). *)
  grad_check "bernoulli_logits_scores"
    (fun l ->
      let s = Tensor.bernoulli_logits_scores ~logits:l ~x:x_full in
      (1. *. Tensor.get_flat s 0)
      +. (2. *. Tensor.get_flat s 1)
      +. (3. *. Tensor.get_flat s 2))
    (fun l ->
      let s = Ad.bernoulli_logits_scores ~x:x_full l in
      let w = Ad.const (Tensor.of_array [| 3 |] [| 1.; 2.; 3. |]) in
      Ad.sum (Ad.mul w s))
    (Tensor.of_array [| 3; 4 |]
       [| -2.3; 0.4; 1.7; -0.2; 3.5; -3.1; 0.; 5.5; -0.7; 2.2; -4.1; 0.9 |])

(* ------------------------------------------------------------------ *)
(* Adev layer: batched sites, tail-recursive replicate                 *)

let test_replicate_100k_primal () =
  (* Construction and the primal run are tail-recursive / CPS tail
     calls: 100k particles must not overflow the stack. *)
  let d = Dist.normal_reparam (Ad.scalar 0.) (Ad.scalar 1.) in
  let m =
    Adev.map
      (fun xs -> Ad.scalar (float_of_int (List.length xs)))
      (Adev.replicate 100_000 (Adev.sample d))
  in
  let v = Adev.estimate m k0 in
  Alcotest.(check (float 0.)) "100k particles collected" 100_000. v

let test_replicate_key_stream_unchanged () =
  (* The tail-recursive replicate must build the exact nested-bind term
     the historical direct recursion built: same splits, same element
     order. *)
  let rec replicate_ref n m =
    if n <= 0 then Adev.return []
    else
      Adev.bind m (fun x ->
          Adev.bind (replicate_ref (n - 1) m) (fun rest ->
              Adev.return (x :: rest)))
  in
  let d = Dist.normal_reparam (Ad.scalar 0.3) (Ad.scalar 1.4) in
  let sum xs = Ad.add_list xs in
  let a = Adev.estimate (Adev.map sum (Adev.replicate 17 (Adev.sample d))) k0 in
  let b = Adev.estimate (Adev.map sum (replicate_ref 17 (Adev.sample d))) k0 in
  Alcotest.(check (float 0.)) "same key stream" b a

let test_sample_batched_rows_and_refusal () =
  let d = Dist.normal_reparam (Ad.scalar 0.2) (Ad.scalar 0.9) in
  let n = 8 in
  let stacked = run_adev (Adev.sample_batched ~n d) in
  Alcotest.(check (array int)) "batched site shape" [| n |] (Ad.shape stacked);
  let r = match d.Dist.reparam with Some r -> r | None -> assert false in
  for i = 0 to n - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "site row %d" i)
      true
      (Float.equal
         (Tensor.get_flat (Ad.value stacked) i)
         (primal (r (Prng.fold_in k0 i))))
  done;
  (* ENUM cannot collapse to a tensor op: the site must refuse with
     Not_batchable before sampling, and or_else must recover. *)
  let enum = Dist.flip_enum (Ad.scalar 0.4) in
  let refused =
    try
      ignore (run_adev (Adev.sample_batched ~n:4 enum));
      false
    with Dist.Not_batchable _ -> true
  in
  Alcotest.(check bool) "enum refuses" true refused;
  let recovered =
    Adev.estimate
      (Adev.or_else
         (Adev.map (fun _ -> Ad.scalar 1.) (Adev.sample_batched ~n:4 enum))
         (Adev.return (Ad.scalar 2.)))
      k0
  in
  Alcotest.(check (float 0.)) "or_else recovers" 2. recovered

(* ------------------------------------------------------------------ *)
(* Gen layer: the plate lowering                                       *)

let plate_prog d n = Gen.plate ~n (fun _ -> Gen.sample d "x")

let test_plate_batched_trace_form () =
  let d = Dist.normal_reparam (Ad.scalar 0.1) (Ad.scalar 1.2) in
  let n = 5 in
  let zs, trace, _logw = run_adev (Gen.simulate (plate_prog d n)) in
  Alcotest.(check int) "array length" n (Array.length zs);
  Alcotest.(check int) "single plate address" 1 (Trace.size trace);
  Alcotest.(check bool) "bare address" true (Trace.mem "x" trace);
  Alcotest.(check (array int))
    "stacked value shape" [| n |]
    (Ad.shape (Trace.get_ad "x" trace))

let test_plate_sequential_matches_batched () =
  (* Same program, both lowerings, same key: bit-identical draws and
     fp-close log densities; sequential traces use suffixed slots. *)
  let d = Dist.normal_reparam (Ad.scalar 0.1) (Ad.scalar 1.2) in
  let n = 6 in
  let zb, tb, wb = run_adev (Gen.simulate (plate_prog d n)) in
  let zs, ts, ws = run_adev (Gen.simulate (plate_prog (strip d) n)) in
  Alcotest.(check int) "sequential trace size" n (Trace.size ts);
  Alcotest.(check bool) "suffixed slots" true
    (Trace.mem "x[0]" ts && Trace.mem (Printf.sprintf "x[%d]" (n - 1)) ts);
  for i = 0 to n - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "row %d bit-identical" i)
      true
      (Float.equal (primal zb.(i)) (primal zs.(i)));
    Alcotest.(check bool)
      (Printf.sprintf "slot %d value" i)
      true
      (Float.equal
         (Tensor.get_flat (Ad.value (Trace.get_ad "x" tb)) i)
         (primal (Trace.get_ad (Printf.sprintf "x[%d]" i) ts)))
  done;
  check_close "log densities agree" ~tol:1e-9 (primal ws) (primal wb)

let test_plate_density_cross_representation () =
  (* The density evaluator accepts both trace forms and scores them
     identically. *)
  let d = Dist.normal_reparam (Ad.scalar 0.1) (Ad.scalar 1.2) in
  let n = 4 in
  let _, tb, _ = run_adev (Gen.simulate (plate_prog d n)) in
  let _, ts, _ = run_adev (Gen.simulate (plate_prog (strip d) n)) in
  let score prog t = primal (run_adev (Gen.log_density prog t)) in
  let on_batched = score (plate_prog d n) tb in
  let on_suffixed = score (plate_prog d n) ts in
  let stripped_on_suffixed = score (plate_prog (strip d) n) ts in
  check_close "batched trace vs suffixed trace" ~tol:1e-9 on_batched
    on_suffixed;
  check_close "stripped evaluator agrees" ~tol:1e-9 on_batched
    stripped_on_suffixed

let test_plate_heterogeneous_falls_back () =
  (* Index-dependent bodies cannot batch: the plate must still run,
     sequentially, with per-index addresses. *)
  let prog =
    Gen.plate ~n:3 (fun i ->
        Gen.sample
          (Dist.normal_reparam (Ad.scalar (float_of_int i)) (Ad.scalar 1.))
          "y")
  in
  let _, trace, _ = run_adev (Gen.simulate prog) in
  Alcotest.(check int) "three slots" 3 (Trace.size trace);
  Alcotest.(check bool) "suffixed" true (Trace.mem "y[1]" trace)

let test_plate_sample_prior_row_discipline () =
  let d = Dist.normal_reparam (Ad.scalar (-0.3)) (Ad.scalar 0.8) in
  let n = 5 in
  let _, tb, wb = Gen.sample_prior (plate_prog d n) k0 in
  let _, ts, ws = Gen.sample_prior (plate_prog (strip d) n) k0 in
  Alcotest.(check int) "batched prior trace" 1 (Trace.size tb);
  Alcotest.(check int) "sequential prior trace" n (Trace.size ts);
  for i = 0 to n - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "prior row %d" i)
      true
      (Float.equal
         (Tensor.get_flat (Ad.value (Trace.get_ad "x" tb)) i)
         (primal (Trace.get_ad (Printf.sprintf "x[%d]" i) ts)))
  done;
  check_close "prior log densities agree" ~tol:1e-9 ws wb

(* ------------------------------------------------------------------ *)
(* Plated vs looped ELBO gradients                                     *)

let plated_elbo_gradient ~batched ~seed ~n =
  let key = Prng.key seed in
  let mu_q = Ad.scalar 0.45 and sig_q = Ad.scalar 0.85 in
  let prior_mu = Ad.scalar (-0.2) in
  let maybe d = if batched then d else strip d in
  let guide = plate_prog (maybe (Dist.normal_reparam mu_q sig_q)) n in
  let model =
    let open Gen.Syntax in
    let* zs =
      Gen.plate ~n (fun _ ->
          Gen.sample (maybe (Dist.normal_reparam prior_mu (Ad.scalar 1.3))) "x")
    in
    let zbar =
      Ad.scale (1. /. float_of_int n) (Ad.add_list (Array.to_list zs))
    in
    Gen.observe (Dist.normal_reparam zbar (Ad.scalar 0.7)) (Ad.scalar 0.4)
  in
  let objective =
    let open Adev.Syntax in
    let* _, trace, logq = Gen.simulate guide in
    let* logp = Gen.log_density model trace in
    Adev.return (Ad.sub logp logq)
  in
  let v, grads =
    Adev.grad
      ~params:[ ("mu_q", mu_q); ("sig_q", sig_q); ("prior_mu", prior_mu) ]
      objective key
  in
  (v, List.map (fun (name, g) -> (name, Tensor.to_scalar g)) grads)

let test_plated_vs_looped_elbo_gradients () =
  List.iter
    (fun seed ->
      List.iter
        (fun n ->
          let vb, gb = plated_elbo_gradient ~batched:true ~seed ~n in
          let vs, gs = plated_elbo_gradient ~batched:false ~seed ~n in
          check_close
            (Printf.sprintf "objective seed=%d n=%d" seed n)
            ~tol:1e-8 vs vb;
          List.iter2
            (fun (name, want) (name', got) ->
              Alcotest.(check string) "grad order" name name';
              check_close
                (Printf.sprintf "grad %s seed=%d n=%d" name seed n)
                ~tol:1e-8 want got)
            gs gb)
        [ 1; 4; 17 ])
    [ 0; 7; 23 ]

(* ------------------------------------------------------------------ *)
(* Vectorized whole-program evaluators and objectives                  *)

let toy_model =
  let open Gen.Syntax in
  let* z = Gen.sample (Dist.normal_reparam (Ad.scalar 0.) (Ad.scalar 1.)) "z" in
  Gen.observe (Dist.normal_reparam z (Ad.scalar 0.5)) (Ad.scalar 0.7)

let toy_guide mu =
  let open Gen.Syntax in
  let* _ = Gen.sample (Dist.normal_reparam mu (Ad.scalar 0.6)) "z" in
  Gen.return ()

let test_simulate_batched_shapes () =
  let n = 9 in
  let _, trace, logq =
    run_adev (Gen.simulate_batched ~n (toy_guide (Ad.scalar 0.3)))
  in
  Alcotest.(check (array int)) "logq vector" [| n |] (Ad.shape logq);
  Alcotest.(check (array int))
    "stacked site" [| n |]
    (Ad.shape (Trace.get_ad "z" trace));
  let logp = run_adev (Gen.log_density_batched ~n toy_model trace) in
  Alcotest.(check (array int)) "logp vector" [| n |] (Ad.shape logp);
  (* Each component scores that instance's scalar trace. *)
  let z = Trace.get_ad "z" trace in
  for i = 0 to n - 1 do
    let t1 = Trace.singleton "z" (Value.Real (Ad.slice0 z i)) in
    check_close
      (Printf.sprintf "instance %d" i)
      ~tol:1e-9
      (primal (run_adev (Gen.log_density toy_model t1)))
      (Tensor.get_flat (Ad.value logp) i)
  done

let test_iwelbo_batched_statistics () =
  (* Same estimator either way: means agree statistically, and the
     batched estimate is differentiable. *)
  let mu = Ad.scalar 0.3 in
  let est batched =
    Adev.estimate ~samples:2000
      (Objectives.iwelbo ~batched ~particles:8 ~model:toy_model
         ~guide:(toy_guide mu) ())
      k0
  in
  let seq = est false and bat = est true in
  Alcotest.(check bool)
    (Printf.sprintf "iwelbo means agree (%.3f vs %.3f)" seq bat)
    true
    (Float.abs (seq -. bat) < 0.05);
  let mu' = Ad.scalar 0.3 in
  let _, grads =
    Adev.grad ~params:[ ("mu", mu') ]
      (Objectives.iwelbo ~batched:true ~particles:8 ~model:toy_model
         ~guide:(toy_guide mu') ())
      k0
  in
  Alcotest.(check bool) "batched iwelbo grad finite" true
    (Float.is_finite (Tensor.to_scalar (List.assoc "mu" grads)))

let test_iwelbo_batched_fallback () =
  (* An ENUM guide cannot rank-lift: ~batched:true must silently fall
     back to the sequential construction under the same key. *)
  let guide =
    let open Gen.Syntax in
    let* _ = Gen.sample (Dist.flip_enum (Ad.scalar 0.4)) "b" in
    Gen.return ()
  in
  let model =
    let open Gen.Syntax in
    let* b = Gen.sample (Dist.flip_enum (Ad.scalar 0.5)) "b" in
    ignore b;
    Gen.return ()
  in
  let v b =
    Adev.estimate (Objectives.iwelbo ~batched:b ~particles:4 ~model ~guide ()) k0
  in
  Alcotest.(check (float 0.)) "fallback = sequential" (v false) (v true)

let test_elbo_batched_vector () =
  (* Data-indexed guide parameters: instance i draws from its own row;
     the vectorized ELBO is an [n]-vector of finite per-instance
     terms. *)
  let n = 5 in
  let mu =
    Ad.const (Tensor.init [| n; 1 |] (fun ix -> 0.1 *. float_of_int ix.(0)))
  in
  let std = Ad.const (Tensor.full [| n; 1 |] 0.8) in
  let model =
    let open Gen.Syntax in
    let* z =
      Gen.sample
        (Dist.mv_normal_diag_reparam
           (Ad.const (Tensor.zeros [| 1 |]))
           (Ad.const (Tensor.ones [| 1 |])))
        "z"
    in
    Gen.observe
      (Dist.mv_normal_diag_reparam z (Ad.const (Tensor.full [| 1 |] 0.5)))
      (Ad.const (Tensor.full [| 1 |] 0.3))
  in
  let guide =
    let open Gen.Syntax in
    let* _ = Gen.sample (Dist.mv_normal_diag_reparam mu std) "z" in
    Gen.return ()
  in
  let vec = run_adev (Objectives.elbo_batched ~n ~model ~guide) in
  Alcotest.(check (array int)) "elbo vector shape" [| n |] (Ad.shape vec);
  Array.iter
    (fun v -> Alcotest.(check bool) "component finite" true (Float.is_finite v))
    (Tensor.to_array (Ad.value vec))

let test_fit_batched_smoke () =
  let store = Store.create () in
  Store.ensure store "tb.mu" (fun () -> Tensor.scalar 0.1);
  let optim = Optim.adam ~lr:1e-2 () in
  let reports =
    Train.fit_batched ~store ~optim ~steps:3
      ~objective:(fun frame _step ->
        let mu = Store.Frame.get frame "tb.mu" in
        (4, Objectives.elbo_batched ~n:4 ~model:toy_model ~guide:(toy_guide mu)))
      k0
  in
  Alcotest.(check int) "three committed steps" 3 (List.length reports);
  List.iter
    (fun r ->
      Alcotest.(check bool) "objective finite" true
        (Float.is_finite r.Train.objective))
    reports

(* ------------------------------------------------------------------ *)
(* Case studies: VAE / CVAE batched paths                              *)

let test_vae_looped_matches_batched_elbo () =
  let store = Store.create () in
  Vae.register store (Prng.key 7);
  let images, _ = Data.digit_batch (Prng.key 8) 4 in
  let frame = Store.Frame.make store in
  let batched =
    Adev.estimate ~samples:300 (Vae.elbo_per_datum frame images) k0
  in
  let looped =
    Adev.estimate ~samples:300 (Vae.elbo_per_datum_looped frame images) k0
  in
  Alcotest.(check bool)
    (Printf.sprintf "vae elbo agree (%.2f vs %.2f)" batched looped)
    true
    (Float.abs (batched -. looped) <= 0.05 *. (1. +. Float.abs batched))

let test_cvae_elbo_batch_runs () =
  let store = Store.create () in
  Cvae.register store (Prng.key 9);
  let images, _ = Data.digit_batch (Prng.key 10) 3 in
  let rows =
    List.init 3 (fun i ->
        let img = Tensor.slice0 images i in
        ( Tensor.flatten (Data.quadrant img Cvae.observed_quadrant),
          Data.without_quadrant img Cvae.observed_quadrant ))
  in
  let inputs = Tensor.stack0 (List.map fst rows) in
  let targets = Tensor.stack0 (List.map snd rows) in
  let frame = Store.Frame.make store in
  let vec = run_adev (Cvae.elbo_batch frame inputs targets) in
  Alcotest.(check (array int)) "cvae elbo vector" [| 3 |] (Ad.shape vec);
  Array.iter
    (fun v ->
      Alcotest.(check bool) "cvae component finite" true (Float.is_finite v))
    (Tensor.to_array (Ad.value vec))

(* ------------------------------------------------------------------ *)
(* Analyzer: PV210 / PV211                                             *)

let test_check_plate_shape_mismatch () =
  let prog =
    Gen.plate ~n:4 (fun i ->
        let dim = if i = 0 then 2 else 3 in
        Gen.sample
          (Dist.mv_normal_diag_reparam
             (Ad.const (Tensor.zeros [| dim |]))
             (Ad.const (Tensor.ones [| dim |])))
          "z")
  in
  let report = Check.analyze (Check.Program (Gen.Packed prog)) in
  Alcotest.(check bool) "PV210 reported" true
    (List.exists (fun d -> d.Check.code = "PV210") report.Check.diagnostics)

let test_check_plate_escape () =
  let prog =
    let open Gen.Syntax in
    let* _ =
      Gen.sample (Dist.normal_reparam (Ad.scalar 0.) (Ad.scalar 1.)) "z"
    in
    let* _ =
      Gen.plate ~n:3 (fun _ ->
          Gen.sample (Dist.normal_reparam (Ad.scalar 0.) (Ad.scalar 1.)) "z")
    in
    Gen.return ()
  in
  let report = Check.analyze (Check.Program (Gen.Packed prog)) in
  Alcotest.(check bool) "PV211 reported" true
    (List.exists (fun d -> d.Check.code = "PV211") report.Check.diagnostics)

let test_check_plate_clean () =
  let prog = plate_prog (Dist.normal_reparam (Ad.scalar 0.) (Ad.scalar 1.)) 4 in
  let report = Check.analyze (Check.Program (Gen.Packed prog)) in
  Alcotest.(check bool) "clean plate has no errors" true
    (not (Check.has_errors report))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_sample_n_rows_exact; prop_batched_density_matches_stacked ]

let suites =
  [ ( "batched",
      [ Alcotest.test_case "mv_normal_diag batched" `Quick
          test_mv_normal_diag_batched;
        Alcotest.test_case "mv_normal_diag data-indexed" `Quick
          test_mv_normal_diag_data_indexed;
        Alcotest.test_case "iid joint density" `Quick test_iid_joint_density;
        Alcotest.test_case "logsumexp_axis values" `Quick
          test_logsumexp_axis_values;
        Alcotest.test_case "axis reduction gradients" `Quick
          test_axis_reductions_grad;
        Alcotest.test_case "bernoulli_logits_scores fused" `Quick
          test_bernoulli_logits_scores_fused;
        Alcotest.test_case "replicate 100k primal" `Quick
          test_replicate_100k_primal;
        Alcotest.test_case "replicate key stream" `Quick
          test_replicate_key_stream_unchanged;
        Alcotest.test_case "sample_batched rows + refusal" `Quick
          test_sample_batched_rows_and_refusal;
        Alcotest.test_case "plate batched trace form" `Quick
          test_plate_batched_trace_form;
        Alcotest.test_case "plate sequential = batched" `Quick
          test_plate_sequential_matches_batched;
        Alcotest.test_case "plate density cross-representation" `Quick
          test_plate_density_cross_representation;
        Alcotest.test_case "plate heterogeneous fallback" `Quick
          test_plate_heterogeneous_falls_back;
        Alcotest.test_case "plate sample_prior rows" `Quick
          test_plate_sample_prior_row_discipline;
        Alcotest.test_case "plated vs looped ELBO grads" `Quick
          test_plated_vs_looped_elbo_gradients;
        Alcotest.test_case "simulate_batched shapes" `Quick
          test_simulate_batched_shapes;
        Alcotest.test_case "iwelbo batched statistics" `Slow
          test_iwelbo_batched_statistics;
        Alcotest.test_case "iwelbo batched fallback" `Quick
          test_iwelbo_batched_fallback;
        Alcotest.test_case "elbo_batched vector" `Quick test_elbo_batched_vector;
        Alcotest.test_case "fit_batched smoke" `Quick test_fit_batched_smoke;
        Alcotest.test_case "vae looped vs batched" `Slow
          test_vae_looped_matches_batched_elbo;
        Alcotest.test_case "cvae elbo_batch" `Quick test_cvae_elbo_batch_runs;
        Alcotest.test_case "PV210 plate shape" `Quick
          test_check_plate_shape_mismatch;
        Alcotest.test_case "PV211 plate escape" `Quick test_check_plate_escape;
        Alcotest.test_case "clean plate" `Quick test_check_plate_clean ]
      @ qcheck_cases ) ]
