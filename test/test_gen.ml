(* Tests for the generative language: the sim and density
   transformations (Theorems 4.2 / 4.4), trace semantics, the runtime
   smoothness guard, and the full-system marginal / normalize constructs
   (Appendix A). *)

let k0 = Prng.key 2024

let check_close name ~tol expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %g, got %g (tol %g)" name expected actual tol

let primal a = Tensor.to_scalar (Ad.value a)

(* Extract a deterministic Adev value (programs without stochastic
   densities and without enumeration). *)
let run_det m key =
  let result = ref None in
  let (_ : Ad.t) =
    Adev.run m key (fun x ->
        result := Some x;
        Ad.scalar 0.)
  in
  Option.get !result

let log_normal x mu sigma =
  (-0.5 *. (((x -. mu) /. sigma) ** 2.))
  -. Float.log sigma
  -. (0.5 *. Float.log (2. *. Float.pi))

(* A two-site program: x ~ N(0,1); b ~ flip(0.5 + 0.1 tanh x)... keep it
   simple: b ~ flip(0.3); observe N(x, 1) at 0.7. *)
let simple_prog =
  let open Gen.Syntax in
  let* x = Gen.sample (Dist.normal_reinforce (Ad.scalar 0.) (Ad.scalar 1.)) "x" in
  let* b = Gen.sample (Dist.flip_reinforce (Ad.scalar 0.3)) "b" in
  let* () = Gen.observe (Dist.normal_reinforce x (Ad.scalar 1.)) (Ad.scalar 0.7) in
  Gen.return (x, b)

let test_sample_prior_trace () =
  let (x, b), trace, logd = Gen.sample_prior simple_prog k0 in
  Alcotest.(check (list string)) "addresses" [ "b"; "x" ] (Trace.keys trace);
  Alcotest.(check (float 0.)) "return matches trace" (primal x)
    (Trace.get_float "x" trace);
  Alcotest.(check bool) "bool stored" true (Trace.get_bool "b" trace = b);
  (* Log density = prior terms + likelihood. *)
  let xv = primal x in
  let expected =
    log_normal xv 0. 1.
    +. Float.log (if b then 0.3 else 0.7)
    +. log_normal 0.7 xv 1.
  in
  check_close "prior log density" ~tol:1e-9 expected logd

let test_simulate_weight_matches_density () =
  (* sim's reported density equals density re-evaluated at its trace
     (the spec of Theorem 4.4). *)
  let (_, trace, w) = run_det (Gen.simulate simple_prog) k0 in
  let w' = run_det (Gen.log_density simple_prog trace) (Prng.key 5) in
  check_close "sim weight = density of trace" ~tol:1e-9 (primal w) (primal w')

let test_density_closed_form () =
  let trace =
    Trace.of_list
      [ ("x", Value.real 0.4); ("b", Value.Bool true) ]
  in
  let w = run_det (Gen.log_density simple_prog trace) k0 in
  let expected =
    log_normal 0.4 0. 1. +. Float.log 0.3 +. log_normal 0.7 0.4 1.
  in
  check_close "density closed form" ~tol:1e-9 expected (primal w)

let test_density_missing_address () =
  let trace = Trace.of_list [ ("x", Value.real 0.4) ] in
  let w = run_det (Gen.log_density simple_prog trace) k0 in
  Alcotest.(check bool) "missing address -> -inf" true
    (primal w = Float.neg_infinity)

let test_density_extra_address () =
  let trace =
    Trace.of_list
      [ ("x", Value.real 0.4); ("b", Value.Bool true);
        ("junk", Value.real 1.) ]
  in
  let w = run_det (Gen.log_density simple_prog trace) k0 in
  Alcotest.(check bool) "leftover remainder -> -inf" true
    (primal w = Float.neg_infinity);
  (* But the prefix variant ignores the leftover. *)
  let w' = run_det (Gen.log_density_prefix simple_prog trace) k0 in
  Alcotest.(check bool) "prefix ignores remainder" true
    (Float.is_finite (primal w'))

let test_density_wrong_type () =
  let trace =
    Trace.of_list [ ("x", Value.Bool true); ("b", Value.Bool true) ]
  in
  let w = run_det (Gen.log_density simple_prog trace) k0 in
  Alcotest.(check bool) "type mismatch -> -inf" true
    (primal w = Float.neg_infinity)

let test_duplicate_address_raises () =
  let open Gen.Syntax in
  let bad =
    let* _ = Gen.sample (Dist.normal_reinforce (Ad.scalar 0.) (Ad.scalar 1.)) "x" in
    let* y = Gen.sample (Dist.normal_reinforce (Ad.scalar 0.) (Ad.scalar 1.)) "x" in
    Gen.return y
  in
  Alcotest.(check bool) "duplicate raises" true
    (try
       ignore (Gen.sample_prior bad k0);
       false
     with Trace.Duplicate_address "x" -> true)

let test_observe_scores () =
  (* E (sim prog >> return 1) where prog observes likelihood w gives w:
     scoring reweights the expectation. *)
  let prog =
    Gen.observe (Dist.flip_reinforce (Ad.scalar 0.25)) true
  in
  let obj = Adev.map (fun (_, _, _) -> Ad.scalar 1.) (Gen.simulate prog) in
  check_close "observe reweights E" ~tol:1e-9 0.25 (Adev.estimate obj k0)

let test_rigid_guard () =
  let open Gen.Syntax in
  let smooth_branching =
    let* x = Gen.sample (Dist.normal_reparam (Ad.scalar 0.) (Ad.scalar 1.)) "x" in
    Gen.return (Gen.rigid x > 0.)
  in
  Alcotest.(check bool) "branching on REPARAM sample rejected" true
    (try
       ignore (run_det (Gen.simulate smooth_branching) k0);
       false
     with Value.Smoothness_error _ -> true);
  let rigid_branching =
    let* x = Gen.sample (Dist.normal_reinforce (Ad.scalar 0.) (Ad.scalar 1.)) "x" in
    Gen.return (Gen.rigid x > 0.)
  in
  let b, _, _ = run_det (Gen.simulate rigid_branching) k0 in
  Alcotest.(check bool) "branching on REINFORCE sample allowed" true
    (b = true || b = false)

let test_stochastic_control_flow () =
  (* Trace shape depends on a discrete choice; densities select the
     right branch. *)
  let open Gen.Syntax in
  let prog =
    let* b = Gen.sample (Dist.flip_reinforce (Ad.scalar 0.5)) "b" in
    if b then
      let* x = Gen.sample (Dist.normal_reinforce (Ad.scalar 5.) (Ad.scalar 1.)) "x" in
      Gen.return x
    else
      let* y = Gen.sample (Dist.uniform 0. 1.) "y" in
      Gen.return y
  in
  let trace_t = Trace.of_list [ ("b", Value.Bool true); ("x", Value.real 5.2) ] in
  let trace_f = Trace.of_list [ ("b", Value.Bool false); ("y", Value.real 0.5) ] in
  let w_t = primal (run_det (Gen.log_density prog trace_t) k0) in
  let w_f = primal (run_det (Gen.log_density prog trace_f) k0) in
  check_close "branch true" ~tol:1e-9
    (Float.log 0.5 +. log_normal 5.2 5. 1.)
    w_t;
  check_close "branch false" ~tol:1e-9 (Float.log 0.5) w_f;
  (* Mismatched shape: b = true but trace has y. *)
  let bad = Trace.of_list [ ("b", Value.Bool true); ("y", Value.real 0.5) ] in
  Alcotest.(check bool) "mismatched shape -> -inf" true
    (primal (run_det (Gen.log_density prog bad) k0) = Float.neg_infinity)

(* marginal: inner model v ~ N(0,1); x ~ N(v,1). Marginal on x is
   N(0, sqrt 2). With the exact posterior as proposal the importance
   weight is constant, so even 1 particle gives the exact density. *)
let marginal_inner =
  let open Gen.Syntax in
  let* v = Gen.sample (Dist.normal_reparam (Ad.scalar 0.) (Ad.scalar 1.)) "v" in
  let* _ = Gen.sample (Dist.normal_reparam v (Ad.scalar 1.)) "x" in
  Gen.return ()

let exact_posterior_proposal kept =
  let x = Trace.get_float "x" kept in
  Gen.Packed
    (Gen.sample
       (Dist.normal_reparam
          (Ad.scalar (x /. 2.))
          (Ad.scalar (1. /. Float.sqrt 2.)))
       "v")

let test_marginal_exact_proposal () =
  let prog =
    Gen.marginal ~keep:[ "x" ] marginal_inner
      (Gen.importance ~particles:1 exact_posterior_proposal)
  in
  let trace = Trace.of_list [ ("x", Value.real 0.3) ] in
  let w = run_det (Gen.log_density prog trace) k0 in
  check_close "marginal density exact" ~tol:1e-9
    (log_normal 0.3 0. (Float.sqrt 2.))
    (primal w)

let test_marginal_prior_proposal_unbiased () =
  (* With the prior as proposal, exp of the estimate is unbiased for the
     true marginal density: average many estimates in weight space. *)
  let prior_proposal _ =
    Gen.Packed
      (Gen.sample (Dist.normal_reparam (Ad.scalar 0.) (Ad.scalar 1.)) "v")
  in
  let prog =
    Gen.marginal ~keep:[ "x" ] marginal_inner
      (Gen.importance ~particles:1 prior_proposal)
  in
  let trace = Trace.of_list [ ("x", Value.real 0.3) ] in
  let n = 20000 in
  let total = ref 0. in
  Array.iter
    (fun key ->
      let w = run_det (Gen.log_density prog trace) key in
      total := !total +. Float.exp (primal w))
    (Prng.split_many k0 n);
  let mean = !total /. float_of_int n in
  check_close "marginal estimate unbiased" ~tol:0.01
    (Float.exp (log_normal 0.3 0. (Float.sqrt 2.)))
    mean

let test_marginal_sim_trace_shape () =
  let prog =
    Gen.marginal ~keep:[ "x" ] marginal_inner
      (Gen.importance ~particles:3 exact_posterior_proposal)
  in
  let kept, trace, logd = Gen.sample_prior prog k0 in
  Alcotest.(check (list string)) "kept addresses" [ "x" ] (Trace.keys trace);
  Alcotest.(check bool) "value is kept trace" true
    (Trace.equal_primal kept trace);
  (* Exact proposal: reported density is the true marginal. *)
  check_close "sim density exact" ~tol:1e-9
    (log_normal (Trace.get_float "x" trace) 0. (Float.sqrt 2.))
    logd

(* normalize: model x ~ N(0,1) with observe N(x,1) at y. Posterior is
   N(y/2, 1/sqrt 2). SIR with the exact posterior as proposal samples
   the posterior exactly. *)
let normalize_target y =
  let open Gen.Syntax in
  let* x = Gen.sample (Dist.normal_reparam (Ad.scalar 0.) (Ad.scalar 1.)) "x" in
  let* () = Gen.observe (Dist.normal_reparam x (Ad.scalar 1.)) (Ad.scalar y) in
  Gen.return x

let test_normalize_exact_proposal_samples_posterior () =
  let y = 1.0 in
  let proposal _ =
    Gen.Packed
      (Gen.sample
         (Dist.normal_reparam
            (Ad.scalar (y /. 2.))
            (Ad.scalar (1. /. Float.sqrt 2.)))
         "x")
  in
  let prog =
    Gen.normalize (normalize_target y) (Gen.importance ~particles:1 proposal)
  in
  let n = 4000 in
  let total = ref 0. in
  Array.iter
    (fun key ->
      let x, _, _ = Gen.sample_prior prog key in
      total := !total +. primal x)
    (Prng.split_many k0 n);
  check_close "SIR posterior mean" ~tol:0.05 (y /. 2.)
    (!total /. float_of_int n)

let test_normalize_sir_improves_with_particles () =
  (* With a broad prior proposal, more particles should move the SIR
     output distribution closer to the posterior mean. *)
  let y = 2.0 in
  let proposal _ =
    Gen.Packed
      (Gen.sample (Dist.normal_reparam (Ad.scalar 0.) (Ad.scalar 1.)) "x")
  in
  let mean_with particles seed =
    let prog =
      Gen.normalize (normalize_target y) (Gen.importance ~particles proposal)
    in
    let n = 3000 in
    let total = ref 0. in
    Array.iter
      (fun key ->
        let x, _, _ = Gen.sample_prior prog key in
        total := !total +. primal x)
      (Prng.split_many (Prng.key seed) n);
    !total /. float_of_int n
  in
  let m1 = mean_with 1 11 in
  let m30 = mean_with 30 12 in
  let posterior_mean = y /. 2. in
  Alcotest.(check bool)
    (Printf.sprintf "SIR-30 (%.3f) closer to %.1f than SIR-1 (%.3f)" m30
       posterior_mean m1)
    true
    (Float.abs (m30 -. posterior_mean) < Float.abs (m1 -. posterior_mean))

let test_normalize_density_estimate () =
  (* With the exact posterior proposal and 1 particle the density
     estimate is exact: log posterior density at x. *)
  let y = 1.0 in
  let proposal _ =
    Gen.Packed
      (Gen.sample
         (Dist.normal_reparam
            (Ad.scalar (y /. 2.))
            (Ad.scalar (1. /. Float.sqrt 2.)))
         "x")
  in
  let prog =
    Gen.normalize (normalize_target y) (Gen.importance ~particles:1 proposal)
  in
  let x = 0.8 in
  let trace = Trace.of_list [ ("x", Value.real x) ] in
  let w = run_det (Gen.log_density prog trace) k0 in
  check_close "normalize density" ~tol:1e-9
    (log_normal x (y /. 2.) (1. /. Float.sqrt 2.))
    (primal w)

(* Address-discipline corners of the density transformation: missing and
   leftover addresses through marginal/normalize sub-programs, and the
   prefix variant's contract (leftovers ignored, missing still fatal). *)

let test_density_prefix_missing_address () =
  (* log_density_prefix forgives leftovers, not missing addresses. *)
  let trace = Trace.of_list [ ("x", Value.real 0.4) ] in
  let w = run_det (Gen.log_density_prefix simple_prog trace) k0 in
  Alcotest.(check bool) "prefix missing address -> -inf" true
    (primal w = Float.neg_infinity)

let marginal_prog particles =
  Gen.marginal ~keep:[ "x" ] marginal_inner
    (Gen.importance ~particles exact_posterior_proposal)

let test_marginal_density_missing_kept () =
  let w = run_det (Gen.log_density (marginal_prog 1) Trace.empty) k0 in
  Alcotest.(check bool) "missing kept address -> -inf" true
    (primal w = Float.neg_infinity)

let test_marginal_density_leftover () =
  let trace =
    Trace.of_list [ ("x", Value.real 0.3); ("junk", Value.real 1.) ]
  in
  let w = run_det (Gen.log_density (marginal_prog 1) trace) k0 in
  Alcotest.(check bool) "leftover after marginal -> -inf" true
    (primal w = Float.neg_infinity);
  let w' = run_det (Gen.log_density_prefix (marginal_prog 1) trace) k0 in
  check_close "prefix ignores leftover around marginal" ~tol:1e-9
    (log_normal 0.3 0. (Float.sqrt 2.))
    (primal w')

let normalize_prog particles =
  let y = 1.0 in
  let proposal _ =
    Gen.Packed
      (Gen.sample
         (Dist.normal_reparam
            (Ad.scalar (y /. 2.))
            (Ad.scalar (1. /. Float.sqrt 2.)))
         "x")
  in
  Gen.normalize (normalize_target y) (Gen.importance ~particles proposal)

let test_normalize_density_missing () =
  let w = run_det (Gen.log_density (normalize_prog 1) Trace.empty) k0 in
  Alcotest.(check bool) "missing address under normalize -> not finite" true
    (not (Float.is_finite (primal w)))

let test_normalize_density_leftover () =
  let trace =
    Trace.of_list [ ("x", Value.real 0.8); ("junk", Value.real 1.) ]
  in
  let w = run_det (Gen.log_density (normalize_prog 1) trace) k0 in
  Alcotest.(check bool) "leftover after normalize -> -inf" true
    (primal w = Float.neg_infinity);
  let w' = run_det (Gen.log_density_prefix (normalize_prog 1) trace) k0 in
  check_close "prefix ignores leftover around normalize" ~tol:1e-9
    (log_normal 0.8 (1.0 /. 2.) (1. /. Float.sqrt 2.))
    (primal w')

(* Property: for programs without marginal/normalize, sim's weight always
   equals density re-evaluated at the produced trace. *)
let prop_sim_density_roundtrip =
  QCheck.Test.make ~name:"sim weight = density at trace" ~count:100
    QCheck.(pair small_int (float_range 0.05 0.95))
    (fun (seed, p) ->
      let open Gen.Syntax in
      let prog =
        let* b = Gen.sample (Dist.flip_reinforce (Ad.scalar p)) "b" in
        let mu = if b then 1. else -1. in
        let* x =
          Gen.sample (Dist.normal_reinforce (Ad.scalar mu) (Ad.scalar 0.5)) "x"
        in
        let* () =
          Gen.observe (Dist.normal_reinforce x (Ad.scalar 1.)) (Ad.scalar 0.2)
        in
        Gen.return x
      in
      let key = Prng.key seed in
      let _, trace, w = run_det (Gen.simulate prog) key in
      let w' = run_det (Gen.log_density prog trace) (Prng.key (seed + 1)) in
      Float.abs (primal w -. primal w') < 1e-9)

(* Property: sample_prior log density agrees with log_density at the
   same trace. *)
let prop_prior_density_agrees =
  QCheck.Test.make ~name:"sample_prior density agrees" ~count:100
    QCheck.small_int (fun seed ->
      let _, trace, logd = Gen.sample_prior simple_prog (Prng.key seed) in
      let w = run_det (Gen.log_density simple_prog trace) (Prng.key 1) in
      Float.abs (logd -. primal w) < 1e-9)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_sim_density_roundtrip; prop_prior_density_agrees ]

let suites =
  [ ( "gen",
      [ Alcotest.test_case "sample_prior trace" `Quick test_sample_prior_trace;
        Alcotest.test_case "sim weight = density" `Quick
          test_simulate_weight_matches_density;
        Alcotest.test_case "density closed form" `Quick
          test_density_closed_form;
        Alcotest.test_case "density missing address" `Quick
          test_density_missing_address;
        Alcotest.test_case "density extra address" `Quick
          test_density_extra_address;
        Alcotest.test_case "density wrong type" `Quick test_density_wrong_type;
        Alcotest.test_case "duplicate address" `Quick
          test_duplicate_address_raises;
        Alcotest.test_case "observe scores" `Quick test_observe_scores;
        Alcotest.test_case "rigid guard" `Quick test_rigid_guard;
        Alcotest.test_case "stochastic control flow" `Quick
          test_stochastic_control_flow;
        Alcotest.test_case "marginal exact proposal" `Quick
          test_marginal_exact_proposal;
        Alcotest.test_case "marginal unbiased" `Slow
          test_marginal_prior_proposal_unbiased;
        Alcotest.test_case "marginal sim shape" `Quick
          test_marginal_sim_trace_shape;
        Alcotest.test_case "normalize exact proposal" `Slow
          test_normalize_exact_proposal_samples_posterior;
        Alcotest.test_case "normalize more particles" `Slow
          test_normalize_sir_improves_with_particles;
        Alcotest.test_case "normalize density" `Quick
          test_normalize_density_estimate;
        Alcotest.test_case "prefix missing address" `Quick
          test_density_prefix_missing_address;
        Alcotest.test_case "marginal density missing kept" `Quick
          test_marginal_density_missing_kept;
        Alcotest.test_case "marginal density leftover" `Quick
          test_marginal_density_leftover;
        Alcotest.test_case "normalize density missing" `Quick
          test_normalize_density_missing;
        Alcotest.test_case "normalize density leftover" `Quick
          test_normalize_density_leftover ]
      @ qcheck_cases ) ]
