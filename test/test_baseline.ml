(* Tests for the comparator systems: the hand-coded VAE estimator must
   agree with the automated one, and the monolithic SVI engine must be
   correct on its supported menu and refuse everything else. *)

let k0 = Prng.key 808

let check_close name ~tol expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %g, got %g (tol %g)" name expected actual tol

(* Hand-coded VAE *)

let test_vae_hand_agrees () =
  let store = Store.create () in
  Vae.register store k0;
  let hand, automated = Vae_hand.agrees_with_automated store ~batch:16 k0 in
  check_close "same ELBO in expectation" ~tol:(0.02 *. Float.abs hand) hand
    automated

let test_vae_hand_gradients_agree () =
  (* Expected gradients of both estimators agree parameter-by-parameter
     (averaged over noise draws). *)
  let store = Store.create () in
  Vae.register store k0;
  let images, _ = Data.digit_batch k0 4 in
  let samples = 300 in
  let grad_of run =
    let acc = Hashtbl.create 16 in
    for i = 0 to samples - 1 do
      let frame = Store.Frame.make store in
      let s = run frame (Prng.fold_in k0 i) in
      Ad.backward s;
      List.iter
        (fun (name, g) ->
          let prev =
            Option.value ~default:(Tensor.zeros (Tensor.shape g))
              (Hashtbl.find_opt acc name)
          in
          Hashtbl.replace acc name (Tensor.add prev g))
        (Store.Frame.grads frame)
    done;
    acc
  in
  let hand = grad_of (fun frame key -> Vae_hand.elbo_surrogate frame images key) in
  let auto =
    grad_of (fun frame key ->
        Adev.expectation (Vae.elbo_per_datum frame images) key)
  in
  Hashtbl.iter
    (fun name g_hand ->
      match Hashtbl.find_opt auto name with
      | None -> Alcotest.failf "parameter %s missing from automated" name
      | Some g_auto ->
        let scale =
          Float.max 1. (Tensor.max_elt (Tensor.map Float.abs g_hand))
        in
        let diff =
          Tensor.max_elt
            (Tensor.map Float.abs (Tensor.sub g_hand g_auto))
        in
        if diff /. scale > 0.2 then
          Alcotest.failf "gradient mismatch at %s: rel diff %.3f" name
            (diff /. scale))
    hand

(* Monolithic SVI: a discrete model with closed-form ELBO gradient.
   model: b ~ flip(0.5); observe flip(if b then 0.9 else 0.2) true.
   guide: b ~ flip(theta).
   ELBO(theta) = theta (log .5 + log .9 - log theta)
              + (1-theta) (log .5 + log .2 - log (1-theta)). *)

let toy_model =
  let open Gen.Syntax in
  let* b = Gen.sample (Dist.flip_reinforce (Ad.scalar 0.5)) "b" in
  Gen.observe
    (Dist.flip_reinforce (Ad.scalar (if b then 0.9 else 0.2)))
    true

let toy_guide theta = Gen.sample (Dist.flip_reinforce theta) "b"
let toy_guide_enum theta = Gen.sample (Dist.flip_enum theta) "b"

let toy_elbo theta =
  (theta *. (Float.log 0.5 +. Float.log 0.9 -. Float.log theta))
  +. ((1. -. theta)
     *. (Float.log 0.5 +. Float.log 0.2 -. Float.log (1. -. theta)))

let toy_elbo_grad theta =
  Float.log 0.9 -. Float.log 0.2 -. Float.log theta
  +. Float.log (1. -. theta)

let test_svi_enum_exact () =
  let theta = 0.4 in
  let leaf = Ad.scalar theta in
  let s =
    Svi.elbo_surrogate ~model:toy_model ~guide:(toy_guide_enum leaf)
      Svi.Enum_discrete k0
  in
  check_close "enum value" ~tol:1e-9 (toy_elbo theta) (Ad.to_float s);
  Ad.backward s;
  check_close "enum gradient" ~tol:1e-9 (toy_elbo_grad theta)
    (Tensor.to_scalar (Ad.grad leaf))

let test_svi_reinforce_unbiased () =
  let theta = 0.4 in
  let n = 40000 in
  let total_v = ref 0. and total_g = ref 0. in
  for i = 0 to n - 1 do
    let leaf = Ad.scalar theta in
    let s =
      Svi.elbo_surrogate ~model:toy_model ~guide:(toy_guide leaf) Svi.Reinforce
        (Prng.fold_in k0 i)
    in
    Ad.backward s;
    total_v := !total_v +. Ad.to_float s;
    total_g := !total_g +. Tensor.to_scalar (Ad.grad leaf)
  done;
  let n = float_of_int n in
  check_close "reinforce value" ~tol:0.02 (toy_elbo theta) (!total_v /. n);
  check_close "reinforce gradient" ~tol:0.05 (toy_elbo_grad theta)
    (!total_g /. n)

let test_svi_baselines_unbiased () =
  let theta = 0.4 in
  let n = 40000 in
  let total_g = ref 0. in
  for i = 0 to n - 1 do
    let leaf = Ad.scalar theta in
    let s =
      Svi.elbo_surrogate ~model:toy_model ~guide:(toy_guide leaf)
        Svi.Reinforce_baselines (Prng.fold_in k0 i)
    in
    Ad.backward s;
    total_g := !total_g +. Tensor.to_scalar (Ad.grad leaf)
  done;
  check_close "baseline gradient" ~tol:0.05 (toy_elbo_grad theta)
    (!total_g /. float_of_int n)

let test_svi_reparam_pathwise () =
  (* Continuous reparameterizable sites use pathwise gradients: on the
     conjugate Gaussian model the gradient matches the closed form.
     ELBO(mu) with fixed std 1: E[log p(x, y) - log q(x)],
     d/dmu = y - 2 mu for y observed under N(x,1), prior N(0,1). *)
  let y = 1.4 and mu = 0.3 in
  let model =
    let open Gen.Syntax in
    let* x = Gen.sample (Dist.normal_reparam (Ad.scalar 0.) (Ad.scalar 1.)) "x" in
    Gen.observe (Dist.normal_reparam x (Ad.scalar 1.)) (Ad.scalar y)
  in
  let n = 20000 in
  let total_g = ref 0. in
  for i = 0 to n - 1 do
    let leaf = Ad.scalar mu in
    let guide = Gen.sample (Dist.normal_reparam leaf (Ad.scalar 1.)) "x" in
    let s = Svi.elbo_surrogate ~model ~guide Svi.Reinforce (Prng.fold_in k0 i) in
    Ad.backward s;
    total_g := !total_g +. Tensor.to_scalar (Ad.grad leaf)
  done;
  check_close "pathwise gradient" ~tol:0.05
    (y -. (2. *. mu))
    (!total_g /. float_of_int n)

let test_svi_unsupported_marginal () =
  let guide =
    Gen.marginal ~keep:[ "x" ]
      (Gen.sample (Dist.normal_reparam (Ad.scalar 0.) (Ad.scalar 1.)) "x")
      (Gen.importance_prior
         (Gen.Packed (Gen.return ())))
  in
  Alcotest.(check bool) "marginal unsupported" true
    (try
       ignore (Svi.elbo_surrogate ~model:toy_model ~guide Svi.Reinforce k0);
       false
     with Svi.Unsupported _ -> true)

let test_svi_unsupported_iwelbo_enum () =
  Alcotest.(check bool) "iwelbo+enum unsupported" true
    (try
       ignore
         (Svi.iwelbo_surrogate ~particles:2 ~model:toy_model
            ~guide:(toy_guide_enum (Ad.scalar 0.4))
            Svi.Enum_discrete k0);
       false
     with Svi.Unsupported _ -> true);
  Alcotest.(check bool) "menu" false (Svi.supports ~objective:`Iwelbo Svi.Enum_discrete);
  Alcotest.(check bool) "menu elbo" true (Svi.supports ~objective:`Elbo Svi.Enum_discrete)

let test_svi_iwelbo_reinforce_runs () =
  let leaf = Ad.scalar 0.4 in
  let s =
    Svi.iwelbo_surrogate ~particles:3 ~model:toy_model ~guide:(toy_guide leaf)
      Svi.Reinforce k0
  in
  Ad.backward s;
  Alcotest.(check bool) "finite" true
    (Float.is_finite (Ad.to_float s)
    && Tensor.all_finite (Ad.grad leaf))

let test_svi_iwelbo_matches_modular () =
  (* The monolithic IWELBO estimator and the modular one are different
     constructions of the same objective: their estimates agree in
     expectation. *)
  let theta = 0.4 in
  let n = 8000 in
  let mono = ref 0. and modular = ref 0. in
  for i = 0 to n - 1 do
    let leaf = Ad.scalar theta in
    let s =
      Svi.iwelbo_surrogate ~particles:3 ~model:toy_model
        ~guide:(toy_guide leaf) Svi.Reinforce (Prng.fold_in k0 i)
    in
    mono := !mono +. Ad.to_float s;
    modular :=
      !modular
      +. Adev.estimate
           (Objectives.iwelbo ~particles:3 ~model:toy_model
              ~guide:(toy_guide (Ad.scalar theta)) ())
           (Prng.fold_in (Prng.key 55) i)
  done;
  let nf = float_of_int n in
  check_close "same IWELBO objective" ~tol:0.02 (!mono /. nf) (!modular /. nf)

let test_grid_baseline_menu () =
  (* Wire the monolithic engine into the Table 3 probe: per-site
     strategy mixing and MVD must come out unsupported; the fixed menu
     must come out supported. *)
  let probe ~model ~guide ~objective ~pres ~pos key =
    let estimator =
      match (pres, pos) with
      | Air.RE, Air.RE -> Svi.Reinforce
      | Air.RE_BL, Air.RE_BL -> Svi.Reinforce_baselines
      | Air.EN, Air.EN -> Svi.Enum_discrete
      | Air.MV, _ | _, Air.MV ->
        raise (Svi.Unsupported "no measure-valued estimator in the menu")
      | _ -> raise (Svi.Unsupported "per-site strategy mixing")
    in
    let s =
      match objective with
      | Grid.Elbo -> Svi.elbo_surrogate ~model ~guide estimator key
      | Grid.Iwae -> Svi.iwelbo_surrogate ~particles:2 ~model ~guide estimator key
      | Grid.Rws -> raise (Svi.Unsupported "reweighted wake-sleep")
    in
    Ad.backward s
  in
  let check combo obj expect =
    let got = Grid.outcome_ok (Grid.try_probe ~probe combo obj k0) in
    if got <> expect then
      Alcotest.failf "baseline %s/%s: expected %b" (Grid.combo_name combo)
        (Grid.objective_name obj) expect
  in
  check { Grid.pres = Air.RE; pos = Air.RE } Grid.Elbo true;
  check { Grid.pres = Air.RE_BL; pos = Air.RE_BL } Grid.Elbo true;
  check { Grid.pres = Air.EN; pos = Air.EN } Grid.Elbo true;
  check { Grid.pres = Air.MV; pos = Air.MV } Grid.Elbo false;
  check { Grid.pres = Air.RE; pos = Air.EN } Grid.Elbo false;
  check { Grid.pres = Air.RE; pos = Air.RE } Grid.Iwae true;
  check { Grid.pres = Air.EN; pos = Air.EN } Grid.Iwae false;
  check { Grid.pres = Air.RE; pos = Air.RE } Grid.Rws false

let suites =
  [ ( "baseline",
      [ Alcotest.test_case "vae hand value agrees" `Slow test_vae_hand_agrees;
        Alcotest.test_case "vae hand gradients agree" `Slow
          test_vae_hand_gradients_agree;
        Alcotest.test_case "svi enum exact" `Quick test_svi_enum_exact;
        Alcotest.test_case "svi reinforce unbiased" `Slow
          test_svi_reinforce_unbiased;
        Alcotest.test_case "svi baselines unbiased" `Slow
          test_svi_baselines_unbiased;
        Alcotest.test_case "svi reparam pathwise" `Slow
          test_svi_reparam_pathwise;
        Alcotest.test_case "svi unsupported marginal" `Quick
          test_svi_unsupported_marginal;
        Alcotest.test_case "svi unsupported iwelbo+enum" `Quick
          test_svi_unsupported_iwelbo_enum;
        Alcotest.test_case "svi iwelbo reinforce" `Quick
          test_svi_iwelbo_reinforce_runs;
        Alcotest.test_case "svi iwelbo matches modular" `Slow
          test_svi_iwelbo_matches_modular;
        Alcotest.test_case "grid baseline menu" `Quick test_grid_baseline_menu ] ) ]
