(* Tests for lib/obs: span aggregation and nesting, Welford estimator
   statistics against a two-pass reference, the JSONL sink and its
   parser, and the central determinism contract — enabling
   observability must not change a seeded run's outputs bit for bit. *)

let with_obs sink f =
  Obs.configure ~enabled:true ~sink ();
  Obs.reset ();
  Fun.protect ~finally:Obs.shutdown f

let find_span name kind rows =
  List.find_opt
    (fun r -> r.Obs.sr_name = name && r.Obs.sr_kind = kind)
    rows

let burn () =
  (* A little deterministic work so spans have nonzero duration. *)
  let acc = ref 0. in
  for i = 1 to 10_000 do
    acc := !acc +. sqrt (float_of_int i)
  done;
  ignore (Sys.opaque_identity !acc)

(* Spans *)

let test_span_nesting () =
  with_obs `Null (fun () ->
      Obs.span Obs.Other "outer" (fun () ->
          burn ();
          Obs.span Obs.Other "inner" burn);
      let rows = Obs.span_rows () in
      let outer =
        match find_span "outer" Obs.Other rows with
        | Some r -> r
        | None -> Alcotest.fail "outer span missing"
      in
      let inner =
        match find_span "inner" Obs.Other rows with
        | Some r -> r
        | None -> Alcotest.fail "inner span missing"
      in
      Alcotest.(check int) "outer count" 1 outer.Obs.sr_count;
      Alcotest.(check int) "inner count" 1 inner.Obs.sr_count;
      if outer.Obs.sr_total_ms < inner.Obs.sr_total_ms then
        Alcotest.failf "outer (%g ms) shorter than nested inner (%g ms)"
          outer.Obs.sr_total_ms inner.Obs.sr_total_ms;
      if inner.Obs.sr_total_ms < 0. then
        Alcotest.fail "negative span duration";
      (* The ring buffer sees the inner span close first, one level
         deeper, with a monotone timeline. *)
      let evs =
        List.filter_map
          (function
            | Obs.Span_ev { name; depth; t; _ } -> Some (name, depth, t)
            | Obs.Msg_ev _ -> None)
          (Obs.recent ())
      in
      match evs with
      | [ (n1, d1, t1); (n2, d2, t2) ] ->
          Alcotest.(check string) "inner closes first" "inner" n1;
          Alcotest.(check int) "inner depth" 1 d1;
          Alcotest.(check string) "outer closes second" "outer" n2;
          Alcotest.(check int) "outer depth" 0 d2;
          (* [t] is the span's start time: outer opened first. *)
          if t1 < t2 then Alcotest.fail "inner started before outer"
      | evs -> Alcotest.failf "expected 2 span events, got %d" (List.length evs))

let test_span_kinds_distinct () =
  (* A sampler and a density evaluation share the primitive's name but
     must aggregate separately (regression: rows were once keyed by
     name alone and the tables merged). *)
  with_obs `Null (fun () ->
      Obs.span Obs.Simulate "normal" burn;
      Obs.span Obs.Density "normal" burn;
      Obs.span Obs.Density "normal" burn;
      let rows = Obs.span_rows () in
      let count kind =
        match find_span "normal" kind rows with
        | Some r -> r.Obs.sr_count
        | None -> 0
      in
      Alcotest.(check int) "simulate row" 1 (count Obs.Simulate);
      Alcotest.(check int) "density row" 2 (count Obs.Density))

let test_start_stop_matches_span () =
  with_obs `Null (fun () ->
      let t0 = Obs.start () in
      burn ();
      Obs.stop Obs.Grad "manual" t0;
      match find_span "manual" Obs.Grad (Obs.span_rows ()) with
      | Some r ->
          Alcotest.(check int) "count" 1 r.Obs.sr_count;
          if r.Obs.sr_total_ms < 0. then Alcotest.fail "negative duration"
      | None -> Alcotest.fail "manual span missing")

let test_disabled_hooks_are_noops () =
  Obs.reset ();
  Alcotest.(check bool) "initially disabled" false (Obs.live ());
  Obs.incr "ghost";
  Obs.gauge "ghost" 1.;
  Obs.hist "ghost" 1.;
  Obs.estimator ~address:"ghost" ~strategy:"REINFORCE" 1.;
  Obs.span Obs.Other "ghost" burn;
  Alcotest.(check int) "counter untouched" 0 (Obs.counter_value "ghost");
  Alcotest.(check int) "no spans" 0 (List.length (Obs.span_rows ()));
  Alcotest.(check int) "no estimator rows" 0
    (List.length (Obs.estimator_rows ()))

(* Metrics *)

let test_counters_gauges_hist () =
  with_obs `Null (fun () ->
      Obs.incr "steps";
      Obs.incr ~by:4 "steps";
      Obs.gauge "nodes" 17.;
      Obs.gauge "nodes" 42.;
      List.iter (Obs.hist "obj") [ 1.0; 2.0; 4.0; -3.0 ];
      Alcotest.(check int) "counter" 5 (Obs.counter_value "steps");
      Alcotest.(check (float 0.)) "gauge keeps last" 42.
        (Obs.gauge_value "nodes");
      match Obs.hist_rows () with
      | [ h ] ->
          Alcotest.(check int) "hist count" 4 h.Obs.hr_count;
          Alcotest.(check (float 1e-12)) "hist mean" 1.0 h.Obs.hr_mean;
          Alcotest.(check (float 0.)) "hist min" (-3.0) h.Obs.hr_min;
          Alcotest.(check (float 0.)) "hist max" 4.0 h.Obs.hr_max
      | rows -> Alcotest.failf "expected 1 histogram, got %d" (List.length rows))

(* Estimator statistics: Welford vs a two-pass reference *)

let two_pass xs =
  let n = float_of_int (List.length xs) in
  let mean = List.fold_left ( +. ) 0. xs /. n in
  let var =
    List.fold_left (fun a x -> a +. ((x -. mean) ** 2.)) 0. xs /. (n -. 1.)
  in
  (mean, var)

let welford_matches_two_pass =
  QCheck.Test.make ~count:200 ~name:"obs welford variance = two-pass variance"
    QCheck.(list_of_size Gen.(2 -- 60) (float_bound_exclusive 100.))
    (fun xs ->
      QCheck.assume (List.length xs >= 2);
      with_obs `Null (fun () ->
          List.iter (Obs.estimator ~address:"site" ~strategy:"REINFORCE") xs;
          match Obs.estimator_rows () with
          | [ r ] ->
              let mean, var = two_pass xs in
              let close a b =
                Float.abs (a -. b) <= 1e-9 *. Float.max 1. (Float.abs b)
              in
              r.Obs.er_count = List.length xs
              && close r.Obs.er_mean mean
              && close r.Obs.er_variance var
          | _ -> false))

let test_estimator_ranking () =
  with_obs `Null (fun () ->
      (* A noisy REINFORCE site must rank above a zero-coefficient
         REPARAM site. *)
      List.iter
        (Obs.estimator ~address:"v" ~strategy:"REINFORCE")
        [ 10.; -7.; 3.; 22.; -15. ];
      List.iter (Obs.estimator ~address:"x" ~strategy:"REPARAM") [ 0.; 0.; 0. ];
      match Obs.estimator_rows () with
      | noisy :: rest ->
          Alcotest.(check string) "noisiest first" "v" noisy.Obs.er_address;
          Alcotest.(check string) "strategy tag" "REINFORCE"
            noisy.Obs.er_strategy;
          if noisy.Obs.er_variance <= 0. then
            Alcotest.fail "REINFORCE variance not positive";
          List.iter
            (fun r ->
              if r.Obs.er_variance > noisy.Obs.er_variance then
                Alcotest.fail "rows not sorted by variance")
            rest
      | [] -> Alcotest.fail "no estimator rows")

(* JSON + JSONL sink *)

let test_json_parse () =
  let src = {|{"a": [1, 2.5, -3e-2], "s": "he\"llo\nx", "b": true, "n": null}|} in
  match Obs.Json.parse src with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok j -> (
      (match Obs.Json.member "a" j with
      | Some (Obs.Json.Arr [ Num a; Num b; Num c ]) ->
          Alcotest.(check (float 0.)) "int" 1. a;
          Alcotest.(check (float 0.)) "float" 2.5 b;
          Alcotest.(check (float 1e-18)) "exp" (-0.03) c
      | _ -> Alcotest.fail "array member");
      (match Obs.Json.member "s" j with
      | Some (Obs.Json.Str s) ->
          Alcotest.(check string) "escapes" "he\"llo\nx" s
      | _ -> Alcotest.fail "string member");
      (match Obs.Json.parse "{\"unterminated\": tru" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "accepted malformed input"))

let test_jsonl_roundtrip () =
  let path = Filename.temp_file "ppvi_obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      with_obs (`File path) (fun () ->
          Obs.span Obs.Simulate "normal" burn;
          Obs.message Obs.Preflight "hello trace";
          Obs.incr "steps";
          Obs.gauge "nodes" 3.;
          Obs.hist "obj" 1.5;
          Obs.estimator ~address:"v" ~strategy:"REINFORCE" 2.0;
          Obs.flush ());
      (match Obs.validate_jsonl path with
      | Error e -> Alcotest.failf "trace does not lint: %s" e
      | Ok n -> if n < 4 then Alcotest.failf "expected >= 4 events, got %d" n);
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      close_in ic;
      let parsed =
        List.rev_map
          (fun l ->
            match Obs.Json.parse l with
            | Ok j -> j
            | Error e -> Alcotest.failf "unparseable line %S: %s" l e)
          !lines
      in
      let ev_is name j =
        match Obs.Json.member "ev" j with
        | Some (Obs.Json.Str s) -> s = name
        | _ -> false
      in
      (match parsed with
      | first :: _ ->
          if not (ev_is "meta" first) then
            Alcotest.fail "first event is not the meta header";
          (match Obs.Json.member "schema_version" first with
          | Some (Obs.Json.Num 1.) -> ()
          | _ -> Alcotest.fail "schema_version missing")
      | [] -> Alcotest.fail "empty trace");
      let has name = List.exists (ev_is name) parsed in
      List.iter
        (fun ev ->
          if not (has ev) then Alcotest.failf "no %S event in trace" ev)
        [ "span"; "msg"; "counter"; "gauge"; "hist"; "estimator" ])

(* A recorder killed mid-write leaves a partial trailing line with no
   newline; trace-lint must tolerate exactly that — and nothing else. *)

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let with_temp_jsonl f =
  let path = Filename.temp_file "ppvi_obs_trunc" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let valid_trace_text n =
  let b = Buffer.create 256 in
  for i = 1 to n do
    Buffer.add_string b
      (Printf.sprintf "{\"ev\": \"span\", \"name\": \"s%d\", \"dur_ms\": %d.5}\n"
         i i)
  done;
  Buffer.contents b

let test_truncated_tail_tolerated () =
  with_temp_jsonl (fun path ->
      (* Partial trailing line, no newline: skipped, earlier lines count. *)
      write_file path (valid_trace_text 3 ^ "{\"ev\": \"sp");
      (match Obs.validate_jsonl path with
      | Ok n -> Alcotest.(check int) "partial tail skipped" 3 n
      | Error e -> Alcotest.failf "partial tail rejected: %s" e);
      (* A complete unterminated final line still counts as an event. *)
      write_file path (valid_trace_text 2 ^ "{\"ev\": \"msg\"}");
      (match Obs.validate_jsonl path with
      | Ok n -> Alcotest.(check int) "complete unterminated tail counts" 3 n
      | Error e -> Alcotest.failf "unterminated tail rejected: %s" e);
      (* A malformed but newline-terminated line is schema drift. *)
      write_file path (valid_trace_text 2 ^ "{\"ev\": \"sp\n" ^ valid_trace_text 1);
      match Obs.validate_jsonl path with
      | Error _ -> ()
      | Ok n -> Alcotest.failf "malformed interior line accepted (Ok %d)" n)

let prop_random_truncation =
  QCheck.Test.make ~count:120
    ~name:"validate_jsonl tolerates any tail truncation of a valid trace"
    QCheck.(pair (int_range 1 8) (int_range 0 1_000_000))
    (fun (lines, cut_seed) ->
      with_temp_jsonl (fun path ->
          let full = valid_trace_text lines in
          let cut = 1 + (cut_seed mod String.length full) in
          write_file path (String.sub full 0 cut);
          (* Count the complete (newline-terminated) lines kept. *)
          let kept = ref 0 in
          String.iter (fun c -> if c = '\n' then incr kept)
            (String.sub full 0 cut);
          let tail_start =
            (* start of the partial tail, if any *)
            let rec last_nl i = if i < 0 then 0
              else if full.[i] = '\n' then i + 1 else last_nl (i - 1) in
            last_nl (cut - 1)
          in
          let tail = String.sub full tail_start (cut - tail_start) in
          let tail_parses =
            match Obs.Json.parse tail with Ok _ -> true | Error _ -> false
          in
          match Obs.validate_jsonl path with
          | Ok n -> n = !kept + (if tail <> "" && tail_parses then 1 else 0)
          | Error e ->
            QCheck.Test.fail_reportf "cut=%d rejected: %s" cut e))

let prop_parse_never_raises =
  QCheck.Test.make ~count:300 ~name:"Json.parse totality on arbitrary bytes"
    QCheck.(string_of Gen.(oneofl [ '{'; '}'; '['; ']'; '"'; '\\'; ','; ':';
                                    'e'; '1'; '.'; '-'; 'n'; 't'; ' ' ]))
    (fun s ->
      match Obs.Json.parse s with Ok _ | Error _ -> true)

(* Determinism: observability must never change a seeded run. *)

let store_fingerprint store =
  List.map (fun n -> (n, Store.tensor store n)) (Store.names store)

let check_same_store name a b =
  let fa = store_fingerprint a and fb = store_fingerprint b in
  Alcotest.(check (list string))
    (name ^ ": parameter names")
    (List.map fst fa) (List.map fst fb);
  List.iter2
    (fun (n, ta) (_, tb) ->
      if not (Tensor.equal ta tb) then
        Alcotest.failf "%s: parameter %s differs with obs enabled" name n)
    fa fb

let test_coin_bit_identity () =
  let run () =
    let store, reports, _wall = Coin.train ~steps:60 (Prng.key 11) in
    (store, List.map (fun r -> r.Train.objective) reports)
  in
  let store_off, obj_off = run () in
  let store_on, obj_on =
    with_obs `Null (fun () ->
        let r = run () in
        (* The instrumented run must actually have recorded something,
           or this test is vacuous. *)
        if Obs.counter_value "train/steps" = 0 then
          Alcotest.fail "instrumentation recorded no steps";
        r)
  in
  check_same_store "coin" store_off store_on;
  Alcotest.(check (list (float 0.))) "coin: objective trajectory" obj_off obj_on

let cone_bit_identity =
  QCheck.Test.make ~count:4
    ~name:"obs on/off bit-identity (cone IWHVI, random seeds)"
    QCheck.(int_bound 1000)
    (fun seed ->
      let run () =
        let store, reports =
          Cone.train ~steps:12 (Cone.Iwhvi 3) (Prng.key seed)
        in
        (store, List.map (fun r -> r.Train.objective) reports)
      in
      let store_off, obj_off = run () in
      let store_on, obj_on = with_obs `Null run in
      obj_off = obj_on
      && Store.names store_off = Store.names store_on
      && List.for_all2
           (fun n n' ->
             Tensor.equal (Store.tensor store_off n) (Store.tensor store_on n'))
           (Store.names store_off) (Store.names store_on))

let suites =
  [
    ( "obs",
      [
        Alcotest.test_case "span nesting and timing" `Quick test_span_nesting;
        Alcotest.test_case "span rows keyed by kind" `Quick
          test_span_kinds_distinct;
        Alcotest.test_case "start/stop hot path" `Quick
          test_start_stop_matches_span;
        Alcotest.test_case "disabled hooks are no-ops" `Quick
          test_disabled_hooks_are_noops;
        Alcotest.test_case "counters, gauges, histograms" `Quick
          test_counters_gauges_hist;
        Alcotest.test_case "estimator ranking" `Quick test_estimator_ranking;
        Alcotest.test_case "json parser" `Quick test_json_parse;
        Alcotest.test_case "jsonl sink round-trip" `Quick test_jsonl_roundtrip;
        Alcotest.test_case "truncated trailing line tolerated" `Quick
          test_truncated_tail_tolerated;
        QCheck_alcotest.to_alcotest prop_random_truncation;
        QCheck_alcotest.to_alcotest prop_parse_never_raises;
        Alcotest.test_case "coin bit-identity" `Quick test_coin_bit_identity;
        QCheck_alcotest.to_alcotest welford_matches_two_pass;
        QCheck_alcotest.to_alcotest cone_bit_identity;
      ] );
  ]
