let () =
  Alcotest.run "ppvi"
    (Test_tensor.suites @ Test_prng.suites @ Test_ad.suites
   @ Test_dist.suites @ Test_adev.suites @ Test_gen.suites @ Test_nn.suites
   @ Test_data.suites @ Test_vi.suites @ Test_baseline.suites
   @ Test_estimated.suites @ Test_dist_extra.suites @ Test_gen_exact.suites @ Test_yolo.suites @ Test_static_checks.suites @ Test_trace.suites @ Test_misc.suites @ Test_guard.suites @ Test_kernel.suites @ Test_check.suites @ Test_batched.suites @ Test_obs.suites @ Test_store.suites @ Test_fault.suites @ Test_chaos.suites @ Test_compile.suites @ Test_shape.suites @ Test_memory.suites @ Test_serve.suites)
