(* Memory-scaled training: gradient checkpointing must be bit-exact
   under rematerialization (segment pool included), the sharded
   data-parallel driver must be bit-reproducible across domain counts
   (fault injection included), and the parallel/profile counters must
   reset per run. *)

open Adev.Syntax

let bits = Int64.bits_of_float
let tensor_bits t = Array.map bits (Tensor.to_array t)
let grads_bits gs = List.map (fun (n, g) -> (n, tensor_bits g)) gs

let store_bits store =
  List.map
    (fun name -> (name, tensor_bits (Store.tensor store name)))
    (Store.names store)

let centered key shape =
  Tensor.map (fun u -> u -. 0.5) (Prng.uniform_tensor key shape)

(* ------------------------------------------------------------------ *)
(* Checkpoint barrier unit tests.                                      *)

let test_checkpoint_chain () =
  let run remat =
    let p = Ad.const (centered (Prng.key 3) [| 4 |]) in
    let mk () = Ad.sum (Ad.mul (Ad.softplus p) (Ad.exp (Ad.scale 0.5 p))) in
    let root = if remat then Ad.checkpoint mk else mk () in
    Ad.backward root;
    (bits (Tensor.to_scalar (Ad.value root)), tensor_bits (Ad.grad p))
  in
  Alcotest.(check bool) "value and grad bits equal" true (run false = run true)

let test_checkpoint_nested () =
  let run remat =
    let p = Ad.const (centered (Prng.key 4) [| 5 |]) in
    let inner () = Ad.softplus (Ad.mul p p) in
    let mk () =
      let a = if remat then Ad.checkpoint inner else inner () in
      Ad.sum (Ad.mul a (Ad.exp (Ad.scale (-0.3) p)))
    in
    let root = if remat then Ad.checkpoint mk else mk () in
    Ad.backward root;
    (bits (Tensor.to_scalar (Ad.value root)), tensor_bits (Ad.grad p))
  in
  Alcotest.(check bool) "nested barriers bit-exact" true (run false = run true)

(* A thunk that returns a pre-existing node builds no barrier: the node
   itself comes back and gradients flow as if no checkpoint existed. *)
let test_checkpoint_degenerate () =
  let p = Ad.const (Tensor.scalar 1.5) in
  let c = Ad.checkpoint (fun () -> p) in
  Alcotest.(check bool) "same node" true (Ad.id c = Ad.id p);
  let root = Ad.mul c c in
  Ad.backward root;
  Alcotest.(check (float 1e-12)) "grad = 2p" 3.0
    (Tensor.to_scalar (Ad.grad p))

let test_remat_replays_counted () =
  let p = Ad.const (centered (Prng.key 5) [| 3 |]) in
  let seg i () = Ad.sum (Ad.softplus (Ad.scale (float_of_int i +. 1.) p)) in
  let root =
    Ad.add (Ad.checkpoint (seg 0)) (Ad.checkpoint (seg 1))
  in
  let before = Ad.remat_replays () in
  Ad.backward root;
  Alcotest.(check bool) "two replays recorded" true
    (Ad.remat_replays () >= before + 2)

(* Checkpointing must actually cut the peak live tape: the same sliced
   VAE step with barriers on holds at most half the nodes it holds with
   barriers off (the bench gates the full 2x at batch 256; this is the
   in-tree smoke at a small batch — node counts are batch-independent). *)
let test_peak_live_cut () =
  let store = Store.create () in
  Vae.register store (Prng.key 1);
  let key = Prng.key 2 in
  let full =
    Vae.grad_step_peak_live store ~batch:64 ~segments:4 ~remat:false key
  in
  let remat =
    Vae.grad_step_peak_live store ~batch:64 ~segments:4 ~remat:true key
  in
  Alcotest.(check bool)
    (Printf.sprintf "peak halved (full %d, remat %d)" full remat)
    true
    (remat * 2 <= full)

(* ------------------------------------------------------------------ *)
(* Parallel counters (per-run profile figures).                        *)

let test_parallel_reset_counters () =
  Parallel.run ~blocks:3 (fun _ -> ());
  Alcotest.(check bool) "jobs counted" true (Parallel.jobs_run () > 0);
  Parallel.reset_counters ();
  Alcotest.(check int) "jobs reset" 0 (Parallel.jobs_run ());
  Alcotest.(check int) "parallel jobs reset" 0 (Parallel.jobs_parallel ());
  Alcotest.(check int) "blocks reset" 0 (Parallel.blocks_run ())

(* ------------------------------------------------------------------ *)
(* Sharded driver determinism: same shard count, any domain count,
   with and without remat, with and without an active fault plan. *)

let fit_store ~domains ~remat ?fault seed =
  Parallel.set_domains domains;
  (match fault with
  | None -> ()
  | Some spec -> (
    match Fault.plan_of_string ~seed:0 spec with
    | Ok p -> Fault.install p
    | Error e -> Alcotest.fail e));
  Fun.protect
    ~finally:(fun () ->
      Fault.clear ();
      Parallel.set_domains 1)
    (fun () ->
      let store = Store.create () in
      Vae.register store (Prng.key seed);
      let optim = Optim.adam ~lr:1e-3 () in
      let spec = Vae.step_spec ~shards:4 ~remat ~batch:16 (Prng.key seed) in
      ignore (Train.fit_spec ~store ~optim ~steps:3 ~spec (Prng.key seed));
      store_bits store)

let test_sharded_fit_deterministic () =
  let reference = fit_store ~domains:1 ~remat:false 5 in
  Alcotest.(check bool) "2 domains bit-identical" true
    (fit_store ~domains:2 ~remat:false 5 = reference);
  Alcotest.(check bool) "4 domains bit-identical" true
    (fit_store ~domains:4 ~remat:false 5 = reference);
  Alcotest.(check bool) "remat bit-identical" true
    (fit_store ~domains:4 ~remat:true 5 = reference)

let test_sharded_fit_fault_deterministic () =
  let spec = "grad-nan=0.3 oom=0.2" in
  let reference = fit_store ~domains:1 ~remat:false ~fault:spec 6 in
  Alcotest.(check bool) "4 domains under faults bit-identical" true
    (fit_store ~domains:4 ~remat:true ~fault:spec 6 = reference)

(* ------------------------------------------------------------------ *)
(* QCheck: remat is bit-exact across estimator strategies and sample
   counts; the sliced VAE surrogate is bit-exact across segmentations;
   every (deterministic) registry program survives a value-level
   checkpoint barrier unchanged. *)

let sigmoid p = Ad.exp (Ad.scale (-1.) (Ad.softplus (Ad.scale (-1.) p)))

(* One objective per estimator family. REINFORCE-with-baseline is
   deliberately absent: its cell mutates between construction and
   replay, which is exactly the documented remat exclusion
   (docs/MEMORY.md). *)
let remat_cases =
  [ (fun p ->
      let* x = Adev.sample (Dist.normal_reparam p (Ad.scalar 1.)) in
      Adev.return (Ad.mul x x));
    (fun p ->
      let* x = Adev.sample (Dist.normal_reinforce p (Ad.scalar 1.)) in
      Adev.return (Ad.mul x x));
    (fun p ->
      let* k = Adev.sample (Dist.binomial_enum 3 (sigmoid p)) in
      Adev.return (Ad.scale (float_of_int k) (Ad.softplus p))) ]

let prop_remat_expectation_mean =
  QCheck.Test.make ~name:"expectation_mean remat == full (bitwise)" ~count:40
    QCheck.(pair (int_range 0 2) (pair small_nat (int_range 1 4)))
    (fun (case, (seed, samples)) ->
      let build = List.nth remat_cases case in
      let run remat =
        let p = Ad.const (Tensor.scalar (0.2 +. (0.1 *. float_of_int (seed mod 5)))) in
        let s =
          Adev.expectation_mean ~remat ~samples (build p) (Prng.key seed)
        in
        Ad.backward s;
        (bits (Tensor.to_scalar (Ad.value s)), tensor_bits (Ad.grad p))
      in
      run false = run true)

let prop_vae_sliced_remat =
  QCheck.Test.make ~name:"vae sliced remat == plain (bitwise grads)" ~count:8
    QCheck.(pair (int_range 1 5) small_nat)
    (fun (segments, seed) ->
      let store = Store.create () in
      Vae.register store (Prng.key 7);
      let images, _ = Data.digit_batch (Prng.key (50 + seed)) 12 in
      let run remat =
        let frame = Store.Frame.make store in
        let s = Vae.elbo_sliced ~segments ~remat frame images (Prng.key seed) in
        Ad.backward s;
        grads_bits (Store.Frame.grads frame)
      in
      run false = run true)

let registry_programs entry =
  match entry.Preflight.make () with
  | Check.Program p -> [ p ]
  | Check.Pair { model; guide } -> [ model; guide ]
  | exception _ -> []

(* Demo entries deliberately raise diagnostics when simulated; those
   programs have no surrogate to compare, so they come back as None. *)
let surrogate_value (Gen.Packed p) key =
  let m = Adev.map (fun (_, _, w) -> w) (Gen.simulate p) in
  match Adev.expectation m key with
  | s -> Some (Ad.value s)
  | exception _ -> None

(* Stateful programs (REINFORCE-baseline cells) are not run-twice
   deterministic, so a construction-vs-barrier comparison is
   meaningless for them; probe first and skip. *)
let run_twice_deterministic p key =
  match (surrogate_value p key, surrogate_value p key) with
  | Some a, Some b -> tensor_bits a = tensor_bits b
  | _ -> false

let prop_registry_checkpoint_value =
  QCheck.Test.make ~name:"registry checkpoint == direct (value bits)"
    ~count:10 QCheck.small_nat
    (fun seed ->
      List.for_all
        (fun entry ->
          List.for_all
            (fun p ->
              let key = Prng.key seed in
              (not (run_twice_deterministic p key))
              ||
              match surrogate_value p key with
              | None -> true
              | Some direct ->
                let barred =
                  Ad.value
                    (Ad.checkpoint (fun () ->
                         let m =
                           let (Gen.Packed prog) = p in
                           Adev.map (fun (_, _, w) -> w) (Gen.simulate prog)
                         in
                         Adev.expectation m key))
                in
                tensor_bits direct = tensor_bits barred)
            (registry_programs entry))
        Preflight.entries)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_remat_expectation_mean; prop_vae_sliced_remat;
      prop_registry_checkpoint_value ]

let suites =
  [ ( "memory",
      [ Alcotest.test_case "checkpoint chain bit-exact" `Quick
          test_checkpoint_chain;
        Alcotest.test_case "nested checkpoints bit-exact" `Quick
          test_checkpoint_nested;
        Alcotest.test_case "degenerate checkpoint" `Quick
          test_checkpoint_degenerate;
        Alcotest.test_case "replay counter advances" `Quick
          test_remat_replays_counted;
        Alcotest.test_case "checkpoint halves peak live tape" `Quick
          test_peak_live_cut;
        Alcotest.test_case "parallel counters reset" `Quick
          test_parallel_reset_counters;
        Alcotest.test_case "sharded fit bit-identical across domains" `Slow
          test_sharded_fit_deterministic;
        Alcotest.test_case "sharded fit deterministic under faults" `Slow
          test_sharded_fit_fault_deterministic ]
      @ qcheck_cases ) ]
