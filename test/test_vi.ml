(* Tests for optimizers, the training loop, variational objectives, and
   the experiment models (cone, coin, regression, VAE, AIR, SSVAE,
   CVAE). End-to-end checks exploit conjugacy: on Gaussian models with
   known posteriors, trained guides must recover the analytic answer and
   the ELBO must approach the true log marginal likelihood. *)

let k0 = Prng.key 555

let check_close name ~tol expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %g, got %g (tol %g)" name expected actual tol

let log_normal x mu sigma =
  (-0.5 *. (((x -. mu) /. sigma) ** 2.))
  -. Float.log sigma
  -. (0.5 *. Float.log (2. *. Float.pi))

(* Optim *)

let test_sgd_step () =
  let store = Store.create () in
  Store.ensure store "x" (fun () -> Tensor.scalar 1.);
  let opt = Optim.sgd ~lr:0.1 in
  Optim.step opt Optim.Ascend store [ ("x", Tensor.scalar 2.) ];
  check_close "ascend" ~tol:1e-12 1.2 (Tensor.to_scalar (Store.tensor store "x"));
  Optim.step opt Optim.Descend store [ ("x", Tensor.scalar 2.) ];
  check_close "descend" ~tol:1e-12 1.0 (Tensor.to_scalar (Store.tensor store "x"))

let test_sgd_skips_nonfinite () =
  let store = Store.create () in
  Store.ensure store "x" (fun () -> Tensor.scalar 1.);
  let opt = Optim.sgd ~lr:0.1 in
  let reported = ref [] in
  Optim.step opt ~on_skip:(fun name _ -> reported := name :: !reported)
    Optim.Ascend store
    [ ("x", Tensor.scalar Float.nan) ];
  check_close "nan skipped" ~tol:0. 1. (Tensor.to_scalar (Store.tensor store "x"));
  Alcotest.(check int) "skip counted" 1 (Optim.skipped opt);
  Alcotest.(check (list string)) "skip reported" [ "x" ] !reported

let test_adam_minimizes_quadratic () =
  let store = Store.create () in
  Store.ensure store "x" (fun () -> Tensor.scalar 5.);
  let opt = Optim.adam ~lr:0.2 () in
  for _ = 1 to 300 do
    let x = Tensor.to_scalar (Store.tensor store "x") in
    (* d/dx (x - 3)^2 *)
    Optim.step opt Optim.Descend store [ ("x", Tensor.scalar (2. *. (x -. 3.))) ]
  done;
  check_close "adam converges" ~tol:0.05 3.
    (Tensor.to_scalar (Store.tensor store "x"))

(* Train + ELBO on a conjugate model: x ~ N(0,1), y | x ~ N(x,1),
   observed y. Posterior N(y/2, 1/sqrt 2); log evidence log N(y; 0, sqrt 2). *)

let conjugate_model y =
  let open Gen.Syntax in
  let* x = Gen.sample (Dist.normal_reparam (Ad.scalar 0.) (Ad.scalar 1.)) "x" in
  Gen.observe (Dist.normal_reparam x (Ad.scalar 1.)) (Ad.scalar y)

let conjugate_guide frame =
  let open Gen.Syntax in
  let mu = Store.Frame.get frame "cg.mu" in
  let std = Ad.add_scalar 1e-3 (Ad.softplus (Store.Frame.get frame "cg.rho")) in
  let* _ = Gen.sample (Dist.normal_reparam mu std) "x" in
  Gen.return ()

let train_conjugate y steps =
  let store = Store.create () in
  Store.ensure store "cg.mu" (fun () -> Tensor.scalar 0.);
  Store.ensure store "cg.rho" (fun () -> Tensor.scalar 0.);
  let optim = Optim.adam ~lr:0.05 () in
  let _ =
    Train.fit ~store ~optim ~steps ~samples:4
      ~objective:(fun frame _ ->
        Objectives.elbo ~model:(conjugate_model y) ~guide:(conjugate_guide frame))
      k0
  in
  store

let test_elbo_recovers_conjugate_posterior () =
  let y = 1.4 in
  let store = train_conjugate y 1500 in
  let mu = Tensor.to_scalar (Store.tensor store "cg.mu") in
  let rho = Tensor.to_scalar (Store.tensor store "cg.rho") in
  let std = 1e-3 +. Float.log (1. +. Float.exp rho) in
  check_close "posterior mean" ~tol:0.06 (y /. 2.) mu;
  check_close "posterior std" ~tol:0.06 (1. /. Float.sqrt 2.) std;
  (* At the optimum the ELBO equals the log evidence. *)
  let elbo =
    Train.eval ~store ~samples:4000
      ~objective:(fun frame ->
        Objectives.elbo ~model:(conjugate_model y) ~guide:(conjugate_guide frame))
      (Prng.key 42)
  in
  check_close "ELBO = log evidence" ~tol:0.05
    (log_normal y 0. (Float.sqrt 2.))
    elbo

let test_iwelbo_tighter_than_elbo () =
  (* With a deliberately bad guide, IWELBO must dominate the ELBO. *)
  let y = 1.4 in
  let store = Store.create () in
  Store.ensure store "cg.mu" (fun () -> Tensor.scalar (-1.));
  Store.ensure store "cg.rho" (fun () -> Tensor.scalar 0.8);
  let frame = Store.Frame.make store in
  let elbo =
    Adev.estimate ~samples:3000
      (Objectives.elbo ~model:(conjugate_model y) ~guide:(conjugate_guide frame))
      k0
  in
  let iw =
    Adev.estimate ~samples:3000
      (Objectives.iwelbo ~particles:10 ~model:(conjugate_model y)
         ~guide:(conjugate_guide frame) ())
      k0
  in
  Alcotest.(check bool)
    (Printf.sprintf "iwelbo %.3f > elbo %.3f" iw elbo)
    true (iw > elbo);
  Alcotest.(check bool) "both below log evidence" true
    (iw <= log_normal y 0. (Float.sqrt 2.) +. 0.05)

let test_elbo_of_sir_equals_iwelbo () =
  (* The paper's remark (Section 2): the IWELBO objective with guide q
     equals the ordinary ELBO applied to normalize(model, q). Check the
     two estimates agree in expectation. *)
  let y = 1.4 in
  let store = Store.create () in
  Store.ensure store "cg.mu" (fun () -> Tensor.scalar 0.3);
  Store.ensure store "cg.rho" (fun () -> Tensor.scalar 0.2);
  let frame = Store.Frame.make store in
  let n = 5 in
  let iw =
    Adev.estimate ~samples:4000
      (Objectives.iwelbo ~particles:n ~model:(conjugate_model y)
         ~guide:(conjugate_guide frame) ())
      k0
  in
  let q_sir =
    Gen.normalize (conjugate_model y)
      (Gen.importance_prior ~particles:n (Gen.Packed (conjugate_guide frame)))
  in
  let elbo_sir =
    Adev.estimate ~samples:4000
      (Objectives.elbo ~model:(conjugate_model y) ~guide:q_sir)
      (Prng.key 43)
  in
  check_close "ELBO(q_SIR) = IWELBO(q)" ~tol:0.06 iw elbo_sir

let test_wake_sleep_objectives_finite () =
  let y = 1.4 in
  let store = train_conjugate y 200 in
  let frame = Store.Frame.make store in
  let proposal = conjugate_guide frame in
  let q =
    Adev.estimate ~samples:200
      (Objectives.qwake ~particles:3 ~model:(conjugate_model y) ~proposal
         ~guide:(conjugate_guide frame))
      k0
  in
  let p =
    Adev.estimate ~samples:200
      (Objectives.pwake ~particles:3 ~model:(conjugate_model y) ~proposal)
      k0
  in
  Alcotest.(check bool) "qwake finite" true (Float.is_finite q);
  Alcotest.(check bool) "pwake finite" true (Float.is_finite p);
  let s =
    Adev.estimate ~samples:200
      (Objectives.symmetric_elbo ~particles:3 ~model:(conjugate_model y)
         ~proposal ~guide:(conjugate_guide frame))
      k0
  in
  Alcotest.(check bool) "symmetric finite" true (Float.is_finite s)

let test_rws_fits_model_and_guide () =
  (* Reweighted wake-sleep on a learnable-prior conjugate model: the
     wake-phase P objective drives the prior mean to the data (the
     marginal-likelihood optimum) while the wake-phase Q objective
     tracks the posterior. *)
  let y = 1.4 in
  let model frame =
    let theta = Store.Frame.get frame "ws.theta" in
    let open Gen.Syntax in
    let* x = Gen.sample (Dist.normal_reparam theta (Ad.scalar 1.)) "x" in
    Gen.observe (Dist.normal_reparam x (Ad.scalar 1.)) (Ad.scalar y)
  in
  let guide frame =
    let mu = Store.Frame.get frame "ws.mu" in
    let std = Ad.add_scalar 1e-3 (Ad.softplus (Store.Frame.get frame "ws.rho")) in
    let open Gen.Syntax in
    let* _ = Gen.sample (Dist.normal_reparam mu std) "x" in
    Gen.return ()
  in
  let store = Store.create () in
  List.iter
    (fun (name, v) -> Store.ensure store name (fun () -> Tensor.scalar v))
    [ ("ws.theta", -0.5); ("ws.mu", 0.); ("ws.rho", 0.) ];
  let optim = Optim.adam ~lr:0.03 () in
  let (_ : Train.report list) =
    Train.fit ~store ~optim ~steps:1200 ~samples:2
      ~objective:(fun frame _ ->
        let open Adev.Syntax in
        let proposal = guide (Store.Frame.detach frame) in
        let* p = Objectives.pwake ~particles:5 ~model:(model frame) ~proposal in
        let* q =
          Objectives.qwake ~particles:5 ~model:(model frame) ~proposal
            ~guide:(guide frame)
        in
        Adev.return (Ad.add p q))
      k0
  in
  let theta = Tensor.to_scalar (Store.tensor store "ws.theta") in
  let mu = Tensor.to_scalar (Store.tensor store "ws.mu") in
  check_close "theta -> data" ~tol:0.3 y theta;
  check_close "guide tracks posterior mean" ~tol:0.3 ((theta +. y) /. 2.) mu

(* Cone *)

let test_cone_elbo_improves () =
  let _, reports = Cone.train ~steps:400 Cone.Elbo k0 in
  let first = (List.nth reports 0).Train.objective in
  let late =
    List.fold_left ( +. ) 0.
      (List.filteri (fun i _ -> i >= 350) (List.map (fun r -> r.Train.objective) reports))
    /. 50.
  in
  Alcotest.(check bool)
    (Printf.sprintf "improved: %.2f -> %.2f" first late)
    true (late > first +. 1.)

let test_cone_guide_concentrates_on_circle () =
  let store, _ = Cone.train ~steps:1500 (Cone.Iwhvi 5) k0 in
  let pts = Cone.guide_samples store (Cone.Iwhvi 5) 200 (Prng.key 9) in
  let mean_r2 =
    List.fold_left (fun acc (x, y) -> acc +. ((x *. x) +. (y *. y))) 0. pts
    /. 200.
  in
  (* The posterior concentrates near radius^2 = 5. *)
  Alcotest.(check bool)
    (Printf.sprintf "mean r^2 = %.2f in [3.5, 6.5]" mean_r2)
    true
    (mean_r2 > 3.5 && mean_r2 < 6.5)

let test_learned_reverse_kernel_trains () =
  (* Appendix A.1: the reverse kernel's parameters are part of the
     objective and train jointly; the learned-kernel IWHVI bound should
     be at least as tight as the uniform-kernel bound. *)
  let store_u, _ = Cone.train ~steps:1200 (Cone.Iwhvi 3) k0 in
  let store_l, _ = Cone.train ~steps:1200 (Cone.Iwhvi_learned 3) k0 in
  let v_u = Cone.final_value ~samples:2000 store_u (Cone.Iwhvi 3) (Prng.key 5) in
  let v_l =
    Cone.final_value ~samples:2000 store_l (Cone.Iwhvi_learned 3) (Prng.key 5)
  in
  Alcotest.(check bool)
    (Printf.sprintf "learned %.2f >= uniform %.2f - 0.5" v_l v_u)
    true
    (Float.is_finite v_l && v_l >= v_u -. 0.5)

let test_mcvi_trains_and_covers () =
  (* The MCVI guide (MH chain marginalized with [marginal]) must train
     and cover more of the ring than a mean-field guide. *)
  let store, reports = Mcvi.train ~train_steps:600 ~aux_particles:3 k0 in
  let window lo hi =
    let xs =
      List.filteri (fun i _ -> i >= lo && i < hi)
        (List.map (fun r -> r.Train.objective) reports)
    in
    List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)
  in
  let early = window 0 50 and late = window 550 600 in
  Alcotest.(check bool)
    (Printf.sprintf "MCVI objective reasonable: %.2f -> %.2f" early late)
    true
    (Float.is_finite late && late > early +. 1.);
  let pts = Mcvi.guide_samples store 200 (Prng.key 8) in
  let angles = List.map (fun (x, y) -> Float.atan2 y x) pts in
  let am = List.fold_left ( +. ) 0. angles /. 200. in
  let spread =
    Float.sqrt
      (List.fold_left (fun acc v -> acc +. ((v -. am) ** 2.)) 0. angles /. 200.)
  in
  Alcotest.(check bool)
    (Printf.sprintf "angular spread %.2f > 0.5" spread)
    true (spread > 0.5)

(* Coin (conjugate Beta-Bernoulli) *)

let test_coin_posterior () =
  let store, _, _ = Coin.train ~steps:800 ~samples:8 k0 in
  check_close "coin posterior mean" ~tol:0.05 Coin.exact_posterior_mean
    (Coin.posterior_mean store);
  Alcotest.(check bool) "coin elbo reasonable" true
    (Coin.final_elbo store (Prng.key 3) > -9.)

(* Regression *)

let test_regression_recovers_coefficients () =
  let store, _, _ = Regression.train ~steps:800 k0 in
  let a, ba, br, bar = Regression.coefficient_means store in
  let ta, tba, tbr, tbar = Data.regression_truth in
  check_close "a" ~tol:0.5 ta a;
  check_close "bA" ~tol:0.5 tba ba;
  check_close "bR" ~tol:0.25 tbr br;
  check_close "bAR" ~tol:0.25 tbar bar;
  let m, lo, hi =
    Regression.predict store ~ruggedness:3. ~in_africa:false (Prng.key 4)
  in
  Alcotest.(check bool) "credible interval brackets mean" true
    (lo <= m && m <= hi)

(* VAE *)

let test_vae_elbo_improves () =
  let _, reports = Vae.train ~steps:60 ~batch:32 (Prng.key 2) in
  let first = (List.nth reports 0).Train.objective in
  let last = (List.nth reports 59).Train.objective in
  Alcotest.(check bool)
    (Printf.sprintf "VAE improved %.1f -> %.1f" first last)
    true
    (last > first +. 10.)

(* AIR *)

let air_setup () =
  let store = Store.create () in
  Air.register store k0;
  let images, counts = Data.air_batch (Prng.key 77) 16 in
  (store, images, counts)

let test_air_all_strategies_run () =
  let store, images, _ = air_setup () in
  let optim = Optim.adam ~lr:1e-3 () in
  let baselines = Air.make_baselines () in
  List.iter
    (fun strat ->
      let mean, _ =
        Air.train_epoch ~pres:strat ~pos:strat ~store ~optim ~baselines
          ~objective:Air.Elbo ~images ~batch:8 k0
      in
      if not (Float.is_finite mean) then
        Alcotest.failf "AIR %s: non-finite objective" (Air.strategy_name strat))
    [ Air.RE; Air.RE_BL; Air.EN; Air.MV ]

let test_air_iwelbo_and_rws_run () =
  let store, images, _ = air_setup () in
  let optim = Optim.adam ~lr:1e-3 () in
  let baselines = Air.make_baselines () in
  List.iter
    (fun obj ->
      let mean, _ =
        Air.train_epoch ~store ~optim ~baselines ~objective:obj ~images
          ~batch:8 k0
      in
      if not (Float.is_finite mean) then
        Alcotest.failf "AIR %s: non-finite" (Air.objective_name obj))
    [ Air.Iwelbo 2; Air.Rws 2 ]

let test_air_count_inference_in_range () =
  let store, images, counts = air_setup () in
  let acc = Air.count_accuracy store images counts k0 in
  Alcotest.(check bool) "accuracy in [0,1]" true (acc >= 0. && acc <= 1.);
  let c = Air.infer_count store (Tensor.slice0 images 0) k0 in
  Alcotest.(check bool) "count in range" true (c >= 0 && c <= Data.max_objects)

(* Grid *)

let test_grid_ours_supports_everything () =
  List.iter
    (fun (combo, obj) ->
      (* The full-enumeration IWAE cells are exercised (more cheaply) by
         the benchmark harness. *)
      let heavy = obj = Grid.Iwae && (combo.Grid.pres = Air.EN || combo.Grid.pos = Air.EN) in
      if not heavy then
        match Grid.try_ours combo obj k0 with
        | Grid.Supported -> ()
        | Grid.Failed msg ->
          Alcotest.failf "ours failed %s/%s: %s" (Grid.combo_name combo)
            (Grid.objective_name obj) msg)
    Grid.rows

(* SSVAE *)

let test_ssvae_epoch_runs () =
  let store = Store.create () in
  Ssvae.register store k0;
  let images, labels = Data.digit_batch (Prng.key 5) 32 in
  let optim = Optim.adam ~lr:1e-3 () in
  let elbo, _ =
    Ssvae.train_epoch ~store ~optim ~images ~labels ~batch:8
      ~supervised_every:2 k0
  in
  Alcotest.(check bool) "finite unsup elbo" true (Float.is_finite elbo);
  let acc = Ssvae.classifier_accuracy store images labels in
  Alcotest.(check bool) "accuracy in [0,1]" true (acc >= 0. && acc <= 1.);
  let img = Ssvae.generate store ~label:3 k0 in
  Alcotest.(check int) "generated size" Data.sprite_dim (Tensor.size img)

(* CVAE *)

let test_cvae_epoch_runs () =
  let store = Store.create () in
  Cvae.register store k0;
  let images, _ = Data.digit_batch (Prng.key 6) 16 in
  let optim = Optim.adam ~lr:1e-3 () in
  let elbo, _ = Cvae.train_epoch ~store ~optim ~images ~batch:8 k0 in
  Alcotest.(check bool) "finite" true (Float.is_finite elbo);
  let filled = Cvae.fill_in store (Tensor.slice0 images 0) k0 in
  Alcotest.(check (array int)) "12x12"
    [| Data.sprite_side; Data.sprite_side |]
    (Tensor.shape filled);
  (* The observed quadrant is pasted back verbatim. *)
  let original = Data.quadrant (Tensor.slice0 images 0) Cvae.observed_quadrant in
  let copied = Data.quadrant filled Cvae.observed_quadrant in
  Alcotest.(check bool) "observed quadrant preserved" true
    (Tensor.approx_equal original copied)

let suites =
  [ ( "vi",
      [ Alcotest.test_case "sgd step" `Quick test_sgd_step;
        Alcotest.test_case "sgd skips nan" `Quick test_sgd_skips_nonfinite;
        Alcotest.test_case "adam quadratic" `Quick test_adam_minimizes_quadratic;
        Alcotest.test_case "elbo conjugate posterior" `Slow
          test_elbo_recovers_conjugate_posterior;
        Alcotest.test_case "iwelbo tighter" `Slow test_iwelbo_tighter_than_elbo;
        Alcotest.test_case "elbo(sir) = iwelbo" `Slow
          test_elbo_of_sir_equals_iwelbo;
        Alcotest.test_case "wake-sleep finite" `Slow
          test_wake_sleep_objectives_finite;
        Alcotest.test_case "rws fits model and guide" `Slow
          test_rws_fits_model_and_guide;
        Alcotest.test_case "cone elbo improves" `Slow test_cone_elbo_improves;
        Alcotest.test_case "cone circle" `Slow
          test_cone_guide_concentrates_on_circle;
        Alcotest.test_case "learned reverse kernel" `Slow
          test_learned_reverse_kernel_trains;
        Alcotest.test_case "mcvi trains" `Slow test_mcvi_trains_and_covers;
        Alcotest.test_case "coin posterior" `Slow test_coin_posterior;
        Alcotest.test_case "regression coefficients" `Slow
          test_regression_recovers_coefficients;
        Alcotest.test_case "vae improves" `Slow test_vae_elbo_improves;
        Alcotest.test_case "air strategies run" `Slow
          test_air_all_strategies_run;
        Alcotest.test_case "air iwelbo/rws run" `Slow
          test_air_iwelbo_and_rws_run;
        Alcotest.test_case "air count inference" `Quick
          test_air_count_inference_in_range;
        Alcotest.test_case "grid ours all supported" `Slow
          test_grid_ours_supports_everything;
        Alcotest.test_case "ssvae epoch" `Slow test_ssvae_epoch_runs;
        Alcotest.test_case "cvae epoch" `Slow test_cvae_epoch_runs ] ) ]
