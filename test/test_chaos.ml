(* Crash-recovery tests: a training run that is SIGKILLed mid-step at a
   fault-plan-chosen point and resumed from its rotated checkpoints
   must end with parameters bit-identical to an uninterrupted run.
   SIGKILL is uncatchable by design — recovery has to come from the
   durable state, not an exception handler. *)

let steps = 36
let every = 7

(* Child mode: earlier suites in this binary spawn domains, and OCaml
   forbids [Unix.fork] once they exist — so kill-cycle children are
   fresh re-executions of this test binary ([Unix.create_process] uses
   posix_spawn, not fork). The env marker short-circuits module
   initialization into one checkpointing training run, which the
   installed plan then SIGKILLs. *)
let () =
  match Sys.getenv_opt "PPVI_CHAOS_CHILD" with
  | None -> ()
  | Some spec ->
    let plan_seed = int_of_string (Sys.getenv "PPVI_CHAOS_PLAN_SEED") in
    let dir = Sys.getenv "PPVI_CHAOS_DIR" in
    (match Fault.plan_of_string ~seed:plan_seed spec with
    | Ok plan -> Fault.install plan
    | Error msg ->
      prerr_endline msg;
      Unix._exit 2);
    let cfg = Persist.cfg ~every dir in
    (try ignore (Coin.train ~steps ~samples:2 ~persist:cfg (Prng.key 0))
     with _ -> ());
    Unix._exit 0

let spawn_child ~dir ~plan_seed ~spec =
  flush stdout;
  flush stderr;
  let env =
    Array.append (Unix.environment ())
      [| "PPVI_CHAOS_CHILD=" ^ spec;
         "PPVI_CHAOS_PLAN_SEED=" ^ string_of_int plan_seed;
         "PPVI_CHAOS_DIR=" ^ dir |]
  in
  let pid =
    Unix.create_process_env Sys.executable_name
      [| Sys.executable_name |]
      env Unix.stdin Unix.stdout Unix.stderr
  in
  let _, status = Unix.waitpid [] pid in
  status

let tmp_dir tag =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ppvi-test-chaos-%s-%d" tag (Unix.getpid ()))
  in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  Array.iter
    (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (Sys.readdir dir);
  dir

let store_bits store =
  List.map
    (fun n ->
      (n, Array.map Int64.bits_of_float (Tensor.to_array (Store.tensor store n))))
    (Store.names store)

let train ?persist () =
  let store, _, _ = Coin.train ~steps ~samples:2 ?persist (Prng.key 0) in
  store_bits store

let check_bits msg a b =
  Alcotest.(check (list (pair string (array int64)))) msg a b

(* Stop-and-restart (no kill): running to step 14, then re-running the
   full command, must equal one uninterrupted run bit-for-bit. *)
let test_resume_equivalence_in_process () =
  let reference = train () in
  let dir = tmp_dir "resume" in
  let cfg = Persist.cfg ~every dir in
  let partial, _, _ = Coin.train ~steps:14 ~samples:2 ~persist:cfg (Prng.key 0) in
  ignore (store_bits partial);
  let resumed = train ~persist:cfg () in
  check_bits "resume = uninterrupted" reference resumed

(* Checkpointing itself must not perturb training. *)
let test_persist_is_transparent () =
  let reference = train () in
  let dir = tmp_dir "transparent" in
  let persisted = train ~persist:(Persist.cfg ~every dir) () in
  check_bits "persist = plain" reference persisted

(* The full chaos property: fork children that train under a fault plan
   whose seeded kill step SIGKILLs them mid-run; after the kill cycles,
   resume in-process (optionally past a corrupted newest checkpoint)
   and compare against the uninterrupted reference. *)
let run_kill_cycles ~dir ~cycles =
  let cfg = Persist.cfg ~every dir in
  let killed = ref 0 in
  for cycle = 1 to cycles do
    let spec = Printf.sprintf "kill-in=1..%d" (steps - 1) in
    match spawn_child ~dir ~plan_seed:(41 * cycle) ~spec with
    | Unix.WSIGNALED s when s = Sys.sigkill -> incr killed
    | Unix.WEXITED 0 -> () (* resumed past its kill step and finished *)
    | _ -> Alcotest.fail "child neither killed nor cleanly exited"
  done;
  (cfg, !killed)

let test_sigkill_resume_bit_identical () =
  let reference = train () in
  let dir = tmp_dir "sigkill" in
  let cfg, killed = run_kill_cycles ~dir ~cycles:3 in
  (* A fresh run is always behind cycle 1's kill step, so at least one
     child must actually have died by SIGKILL for the test to mean
     anything. *)
  Alcotest.(check bool) "at least one SIGKILL landed" true (killed >= 1);
  let final = train ~persist:cfg () in
  check_bits "SIGKILL + resume = uninterrupted" reference final

let test_sigkill_resume_past_corruption () =
  let reference = train () in
  let dir = tmp_dir "corrupt" in
  let cfg, _ = run_kill_cycles ~dir ~cycles:2 in
  (* Truncate the newest checkpoint: the resume must detect the damage
     and fall back to an older one, then still converge bit-exactly. *)
  let newest =
    Array.to_list (Sys.readdir dir)
    |> List.filter_map (fun f ->
           if String.length f > 5 && String.sub f 0 5 = "ckpt." then
             Option.map
               (fun i -> (i, Filename.concat dir f))
               (int_of_string_opt (String.sub f 5 (String.length f - 5)))
           else None)
    |> List.sort (fun (a, _) (b, _) -> compare b a)
  in
  (match newest with
  | (_, path) :: _ ->
    let len = (Unix.stat path).Unix.st_size in
    Unix.truncate path (len / 2)
  | [] -> Alcotest.fail "kill cycles left no checkpoints");
  let final = train ~persist:cfg () in
  check_bits "resume past corruption = uninterrupted" reference final

let suites =
  [ ( "chaos",
      [ Alcotest.test_case "resume equivalence" `Quick
          test_resume_equivalence_in_process;
        Alcotest.test_case "persist transparent" `Quick
          test_persist_is_transparent;
        Alcotest.test_case "sigkill resume bit-identical" `Quick
          test_sigkill_resume_bit_identical;
        Alcotest.test_case "sigkill resume past corruption" `Quick
          test_sigkill_resume_past_corruption ] ) ]
