(* Fault-injection plan tests: spec parsing, decision determinism, the
   disabled-hooks bit-identity property, and graceful degradation of
   the training loop under full-rate gradient poisoning and injected
   allocation failures. *)

let plan_exn ~seed spec =
  match Fault.plan_of_string ~seed spec with
  | Ok p -> p
  | Error msg -> Alcotest.failf "plan %S rejected: %s" spec msg

let test_parse_errors () =
  let rejected spec =
    Alcotest.(check bool)
      (Printf.sprintf "%S rejected" spec)
      true
      (match Fault.plan_of_string ~seed:0 spec with
      | Ok _ -> false
      | Error _ -> true)
  in
  rejected "bogus";
  rejected "io-error";
  rejected "io-error=1.5";
  rejected "io-error=-0.1";
  rejected "grad-nan=x";
  rejected "delay=0.5";
  rejected "delay=0.5:-3";
  rejected "kill-at=-1";
  rejected "kill-in=9..3";
  rejected "kill-in=7";
  rejected "unknown-kind=0.5"

let test_parse_accepts () =
  let p =
    plan_exn ~seed:4 "io-error=0.25, short-write=0.5; grad-nan=1 delay=0.1:20"
  in
  Alcotest.(check int) "seed" 4 (Fault.seed p);
  Alcotest.(check (option int)) "no kill" None (Fault.kill_step p);
  let q = plan_exn ~seed:4 "kill-at=17" in
  Alcotest.(check (option int)) "kill-at" (Some 17) (Fault.kill_step q)

let test_kill_in_range () =
  (* The kill step resolves inside [lo, hi] for every seed, and is a
     pure function of the seed. *)
  for seed = 0 to 49 do
    let p = plan_exn ~seed "kill-in=5..9" in
    match Fault.kill_step p with
    | Some k ->
      if k < 5 || k > 9 then Alcotest.failf "kill step %d outside 5..9" k;
      let p' = plan_exn ~seed "kill-in=5..9" in
      Alcotest.(check (option int))
        "same seed, same kill step" (Some k) (Fault.kill_step p')
    | None -> Alcotest.fail "kill-in produced no kill step"
  done

let test_decisions_deterministic () =
  (* Reinstalling the same plan replays the identical decision
     sequence: occurrence counters reset on install. *)
  let record () =
    let p = plan_exn ~seed:12 "grad-nan=0.4 grad-inf=0.2 io-error=0.3" in
    Fault.install p;
    let grads =
      (* classify rather than compare raw floats: NaN <> NaN would make
         two identical decision streams look different *)
      List.init 40 (fun i ->
          match Fault.grad_poison ~name:(Printf.sprintf "g%d" i) with
          | None -> `Clean
          | Some v when Float.is_nan v -> `Nan
          | Some _ -> `Inf)
    in
    let ios =
      List.init 40 (fun i ->
          match Fault.on_io ~op:`Write ~path:(Printf.sprintf "f%d" i) with
          | () -> false
          | exception Sys_error _ -> true)
    in
    Fault.clear ();
    (grads, ios)
  in
  let a = record () and b = record () in
  Alcotest.(check bool) "grad decisions replay" true (a = b);
  Alcotest.(check bool) "some poison fired" true
    (List.exists (fun d -> d <> `Clean) (fst a));
  Alcotest.(check bool) "some io fault fired" true (List.exists Fun.id (snd a))

let store_bits store =
  List.map
    (fun n -> Array.map Int64.bits_of_float (Tensor.to_array (Store.tensor store n)))
    (Store.names store)

let train_coin ?persist seed =
  let store, reports, _ = Coin.train ~steps:8 ~samples:2 ?persist (Prng.key seed) in
  (store_bits store, List.length reports)

(* The one-branch discipline, as a property: a run with no plan and a
   run with an installed all-zero-probability plan are bit-identical. *)
let prop_zero_plan_bit_identical =
  QCheck.Test.make ~name:"zero-probability plan is bit-identical" ~count:10
    QCheck.(int_range 0 1000)
    (fun seed ->
      Fault.clear ();
      let clean = train_coin seed in
      let p =
        plan_exn ~seed "io-error=0 short-write=0 grad-nan=0 grad-inf=0 oom=0"
      in
      Fault.install p;
      let faulted = Fun.protect ~finally:Fault.clear (fun () -> train_coin seed) in
      clean = faulted)

let test_full_grad_poison_freezes_params () =
  Fault.clear ();
  let clean, _ = train_coin 7 in
  let p = plan_exn ~seed:7 "grad-nan=1" in
  Fault.install p;
  Fun.protect ~finally:Fault.clear (fun () ->
      let store, reports, _ =
        Coin.train ~steps:8 ~samples:2 (Prng.key 7)
      in
      (* Every gradient is poisoned, so the optimizer's finite-partition
         skip drops every update: parameters keep their initial values. *)
      let init = Store.create () in
      Coin.register init;
      Alcotest.(check bool) "params frozen at init" true
        (store_bits store = store_bits init);
      Alcotest.(check bool) "differs from clean run" true
        (store_bits store <> clean);
      Alcotest.(check int) "all steps still reported" 8 (List.length reports);
      Alcotest.(check bool) "tally recorded poisons" true
        (List.mem_assoc "grad_nan" (Fault.injected ())))

let test_full_oom_skips_all_steps () =
  Fault.clear ();
  let p = plan_exn ~seed:3 "oom=1" in
  Fault.install p;
  Fun.protect ~finally:Fault.clear (fun () ->
      let store, reports, _ =
        Coin.train ~steps:6 ~samples:2 (Prng.key 3)
      in
      Alcotest.(check int) "no step committed a report" 0 (List.length reports);
      let init = Store.create () in
      Coin.register init;
      Alcotest.(check bool) "params frozen at init" true
        (store_bits store = store_bits init))

let test_delay_injects_but_preserves_results () =
  Fault.clear ();
  let clean = train_coin 5 in
  let p = plan_exn ~seed:5 "delay=1:1" in
  Fault.install p;
  let delayed = Fun.protect ~finally:Fault.clear (fun () -> train_coin 5) in
  Alcotest.(check bool) "delays change timing, not results" true
    (clean = delayed)

let suites =
  [ ( "fault",
      [ Alcotest.test_case "spec parse errors" `Quick test_parse_errors;
        Alcotest.test_case "spec parse accepts" `Quick test_parse_accepts;
        Alcotest.test_case "kill-in resolves in range" `Quick
          test_kill_in_range;
        Alcotest.test_case "decisions deterministic" `Quick
          test_decisions_deterministic;
        Alcotest.test_case "grad-nan=1 freezes params" `Quick
          test_full_grad_poison_freezes_params;
        Alcotest.test_case "oom=1 degrades gracefully" `Quick
          test_full_oom_skips_all_steps;
        Alcotest.test_case "delay preserves results" `Quick
          test_delay_injects_but_preserves_results ]
      @ List.map QCheck_alcotest.to_alcotest [ prop_zero_plan_bit_identical ] )
  ]
