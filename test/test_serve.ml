(* Tests for lib/serve: the wire protocol codecs and framing, the
   coalescing batcher's bit-identity contract (a batch of N mixed
   requests answers exactly like N sequential single-request calls,
   across domain counts and batch-window timings), admission control,
   graceful drain, and the socket daemon end to end — plus the
   truncated-trace and checkpoint-UX satellites' serve-side faces. *)

let bits = Int64.bits_of_float

let outcome_identical a b =
  match (a, b) with
  | Batcher.O_value x, Batcher.O_value y -> bits x = bits y
  | Batcher.O_sample (ta, qa), Batcher.O_sample (tb, qb) ->
    bits qa = bits qb
    && List.length ta = List.length tb
    && List.for_all2
         (fun (na, va) (nb, vb) -> na = nb && Proto.wire_value_equal va vb)
         ta tb
  | Batcher.O_grad (va, ga), Batcher.O_grad (vb, gb) ->
    bits va = bits vb
    && List.length ga = List.length gb
    && List.for_all2
         (fun (na, xa) (nb, xb) -> na = nb && bits xa = bits xb)
         ga gb
  | Batcher.O_error (ca, _), Batcher.O_error (cb, _) -> ca = cb
  | _ -> false

let outcome_str = function
  | Batcher.O_value v -> Printf.sprintf "value %h" v
  | Batcher.O_sample (_, q) -> Printf.sprintf "sample logq %h" q
  | Batcher.O_grad (v, _) -> Printf.sprintf "grad %h" v
  | Batcher.O_error (c, m) -> Printf.sprintf "error %s: %s" c m

(* ------------------------------------------------------------------ *)
(* Protocol codecs *)

let gen_wire_value =
  QCheck.Gen.(
    oneof
      [ map (fun f -> Proto.Scalar f) (oneofl [ 0.; -0.; 1.5e-300; Float.nan; Float.infinity; Float.neg_infinity; 3.141592653589793 ]);
        map (fun f -> Proto.Scalar f) float;
        map
          (fun fs -> Proto.Vector (Array.of_list fs))
          (list_size (int_range 0 5) float)
      ])

let gen_request =
  QCheck.Gen.(
    oneof
      [ map2
          (fun m tr -> Proto.Score { model = m; trace = tr })
          (oneofl [ "coin"; "cone"; "chain" ])
          (list_size (int_range 0 4)
             (pair (oneofl [ "x"; "y"; "z0"; "fairness" ]) gen_wire_value));
        map2 (fun m s -> Proto.Sample { model = m; seed = s }) string_small nat;
        map3
          (fun m s p -> Proto.Elbo { model = m; seed = s; particles = p + 1 })
          string_small nat (int_bound 4);
        map2 (fun m s -> Proto.Grad { model = m; seed = s }) string_small nat;
        return Proto.Health;
        return Proto.Stats;
        map2
          (fun v s -> Proto.Hello { version = v; schema = s })
          string_small nat
      ])

let gen_envelope =
  QCheck.Gen.(
    map3
      (fun id dl req -> { Proto.id; deadline_ms = dl; req })
      nat
      (opt (map (fun f -> Float.abs f +. 1.) pfloat))
      gen_request)

let wire_req_eq (a : Proto.envelope) (b : Proto.envelope) =
  a.Proto.id = b.Proto.id
  && (match (a.Proto.deadline_ms, b.Proto.deadline_ms) with
     | None, None -> true
     | Some x, Some y -> bits x = bits y
     | _ -> false)
  &&
  match (a.Proto.req, b.Proto.req) with
  | Proto.Score { model = ma; trace = ta }, Proto.Score { model = mb; trace = tb }
    ->
    ma = mb
    && List.length ta = List.length tb
    && List.for_all2
         (fun (na, va) (nb, vb) -> na = nb && Proto.wire_value_equal va vb)
         ta tb
  | ra, rb -> ra = rb

let proto_roundtrip =
  QCheck.Test.make ~name:"proto: request encode/decode round-trips" ~count:300
    (QCheck.make gen_envelope) (fun env ->
      match Proto.decode_request (Proto.encode_request env) with
      | Ok env' -> wire_req_eq env env'
      | Error msg -> QCheck.Test.fail_reportf "decode failed: %s" msg)

(* Replies additionally survive an actual serialization to text — the
   shortest-round-trip float writer is what makes wire bit-identity
   possible at all. *)
let gen_reply =
  QCheck.Gen.(
    oneof
      [ map (fun v -> Proto.R_value v) float;
        map (fun v -> Proto.R_value v)
          (oneofl [ Float.nan; Float.infinity; Float.neg_infinity; -0. ]);
        map2
          (fun tr q -> Proto.R_sample { trace = tr; logq = q })
          (list_size (int_range 0 4) (pair (oneofl [ "a"; "b"; "c" ]) gen_wire_value))
          float;
        map2
          (fun v gs -> Proto.R_grad { value = v; grads = gs })
          float
          (list_size (int_range 0 4) (pair (oneofl [ "p"; "q" ]) float));
        map2
          (fun c m -> Proto.R_error { code = c; msg = m })
          (oneofl [ "overloaded"; "draining"; "deadline"; "internal" ])
          string_small
      ])

let reply_roundtrip =
  QCheck.Test.make ~name:"proto: reply survives to_string/parse bit-exactly"
    ~count:300
    (QCheck.make QCheck.Gen.(pair nat gen_reply))
    (fun (rid, reply) ->
      let text = Obs.Json.to_string (Proto.encode_reply { Proto.rid; reply }) in
      match Obs.Json.parse text with
      | Error msg -> QCheck.Test.fail_reportf "reparse failed: %s" msg
      | Ok j -> (
        match Proto.decode_reply j with
        | Error msg -> QCheck.Test.fail_reportf "decode failed: %s" msg
        | Ok { rid = rid'; reply = reply' } ->
          rid = rid'
          &&
          (match (reply, reply') with
          | Proto.R_value a, Proto.R_value b -> bits a = bits b
          | Proto.R_sample { trace = ta; logq = qa }, Proto.R_sample { trace = tb; logq = qb }
            ->
            bits qa = bits qb
            && List.for_all2
                 (fun (na, va) (nb, vb) ->
                   na = nb && Proto.wire_value_equal va vb)
                 ta tb
          | Proto.R_grad { value = va; grads = ga }, Proto.R_grad { value = vb; grads = gb }
            ->
            bits va = bits vb
            && List.for_all2
                 (fun (na, xa) (nb, xb) -> na = nb && bits xa = bits xb)
                 ga gb
          | Proto.R_error { code = ca; _ }, Proto.R_error { code = cb; _ } ->
            ca = cb
          | _ -> false)))

let test_framing () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let big = Obs.Json.Str (String.make 100_000 'x') in
  let frames =
    [ Obs.Json.Obj []; Obs.Json.Num 1.5; big; Obs.Json.Arr [ Obs.Json.Null ] ]
  in
  List.iter (Proto.write_frame a) frames;
  List.iter
    (fun expect ->
      match Proto.read_frame b with
      | Ok j ->
        Alcotest.(check string)
          "frame round-trips"
          (Obs.Json.to_string expect) (Obs.Json.to_string j)
      | Error e -> Alcotest.fail (Proto.frame_error_to_string e))
    frames;
  (* A frame cut mid-body must read as Truncated, and a clean close as
     Eof — the connection handler tells them apart. *)
  let payload = Obs.Json.to_string (Obs.Json.Str "truncated") in
  let n = String.length payload in
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 (Int32.of_int n);
  ignore (Unix.write a hdr 0 4);
  ignore (Unix.write_substring a payload 0 (n - 3));
  Unix.close a;
  (match Proto.read_frame b with
  | Error Proto.Truncated -> ()
  | Ok _ -> Alcotest.fail "expected Truncated, got a frame"
  | Error e -> Alcotest.failf "expected Truncated, got %s" (Proto.frame_error_to_string e));
  (match Proto.read_frame b with
  | Error Proto.Eof -> ()
  | _ -> Alcotest.fail "expected Eof after close");
  Unix.close b

let test_oversized_frame () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 (Int32.of_int (1 lsl 30));
  ignore (Unix.write a hdr 0 4);
  (match Proto.read_frame ~max_len:(1 lsl 20) b with
  | Error (Proto.Oversized _) -> ()
  | _ -> Alcotest.fail "expected Oversized");
  Unix.close a;
  Unix.close b

(* ------------------------------------------------------------------ *)
(* Coalescing bit-identity (the tentpole's correctness satellite) *)

let fresh_batcher cfg =
  let b = Batcher.create cfg in
  Batcher.register_builtins b;
  b

(* A deterministic mixed request stream over every built-in model. *)
let nth_test_request ~seed i =
  let model = [| "coin"; "cone"; "chain" |].(i mod 3) in
  match i mod 4 with
  | 0 | 2 -> Serve.nth_request ~model ~seed i (* score / elbo mix *)
  | 1 -> Proto.Sample { model; seed = (seed * 31) + i }
  | _ -> Proto.Elbo { model; seed = (seed * 17) + i; particles = 1 + (i mod 3) }

let run_sequential ~seed n =
  (* max_batch 1 and a zero window: every request is its own batch. *)
  let b =
    fresh_batcher { Batcher.max_batch = 1; max_wait_us = 0.; queue_bound = 1024 }
  in
  Batcher.start b;
  let outs =
    Array.init n (fun i -> Batcher.submit b (nth_test_request ~seed i))
  in
  Batcher.drain b;
  outs

let run_concurrent ~seed ~max_wait_us n =
  let b =
    fresh_batcher
      { Batcher.max_batch = 64; max_wait_us; queue_bound = 1024 }
  in
  (* Fill the queue before the executor starts: maximal coalescing. *)
  Batcher.pause b;
  Batcher.start b;
  let outs = Array.make n (Batcher.O_error ("missing", "no reply")) in
  let threads =
    List.init n (fun i ->
        Thread.create
          (fun () -> outs.(i) <- Batcher.submit b (nth_test_request ~seed i))
          ())
  in
  (* Wait until every submission is queued, then release the executor. *)
  let rec wait_queued tries =
    if Batcher.queue_depth b < n && tries > 0 then begin
      Thread.delay 0.002;
      wait_queued (tries - 1)
    end
  in
  wait_queued 2000;
  Batcher.resume b;
  List.iter Thread.join threads;
  let stats = Batcher.stats b in
  Batcher.drain b;
  (outs, stats)

let coalesce_identity =
  QCheck.Test.make
    ~name:
      "batcher: batch of N mixed requests bit-identical to N sequential \
       calls (across windows and domain counts)"
    ~count:12
    QCheck.(
      make
        Gen.(
          triple (int_range 3 20) (int_range 0 100_000)
            (oneofl [ 0.; 200.; 2000. ])))
    (fun (n, seed, max_wait_us) ->
      let seq = run_sequential ~seed n in
      let conc, _ = run_concurrent ~seed ~max_wait_us n in
      Array.iteri
        (fun i a ->
          if not (outcome_identical a conc.(i)) then
            QCheck.Test.fail_reportf
              "request %d diverged:\n  sequential: %s\n  concurrent: %s" i
              (outcome_str a) (outcome_str conc.(i)))
        seq;
      true)

let test_coalesce_identity_domains () =
  (* The same identity must hold when tensor kernels run on a domain
     pool: coalesced rows are [n]-vectors, big enough to tempt the
     parallel partitioner. *)
  let saved = Parallel.domains () in
  Fun.protect
    ~finally:(fun () -> Parallel.set_domains saved)
    (fun () ->
      List.iter
        (fun domains ->
          Parallel.set_domains domains;
          let n = 24 and seed = 7 in
          let seq = run_sequential ~seed n in
          let conc, stats = run_concurrent ~seed ~max_wait_us:0. n in
          ignore stats;
          Array.iteri
            (fun i a ->
              if not (outcome_identical a conc.(i)) then
                Alcotest.failf "domains=%d request %d diverged: %s vs %s"
                  domains i (outcome_str a) (outcome_str conc.(i)))
            seq)
        [ 1; 2 ])

let test_coalescing_actually_batches () =
  let n = 30 in
  let _, stats = run_concurrent ~seed:3 ~max_wait_us:0. n in
  Alcotest.(check int) "all rows executed" n stats.Batcher.s_rows;
  if Batcher.coalesce_ratio stats < 2. then
    Alcotest.failf "coalesce ratio %.2f < 2 (batches=%d rows=%d)"
      (Batcher.coalesce_ratio stats)
      stats.Batcher.s_batches stats.Batcher.s_rows;
  if stats.Batcher.s_vectorized_rows = 0 then
    Alcotest.fail "no rows were vectorized"

let test_score_matches_direct_density () =
  (* A served score must equal the direct interpreter evaluation. *)
  let b =
    fresh_batcher { Batcher.max_batch = 1; max_wait_us = 0.; queue_bound = 16 }
  in
  Batcher.start b;
  let x = 0.8 and y = -0.3 in
  let out =
    Batcher.submit b
      (Proto.Score
         {
           model = "cone";
           trace = [ ("x", Proto.Scalar x); ("y", Proto.Scalar y) ];
         })
  in
  Batcher.drain b;
  let tr =
    Trace.of_list
      [ ("x", Value.Real (Ad.scalar x)); ("y", Value.Real (Ad.scalar y)) ]
  in
  let direct =
    Ad.to_float
      (Adev.run (Gen.log_density Cone.model tr) (Prng.key 0) (fun w -> w))
  in
  match out with
  | Batcher.O_value v ->
    Alcotest.(check bool)
      (Printf.sprintf "score %h = direct %h" v direct)
      true
      (bits v = bits direct)
  | other -> Alcotest.failf "expected a value, got %s" (outcome_str other)

(* ------------------------------------------------------------------ *)
(* Admission control, deadlines, drain *)

let test_admission_overload () =
  let b =
    fresh_batcher { Batcher.max_batch = 8; max_wait_us = 0.; queue_bound = 2 }
  in
  Batcher.pause b;
  Batcher.start b;
  let outs = Array.make 2 (Batcher.O_error ("missing", "")) in
  let threads =
    List.init 2 (fun i ->
        Thread.create
          (fun () ->
            outs.(i) <- Batcher.submit b (Proto.Sample { model = "cone"; seed = i }))
          ())
  in
  let rec wait_queued tries =
    if Batcher.queue_depth b < 2 && tries > 0 then begin
      Thread.delay 0.002;
      wait_queued (tries - 1)
    end
  in
  wait_queued 2000;
  (* Queue is at the bound: the next request is shed immediately. *)
  (match Batcher.submit b (Proto.Sample { model = "cone"; seed = 99 }) with
  | Batcher.O_error ("overloaded", _) -> ()
  | other -> Alcotest.failf "expected overloaded, got %s" (outcome_str other));
  Batcher.resume b;
  List.iter Thread.join threads;
  Array.iter
    (fun o ->
      match o with
      | Batcher.O_sample _ -> ()
      | other -> Alcotest.failf "queued request lost: %s" (outcome_str other))
    outs;
  let s = Batcher.stats b in
  Alcotest.(check int) "overload counted" 1 s.Batcher.s_overloaded;
  Batcher.drain b

let test_deadline () =
  let b =
    fresh_batcher { Batcher.max_batch = 8; max_wait_us = 0.; queue_bound = 16 }
  in
  Batcher.pause b;
  Batcher.start b;
  let result = ref (Batcher.O_error ("missing", "")) in
  let th =
    Thread.create
      (fun () ->
        result :=
          Batcher.submit b ~deadline_ms:1.
            (Proto.Score { model = "cone"; trace = [ ("x", Proto.Scalar 0.); ("y", Proto.Scalar 0.) ] }))
      ()
  in
  let rec wait_queued tries =
    if Batcher.queue_depth b < 1 && tries > 0 then begin
      Thread.delay 0.002;
      wait_queued (tries - 1)
    end
  in
  wait_queued 2000;
  Thread.delay 0.02;
  (* 20ms > the 1ms deadline *)
  Batcher.resume b;
  Thread.join th;
  (match !result with
  | Batcher.O_error ("deadline", _) -> ()
  | other -> Alcotest.failf "expected deadline, got %s" (outcome_str other));
  Batcher.drain b

let test_drain_flushes_and_rejects () =
  let b =
    fresh_batcher { Batcher.max_batch = 8; max_wait_us = 0.; queue_bound = 16 }
  in
  Batcher.pause b;
  Batcher.start b;
  let n = 5 in
  let outs = Array.make n (Batcher.O_error ("missing", "")) in
  let threads =
    List.init n (fun i ->
        Thread.create
          (fun () ->
            outs.(i) <- Batcher.submit b (Proto.Sample { model = "coin"; seed = i }))
          ())
  in
  let rec wait_queued tries =
    if Batcher.queue_depth b < n && tries > 0 then begin
      Thread.delay 0.002;
      wait_queued (tries - 1)
    end
  in
  wait_queued 2000;
  (* Drain resumes the paused executor and flushes every queued job. *)
  Batcher.drain b;
  List.iter Thread.join threads;
  Array.iteri
    (fun i o ->
      match o with
      | Batcher.O_sample _ -> ()
      | other -> Alcotest.failf "queued request %d lost in drain: %s" i (outcome_str other))
    outs;
  (* Post-drain submissions are refused with an explicit reply. *)
  match Batcher.submit b (Proto.Sample { model = "coin"; seed = 0 }) with
  | Batcher.O_error ("draining", _) -> ()
  | other -> Alcotest.failf "expected draining, got %s" (outcome_str other)

let test_unknown_model () =
  let b =
    fresh_batcher { Batcher.max_batch = 1; max_wait_us = 0.; queue_bound = 4 }
  in
  Batcher.start b;
  (match Batcher.submit b (Proto.Sample { model = "nope"; seed = 0 }) with
  | Batcher.O_error ("unknown-model", _) -> ()
  | other -> Alcotest.failf "expected unknown-model, got %s" (outcome_str other));
  Batcher.drain b

(* ------------------------------------------------------------------ *)
(* Hot reload (plan + parameter-store cache) *)

let test_param_hot_reload () =
  let dir = Filename.temp_file "ppvi-serve-params" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let model_dir = Filename.concat dir "cone" in
  Unix.mkdir model_dir 0o755;
  (* First checkpoint: distinctive parameters. *)
  let s0 = Store.create () in
  Cone.register s0 (Prng.key 0);
  Store.set s0 "cone.naive.mx" (Tensor.scalar 2.5);
  ignore (Store.save_rotated s0 ~dir:model_dir);
  let b =
    Batcher.create { Batcher.max_batch = 4; max_wait_us = 0.; queue_bound = 16 }
  in
  Batcher.register_builtins ~params_root:dir b;
  Batcher.start b;
  let sample_mean seed =
    match Batcher.submit b (Proto.Sample { model = "cone"; seed }) with
    | Batcher.O_sample (trace, _) -> (
      match List.assoc_opt "x" trace with
      | Some (Proto.Scalar v) -> v
      | _ -> Alcotest.fail "sample without x")
    | other -> Alcotest.failf "expected sample, got %s" (outcome_str other)
  in
  let before = sample_mean 5 in
  (* Rotate the checkpoint with shifted parameters; the poller must
     pick it up (it polls at most every 250ms). *)
  Store.set s0 "cone.naive.mx" (Tensor.scalar (-2.5));
  ignore (Store.save_rotated s0 ~dir:model_dir);
  Thread.delay 0.3;
  let rec wait_reload tries =
    let s = Batcher.stats b in
    if s.Batcher.s_reloads = 0 && tries > 0 then begin
      ignore (sample_mean 1);
      Thread.delay 0.05;
      wait_reload (tries - 1)
    end
  in
  wait_reload 40;
  let after = sample_mean 5 in
  Batcher.drain b;
  let s = Batcher.stats b in
  if s.Batcher.s_reloads = 0 then Alcotest.fail "no hot reload happened";
  (* Same seed, shifted guide mean: the draw must move with it. *)
  if bits before = bits after then
    Alcotest.failf "sample ignored the reloaded parameters (%h = %h)" before
      after

(* ------------------------------------------------------------------ *)
(* Socket daemon end to end *)

let with_server ?(max_wait_us = 0.) f =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ppvi-test-%d.sock" (Unix.getpid ()))
  in
  let cfg =
    { (Serve.default_cfg (`Unix path)) with Serve.max_wait_us; queue_bound = 64 }
  in
  let s = Serve.start cfg in
  let finish () =
    Serve.request_drain s;
    Serve.wait s
  in
  Fun.protect ~finally:finish (fun () -> f path s)

let test_server_end_to_end () =
  with_server (fun path server ->
      let conn = Serve.Client.connect (`Unix path) in
      let version, schema, models = Serve.Client.server_info conn in
      Alcotest.(check string) "handshake version" Proto.build_version version;
      Alcotest.(check int) "handshake schema" Proto.schema_version schema;
      Alcotest.(check (list string))
        "handshake models" [ "chain"; "coin"; "cone" ] models;
      (match Serve.Client.call conn Proto.Health with
      | Proto.R_health { status; version; _ } ->
        Alcotest.(check string) "health status" "serving" status;
        Alcotest.(check string) "health version" Proto.build_version version
      | _ -> Alcotest.fail "bad health reply");
      (* A served score equals the direct evaluation, through sockets. *)
      let x = 1.25 and y = 0.5 in
      (match
         Serve.Client.call conn
           (Proto.Score
              {
                model = "cone";
                trace = [ ("x", Proto.Scalar x); ("y", Proto.Scalar y) ];
              })
       with
      | Proto.R_value v ->
        let tr =
          Trace.of_list
            [ ("x", Value.Real (Ad.scalar x)); ("y", Value.Real (Ad.scalar y)) ]
        in
        let direct =
          Ad.to_float
            (Adev.run (Gen.log_density Cone.model tr) (Prng.key 0) (fun w -> w))
        in
        if bits v <> bits direct then
          Alcotest.failf "wire score %h <> direct %h" v direct
      | r ->
        Alcotest.failf "bad score reply: %s"
          (Obs.Json.to_string (Proto.encode_reply { Proto.rid = 0; reply = r })));
      (match Serve.Client.call conn Proto.Stats with
      | Proto.R_stats (Obs.Json.Obj fields) ->
        Alcotest.(check bool)
          "stats has coalesce_ratio" true
          (List.mem_assoc "coalesce_ratio" fields)
      | _ -> Alcotest.fail "bad stats reply");
      Serve.Client.close conn;
      ignore server)

let test_server_schema_mismatch () =
  with_server (fun path _ ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      Proto.write_frame fd
        (Proto.encode_request
           {
             Proto.id = 0;
             deadline_ms = None;
             req = Proto.Hello { version = "9.9.9"; schema = 999 };
           });
      (match Proto.read_frame fd with
      | Ok j -> (
        match Proto.decode_reply j with
        | Ok { reply = Proto.R_error { code = "schema-mismatch"; msg }; _ } ->
          if not (String.length msg > 0) then Alcotest.fail "empty mismatch msg"
        | _ -> Alcotest.fail "expected a schema-mismatch error")
      | Error e -> Alcotest.fail (Proto.frame_error_to_string e));
      (* The server closes the connection after refusing. *)
      (match Proto.read_frame fd with
      | Error Proto.Eof -> ()
      | _ -> Alcotest.fail "expected Eof after schema refusal");
      Unix.close fd)

let test_server_drain_loses_nothing () =
  (* Stream load from several clients, trigger a drain mid-flight:
     every request that was sent must get a reply (a value or an
     explicit [draining] error) — lost must be 0, on every attempt.
     Whether the drain lands while requests are still in flight is a
     race against the machine, so retry with a growing load until one
     attempt actually observes draining replies. *)
  let rec attempt tries requests =
    if tries = 0 then
      Alcotest.fail "no attempt caught the drain mid-flight"
    else
      let caught =
        with_server (fun path server ->
            let drainer =
              Thread.create
                (fun () ->
                  Thread.delay 0.01;
                  Serve.request_drain server)
                ()
            in
            let report =
              Serve.run_load (`Unix path) ~clients:6 ~requests ~model:"chain"
                ~seed:11 ()
            in
            Thread.join drainer;
            Alcotest.(check int) "zero lost requests" 0 report.Serve.lr_lost;
            if report.Serve.lr_ok = 0 then Alcotest.fail "no request succeeded";
            report.Serve.lr_draining > 0)
      in
      if not caught then attempt (tries - 1) (requests * 2)
  in
  attempt 5 50

let test_server_load_bit_identity () =
  with_server ~max_wait_us:300. (fun path _ ->
      let sequential =
        Serve.run_load (`Unix path) ~clients:1 ~requests:48 ~model:"chain"
          ~seed:21 ()
      in
      let concurrent =
        Serve.run_load (`Unix path) ~clients:12 ~requests:4 ~model:"chain"
          ~seed:21 ()
      in
      Alcotest.(check int) "sequential all ok" 48 sequential.Serve.lr_ok;
      Alcotest.(check int) "concurrent all ok" 48 concurrent.Serve.lr_ok;
      Alcotest.(check int)
        "bit-identical replies" 0
        (Serve.mismatches sequential concurrent))

(* ------------------------------------------------------------------ *)
(* Fault hooks in the serving path *)

let test_fault_hook_in_admission () =
  (match Fault.plan_of_string ~seed:0 "io-error=1.0" with
  | Ok plan -> Fault.install plan
  | Error msg -> Alcotest.fail msg);
  Fun.protect ~finally:Fault.clear (fun () ->
      let b =
        fresh_batcher
          { Batcher.max_batch = 1; max_wait_us = 0.; queue_bound = 4 }
      in
      Batcher.start b;
      (match Batcher.submit b (Proto.Sample { model = "cone"; seed = 0 }) with
      | Batcher.O_error ("fault", _) -> ()
      | other ->
        Alcotest.failf "expected an injected fault error, got %s"
          (outcome_str other));
      Batcher.drain b)

let suites =
  [ ( "serve-proto",
      [ QCheck_alcotest.to_alcotest proto_roundtrip;
        QCheck_alcotest.to_alcotest reply_roundtrip;
        Alcotest.test_case "framing round-trip and truncation" `Quick
          test_framing;
        Alcotest.test_case "oversized frames are refused" `Quick
          test_oversized_frame
      ] );
    ( "serve-batcher",
      [ QCheck_alcotest.to_alcotest coalesce_identity;
        Alcotest.test_case "bit-identity across domain counts" `Quick
          test_coalesce_identity_domains;
        Alcotest.test_case "concurrent load actually coalesces" `Quick
          test_coalescing_actually_batches;
        Alcotest.test_case "served score = direct density" `Quick
          test_score_matches_direct_density;
        Alcotest.test_case "overload sheds with an explicit reply" `Quick
          test_admission_overload;
        Alcotest.test_case "queueing deadline rejects" `Quick test_deadline;
        Alcotest.test_case "drain flushes the queue, then refuses" `Quick
          test_drain_flushes_and_rejects;
        Alcotest.test_case "unknown model" `Quick test_unknown_model;
        Alcotest.test_case "checkpoint hot reload" `Quick test_param_hot_reload;
        Alcotest.test_case "fault plan covers admission" `Quick
          test_fault_hook_in_admission
      ] );
    ( "serve-daemon",
      [ Alcotest.test_case "handshake, health, score, stats" `Quick
          test_server_end_to_end;
        Alcotest.test_case "schema mismatch fails loudly" `Quick
          test_server_schema_mismatch;
        Alcotest.test_case "drain loses zero accepted requests" `Quick
          test_server_drain_loses_nothing;
        Alcotest.test_case "socket load bit-identical to sequential" `Quick
          test_server_load_bit_identity
      ] )
  ]
