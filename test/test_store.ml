(* Durable persistence tests: v2 checksummed round-trips (bit-exact,
   including NaN/Inf), v1 compatibility, corruption and truncation
   detection (every strict prefix must raise, never OOM), rotated
   checkpoints with fallback, and atomic-save failure behavior. *)

let tmp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "ppvi-test-store-%d-%d" (Unix.getpid ()) !counter)
    in
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    dir

let tmp_file () = Filename.concat (tmp_dir ()) "store.ckpt"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let u32 n =
  let b = Buffer.create 4 in
  Buffer.add_char b (Char.chr ((n lsr 24) land 0xFF));
  Buffer.add_char b (Char.chr ((n lsr 16) land 0xFF));
  Buffer.add_char b (Char.chr ((n lsr 8) land 0xFF));
  Buffer.add_char b (Char.chr (n land 0xFF));
  Buffer.contents b

let tensor_bits x =
  Array.map Int64.bits_of_float (Tensor.to_array x)

let store_bits store =
  List.map (fun n -> (n, tensor_bits (Store.tensor store n))) (Store.names store)

let check_bits msg a b =
  Alcotest.(check (list (pair string (array int64)))) msg a b

let sample_store () =
  let store = Store.create () in
  Store.ensure store "w" (fun () ->
      Tensor.of_list1 [ 1.5; -2.25; Float.nan; Float.infinity ]);
  Store.ensure store "b" (fun () -> Tensor.scalar (-0.0));
  Store.ensure store "m" (fun () ->
      Tensor.of_array [| 2; 2 |] [| 1e-310; Float.neg_infinity; 0.; 42. |]);
  store

let test_roundtrip_v2 () =
  let store = sample_store () in
  let path = tmp_file () in
  Store.save store path;
  let loaded = Store.load path in
  check_bits "bit-exact round-trip" (store_bits store) (store_bits loaded)

let test_roundtrip_v1 () =
  let store = sample_store () in
  let path = tmp_file () in
  Store.save_v1 store path;
  let loaded = Store.load path in
  check_bits "v1 files stay readable" (store_bits store) (store_bits loaded)

let is_corrupt f =
  match f () with
  | (_ : Store.t) -> false
  | exception Store.Corrupt_checkpoint _ -> true

let test_every_prefix_corrupt () =
  let store = sample_store () in
  let path = tmp_file () in
  Store.save store path;
  let data = read_file path in
  let cut = Filename.concat (Filename.dirname path) "prefix.ckpt" in
  for len = 0 to String.length data - 1 do
    write_file cut (String.sub data 0 len);
    if not (is_corrupt (fun () -> Store.load cut)) then
      Alcotest.failf "prefix of %d/%d bytes loaded without error" len
        (String.length data)
  done;
  (* sanity: the full file still loads *)
  write_file cut data;
  ignore (Store.load cut)

let test_bit_rot_detected () =
  let store = sample_store () in
  let path = tmp_file () in
  Store.save store path;
  let data = Bytes.of_string (read_file path) in
  (* flip one bit in the middle of the payload *)
  let i = Bytes.length data / 2 in
  Bytes.set data i (Char.chr (Char.code (Bytes.get data i) lxor 0x10));
  write_file path (Bytes.to_string data);
  Alcotest.(check bool) "flipped byte detected" true
    (is_corrupt (fun () -> Store.load path))

let test_trailing_bytes_detected () =
  let store = sample_store () in
  let dir = tmp_dir () in
  let v2 = Filename.concat dir "v2.ckpt" in
  let v1 = Filename.concat dir "v1.ckpt" in
  Store.save store v2;
  Store.save_v1 store v1;
  write_file v2 (read_file v2 ^ "garbage");
  write_file v1 (read_file v1 ^ "garbage");
  Alcotest.(check bool) "v2 trailing bytes" true
    (is_corrupt (fun () -> Store.load v2));
  Alcotest.(check bool) "v1 trailing bytes" true
    (is_corrupt (fun () -> Store.load v1))

(* Absurd length fields must raise Corrupt_checkpoint after a cheap
   bound check against the file's actual size — not attempt a
   multi-gigabyte allocation. (v1, because it has no checksum to catch
   the lie first.) *)
let test_absurd_lengths () =
  let dir = tmp_dir () in
  let craft name body =
    let path = Filename.concat dir name in
    write_file path ("PPVISTOR" ^ u32 1 ^ body);
    path
  in
  let absurd_name = craft "name.ckpt" (u32 1 ^ u32 0x7FFFFF00) in
  let absurd_count = craft "count.ckpt" (u32 0x7FFFFF00) in
  let absurd_rank = craft "rank.ckpt" (u32 1 ^ u32 1 ^ "a" ^ u32 0x7FFFFF00) in
  let absurd_dim =
    craft "dim.ckpt" (u32 1 ^ u32 1 ^ "a" ^ u32 2 ^ u32 0x7FFF ^ u32 0x7FFFF)
  in
  List.iter
    (fun path ->
      Alcotest.(check bool)
        (Filename.basename path ^ " rejected") true
        (is_corrupt (fun () -> Store.load path)))
    [ absurd_name; absurd_count; absurd_rank; absurd_dim ]

let test_duplicate_name_rejected () =
  let store = Store.create () in
  Store.ensure store "a" (fun () -> Tensor.scalar 1.);
  let dir = tmp_dir () in
  let path = Filename.concat dir "dup.ckpt" in
  Store.save_v1 store path;
  let data = read_file path in
  let record = String.sub data 16 (String.length data - 16) in
  write_file path ("PPVISTOR" ^ u32 1 ^ u32 2 ^ record ^ record);
  Alcotest.(check bool) "duplicate tensor name rejected" true
    (is_corrupt (fun () -> Store.load path))

let test_rotation_and_fallback () =
  let dir = tmp_dir () in
  Alcotest.(check (option (pair pass string)))
    "empty dir -> None" None
    (Store.load_latest (Filename.concat dir "missing"));
  let saved =
    List.init 5 (fun i ->
        let store = Store.create () in
        Store.ensure store "x" (fun () -> Tensor.scalar (float_of_int i));
        Store.save_rotated ~keep:3 store ~dir)
  in
  let files = List.sort compare (Array.to_list (Sys.readdir dir)) in
  Alcotest.(check (list string))
    "keep=3 prunes the oldest"
    [ "ckpt.3"; "ckpt.4"; "ckpt.5"; "latest" ]
    files;
  (match Store.load_latest dir with
  | Some (store, path) ->
    Alcotest.(check string) "newest wins" (List.nth saved 4) path;
    Alcotest.(check (float 0.)) "newest payload" 4.
      (Tensor.to_scalar (Store.tensor store "x"))
  | None -> Alcotest.fail "expected a checkpoint");
  (* Truncate the newest: load_latest must fall back to ckpt.4. *)
  let newest = Filename.concat dir "ckpt.5" in
  let data = read_file newest in
  write_file newest (String.sub data 0 (String.length data / 2));
  (match Store.load_latest dir with
  | Some (store, path) ->
    Alcotest.(check string) "fallback past corrupt newest"
      (Filename.concat dir "ckpt.4")
      path;
    Alcotest.(check (float 0.)) "fallback payload" 3.
      (Tensor.to_scalar (Store.tensor store "x"))
  | None -> Alcotest.fail "expected a fallback checkpoint");
  (* Corrupt every candidate: now loading must raise, not silently
     start fresh. *)
  List.iter
    (fun f ->
      match
        if String.length f > 5 && String.sub f 0 5 = "ckpt." then
          Some (Filename.concat dir f)
        else None
      with
      | Some path -> write_file path "PPVISTOR-not-really"
      | None -> ())
    (Array.to_list (Sys.readdir dir));
  Alcotest.(check bool) "all-corrupt dir raises" true
    (match Store.load_latest dir with
    | _ -> false
    | exception Store.Corrupt_checkpoint _ -> true)

(* A failing save must leave the previous checkpoint intact: the write
   goes to a temp file and the rename never happens. Fault injection
   with io-error=1 makes every write attempt fail deterministically. *)
let test_failed_save_preserves_old () =
  let path = tmp_file () in
  let old = sample_store () in
  Store.save old path;
  let updated = Store.create () in
  Store.ensure updated "w" (fun () -> Tensor.scalar 9.);
  (match Fault.plan_of_string ~seed:3 "io-error=1" with
  | Ok plan -> Fault.install plan
  | Error msg -> Alcotest.fail msg);
  Fun.protect ~finally:Fault.clear (fun () ->
      Alcotest.(check bool) "save fails after retries" true
        (match Store.save ~retries:2 ~backoff_ms:0.001 updated path with
        | () -> false
        | exception Sys_error _ -> true));
  check_bits "old checkpoint intact" (store_bits old)
    (store_bits (Store.load path))

(* A short write (fault-truncated temp file) must also fail the save
   and leave no torn file at the destination. *)
let test_short_write_fails_save () =
  let path = tmp_file () in
  let old = sample_store () in
  Store.save old path;
  (match Fault.plan_of_string ~seed:11 "short-write=1" with
  | Ok plan -> Fault.install plan
  | Error msg -> Alcotest.fail msg);
  Fun.protect ~finally:Fault.clear (fun () ->
      Alcotest.(check bool) "short write surfaces as Sys_error" true
        (match Store.save (sample_store ()) path with
        | () -> false
        | exception Sys_error _ -> true));
  check_bits "destination untouched" (store_bits old)
    (store_bits (Store.load path))

(* load_latest_result gives a typed, hinted answer for each way the
   resume UX can go wrong: missing dir, empty dir, all-corrupt. The
   legacy load_latest wrapper keeps its exact behavior. *)
let test_load_latest_result_typed_errors () =
  let dir = tmp_dir () in
  let missing = Filename.concat dir "never-created" in
  (match Store.load_latest_result missing with
  | Error (Store.No_directory d) ->
    Alcotest.(check string) "names the missing dir" missing d;
    let msg = Store.latest_error_message (Store.No_directory d) in
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "missing-dir hint present" true
      (contains msg "hint" && contains msg d)
  | Ok _ -> Alcotest.fail "missing dir must not load"
  | Error e ->
    Alcotest.failf "wrong error class: %s" (Store.latest_error_message e));
  (* Exists but has no ckpt.N files. *)
  (match Store.load_latest_result dir with
  | Error (Store.No_checkpoints d) ->
    Alcotest.(check string) "names the empty dir" dir d
  | Ok _ -> Alcotest.fail "empty dir must not load"
  | Error e ->
    Alcotest.failf "wrong error class: %s" (Store.latest_error_message e));
  Alcotest.(check (option (pair pass string)))
    "load_latest still answers None on empty" None (Store.load_latest dir);
  (* Only corrupt candidates: typed All_corrupt, and the wrapper still
     raises rather than silently starting over. *)
  write_file (Filename.concat dir "ckpt.1") "PPVISTOR-not-really";
  write_file (Filename.concat dir "latest") "ckpt.1";
  (match Store.load_latest_result dir with
  | Error (Store.All_corrupt { dir = d; tried }) ->
    Alcotest.(check string) "names the dir" dir d;
    Alcotest.(check int) "counts candidates" 1 tried
  | Ok _ -> Alcotest.fail "corrupt dir must not load"
  | Error e ->
    Alcotest.failf "wrong error class: %s" (Store.latest_error_message e));
  Alcotest.(check bool) "load_latest still raises on all-corrupt" true
    (match Store.load_latest dir with
    | _ -> false
    | exception Store.Corrupt_checkpoint _ -> true);
  (* Happy path: a real checkpoint loads with its path. *)
  let store = Store.create () in
  Store.ensure store "x" (fun () -> Tensor.scalar 7.);
  let written = Store.save_rotated store ~dir in
  match Store.load_latest_result dir with
  | Ok (loaded, path) ->
    Alcotest.(check string) "returns the written path" written path;
    Alcotest.(check (float 0.)) "payload" 7.
      (Tensor.to_scalar (Store.tensor loaded "x"))
  | Error e -> Alcotest.fail (Store.latest_error_message e)

(* qcheck: random stores round-trip bit-exactly, including NaN. *)
let float_gen =
  QCheck.Gen.(
    frequency
      [ (8, float);
        (1, return Float.nan);
        (1, oneofl [ Float.infinity; Float.neg_infinity; -0.0; 1e-310 ]) ])

let prop_roundtrip =
  QCheck.Test.make ~name:"store round-trip is bit-exact (incl. NaN)" ~count:40
    (QCheck.make
       QCheck.Gen.(list_size (int_range 1 4) (array_size (int_range 1 6) float_gen)))
    (fun arrays ->
      let store = Store.create () in
      List.iteri
        (fun i a ->
          Store.ensure store
            (Printf.sprintf "p%d" i)
            (fun () -> Tensor.of_array [| Array.length a |] a))
        arrays;
      let path = tmp_file () in
      Store.save store path;
      store_bits (Store.load path) = store_bits store)

(* qcheck: chopping a random strict prefix always raises. *)
let prop_prefix_corrupt =
  QCheck.Test.make ~name:"any strict prefix raises Corrupt_checkpoint"
    ~count:60
    (QCheck.make QCheck.Gen.(pair (int_range 0 1_000_000) (int_range 0 10)))
    (fun (cut_seed, n_extra) ->
      let store = Store.create () in
      Store.ensure store "a" (fun () -> Tensor.of_list1 [ 1.; 2.; 3. ]);
      for i = 0 to n_extra - 1 do
        Store.ensure store
          (Printf.sprintf "extra%d" i)
          (fun () -> Tensor.scalar (float_of_int i))
      done;
      let path = tmp_file () in
      Store.save store path;
      let data = read_file path in
      let len = cut_seed mod String.length data in
      write_file path (String.sub data 0 len);
      is_corrupt (fun () -> Store.load path))

let suites =
  [ ( "store-persistence",
      [ Alcotest.test_case "v2 round-trip" `Quick test_roundtrip_v2;
        Alcotest.test_case "v1 compatibility" `Quick test_roundtrip_v1;
        Alcotest.test_case "every prefix corrupt" `Quick
          test_every_prefix_corrupt;
        Alcotest.test_case "bit rot detected" `Quick test_bit_rot_detected;
        Alcotest.test_case "trailing bytes detected" `Quick
          test_trailing_bytes_detected;
        Alcotest.test_case "absurd lengths bounded" `Quick test_absurd_lengths;
        Alcotest.test_case "duplicate names rejected" `Quick
          test_duplicate_name_rejected;
        Alcotest.test_case "rotation and fallback" `Quick
          test_rotation_and_fallback;
        Alcotest.test_case "failed save keeps old file" `Quick
          test_failed_save_preserves_old;
        Alcotest.test_case "short write fails save" `Quick
          test_short_write_fails_save;
        Alcotest.test_case "load_latest_result typed errors" `Quick
          test_load_latest_result_typed_errors ]
      @ List.map QCheck_alcotest.to_alcotest
          [ prop_roundtrip; prop_prefix_corrupt ] ) ]
