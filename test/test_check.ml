(* Tests for the pre-flight static analyzer: one test per diagnostic
   code family, the enriched runtime errors the analyzer piggy-backs on,
   the JSON encoding, and a consistency property tying the analyzer's
   verdict to concrete seeded runs. *)

open Gen.Syntax

let k0 = Prng.key 7

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let std_normal_reparam () =
  Dist.normal_reparam (Ad.scalar 0.) (Ad.scalar 1.)

let std_normal_reinforce () =
  Dist.normal_reinforce (Ad.scalar 0.) (Ad.scalar 1.)

let analyze_prog prog = Check.analyze (Check.Program (Gen.Packed prog))

let codes report = List.map (fun d -> d.Check.code) report.Check.diagnostics

let has_code code report = List.mem code (codes report)

let find_code code report =
  List.find (fun d -> d.Check.code = code) report.Check.diagnostics

let check_has code report =
  Alcotest.(check bool)
    (Printf.sprintf "%s reported (got: %s)" code
       (String.concat "," (codes report)))
    true (has_code code report)

(* --- strategy validity ------------------------------------------------ *)

let branchy_reparam =
  let* x = Gen.sample (Dist.normal_reparam (Ad.scalar 0.) (Ad.scalar 1.)) "x" in
  if Gen.rigid x > 0. then
    let* _ = Gen.sample (Dist.normal_reinforce (Ad.scalar 1.) (Ad.scalar 1.)) "pos" in
    Gen.return ()
  else Gen.return ()

let test_pv101_branchy_reparam () =
  let r = analyze_prog branchy_reparam in
  check_has "PV101" r;
  let d = find_code "PV101" r in
  Alcotest.(check (option string)) "attributed to x" (Some "x") d.Check.address;
  Alcotest.(check bool) "error severity" true (d.Check.severity = Check.Error)

let test_pv101_absent_on_reinforce () =
  let prog =
    let* x = Gen.sample (std_normal_reinforce ()) "x" in
    if Gen.rigid x > 0. then
      let* _ = Gen.sample (std_normal_reinforce ()) "pos" in
      Gen.return ()
    else Gen.return ()
  in
  let r = analyze_prog prog in
  Alcotest.(check bool)
    (Printf.sprintf "branchy REINFORCE clean (got: %s)"
       (String.concat "," (codes r)))
    false (Check.has_errors r)

let test_pv102_enum_on_continuous () =
  let d = { (std_normal_reinforce ()) with Dist.strategy = Dist.Enum } in
  check_has "PV102" (analyze_prog (Gen.sample d "z"))

let test_pv103_mvd_uncoupled () =
  let d = { (std_normal_reinforce ()) with Dist.strategy = Dist.Mvd } in
  check_has "PV103" (analyze_prog (Gen.sample d "z"))

let test_pv104_reparam_without_sampler () =
  let d = { (std_normal_reinforce ()) with Dist.strategy = Dist.Reparam } in
  check_has "PV104" (analyze_prog (Gen.sample d "z"))

(* --- address discipline ----------------------------------------------- *)

let test_pv201_duplicate_address () =
  let prog =
    let* _ = Gen.sample (Dist.flip_enum (Ad.scalar 0.4)) "coin" in
    let* _ = Gen.sample (Dist.flip_enum (Ad.scalar 0.6)) "coin" in
    Gen.return ()
  in
  let r = analyze_prog prog in
  check_has "PV201" r;
  Alcotest.(check (option string)) "attributed" (Some "coin")
    (find_code "PV201" r).Check.address

let test_pv201_only_on_shared_path () =
  (* Same address on mutually exclusive branches is legal. *)
  let prog =
    let* b = Gen.sample (Dist.flip_enum (Ad.scalar 0.5)) "b" in
    if b then
      let* _ = Gen.sample (std_normal_reinforce ()) "x" in
      Gen.return ()
    else
      let* _ = Gen.sample (std_normal_reinforce ()) "x" in
      Gen.return ()
  in
  Alcotest.(check bool) "branch-local reuse clean" false
    (Check.has_errors (analyze_prog prog))

let mismatch_pair () =
  let model =
    let* mu = Gen.sample (std_normal_reinforce ()) "mu" in
    Gen.observe (Dist.normal_reparam mu (Ad.scalar 1.)) (Ad.scalar 0.5)
  in
  let guide =
    let* _ = Gen.sample (std_normal_reparam ()) "sigma" in
    Gen.return ()
  in
  Check.Pair { model = Gen.Packed model; guide = Gen.Packed guide }

let test_pv202_pv203_pair_mismatch () =
  let r = Check.analyze (mismatch_pair ()) in
  check_has "PV202" r;
  check_has "PV203" r

let test_pv204_carrier_mismatch () =
  let model =
    let* _ = Gen.sample (Dist.flip_reinforce (Ad.scalar 0.5)) "a" in
    Gen.return ()
  in
  let guide =
    let* _ = Gen.sample (std_normal_reparam ()) "a" in
    Gen.return ()
  in
  check_has "PV204"
    (Check.analyze (Check.Pair { model = Gen.Packed model; guide = Gen.Packed guide }))

let test_pv208_support_warning () =
  let model =
    let* _ = Gen.sample (Dist.uniform 0. 1.) "u" in
    Gen.return ()
  in
  let guide =
    let* _ = Gen.sample (std_normal_reparam ()) "u" in
    Gen.return ()
  in
  let r =
    Check.analyze (Check.Pair { model = Gen.Packed model; guide = Gen.Packed guide })
  in
  check_has "PV208" r;
  Alcotest.(check bool) "PV208 is a warning, not an error" false
    (Check.has_errors r)

(* --- values and shapes ------------------------------------------------ *)

let test_pv301_observe_outside_support () =
  let prog = Gen.observe (Dist.uniform 0. 1.) (Ad.scalar 2.) in
  check_has "PV301" (analyze_prog prog)

let test_pv302_observe_nan () =
  let prog =
    Gen.observe (std_normal_reparam ()) (Ad.scalar Float.nan)
  in
  check_has "PV302" (analyze_prog prog)

let test_clean_program_no_diagnostics () =
  let prog =
    let* x = Gen.sample (std_normal_reparam ()) "x" in
    Gen.observe (Dist.normal_reparam x (Ad.scalar 1.)) (Ad.scalar 0.5)
  in
  let r = analyze_prog prog in
  Alcotest.(check (list string)) "no diagnostics" [] (codes r)

(* --- enriched runtime errors ------------------------------------------ *)

let test_smoothness_error_attribution () =
  (* The runtime error the analyzer piggy-backs on carries the sampling
     address and gradient strategy of the offending value. *)
  match
    Adev.run (Gen.simulate branchy_reparam) k0 (fun (_, _, w) -> w)
  with
  | (_ : Ad.t) -> Alcotest.fail "expected Smoothness_error"
  | exception Value.Smoothness_error info ->
    Alcotest.(check (option string)) "address" (Some "x") info.Value.address;
    Alcotest.(check (option string)) "strategy" (Some "REPARAM")
      info.Value.strategy;
    let msg = Value.smoothness_message info in
    Alcotest.(check bool) "message mentions address" true
      (contains msg {|"x"|})

let test_duplicate_address_payload () =
  let prog =
    let* _ = Gen.sample (std_normal_reinforce ()) "site" in
    let* _ = Gen.sample (std_normal_reinforce ()) "site" in
    Gen.return ()
  in
  match Adev.run (Gen.simulate prog) k0 (fun (_, _, w) -> w) with
  | (_ : Ad.t) -> Alcotest.fail "expected Duplicate_address"
  | exception Trace.Duplicate_address a ->
    Alcotest.(check string) "address payload" "site" a

(* --- JSON ------------------------------------------------------------- *)

let test_json_encoding () =
  let r = analyze_prog branchy_reparam in
  let json = Check.report_to_json ~name:"unit \"test\"" r in
  Alcotest.(check bool) "name escaped" true
    (contains json {|"name":"unit \"test\""|});
  Alcotest.(check bool) "code present" true
    (contains json {|"code":"PV101"|});
  Alcotest.(check bool) "severity present" true
    (contains json {|"severity":"error"|})

(* --- analyzer/runtime consistency property ---------------------------- *)

(* Programs are generated as site-list sketches and compiled to [Gen.t].
   Small address pool, so duplicates arise; branch kinds exercise the
   rigid guard under both strategies. *)
type site_kind =
  | S_reparam
  | S_reinforce
  | S_flip
  | S_branch_reparam
  | S_branch_reinforce

let compile_sketch sites =
  let rec go = function
    | [] -> Gen.return ()
    | (name, kind) :: rest -> (
      match kind with
      | S_flip ->
        let* _ = Gen.sample (Dist.flip_reinforce (Ad.scalar 0.5)) name in
        go rest
      | S_reparam ->
        let* _ = Gen.sample (std_normal_reparam ()) name in
        go rest
      | S_reinforce ->
        let* _ = Gen.sample (std_normal_reinforce ()) name in
        go rest
      | S_branch_reparam ->
        let* x = Gen.sample (std_normal_reparam ()) name in
        if Gen.rigid x > 0. then go rest else go rest
      | S_branch_reinforce ->
        let* x = Gen.sample (std_normal_reinforce ()) name in
        if Gen.rigid x > 0. then go rest else go rest)
  in
  go sites

let sketch_gen =
  QCheck.(
    list_of_size (Gen.int_range 1 4)
      (pair
         (oneofl [ "a"; "b"; "c" ])
         (oneofl
            [ S_reparam; S_reinforce; S_flip; S_branch_reparam;
              S_branch_reinforce ])))

let prop_analyzer_consistent =
  QCheck.Test.make ~name:"analyzer verdict matches concrete runs" ~count:60
    sketch_gen (fun sites ->
      let prog = compile_sketch sites in
      let report = analyze_prog prog in
      let flagged =
        List.exists
          (fun d -> d.Check.code = "PV101" || d.Check.code = "PV201")
          (Check.errors report)
      in
      let run_ok seed =
        match
          Adev.run (Gen.simulate prog) (Prng.key seed) (fun (_, _, w) -> w)
        with
        | (_ : Ad.t) -> true
        | exception Value.Smoothness_error _ -> false
        | exception Trace.Duplicate_address _ -> false
      in
      let seeds = [ 0; 1; 2; 3; 4; 5; 6; 7 ] in
      if flagged then
        (* An analyzer error must be witnessed by some concrete run. *)
        List.exists (fun s -> not (run_ok s)) seeds
      else
        (* Analyzer-clean programs never raise, whatever the seed. *)
        List.for_all run_ok seeds)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest [ prop_analyzer_consistent ]

let suites =
  [ ( "check",
      [ Alcotest.test_case "PV101 branchy reparam" `Quick
          test_pv101_branchy_reparam;
        Alcotest.test_case "PV101 absent on reinforce" `Quick
          test_pv101_absent_on_reinforce;
        Alcotest.test_case "PV102 enum on continuous" `Quick
          test_pv102_enum_on_continuous;
        Alcotest.test_case "PV103 mvd uncoupled" `Quick
          test_pv103_mvd_uncoupled;
        Alcotest.test_case "PV104 reparam without sampler" `Quick
          test_pv104_reparam_without_sampler;
        Alcotest.test_case "PV201 duplicate address" `Quick
          test_pv201_duplicate_address;
        Alcotest.test_case "PV201 branch-local reuse ok" `Quick
          test_pv201_only_on_shared_path;
        Alcotest.test_case "PV202/PV203 pair mismatch" `Quick
          test_pv202_pv203_pair_mismatch;
        Alcotest.test_case "PV204 carrier mismatch" `Quick
          test_pv204_carrier_mismatch;
        Alcotest.test_case "PV208 support warning" `Quick
          test_pv208_support_warning;
        Alcotest.test_case "PV301 observe outside support" `Quick
          test_pv301_observe_outside_support;
        Alcotest.test_case "PV302 observe NaN" `Quick test_pv302_observe_nan;
        Alcotest.test_case "clean program" `Quick
          test_clean_program_no_diagnostics;
        Alcotest.test_case "smoothness error attribution" `Quick
          test_smoothness_error_attribution;
        Alcotest.test_case "duplicate address payload" `Quick
          test_duplicate_address_payload;
        Alcotest.test_case "json encoding" `Quick test_json_encoding ]
      @ qcheck_cases ) ]
