(* Tests for the PV6xx static shape pass and the arena-preallocated
   compiled execution: the abstract shape domain (broadcast analysis,
   symbolic dims), the new preflight demo programs, the
   static-vs-runtime shape consistency property over the compilable
   registry, the liveness/arena layout invariants, the buffer pool,
   and the flagship invariant extended to arenas — arena-backed
   compiled execution is bit-identical to the interpreter and to the
   arena-free compiled path. *)

open Gen.Syntax

let bits = Int64.bits_of_float
let float_bits_equal a b = Int64.equal (bits a) (bits b)

let tensor_bits_equal t1 t2 =
  Tensor.shape t1 = Tensor.shape t2
  &&
  let a = Tensor.to_array t1 and b = Tensor.to_array t2 in
  let ok = ref true in
  Array.iteri (fun i x -> if not (float_bits_equal x b.(i)) then ok := false) a;
  !ok

let value_bits_equal v1 v2 =
  match (v1, v2) with
  | Value.Real a, Value.Real b -> tensor_bits_equal (Ad.value a) (Ad.value b)
  | _ -> v1 = v2

let trace_bits_equal t1 t2 =
  let b1 = Trace.bindings t1 and b2 = Trace.bindings t2 in
  List.length b1 = List.length b2
  && List.for_all2
       (fun (a1, v1) (a2, v2) -> String.equal a1 a2 && value_bits_equal v1 v2)
       b1 b2

let scalar_of w = Tensor.to_scalar (Ad.value w)

let run_for m key =
  let out = ref None in
  ignore
    (Adev.run m key (fun x ->
         out := Some x;
         Ad.scalar 0.));
  Option.get !out

(* ------------------------------------------------------------------ *)
(* The abstract shape domain                                           *)

let c = Shape.concrete

let test_broadcast_ok () =
  (match Shape.broadcast (c [| 4; 1 |]) (c [| 3 |]) with
  | Shape.Broadcast_ok out ->
    Alcotest.(check string) "right-aligned result" "[4,3]"
      (Shape.to_string out)
  | _ -> Alcotest.fail "expected Broadcast_ok");
  (* Rank extension alone is routine and never two-sided. *)
  (match Shape.broadcast (c [| 5; 2 |]) (c [| 2 |]) with
  | Shape.Broadcast_ok out ->
    Alcotest.(check string) "rank extension" "[5,2]" (Shape.to_string out)
  | _ -> Alcotest.fail "expected Broadcast_ok");
  match Shape.broadcast Shape.scalar (c [| 7 |]) with
  | Shape.Broadcast_ok out ->
    Alcotest.(check string) "scalar against vector" "[7]"
      (Shape.to_string out)
  | _ -> Alcotest.fail "expected Broadcast_ok"

let test_broadcast_mismatch () =
  match Shape.broadcast (c [| 4; 3 |]) (c [| 2; 3 |]) with
  | Shape.Broadcast_mismatch { axis; left; right } ->
    Alcotest.(check int) "mismatching axis" 0 axis;
    Alcotest.(check (option int)) "left extent" (Some 4)
      (Shape.dim_known left);
    Alcotest.(check (option int)) "right extent" (Some 2)
      (Shape.dim_known right)
  | _ -> Alcotest.fail "expected Broadcast_mismatch"

let test_broadcast_two_sided () =
  (match Shape.broadcast (c [| 6; 1 |]) (c [| 1; 5 |]) with
  | Shape.Broadcast_two_sided { result; left_axis; right_axis } ->
    Alcotest.(check string) "cross-product result" "[6,5]"
      (Shape.to_string result);
    Alcotest.(check int) "left stretches axis" 1 left_axis;
    Alcotest.(check int) "right stretches axis" 0 right_axis
  | _ -> Alcotest.fail "expected Broadcast_two_sided");
  (* One-sided explicit stretching is plain broadcasting. *)
  match Shape.broadcast (c [| 6; 1 |]) (c [| 6; 5 |]) with
  | Shape.Broadcast_ok _ -> ()
  | _ -> Alcotest.fail "one-sided stretch must be Broadcast_ok"

let test_symbolic_dims () =
  let sym ?binding s = Shape.Sym { sym = s; binding } in
  (* Bound symbols compare by extent; unbound only by identity. *)
  Alcotest.(check bool) "bound sym = equal const" true
    (Shape.equal [| sym ~binding:8 "B@z" |] (c [| 8 |]));
  Alcotest.(check bool) "bound sym <> other const" false
    (Shape.equal [| sym ~binding:8 "B@z" |] (c [| 4 |]));
  Alcotest.(check bool) "same unbound sym agrees" true
    (Shape.equal [| sym "N@xs" |] [| sym "N@xs" |]);
  Alcotest.(check bool) "different unbound syms differ" false
    (Shape.equal [| sym "N@xs" |] [| sym "N@ys" |]);
  Alcotest.(check (option (array int))) "to_concrete resolves bindings"
    (Some [| 8; 2 |])
    (Shape.to_concrete [| sym ~binding:8 "B@z"; Shape.Const 2 |]);
  Alcotest.(check (option (array int))) "to_concrete fails when unbound" None
    (Shape.to_concrete [| sym "N@xs" |]);
  Alcotest.(check string) "pretty-printing" "[N@xs=3,2]"
    (Shape.to_string [| sym ~binding:3 "N@xs"; Shape.Const 2 |])

let test_iid_count () =
  Alcotest.(check (option int)) "iid name parses" (Some 8)
    (Shape.iid_count "iid(8,normal)");
  Alcotest.(check (option int)) "plain name does not" None
    (Shape.iid_count "normal");
  Alcotest.(check (option int)) "malformed does not" None
    (Shape.iid_count "iid(x,normal)")

(* ------------------------------------------------------------------ *)
(* PV6xx demo programs (one per diagnostic)                            *)

let demo_entry name =
  match
    List.find_opt (fun e -> e.Preflight.name = name) Preflight.entries
  with
  | Some e -> e
  | None -> Alcotest.failf "registry has no entry %s" name

let codes report = List.map (fun d -> d.Check.code) report.Check.diagnostics

let check_demo name code severity =
  let e = demo_entry name in
  let r = Preflight.run e in
  let d =
    match List.find_opt (fun d -> d.Check.code = code) r.Check.diagnostics with
    | Some d -> d
    | None ->
      Alcotest.failf "%s missing %s (got: %s)" name code
        (String.concat "," (codes r))
  in
  Alcotest.(check bool)
    (Printf.sprintf "%s severity" code)
    true
    (d.Check.severity = severity);
  Alcotest.(check bool) "demo entry passes its expectation" true
    (Preflight.entry_ok e r)

let test_pv601_demo () =
  check_demo "demo/pv601-shape-mismatch" "PV601" Check.Error

let test_pv602_demo () =
  check_demo "demo/pv602-ambiguous-broadcast" "PV602" Check.Warning

let test_pv603_demo () = check_demo "demo/pv603-plate-rank" "PV603" Check.Warning
let test_pv604_demo () = check_demo "demo/pv604-plate-count" "PV604" Check.Error

(* Every previously-clean registry target must stay clean under the
   shape pass (and demo targets must keep producing their expected
   codes) — the acceptance criterion behind `ppvi check --shapes`. *)
let test_registry_all_ok () =
  let results = Preflight.run_all () in
  List.iter
    (fun (e, r) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s ok (got: %s)" e.Preflight.name
           (String.concat "," (codes r)))
        true
        (Preflight.entry_ok e r))
    results

(* Compile refusals are folded into the check report as info-severity
   PV501, so one `ppvi check` surfaces compileability too. The AIR
   pair refuses staging (data-dependent structure) but must stay a
   *clean* check target. *)
let test_pv501_in_check_report () =
  let e = demo_entry "air" in
  let r = Preflight.run e in
  let pv501 =
    List.filter (fun d -> d.Check.code = "PV501") r.Check.diagnostics
  in
  Alcotest.(check bool) "PV501 present in check report" true (pv501 <> []);
  List.iter
    (fun d ->
      Alcotest.(check bool) "refusal is info severity" true
        (d.Check.severity = Check.Info))
    pv501;
  Alcotest.(check bool) "entry still ok" true (Preflight.entry_ok e r)

(* ------------------------------------------------------------------ *)
(* Static shapes == runtime shapes (compilable registry)               *)

let registry_programs entry =
  match entry.Preflight.make () with
  | Check.Program p -> [ (entry.Preflight.name, p) ]
  | Check.Pair { model; guide } ->
    [ (entry.Preflight.name ^ "/model", model);
      (entry.Preflight.name ^ "/guide", guide) ]
  | exception _ -> []

(* For every compilable registry program: each statically inferred
   plan-site shape, once its symbolic dims are resolved, must equal
   the shape the runtime actually binds in a compiled simulation's
   trace. *)
let static_shapes_match_runtime ~id (Gen.Packed prog) seed =
  match Compile.compile ~id (Gen.Packed prog) with
  | Compile.Refused _ -> true
  | Compile.Compiled plan ->
    let _, trace, _ = run_for (Gen.simulate_compiled plan prog) (Prng.key seed) in
    List.for_all
      (fun (addr, shape) ->
        match Shape.to_concrete shape with
        | None -> false (* plan-site shapes are always fully bound *)
        | Some static -> (
          match Trace.find_opt addr trace with
          | Some (Value.Real v) -> Ad.shape v = static
          | Some _ | None -> false))
      (Shape.of_plan plan)

let prop_static_shapes_match_runtime =
  QCheck.Test.make ~name:"static shapes == runtime shapes (registry)"
    ~count:20
    QCheck.(small_nat)
    (fun seed ->
      List.for_all
        (fun entry ->
          List.for_all
            (fun (id, p) ->
              static_shapes_match_runtime
                ~id:(Printf.sprintf "shape/%s#%d" id seed)
                p seed)
            (registry_programs entry))
        Preflight.entries)

(* ------------------------------------------------------------------ *)
(* Liveness / arena layout                                             *)

let layout_invariants (l : Layout.t) =
  let slab_overlap a b =
    not
      (a.Layout.iv_offset + a.Layout.iv_extent <= b.Layout.iv_offset
      || b.Layout.iv_offset + b.Layout.iv_extent <= a.Layout.iv_offset)
  in
  let live_overlap a b =
    not (a.Layout.iv_stop < b.Layout.iv_start || b.Layout.iv_stop < a.Layout.iv_start)
  in
  let rec pairs = function
    | [] -> true
    | a :: rest ->
      List.for_all (fun b -> not (live_overlap a b && slab_overlap a b)) rest
      && pairs rest
  in
  l.Layout.arena_floats <= l.Layout.naive_floats
  && List.for_all
       (fun iv ->
         iv.Layout.iv_offset >= 0
         && iv.Layout.iv_offset + iv.Layout.iv_extent <= l.Layout.arena_floats)
       l.Layout.intervals
  && pairs l.Layout.intervals

let prop_layout_invariants =
  QCheck.Test.make ~name:"arena layout invariants (registry plans)"
    ~count:1
    QCheck.(unit)
    (fun () ->
      List.for_all
        (fun entry ->
          List.for_all
            (fun (id, p) ->
              match Compile.compile ~id:("layout/" ^ id) p with
              | Compile.Refused _ -> true
              | Compile.Compiled plan ->
                layout_invariants (Layout.of_plan plan))
            (registry_programs entry))
        Preflight.entries)

(* Two observations at different steps have disjoint live ranges, so
   first-fit reuses one slab region for both. *)
let test_layout_reuses_disjoint_ranges () =
  let prog =
    let* _ =
      Gen.observe
        (Dist.mv_normal_diag_reparam
           (Ad.const (Tensor.zeros [| 4 |]))
           (Ad.const (Tensor.ones [| 4 |])))
        (Ad.const (Tensor.zeros [| 4 |]))
    in
    Gen.observe
      (Dist.mv_normal_diag_reparam
         (Ad.const (Tensor.zeros [| 4 |]))
         (Ad.const (Tensor.ones [| 4 |])))
      (Ad.const (Tensor.ones [| 4 |]))
  in
  match Compile.compile ~id:"layout/unit-reuse" (Gen.Packed prog) with
  | Compile.Refused r -> Alcotest.failf "unexpected refusal: %s" r.r_reason
  | Compile.Compiled plan ->
    let l = Layout.of_plan plan in
    Alcotest.(check int) "two intervals" 2 (List.length l.Layout.intervals);
    Alcotest.(check int) "naive sums both extents" 8 l.Layout.naive_floats;
    Alcotest.(check int) "arena shares one region" 4 l.Layout.arena_floats;
    List.iter
      (fun iv ->
        Alcotest.(check int) "both at offset 0" 0 iv.Layout.iv_offset)
      l.Layout.intervals;
    Alcotest.(check (list int)) "one warmed extent" [ 4 ]
      (Layout.warm_extents l)

(* A trace slot is live from step 0, so it can never share a region
   with an earlier observation's scratch. *)
let test_layout_keeps_live_ranges_apart () =
  let prog =
    let* _ =
      Gen.observe
        (Dist.mv_normal_diag_reparam
           (Ad.const (Tensor.zeros [| 4 |]))
           (Ad.const (Tensor.ones [| 4 |])))
        (Ad.const (Tensor.zeros [| 4 |]))
    in
    let* _ =
      Gen.sample
        (Dist.mv_normal_diag_reparam
           (Ad.const (Tensor.zeros [| 4 |]))
           (Ad.const (Tensor.ones [| 4 |])))
        "z"
    in
    Gen.return ()
  in
  match Compile.compile ~id:"layout/unit-apart" (Gen.Packed prog) with
  | Compile.Refused r -> Alcotest.failf "unexpected refusal: %s" r.r_reason
  | Compile.Compiled plan ->
    let l = Layout.of_plan plan in
    Alcotest.(check int) "no reuse possible" 8 l.Layout.arena_floats;
    Alcotest.(check bool) "invariants hold" true (layout_invariants l)

(* ------------------------------------------------------------------ *)
(* Buffer pool                                                         *)

let test_pool_recycles_buffers () =
  let p = Tensor.Pool.create () in
  let b1 = Tensor.Pool.alloc p 16 in
  Alcotest.(check int) "first alloc misses" 1 (Tensor.Pool.misses p);
  Array.fill b1 0 16 42.;
  Tensor.Pool.reset p;
  let b2 = Tensor.Pool.alloc p 16 in
  Alcotest.(check bool) "same physical buffer after reset" true (b1 == b2);
  Alcotest.(check int) "second alloc hits" 1 (Tensor.Pool.hits p);
  Alcotest.(check bool) "handed out zero-filled" true
    (Array.for_all (fun x -> x = 0.) b2);
  (* Without a reset, a second request must get a distinct buffer. *)
  let b3 = Tensor.Pool.alloc p 16 in
  Alcotest.(check bool) "no double hand-out" true (not (b2 == b3));
  Alcotest.(check int) "pool owns both buffers" 32 (Tensor.Pool.floats p)

let test_pool_warm_prehits () =
  let p = Tensor.Pool.create () in
  Tensor.Pool.warm p [ 8; 24 ];
  ignore (Tensor.Pool.alloc p 8);
  ignore (Tensor.Pool.alloc p 24);
  Alcotest.(check int) "warmed sizes hit" 2 (Tensor.Pool.hits p);
  Alcotest.(check int) "no misses" 0 (Tensor.Pool.misses p);
  ignore (Tensor.Pool.alloc p 9);
  Alcotest.(check int) "unwarmed size misses" 1 (Tensor.Pool.misses p);
  Alcotest.(check int) "accounting includes warm + miss" (8 + 24 + 9)
    (Tensor.Pool.floats p);
  Alcotest.(check int) "bytes = 8 * floats" (8 * (8 + 24 + 9))
    (Tensor.Pool.bytes p)

let test_pool_routes_op_outputs () =
  let p = Tensor.Pool.create () in
  Tensor.set_pool (Some p);
  Fun.protect
    ~finally:(fun () -> Tensor.set_pool None)
    (fun () ->
      let a = Tensor.ones [| 8 |] in
      let b = Tensor.add a a in
      Alcotest.(check bool) "ops allocate from the pool" true
        (Tensor.Pool.misses p > 0);
      Alcotest.(check (float 0.)) "pooled results are correct" 16.
        (Tensor.sum b));
  Alcotest.(check bool) "pool uninstalled" true (Tensor.current_pool () = None)

(* ------------------------------------------------------------------ *)
(* Arena-backed compiled execution: bit identity                       *)

(* Attach the static layout's pool to a freshly compiled plan, then
   interleave compiled runs with backward passes (advancing the epoch
   so the pool actually resets and recycles buffers) and require every
   run to stay bit-identical to the interpreter. *)
let check_arena_bit_identity ~id (Gen.Packed prog) seed =
  match Compile.compile ~id (Gen.Packed prog) with
  | Compile.Refused _ -> true
  | Compile.Compiled plan ->
    Gen.Plan.set_arena plan (Some (Layout.pool_of (Layout.of_plan plan)));
    let ok = ref true in
    for round = 0 to 2 do
      let key = Prng.key (seed + (104729 * round)) in
      let _, ti, wi = run_for (Gen.simulate prog) key in
      let _, tc, wc = run_for (Gen.simulate_compiled plan prog) key in
      if
        not
          (float_bits_equal (scalar_of wi) (scalar_of wc)
          && trace_bits_equal ti tc)
      then ok := false;
      let di = run_for (Gen.log_density prog ti) key in
      let dc = run_for (Gen.log_density_compiled plan prog ti) key in
      if not (float_bits_equal (scalar_of di) (scalar_of dc)) then ok := false;
      (* Consume the compiled runs' tapes so the next round's
         arena_enter recycles their buffers. *)
      Ad.backward wc;
      Ad.backward dc
    done;
    !ok

let prop_registry_arena_bit_identity =
  QCheck.Test.make
    ~name:"registry arena-compiled == interpreter (bitwise)" ~count:15
    QCheck.(small_nat)
    (fun seed ->
      List.for_all
        (fun entry ->
          List.for_all
            (fun (id, p) ->
              check_arena_bit_identity
                ~id:(Printf.sprintf "arena/%s#%d" id seed)
                p seed)
            (registry_programs entry))
        Preflight.entries)

(* The full VAE gradient step through the plan cache: arena execution
   on vs off must produce bit-identical surrogates and gradients, and
   the arena must actually be exercised (pool hits on the warm run). *)
let test_vae_grad_arena_bit_identity () =
  Compile.reset_cache ();
  let store = Store.create () in
  Vae.register store (Prng.key 3);
  let images, _ = Data.digit_batch (Prng.key 4) 16 in
  let grad_of () =
    let frame = Store.Frame.make store in
    let s =
      Adev.expectation (Vae.elbo_per_datum ~compiled:true frame images)
        (Prng.key 5)
    in
    Ad.backward s;
    (scalar_of s, Store.Frame.grads frame)
  in
  Compile.set_arena_execution false;
  let v0, g0 = grad_of () in
  Compile.set_arena_execution true;
  (* Two arena steps: the second recycles the first's buffers. *)
  let _ = grad_of () in
  let v1, g1 = grad_of () in
  Alcotest.(check bool) "surrogate bits equal" true (float_bits_equal v0 v1);
  List.iter2
    (fun (n0, t0) (n1, t1) ->
      Alcotest.(check string) "param order" n0 n1;
      Alcotest.(check bool) (n0 ^ " grad bits equal") true
        (tensor_bits_equal t0 t1))
    g0 g1;
  let pool_hits id =
    match Compile.plan_for ~id (Gen.Packed (Gen.return ())) with
    | Compile.Compiled plan -> (
      match Gen.Plan.arena plan with
      | Some p -> Tensor.Pool.hits p
      | None -> 0)
    | Compile.Refused _ -> 0
  in
  Alcotest.(check bool) "model plan recycled buffers" true
    (pool_hits "vae/model" > 0);
  Alcotest.(check bool) "guide plan recycled buffers" true
    (pool_hits "vae/guide" > 0);
  Compile.set_arena_execution true;
  Compile.reset_cache ()

(* Multi-sample estimators stack several forward tapes before one
   backward; the epoch gate must keep the pool from resetting between
   them (a reset would corrupt the still-referenced earlier tapes). *)
let test_arena_multi_sample_safety () =
  Compile.reset_cache ();
  let store = Store.create () in
  Vae.register store (Prng.key 3);
  let images, _ = Data.digit_batch (Prng.key 4) 8 in
  let grad_of () =
    let frame = Store.Frame.make store in
    let s =
      Adev.expectation_mean ~samples:3
        (Vae.elbo_per_datum ~compiled:true frame images)
        (Prng.key 6)
    in
    Ad.backward s;
    (scalar_of s, Store.Frame.grads frame)
  in
  Compile.set_arena_execution false;
  let v0, g0 = grad_of () in
  Compile.set_arena_execution true;
  let _ = grad_of () in
  let v1, g1 = grad_of () in
  Alcotest.(check bool) "stacked surrogate bits equal" true
    (float_bits_equal v0 v1);
  List.iter2
    (fun (n0, t0) (n1, t1) ->
      Alcotest.(check string) "param order" n0 n1;
      Alcotest.(check bool) (n0 ^ " grad bits equal") true
        (tensor_bits_equal t0 t1))
    g0 g1;
  Compile.set_arena_execution true;
  Compile.reset_cache ()

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_static_shapes_match_runtime;
      prop_layout_invariants;
      prop_registry_arena_bit_identity ]

let suites =
  [ ( "shape",
      [ Alcotest.test_case "broadcast ok" `Quick test_broadcast_ok;
        Alcotest.test_case "broadcast mismatch" `Quick test_broadcast_mismatch;
        Alcotest.test_case "broadcast two-sided" `Quick
          test_broadcast_two_sided;
        Alcotest.test_case "symbolic dims" `Quick test_symbolic_dims;
        Alcotest.test_case "iid count parsing" `Quick test_iid_count;
        Alcotest.test_case "PV601 demo (shape mismatch)" `Quick test_pv601_demo;
        Alcotest.test_case "PV602 demo (ambiguous broadcast)" `Quick
          test_pv602_demo;
        Alcotest.test_case "PV603 demo (plate rank)" `Quick test_pv603_demo;
        Alcotest.test_case "PV604 demo (plate count)" `Quick test_pv604_demo;
        Alcotest.test_case "registry all ok under shape pass" `Slow
          test_registry_all_ok;
        Alcotest.test_case "PV501 folded into check report" `Quick
          test_pv501_in_check_report ]
      @ qcheck_cases );
    ( "arena",
      [ Alcotest.test_case "layout reuses disjoint ranges" `Quick
          test_layout_reuses_disjoint_ranges;
        Alcotest.test_case "layout keeps live ranges apart" `Quick
          test_layout_keeps_live_ranges_apart;
        Alcotest.test_case "pool recycles buffers" `Quick
          test_pool_recycles_buffers;
        Alcotest.test_case "pool warm pre-hits" `Quick test_pool_warm_prehits;
        Alcotest.test_case "pool routes op outputs" `Quick
          test_pool_routes_op_outputs;
        Alcotest.test_case "vae grad arena bit-identical" `Slow
          test_vae_grad_arena_bit_identity;
        Alcotest.test_case "multi-sample arena safety" `Slow
          test_arena_multi_sample_safety ] ) ]
