(* A program with ONE reparam latent and a shared observation of dim d.
   Run simulate_batched with n = d vs n <> d and compare the joint
   weight contributions / per-instance vectors. *)
let () =
  let d = 5 in
  let logits = Ad.const (Tensor.of_array [| d |] [| 0.3; -1.2; 2.0; 0.0; -0.7 |]) in
  let v = Tensor.of_array [| d |] [| 1.; 0.; 1.; 1.; 0. |] in
  let prog =
    let open Gen.Syntax in
    let* _z = Gen.sample (Dist.normal_reparam (Ad.scalar 0.) (Ad.scalar 1.)) "z" in
    Gen.observe (Dist.bernoulli_logits_vector logits) (Ad.const v)
  in
  (* scalar log density of the shared observation *)
  let scalar_lp =
    Ad.primal (Dist.log_density (Dist.bernoulli_logits_vector logits) (Ad.const v))
  in
  Printf.printf "scalar obs logp (one instance) = %.6f\n" scalar_lp;
  let run n =
    let comp =
      let open Adev.Syntax in
      let* _, _, w = Gen.simulate_batched ~n prog in
      Adev.return w
    in
    let w = Adev.estimate comp (Prng.key 42) in
    Printf.printf "n=%d: total weight (sum of per-inst logp incl prior) ... w=%.6f\n" n w
  in
  (* Compare per-instance observation weights directly via the trace-free path:
     use a pure-observe program so the weight is exactly the observe lw. *)
  let obs_only = Gen.observe (Dist.bernoulli_logits_vector logits) (Ad.const v) in
  let run_obs n =
    let comp =
      let open Adev.Syntax in
      let* _, _, w = Gen.simulate_batched ~n obs_only in
      Adev.return (Ad.sum w)
    in
    let w = Adev.estimate comp (Prng.key 7) in
    Printf.printf "obs-only n=%d: sum(per-instance lw) = %.6f (expected %.6f)\n"
      n w (float_of_int n *. scalar_lp)
  in
  run_obs 4;
  run_obs d;
  run 4;
  run d
