(* ppvi: command-line front end for the library's training workloads.
   The benchmark tables live in bench/main.exe; this binary is for
   interactive use — train one workload with chosen settings and print
   human-readable results (optionally a CSV series for plotting). *)

open Cmdliner

let seed_arg =
  Arg.(value & opt int 0 & info [ "seed" ] ~doc:"PRNG seed.")

let steps_arg default =
  Arg.(value & opt int default & info [ "steps" ] ~doc:"Optimization steps.")

let csv_arg =
  Arg.(
    value & flag
    & info [ "csv" ] ~doc:"Print the per-step objective series as CSV.")

(* Shared by every command: configure the tensor-kernel domain pool
   before the workload runs. Results are bit-identical for any value. *)
let domains_term =
  let apply = function Some n -> Parallel.set_domains n | None -> () in
  Term.(
    const apply
    $ Arg.(
        value
        & opt (some int) None
        & info [ "domains" ]
            ~env:(Cmd.Env.info "PPVI_DOMAINS")
            ~docv:"N"
            ~doc:
              "Number of OCaml domains for parallel tensor kernels (default \
               \\$(env) or 1). Every domain count produces bit-identical \
               results."))

let print_series csv reports =
  if csv then begin
    print_endline "step,objective";
    List.iter
      (fun r -> Printf.printf "%d,%.6f\n" r.Train.step r.Train.objective)
      reports
  end

(* Resilience options, shared by every training command: guard policy,
   gradient clipping, and checkpoint/resume paths. *)

type resilience = {
  guard : Guard.t;
  checkpoint : string option;
  resume : string option;
}

let policy_conv =
  let parse s =
    match Guard.policy_of_string s with
    | Some p -> Ok p
    | None ->
      Error
        (`Msg
          (Printf.sprintf
             "unknown guard policy %S (expected fail-fast|skip-step|rollback-retry)"
             s))
  in
  Arg.conv (parse, fun ppf p -> Format.pp_print_string ppf (Guard.policy_name p))

let positive_float_conv =
  let parse s =
    match float_of_string_opt s with
    | Some x when x > 0. && Float.is_finite x -> Ok x
    | Some _ -> Error (`Msg "expected a positive finite number")
    | None -> Error (`Msg (Printf.sprintf "invalid number %S" s))
  in
  Arg.conv (parse, fun ppf x -> Format.fprintf ppf "%g" x)

let resilience_term =
  let make policy clip_norm max_retries checkpoint resume =
    { guard = Guard.create ~policy ?clip_norm ~max_retries (); checkpoint; resume }
  in
  Term.(
    const make
    $ Arg.(
        value
        & opt policy_conv Guard.Skip_step
        & info [ "guard-policy" ]
            ~doc:
              "What to do when a NaN/Inf objective or gradient is detected: \
               $(b,fail-fast), $(b,skip-step), or $(b,rollback-retry).")
    $ Arg.(
        value
        & opt (some positive_float_conv) None
        & info [ "clip-norm" ]
            ~doc:"Clip gradients jointly to this global L2 norm.")
    $ Arg.(
        value & opt int 3
        & info [ "max-retries" ]
            ~doc:"Rollback budget under --guard-policy=rollback-retry.")
    $ Arg.(
        value
        & opt (some string) None
        & info [ "checkpoint" ] ~docv:"FILE"
            ~doc:"Save the trained parameters to $(docv) when done.")
    $ Arg.(
        value
        & opt (some string) None
        & info [ "resume" ] ~docv:"FILE"
            ~doc:"Load parameters from $(docv) and continue training."))

(* Observability options shared by the training commands: stream a
   JSONL trace and/or print the aggregated tables at the end. *)

type obs_opts = { trace : string option; metrics : bool }

let obs_term =
  let make trace metrics = { trace; metrics } in
  Term.(
    const make
    $ Arg.(
        value
        & opt (some string) None
        & info [ "trace" ] ~docv:"FILE"
            ~doc:
              "Enable observability and stream span/metric events to \
               $(docv) as JSON Lines (schema in docs/OBSERVABILITY.md). \
               Preflight and progress messages become \"msg\" events in \
               the file, keeping stderr machine-clean.")
    $ Arg.(
        value & flag
        & info [ "metrics" ]
            ~doc:
              "Enable observability and print the aggregated span, \
               counter, and estimator tables to stderr when the run \
               finishes."))

let open_trace path =
  try Obs.configure ~enabled:true ~sink:(`File path) ()
  with Sys_error msg ->
    Printf.eprintf "ppvi: cannot open trace file: %s\n" msg;
    exit 1

let obs_setup o =
  match o.trace with
  | Some path -> open_trace path
  | None -> if o.metrics then Obs.configure ~enabled:true ()

(* Snapshot the process-wide gauges the library layers cannot push
   themselves (they would need a dependency on lib/parallel). *)
let obs_gauges () =
  Obs.gauge "parallel/domains" (float_of_int (Parallel.domains ()));
  Obs.gauge "parallel/jobs" (float_of_int (Parallel.jobs_run ()));
  Obs.gauge "parallel/jobs_parallel"
    (float_of_int (Parallel.jobs_parallel ()));
  Obs.gauge "parallel/blocks" (float_of_int (Parallel.blocks_run ()));
  Obs.gauge "ad/nodes_total" (float_of_int (Ad.node_count ()))

let obs_finish o =
  if o.trace <> None || o.metrics then obs_gauges ();
  if o.metrics then Obs.report_human Format.err_formatter;
  if o.trace <> None then begin
    Obs.flush ();
    Obs.shutdown ()
  end

(* Opt-in static pre-flight shared by the training commands: analyze
   this workload's registry targets before training. Warnings by
   default; --preflight-strict turns error-severity diagnostics into a
   non-zero exit. *)
let preflight_term =
  let make enabled strict = (enabled || strict, strict) in
  Term.(
    const make
    $ Arg.(
        value & flag
        & info [ "preflight" ]
            ~doc:
              "Statically analyze this workload's model/guide programs \
               before training (see $(b,ppvi check)); diagnostics are \
               printed to stderr.")
    $ Arg.(
        value & flag
        & info [ "preflight-strict" ]
            ~doc:
              "Like $(b,--preflight), but exit with an error when the \
               analyzer reports error-severity diagnostics."))

let run_preflight (enabled, strict) filter =
  if enabled then begin
    let results = Preflight.run_all ~filter () in
    let clean = List.filter (fun (e, _) -> e.Preflight.expect = []) results in
    List.iter
      (fun (e, r) ->
        List.iter
          (fun d ->
            Obs.message Obs.Preflight
              (Format.asprintf "[preflight %s] %a" e.Preflight.name
                 Check.pp_diagnostic d))
          r.Check.diagnostics)
      clean;
    let bad = List.filter (fun (_, r) -> Check.has_errors r) clean in
    if bad <> [] then begin
      Obs.message Obs.Preflight
        (Printf.sprintf
           "preflight: %d of %d target(s) have error-severity diagnostics"
           (List.length bad) (List.length clean));
      if strict then exit 1
    end
    else
      Obs.message Obs.Preflight
        (Printf.sprintf "preflight: %d target(s) clean" (List.length clean))
  end

let initial_store r =
  Option.map
    (fun path ->
      try Store.load path with
      | Sys_error msg ->
        Printf.eprintf "ppvi: cannot resume: %s\n" msg;
        exit 1
      | Store.Corrupt_checkpoint msg ->
        Printf.eprintf "ppvi: cannot resume: corrupt checkpoint: %s\n" msg;
        exit 1)
    r.resume

let finish_run r store =
  (match r.checkpoint with
  | Some path -> (
    try
      Store.save store path;
      Printf.printf "checkpoint saved to %s (%d parameters)\n" path
        (Store.parameter_count store)
    with Sys_error msg ->
      Printf.eprintf "ppvi: cannot save checkpoint: %s\n" msg;
      exit 1)
  | None -> ());
  let g = r.guard in
  if Guard.anomaly_count g > 0 || Guard.retry_count g > 0 then
    Printf.printf
      "guard [%s]: %d anomalies, %d skipped steps, %d rollbacks\n"
      (Guard.policy_name (Guard.policy g))
      (Guard.anomaly_count g) (Guard.skip_count g) (Guard.retry_count g)

(* cone *)

let cone_objective_conv =
  let parse = function
    | "elbo" -> Ok Cone.Elbo
    | "iwelbo" -> Ok (Cone.Iwelbo 5)
    | "hvi" -> Ok Cone.Hvi
    | "iwhvi" -> Ok (Cone.Iwhvi 5)
    | "diwhvi" -> Ok (Cone.Diwhvi (5, 5))
    | s -> Error (`Msg (Printf.sprintf "unknown objective %S" s))
  in
  Arg.conv (parse, fun ppf k -> Format.pp_print_string ppf (Cone.objective_name k))

let cone_cmd =
  let run objective steps seed csv resilience pf obs =
    obs_setup obs;
    run_preflight pf "cone/";
    let store, reports =
      Cone.train ~steps ~guard:resilience.guard ?store:(initial_store resilience)
        objective (Prng.key seed)
    in
    Printf.printf "%s after %d steps: %.3f\n"
      (Cone.objective_name objective)
      steps
      (Cone.final_value store objective (Prng.key (seed + 1)));
    print_series csv reports;
    finish_run resilience store;
    obs_finish obs
  in
  Cmd.v
    (Cmd.info "cone" ~doc:"Train a guide on the ring posterior (Fig. 2/3).")
    Term.(
      const (fun () -> run)
      $ domains_term
      $ Arg.(
          value
          & opt cone_objective_conv Cone.Elbo
          & info [ "objective" ] ~doc:"elbo|iwelbo|hvi|iwhvi|diwhvi")
      $ steps_arg 1500 $ seed_arg $ csv_arg $ resilience_term
      $ preflight_term $ obs_term)

(* coin *)

let coin_cmd =
  let run steps seed csv resilience pf obs =
    obs_setup obs;
    run_preflight pf "coin";
    let store, reports, seconds =
      Coin.train ~steps ~guard:resilience.guard
        ?store:(initial_store resilience) (Prng.key seed)
    in
    Printf.printf
      "posterior mean %.3f (exact %.3f), final ELBO %.2f, %.2f s\n"
      (Coin.posterior_mean store) Coin.exact_posterior_mean
      (Coin.final_elbo store (Prng.key (seed + 1)))
      seconds;
    print_series csv reports;
    finish_run resilience store;
    obs_finish obs
  in
  Cmd.v
    (Cmd.info "coin" ~doc:"Beta-Bernoulli coin fairness (Appendix D.1).")
    Term.(
      const (fun () -> run)
      $ domains_term $ steps_arg 1500 $ seed_arg $ csv_arg $ resilience_term
      $ preflight_term $ obs_term)

(* regression *)

let regression_cmd =
  let run steps seed csv resilience pf obs =
    obs_setup obs;
    run_preflight pf "regression";
    let store, reports, seconds =
      Regression.train ~steps ~guard:resilience.guard
        ?store:(initial_store resilience) (Prng.key seed)
    in
    let a, ba, br, bar = Regression.coefficient_means store in
    Printf.printf "a=%.2f bA=%.2f bR=%.2f bAR=%.2f  (%.2f s)\n" a ba br bar
      seconds;
    Printf.printf "ELBO/datum %.3f\n"
      (Regression.final_elbo_per_datum store (Prng.key (seed + 1)));
    print_series csv reports;
    finish_run resilience store;
    obs_finish obs
  in
  Cmd.v
    (Cmd.info "regression"
       ~doc:"Bayesian linear regression (Appendix D.2).")
    Term.(
      const (fun () -> run)
      $ domains_term $ steps_arg 1500 $ seed_arg $ csv_arg $ resilience_term
      $ preflight_term $ obs_term)

(* vae *)

let vae_cmd =
  let run steps batch seed csv resilience pf obs =
    obs_setup obs;
    run_preflight pf "vae";
    let store, reports =
      Vae.train ~steps ~batch ~guard:resilience.guard
        ?store:(initial_store resilience) (Prng.key seed)
    in
    let last = (List.nth reports (steps - 1)).Train.objective in
    Printf.printf "final ELBO/datum %.2f after %d steps (batch %d)\n" last
      steps batch;
    print_series csv reports;
    finish_run resilience store;
    obs_finish obs
  in
  Cmd.v
    (Cmd.info "vae" ~doc:"Sprite-digit VAE (Table 1 workload).")
    Term.(
      const (fun () -> run)
      $ domains_term $ steps_arg 300
      $ Arg.(value & opt int 64 & info [ "batch" ] ~doc:"Batch size.")
      $ seed_arg $ csv_arg $ resilience_term $ preflight_term $ obs_term)

(* air *)

let strategy_conv =
  let parse = function
    | "re" | "reinforce" -> Ok Air.RE
    | "bl" | "baselines" -> Ok Air.RE_BL
    | "enum" -> Ok Air.EN
    | "mvd" -> Ok Air.MV
    | s -> Error (`Msg (Printf.sprintf "unknown strategy %S" s))
  in
  Arg.conv
    (parse, fun ppf s -> Format.pp_print_string ppf (Air.strategy_name s))

let air_cmd =
  let run strategy epochs images seed resilience pf obs =
    obs_setup obs;
    run_preflight pf "air";
    let data_images, _ = Data.air_batch (Prng.key (seed + 10)) images in
    let eval_images, eval_counts = Data.air_batch (Prng.key (seed + 11)) 64 in
    let store =
      match initial_store resilience with
      | Some s -> s
      | None -> Store.create ()
    in
    Air.register store (Prng.key seed);
    let optim = Optim.adam ~lr:1e-3 () in
    let baselines = Air.make_baselines () in
    for epoch = 1 to epochs do
      let obj, dt =
        Air.train_epoch ~pres:strategy ~pos:strategy ~guard:resilience.guard
          ~store ~optim ~baselines ~objective:Air.Elbo ~images:data_images
          ~batch:16
          (Prng.fold_in (Prng.key seed) epoch)
      in
      let acc =
        Air.count_accuracy store eval_images eval_counts
          (Prng.fold_in (Prng.key (seed + 12)) epoch)
      in
      Printf.printf "epoch %d: ELBO %8.2f  acc %.2f  %.2f s\n%!" epoch obj acc
        dt
    done;
    finish_run resilience store;
    obs_finish obs
  in
  Cmd.v
    (Cmd.info "air" ~doc:"Attend-Infer-Repeat scenes (Table 2 workload).")
    Term.(
      const (fun () -> run)
      $ domains_term
      $ Arg.(
          value & opt strategy_conv Air.MV
          & info [ "strategy" ] ~doc:"re|bl|enum|mvd")
      $ Arg.(value & opt int 5 & info [ "epochs" ] ~doc:"Training epochs.")
      $ Arg.(value & opt int 192 & info [ "images" ] ~doc:"Training scenes.")
      $ seed_arg $ resilience_term $ preflight_term $ obs_term)

(* profile *)

let profile_target_conv =
  Arg.enum
    [ ("cone", `Cone); ("coin", `Coin); ("regression", `Regression);
      ("vae", `Vae) ]

let profile_cmd =
  let run () target objective steps batch seed json trace =
    (* Recording is on for the whole run; the trace file (when given)
       receives every sampled event, and the aggregate tables go to
       stdout at the end. *)
    (match trace with
    | Some path -> open_trace path
    | None -> Obs.configure ~enabled:true ());
    let name =
      match target with
      | `Cone ->
        ignore (Cone.train ~steps objective (Prng.key seed));
        Printf.sprintf "cone (%s)" (Cone.objective_name objective)
      | `Coin ->
        ignore (Coin.train ~steps (Prng.key seed));
        "coin"
      | `Regression ->
        ignore (Regression.train ~steps (Prng.key seed));
        "regression"
      | `Vae ->
        ignore (Vae.train ~steps ~batch (Prng.key seed));
        Printf.sprintf "vae (batch %d)" batch
    in
    obs_gauges ();
    if json then print_endline (Obs.report_json ())
    else begin
      Printf.printf "profile: %s, %d steps, seed %d\n" name steps seed;
      Obs.report_human Format.std_formatter
    end;
    if trace <> None then begin
      Obs.flush ();
      Obs.shutdown ()
    end
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Train a workload with observability enabled and print the \
          per-phase time/alloc breakdown, the metric tables, and the \
          per-address estimator-variance ranking (noisiest gradient \
          sites first). See docs/OBSERVABILITY.md for how to read the \
          tables.")
    Term.(
      const run
      $ domains_term
      $ Arg.(
          required
          & pos 0 (some profile_target_conv) None
          & info [] ~docv:"TARGET" ~doc:"cone|coin|regression|vae")
      $ Arg.(
          value
          & opt cone_objective_conv (Cone.Iwhvi 5)
          & info [ "objective" ]
              ~doc:
                "Cone objective (elbo|iwelbo|hvi|iwhvi|diwhvi). The \
                 default iwhvi guide mixes REPARAM and REINFORCE sites, \
                 which is what makes the estimator ranking interesting.")
      $ steps_arg 150
      $ Arg.(value & opt int 64 & info [ "batch" ] ~doc:"VAE batch size.")
      $ seed_arg
      $ Arg.(
          value & flag
          & info [ "json" ]
              ~doc:"Emit the report as one JSON object on stdout.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "trace" ] ~docv:"FILE"
              ~doc:"Also stream events to $(docv) as JSON Lines."))

(* trace-lint *)

let trace_lint_cmd =
  let run () file =
    match Obs.validate_jsonl file with
    | Ok n -> Printf.printf "%s: %d event line(s), all valid JSON\n" file n
    | Error msg ->
      Printf.eprintf "%s: %s\n" file msg;
      exit 1
  in
  Cmd.v
    (Cmd.info "trace-lint"
       ~doc:
         "Validate a $(b,--trace) JSONL file: every non-empty line must \
          parse as a JSON object. Exits non-zero at the first offending \
          line (used by the CI obs-smoke step).")
    Term.(
      const run $ const ()
      $ Arg.(
          required
          & pos 0 (some file) None
          & info [] ~docv:"FILE" ~doc:"Trace file to validate."))

(* check *)

let check_cmd =
  let run () json fuel width filter =
    let results = Preflight.run_all ~fuel ~max_width:width ~filter () in
    if json then print_endline (Preflight.results_to_json results)
    else begin
      Preflight.print_human Format.std_formatter results;
      let failed = List.filter (fun (e, r) -> not (Preflight.entry_ok e r)) results in
      Printf.printf "%d/%d targets ok\n"
        (List.length results - List.length failed)
        (List.length results)
    end;
    if not (Preflight.all_ok results) then exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Statically analyze the built-in generative programs: strategy \
          validity, address discipline, and support/shape pre-flight lints \
          (see docs/DIAGNOSTICS.md for the code catalogue).")
    Term.(
      const run
      $ domains_term
      $ Arg.(
          value & flag
          & info [ "json" ] ~doc:"Emit a JSON array of reports on stdout.")
      $ Arg.(
          value & opt int 20000
          & info [ "fuel" ] ~docv:"N"
            ~doc:"Exploration budget (program nodes visited per target).")
      $ Arg.(
          value & opt int 4
          & info [ "width" ] ~docv:"N"
            ~doc:"Maximum probe values per sample site.")
      $ Arg.(
          value & opt string ""
          & info [ "target" ] ~docv:"SUBSTR"
            ~doc:"Only analyze registry targets whose name contains $(docv)."))

(* info *)

let info_cmd =
  let run () =
    print_endline
      "ppvi: programmable variational inference (PLDI 2024 reproduction)";
    let count register =
      let store = Store.create () in
      register store (Prng.key 0);
      Store.parameter_count store
    in
    Printf.printf "workload parameter counts:\n";
    Printf.printf "  VAE   %6d\n" (count Vae.register);
    Printf.printf "  AIR   %6d\n" (count Air.register);
    Printf.printf "  SSVAE %6d\n" (count Ssvae.register);
    Printf.printf "  CVAE  %6d\n" (count Cvae.register);
    Printf.printf "data: %dx%d sprites, %dx%d AIR canvases (max %d objects)\n"
      Data.sprite_side Data.sprite_side Data.canvas_side Data.canvas_side
      Data.max_objects
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Print the system inventory.")
    Term.(const run $ const ())

let () =
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "ppvi" ~version:"1.0.0"
             ~doc:"Programmable variational inference workloads.")
          [ cone_cmd; coin_cmd; regression_cmd; vae_cmd; air_cmd; profile_cmd;
            trace_lint_cmd; check_cmd; info_cmd ]))
